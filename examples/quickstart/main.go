// Quickstart: the ping-pong system of Ex. 2.2, end to end.
//
// The program is written in the .epi concrete syntax, type-checked
// against the λπ⩽ type system, its type is verified for liveness by
// type-level model checking, and finally the program is executed — the
// full pipeline the paper promises: if it type-checks, it runs and
// communicates as desired.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"effpi/internal/core"
	"effpi/internal/syntax"
	"effpi/internal/types"
	"effpi/internal/verify"
)

const pingPong = `
// Ex. 2.2: pinger sends its own mailbox over pongc; ponger replies on
// whatever channel it received.
type Reply = OChan[Str]

let pinger = fun (self: Chan[Str]) => fun (pongc: OChan[Reply]) =>
  send(pongc, self, fun (_: Unit) =>
    recv(self, fun (reply: Str) => end))
in
let ponger = fun (self: Chan[Reply]) =>
  recv(self, fun (replyTo: Reply) =>
    send(replyTo, "Hi!", fun (_: Unit) => end))
in
let y = chan[Str]() in
let z = chan[Reply]() in
(pinger y z || ponger z)
`

func main() {
	// 1. Parse.
	prog, err := core.Parse(pingPong)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Type-check: the inferred type is the parallel composition of
	// the two protocols (Ex. 3.3), with the channel topology erased to
	// channel types because y and z are let-bound (Ex. 3.5).
	t, err := prog.Check()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inferred type:")
	fmt.Println("  " + syntax.PrintType(t))

	// 3. Verify: open variant with free y and z, so the types track the
	// channels (Ex. 4.3) and we can check behavioural properties
	// (Ex. 4.11).
	env := types.EnvOf(
		"y", types.ChanIO{Elem: types.Str{}},
		"z", types.ChanIO{Elem: types.ChanO{Elem: types.Str{}}},
	)
	open, err := core.ParseInEnv(`
let pinger = fun (self: Chan[Str]) => fun (pongc: OChan[OChan[Str]]) =>
  send(pongc, self, fun (_: Unit) => recv(self, fun (reply: Str) => end))
in
let ponger = fun (self: Chan[OChan[Str]]) =>
  recv(self, fun (replyTo: OChan[Str]) =>
    send(replyTo, "Hi!", fun (_: Unit) => end))
in (pinger y z || ponger z)
`, env)
	if err != nil {
		log.Fatal(err)
	}
	for _, prop := range []verify.Property{
		{Kind: verify.DeadlockFree, Closed: true},
		{Kind: verify.EventualOutput, Channels: []string{"y"}, Closed: true},
		{Kind: verify.Responsive, From: "z", Closed: true},
	} {
		o, err := open.Verify(prop)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("verify %-18s = %-5v (%d states, %s)\n", prop, o.Holds, o.States, o.Duration)
	}

	// 4. Run under the operational semantics.
	final, err := prog.Run(10_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("execution terminated as: %s\n", syntax.PrintTerm(final))
}
