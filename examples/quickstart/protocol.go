// protocol.go is the ping-pong protocol of Ex. 2.2 written directly
// against the effpi runtime combinators — the form `effpi verify
// ./examples/quickstart` extracts a behavioural type from. The
// extracted env+type match the hand-written open model in main.go.
package main

import rt "effpi/internal/runtime"

// PingPong composes the pinger and ponger on two fresh channels: the
// pinger sends its own mailbox y over z, the ponger replies on whatever
// channel it received.
func PingPong() rt.Proc {
	y := rt.NewChan()
	z := rt.NewChan()
	return rt.Par{Procs: []rt.Proc{pinger(y, z), ponger(z)}}
}

func pinger(self, pongc *rt.Chan) rt.Proc {
	return rt.Send{Ch: pongc, Val: self, Cont: func() rt.Proc {
		return rt.Recv{Ch: self, Cont: func(reply any) rt.Proc {
			return rt.End{}
		}}
	}}
}

func ponger(self *rt.Chan) rt.Proc {
	return rt.Recv{Ch: self, Cont: func(replyTo any) rt.Proc {
		return rt.Send{Ch: replyTo.(*rt.Chan), Val: "Hi!", Cont: func() rt.Proc {
			return rt.End{}
		}}
	}}
}
