// Payment with auditing: the paper's §1 use case (Fig. 1), both verified
// and executed.
//
//  1. The protocol — service, auditor, clients — is modelled at the type
//     level and verified: the composition is deadlock-free, the service is
//     reactive and responsive on its mailbox, and every accepted payment
//     reaches the auditor. The forwarding check also demonstrates a
//     genuine failure: not *every* payment is audited (rejected ones are
//     not), exactly as Fig. 9 reports false for this property.
//  2. The service is then implemented on the actor API (the Effpi runtime)
//     and run with a fleet of clients; the audit trail is printed.
//
// Run with: go run ./examples/payment
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"effpi/internal/actor"
	rt "effpi/internal/runtime"
	"effpi/internal/systems"
	"effpi/internal/verify"
)

// --- message types (the actor-level protocol of Fig. 1) --------------------

// Pay is a payment request carrying the payer's typed reply reference.
type Pay struct {
	Amount  int
	ReplyTo actor.Ref[Response]
}

// Audit is the auditing record for an accepted payment.
type Audit struct{ Pay Pay }

// Response is the service's answer.
type Response struct {
	Accepted bool
	Reason   string
}

func main() {
	verifyProtocol()
	runService()
}

// verifyProtocol model-checks the payment protocol (the Fig. 9 "Pay &
// audit" system with 3 clients).
func verifyProtocol() {
	s := systems.PaymentAudit(3)
	fmt.Println("== protocol verification (type-level model checking) ==")
	outcomes, err := verify.VerifyAll(s.Env, s.Type, s.Props, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range outcomes {
		fmt.Printf("  %-20s = %-5v (%d states, %s)\n", o.Property, o.Holds, o.States, o.Duration)
		if o.Property.Kind == verify.Forwarding && !o.Holds && o.Counterexample != nil {
			fmt.Printf("    counterexample (a rejected payment is never audited):\n")
			fmt.Printf("      prefix: %v\n      cycle:  %v\n", o.Counterexample.Prefix, o.Counterexample.Cycle)
		}
	}
}

// runService executes the Fig. 1 implementation on the Effpi runtime.
func runService() {
	fmt.Println("== execution on the Effpi runtime ==")
	engine := rt.NewScheduler(0, rt.PolicyChannelFSM)

	payments, paymentRef := actor.NewMailbox[Pay](engine)
	audits, auditRef := actor.NewMailbox[Audit](engine)

	const clients = 5
	const perClient = 4

	var audited, accepted, rejected atomic.Int64

	// payment is the actor of Fig. 1: read a Pay; reject when the amount
	// exceeds the threshold; otherwise audit and then accept.
	toHandle := clients * perClient
	var payment func(left int) rt.Proc
	payment = func(left int) rt.Proc {
		if left == 0 {
			return actor.Stop()
		}
		return actor.Read(payments, func(pay Pay) rt.Proc {
			if pay.Amount > 42000 {
				return actor.Tell(pay.ReplyTo, Response{Accepted: false, Reason: "Too high!"}, func() rt.Proc {
					return payment(left - 1)
				})
			}
			return actor.Tell(auditRef, Audit{Pay: pay}, func() rt.Proc {
				return actor.Tell(pay.ReplyTo, Response{Accepted: true}, func() rt.Proc {
					return payment(left - 1)
				})
			})
		})
	}

	// auditor records accepted payments.
	var auditor func(left int) rt.Proc
	auditor = func(left int) rt.Proc {
		if left == 0 {
			return actor.Stop()
		}
		return actor.Read(audits, func(a Audit) rt.Proc {
			audited.Add(1)
			return auditor(left - 1)
		})
	}

	// Clients fire a mix of small and huge payments.
	client := func(id int) rt.Proc {
		inbox, ref := actor.NewMailbox[Response](engine)
		var loop func(i int) rt.Proc
		loop = func(i int) rt.Proc {
			if i == perClient {
				return actor.Stop()
			}
			amount := 1000*(id+1) + i
			if i%2 == 1 {
				amount = 100_000 + id // will be rejected
			}
			return actor.Tell(paymentRef, Pay{Amount: amount, ReplyTo: ref}, func() rt.Proc {
				return actor.Read(inbox, func(r Response) rt.Proc {
					if r.Accepted {
						accepted.Add(1)
					} else {
						rejected.Add(1)
					}
					return loop(i + 1)
				})
			})
		}
		return loop(0)
	}

	procs := []rt.Proc{payment(toHandle), auditor(toHandle / 2)}
	for i := 0; i < clients; i++ {
		procs = append(procs, client(i))
	}
	engine.Run(procs...)

	fmt.Printf("  handled %d payments: %d accepted, %d rejected, %d audited\n",
		toHandle, accepted.Load(), rejected.Load(), audited.Load())
	if audited.Load() != accepted.Load() {
		log.Fatalf("AUDIT VIOLATION: %d accepted but %d audited", accepted.Load(), audited.Load())
	}
	fmt.Println("  every accepted payment was audited ✓")
}
