// protocol.go is the payment-with-auditing protocol (§1, Fig. 1)
// written directly against the actor API — the form `effpi verify
// ./examples/payment` extracts a behavioural type from. The dependent
// payloads survive extraction: the audit message forwards the *payer's
// reply capability* (the singleton p̄ of the hand-written model), which
// is what makes the forwarding/responsiveness verdicts meaningful.
package main

import (
	"effpi/internal/actor"
	rt "effpi/internal/runtime"
)

// Payment composes the service, the auditor and three looping clients,
// mirroring systems.PaymentAudit(3).
func Payment(e rt.Engine) rt.Proc {
	m, payRef := actor.NewMailbox[Pay](e)
	aud, audRef := actor.NewMailbox[Audit](e)
	return rt.Par{Procs: []rt.Proc{
		protoService(m, audRef),
		protoAuditor(aud),
		protoClient(e, payRef),
		protoClient(e, payRef),
		protoClient(e, payRef),
	}}
}

// protoService rejects large payments immediately and audits accepted
// ones before replying — the reply capability travels through the audit.
func protoService(m actor.Mailbox[Pay], aud actor.Ref[Audit]) rt.Proc {
	return actor.Forever(func(loop func() rt.Proc) rt.Proc {
		return actor.Read(m, func(pay Pay) rt.Proc {
			if pay.Amount > 42_000 {
				return actor.Tell(pay.ReplyTo, Response{Accepted: false, Reason: "amount too high"}, loop)
			}
			return actor.Tell(aud, Audit{Pay: pay}, func() rt.Proc {
				return actor.Tell(pay.ReplyTo, Response{Accepted: true}, loop)
			})
		})
	})
}

func protoAuditor(aud actor.Mailbox[Audit]) rt.Proc {
	return actor.Forever(func(loop func() rt.Proc) rt.Proc {
		return actor.Read(aud, func(a Audit) rt.Proc {
			return loop()
		})
	})
}

func protoClient(e rt.Engine, pay actor.Ref[Pay]) rt.Proc {
	inbox, me := actor.NewMailbox[Response](e)
	return actor.Forever(func(loop func() rt.Proc) rt.Proc {
		return actor.Tell(pay, Pay{Amount: 1_000, ReplyTo: me}, func() rt.Proc {
			return actor.Read(inbox, func(r Response) rt.Proc {
				return loop()
			})
		})
	})
}
