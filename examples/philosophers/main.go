// Dining philosophers: deadlock detection by type-level model checking,
// then execution of the repaired variant on the Effpi runtime.
//
// The classic symmetric protocol (everyone grabs the left fork first)
// deadlocks; the verifier finds the losing schedule and prints it as a
// lasso. Breaking the symmetry (one philosopher grabs right first) makes
// the composition deadlock-free — the types prove it, covering the
// locking/mutex protocols that the paper notes are beyond confluent
// session-type systems (§6).
//
// Run with: go run ./examples/philosophers
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	rt "effpi/internal/runtime"
	"effpi/internal/systems"
	"effpi/internal/verify"
)

func main() {
	verifyBothVariants()
	simulate()
}

func verifyBothVariants() {
	fmt.Println("== verification (4 philosophers) ==")
	for _, deadlock := range []bool{true, false} {
		s := systems.DiningPhilosophers(4, deadlock)
		o, err := verify.Verify(verify.Request{
			Env: s.Env, Type: s.Type,
			Property: verify.Property{Kind: verify.DeadlockFree, Closed: true},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-35s deadlock-free = %-5v (%d states, %s)\n", s.Name+":", o.Holds, o.States, o.Duration)
		if !o.Holds && o.Counterexample != nil {
			fmt.Printf("    losing schedule: %v then stuck\n", o.Counterexample.Prefix)
		}
	}
}

// simulate runs the repaired protocol with real concurrency: forks are
// token channels, philosophers eat a fixed number of rounds.
func simulate() {
	const n, rounds = 5, 200
	fmt.Printf("== running %d (asymmetric) philosophers × %d meals on the Effpi runtime ==\n", n, rounds)
	engine := rt.NewScheduler(0, rt.PolicyChannelFSM)

	forks := make([]*rt.Chan, n)
	for i := range forks {
		forks[i] = engine.NewChan()
	}
	var meals atomic.Int64

	// fork offers its token, then awaits its return, forever (stopped by
	// the hungry philosophers finishing: a fork parks harmlessly, so we
	// track completion with a per-fork retirement message instead).
	fork := func(i int) rt.Proc {
		ch := forks[i]
		var loop func() rt.Proc
		loop = func() rt.Proc {
			return rt.Send{Ch: ch, Val: token{}, Cont: func() rt.Proc {
				return rt.Recv{Ch: ch, Cont: func(v any) rt.Proc {
					if _, stop := v.(retire); stop {
						return rt.End{}
					}
					return loop()
				}}
			}}
		}
		return loop()
	}

	phil := func(i int) rt.Proc {
		first, second := forks[i], forks[(i+1)%n]
		if i == 0 {
			first, second = second, first // the symmetry-breaking fix
		}
		var loop func(r int) rt.Proc
		loop = func(r int) rt.Proc {
			if r == rounds {
				return rt.End{}
			}
			return rt.Recv{Ch: first, Cont: func(any) rt.Proc {
				return rt.Recv{Ch: second, Cont: func(any) rt.Proc {
					meals.Add(1)
					return rt.Send{Ch: first, Val: token{}, Cont: func() rt.Proc {
						return rt.Send{Ch: second, Val: token{}, Cont: func() rt.Proc {
							return loop(r + 1)
						}}
					}}
				}}
			}}
		}
		return loop(0)
	}

	// A supervisor retires every fork after all philosophers are done:
	// the philosophers signal on done; the supervisor then takes each
	// fork's token and replaces it with a retire message.
	done := engine.NewChan()
	philAndSignal := func(i int) rt.Proc {
		p := phil(i)
		return chain(p, rt.Send{Ch: done, Val: token{}, Cont: func() rt.Proc { return rt.End{} }})
	}
	supervisor := func() rt.Proc {
		var wait func(i int) rt.Proc
		wait = func(i int) rt.Proc {
			if i == n {
				return retireForks(0, forks)
			}
			return rt.Recv{Ch: done, Cont: func(any) rt.Proc { return wait(i + 1) }}
		}
		return wait(0)
	}

	procs := make([]rt.Proc, 0, 2*n+1)
	for i := 0; i < n; i++ {
		procs = append(procs, fork(i), philAndSignal(i))
	}
	procs = append(procs, supervisor())
	engine.Run(procs...)

	fmt.Printf("  %d meals eaten, no deadlock ✓\n", meals.Load())
	if meals.Load() != n*rounds {
		log.Fatalf("expected %d meals", n*rounds)
	}
}

type token struct{}
type retire struct{}

// retireForks consumes each fork's offered token and sends the retire
// message in its place.
func retireForks(i int, forks []*rt.Chan) rt.Proc {
	if i == len(forks) {
		return rt.End{}
	}
	ch := forks[i]
	return rt.Recv{Ch: ch, Cont: func(any) rt.Proc {
		return rt.Send{Ch: ch, Val: retire{}, Cont: func() rt.Proc {
			return retireForks(i+1, forks)
		}}
	}}
}

// chain runs p to completion, then q. Since Proc continuations are
// closures, we rewrite p's End leaves... which is not possible for an
// opaque Proc; instead philosophers are written to return their final
// End through this explicit two-phase wrapper.
func chain(p rt.Proc, q rt.Proc) rt.Proc {
	switch pp := p.(type) {
	case rt.End:
		return q
	case rt.Eval:
		return rt.Eval{Run: func() rt.Proc { return chain(pp.Run(), q) }}
	case rt.Send:
		return rt.Send{Ch: pp.Ch, Val: pp.Val, Cont: func() rt.Proc { return chain(pp.Cont(), q) }}
	case rt.Recv:
		return rt.Recv{Ch: pp.Ch, Cont: func(v any) rt.Proc { return chain(pp.Cont(v), q) }}
	default:
		log.Fatalf("chain: unsupported process %T", p)
		return nil
	}
}
