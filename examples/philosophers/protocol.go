// protocol.go is the dining-philosophers protocol written directly
// against the effpi runtime combinators, in both variants — the form
// `effpi verify ./examples/philosophers` extracts behavioural types
// from. The extracted systems are α-equal to the hand-written
// systems.DiningPhilosophers(4, ·) rows, so every verdict (including
// the deadlock witness of the symmetric variant, annotated with the
// source positions below) transfers.
package main

import rt "effpi/internal/runtime"

const nPhil = 4

// PhilosophersDeadlock is the classic symmetric variant: every
// philosopher grabs the left fork first, so the ring can deadlock.
func PhilosophersDeadlock() rt.Proc { return dining(true) }

// Philosophers breaks the symmetry (philosopher 0 grabs right first),
// the resource-ordering fix: deadlock-free.
func Philosophers() rt.Proc { return dining(false) }

func dining(deadlock bool) rt.Proc {
	f := make([]*rt.Chan, nPhil)
	for i := 0; i < nPhil; i++ {
		f[i] = rt.NewChan()
	}
	procs := []rt.Proc{}
	for i := 0; i < nPhil; i++ {
		procs = append(procs, protoFork(f[i]))
	}
	for i := 0; i < nPhil; i++ {
		first, second := f[i], f[(i+1)%nPhil]
		if !deadlock && i == 0 {
			first, second = second, first
		}
		procs = append(procs, protoPhil(first, second))
	}
	return rt.Par{Procs: procs}
}

// protoFork offers the fork token, then awaits its return, forever.
func protoFork(fork *rt.Chan) rt.Proc {
	return rt.Forever(func(loop func() rt.Proc) rt.Proc {
		return rt.Send{Ch: fork, Val: token{}, Cont: func() rt.Proc {
			return rt.Recv{Ch: fork, Cont: func(u any) rt.Proc {
				return loop()
			}}
		}}
	})
}

// protoPhil takes both forks in order, then returns them in order.
func protoPhil(first, second *rt.Chan) rt.Proc {
	return rt.Forever(func(loop func() rt.Proc) rt.Proc {
		return rt.Recv{Ch: first, Cont: func(u any) rt.Proc {
			return rt.Recv{Ch: second, Cont: func(u2 any) rt.Proc {
				return rt.Send{Ch: first, Val: token{}, Cont: func() rt.Proc {
					return rt.Send{Ch: second, Val: token{}, Cont: loop}
				}}
			}}
		}}
	})
}
