// protocol.go is the data-analysis server of Ex. 3.4 written directly
// against the effpi runtime combinators, with the forward filter m1 as
// the mobile code — the form `effpi verify ./examples/mobilecode`
// extracts a behavioural type from. Extraction keeps the filter's
// output dependent (it forwards x̄, the value read from the first
// stream), matching the hand-written λπ⩽ model in main.go.
package main

import rt "effpi/internal/runtime"

// MobileServer wires the filter to two private producer streams and a
// collector, mirroring the server composition run by main.
func MobileServer() rt.Proc {
	z1 := rt.NewChan()
	z2 := rt.NewChan()
	out := rt.NewChan()
	return rt.Par{Procs: []rt.Proc{
		filterProc(z1, z2, out),
		producerA(z1),
		producerB(z2),
		collectProc(out),
	}}
}

// filterProc is the forward filter: read one integer from each stream,
// forward the first (and nothing else) on o, forever.
func filterProc(i1, i2, o *rt.Chan) rt.Proc {
	return rt.Forever(func(loop func() rt.Proc) rt.Proc {
		return rt.Recv{Ch: i1, Cont: func(x any) rt.Proc {
			return rt.Recv{Ch: i2, Cont: func(y any) rt.Proc {
				return rt.Send{Ch: o, Val: x.(int), Cont: loop}
			}}
		}}
	})
}

func producerA(z *rt.Chan) rt.Proc {
	return rt.Send{Ch: z, Val: 3, Cont: func() rt.Proc {
		return rt.Send{Ch: z, Val: 10, Cont: func() rt.Proc { return rt.End{} }}
	}}
}

func producerB(z *rt.Chan) rt.Proc {
	return rt.Send{Ch: z, Val: 7, Cont: func() rt.Proc {
		return rt.Send{Ch: z, Val: 4, Cont: func() rt.Proc { return rt.End{} }}
	}}
}

func collectProc(out *rt.Chan) rt.Proc {
	return rt.Recv{Ch: out, Cont: func(a any) rt.Proc {
		return rt.Recv{Ch: out, Cont: func(b any) rt.Proc {
			return rt.End{}
		}}
	}}
}
