// Mobile code: the data-analysis server of Ex. 3.4.
//
// A server receives *code* (an abstract process) from its clients and
// runs it against two private data streams. The type Tm of admissible
// code pins down its behaviour: read one integer from each stream, send
// one of *those* integers (and nothing else) on the output channel,
// forever. Type-checking therefore proves that received code cannot be a
// forkbomb and cannot leak values from elsewhere (Ex. 4.11).
//
// The example type-checks two conforming filters against Tm, shows that
// two buggy ones are rejected, and runs the max-filter end to end under
// the operational semantics.
//
// Run with: go run ./examples/mobilecode
package main

import (
	"fmt"
	"log"

	"effpi/internal/core"
	"effpi/internal/syntax"
	"effpi/internal/term"
	"effpi/internal/typecheck"
	"effpi/internal/types"
)

// tmSrc is Tm from Ex. 3.4, in the concrete syntax.
const tmSrc = `
(i1: IChan[Int]) -> (i2: IChan[Int]) -> (o: OChan[Int]) ->
  rec t. In[i1, (x: Int) -> In[i2, (y: Int) -> Out[o, (x | y), t]]]
`

// forward always sends the value read from the first stream.
const forward = `
let m: TM =
  fun (i1: IChan[Int]) => fun (i2: IChan[Int]) => fun (o: OChan[Int]) =>
    recv(i1, fun (x: Int) =>
      recv(i2, fun (y: Int) =>
        send(o, x, fun (_: Unit) => m i1 i2 o)))
in m
`

// maxFilter sends the larger of the two values (the paper's m2).
const maxFilter = `
let m: TM =
  fun (i1: IChan[Int]) => fun (i2: IChan[Int]) => fun (o: OChan[Int]) =>
    recv(i1, fun (x: Int) =>
      recv(i2, fun (y: Int) =>
        send(o, if x > y then x else y, fun (_: Unit) => m i1 i2 o)))
in m
`

// leaky tries to send a constant not coming from the streams: the
// dependent payload type (x | y) must reject it.
const leaky = `
fun (i1: IChan[Int]) => fun (i2: IChan[Int]) => fun (o: OChan[Int]) =>
  recv(i1, fun (x: Int) =>
    recv(i2, fun (y: Int) =>
      send(o, 42, fun (_: Unit) => end)))
`

// forkbomb tries to duplicate itself: Tm's continuation admits no
// parallel composition.
const forkbomb = `
fun (i1: IChan[Int]) => fun (i2: IChan[Int]) => fun (o: OChan[Int]) =>
  recv(i1, fun (x: Int) =>
    recv(i2, fun (y: Int) =>
      (send(o, x, fun (_: Unit) => end) || send(o, y, fun (_: Unit) => end))))
`

func main() {
	tm, err := syntax.ParseType(tmSrc)
	if err != nil {
		log.Fatal(err)
	}

	check := func(name, src string, wantOK bool) term.Term {
		// TM is bound as an alias so the sources can annotate with it.
		full := "type TM = " + tmSrc + "\n" + src
		t, err := syntax.ParseProgram(full)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		env := types.NewEnv()
		inferred, err := typecheck.Infer(env, t)
		ok := err == nil && types.Subtype(env, inferred, tm)
		status := "REJECTED"
		if ok {
			status = "conforms to Tm"
		}
		fmt.Printf("  %-10s %s\n", name+":", status)
		if ok != wantOK {
			log.Fatalf("%s: expected conforms=%v", name, wantOK)
		}
		return t
	}

	fmt.Println("== type-checking mobile code against Tm ==")
	check("forward", forward, true)
	check("max", maxFilter, true)
	check("leaky", leaky, false)
	check("forkbomb", forkbomb, false)

	// Run the max filter inside the server of Ex. 3.4: two producers
	// feed the private streams; the filter outputs to `out`.
	fmt.Println("== running the max filter in the server ==")
	srvSrc := `
type TM = ` + tmSrc + `
let producer1 = fun (z: OChan[Int]) =>
  send(z, 3, fun (_: Unit) => send(z, 10, fun (_: Unit) => end))
in
let producer2 = fun (z: OChan[Int]) =>
  send(z, 7, fun (_: Unit) => send(z, 4, fun (_: Unit) => end))
in
let collect = fun (out: Chan[Int]) =>
  recv(out, fun (a: Int) => recv(out, fun (b: Int) => end))
in
let m: TM = ` + innerOf(maxFilter) + `
in
let z1 = chan[Int]() in
let z2 = chan[Int]() in
let out = chan[Int]() in
(m z1 z2 out || (producer1 z1 || (producer2 z2 || collect out)))
`
	prog, err := core.Parse(srvSrc)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := prog.Check(); err != nil {
		log.Fatal(err)
	}
	// The filter loops forever waiting for more input after consuming
	// both pairs; run a bounded number of steps and confirm no error and
	// that both maxima were delivered (collect consumed them).
	final, err := prog.Run(2000)
	if err != nil {
		log.Fatal(err)
	}
	state := syntax.PrintTerm(final)
	if len(state) > 72 {
		state = state[:72] + "…"
	}
	fmt.Printf("  server state after the streams dried up: %s\n", state)
	fmt.Println("  (the Tm-typed filter keeps waiting for more data — and can do nothing else)")
}

// innerOf strips the "let m: TM = ... in m" wrapper, keeping the function
// literal for embedding.
func innerOf(src string) string {
	t, err := syntax.ParseProgram("type TM = " + tmSrc + "\n" + src)
	if err != nil {
		log.Fatal(err)
	}
	let := t.(term.Let)
	return syntax.PrintTerm(let.Bound)
}
