package effpi

// This file is the public surface of the Go-source frontend
// (internal/frontend): static extraction of behavioural types from Go
// programs written against the repo's own combinators, plus the
// source-mapping glue that lets FAIL witnesses point at file:line in
// the program instead of interned state ids.

import (
	"fmt"
	"go/token"
	"strings"

	"effpi/internal/frontend"
)

type (
	// GoSystem is one extracted entry function: a verifiable Env+Type
	// pair plus the source positions of every extracted action.
	GoSystem = frontend.System
	// GoDiagnostic is a positioned, lint-style extraction finding.
	GoDiagnostic = frontend.Diagnostic
	// GoExtraction is the result of extracting a set of Go packages.
	GoExtraction = frontend.Result
	// SourceMap maps extracted send/receive actions back to source
	// positions; witness steps are annotated through it.
	SourceMap = frontend.SourceMap
)

// FromPackages statically extracts behavioural types from the Go
// packages under the given directory patterns (a directory, or dir/...
// for a recursive walk; default ./...), resolved relative to baseDir.
// Each entry function — `func Name() runtime.Proc`, optionally taking a
// runtime.Engine — yields one GoSystem ready for NewSessionFromType;
// unextractable constructs yield positioned diagnostics instead of
// silent wrong terms. Only the Go standard library is used: packages
// are parsed and typechecked from source.
func FromPackages(baseDir string, patterns ...string) (*GoExtraction, error) {
	return frontend.ExtractPackages(baseDir, patterns...)
}

// ExtractGoSource extracts entries from a single in-memory Go file,
// typechecked against the effpi module found at (or above) the current
// working directory. This is the entry point behind effpid's
// "go_source" requests.
func ExtractGoSource(filename, src string) (*GoExtraction, error) {
	return frontend.ExtractSource(filename, src)
}

// NewSessionFromGo wraps one extracted system in a session (the type
// flavour of NewSessionFromType) and attaches its source map, so
// witnesses rendered from this session's outcomes carry positions.
func (w *Workspace) NewSessionFromGo(sys *GoSystem, opts ...Option) (*Session, error) {
	return w.NewSessionFromType(sys.Env, sys.Type, append(opts, WithSourceMap(sys.Map))...)
}

// WithSourceMap attaches an extraction source map to the session;
// Session.SourceMap exposes it to witness renderers.
func WithSourceMap(sm *SourceMap) Option {
	return func(o *sessionOptions) error {
		o.smap = sm
		return nil
	}
}

// SourceMap returns the source map attached with WithSourceMap (nil if
// none).
func (s *Session) SourceMap() *SourceMap { return s.opt.smap }

// WitnessToJSONMapped is WitnessToJSON plus source annotation: each
// step whose label maps to extracted source actions carries their
// file:line:col positions. sm may be nil (no positions are added).
func WitnessToJSONMapped(o *Outcome, sm *SourceMap) (*WitnessJSON, error) {
	w, err := WitnessToJSON(o)
	if err != nil {
		return nil, err
	}
	annotate := func(steps []WitnessStepJSON, src []WitnessStep) {
		for i := range steps {
			for _, p := range sm.LabelPositions(src[i].Label) {
				steps[i].Pos = append(steps[i].Pos, p.String())
			}
		}
	}
	annotate(w.Stem, o.Witness.Stem)
	annotate(w.Cycle, o.Witness.Cycle)
	return w, nil
}

// RenderWitnessWithSource renders a FAIL outcome's witness like
// Witness.Render, annotating every step that maps back to extracted
// source actions with their positions. width truncates the printed
// component multisets (0 = full).
func RenderWitnessWithSource(o *Outcome, sm *SourceMap, width int) string {
	w := o.Witness
	if w == nil {
		return ""
	}
	clip := func(s string) string { return ClipRunes(s, width) }
	var b strings.Builder
	step := func(st WitnessStep) {
		fmt.Fprintf(&b, "    —[%s]→%s\n  s%-4d %s\n",
			st.Label, renderPositions(sm.LabelPositions(st.Label)), st.To, clip(w.StateText(st.To)))
	}
	fmt.Fprintf(&b, "  s%-4d %s\n", w.Raw.StemStates[0], clip(w.StateText(w.Raw.StemStates[0])))
	for _, st := range w.Stem {
		step(st)
	}
	fmt.Fprintf(&b, "  cycle (repeats forever):\n")
	for _, st := range w.Cycle {
		step(st)
	}
	return b.String()
}

func renderPositions(ps []token.Position) string {
	if len(ps) == 0 {
		return ""
	}
	strs := make([]string, len(ps))
	for i, p := range ps {
		strs[i] = p.String()
	}
	return "  at " + strings.Join(strs, ", ")
}
