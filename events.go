package effpi

// EventKind discriminates the streaming progress events a Session emits
// while a verification request runs.
type EventKind int

const (
	// EventExploreProgress reports a running exploration's state/edge
	// counts: after every BFS level (parallel engine), every few hundred
	// expanded states (serial and on-the-fly engines), and once when the
	// exploration completes.
	EventExploreProgress EventKind = iota
	// EventPropertyStarted reports that a property's verification began.
	EventPropertyStarted
	// EventPropertyVerdict reports a property's verdict; on FAIL,
	// Witness carries the replay-validated counterexample (nil for
	// ev-usage, whose failures have no single-run witness).
	EventPropertyVerdict
)

func (k EventKind) String() string {
	switch k {
	case EventExploreProgress:
		return "explore-progress"
	case EventPropertyStarted:
		return "property-started"
	case EventPropertyVerdict:
		return "property-verdict"
	}
	return "unknown"
}

// Event is one streaming progress event. Which fields are meaningful
// depends on Kind; the zero value of the rest is not significant.
type Event struct {
	Kind EventKind
	// Property identifies the property for the property-scoped kinds.
	// Progress events during a VerifyAll batch carry no property: the
	// underlying explorations are shared between properties.
	Property *Property
	// States/Expanded/Edges are the exploration counters of an
	// EventExploreProgress.
	States, Expanded, Edges int
	// Holds is the verdict of an EventPropertyVerdict.
	Holds bool
	// Witness is the counterexample of a failing EventPropertyVerdict.
	Witness *Witness
}

// emit delivers an event to the session's sinks. The callback runs
// synchronously on the emitting goroutine; the channel send blocks until
// the consumer is ready (use a buffered channel or a draining goroutine).
// Exploration progress can be emitted from the concurrent engine's merge
// goroutines, so delivery is serialised through the session's mutex —
// sinks never run concurrently with themselves.
func (s *Session) emit(ev Event) {
	if s.opt.progress == nil && s.opt.events == nil {
		return
	}
	s.emitMu.Lock()
	defer s.emitMu.Unlock()
	if s.opt.progress != nil {
		s.opt.progress(ev)
	}
	if s.opt.events != nil {
		s.opt.events <- ev
	}
}

// progressHook adapts the session's event sinks to the exploration-level
// progress callback, or nil when no sink is configured (so the engines
// skip the callback entirely).
func (s *Session) progressHook(prop *Property) func(ExploreProgress) {
	if s.opt.progress == nil && s.opt.events == nil {
		return nil
	}
	return func(p ExploreProgress) {
		s.emit(Event{Kind: EventExploreProgress, Property: prop, States: p.States, Expanded: p.Expanded, Edges: p.Edges})
	}
}
