package effpi

// Differential acceptance tests of the Go-source frontend: extracting
// the examples/ protocol files must yield systems whose verdicts — all
// six Fig. 7 property kinds — match the hand-written models (the
// Fig. 9 rows for philosophers and payment, transliterations of the
// examples' own .epi models for quickstart and mobilecode), and every
// FAIL witness must replay and carry non-empty source positions.

import (
	"context"
	"sync"
	"testing"

	"effpi/internal/systems"
	"effpi/internal/types"
)

var (
	exOnce sync.Once
	exSys  map[string]*GoSystem
	exErr  error
)

// extractExamples extracts all examples/ packages once per test binary.
func extractExamples(t *testing.T) map[string]*GoSystem {
	t.Helper()
	exOnce.Do(func() {
		var res *GoExtraction
		res, exErr = FromPackages(".", "examples/...")
		if exErr != nil {
			return
		}
		for _, d := range res.Diagnostics {
			if d.Fatal {
				exErr = &ParseError{What: "extraction", Err: nil}
			}
		}
		exSys = map[string]*GoSystem{}
		for _, s := range res.Systems {
			exSys[s.Name] = s
		}
	})
	if exErr != nil {
		t.Fatalf("extraction failed: %v", exErr)
	}
	return exSys
}

func tvT(n string) types.Type { return types.Var{Name: n} }

func outT(ch string, payload, cont types.Type) types.Type {
	return types.Out{Ch: tvT(ch), Payload: payload, Cont: types.Thunk(cont)}
}

func inT(ch, param string, dom, cont types.Type) types.Type {
	return types.In{Ch: tvT(ch), Cont: types.Pi{Var: param, Dom: dom, Cod: cont}}
}

// runProps verifies the six properties over a system; when sm is
// non-nil (extracted systems) every FAIL with a witness must survive
// source-mapped serialisation — replay plus at least one step with a
// source position.
func runProps(t *testing.T, name string, env *Env, typ Type, sm *SourceMap, props []Property) map[Kind]bool {
	t.Helper()
	ws := NewWorkspace()
	var opts []Option
	if sm != nil {
		opts = append(opts, WithSourceMap(sm))
	}
	s, err := ws.NewSessionFromType(env, typ, opts...)
	if err != nil {
		t.Fatalf("%s: session: %v", name, err)
	}
	outs, err := s.VerifyAll(context.Background(), props...)
	if err != nil {
		t.Fatalf("%s: verify: %v", name, err)
	}
	verdicts := map[Kind]bool{}
	for _, o := range outs {
		verdicts[o.Property.Kind] = o.Holds
		if o.Holds || o.Witness == nil {
			continue
		}
		if err := Replay(o); err != nil {
			t.Errorf("%s: %s: witness does not replay: %v", name, o.Property, err)
			continue
		}
		if sm == nil {
			continue
		}
		w, err := WitnessToJSONMapped(o, sm)
		if err != nil {
			t.Errorf("%s: %s: WitnessToJSONMapped: %v", name, o.Property, err)
			continue
		}
		mapped := 0
		for _, st := range append(w.Stem, w.Cycle...) {
			mapped += len(st.Pos)
		}
		if mapped == 0 {
			t.Errorf("%s: %s: FAIL witness carries no source positions", name, o.Property)
		}
	}
	return verdicts
}

// assertRow checks an extracted system against a Fig. 9 benchmark row:
// the published verdicts for all six kinds.
func assertRow(t *testing.T, sys *GoSystem, row *systems.System) {
	t.Helper()
	if sys == nil {
		t.Fatalf("entry for %s not extracted", row.Name)
	}
	got := runProps(t, sys.Name, sys.Env, sys.Type, sys.Map, row.Props)
	for kind, want := range row.Expected {
		if got[kind] != want {
			t.Errorf("%s: %v = %v, want %v (Fig. 9)", sys.Name, kind, got[kind], want)
		}
	}
}

func TestGoFrontendPhilosophersVerdicts(t *testing.T) {
	sys := extractExamples(t)
	assertRow(t, sys["PhilosophersDeadlock"], systems.DiningPhilosophers(4, true))
	assertRow(t, sys["Philosophers"], systems.DiningPhilosophers(4, false))
}

func TestGoFrontendPaymentVerdicts(t *testing.T) {
	sys := extractExamples(t)
	assertRow(t, sys["Payment"], systems.PaymentAudit(3))
}

// quickstartProps instantiates all six kinds over the ping-pong
// channels (y carries the reply, z carries the pinger's mailbox).
func quickstartProps() []Property {
	return []Property{
		{Kind: DeadlockFree, Closed: true},
		{Kind: EventualOutput, Channels: []string{"y"}, Closed: true},
		{Kind: Forwarding, From: "z", To: "y", Closed: true},
		{Kind: NonUsage, Channels: []string{"y"}, Closed: true},
		{Kind: Reactive, From: "y", Closed: true},
		{Kind: Responsive, From: "z", Closed: true},
	}
}

func TestGoFrontendQuickstartDifferential(t *testing.T) {
	sys := extractExamples(t)["PingPong"]
	if sys == nil {
		t.Fatal("PingPong entry not extracted")
	}
	// The hand model of examples/quickstart/main.go, transliterated to
	// the type constructors.
	env := types.EnvOf(
		"y", types.ChanIO{Elem: types.Str{}},
		"z", types.ChanIO{Elem: types.ChanO{Elem: types.Str{}}},
	)
	pinger := outT("z", tvT("y"), inT("y", "reply", types.Str{}, types.Nil{}))
	ponger := inT("z", "replyTo", types.ChanO{Elem: types.Str{}},
		outT("replyTo", types.Str{}, types.Nil{}))
	hand := types.Par{L: pinger, R: ponger}
	if !types.Equal(sys.Type, hand) {
		t.Errorf("extracted type differs from hand model:\n got  %v\n want %v",
			types.Canon(sys.Type), types.Canon(hand))
	}
	got := runProps(t, "PingPong", sys.Env, sys.Type, sys.Map, quickstartProps())
	want := runProps(t, "PingPong(hand)", env, hand, nil, quickstartProps())
	for kind, w := range want {
		if got[kind] != w {
			t.Errorf("PingPong: %v = %v, hand model says %v", kind, got[kind], w)
		}
	}
	// Pin the verdicts the quickstart walkthrough itself relies on.
	for _, k := range []Kind{DeadlockFree, EventualOutput, Responsive} {
		if !got[k] {
			t.Errorf("PingPong: %v should hold", k)
		}
	}
}

// mobilecodeProps instantiates all six kinds over the server channels.
func mobilecodeProps() []Property {
	return []Property{
		{Kind: DeadlockFree, Closed: true},
		{Kind: EventualOutput, Channels: []string{"out"}, Closed: true},
		{Kind: Forwarding, From: "z1", To: "out", Closed: true},
		{Kind: NonUsage, Channels: []string{"z2"}, Closed: true},
		{Kind: Reactive, From: "z1", Closed: true},
		{Kind: Responsive, From: "z1", Closed: true},
	}
}

func TestGoFrontendMobilecodeDifferential(t *testing.T) {
	sys := extractExamples(t)["MobileServer"]
	if sys == nil {
		t.Fatal("MobileServer entry not extracted")
	}
	// The forward filter in the server of Ex. 3.4 (producers 3,10 and
	// 7,4; the collector reads twice), as in examples/mobilecode.
	env := types.EnvOf(
		"z1", types.ChanIO{Elem: types.Int{}},
		"z2", types.ChanIO{Elem: types.Int{}},
		"out", types.ChanIO{Elem: types.Int{}},
	)
	filter := types.Rec{Var: "t", Body: inT("z1", "x", types.Int{},
		inT("z2", "y", types.Int{},
			outT("out", tvT("x"), types.RecVar{Name: "t"})))}
	pA := outT("z1", types.Int{}, outT("z1", types.Int{}, types.Nil{}))
	pB := outT("z2", types.Int{}, outT("z2", types.Int{}, types.Nil{}))
	collect := inT("out", "a", types.Int{}, inT("out", "b", types.Int{}, types.Nil{}))
	hand := types.ParOf(filter, pA, pB, collect)
	if !types.Equal(sys.Type, hand) {
		t.Errorf("extracted type differs from hand model:\n got  %v\n want %v",
			types.Canon(sys.Type), types.Canon(hand))
	}
	got := runProps(t, "MobileServer", sys.Env, sys.Type, sys.Map, mobilecodeProps())
	want := runProps(t, "MobileServer(hand)", env, hand, nil, mobilecodeProps())
	for kind, w := range want {
		if got[kind] != w {
			t.Errorf("MobileServer: %v = %v, hand model says %v", kind, got[kind], w)
		}
	}
}
