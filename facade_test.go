package effpi

// Acceptance tests of the public façade: the session API must be a
// faithful skin over the internal pipeline (identical verdicts and
// witnesses on the full Fig. 9 matrix), workspaces must share and bound
// their caches, and cancellation must be prompt and non-poisoning.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"effpi/internal/verify"
)

// outcomeFingerprint canonicalises the determinism-relevant content of
// an outcome: verdict, state count, and the full rendered witness lasso.
func outcomeFingerprint(o *Outcome) string {
	s := fmt.Sprintf("%s|holds=%v|states=%d", o.Property, o.Holds, o.States)
	if o.Witness != nil {
		s += "|witness=" + o.Witness.Render(0)
	}
	return s
}

// TestFacadeMatrixMatchesVerifyAll drives the full 19×6 Fig. 9 matrix
// through the public Workspace/Session API and asserts byte-identical
// verdicts and witnesses against the internal verify.VerifyAll — the
// façade must add ownership and ergonomics, never change results. One
// workspace per row, mirroring VerifyAll's per-call cache exactly.
func TestFacadeMatrixMatchesVerifyAll(t *testing.T) {
	ctx := context.Background()
	for _, sys := range Fig9Systems() {
		sess, err := NewWorkspace().NewSessionFromType(sys.Env, sys.Type)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		got, err := sess.VerifyAll(ctx, sys.Props...)
		if err != nil {
			t.Fatalf("%s: façade: %v", sys.Name, err)
		}
		want, err := verify.VerifyAll(sys.Env, sys.Type, sys.Props, 0)
		if err != nil {
			t.Fatalf("%s: internal: %v", sys.Name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d outcomes vs %d", sys.Name, len(got), len(want))
		}
		for i := range got {
			g, w := outcomeFingerprint(got[i]), outcomeFingerprint(want[i])
			if g != w {
				t.Errorf("%s / %s: façade result differs:\n%s\nvs\n%s", sys.Name, got[i].Property, g, w)
			}
			if !got[i].Holds && got[i].Property.Kind != EventualOutput {
				if err := Replay(got[i]); err != nil {
					t.Errorf("%s / %s: façade witness does not replay: %v", sys.Name, got[i].Property, err)
				}
			}
		}
	}
}

// rawFingerprint canonicalises an outcome down to its cache-independent
// structure: verdict, state count, and the witness's state-id and
// label-index sequences. Unlike outcomeFingerprint it does not render
// representative types — under a cross-system shared workspace the
// interner may hand an ≡-equivalent representative first interned by a
// sibling system, which renders differently while naming the same state
// (see DESIGN.md, workspace sharing).
func rawFingerprint(o *Outcome) string {
	s := fmt.Sprintf("%s|holds=%v|states=%d", o.Property, o.Holds, o.States)
	if o.Witness != nil && o.Witness.Raw != nil {
		r := o.Witness.Raw
		s += fmt.Sprintf("|stem=%v%v|cycle=%v%v", r.StemStates, r.StemLabels, r.CycleStates, r.CycleLabels)
	}
	return s
}

// TestFacadeMatrixSharedWorkspace runs the matrix again over ONE
// workspace — the long-lived service shape, where sibling systems with
// equal environments share caches — and asserts that sharing never
// changes verdicts, state numbering or witness structure, and that every
// witness still replays.
func TestFacadeMatrixSharedWorkspace(t *testing.T) {
	ctx := context.Background()
	ws := NewWorkspace()
	for _, sys := range Fig9Systems() {
		sess, err := ws.NewSessionFromType(sys.Env, sys.Type)
		if err != nil {
			t.Fatalf("%s: %v", sys.Name, err)
		}
		got, err := sess.VerifyAll(ctx, sys.Props...)
		if err != nil {
			t.Fatalf("%s: façade: %v", sys.Name, err)
		}
		want, err := verify.VerifyAll(sys.Env, sys.Type, sys.Props, 0)
		if err != nil {
			t.Fatalf("%s: internal: %v", sys.Name, err)
		}
		for i := range got {
			if g, w := rawFingerprint(got[i]), rawFingerprint(want[i]); g != w {
				t.Errorf("%s / %s: shared-workspace structure differs:\n%s\nvs\n%s", sys.Name, got[i].Property, g, w)
			}
			if !got[i].Holds && got[i].Property.Kind != EventualOutput {
				if err := Replay(got[i]); err != nil {
					t.Errorf("%s / %s: shared-workspace witness does not replay: %v", sys.Name, got[i].Property, err)
				}
			}
		}
	}
	if st := ws.CacheStats(); st.Caches == 0 {
		t.Error("shared workspace retained nothing")
	}
}

// TestWorkspaceSharesCanonicalEnv: sessions with equivalent environments
// (same bindings, any order/pointer) share one workspace cache entry and
// one canonical *Env.
func TestWorkspaceSharesCanonicalEnv(t *testing.T) {
	ws := NewWorkspace()
	s1, err := ws.NewSession(`send(c, 1, fun (_: Unit) => end)`, WithBind("c", "Chan[Int]"), WithBind("d", "Chan[Str]"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ws.NewSession(`recv(d, fun (x: Str) => end)`, WithBind("d", "Chan[Str]"), WithBind("c", "Chan[Int]"))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Env() != s2.Env() {
		t.Error("equivalent environments must share one canonical *Env")
	}
	if st := ws.CacheStats(); st.Caches != 1 {
		t.Errorf("want 1 shared cache entry, got %d", st.Caches)
	}
}

// TestWorkspaceEviction: a tiny budget evicts least-recently-used caches
// after requests, the eviction counter advances, and evicted state is
// rebuilt transparently — later requests still verify correctly.
func TestWorkspaceEviction(t *testing.T) {
	ctx := context.Background()
	rows := Fig9Systems()
	run := func(ws *Workspace, sys *BenchSystem) *Outcome {
		t.Helper()
		sess, err := ws.NewSessionFromType(sys.Env, sys.Type)
		if err != nil {
			t.Fatal(err)
		}
		o, err := sess.Verify(ctx, sys.Props[0])
		if err != nil {
			t.Fatal(err)
		}
		return o
	}

	// A philosophers row interns thousands of entries: a budget of 10 is
	// always exceeded, so every sweep evicts everything retained.
	tiny := NewWorkspace(WithCacheBudget(10))
	first := run(tiny, rows[5])
	st := tiny.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("tiny budget must evict, stats: %+v", st)
	}
	if st.Memos > 10 {
		t.Errorf("retained memos %d exceed the budget", st.Memos)
	}
	// Eviction is invisible to correctness: the same request rebuilds the
	// cache and reproduces the outcome bit for bit.
	if again := run(tiny, rows[5]); outcomeFingerprint(again) != outcomeFingerprint(first) {
		t.Error("post-eviction rerun differs")
	}

	// Unlimited budget never evicts. rows[3] (4 philosophers) and
	// rows[5] (5 philosophers) have different environments — the two
	// no-deadlock/deadlock variants of one size share an env (and hence,
	// deliberately, one cache entry).
	unlimited := NewWorkspace(WithCacheBudget(-1))
	run(unlimited, rows[3])
	run(unlimited, rows[5])
	if st := unlimited.CacheStats(); st.Evictions != 0 || st.Caches != 2 {
		t.Errorf("unlimited budget evicted: %+v", st)
	}

	// The default budget comfortably retains a handful of rows.
	def := NewWorkspace()
	run(def, rows[3])
	run(def, rows[5])
	if st := def.CacheStats(); st.Caches != 2 || st.Evictions != 0 {
		t.Errorf("default budget evicted small rows: %+v", st)
	}
}

// TestSessionEvents: the streaming event interface delivers property
// lifecycle events and exploration progress, and the channel sink sees
// the same stream as the callback.
func TestSessionEvents(t *testing.T) {
	ctx := context.Background()
	ws := NewWorkspace()
	sys := Fig9Systems()[5] // Dining philos. (5, deadlock)

	var cbEvents []Event
	ch := make(chan Event, 4096)
	sess, err := ws.NewSessionFromType(sys.Env, sys.Type,
		WithParallelism(1),
		WithProgress(func(ev Event) { cbEvents = append(cbEvents, ev) }),
		WithEventChannel(ch))
	if err != nil {
		t.Fatal(err)
	}
	o, err := sess.Verify(ctx, sys.Props[0])
	if err != nil {
		t.Fatal(err)
	}
	close(ch)
	var chEvents []Event
	for ev := range ch {
		chEvents = append(chEvents, ev)
	}
	if len(cbEvents) != len(chEvents) {
		t.Errorf("callback saw %d events, channel %d", len(cbEvents), len(chEvents))
	}
	counts := map[EventKind]int{}
	var sawFinalProgress bool
	for _, ev := range cbEvents {
		counts[ev.Kind]++
		if ev.Kind == EventExploreProgress && ev.States == o.States && ev.Expanded == o.States {
			sawFinalProgress = true
		}
	}
	if counts[EventPropertyStarted] != 1 || counts[EventPropertyVerdict] != 1 {
		t.Errorf("lifecycle events: %v", counts)
	}
	if counts[EventExploreProgress] == 0 || !sawFinalProgress {
		t.Errorf("missing exploration progress (events %v, final=%v)", counts, sawFinalProgress)
	}
	for _, ev := range cbEvents {
		if ev.Kind == EventPropertyVerdict {
			if ev.Holds != o.Holds {
				t.Error("verdict event disagrees with outcome")
			}
			if !o.Holds && ev.Witness == nil {
				t.Error("FAIL verdict event without witness")
			}
		}
	}
}

// TestStructuredErrors: the façade classifies failures into its typed
// errors.
func TestStructuredErrors(t *testing.T) {
	ctx := context.Background()
	ws := NewWorkspace()

	if _, err := ws.NewSession(`send(`); err == nil {
		t.Error("unparsable program must fail")
	} else {
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("want *ParseError, got %T: %v", err, err)
		}
	}

	if _, err := ws.NewSession(`end`, WithBind("c", "NotAType[")); err == nil {
		t.Error("unparsable binding must fail")
	} else {
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("want *ParseError for binding, got %T: %v", err, err)
		}
	}

	s, err := ws.NewSession(`send(42, 1, fun (_: Unit) => end)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Check(ctx); err == nil {
		t.Error("ill-typed program must fail Check")
	} else {
		var te *TypeError
		if !errors.As(err, &te) {
			t.Errorf("want *TypeError, got %T: %v", err, err)
		}
	}

	// A 12-pair ping-pong has 531441 states; a bound of 100 overflows.
	sys := LargeSystems()[7]
	sess, err := ws.NewSessionFromType(sys.Env, sys.Type, WithMaxStates(100))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Verify(ctx, sys.Props[0]); err == nil {
		t.Error("tiny bound must overflow")
	} else {
		var be *BoundExceededError
		if !errors.As(err, &be) {
			t.Fatalf("want *BoundExceededError, got %T: %v", err, err)
		}
		if be.MaxStates != 100 {
			t.Errorf("bound error reports MaxStates=%d, want 100", be.MaxStates)
		}
	}
}

// TestCancellationMidExploration cancels a request from inside the
// exploration (deterministically, via the progress callback after a few
// hundred states) and asserts: prompt return, context.Canceled
// classification, and an unpoisoned workspace — the identical request
// afterwards succeeds with results byte-identical to a fresh workspace's.
func TestCancellationMidExploration(t *testing.T) {
	sys := LargeSystems()[0] // Dining philos. (7, deadlock): 2187 states
	ws := NewWorkspace()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess, err := ws.NewSessionFromType(sys.Env, sys.Type,
		WithParallelism(1),
		WithProgress(func(ev Event) {
			if ev.Kind == EventExploreProgress && ev.States > 0 && ev.States < 2187 {
				cancel() // mid-exploration: the full space is 2187 states
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = sess.Verify(ctx, sys.Props[0])
	if err == nil {
		t.Fatal("cancelled request must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %s — not prompt", elapsed)
	}

	// The workspace cache must be fully usable: the same request now
	// succeeds and matches a run on a virgin workspace byte for byte.
	redo, err := mustSession(t, ws, sys).Verify(context.Background(), sys.Props[0])
	if err != nil {
		t.Fatalf("post-cancellation request failed: %v", err)
	}
	fresh, err := mustSession(t, NewWorkspace(), sys).Verify(context.Background(), sys.Props[0])
	if err != nil {
		t.Fatal(err)
	}
	if outcomeFingerprint(redo) != outcomeFingerprint(fresh) {
		t.Errorf("post-cancellation result differs from a fresh workspace:\n%s\nvs\n%s",
			outcomeFingerprint(redo), outcomeFingerprint(fresh))
	}
}

// TestCancellationMidCheck cancels after the exploration completes (at
// the final progress event) so the context is dead exactly when the
// nested DFS runs — covering the model checker's cancellation path —
// then asserts the same non-poisoning contract.
func TestCancellationMidCheck(t *testing.T) {
	sys := Fig9Systems()[6] // Dining philos. (5, no deadlock): DFS must visit everything
	ws := NewWorkspace()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sess, err := ws.NewSessionFromType(sys.Env, sys.Type,
		WithParallelism(1),
		WithProgress(func(ev Event) {
			if ev.Kind == EventExploreProgress && ev.Expanded == ev.States && ev.States > 1 {
				cancel() // exploration finished; the NDFS is next
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = sess.Verify(ctx, sys.Props[0])
	if err == nil {
		t.Fatal("cancelled request must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %s — not prompt", elapsed)
	}

	redo, err := mustSession(t, ws, sys).Verify(context.Background(), sys.Props[0])
	if err != nil {
		t.Fatalf("post-cancellation request failed: %v", err)
	}
	fresh, err := mustSession(t, NewWorkspace(), sys).Verify(context.Background(), sys.Props[0])
	if err != nil {
		t.Fatal(err)
	}
	if outcomeFingerprint(redo) != outcomeFingerprint(fresh) {
		t.Error("post-cancellation result differs from a fresh workspace")
	}
}

// TestCancellationEarlyExit covers the on-the-fly engine: a cancelled
// context aborts the incremental expansion promptly, and the session
// still works afterwards.
func TestCancellationEarlyExit(t *testing.T) {
	sys := LargeSystems()[0]
	ws := NewWorkspace()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // dead on arrival: the first expansion must notice
	sess, err := ws.NewSessionFromType(sys.Env, sys.Type, WithEarlyExit(true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Verify(ctx, sys.Props[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got: %v", err)
	}
	if _, err := sess.Verify(context.Background(), sys.Props[0]); err != nil {
		t.Fatalf("session unusable after cancellation: %v", err)
	}
}

// TestDeadlineExpires: a deadline in the past surfaces as
// context.DeadlineExceeded.
func TestDeadlineExpires(t *testing.T) {
	sys := Fig9Systems()[5]
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	sess := mustSession(t, NewWorkspace(), sys)
	if _, err := sess.Verify(ctx, sys.Props[0]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got: %v", err)
	}
}

func mustSession(t *testing.T, ws *Workspace, sys *BenchSystem, opts ...Option) *Session {
	t.Helper()
	sess, err := ws.NewSessionFromType(sys.Env, sys.Type, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// TestWithClosedOverride: the session-level WithClosed option overrides
// each property's own flag.
func TestWithClosedOverride(t *testing.T) {
	ctx := context.Background()
	ws := NewWorkspace()
	// An open probe on c: the environment can always inject on c, so the
	// closed and open verdicts differ for deadlock-freedom of a lone
	// sender (closed: stuck; open: the env consumes and the state loops).
	openProp := Property{Kind: DeadlockFree, Channels: []string{"c"}, Closed: false}
	mk := func(opts ...Option) *Outcome {
		t.Helper()
		s, err := ws.NewSession(`send(c, 1, fun (_: Unit) => end)`,
			append([]Option{WithBind("c", "Chan[Int]")}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		o, err := s.Verify(ctx, openProp)
		if err != nil {
			t.Fatal(err)
		}
		return o
	}
	asGiven := mk()
	forced := mk(WithClosed(true))
	if !forced.Property.Closed {
		t.Error("WithClosed(true) must force the property closed")
	}
	if asGiven.Property.Closed {
		t.Error("without the option the property's own flag must survive")
	}
	if forced.Holds == asGiven.Holds && forced.States == asGiven.States {
		t.Log("note: closed/open verdicts coincide on this system; override still verified via Property.Closed")
	}
}

// TestWithReduction: the session-level reduction option checks on the
// bisimulation quotient — verdicts and witness replays identical to the
// unreduced session on a full benchmark row, ReducedStates populated for
// every LTL-checked property, and the option rejects unknown modes.
func TestWithReduction(t *testing.T) {
	ctx := context.Background()
	sys, ok := BenchSystemByName("Dining philos. (4, deadlock)")
	if !ok {
		t.Fatal("benchmark row not found")
	}
	run := func(opts ...Option) []*Outcome {
		t.Helper()
		sess, err := NewWorkspace().NewSessionFromType(sys.Env, sys.Type, opts...)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := sess.VerifyAll(ctx, sys.Props...)
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	base := run()
	reduced := run(WithReduction(ReduceStrong))
	for i := range base {
		if reduced[i].Holds != base[i].Holds || reduced[i].States != base[i].States {
			t.Errorf("%s: reduced (%v,%d) vs unreduced (%v,%d)", base[i].Property,
				reduced[i].Holds, reduced[i].States, base[i].Holds, base[i].States)
		}
		if base[i].ReducedStates != 0 {
			t.Errorf("%s: unreduced outcome carries ReducedStates=%d", base[i].Property, base[i].ReducedStates)
		}
		isLTL := base[i].Property.Kind != EventualOutput
		if (reduced[i].ReducedStates > 0) != isLTL {
			t.Errorf("%s: ReducedStates=%d (LTL=%v)", base[i].Property, reduced[i].ReducedStates, isLTL)
		}
		if !reduced[i].Holds && isLTL {
			if err := Replay(reduced[i]); err != nil {
				t.Errorf("%s: lifted witness does not replay through the façade: %v", base[i].Property, err)
			}
		}
	}
	if _, err := NewWorkspace().NewSessionFromType(sys.Env, sys.Type, WithReduction(Reduction(99))); err == nil {
		t.Error("WithReduction must reject unknown modes")
	}
}

// TestWithSymmetry: the session-level symmetry option explores orbit
// representatives — verdicts, concrete States counts and witness replays
// identical to the reference session on a symmetric benchmark row,
// StatesExplored strictly below States (the ping-pong pairs are
// interchangeable), and the option rejects unknown modes.
func TestWithSymmetry(t *testing.T) {
	ctx := context.Background()
	sys, ok := BenchSystemByName("Ping-pong (6 pairs)")
	if !ok {
		t.Fatal("benchmark row not found")
	}
	run := func(opts ...Option) []*Outcome {
		t.Helper()
		sess, err := NewWorkspace().NewSessionFromType(sys.Env, sys.Type, opts...)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := sess.VerifyAll(ctx, sys.Props...)
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	base := run()
	sym := run(WithSymmetry(SymmetryOn))
	collapsed := false
	for i := range base {
		if sym[i].Holds != base[i].Holds || sym[i].States != base[i].States {
			t.Errorf("%s: symmetric (%v,%d) vs reference (%v,%d)", base[i].Property,
				sym[i].Holds, sym[i].States, base[i].Holds, base[i].States)
		}
		if base[i].StatesExplored != base[i].States {
			t.Errorf("%s: reference outcome explored %d of %d states", base[i].Property, base[i].StatesExplored, base[i].States)
		}
		if sym[i].StatesExplored < sym[i].States {
			collapsed = true
		}
		if !sym[i].Holds && sym[i].Property.Kind != EventualOutput {
			if err := Replay(sym[i]); err != nil {
				t.Errorf("%s: lifted witness does not replay through the façade: %v", base[i].Property, err)
			}
		}
	}
	if !collapsed {
		t.Error("no property explored fewer states than the concrete space — symmetry never engaged")
	}
	if _, err := NewWorkspace().NewSessionFromType(sys.Env, sys.Type, WithSymmetry(SymmetryMode(99))); err == nil {
		t.Error("WithSymmetry must reject unknown modes")
	}
}

// TestWithPartialOrder: the session-level partial-order option explores
// ample subsets — verdicts identical to the reference session on a
// loosely-coupled benchmark row, StatesExplored strictly below the
// reference States for the eligible schemas, witness replays intact, and
// the option rejects unknown modes.
func TestWithPartialOrder(t *testing.T) {
	ctx := context.Background()
	sys, ok := BenchSystemByName("Ping-pong (6 pairs)")
	if !ok {
		t.Fatal("benchmark row not found")
	}
	run := func(opts ...Option) []*Outcome {
		t.Helper()
		sess, err := NewWorkspace().NewSessionFromType(sys.Env, sys.Type, opts...)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := sess.VerifyAll(ctx, sys.Props...)
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}
	base := run()
	red := run(WithPartialOrder(PartialOrderOn))
	reduced := false
	for i := range base {
		if red[i].Holds != base[i].Holds {
			t.Errorf("%s: reduced verdict %v, reference %v", base[i].Property, red[i].Holds, base[i].Holds)
		}
		if red[i].StatesExplored > base[i].States {
			t.Errorf("%s: explored %d states, full space has %d", base[i].Property, red[i].StatesExplored, base[i].States)
		}
		if red[i].PartialOrder && red[i].StatesExplored < base[i].States {
			reduced = true
		}
		if !red[i].PartialOrder && red[i].States != base[i].States {
			t.Errorf("%s: disengaged mode changed States %d -> %d", base[i].Property, base[i].States, red[i].States)
		}
		if !red[i].Holds && red[i].PartialOrder {
			if err := Replay(red[i]); err != nil {
				t.Errorf("%s: reduced witness does not replay through the façade: %v", base[i].Property, err)
			}
		}
	}
	if !reduced {
		t.Error("no property explored fewer states than the concrete space — partial order never engaged")
	}
	if _, err := NewWorkspace().NewSessionFromType(sys.Env, sys.Type, WithPartialOrder(PartialOrderMode(99))); err == nil {
		t.Error("WithPartialOrder must reject unknown modes")
	}
}
