package effpi

import (
	"errors"
	"fmt"

	"effpi/internal/lts"
)

// ParseError reports that source text — a program, a type, or a binding
// — could not be parsed. What names the artifact that failed.
type ParseError struct {
	What string
	Err  error
}

func (e *ParseError) Error() string {
	if e.What == "" {
		return fmt.Sprintf("parse error: %v", e.Err)
	}
	return fmt.Sprintf("parse error in %s: %v", e.What, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// TypeError reports that a parsed program failed λπ⩽ type inference, or
// that a type failed the admissibility preconditions of Thm. 4.10.
type TypeError struct {
	Err error
}

func (e *TypeError) Error() string { return fmt.Sprintf("type error: %v", e.Err) }

func (e *TypeError) Unwrap() error { return e.Err }

// BoundExceededError reports that LTS exploration hit the state bound:
// the type may be infinite-state (§5.1 limitation 2), or the bound is
// simply too small for the system. MaxStates is the effective bound the
// exploration ran with.
type BoundExceededError struct {
	MaxStates int
	Err       error
}

func (e *BoundExceededError) Error() string {
	// The wrapped engine error already names the bound and the likely
	// cause; repeating it here would double the message.
	return e.Err.Error()
}

func (e *BoundExceededError) Unwrap() error { return e.Err }

// wrapVerifyErr classifies an error from the verification pipeline into
// the façade's structured error types. Context errors (cancellation,
// deadline) pass through wrapped, so errors.Is(err, context.Canceled)
// keeps working on the result.
func wrapVerifyErr(err error, maxStates int) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, lts.ErrStateBound) {
		if maxStates <= 0 {
			maxStates = lts.DefaultMaxStates
		}
		return &BoundExceededError{MaxStates: maxStates, Err: err}
	}
	return err
}
