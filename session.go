package effpi

import (
	"context"
	"fmt"
	"sync"

	"effpi/internal/core"
	"effpi/internal/lts"
	"effpi/internal/reduce"
	"effpi/internal/syntax"
	"effpi/internal/typelts"
	"effpi/internal/types"
	"effpi/internal/verify"
)

// Session is one verification workload bound to a Workspace: a program
// (from source) or a bare type (from AST), the typing environment it
// lives in, and the session's configuration. Sessions are cheap — create
// one per request — while the expensive state (the transition cache)
// lives in the Workspace and is shared across sessions keyed by
// environment.
//
// A Session is safe for concurrent method calls, but the intended shape
// is one session per request with concurrency across sessions.
type Session struct {
	ws     *Workspace
	prog   *core.Program // nil for type-only sessions
	env    *types.Env    // canonical (workspace-adopted)
	typ    types.Type    // inferred (source sessions, after Check) or given
	opt    sessionOptions
	emitMu sync.Mutex
	typMu  sync.Mutex
	cache  *typelts.Cache
}

// NewSession parses source text (.epi concrete syntax) into a session.
// Binding options (WithBind) populate the typing environment of the
// program's free variables. Parse failures — of the program or of a
// binding — return a *ParseError; type checking is deferred to Check (or
// the first Verify).
func (w *Workspace) NewSession(source string, opts ...Option) (*Session, error) {
	s := &Session{ws: w}
	for _, o := range opts {
		if err := o(&s.opt); err != nil {
			return nil, err
		}
	}
	env, err := BuildEnv(s.opt.binds)
	if err != nil {
		return nil, err
	}
	env, cache := w.adopt(env)
	prog, err := core.ParseInEnv(source, env)
	if err != nil {
		return nil, &ParseError{What: "program", Err: err}
	}
	s.prog, s.env, s.cache = prog, env, cache
	return s, nil
}

// NewSessionFromType wraps an already-built type and environment (e.g. a
// benchmark row of Fig9Systems) in a session. WithBind options are
// rejected — the environment is given.
func (w *Workspace) NewSessionFromType(env *Env, t Type, opts ...Option) (*Session, error) {
	s := &Session{ws: w, typ: t}
	for _, o := range opts {
		if err := o(&s.opt); err != nil {
			return nil, err
		}
	}
	if len(s.opt.binds) > 0 {
		return nil, fmt.Errorf("effpi: WithBind is not applicable to a type session (the environment is given)")
	}
	if env == nil {
		env = types.NewEnv()
	}
	s.env, s.cache = w.adopt(env)
	return s, nil
}

// Env returns the session's (canonical) typing environment.
func (s *Session) Env() *Env { return s.env }

// Check type-checks the session: for source sessions it infers the
// program's minimal λπ⩽ type (cached; failures are a *TypeError), for
// type sessions it returns the given type. ctx is accepted for interface
// uniformity; inference is not exploratory and completes quickly.
func (s *Session) Check(ctx context.Context) (Type, error) {
	s.typMu.Lock()
	defer s.typMu.Unlock()
	if s.typ != nil {
		return s.typ, nil
	}
	t, err := s.prog.Check()
	if err != nil {
		return nil, &TypeError{Err: err}
	}
	s.typ = t
	return t, nil
}

// applyClosed applies the session's WithClosed override to a property.
func (s *Session) applyClosed(p Property) Property {
	if s.opt.closed != nil {
		p.Closed = *s.opt.closed
	}
	return p
}

// Verify model-checks one property of the session's type (Thm. 4.10).
// The exploration and both model-checking passes are cancellable through
// ctx; a cancelled request returns an error satisfying
// errors.Is(err, context.Canceled) (or DeadlineExceeded) and leaves the
// workspace cache fully usable — a repeated identical request yields
// byte-identical verdicts and witnesses. Bound overflows come back as a
// *BoundExceededError, inadmissible types as a *TypeError.
func (s *Session) Verify(ctx context.Context, prop Property) (*Outcome, error) {
	t, err := s.Check(ctx)
	if err != nil {
		return nil, err
	}
	if err := verify.Admissible(s.env, t); err != nil {
		return nil, &TypeError{Err: err}
	}
	prop = s.applyClosed(prop)
	s.emit(Event{Kind: EventPropertyStarted, Property: &prop})
	o, err := verify.VerifyContext(ctx, verify.Request{
		Env: s.env, Type: t, Property: prop,
		MaxStates: s.opt.maxStates, Parallelism: s.opt.parallelism,
		EarlyExit: s.opt.earlyExit, Reduction: s.opt.reduction, Symmetry: s.opt.symmetry,
		PartialOrder: s.opt.partialOrder, Cache: s.cache,
		Progress: s.progressHook(&prop),
	})
	s.ws.sweep()
	if err != nil {
		return nil, wrapVerifyErr(err, s.opt.maxStates)
	}
	s.emit(Event{Kind: EventPropertyVerdict, Property: &prop, Holds: o.Holds, Witness: o.Witness, States: o.States})
	return o, nil
}

// VerifyAll verifies a batch of properties over one shared exploration
// pipeline: properties with the same observable set reuse one LTS, and
// all explorations run on the workspace cache. With the session's
// parallelism ≠ 1 the batch is concurrent on three levels (see the
// internal engine's docs); outcomes always come back in input order with
// verdicts identical to the serial engine's. Passing the six Fig. 9
// properties of a system reproduces one row of the paper's table.
func (s *Session) VerifyAll(ctx context.Context, props ...Property) ([]*Outcome, error) {
	t, err := s.Check(ctx)
	if err != nil {
		return nil, err
	}
	if err := verify.Admissible(s.env, t); err != nil {
		return nil, &TypeError{Err: err}
	}
	applied := make([]Property, len(props))
	for i, p := range props {
		applied[i] = s.applyClosed(p)
		s.emit(Event{Kind: EventPropertyStarted, Property: &applied[i]})
	}
	if s.opt.earlyExit {
		return s.verifyAllEarlyExit(ctx, t, applied)
	}
	outs, err := verify.VerifyAllContext(ctx, s.env, t, applied, verify.AllOptions{
		MaxStates:    s.opt.maxStates,
		Parallelism:  s.opt.parallelism,
		Reduction:    s.opt.reduction,
		Symmetry:     s.opt.symmetry,
		PartialOrder: s.opt.partialOrder,
		Cache:        s.cache,
		Progress:     s.progressHook(nil),
	})
	s.ws.sweep()
	if err != nil {
		return outs, wrapVerifyErr(err, s.opt.maxStates)
	}
	for _, o := range outs {
		o := o
		s.emit(Event{Kind: EventPropertyVerdict, Property: &o.Property, Holds: o.Holds, Witness: o.Witness, States: o.States})
	}
	return outs, nil
}

// verifyAllEarlyExit is the WithEarlyExit batch path: on-the-fly
// checking is DFS-driven and per-property by nature (each property
// explores only what its own search touches), so the batch runs
// properties sequentially over the shared cache, with no LTS reuse —
// a partial fragment must never serve another property. Verdicts equal
// the full pipeline's; the error contract matches VerifyAll (outcomes up
// to the first failing property, plus that property's error).
func (s *Session) verifyAllEarlyExit(ctx context.Context, t Type, props []Property) ([]*Outcome, error) {
	outs := make([]*Outcome, 0, len(props))
	for _, p := range props {
		o, err := verify.VerifyContext(ctx, verify.Request{
			Env: s.env, Type: t, Property: p,
			MaxStates: s.opt.maxStates, EarlyExit: true, Reduction: s.opt.reduction, Symmetry: s.opt.symmetry,
			PartialOrder: s.opt.partialOrder, Cache: s.cache,
			Progress: s.progressHook(&p),
		})
		if err != nil {
			s.ws.sweep()
			return outs, wrapVerifyErr(fmt.Errorf("%s: %w", p, err), s.opt.maxStates)
		}
		s.emit(Event{Kind: EventPropertyVerdict, Property: &p, Holds: o.Holds, Witness: o.Witness, States: o.States})
		outs = append(outs, o)
	}
	s.ws.sweep()
	return outs, nil
}

// Explore builds the session type's labelled transition system under the
// Y-limitation given by observables (empty = fully closed composition,
// matching the CLI's default). The exploration runs on the workspace
// cache and is cancellable through ctx.
func (s *Session) Explore(ctx context.Context, observables ...string) (*LTS, error) {
	t, err := s.Check(ctx)
	if err != nil {
		return nil, err
	}
	obs := make(map[string]bool, len(observables))
	for _, x := range observables {
		obs[x] = true
	}
	sem := &typelts.Semantics{Env: s.env, Observable: obs, WitnessOnly: true, Cache: s.cache}
	m, err := lts.ExploreContext(ctx, sem, t, lts.Options{
		MaxStates:   s.opt.maxStates,
		Parallelism: s.opt.parallelism,
		Progress:    s.progressHook(nil),
	})
	s.ws.sweep()
	if err != nil {
		return nil, wrapVerifyErr(err, s.opt.maxStates)
	}
	return m, nil
}

// Run executes a source session's program under the operational
// semantics for at most maxSteps reductions and returns the final term,
// rendered in concrete syntax.
func (s *Session) Run(ctx context.Context, maxSteps int) (string, error) {
	if s.prog == nil {
		return "", fmt.Errorf("effpi: session has no program to run (created from a type)")
	}
	if _, err := s.Check(ctx); err != nil {
		return "", err
	}
	final, err := s.prog.Run(maxSteps)
	if err != nil {
		return "", err
	}
	return syntax.PrintTerm(final), nil
}

// TraceStep is one reduction of a program trace: the rule that fired and
// the term it produced, rendered in concrete syntax.
type TraceStep struct {
	Rule string
	Term string
}

// TraceResult is a (possibly truncated) reduction sequence.
type TraceResult struct {
	// Initial is the starting term.
	Initial string
	// Steps are the reductions taken, in order.
	Steps []TraceStep
	// Done reports that the trace reached a term with no further
	// reductions (false = truncated at the step bound).
	Done bool
}

// Trace type-checks a source session's program and then reduces it step
// by step, recording each rule and intermediate term, for at most
// maxSteps reductions. A term reducing to a runtime error fails — by
// type safety (§3) that cannot happen for a well-typed program, so it
// would evidence a bug in the reproduction.
func (s *Session) Trace(ctx context.Context, maxSteps int) (*TraceResult, error) {
	if s.prog == nil {
		return nil, fmt.Errorf("effpi: session has no program to trace (created from a type)")
	}
	if _, err := s.Check(ctx); err != nil {
		return nil, err
	}
	res := &TraceResult{Initial: syntax.PrintTerm(s.prog.Term)}
	cur := s.prog.Term
	for i := 0; i < maxSteps; i++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("effpi: trace cancelled after %d steps: %w", i, err)
		}
		next, rule, ok := reduce.Step(cur)
		if !ok {
			res.Done = true
			return res, nil
		}
		cur = next
		res.Steps = append(res.Steps, TraceStep{Rule: rule, Term: syntax.PrintTerm(cur)})
		if reduce.IsError(cur) {
			return res, fmt.Errorf("effpi: term reduced to an error (this contradicts type safety)")
		}
	}
	return res, nil
}

// Bisimilar decides strong bisimilarity of this session's type and
// another's. Both sessions must share the same typing environment (the
// same workspace entry); the explorations are bounded by this session's
// WithMaxStates and cancellable through ctx.
func (s *Session) Bisimilar(ctx context.Context, other *Session) (bool, error) {
	t1, err := s.Check(ctx)
	if err != nil {
		return false, err
	}
	t2, err := other.Check(ctx)
	if err != nil {
		return false, err
	}
	if s.env != other.env {
		return false, fmt.Errorf("effpi: bisimilarity needs both sessions in the same typing environment (got %s vs %s)", s.env, other.env)
	}
	// The workspace cache is deliberately not shared here: it is built
	// in witness-only mode (the verification semantics), while
	// bisimilarity explores the unrestricted semantics — mismatched
	// entries would be wrong, and the internal layer refuses them.
	ok, err := lts.TypesBisimilarContext(ctx, s.env, t1, t2, lts.Options{MaxStates: s.opt.maxStates, Parallelism: s.opt.parallelism})
	if err != nil {
		return false, wrapVerifyErr(err, s.opt.maxStates)
	}
	return ok, nil
}
