package effpi

// WitnessJSON is the machine-readable counterexample lasso shared by the
// JSON-emitting front ends (effpid responses, mcbench -json rows): the
// violating run follows Stem from the initial state, then repeats Cycle
// forever. Every step names its source and destination state ids (into
// the request's explored LTS) and the fired transition label.
type WitnessJSON struct {
	Stem  []WitnessStepJSON `json:"stem"`
	Cycle []WitnessStepJSON `json:"cycle"`
	// Replayed records that Replay re-validated the lasso against the
	// LTS and the property's Büchi automaton before serialisation.
	Replayed bool `json:"replayed"`
}

// WitnessStepJSON is one transition of a serialised witness run. Pos
// carries the file:line:col source positions of the extracted actions
// behind the label when the outcome came from a Go-source extraction
// (WitnessToJSONMapped); it is absent otherwise.
type WitnessStepJSON struct {
	From  int      `json:"from"`
	Label string   `json:"label"`
	To    int      `json:"to"`
	Pos   []string `json:"pos,omitempty"`
}

// WitnessToJSON converts a failing outcome's witness to its wire form,
// re-validating it first (Replay): a FAIL in a JSON artifact is a
// checkable claim, and a witness that does not replay means the checker
// lied — the error, not a JSON object, is what the caller must surface.
// Callers should only pass FAILs of LTL-checked properties; a missing
// witness (including ev-usage FAILs, which have none) is an error.
func WitnessToJSON(o *Outcome) (*WitnessJSON, error) {
	if err := Replay(o); err != nil {
		return nil, err
	}
	conv := func(steps []WitnessStep) []WitnessStepJSON {
		out := make([]WitnessStepJSON, len(steps))
		for i, st := range steps {
			out[i] = WitnessStepJSON{From: st.From, Label: st.Label.String(), To: st.To}
		}
		return out
	}
	return &WitnessJSON{Stem: conv(o.Witness.Stem), Cycle: conv(o.Witness.Cycle), Replayed: true}, nil
}
