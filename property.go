package effpi

import (
	"fmt"
	"strings"
)

// ParseKind resolves a property-kind name (the CLI's -prop values and
// the service's "kind" field) to its Kind. Recognised names are the
// Fig. 9 column labels: deadlock-free, ev-usage, forwarding, non-usage,
// reactive, responsive.
func ParseKind(name string) (Kind, error) {
	for _, k := range AllKinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("effpi: unknown property kind %q (want one of %s)", name, strings.Join(KindNames(), ", "))
}

// KindNames lists the recognised property-kind names in Fig. 9 column
// order.
func KindNames() []string {
	ks := AllKinds()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.String()
	}
	return out
}

// PropertyFromFlags assembles a Property from the flat flag shape of
// the CLI front ends (effpi verify's flags, mcbench's filters): the
// kind name, a comma-separated probe channel list, the
// forwarding/reactive/responsive source and target channels, and the
// composition mode. Structured callers (effpid's JSON requests) should
// use PropertyFromSpec, which takes the channel list as-is — the comma
// syntax here cannot express a channel whose name contains a comma.
func PropertyFromFlags(kind, channels, from, to string, closed bool) (Property, error) {
	var chs []string
	if channels != "" {
		chs = strings.Split(channels, ",")
	}
	return PropertyFromSpec(kind, chs, from, to, closed)
}

// PropertyFromSpec assembles a Property from its structured parts: the
// kind name, the probe channel list, the forwarding/reactive/responsive
// source and target channels, and the composition mode. It validates
// the per-kind requirements (forwarding needs from and to; reactive and
// responsive need from) and rejects empty channel names.
func PropertyFromSpec(kind string, channels []string, from, to string, closed bool) (Property, error) {
	k, err := ParseKind(kind)
	if err != nil {
		return Property{}, err
	}
	for _, ch := range channels {
		if ch == "" {
			return Property{}, fmt.Errorf("effpi: empty probe channel name in %s", kind)
		}
	}
	p := Property{Kind: k, Channels: channels, From: from, To: to, Closed: closed}
	switch k {
	case Forwarding:
		if from == "" || to == "" {
			return p, fmt.Errorf("effpi: forwarding needs both a source and a target channel (-from/-to)")
		}
	case Reactive, Responsive:
		if from == "" {
			return p, fmt.Errorf("effpi: %s needs a source channel (-from)", k)
		}
	}
	return p, nil
}
