package effpi

import (
	"sync"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// DefaultCacheBudget is the default Workspace memo budget: the total
// number of cache entries (interned types + memoised steps, matches and
// synchronisations, summed over all environments) retained between
// requests before least-recently-used caches are evicted. The Fig. 9
// systems each settle in the low thousands of entries, so the default
// keeps hundreds of distinct workloads warm while bounding a long-lived
// process to tens of megabytes of memo state.
const DefaultCacheBudget = 1 << 20

// Workspace owns the verification state that outlives a single request:
// one transition cache (interner + memoised type semantics) per distinct
// typing environment, shared by every Session created from it. A
// long-lived service keeps one Workspace for its whole life; repeated
// requests against the same environment then skip re-deriving component
// steps, synchronisations, µ-unfoldings and type identities.
//
// A Workspace is safe for concurrent use: many sessions may verify over
// the same cache at once (the cache is lock-striped and its entries are
// schedule-independent, so results are identical to serial runs).
//
// Growth is bounded: after every request the workspace sums its caches'
// memo entries and evicts whole caches in least-recently-used order
// until the total fits CacheBudget again. Sessions hold direct
// references to their cache, so eviction never disturbs in-flight work —
// an evicted cache simply stops being handed to new sessions.
type Workspace struct {
	mu      sync.Mutex
	budget  int // <0 = unlimited
	entries map[string]*wsEntry
	tick    uint64
	evicted uint64
	// lastTotal/lastSweep memo the previous full sweep, so requests can
	// skip the (shard-lock-taking) resummation while there is ample
	// headroom (see sweep).
	lastTotal int
	lastSweep uint64
}

// sweepEvery bounds how stale the headroom memo may get: even when the
// previous sweep found the caches at under half budget, a full
// resummation runs at least every this many requests.
const sweepEvery = 64

// wsEntry is one environment's retained cache. env is the canonical
// environment: the first *types.Env seen with this key, which every
// later session with an equivalent environment adopts — the cache's
// compatibility check is pointer identity, so sharing requires one
// canonical pointer per key.
type wsEntry struct {
	env   *types.Env
	cache *typelts.Cache
	last  uint64
}

// WorkspaceOption configures NewWorkspace.
type WorkspaceOption func(*Workspace)

// WithCacheBudget bounds the total memo entries retained across requests
// (see DefaultCacheBudget). 0 keeps the default; negative disables
// eviction entirely.
func WithCacheBudget(entries int) WorkspaceOption {
	return func(w *Workspace) {
		if entries != 0 {
			w.budget = entries
		}
	}
}

// NewWorkspace returns an empty workspace.
func NewWorkspace(opts ...WorkspaceOption) *Workspace {
	w := &Workspace{budget: DefaultCacheBudget, entries: map[string]*wsEntry{}}
	for _, o := range opts {
		o(w)
	}
	return w
}

// adopt returns the canonical environment and shared cache for env,
// creating them on first sight. Two environments with equal canonical
// keys (same bindings up to type equivalence and entry order) share one
// entry; the caller must use the returned *Env from here on.
func (w *Workspace) adopt(env *types.Env) (*types.Env, *typelts.Cache) {
	key := env.Key()
	w.mu.Lock()
	defer w.mu.Unlock()
	w.tick++
	if e, ok := w.entries[key]; ok {
		e.last = w.tick
		return e.env, e.cache
	}
	e := &wsEntry{env: env, cache: typelts.NewCache(env, true), last: w.tick}
	w.entries[key] = e
	return e.env, e.cache
}

// sweep enforces the budget: while the summed memo count exceeds it,
// the least-recently-used cache is dropped (even the last one — a single
// oversized cache must not pin unbounded memory; it is rebuilt warm-ish
// on the next request). Called by sessions after each request.
//
// Cost discipline: Memos() takes every shard lock of a cache, so the
// summation runs OUTSIDE the workspace mutex (adopt — new-session
// creation — never waits behind shard locks that concurrent
// explorations are hammering), and it is skipped entirely while the
// previous full sweep found at most half the budget in use (refreshed
// at least every sweepEvery requests, so a burst of growth is caught).
func (w *Workspace) sweep() {
	w.mu.Lock()
	if w.budget < 0 {
		w.mu.Unlock()
		return
	}
	// The headroom skip needs a real measurement behind it (lastSweep is
	// 0 until the first full sweep has run).
	if w.lastSweep > 0 && 2*w.lastTotal <= w.budget && w.tick-w.lastSweep < sweepEvery {
		w.mu.Unlock()
		return
	}
	snapshot := make(map[string]*wsEntry, len(w.entries))
	for k, e := range w.entries {
		snapshot[k] = e
	}
	w.mu.Unlock()

	total := 0
	sizes := make(map[string]int, len(snapshot))
	for k, e := range snapshot {
		n := e.cache.Memos()
		sizes[k] = n
		total += n
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	w.lastSweep = w.tick
	// Evict among the snapshotted entries only; anything adopted while
	// we were summing is unmeasured and left for the next sweep.
	for total > w.budget && len(sizes) > 0 {
		var lruKey string
		var lru *wsEntry
		for k := range sizes {
			e, ok := w.entries[k]
			if !ok || e != snapshot[k] {
				// Gone or replaced concurrently: drop from consideration.
				total -= sizes[k]
				delete(sizes, k)
				continue
			}
			if lru == nil || e.last < lru.last {
				lruKey, lru = k, e
			}
		}
		if lru == nil {
			break
		}
		total -= sizes[lruKey]
		delete(sizes, lruKey)
		delete(w.entries, lruKey)
		w.evicted++
	}
	w.lastTotal = total
}

// CacheStats is a point-in-time snapshot of the workspace's retained
// state, for monitoring (effpid exposes it under /metrics).
type CacheStats struct {
	// Caches is the number of retained per-environment caches.
	Caches int
	// Memos is the summed memo-entry count across them.
	Memos int
	// Evictions counts caches dropped by the budget sweep so far.
	Evictions uint64
	// Budget is the configured memo budget (<0 = unlimited).
	Budget int
}

// CacheStats reports the workspace's current retained state.
func (w *Workspace) CacheStats() CacheStats {
	w.mu.Lock()
	entries := make([]*wsEntry, 0, len(w.entries))
	for _, e := range w.entries {
		entries = append(entries, e)
	}
	st := CacheStats{Caches: len(entries), Evictions: w.evicted, Budget: w.budget}
	w.mu.Unlock()
	// Sum outside the workspace lock: Memos takes per-cache shard locks.
	for _, e := range entries {
		st.Memos += e.cache.Memos()
	}
	return st
}
