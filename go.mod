module effpi

go 1.24
