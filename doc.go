// Package effpi is a from-scratch Go reproduction of "Verifying
// Message-Passing Programs with Dependent Behavioural Types" (Scalas,
// Yoshida, Benussi; PLDI 2019) — the Effpi system.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map), the executables under cmd/ (effpi, savina, mcbench), and runnable
// examples under examples/. The benchmarks in bench_test.go regenerate
// every figure and table of the paper's evaluation (Fig. 8 and Fig. 9);
// EXPERIMENTS.md records the measured results against the published ones.
//
// Reading counterexample output: a failing property is reported as a
// lasso-shaped witness — a stem of transitions from the initial state
// followed by a cycle that repeats forever, with the parallel component
// multiset printed at every visited state. "effpi verify" prints the
// witness and exits non-zero on FAIL; "mcbench -json" embeds it in each
// row (field "witness", with state ids and labels). Every witness is
// replay-validated before it is shown: the run is re-executed against the
// explored transition system and the property's Büchi automaton
// (verify.Replay), so a reported FAIL is a checkable artifact. The
// "-early" flag of effpi verify stops exploring as soon as a violation
// exists (on-the-fly checking; see DESIGN.md).
package effpi
