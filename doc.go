// Package effpi is a from-scratch Go reproduction of "Verifying
// Message-Passing Programs with Dependent Behavioural Types" (Scalas,
// Yoshida, Benussi; PLDI 2019) — the Effpi system.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map), the executables under cmd/ (effpi, savina, mcbench), and runnable
// examples under examples/. The benchmarks in bench_test.go regenerate
// every figure and table of the paper's evaluation (Fig. 8 and Fig. 9);
// EXPERIMENTS.md records the measured results against the published ones.
package effpi
