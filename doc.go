// Package effpi is a from-scratch Go reproduction of "Verifying
// Message-Passing Programs with Dependent Behavioural Types" (Scalas,
// Yoshida, Benussi; PLDI 2019) — the Effpi system — grown into a
// session-oriented verification library and service.
//
// This package is the public API. A Workspace owns the state worth
// keeping between requests (the hash-consed type interner and the
// memoised transition semantics, with a size-bounded eviction policy); a
// Session binds one program or type to a workspace and is configured
// with functional options (WithMaxStates, WithParallelism,
// WithEarlyExit, WithReduction, WithSymmetry, WithPartialOrder,
// WithClosed, WithProgress, …):
//
//	ws := effpi.NewWorkspace()
//	s, err := ws.NewSession(src, effpi.WithBind("c", "Chan[Int]"))
//	outcome, err := s.Verify(ctx, effpi.Property{Kind: effpi.DeadlockFree, Channels: []string{"c"}, Closed: true})
//
// Every exploration and model-checking pass is cancellable and
// deadline-aware through the context; errors are structured
// (*ParseError, *TypeError, *BoundExceededError), and progress streams
// through WithProgress / WithEventChannel. The implementation lives
// under internal/ (see DESIGN.md for the module map) and is not
// importable — the façade re-exports everything the executables under
// cmd/ (effpi, effpid, savina, mcbench) and external consumers need.
// cmd/effpid serves this API over HTTP from one long-lived shared
// workspace, behind an admission-controlled job queue: POST /v1/verify
// (synchronous), POST /v1/jobs + GET/DELETE /v1/jobs/{id} (asynchronous
// submit/poll/cancel), GET /healthz, GET /readyz, GET /metrics. A
// saturated queue answers 429 with a Retry-After estimate; cmd/loadgen
// measures the resulting throughput/latency/rejection envelope. See
// README.md for a curl walkthrough.
//
// Reading counterexample output: a failing property is reported as a
// lasso-shaped witness — a stem of transitions from the initial state
// followed by a cycle that repeats forever, with the parallel component
// multiset printed at every visited state. "effpi verify" prints the
// witness and exits non-zero on FAIL; "mcbench -json" and effpid
// responses embed it (field "witness", with state ids and labels). Every
// witness is replay-validated before it is shown: the run is re-executed
// against the explored transition system and the property's Büchi
// automaton (Replay), so a reported FAIL is a checkable artifact. The
// "-early" flag of effpi verify (WithEarlyExit here) stops exploring as
// soon as a violation exists (on-the-fly checking; see DESIGN.md).
//
// State-space reduction: WithReduction(ReduceStrong) — "-reduce strong"
// in effpi verify, "-reduce" in mcbench, "reduction": "strong" in
// effpid requests — inserts a Reduce stage between exploration and
// checking that quotients the state space by strong bisimulation over
// the property's observation classes. Verdicts are provably (and, on
// every FAIL, machine-checkedly) identical: the counterexample found on
// the quotient is lifted back to a concrete run and re-validated by the
// replay oracle before it is returned, and Outcome.ReducedStates
// reports the block count actually checked (symmetric systems shrink by
// orders of magnitude; see DESIGN.md §reduction).
//
// Symmetry reduction: WithSymmetry(SymmetryOn) — "-symmetry on" in
// effpi verify, "-symmetry" in mcbench, "symmetry": "on" in effpid
// requests — shrinks the *exploration* itself: closed systems are
// analysed for a channel permutation group, the direct product of
// symmetric groups over classes of interchangeable channel bundles
// and cyclic rotation groups over ring-shaped bundles (channels in a
// co-mention cycle whose binding types and resident shapes are
// shift-invariant — the Dining fork ring), and the BFS canonicalises
// every successor to an orbit representative under that group, so
// symmetric interleavings are never materialised
// (Outcome.StatesExplored representatives cover Outcome.States
// concrete states; the 12-pair ping-pong row explores 234 in place of
// 531 441, the 8-philosopher Dining ring 833 necklaces in place of
// 6 560). Every orbit edge records its canonicalising permutation; a
// FAIL's orbit counterexample is rewritten into a concrete run by
// composing those permutations and re-validated by the replay oracle
// before it is returned. Symmetry composes with WithEarlyExit and
// WithReduction, and falls back to the concrete pipeline for open
// (non-Closed) properties; see DESIGN.md §symmetry.
//
// Go-source frontend: FromPackages (and ExtractGoSource for a single
// in-memory file) statically extracts behavioural types from Go
// programs written against the repo's own proc combinators
// (internal/runtime Send/Recv/Par, internal/actor Tell/Read/Forever) —
// "effpi verify ./..." on the command line. Each exported
// proc-returning entry function becomes a GoSystem carrying the
// extracted Env, Type and a SourceMap from protocol actions back to
// file:line:col positions; NewSessionFromGo (or WithSourceMap) threads
// the map into verification so FAIL witnesses render and serialise
// with source positions (RenderWitnessWithSource, WitnessToJSONMapped
// — effpid's "go_source" requests and the "pos" witness field).
// Constructs outside the extractable fragment produce positioned
// GoDiagnostics — τ-widened over-approximations where sound, refusals
// where not, never a silently wrong term; "effpi lint" and
// cmd/effpilint surface them standalone. See DESIGN.md §Go-source
// frontend.
//
// Partial-order reduction: WithPartialOrder(PartialOrderOn) — "-por on"
// in effpi verify, "-por" in mcbench, "partial_order": "on" in effpid
// requests — prunes the exploration along the other axis: per state the
// engine registers only an ample subset of the enabled transitions
// (computed from the independence of their participating components,
// with the property's visible actions protected), so commuting
// interleavings of independent components are explored in one canonical
// order and the dropped diamond states are never materialised. Ample
// sets only drop edges, so a FAIL's counterexample is already a
// concrete run — it is re-validated by the replay oracle before it is
// returned, no lifting needed; Outcome.States and
// Outcome.StatesExplored both count the reduced space. The mode engages
// for the deadlock-free, no-usage and reactive schemas and yields to
// WithSymmetry when a symmetry group is detected; see DESIGN.md
// §partial-order for the ample conditions and the Dining-shaped
// negative result.
package effpi
