package effpi

import "fmt"

// Option configures a Session at creation time. Options replace the
// internal layer's ever-growing request struct: a session is configured
// once, then every call on it (Verify, VerifyAll, Explore, …) runs under
// the same knobs.
type Option func(*sessionOptions) error

type sessionOptions struct {
	binds        []Binding
	maxStates    int
	parallelism  int
	earlyExit    bool
	reduction    Reduction
	symmetry     SymmetryMode
	partialOrder PartialOrderMode
	// closed, when non-nil, overrides Property.Closed on every property
	// the session verifies.
	closed   *bool
	progress func(Event)
	events   chan<- Event
	// smap, when non-nil, maps extracted actions back to source
	// positions (WithSourceMap / frontend extraction).
	smap *SourceMap
}

// WithBind adds x:TYPE to the session's typing environment, with TYPE in
// the .epi concrete syntax (e.g. "Chan[Int]"). Repeatable; unparsable
// types and duplicate names surface as a *ParseError from the session
// constructor.
func WithBind(name, typeSrc string) Option {
	return func(o *sessionOptions) error {
		o.binds = append(o.binds, Binding{Name: name, Type: typeSrc})
		return nil
	}
}

// WithMaxStates bounds every LTS exploration the session runs
// (0 = the engine default of 2^20 states). Exceeding the bound fails the
// request with a *BoundExceededError.
func WithMaxStates(n int) Option {
	return func(o *sessionOptions) error {
		o.maxStates = n
		return nil
	}
}

// WithParallelism sets the exploration worker count: 0 = GOMAXPROCS,
// 1 = the serial reference engine. Verdicts, state counts and witnesses
// are identical at any value; only wall-clock changes.
func WithParallelism(n int) Option {
	return func(o *sessionOptions) error {
		o.parallelism = n
		return nil
	}
}

// WithEarlyExit selects on-the-fly checking where the property schema
// supports it: exploration stops as soon as a violation is found.
// Verdicts are identical to the full pipeline's.
func WithEarlyExit(v bool) Option {
	return func(o *sessionOptions) error {
		o.earlyExit = v
		return nil
	}
}

// WithReduction selects the state-space reduction stage applied between
// exploration and checking (the Reduce of Explore → Reduce → Check).
// ReduceStrong quotients every explored LTS by strong bisimulation over
// the property's observation classes before model checking: verdicts are
// identical to ReduceOff (the default), every failing property's
// counterexample is lifted back to a concrete run and machine-re-checked
// by the replay oracle before it is returned, and Outcome.ReducedStates
// reports the block count actually checked. Symmetric systems shrink by
// orders of magnitude; the worst case is a same-size quotient plus the
// refinement cost. The stage does not apply to ev-usage (existential,
// checked by reachability) or to requests served by the on-the-fly
// engine (WithEarlyExit).
func WithReduction(r Reduction) Option {
	return func(o *sessionOptions) error {
		if r != ReduceOff && r != ReduceStrong {
			return fmt.Errorf("effpi: unknown reduction %v", r)
		}
		o.reduction = r
		return nil
	}
}

// WithSymmetry selects exploration-time symmetry reduction (SymmetryOn):
// states are canonicalised to orbit representatives of the system's
// channel-bundle automorphism group (interchangeable replicas of one
// component shape), so n interchangeable processes cost the engine a
// phase-count state space instead of a phase-vector one — the n-pair
// ping-pong benchmarks drop from 3^n states to O(n²). Verdicts, the
// concrete Outcome.States count, and witness replays are identical to
// SymmetryOff (the default); Outcome.StatesExplored reports the orbit
// representatives actually explored, and every failing property's
// counterexample is lifted through the recorded permutations back to a
// concrete run and machine-re-checked by the replay oracle before it is
// returned. The mode engages only for closed properties (an empty
// observable set) on systems with a non-trivial symmetry group; it is a
// sound no-op everywhere else.
func WithSymmetry(m SymmetryMode) Option {
	return func(o *sessionOptions) error {
		if m != SymmetryOff && m != SymmetryOn {
			return fmt.Errorf("effpi: unknown symmetry mode %v", m)
		}
		o.symmetry = m
		return nil
	}
}

// WithPartialOrder selects exploration-time partial-order reduction
// (PartialOrderOn): each explored state registers only an ample subset
// of its enabled transitions, computed from the independence relation of
// the type semantics with the property's visible labels excluded —
// commuting interleavings of independent components collapse into one
// canonical corridor, so compositions whose conflict graph falls apart
// into independent clusters (the n-pair ping-pong benchmarks) shrink
// from 3^n states to a near-linear corridor. Verdicts are identical to
// PartialOrderOff (the default); Outcome.StatesExplored reports the
// reduced state count, and every failing property's counterexample —
// already a concrete run, since ample sets only drop edges — is
// machine-re-checked by the replay oracle before it is returned. The
// mode engages for the property schemas with alphabet-independent
// action-set semantics (non-usage, deadlock-free, reactive) and yields
// to symmetry reduction when both are requested and a symmetry group is
// detected; it is a sound no-op everywhere else.
func WithPartialOrder(m PartialOrderMode) Option {
	return func(o *sessionOptions) error {
		if m != PartialOrderOff && m != PartialOrderOn {
			return fmt.Errorf("effpi: unknown partial-order mode %v", m)
		}
		o.partialOrder = m
		return nil
	}
}

// WithClosed forces every property the session verifies into closed
// (true) or open (false) composition mode, overriding Property.Closed.
// Sessions without this option leave each property's own flag intact.
func WithClosed(v bool) Option {
	return func(o *sessionOptions) error {
		o.closed = &v
		return nil
	}
}

// WithProgress registers a callback for streaming progress events
// (exploration counters, property started/verdict). The callback runs
// synchronously on the emitting goroutine — keep it fast, and safe for
// calls from the concurrent engine's merge goroutines (calls are
// serialised, but not pinned to one goroutine).
func WithProgress(fn func(Event)) Option {
	return func(o *sessionOptions) error {
		o.progress = fn
		return nil
	}
}

// WithEventChannel streams progress events into ch. Sends block until
// the consumer is ready: use a buffered channel or a dedicated draining
// goroutine, and do not close ch while the session is in use.
func WithEventChannel(ch chan<- Event) Option {
	return func(o *sessionOptions) error {
		o.events = ch
		return nil
	}
}
