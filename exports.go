package effpi

// This file is the re-export surface of the public façade: the names an
// API consumer (including the repo's own cmd/ binaries, which import
// nothing but this package) needs from internal/. Aliases keep the
// public types identical to the internal ones — no conversion layer, no
// drift — while internal/ remains unimportable from outside the module.

import (
	"effpi/internal/lts"
	"effpi/internal/syntax"
	"effpi/internal/systems"
	"effpi/internal/typelts"
	"effpi/internal/types"
	"effpi/internal/verify"
)

type (
	// Property is a Fig. 7 property instance (kind + probe channels).
	Property = verify.Property
	// Kind enumerates the six Fig. 7 property schemas.
	Kind = verify.Kind
	// Outcome is one verification result: verdict, explored state count,
	// timing, and — on FAIL — the replay-validated counterexample.
	Outcome = verify.Outcome
	// Witness is a decoded counterexample lasso (see Outcome.Witness).
	Witness = verify.Witness
	// WitnessStep is one transition of a witness run.
	WitnessStep = verify.WitnessStep
	// Env is a typing environment Γ.
	Env = types.Env
	// Type is a λπ⩽ type.
	Type = types.Type
	// LTS is an explored type-level transition system.
	LTS = lts.LTS
	// Label is a transition label of the type semantics.
	Label = typelts.Label
	// ExploreProgress is a periodic snapshot of a running exploration.
	ExploreProgress = lts.Progress
	// BenchSystem is one benchmark row: a named system with its property
	// instances and the verdicts Fig. 9 publishes for them.
	BenchSystem = systems.System
	// Reduction selects the state-space reduction stage (WithReduction).
	Reduction = verify.Reduction
	// SymmetryMode selects exploration-time symmetry reduction
	// (WithSymmetry).
	SymmetryMode = verify.SymmetryMode
	// PartialOrderMode selects exploration-time partial-order reduction
	// (WithPartialOrder).
	PartialOrderMode = verify.PartialOrderMode
)

// The six property schemas of Fig. 7.
const (
	NonUsage       = verify.NonUsage
	DeadlockFree   = verify.DeadlockFree
	EventualOutput = verify.EventualOutput
	Forwarding     = verify.Forwarding
	Reactive       = verify.Reactive
	Responsive     = verify.Responsive
)

// The reduction modes of WithReduction.
const (
	// ReduceOff checks on the concrete LTS (the default).
	ReduceOff = verify.ReduceOff
	// ReduceStrong checks on the strong-bisimulation quotient over the
	// property's observation classes, with replay-validated witness
	// lifting on every FAIL.
	ReduceStrong = verify.ReduceStrong
)

// The symmetry modes of WithSymmetry.
const (
	// SymmetryOff explores the concrete state space (the default).
	SymmetryOff = verify.SymmetryOff
	// SymmetryOn explores orbit representatives under the system's
	// channel-bundle automorphism group, with permutation-tracked,
	// replay-validated witness lifting on every FAIL.
	SymmetryOn = verify.SymmetryOn
)

// The partial-order modes of WithPartialOrder.
const (
	// PartialOrderOff explores every enabled transition (the default).
	PartialOrderOff = verify.PartialOrderOff
	// PartialOrderOn explores an ample subset of each state's enabled
	// transitions; FAIL witnesses are concrete runs of the reduced
	// edge-subset, re-validated by the replay oracle.
	PartialOrderOn = verify.PartialOrderOn
)

// AllKinds lists the six schemas in the column order of Fig. 9.
func AllKinds() []Kind { return verify.AllKinds() }

// ParseReduction resolves a reduction mode name ("off", "strong") as
// used by CLI flags and the effpid request field.
func ParseReduction(name string) (Reduction, error) { return verify.ParseReduction(name) }

// ParseSymmetry resolves a symmetry mode name ("off", "on") as used by
// CLI flags and the effpid request field.
func ParseSymmetry(name string) (SymmetryMode, error) { return verify.ParseSymmetry(name) }

// ParsePartialOrder resolves a partial-order mode name ("off", "on") as
// used by CLI flags and the effpid request field.
func ParsePartialOrder(name string) (PartialOrderMode, error) { return verify.ParsePartialOrder(name) }

// Replay re-validates a FAIL outcome by machine-checking its witness
// against the explored LTS and a freshly re-translated property
// automaton. See the internal verify.Replay for the full trust story.
func Replay(o *Outcome) error { return verify.Replay(o) }

// NewEnv returns an empty typing environment.
func NewEnv() *Env { return types.NewEnv() }

// ParseType parses a type in the .epi concrete syntax (e.g. "Chan[Int]").
func ParseType(src string) (Type, error) {
	t, err := syntax.ParseType(src)
	if err != nil {
		return nil, &ParseError{What: "type", Err: err}
	}
	return t, nil
}

// FormatType renders a type in the .epi concrete syntax.
func FormatType(t Type) string { return syntax.PrintType(t) }

// ClipRunes truncates s to at most n runes (0 = no truncation), cutting
// on a rune boundary so the multi-byte glyphs of rendered types survive.
func ClipRunes(s string, n int) string { return verify.ClipRunes(s, n) }

// Binding is one environment entry, named and typed in concrete syntax.
// It is the parsed form of a CLI "-bind x=TYPE" flag or a service
// request's "binds" object.
type Binding struct {
	Name string
	Type string
}

// BuildEnv assembles a typing environment from bindings, in order.
// Duplicate names and unparsable types fail with a *ParseError.
func BuildEnv(binds []Binding) (*Env, error) {
	env := types.NewEnv()
	for _, b := range binds {
		t, err := ParseType(b.Type)
		if err != nil {
			return nil, &ParseError{What: "binding " + b.Name, Err: err}
		}
		env, err = env.Extend(b.Name, t)
		if err != nil {
			return nil, &ParseError{What: "binding " + b.Name, Err: err}
		}
	}
	return env, nil
}

// Fig9Systems returns the 19 benchmark rows of the paper's Fig. 9.
func Fig9Systems() []*BenchSystem { return systems.Fig9Systems() }

// LargeSystems returns the beyond-Fig. 9 rows the parallel engine
// unlocks (up to half a million states).
func LargeSystems() []*BenchSystem { return systems.LargeSystems() }

// BenchSystemByName finds a benchmark row by its exact name among
// Fig9Systems and LargeSystems.
func BenchSystemByName(name string) (*BenchSystem, bool) {
	for _, s := range append(Fig9Systems(), LargeSystems()...) {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}
