package effpi

// This file regenerates the paper's evaluation (§5.2): one benchmark per
// Fig. 8 plot (runtime performance across engines) and one per Fig. 9 row
// group (type-level model-checking speed). Run with:
//
//	go test -bench=. -benchmem
//
// The full-size sweeps (Fig. 8's 10⁶-actor points, Fig. 9's 10-pair
// ping-pong rows) are driven by cmd/savina and cmd/mcbench; the bench
// sizes here are chosen so the whole suite completes in minutes while
// preserving the paper's comparisons (who wins, by what factor).

import (
	"testing"

	"effpi/internal/lts"
	"effpi/internal/mucalc"
	rt "effpi/internal/runtime"
	"effpi/internal/savina"
	"effpi/internal/systems"
	"effpi/internal/typelts"
	"effpi/internal/types"
	"effpi/internal/verify"
)

// --- Fig. 8: runtime benchmarks ---------------------------------------------

func engines() map[string]func() rt.Engine {
	return map[string]func() rt.Engine{
		"effpi-default": func() rt.Engine { return rt.NewScheduler(0, rt.PolicyDefault) },
		"effpi-fsm":     func() rt.Engine { return rt.NewScheduler(0, rt.PolicyChannelFSM) },
		"goroutine":     func() rt.Engine { return rt.NewGoEngine() },
	}
}

func benchSavina(b *testing.B, name string, size int) {
	bench, err := savina.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	for engName, mk := range engines() {
		b.Run(engName, func(b *testing.B) {
			e := mk()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bench.Run(e, size)
			}
		})
	}
}

func BenchmarkFig8Chameneos(b *testing.B)          { benchSavina(b, "chameneos", 1_000) }
func BenchmarkFig8Counting(b *testing.B)           { benchSavina(b, "counting", 100_000) }
func BenchmarkFig8ForkJoinCreate(b *testing.B)     { benchSavina(b, "fjc", 10_000) }
func BenchmarkFig8ForkJoinThroughput(b *testing.B) { benchSavina(b, "fjt", 100) }
func BenchmarkFig8PingPong(b *testing.B)           { benchSavina(b, "pingpong", 100) }
func BenchmarkFig8Ring(b *testing.B)               { benchSavina(b, "ring", 1_000) }
func BenchmarkFig8StreamingRing(b *testing.B)      { benchSavina(b, "streamring", 1_000) }

// --- Fig. 9: model-checking benchmarks ---------------------------------------

func benchFig9(b *testing.B, s *systems.System) {
	for _, prop := range s.Props {
		prop := prop
		b.Run(prop.Kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o, err := verify.Verify(verify.Request{Env: s.Env, Type: s.Type, Property: prop})
				if err != nil {
					b.Fatal(err)
				}
				if want, ok := s.Expected[prop.Kind]; ok && o.Holds != want {
					b.Fatalf("%s / %s: verdict %v, Fig. 9 says %v", s.Name, prop, o.Holds, want)
				}
			}
		})
	}
}

func BenchmarkFig9Payment8(b *testing.B)  { benchFig9(b, systems.PaymentAudit(8)) }
func BenchmarkFig9Payment12(b *testing.B) { benchFig9(b, systems.PaymentAudit(12)) }

func BenchmarkFig9Philosophers4Deadlock(b *testing.B) {
	benchFig9(b, systems.DiningPhilosophers(4, true))
}

func BenchmarkFig9Philosophers5NoDeadlock(b *testing.B) {
	benchFig9(b, systems.DiningPhilosophers(5, false))
}

func BenchmarkFig9PingPong6(b *testing.B) { benchFig9(b, systems.PingPongPairs(6, false)) }

func BenchmarkFig9PingPong6Responsive(b *testing.B) {
	benchFig9(b, systems.PingPongPairs(6, true))
}

func BenchmarkFig9Ring10(b *testing.B)        { benchFig9(b, systems.Ring(10, 1)) }
func BenchmarkFig9Ring10Tokens3(b *testing.B) { benchFig9(b, systems.Ring(10, 3)) }

// benchVerifyAll measures the production path: all six properties
// verified together, sharing one transition cache and the explored LTS
// (verify.VerifyAllWith), at the given pipeline parallelism (0 =
// GOMAXPROCS, 1 = the serial reference engine).
func benchVerifyAll(b *testing.B, s *systems.System, parallelism int) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		outcomes, err := verify.VerifyAllWith(s.Env, s.Type, s.Props, verify.AllOptions{Parallelism: parallelism})
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outcomes {
			if want, ok := s.Expected[o.Property.Kind]; ok && o.Holds != want {
				b.Fatalf("%s / %s: verdict %v, expected %v", s.Name, o.Property, o.Holds, want)
			}
		}
	}
}

// BenchmarkFig9VerifyAllPhilosophers5 runs at the default parallelism
// (GOMAXPROCS); the Serial variant pins the reference engine, so the
// pair isolates the speedup of the concurrent pipeline.
func BenchmarkFig9VerifyAllPhilosophers5(b *testing.B) {
	benchVerifyAll(b, systems.DiningPhilosophers(5, false), 0)
}

func BenchmarkFig9VerifyAllPhilosophers5Serial(b *testing.B) {
	benchVerifyAll(b, systems.DiningPhilosophers(5, false), 1)
}

// --- Beyond Fig. 9: the larger instances the parallel engine unlocks ---------
//
// These rows are benchmark-sized (the responsive 10-pair system explores
// ~59k states per observable group); they are skipped in -short mode so
// `go test -short -bench=.` stays quick, and surfaced in cmd/mcbench
// behind -skip-slow.

func benchLarge(b *testing.B, s *systems.System, parallelism int) {
	if testing.Short() {
		b.Skip("large instance skipped in -short mode")
	}
	benchVerifyAll(b, s, parallelism)
}

func BenchmarkLargeVerifyAllPhilosophers7Serial(b *testing.B) {
	benchLarge(b, systems.DiningPhilosophers(7, false), 1)
}

func BenchmarkLargeVerifyAllPhilosophers7Parallel(b *testing.B) {
	benchLarge(b, systems.DiningPhilosophers(7, false), 0)
}

func BenchmarkLargeVerifyAllPhilosophers8Serial(b *testing.B) {
	benchLarge(b, systems.DiningPhilosophers(8, false), 1)
}

func BenchmarkLargeVerifyAllPhilosophers8Parallel(b *testing.B) {
	benchLarge(b, systems.DiningPhilosophers(8, false), 0)
}

func BenchmarkLargeVerifyAllRing16Tokens4Parallel(b *testing.B) {
	benchLarge(b, systems.Ring(16, 4), 0)
}

// --- Reduction: the Reduce stage of Explore → Reduce → Check -----------------
//
// The Serial/Reduced pairs isolate the pipeline downstream of
// exploration: the LTS is explored once outside the timed loop, then the
// row's properties are verified against it (Reuse) with the reduction
// stage off (Serial) and on (Reduced). That is exactly the states-checked
// comparison: the Reduced variants run the checker on bisimulation
// quotients (PingPong-12 deadlock-freedom collapses 531 441 states to 1
// block and wins wall-clock too), while FAIL-fast properties expose the
// refinement's fixed cost against an early-exiting NDFS.

// benchReduceCheck verifies props (nil = all of the row's) against a
// pre-explored LTS with the given reduction, asserting verdicts.
func benchReduceCheck(b *testing.B, s *systems.System, kinds map[verify.Kind]bool, red verify.Reduction) {
	sem := &typelts.Semantics{Env: s.Env, Observable: map[string]bool{}, WitnessOnly: true}
	m, err := lts.Explore(sem, s.Type, lts.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range s.Props {
			if kinds != nil && !kinds[p.Kind] {
				continue
			}
			o, err := verify.Verify(verify.Request{Env: s.Env, Type: s.Type, Property: p, Reuse: m, Reduction: red})
			if err != nil {
				b.Fatal(err)
			}
			if want, ok := s.Expected[p.Kind]; ok && o.Holds != want {
				b.Fatalf("%s / %s: verdict %v, expected %v", s.Name, p, o.Holds, want)
			}
		}
	}
}

func benchReduceCheckLarge(b *testing.B, s *systems.System, kinds map[verify.Kind]bool, red verify.Reduction) {
	if testing.Short() {
		b.Skip("large instance skipped in -short mode")
	}
	benchReduceCheck(b, s, kinds, red)
}

func BenchmarkReduceCheckPhilosophers5Serial(b *testing.B) {
	benchReduceCheck(b, systems.DiningPhilosophers(5, false), nil, verify.ReduceOff)
}

func BenchmarkReduceCheckPhilosophers5Reduced(b *testing.B) {
	benchReduceCheck(b, systems.DiningPhilosophers(5, false), nil, verify.ReduceStrong)
}

func BenchmarkReduceCheckPhilosophers8Serial(b *testing.B) {
	benchReduceCheckLarge(b, systems.DiningPhilosophers(8, false), nil, verify.ReduceOff)
}

func BenchmarkReduceCheckPhilosophers8Reduced(b *testing.B) {
	benchReduceCheckLarge(b, systems.DiningPhilosophers(8, false), nil, verify.ReduceStrong)
}

func BenchmarkReduceCheckRing16Serial(b *testing.B) {
	benchReduceCheckLarge(b, systems.Ring(16, 4), nil, verify.ReduceOff)
}

func BenchmarkReduceCheckRing16Reduced(b *testing.B) {
	benchReduceCheckLarge(b, systems.Ring(16, 4), nil, verify.ReduceStrong)
}

// The headline pair: deadlock-freedom of the 531 441-state ping-pong
// sweep is a PASS, so the unreduced checker must walk the entire
// product; the Reduce stage collapses it to one block.
var deadlockOnly = map[verify.Kind]bool{verify.DeadlockFree: true}

func BenchmarkReduceCheckPingPong12Serial(b *testing.B) {
	benchReduceCheckLarge(b, systems.PingPongPairs(12, false), deadlockOnly, verify.ReduceOff)
}

func BenchmarkReduceCheckPingPong12Reduced(b *testing.B) {
	benchReduceCheckLarge(b, systems.PingPongPairs(12, false), deadlockOnly, verify.ReduceStrong)
}

// --- Symmetry: exploration-time orbit collapsing -----------------------------
//
// The Serial/Symmetry pairs time the WHOLE VerifyAll pipeline — unlike
// the Reduce pairs above, symmetry pays off during exploration itself:
// the n-pair ping-pong rows have 3^n concrete states but only
// 3·C(n+1, 2) orbit representatives (one pair pinned by the probe
// channels), so the Symmetry variants never materialise the exponential
// state space at all. PingPong-12 collapses 531 441 states to 234 —
// the acceptance pair behind the ISSUE's ≥5× target.

// benchSymmetryVerifyAll runs the full batch pipeline (exploration
// included, fresh cache per iteration) under the given symmetry mode,
// asserting every verdict against the row's expectations.
func benchSymmetryVerifyAll(b *testing.B, s *systems.System, sym verify.SymmetryMode) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		outs, err := verify.VerifyAllWith(s.Env, s.Type, s.Props, verify.AllOptions{Symmetry: sym})
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outs {
			if want, ok := s.Expected[o.Property.Kind]; ok && o.Holds != want {
				b.Fatalf("%s / %s: verdict %v, expected %v", s.Name, o.Property, o.Holds, want)
			}
		}
	}
}

func benchSymmetryVerifyAllLarge(b *testing.B, s *systems.System, sym verify.SymmetryMode) {
	if testing.Short() {
		b.Skip("large instance skipped in -short mode")
	}
	benchSymmetryVerifyAll(b, s, sym)
}

func BenchmarkSymmetryVerifyAllPingPong10Serial(b *testing.B) {
	benchSymmetryVerifyAll(b, systems.PingPongPairs(10, false), verify.SymmetryOff)
}

func BenchmarkSymmetryVerifyAllPingPong10Symmetry(b *testing.B) {
	benchSymmetryVerifyAll(b, systems.PingPongPairs(10, false), verify.SymmetryOn)
}

// The acceptance pair: all six Fig. 9 columns of the 531 441-state
// ping-pong sweep, end to end.
func BenchmarkSymmetryVerifyAllPingPong12Serial(b *testing.B) {
	benchSymmetryVerifyAllLarge(b, systems.PingPongPairs(12, false), verify.SymmetryOff)
}

func BenchmarkSymmetryVerifyAllPingPong12Symmetry(b *testing.B) {
	benchSymmetryVerifyAllLarge(b, systems.PingPongPairs(12, false), verify.SymmetryOn)
}

// benchSymmetryVerifyDining times a SINGLE property — deadlock-freedom
// of the 8-philosopher Dining ring — rather than the VerifyAll batch.
// The joint quotient of the full six-property batch pins f0 and f1,
// which freezes the ring (a rotation moves every fork), so only the
// per-property run shows the cyclic factor: deadlock-freedom observes
// no channels, the rotation group C_8 survives, and 6 560 concrete
// states collapse to 833 necklace representatives with the FAIL's
// witness rotated back and replayed concretely.
func benchSymmetryVerifyDining(b *testing.B, sym verify.SymmetryMode) {
	if testing.Short() {
		b.Skip("large instance skipped in -short mode")
	}
	s := systems.DiningPhilosophers(8, true)
	var prop verify.Property
	for _, p := range s.Props {
		if p.Kind == verify.DeadlockFree {
			prop = p
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		o, err := verify.Verify(verify.Request{Env: s.Env, Type: s.Type, Property: prop,
			Symmetry: sym})
		if err != nil {
			b.Fatal(err)
		}
		if o.Holds {
			b.Fatal("deadlock variant verified deadlock-free")
		}
		if err := verify.Replay(o); err != nil {
			b.Fatalf("witness does not replay: %v", err)
		}
	}
}

func BenchmarkSymmetryVerifyDining8Serial(b *testing.B) {
	benchSymmetryVerifyDining(b, verify.SymmetryOff)
}

func BenchmarkSymmetryVerifyDining8Rotational(b *testing.B) {
	benchSymmetryVerifyDining(b, verify.SymmetryOn)
}

// BenchmarkParallelExplorePhilosophers6 isolates bare LTS exploration
// (no model checking) at worker counts 1 and GOMAXPROCS — the
// level-synchronised BFS against the serial worklist engine.
func BenchmarkParallelExplorePhilosophers6(b *testing.B) {
	s := systems.DiningPhilosophers(6, false)
	for _, par := range []struct {
		name string
		n    int
	}{{"serial", 1}, {"gomaxprocs", 0}} {
		b.Run(par.name, func(b *testing.B) {
			sem := &typelts.Semantics{Env: s.Env, Observable: map[string]bool{}, WitnessOnly: true}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lts.Explore(sem, s.Type, lts.Options{Parallelism: par.n}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations: the design choices DESIGN.md calls out -----------------------

// BenchmarkAblationSubtype measures the coinductive subtype check on the
// recursive mobile-code type (memoised assume-on-revisit algorithm).
func BenchmarkAblationSubtype(b *testing.B) {
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	rec := types.Rec{Var: "t", Body: types.In{Ch: types.Var{Name: "x"},
		Cont: types.Pi{Var: "y", Dom: types.Int{},
			Cod: types.Out{Ch: types.Var{Name: "x"}, Payload: types.Var{Name: "y"},
				Cont: types.Thunk(types.RecVar{Name: "t"})}}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !types.Subtype(env, rec, types.Unfold(rec)) {
			b.Fatal("subtype failed")
		}
	}
}

// BenchmarkAblationExplore measures bare LTS exploration (no model
// checking) of the 5-philosopher system.
func BenchmarkAblationExplore(b *testing.B) {
	s := systems.DiningPhilosophers(5, false)
	sem := &typelts.Semantics{Env: s.Env, Observable: map[string]bool{}, WitnessOnly: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lts.Explore(sem, s.Type, lts.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBuchi measures the GPVW translation of the most
// complex Fig. 7 schema (responsiveness) in isolation.
func BenchmarkAblationBuchi(b *testing.B) {
	s := systems.PaymentAudit(4)
	sem := &typelts.Semantics{Env: s.Env, Observable: map[string]bool{}, WitnessOnly: true}
	m, err := lts.Explore(sem, s.Type, lts.Options{})
	if err != nil {
		b.Fatal(err)
	}
	phi, err := verify.Compile(s.Env, m, verify.Property{Kind: verify.Responsive, From: "m", Closed: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ba := mucalc.Translate(mucalc.Not{F: phi})
		if ba.Len() == 0 {
			b.Fatal("empty automaton")
		}
	}
}

// BenchmarkAblationSchedulerPolicies isolates the default-vs-FSM policy
// difference on a message-heavy two-process exchange.
func BenchmarkAblationSchedulerPolicies(b *testing.B) {
	for _, policy := range []rt.Policy{rt.PolicyDefault, rt.PolicyChannelFSM} {
		policy := policy
		b.Run(policy.String(), func(b *testing.B) {
			e := rt.NewScheduler(0, policy)
			for i := 0; i < b.N; i++ {
				savina.Counting(e, 10_000)
			}
		})
	}
}

// --- Partial order: exploration-time ample-set pruning -----------------------
//
// The Serial/POR pairs time the whole VerifyAll pipeline under
// partial-order reduction. The ping-pong pair is the showcase
// (independent pairs collapse 3^n interleavings into one near-linear
// corridor); the dining pairs are the honest negative result the
// DESIGN.md §por documents: philosopher-to-philosopher token handover
// makes every adjacent pair dependent, so the conflict graph is one
// connected ring, ample sets barely prune (~1.0×), and the mode costs
// real time — each eligible property explores its own barely-reduced
// space instead of sharing the group's single exploration. The pairs
// keep both behaviours pinned: a regression in either direction (lost
// reduction on ping-pong, runaway overhead on dining) shows up here.

// benchPORVerifyAll runs the full batch pipeline (exploration included,
// fresh cache per iteration) under the given partial-order mode,
// asserting every verdict against the row's expectations. With
// eligibleOnly the row is cut down to the POR-eligible columns
// (deadlock-free, no-usage, reactive), so the pair isolates the
// reduction instead of being dominated by the full explorations the
// ineligible schemas run either way.
func benchPORVerifyAll(b *testing.B, s *systems.System, por verify.PartialOrderMode, eligibleOnly bool) {
	props := s.Props
	if eligibleOnly {
		props = nil
		for _, p := range s.Props {
			switch p.Kind {
			case verify.DeadlockFree, verify.NonUsage, verify.Reactive:
				props = append(props, p)
			}
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		outs, err := verify.VerifyAllWith(s.Env, s.Type, props, verify.AllOptions{PartialOrder: por})
		if err != nil {
			b.Fatal(err)
		}
		for _, o := range outs {
			if want, ok := s.Expected[o.Property.Kind]; ok && o.Holds != want {
				b.Fatalf("%s / %s: verdict %v, expected %v", s.Name, o.Property, o.Holds, want)
			}
		}
	}
}

func benchPORVerifyAllLarge(b *testing.B, s *systems.System, por verify.PartialOrderMode, eligibleOnly bool) {
	if testing.Short() {
		b.Skip("large instance skipped in -short mode")
	}
	benchPORVerifyAll(b, s, por, eligibleOnly)
}

func BenchmarkPORVerifyAllPingPong10Serial(b *testing.B) {
	benchPORVerifyAll(b, systems.PingPongPairs(10, false), verify.PartialOrderOff, true)
}

func BenchmarkPORVerifyAllPingPong10POR(b *testing.B) {
	benchPORVerifyAll(b, systems.PingPongPairs(10, false), verify.PartialOrderOn, true)
}

func BenchmarkPORVerifyAllPhilosophers7Serial(b *testing.B) {
	benchPORVerifyAllLarge(b, systems.DiningPhilosophers(7, false), verify.PartialOrderOff, false)
}

func BenchmarkPORVerifyAllPhilosophers7POR(b *testing.B) {
	benchPORVerifyAllLarge(b, systems.DiningPhilosophers(7, false), verify.PartialOrderOn, false)
}

func BenchmarkPORVerifyAllPhilosophers8Serial(b *testing.B) {
	benchPORVerifyAllLarge(b, systems.DiningPhilosophers(8, false), verify.PartialOrderOff, false)
}

func BenchmarkPORVerifyAllPhilosophers8POR(b *testing.B) {
	benchPORVerifyAllLarge(b, systems.DiningPhilosophers(8, false), verify.PartialOrderOn, false)
}
