// Command effpilint statically checks Go packages written against the
// effpi combinators: it runs the behavioural-type extractor
// (internal/frontend, via the public effpi façade) for its diagnostics
// and reports every construct that keeps a protocol entry from being
// verified — dynamic channel choices, procs escaping through
// interfaces, shadowed mailboxes, unbounded recursion — each with a
// source position.
//
// Usage:
//
//	effpilint [./PKG/...]...
//
// With no arguments, ./... is linted. Exit status is 1 when there are
// findings, 2 on usage or load errors, and 0 on a clean run.
package main

import (
	"fmt"
	"os"

	"effpi"
)

func main() {
	res, err := effpi.FromPackages(".", os.Args[1:]...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "effpilint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range res.Diagnostics {
		fmt.Println(d)
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
	fmt.Printf("effpilint: %d protocol entries extracted cleanly\n", len(res.Systems))
}
