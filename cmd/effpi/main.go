// Command effpi is the CLI front end of the effpi-go reproduction: it
// parses .epi programs, type-checks them against the λπ⩽ type system,
// verifies temporal properties by type-level model checking, explores
// type state spaces, and runs programs under the operational semantics.
//
// Usage:
//
//	effpi check  [-bind x=TYPE]... FILE
//	effpi run    [-steps N] FILE
//	effpi verify [-bind x=TYPE]... -prop KIND [-channels a,b] [-from x] [-to y] [-open] FILE
//	effpi lts    [-bind x=TYPE]... [-dot] [-max N] FILE
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"effpi/internal/core"
	"effpi/internal/lts"
	"effpi/internal/reduce"
	"effpi/internal/syntax"
	"effpi/internal/typelts"
	"effpi/internal/types"
	"effpi/internal/verify"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "check":
		err = cmdCheck(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "lts":
		err = cmdLTS(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "bisim":
		err = cmdBisim(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "effpi: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "effpi: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `effpi — dependent behavioural types for message-passing programs

commands:
  check   parse a .epi program and infer its λπ⩽ type
  run     execute a program under the operational semantics
  trace   print the program's reduction sequence step by step
  bisim   decide strong bisimilarity of two programs' types
  verify  model-check a Fig. 7 property of the program's type
  lts     explore and print the type-level transition system

common flags:
  -bind x=TYPE   add x:TYPE to the typing environment (repeatable)

verify flags:
  -prop KIND     deadlock-free | ev-usage | forwarding | non-usage |
                 reactive | responsive
  -channels a,b  probe channels (deadlock-free, ev-usage, non-usage)
  -from x -to y  forwarding source/target; reactive/responsive use -from
  -open          treat the program as open (environment may interact on
                 the probe channels); default is closed-composition mode
  -early         stop exploring as soon as a violation is found
  -width N       truncate printed witness states to N runes (default
                 100, 0 = full)

a failing property exits with status 1 and prints the counterexample: a
lasso-shaped run (stem, then a cycle repeating forever) with the parallel
component multiset at every visited state, re-validated by replaying it
against the transition system and the property automaton.
`)
}

// bindFlags collects repeated -bind x=TYPE flags.
type bindFlags struct{ env *types.Env }

func (b *bindFlags) String() string { return "" }

func (b *bindFlags) Set(s string) error {
	name, tsrc, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("-bind wants x=TYPE, got %q", s)
	}
	t, err := syntax.ParseType(strings.TrimSpace(tsrc))
	if err != nil {
		return fmt.Errorf("type of %s: %w", name, err)
	}
	env, err := b.env.Extend(strings.TrimSpace(name), t)
	if err != nil {
		return err
	}
	b.env = env
	return nil
}

func loadProgram(fs *flag.FlagSet, binds *bindFlags, args []string) (*core.Program, error) {
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one input file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return nil, err
	}
	return core.ParseInEnv(string(src), binds.env)
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	binds := &bindFlags{env: types.NewEnv()}
	fs.Var(binds, "bind", "x=TYPE environment binding")
	p, err := loadProgram(fs, binds, args)
	if err != nil {
		return err
	}
	t, err := p.Check()
	if err != nil {
		return err
	}
	fmt.Println(syntax.PrintType(t))
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	binds := &bindFlags{env: types.NewEnv()}
	fs.Var(binds, "bind", "x=TYPE environment binding")
	steps := fs.Int("steps", 1_000_000, "maximum reduction steps")
	p, err := loadProgram(fs, binds, args)
	if err != nil {
		return err
	}
	final, err := p.Run(*steps)
	if err != nil {
		return err
	}
	fmt.Println(syntax.PrintTerm(final))
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	binds := &bindFlags{env: types.NewEnv()}
	fs.Var(binds, "bind", "x=TYPE environment binding")
	propName := fs.String("prop", "", "property kind")
	channels := fs.String("channels", "", "comma-separated probe channels")
	from := fs.String("from", "", "source channel")
	to := fs.String("to", "", "target channel")
	open := fs.Bool("open", false, "open-process mode (default: closed composition)")
	maxStates := fs.Int("max", 0, "state bound (0 = default)")
	early := fs.Bool("early", false, "early-exit mode: stop exploring as soon as a violation is found (on-the-fly checking; non-usage, deadlock-free and reactive)")
	width := fs.Int("width", 100, "truncate printed witness states to this width (0 = full)")
	p, err := loadProgram(fs, binds, args)
	if err != nil {
		return err
	}

	prop, err := propertyFromFlags(*propName, *channels, *from, *to, !*open)
	if err != nil {
		return err
	}
	t, err := p.Check()
	if err != nil {
		return err
	}
	outcome, err := verify.Verify(verify.Request{Env: p.Env, Type: t, Property: prop, MaxStates: *maxStates, EarlyExit: *early})
	if err != nil {
		return err
	}
	printOutcome(outcome, *width)
	if !outcome.Holds {
		// A FAIL exits non-zero (via main's error path) so scripts and CI
		// can gate on the verdict; the witness above is the evidence.
		return fmt.Errorf("property %s does not hold (counterexample above)", outcome.Property)
	}
	return nil
}

func propertyFromFlags(name, channels, from, to string, closed bool) (verify.Property, error) {
	var kind verify.Kind
	switch name {
	case "deadlock-free":
		kind = verify.DeadlockFree
	case "ev-usage":
		kind = verify.EventualOutput
	case "forwarding":
		kind = verify.Forwarding
	case "non-usage":
		kind = verify.NonUsage
	case "reactive":
		kind = verify.Reactive
	case "responsive":
		kind = verify.Responsive
	default:
		return verify.Property{}, fmt.Errorf("unknown or missing -prop %q", name)
	}
	var chs []string
	if channels != "" {
		chs = strings.Split(channels, ",")
	}
	p := verify.Property{Kind: kind, Channels: chs, From: from, To: to, Closed: closed}
	switch kind {
	case verify.Forwarding:
		if from == "" || to == "" {
			return p, fmt.Errorf("forwarding needs -from and -to")
		}
	case verify.Reactive, verify.Responsive:
		if from == "" {
			return p, fmt.Errorf("%s needs -from", kind)
		}
	}
	return p, nil
}

func printOutcome(o *verify.Outcome, width int) {
	fmt.Printf("property:  %s\n", o.Property)
	fmt.Printf("verdict:   %v\n", o.Holds)
	if o.EarlyExit {
		fmt.Printf("states:    %d discovered, %d expanded (early exit; product %d, automaton %d)\n",
			o.States, o.Expanded, o.ProductStates, o.AutomatonStates)
	} else {
		fmt.Printf("states:    %d (product %d, automaton %d)\n", o.States, o.ProductStates, o.AutomatonStates)
	}
	fmt.Printf("time:      %s\n", o.Duration)
	if o.Formula != nil {
		fmt.Printf("formula:   %s\n", o.Formula)
	}
	if o.Witness != nil {
		replayed := "replay-validated"
		if err := verify.Replay(o); err != nil {
			replayed = fmt.Sprintf("REPLAY FAILED: %v", err)
		}
		fmt.Printf("violating run (lasso, %s):\n%s", replayed, o.Witness.Render(width))
	} else if o.Counterexample != nil {
		fmt.Printf("violating run (lasso):\n  prefix: %v\n  cycle:  %v\n",
			o.Counterexample.Prefix, o.Counterexample.Cycle)
	} else if !o.Holds && o.Property.Kind == verify.EventualOutput {
		fmt.Printf("no single-run witness: ev-usage is existential (no run reaches the output)\n")
	}
}

func cmdLTS(args []string) error {
	fs := flag.NewFlagSet("lts", flag.ContinueOnError)
	binds := &bindFlags{env: types.NewEnv()}
	fs.Var(binds, "bind", "x=TYPE environment binding")
	dot := fs.Bool("dot", false, "emit Graphviz DOT")
	maxStates := fs.Int("max", 0, "state bound (0 = default)")
	observe := fs.String("observe", "", "comma-separated observable channels (default: all closed)")
	p, err := loadProgram(fs, binds, args)
	if err != nil {
		return err
	}
	t, err := p.Check()
	if err != nil {
		return err
	}
	obs := map[string]bool{}
	if *observe != "" {
		for _, x := range strings.Split(*observe, ",") {
			obs[x] = true
		}
	}
	sem := &typelts.Semantics{Env: p.Env, Observable: obs, WitnessOnly: true}
	m, err := lts.Explore(sem, t, lts.Options{MaxStates: *maxStates})
	if err != nil {
		return err
	}
	if *dot {
		fmt.Print(m.DOT())
		return nil
	}
	fmt.Printf("states:      %d\n", m.Len())
	fmt.Printf("transitions: %d\n", m.NumEdges())
	fmt.Printf("alphabet:    %d labels\n", len(m.Alphabet()))
	fmt.Printf("deadlocked:  %v\n", m.Deadlocked())
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	binds := &bindFlags{env: types.NewEnv()}
	fs.Var(binds, "bind", "x=TYPE environment binding")
	steps := fs.Int("steps", 200, "maximum steps to trace")
	width := fs.Int("width", 100, "truncate printed terms to this width")
	p, err := loadProgram(fs, binds, args)
	if err != nil {
		return err
	}
	if _, err := p.Check(); err != nil {
		return err
	}
	cur := p.Term
	fmt.Printf("%4d  %s\n", 0, clip(syntax.PrintTerm(cur), *width))
	for i := 1; i <= *steps; i++ {
		next, rule, ok := reduce.Step(cur)
		if !ok {
			fmt.Printf("      (no further reductions)\n")
			return nil
		}
		cur = next
		fmt.Printf("%4d  —[%s]→  %s\n", i, rule, clip(syntax.PrintTerm(cur), *width))
		if reduce.IsError(cur) {
			return fmt.Errorf("term reduced to an error (this contradicts type safety)")
		}
	}
	fmt.Printf("      (trace truncated at %d steps)\n", *steps)
	return nil
}

// clip truncates s to at most n runes (0 = no truncation), cutting on a
// rune boundary so multi-byte glyphs in printed terms survive intact.
func clip(s string, n int) string { return verify.ClipRunes(s, n) }

// cmdBisim decides whether two programs have strongly bisimilar types:
// an executable notion of behavioural equivalence, useful to check that
// a protocol refactoring preserves behaviour.
func cmdBisim(args []string) error {
	fs := flag.NewFlagSet("bisim", flag.ContinueOnError)
	binds := &bindFlags{env: types.NewEnv()}
	fs.Var(binds, "bind", "x=TYPE environment binding")
	maxStates := fs.Int("max", 0, "state bound (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("bisim expects two input files")
	}
	load := func(path string) (types.Type, error) {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		p, err := core.ParseInEnv(string(src), binds.env)
		if err != nil {
			return nil, err
		}
		return p.Check()
	}
	t1, err := load(fs.Arg(0))
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}
	t2, err := load(fs.Arg(1))
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(1), err)
	}
	ok, err := lts.TypesBisimilar(binds.env, t1, t2, lts.Options{MaxStates: *maxStates})
	if err != nil {
		return err
	}
	fmt.Printf("bisimilar: %v\n", ok)
	if !ok {
		os.Exit(1)
	}
	return nil
}
