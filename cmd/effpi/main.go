// Command effpi is the CLI front end of the effpi-go reproduction: it
// parses .epi programs, type-checks them against the λπ⩽ type system,
// verifies temporal properties by type-level model checking, explores
// type state spaces, and runs programs under the operational semantics.
//
// It is built entirely on the public effpi package — the same
// session-oriented API that cmd/effpid serves over HTTP — so every
// capability here is available to library consumers too.
//
// Usage:
//
//	effpi check  [-bind x=TYPE]... FILE
//	effpi run    [-steps N] FILE
//	effpi verify [-bind x=TYPE]... -prop KIND [-channels a,b] [-from x] [-to y] [-open] FILE
//	effpi verify [-prop KIND] [flags] ./PKG/...   (static extraction from Go source)
//	effpi lint   [./PKG/...]
//	effpi lts    [-bind x=TYPE]... [-dot] [-max N] FILE
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"effpi"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "check":
		err = cmdCheck(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "lint":
		err = cmdLint(os.Args[2:])
	case "lts":
		err = cmdLTS(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "bisim":
		err = cmdBisim(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "effpi: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "effpi: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `effpi — dependent behavioural types for message-passing programs

commands:
  check   parse a .epi program and infer its λπ⩽ type
  run     execute a program under the operational semantics
  trace   print the program's reduction sequence step by step
  bisim   decide strong bisimilarity of two programs' types
  verify  model-check a Fig. 7 property of the program's type; given a
          Go package directory (or ./... pattern) instead of a .epi
          file, statically extract the protocol from the Go source
          first — FAIL witnesses then carry file:line positions
  lint    run the Go-source extractor for diagnostics only (exit 1 on
          any finding); also available standalone as cmd/effpilint
  lts     explore and print the type-level transition system

common flags:
  -bind x=TYPE   add x:TYPE to the typing environment (repeatable)

verify flags:
  -prop KIND     deadlock-free | ev-usage | forwarding | non-usage |
                 reactive | responsive
  -channels a,b  probe channels (deadlock-free, ev-usage, non-usage)
  -from x -to y  forwarding source/target; reactive/responsive use -from
  -open          treat the program as open (environment may interact on
                 the probe channels); default is closed-composition mode
  -early         stop exploring as soon as a violation is found
  -reduce MODE   off | strong — check on the strong-bisimulation
                 quotient of the state space (verdicts unchanged;
                 counterexamples lifted back to concrete runs and
                 replay-validated)
  -symmetry MODE off | on — explore orbit representatives under the
                 system's channel permutation group: classes of
                 interchangeable channel bundles and rotations of
                 ring-shaped bundles (closed properties only; verdicts
                 unchanged, counterexamples permutation-lifted to
                 concrete runs and replay-validated)
  -por MODE      off | on — partial-order reduction: explore only an
                 ample subset of each state's transitions (non-usage,
                 deadlock-free and reactive; verdicts unchanged,
                 counterexamples are concrete runs of the reduced
                 space, replay-validated; yields to -symmetry)
  -width N       truncate printed witness states to N runes (default
                 100, 0 = full)

a failing property exits with status 1 and prints the counterexample: a
lasso-shaped run (stem, then a cycle repeating forever) with the parallel
component multiset at every visited state, re-validated by replaying it
against the transition system and the property automaton.

the long-lived service flavour of this tool is cmd/effpid: the same
verification pipeline behind an HTTP JSON API with shared caches.
`)
}

// bindFlags collects repeated -bind x=TYPE flags, validating each one
// eagerly (parse errors and duplicates fail at flag-parse time).
type bindFlags struct{ binds []effpi.Binding }

func (b *bindFlags) String() string { return "" }

func (b *bindFlags) Set(s string) error {
	name, tsrc, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("-bind wants x=TYPE, got %q", s)
	}
	b.binds = append(b.binds, effpi.Binding{Name: strings.TrimSpace(name), Type: strings.TrimSpace(tsrc)})
	// Validate the whole set eagerly so the failing flag is reported,
	// not the later session construction.
	if _, err := effpi.BuildEnv(b.binds); err != nil {
		b.binds = b.binds[:len(b.binds)-1]
		return err
	}
	return nil
}

// options converts the collected binds into session options.
func (b *bindFlags) options() []effpi.Option {
	opts := make([]effpi.Option, 0, len(b.binds))
	for _, bind := range b.binds {
		opts = append(opts, effpi.WithBind(bind.Name, bind.Type))
	}
	return opts
}

// loadSource parses the flag set and reads the single input file. The
// caller must only read its flag values after this returns.
func loadSource(fs *flag.FlagSet, args []string) (string, error) {
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	if fs.NArg() != 1 {
		return "", fmt.Errorf("expected exactly one input file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return "", err
	}
	return string(src), nil
}

// loadSession is loadSource plus a session in a fresh workspace. extra
// options are appended after the binds; pass flag-dependent options only
// via a command that read them after loadSource instead.
func loadSession(fs *flag.FlagSet, binds *bindFlags, args []string, extra ...effpi.Option) (*effpi.Session, error) {
	src, err := loadSource(fs, args)
	if err != nil {
		return nil, err
	}
	ws := effpi.NewWorkspace()
	return ws.NewSession(src, append(binds.options(), extra...)...)
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	binds := &bindFlags{}
	fs.Var(binds, "bind", "x=TYPE environment binding")
	s, err := loadSession(fs, binds, args)
	if err != nil {
		return err
	}
	t, err := s.Check(context.Background())
	if err != nil {
		return err
	}
	fmt.Println(effpi.FormatType(t))
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	binds := &bindFlags{}
	fs.Var(binds, "bind", "x=TYPE environment binding")
	steps := fs.Int("steps", 1_000_000, "maximum reduction steps")
	s, err := loadSession(fs, binds, args)
	if err != nil {
		return err
	}
	final, err := s.Run(context.Background(), *steps)
	if err != nil {
		return err
	}
	fmt.Println(final)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	binds := &bindFlags{}
	fs.Var(binds, "bind", "x=TYPE environment binding")
	propName := fs.String("prop", "", "property kind")
	channels := fs.String("channels", "", "comma-separated probe channels")
	from := fs.String("from", "", "source channel")
	to := fs.String("to", "", "target channel")
	open := fs.Bool("open", false, "open-process mode (default: closed composition)")
	maxStates := fs.Int("max", 0, "state bound (0 = default)")
	early := fs.Bool("early", false, "early-exit mode: stop exploring as soon as a violation is found (on-the-fly checking; non-usage, deadlock-free and reactive)")
	reduce := fs.String("reduce", "off", "state-space reduction before checking: off | strong (bisimulation quotient; verdicts unchanged, witnesses lifted and replay-validated)")
	symmetry := fs.String("symmetry", "off", "exploration-time symmetry reduction: off | on (orbit representatives under interchangeable-bundle and ring-rotation groups; verdicts unchanged, witnesses permutation-lifted and replay-validated)")
	por := fs.String("por", "off", "exploration-time partial-order reduction: off | on (ample transition subsets; verdicts unchanged, witnesses replay-validated; yields to -symmetry)")
	width := fs.Int("width", 100, "truncate printed witness states to this width (0 = full)")
	pkgMode := fs.Bool("pkg", false, "treat arguments as Go package directories and statically extract the protocol (implied by a directory or ./... argument)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	reduction, err := effpi.ParseReduction(*reduce)
	if err != nil {
		return err
	}
	symMode, err := effpi.ParseSymmetry(*symmetry)
	if err != nil {
		return err
	}
	porMode, err := effpi.ParsePartialOrder(*por)
	if err != nil {
		return err
	}
	opts := []effpi.Option{
		effpi.WithMaxStates(*maxStates), effpi.WithEarlyExit(*early),
		effpi.WithReduction(reduction), effpi.WithSymmetry(symMode),
		effpi.WithPartialOrder(porMode),
	}
	if *pkgMode || argsArePackages(fs.Args()) {
		return verifyPackages(fs.Args(), *propName, *channels, *from, *to, *open, *width, opts)
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("expected exactly one input file")
	}
	srcBytes, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	src := string(srcBytes)
	prop, err := effpi.PropertyFromFlags(*propName, *channels, *from, *to, !*open)
	if err != nil {
		return err
	}
	ws := effpi.NewWorkspace()
	s, err := ws.NewSession(src, append(binds.options(), opts...)...)
	if err != nil {
		return err
	}
	outcome, err := s.Verify(context.Background(), prop)
	if err != nil {
		return err
	}
	printOutcome(outcome, *width)
	if !outcome.Holds {
		// A FAIL exits non-zero (via main's error path) so scripts and CI
		// can gate on the verdict; the witness above is the evidence.
		return fmt.Errorf("property %s does not hold (counterexample above)", outcome.Property)
	}
	return nil
}

// argsArePackages reports whether the positional arguments name Go
// package directories (a `...` pattern or an existing directory) rather
// than a .epi source file.
func argsArePackages(args []string) bool {
	if len(args) == 0 {
		return false
	}
	for _, a := range args {
		if strings.Contains(a, "...") {
			return true
		}
		if st, err := os.Stat(a); err == nil && st.IsDir() {
			return true
		}
	}
	return false
}

// verifyPackages is the package mode of `effpi verify`: statically
// extract every protocol entry under the argument patterns, then
// model-check each one. Without -prop, deadlock-freedom of the closed
// composition is checked. FAIL witnesses are annotated with the source
// positions of the extracted actions; any FAIL, refused entry, or lint
// finding exits non-zero.
func verifyPackages(patterns []string, propName, channels, from, to string, open bool, width int, opts []effpi.Option) error {
	if propName == "" {
		propName = "deadlock-free"
	}
	prop, err := effpi.PropertyFromFlags(propName, channels, from, to, !open)
	if err != nil {
		return err
	}
	res, err := effpi.FromPackages(".", patterns...)
	if err != nil {
		return err
	}
	for _, d := range res.Diagnostics {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(res.Systems) == 0 {
		return fmt.Errorf("no protocol entries extracted (want func Name() runtime.Proc)")
	}
	ws := effpi.NewWorkspace()
	failed := res.HasFatal()
	for _, sys := range res.Systems {
		fmt.Printf("== %s (%s)\n", sys.Name, sys.Pos)
		s, err := ws.NewSessionFromGo(sys, opts...)
		if err != nil {
			return err
		}
		outcome, err := s.Verify(context.Background(), prop)
		if err != nil {
			return fmt.Errorf("%s: %w", sys.Name, err)
		}
		printMappedOutcome(outcome, sys.Map, width)
		if !outcome.Holds {
			failed = true
		}
	}
	if failed {
		return fmt.Errorf("verification failed (counterexamples or refused entries above)")
	}
	return nil
}

// cmdLint runs the extractor for its diagnostics only: `effpi lint` is
// the in-CLI flavour of cmd/effpilint. Exit status 1 on any finding.
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	patterns := fs.Args()
	res, err := effpi.FromPackages(".", patterns...)
	if err != nil {
		return err
	}
	for _, d := range res.Diagnostics {
		fmt.Println(d)
	}
	if len(res.Diagnostics) > 0 {
		return fmt.Errorf("%d extraction finding(s)", len(res.Diagnostics))
	}
	fmt.Printf("%d protocol entries extracted cleanly\n", len(res.Systems))
	return nil
}

// printMappedOutcome is printOutcome with source-annotated witnesses.
func printMappedOutcome(o *effpi.Outcome, sm *effpi.SourceMap, width int) {
	printOutcomeHeader(o)
	if o.Witness != nil {
		replayed := "replay-validated"
		if err := effpi.Replay(o); err != nil {
			replayed = fmt.Sprintf("REPLAY FAILED: %v", err)
		}
		fmt.Printf("violating run (lasso, %s):\n%s", replayed, effpi.RenderWitnessWithSource(o, sm, width))
	} else if !o.Holds && o.Property.Kind == effpi.EventualOutput {
		fmt.Printf("no single-run witness: ev-usage is existential (no run reaches the output)\n")
	}
}

func printOutcome(o *effpi.Outcome, width int) {
	printOutcomeHeader(o)
	if o.Witness != nil {
		replayed := "replay-validated"
		if err := effpi.Replay(o); err != nil {
			replayed = fmt.Sprintf("REPLAY FAILED: %v", err)
		}
		fmt.Printf("violating run (lasso, %s):\n%s", replayed, o.Witness.Render(width))
	} else if o.Counterexample != nil {
		fmt.Printf("violating run (lasso):\n  prefix: %v\n  cycle:  %v\n",
			o.Counterexample.Prefix, o.Counterexample.Cycle)
	} else if !o.Holds && o.Property.Kind == effpi.EventualOutput {
		fmt.Printf("no single-run witness: ev-usage is existential (no run reaches the output)\n")
	}
}

func printOutcomeHeader(o *effpi.Outcome) {
	fmt.Printf("property:  %s\n", o.Property)
	fmt.Printf("verdict:   %v\n", o.Holds)
	if o.StatesExplored > 0 && o.StatesExplored < o.States {
		fmt.Printf("symmetry:  %d orbit representatives cover %d states (%.1f×)\n",
			o.StatesExplored, o.States, float64(o.States)/float64(o.StatesExplored))
	}
	if o.PartialOrder {
		fmt.Printf("por:       ample-set reduction engaged (state counts are of the reduced space)\n")
	}
	if o.EarlyExit {
		fmt.Printf("states:    %d discovered, %d expanded (early exit; product %d, automaton %d)\n",
			o.States, o.Expanded, o.ProductStates, o.AutomatonStates)
	} else if o.ReducedStates > 0 {
		fmt.Printf("states:    %d, checked as %d bisimulation blocks (%.1f×; product %d, automaton %d)\n",
			o.States, o.ReducedStates, float64(o.States)/float64(o.ReducedStates), o.ProductStates, o.AutomatonStates)
	} else {
		fmt.Printf("states:    %d (product %d, automaton %d)\n", o.States, o.ProductStates, o.AutomatonStates)
	}
	fmt.Printf("time:      %s\n", o.Duration)
	if o.Formula != nil {
		fmt.Printf("formula:   %s\n", o.Formula)
	}
}

func cmdLTS(args []string) error {
	fs := flag.NewFlagSet("lts", flag.ContinueOnError)
	binds := &bindFlags{}
	fs.Var(binds, "bind", "x=TYPE environment binding")
	dot := fs.Bool("dot", false, "emit Graphviz DOT")
	maxStates := fs.Int("max", 0, "state bound (0 = default)")
	observe := fs.String("observe", "", "comma-separated observable channels (default: all closed)")
	src, err := loadSource(fs, args)
	if err != nil {
		return err
	}
	ws := effpi.NewWorkspace()
	s, err := ws.NewSession(src, append(binds.options(), effpi.WithMaxStates(*maxStates))...)
	if err != nil {
		return err
	}
	var obs []string
	if *observe != "" {
		obs = strings.Split(*observe, ",")
	}
	m, err := s.Explore(context.Background(), obs...)
	if err != nil {
		return err
	}
	if *dot {
		fmt.Print(m.DOT())
		return nil
	}
	fmt.Printf("states:      %d\n", m.Len())
	fmt.Printf("transitions: %d\n", m.NumEdges())
	fmt.Printf("alphabet:    %d labels\n", len(m.Alphabet()))
	fmt.Printf("deadlocked:  %v\n", m.Deadlocked())
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	binds := &bindFlags{}
	fs.Var(binds, "bind", "x=TYPE environment binding")
	steps := fs.Int("steps", 200, "maximum steps to trace")
	width := fs.Int("width", 100, "truncate printed terms to this width")
	s, err := loadSession(fs, binds, args)
	if err != nil {
		return err
	}
	tr, err := s.Trace(context.Background(), *steps)
	if tr != nil {
		fmt.Printf("%4d  %s\n", 0, effpi.ClipRunes(tr.Initial, *width))
		for i, st := range tr.Steps {
			fmt.Printf("%4d  —[%s]→  %s\n", i+1, st.Rule, effpi.ClipRunes(st.Term, *width))
		}
	}
	if err != nil {
		return err
	}
	if tr.Done {
		fmt.Printf("      (no further reductions)\n")
	} else {
		fmt.Printf("      (trace truncated at %d steps)\n", *steps)
	}
	return nil
}

// cmdBisim decides whether two programs have strongly bisimilar types:
// an executable notion of behavioural equivalence, useful to check that
// a protocol refactoring preserves behaviour.
func cmdBisim(args []string) error {
	fs := flag.NewFlagSet("bisim", flag.ContinueOnError)
	binds := &bindFlags{}
	fs.Var(binds, "bind", "x=TYPE environment binding")
	maxStates := fs.Int("max", 0, "state bound (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("bisim expects two input files")
	}
	// One workspace for both sessions: bisimilarity requires the two
	// programs in the same (canonical) typing environment.
	ws := effpi.NewWorkspace()
	load := func(path string) (*effpi.Session, error) {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		opts := append(binds.options(), effpi.WithMaxStates(*maxStates))
		s, err := ws.NewSession(string(src), opts...)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return s, nil
	}
	s1, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	s2, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	ok, err := s1.Bisimilar(context.Background(), s2)
	if err != nil {
		return err
	}
	fmt.Printf("bisimilar: %v\n", ok)
	if !ok {
		os.Exit(1)
	}
	return nil
}
