package main

import (
	"os"
	"path/filepath"
	"testing"

	"effpi"
)

// TestPropertyFromFlags covers the shared flag→Property parser the CLI
// delegates to (effpi.PropertyFromFlags, also used by mcbench and
// effpid).
func TestPropertyFromFlags(t *testing.T) {
	p, err := effpi.PropertyFromFlags("responsive", "", "m", "", true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != effpi.Responsive || p.From != "m" || !p.Closed {
		t.Errorf("bad property: %+v", p)
	}
	if _, err := effpi.PropertyFromFlags("forwarding", "", "a", "", true); err == nil {
		t.Error("forwarding without -to must fail")
	}
	if _, err := effpi.PropertyFromFlags("reactive", "", "", "", true); err == nil {
		t.Error("reactive without -from must fail")
	}
	if _, err := effpi.PropertyFromFlags("bogus", "", "", "", true); err == nil {
		t.Error("unknown property must fail")
	}
	p, err = effpi.PropertyFromFlags("non-usage", "a,b", "", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Channels) != 2 || p.Closed {
		t.Errorf("bad channels: %+v", p)
	}
}

func TestBindFlags(t *testing.T) {
	b := &bindFlags{}
	if err := b.Set("x=Chan[Int]"); err != nil {
		t.Fatal(err)
	}
	if err := b.Set("y = OChan[Str]"); err != nil {
		t.Fatal(err)
	}
	if len(b.binds) != 2 {
		t.Errorf("bindings missing: %+v", b.binds)
	}
	if err := b.Set("x=Int"); err == nil {
		t.Error("duplicate binding must fail")
	}
	if err := b.Set("noequals"); err == nil {
		t.Error("malformed binding must fail")
	}
	if err := b.Set("z=NotAType["); err == nil {
		t.Error("bad type must fail")
	}
	// Rejected bindings must not linger in the set.
	if len(b.binds) != 2 {
		t.Errorf("rejected bindings retained: %+v", b.binds)
	}
}

func TestCmdCheckAndRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "pp.epi")
	src := `
let c = chan[Int]() in
(send(c, 41 + 1, fun (_: Unit) => end) || recv(c, fun (x: Int) => end))
`
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCheck([]string{file}); err != nil {
		t.Errorf("check: %v", err)
	}
	if err := cmdRun([]string{file}); err != nil {
		t.Errorf("run: %v", err)
	}
	if err := cmdLTS([]string{file}); err != nil {
		t.Errorf("lts: %v", err)
	}
	if err := cmdTrace([]string{file}); err != nil {
		t.Errorf("trace: %v", err)
	}
}

// TestCmdVerifyFailExitsNonZero: a failing property must come back as an
// error (main turns any error into exit status 1) after printing the
// witness; a passing property must not. Both early-exit and full modes.
func TestCmdVerifyFailExitsNonZero(t *testing.T) {
	dir := t.TempDir()
	stuckFile := filepath.Join(dir, "stuck.epi")
	// One send with no receiver: the closed composition deadlocks. The
	// channel comes from Γ via -bind — a let-bound channel would make the
	// synchronisations imprecise (Aτ) and fail for the wrong reason.
	if err := os.WriteFile(stuckFile, []byte(`send(c, 1, fun (_: Unit) => end)`), 0o644); err != nil {
		t.Fatal(err)
	}
	okFile := filepath.Join(dir, "ok.epi")
	if err := os.WriteFile(okFile, []byte(`
(send(c, 1, fun (_: Unit) => end) || recv(c, fun (x: Int) => end))
`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range [][]string{nil, {"-early"}} {
		args := append(append([]string{"-bind", "c=Chan[Int]", "-prop", "deadlock-free"}, mode...), stuckFile)
		if err := cmdVerify(args); err == nil {
			t.Errorf("deadlocking program must fail verification (mode %v)", mode)
		}
		args = append(append([]string{"-bind", "c=Chan[Int]", "-prop", "deadlock-free"}, mode...), okFile)
		if err := cmdVerify(args); err != nil {
			t.Errorf("communicating program must verify (mode %v): %v", mode, err)
		}
	}
}

func TestCmdCheckRejectsIllTyped(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "bad.epi")
	if err := os.WriteFile(file, []byte(`send(42, 1, fun (_: Unit) => end)`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCheck([]string{file}); err == nil {
		t.Error("ill-typed program must be rejected")
	}
}

func TestCmdBisim(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.epi")
	b := filepath.Join(dir, "b.epi")
	c := filepath.Join(dir, "c.epi")
	// a and b are the same exchange written differently; c differs.
	os.WriteFile(a, []byte(`let k = chan[Int]() in (send(k, 1, fun (_: Unit) => end) || recv(k, fun (x: Int) => end))`), 0o644)
	os.WriteFile(b, []byte(`let k = chan[Int]() in (recv(k, fun (x: Int) => end) || send(k, 2, fun (_: Unit) => end))`), 0o644)
	os.WriteFile(c, []byte(`end`), 0o644)
	if err := cmdBisim([]string{a, b}); err != nil {
		t.Errorf("a ~ b expected: %v", err)
	}
	// c differs — cmdBisim calls os.Exit(1) on mismatch, so test the
	// library path instead for the negative case (cmd exit is covered by
	// manual use).
	_ = c
}
