// Command savina regenerates Fig. 8 of the paper: for each Savina
// benchmark it sweeps workload sizes across the runtime engines and
// prints execution-time and memory series (GC runs and peak heap), in a
// tab-separated format ready for plotting.
//
// Usage:
//
//	savina [-bench NAME|all] [-engine default|fsm|goroutine|all]
//	       [-reps N] [-workers N] [-mem] [-maxsize N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	rt "effpi/internal/runtime"
	"effpi/internal/savina"
)

func main() {
	bench := flag.String("bench", "all", "benchmark name or 'all'")
	engine := flag.String("engine", "all", "engine: default, fsm, goroutine, or 'all'")
	reps := flag.Int("reps", 3, "repetitions per point (mean reported)")
	workers := flag.Int("workers", 0, "scheduler workers (0 = GOMAXPROCS)")
	mem := flag.Bool("mem", false, "report GC count and peak heap per point")
	maxSize := flag.Int("maxsize", 0, "skip sweep sizes above this (0 = no limit)")
	flag.Parse()

	var benches []savina.Benchmark
	if *bench == "all" {
		benches = savina.All()
	} else {
		b, err := savina.ByName(*bench)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		benches = []savina.Benchmark{b}
	}

	engines, err := selectEngines(*engine, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *mem {
		fmt.Println("benchmark\tengine\tsize\ttime_ms\tmsgs\tgc_runs\tpeak_heap_mb")
	} else {
		fmt.Println("benchmark\tengine\tsize\ttime_ms\tmsgs")
	}

	for _, b := range benches {
		for _, e := range engines {
			for _, size := range b.Sizes {
				if *maxSize > 0 && size > *maxSize {
					continue
				}
				runPoint(b, e, size, *reps, *mem)
			}
		}
	}
}

func selectEngines(name string, workers int) ([]rt.Engine, error) {
	mk := map[string]func() rt.Engine{
		"default":   func() rt.Engine { return rt.NewScheduler(workers, rt.PolicyDefault) },
		"fsm":       func() rt.Engine { return rt.NewScheduler(workers, rt.PolicyChannelFSM) },
		"goroutine": func() rt.Engine { return rt.NewGoEngine() },
	}
	if name == "all" {
		return []rt.Engine{mk["default"](), mk["fsm"](), mk["goroutine"]()}, nil
	}
	f, ok := mk[name]
	if !ok {
		return nil, fmt.Errorf("savina: unknown engine %q", name)
	}
	return []rt.Engine{f()}, nil
}

func runPoint(b savina.Benchmark, e rt.Engine, size, reps int, mem bool) {
	// Warmup round, as in the paper's JVM harness.
	b.Run(e, min(size, 1000))

	var total time.Duration
	var msgs int64
	var gcRuns uint32
	var peakHeap uint64
	for r := 0; r < reps; r++ {
		runtime.GC()
		debug.FreeOSMemory()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)

		start := time.Now()
		res := b.Run(e, size)
		total += time.Since(start)
		msgs = res.Messages

		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		gcRuns += after.NumGC - before.NumGC
		if hw := after.TotalAlloc - before.TotalAlloc; hw > peakHeap {
			peakHeap = hw
		}
	}
	ms := float64(total.Microseconds()) / float64(reps) / 1000.0
	if mem {
		fmt.Printf("%s\t%s\t%d\t%.3f\t%d\t%d\t%.1f\n",
			b.Name, e.Name(), size, ms, msgs, gcRuns/uint32(reps), float64(peakHeap)/(1<<20))
	} else {
		fmt.Printf("%s\t%s\t%d\t%.3f\t%d\n", b.Name, e.Name(), size, ms, msgs)
	}
}
