package main

import (
	"testing"

	"effpi/internal/savina"
)

// TestSmokeOneBenchmarkOneEngine: the Fig. 8 harness end to end at its
// smallest useful scale — one benchmark (ping-pong), one engine, one
// repetition — covering benchmark lookup, engine construction and a
// measured point, so a harness regression fails in CI instead of at
// paper-regeneration time.
func TestSmokeOneBenchmarkOneEngine(t *testing.T) {
	b, err := savina.ByName("pingpong")
	if err != nil {
		t.Fatal(err)
	}
	engines, err := selectEngines("goroutine", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(engines) != 1 {
		t.Fatalf("want 1 engine, got %d", len(engines))
	}
	res := b.Run(engines[0], 10)
	if res.Messages <= 0 {
		t.Fatalf("benchmark processed no messages: %+v", res)
	}
	// The full harness path, including the warmup and the printed point.
	runPoint(b, engines[0], 10, 1, true)
}

func TestSelectEngines(t *testing.T) {
	all, err := selectEngines("all", 0)
	if err != nil || len(all) != 3 {
		t.Errorf("all: %d engines, err %v", len(all), err)
	}
	if _, err := selectEngines("bogus", 0); err == nil {
		t.Error("unknown engine must fail")
	}
}
