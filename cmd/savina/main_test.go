package main

import (
	"testing"

	"effpi/internal/savina"
)

// TestSmokeOneBenchmarkOneEngine: the Fig. 8 harness end to end at its
// smallest useful scale — one benchmark (ping-pong), one engine, one
// repetition — covering benchmark lookup, engine construction and a
// measured point, so a harness regression fails in CI instead of at
// paper-regeneration time.
func TestSmokeOneBenchmarkOneEngine(t *testing.T) {
	b, err := savina.ByName("pingpong")
	if err != nil {
		t.Fatal(err)
	}
	engines, err := selectEngines("goroutine", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(engines) != 1 {
		t.Fatalf("want 1 engine, got %d", len(engines))
	}
	res := b.Run(engines[0], 10)
	if res.Messages <= 0 {
		t.Fatalf("benchmark processed no messages: %+v", res)
	}
	// The full harness path, including the warmup and the printed point.
	runPoint(b, engines[0], 10, 1, true)
}

// TestSmokeAllBenchmarksAllEngines: every wired Fig. 8 benchmark
// against every engine, with the exact per-size message count pinned —
// a drifting workload (lost messages, a changed round structure, an
// engine that drops work) fails here instead of silently skewing the
// next paper regeneration. The counts are the benchmarks' contracts:
// chameneos processes two messages per meeting request, counting the n
// increments plus the final retrieve, fjc one message per spawned
// actor, fjt and pingpong 100 rounds per size unit, ring 10 full trips
// of n hops, and streamring 10·n messages through each of min(16, n)
// pipeline stages.
func TestSmokeAllBenchmarksAllEngines(t *testing.T) {
	expected := map[string]func(n int64) int64{
		"chameneos":  func(n int64) int64 { return 2 * n },
		"counting":   func(n int64) int64 { return n + 1 },
		"fjc":        func(n int64) int64 { return n },
		"fjt":        func(n int64) int64 { return 100 * n },
		"pingpong":   func(n int64) int64 { return 100 * n },
		"ring":       func(n int64) int64 { return 10 * n },
		"streamring": func(n int64) int64 { return min(16, n) * 10 * n },
	}
	benches := savina.All()
	if len(benches) != len(expected) {
		t.Fatalf("%d wired benchmarks but %d pinned expectations — pin the new row here", len(benches), len(expected))
	}
	for _, b := range benches {
		want, ok := expected[b.Name]
		if !ok {
			t.Fatalf("benchmark %q has no pinned message count", b.Name)
		}
		for _, engineName := range []string{"default", "fsm", "goroutine"} {
			engines, err := selectEngines(engineName, 0)
			if err != nil {
				t.Fatal(err)
			}
			const size = 10
			res := b.Run(engines[0], size)
			if w := want(size); res.Messages != w {
				t.Errorf("%s/%s: %d messages, want %d", b.Name, engineName, res.Messages, w)
			}
		}
	}
}

func TestSelectEngines(t *testing.T) {
	all, err := selectEngines("all", 0)
	if err != nil || len(all) != 3 {
		t.Errorf("all: %d engines, err %v", len(all), err)
	}
	if _, err := selectEngines("bogus", 0); err == nil {
		t.Error("unknown engine must fail")
	}
}
