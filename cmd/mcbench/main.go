// Command mcbench regenerates Fig. 9 of the paper: for each benchmark
// system it verifies the six behavioural properties, reporting the
// verdict, the explored state count, and the mean verification time with
// standard deviation — the same row format as the paper's table.
//
// Usage:
//
//	mcbench [-suite all|payment|philos|pingpong|ring] [-reps N] [-max N]
//	        [-skip-slow]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"effpi/internal/systems"
	"effpi/internal/typelts"
	"effpi/internal/verify"
)

func main() {
	suite := flag.String("suite", "all", "payment | philos | pingpong | ring | all")
	reps := flag.Int("reps", 3, "repetitions per property")
	maxStates := flag.Int("max", 1<<22, "state bound for exploration")
	skipSlow := flag.Bool("skip-slow", false, "skip the largest (slowest) rows")
	shared := flag.Bool("shared", false, "share one transition cache across a row's properties (the VerifyAll production path) instead of timing each property cold")
	flag.Parse()

	rows := selectRows(*suite)
	if len(rows) == 0 {
		fmt.Fprintf(os.Stderr, "mcbench: unknown suite %q\n", *suite)
		os.Exit(2)
	}

	fmt.Printf("%-34s %9s  %s\n", "system", "states", strings.Join(propHeaders(), "  "))
	mismatches := 0
	for _, s := range rows {
		if *skipSlow && isSlow(s.Name) {
			continue
		}
		mismatches += runRow(s, *reps, *maxStates, *shared)
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "mcbench: %d verdicts differ from Fig. 9\n", mismatches)
		os.Exit(1)
	}
}

func selectRows(suite string) []*systems.System {
	all := systems.Fig9Systems()
	if suite == "all" {
		return all
	}
	var out []*systems.System
	for _, s := range all {
		name := strings.ToLower(s.Name)
		switch suite {
		case "payment":
			if strings.HasPrefix(name, "pay") {
				out = append(out, s)
			}
		case "philos":
			if strings.HasPrefix(name, "dining") {
				out = append(out, s)
			}
		case "pingpong":
			if strings.HasPrefix(name, "ping") {
				out = append(out, s)
			}
		case "ring":
			if strings.HasPrefix(name, "ring") {
				out = append(out, s)
			}
		}
	}
	return out
}

func isSlow(name string) bool {
	return strings.Contains(name, "10 pairs")
}

func propHeaders() []string {
	ks := verify.AllKinds()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = fmt.Sprintf("%-24s", k)
	}
	return out
}

// runRow verifies all six properties of one system, reps times each, and
// prints one Fig. 9-style row. It returns the number of verdicts that
// deviate from the paper. With shared, one transition cache serves the
// whole row, so later properties reuse earlier per-component work.
func runRow(s *systems.System, reps, maxStates int, shared bool) int {
	cells := make([]string, 0, len(s.Props))
	mismatches := 0
	var states int
	var cache *typelts.Cache
	if shared {
		cache = typelts.NewCache(s.Env, true)
	}
	for _, prop := range s.Props {
		var times []float64
		var holds bool
		failed := false
		for r := 0; r < reps; r++ {
			o, err := verify.Verify(verify.Request{Env: s.Env, Type: s.Type, Property: prop, MaxStates: maxStates, Cache: cache})
			if err != nil {
				cells = append(cells, fmt.Sprintf("error: %v", err))
				failed = true
				break
			}
			holds = o.Holds
			states = o.States
			times = append(times, o.Duration.Seconds())
		}
		if failed {
			mismatches++
			continue
		}
		mean, dev := meanStddev(times)
		mark := ""
		if want, ok := s.Expected[prop.Kind]; ok && want != holds {
			mark = " [≠Fig.9]"
			mismatches++
		}
		cells = append(cells, fmt.Sprintf("%-5v (%6.2f±%5.1f%%)%s", holds, mean, relDev(mean, dev), mark))
	}
	fmt.Printf("%-34s %9d  %s\n", s.Name, states, strings.Join(cells, "  "))
	return mismatches
}

func meanStddev(xs []float64) (mean, dev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		dev += (x - mean) * (x - mean)
	}
	dev = math.Sqrt(dev / float64(len(xs)))
	return mean, dev
}

func relDev(mean, dev float64) float64 {
	if mean == 0 {
		return 0
	}
	return 100 * dev / mean
}
