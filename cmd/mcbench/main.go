// Command mcbench regenerates Fig. 9 of the paper: for each benchmark
// system it verifies the six behavioural properties, reporting the
// verdict, the explored state count, and the mean verification time with
// standard deviation — the same row format as the paper's table. Beyond
// the paper's rows it also sweeps the larger instances the parallel
// engine unlocks (systems.LargeSystems).
//
// Usage:
//
//	mcbench [-suite all|payment|philos|pingpong|ring|large] [-reps N]
//	        [-max N] [-skip-slow] [-shared] [-par N] [-json PATH]
//
// With -json PATH the results are also written as machine-readable JSON
// (one object per row with per-property verdicts and timing stats), the
// format of the committed BENCH_fig9.json perf-trajectory snapshot. Every
// failing property additionally carries its counterexample witness — the
// lasso-shaped violating run, replay-validated with verify.Replay before
// it is written — so a FAIL in the snapshot is a checkable artifact, not
// just a bit.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strings"

	"effpi/internal/systems"
	"effpi/internal/typelts"
	"effpi/internal/verify"
)

func main() {
	suite := flag.String("suite", "all", "payment | philos | pingpong | ring | large | all")
	reps := flag.Int("reps", 3, "repetitions per property")
	maxStates := flag.Int("max", 1<<22, "state bound for exploration")
	skipSlow := flag.Bool("skip-slow", false, "skip the largest (slowest) rows")
	shared := flag.Bool("shared", false, "share one transition cache across a row's properties (the VerifyAll production path) instead of timing each property cold")
	par := flag.Int("par", 0, "BFS workers per exploration: 0 = GOMAXPROCS, 1 = the serial engine (cap total CPU with GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write machine-readable results to PATH")
	flag.Parse()

	rows := selectRows(*suite)
	if len(rows) == 0 {
		fmt.Fprintf(os.Stderr, "mcbench: unknown suite %q\n", *suite)
		os.Exit(2)
	}

	report := &jsonReport{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Parallelism: *par,
		Reps:        *reps,
		SharedCache: *shared,
	}

	fmt.Printf("%-34s %9s  %s\n", "system", "states", strings.Join(propHeaders(), "  "))
	mismatches := 0
	for _, s := range rows {
		if *skipSlow && isSlow(s.Name) {
			continue
		}
		row, bad := runRow(s, *reps, *maxStates, *shared, *par)
		report.Rows = append(report.Rows, row)
		mismatches += bad
	}

	if *jsonPath != "" {
		if err := writeJSON(*jsonPath, report); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
			os.Exit(1)
		}
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "mcbench: %d verdicts differ from Fig. 9\n", mismatches)
		os.Exit(1)
	}
}

func selectRows(suite string) []*systems.System {
	all := append(systems.Fig9Systems(), systems.LargeSystems()...)
	if suite == "all" {
		return all
	}
	if suite == "large" {
		return systems.LargeSystems()
	}
	var out []*systems.System
	for _, s := range all {
		name := strings.ToLower(s.Name)
		switch suite {
		case "payment":
			if strings.HasPrefix(name, "pay") {
				out = append(out, s)
			}
		case "philos":
			if strings.HasPrefix(name, "dining") {
				out = append(out, s)
			}
		case "pingpong":
			if strings.HasPrefix(name, "ping") {
				out = append(out, s)
			}
		case "ring":
			if strings.HasPrefix(name, "ring") {
				out = append(out, s)
			}
		}
	}
	return out
}

// isSlow marks the rows whose full sweep takes seconds rather than
// milliseconds: the paper's 10-pair ping-pong rows and the beyond-Fig. 9
// instances of systems.LargeSystems. -skip-slow keeps a default run
// fast; the full sweep is one flag away.
func isSlow(name string) bool {
	for _, marker := range []string{
		"10 pairs",   // Fig. 9 rows 14-15
		"12 pairs",   // LargeSystems: the 531k-state ping-pong sweep
		"philos. (7", // LargeSystems: 7 philosophers
		"philos. (8", // LargeSystems: 8 philosophers
		"Ring (16",   // LargeSystems: 16-member rings
	} {
		if strings.Contains(name, marker) {
			return true
		}
	}
	return false
}

func propHeaders() []string {
	ks := verify.AllKinds()
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = fmt.Sprintf("%-24s", k)
	}
	return out
}

// jsonReport is the -json output: enough context to compare runs across
// machines and parallelism settings, plus one entry per row.
type jsonReport struct {
	GOMAXPROCS  int       `json:"gomaxprocs"`
	Parallelism int       `json:"parallelism"`
	Reps        int       `json:"reps"`
	SharedCache bool      `json:"shared_cache"`
	Rows        []jsonRow `json:"rows"`
}

type jsonRow struct {
	System     string     `json:"system"`
	States     int        `json:"states"`
	Properties []jsonProp `json:"properties"`
}

type jsonProp struct {
	Kind          string  `json:"kind"`
	Holds         bool    `json:"holds"`
	Expected      *bool   `json:"expected,omitempty"`
	Matches       bool    `json:"matches_expected"`
	MeanSeconds   float64 `json:"mean_seconds"`
	StddevSeconds float64 `json:"stddev_seconds"`
	Error         string  `json:"error,omitempty"`
	// Witness is the counterexample lasso of a failing property,
	// replay-validated (verify.Replay) before it is written. ev-usage
	// failures have none: the schema is existential.
	Witness *jsonWitness `json:"witness,omitempty"`
}

// jsonWitness is the machine-readable counterexample lasso: the run
// follows Stem from the initial state, then repeats Cycle forever. Every
// step names its source and destination state ids (into the row's
// explored LTS) and the fired transition label.
type jsonWitness struct {
	Stem  []jsonStep `json:"stem"`
	Cycle []jsonStep `json:"cycle"`
	// Replayed records that verify.Replay re-validated the lasso against
	// the LTS and the property's Büchi automaton.
	Replayed bool `json:"replayed"`
}

type jsonStep struct {
	From  int    `json:"from"`
	Label string `json:"label"`
	To    int    `json:"to"`
}

// witnessJSON converts a failing outcome's witness, re-validating it via
// verify.Replay; a replay failure is reported as a verdict mismatch by
// the caller (a witness that doesn't replay means the checker lied).
func witnessJSON(o *verify.Outcome) (*jsonWitness, error) {
	// No nil-witness guard: the caller only passes FAILs of LTL-checked
	// properties, which must carry a witness — Replay turns a missing one
	// into an error, and the caller counts it against the row.
	if err := verify.Replay(o); err != nil {
		return nil, err
	}
	jw := &jsonWitness{Replayed: true}
	conv := func(steps []verify.WitnessStep) []jsonStep {
		out := make([]jsonStep, len(steps))
		for i, st := range steps {
			out[i] = jsonStep{From: st.From, Label: st.Label.String(), To: st.To}
		}
		return out
	}
	jw.Stem = conv(o.Witness.Stem)
	jw.Cycle = conv(o.Witness.Cycle)
	return jw, nil
}

// runRow verifies all six properties of one system, reps times each, and
// prints one Fig. 9-style row. It returns the row's JSON record and the
// number of verdicts that deviate from the expectations. With shared,
// one transition cache serves the whole row, so later properties reuse
// earlier per-component work.
func runRow(s *systems.System, reps, maxStates int, shared bool, par int) (jsonRow, int) {
	row := jsonRow{System: s.Name}
	cells := make([]string, 0, len(s.Props))
	mismatches := 0
	var cache *typelts.Cache
	if shared {
		cache = typelts.NewCache(s.Env, true)
	}
	for _, prop := range s.Props {
		jp := jsonProp{Kind: prop.Kind.String(), Matches: true}
		var times []float64
		var last *verify.Outcome
		failed := false
		for r := 0; r < reps; r++ {
			o, err := verify.Verify(verify.Request{
				Env: s.Env, Type: s.Type, Property: prop,
				MaxStates: maxStates, Cache: cache, Parallelism: par,
			})
			if err != nil {
				cells = append(cells, fmt.Sprintf("error: %v", err))
				jp.Error = err.Error()
				jp.Matches = false
				failed = true
				break
			}
			jp.Holds = o.Holds
			row.States = o.States
			last = o
			times = append(times, o.Duration.Seconds())
		}
		if failed {
			mismatches++
			row.Properties = append(row.Properties, jp)
			continue
		}
		if last != nil && !last.Holds && prop.Kind != verify.EventualOutput {
			w, err := witnessJSON(last)
			if err != nil {
				// A FAIL whose witness does not replay is as bad as a wrong
				// verdict: count it against the row.
				jp.Error = err.Error()
				jp.Matches = false
				mismatches++
			}
			jp.Witness = w
		}
		jp.MeanSeconds, jp.StddevSeconds = meanStddev(times)
		mark := ""
		if want, ok := s.Expected[prop.Kind]; ok {
			w := want
			jp.Expected = &w
			if want != jp.Holds {
				jp.Matches = false
				mark = " [≠Fig.9]"
				mismatches++
			}
		}
		cells = append(cells, fmt.Sprintf("%-5v (%6.2f±%5.1f%%)%s", jp.Holds, jp.MeanSeconds, relDev(jp.MeanSeconds, jp.StddevSeconds), mark))
		row.Properties = append(row.Properties, jp)
	}
	fmt.Printf("%-34s %9d  %s\n", s.Name, row.States, strings.Join(cells, "  "))
	return row, mismatches
}

func writeJSON(path string, report *jsonReport) error {
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func meanStddev(xs []float64) (mean, dev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		dev += (x - mean) * (x - mean)
	}
	dev = math.Sqrt(dev / float64(len(xs)))
	return mean, dev
}

func relDev(mean, dev float64) float64 {
	if mean == 0 {
		return 0
	}
	return 100 * dev / mean
}
