// Command mcbench regenerates Fig. 9 of the paper: for each benchmark
// system it verifies the six behavioural properties, reporting the
// verdict, the explored state count, and the mean verification time with
// standard deviation — the same row format as the paper's table. Beyond
// the paper's rows it also sweeps the larger instances the parallel
// engine unlocks (effpi.LargeSystems).
//
// The harness drives the public effpi package — the same session API
// cmd/effpid serves over HTTP — so the numbers it reports are the
// numbers an API consumer gets.
//
// Usage:
//
//	mcbench [-suite all|payment|philos|pingpong|ring|large] [-reps N]
//	        [-max N] [-skip-slow] [-shared] [-par N] [-props a,b] [-json PATH]
//	        [-reduce] [-symmetry] [-por] [-cpuprofile PATH] [-memprofile PATH]
//
// With -json PATH the results are also written as machine-readable JSON
// (one object per row with per-property verdicts and timing stats), the
// format of the committed BENCH_fig9.json perf-trajectory snapshot. Every
// failing property additionally carries its counterexample witness — the
// lasso-shaped violating run, replay-validated with effpi.Replay before
// it is written — so a FAIL in the snapshot is a checkable artifact, not
// just a bit.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"effpi"
)

func main() {
	suite := flag.String("suite", "all", "payment | philos | pingpong | ring | large | all")
	reps := flag.Int("reps", 3, "repetitions per property")
	maxStates := flag.Int("max", 1<<22, "state bound for exploration")
	skipSlow := flag.Bool("skip-slow", false, "skip the largest (slowest) rows")
	shared := flag.Bool("shared", false, "share one workspace cache across a row's properties (the VerifyAll production path) instead of timing each property cold")
	par := flag.Int("par", 0, "BFS workers per exploration: 0 = GOMAXPROCS, 1 = the serial engine (cap total CPU with GOMAXPROCS)")
	reduce := flag.Bool("reduce", false, "check every property on the strong-bisimulation quotient of its state space (verdicts unchanged; rows gain states_full/states_reduced columns)")
	symmetry := flag.Bool("symmetry", false, "explore orbit representatives under each system's channel permutation group — interchangeable-bundle classes and ring rotations (verdicts unchanged; rows gain states_explored/orbit_ratio columns)")
	por := flag.Bool("por", false, "explore ample transition subsets per state (partial-order reduction; verdicts unchanged, eligible properties gain partial_order/states_explored columns)")
	propFilter := flag.String("props", "", "comma-separated property kinds to run (default: all six Fig. 9 columns)")
	jsonPath := flag.String("json", "", "write machine-readable results to PATH")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole sweep to PATH")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the sweep) to PATH")
	flag.Parse()

	// Profile teardown must run on every exit path, and main exits via
	// os.Exit (which skips defers) — so the sweep lives in run() and the
	// teardown happens here, between run returning and the process dying.
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
		os.Exit(2)
	}
	code := run(*suite, *reps, *maxStates, *skipSlow, *shared, *par, *reduce, *symmetry, *por, *propFilter, *jsonPath)
	stopProfiles()
	os.Exit(code)
}

// startProfiles begins CPU profiling and/or arranges a heap profile,
// returning the teardown to run after the sweep. A nil-safe no-op
// teardown comes back when neither path is set.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var stopCPU func()
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("starting CPU profile: %w", err)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	return func() {
		if stopCPU != nil {
			stopCPU()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mcbench: writing heap profile: %v\n", err)
			}
		}
	}, nil
}

// run executes the sweep and returns the process exit code.
func run(suite string, reps, maxStates int, skipSlow, shared bool, par int, reduce, symmetry, por bool, propFilter, jsonPath string) int {
	rows := selectRows(suite)
	if len(rows) == 0 {
		fmt.Fprintf(os.Stderr, "mcbench: unknown suite %q\n", suite)
		return 2
	}

	kinds, err := parseKindFilter(propFilter)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
		return 2
	}

	reduction := effpi.ReduceOff
	if reduce {
		reduction = effpi.ReduceStrong
	}
	symMode := effpi.SymmetryOff
	if symmetry {
		symMode = effpi.SymmetryOn
	}
	porMode := effpi.PartialOrderOff
	if por {
		porMode = effpi.PartialOrderOn
	}
	report := &jsonReport{
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Parallelism:  par,
		Reps:         reps,
		SharedCache:  shared,
		Reduction:    reduction.String(),
		Symmetry:     symMode.String(),
		PartialOrder: porMode.String(),
	}

	statesHeader := "states"
	switch {
	case reduce:
		statesHeader = "states full→reduced"
	case symmetry:
		statesHeader = "states full→explored"
	case por:
		statesHeader = "states full→ample"
	}
	fmt.Printf("%-34s %19s  %s\n", "system", statesHeader, strings.Join(propHeaders(kinds), "  "))
	mismatches := 0
	for _, s := range rows {
		if skipSlow && isSlow(s.Name) {
			continue
		}
		row, bad := runRow(s, reps, maxStates, shared, par, reduction, symMode, porMode, kinds)
		report.Rows = append(report.Rows, row)
		mismatches += bad
	}

	if jsonPath != "" {
		if err := writeJSON(jsonPath, report); err != nil {
			fmt.Fprintf(os.Stderr, "mcbench: %v\n", err)
			return 1
		}
	}
	if mismatches > 0 {
		fmt.Fprintf(os.Stderr, "mcbench: %d verdicts differ from Fig. 9\n", mismatches)
		return 1
	}
	return 0
}

// parseKindFilter resolves the -props flag through the shared property
// parser: nil means "all kinds".
func parseKindFilter(spec string) (map[effpi.Kind]bool, error) {
	if spec == "" {
		return nil, nil
	}
	kinds := map[effpi.Kind]bool{}
	for _, name := range strings.Split(spec, ",") {
		k, err := effpi.ParseKind(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		kinds[k] = true
	}
	return kinds, nil
}

// keepProp applies the -props filter.
func keepProp(kinds map[effpi.Kind]bool, p effpi.Property) bool {
	return kinds == nil || kinds[p.Kind]
}

func selectRows(suite string) []*effpi.BenchSystem {
	all := append(effpi.Fig9Systems(), effpi.LargeSystems()...)
	if suite == "all" {
		return all
	}
	if suite == "large" {
		return effpi.LargeSystems()
	}
	var out []*effpi.BenchSystem
	for _, s := range all {
		name := strings.ToLower(s.Name)
		switch suite {
		case "payment":
			if strings.HasPrefix(name, "pay") {
				out = append(out, s)
			}
		case "philos":
			if strings.HasPrefix(name, "dining") {
				out = append(out, s)
			}
		case "pingpong":
			if strings.HasPrefix(name, "ping") {
				out = append(out, s)
			}
		case "ring":
			if strings.HasPrefix(name, "ring") {
				out = append(out, s)
			}
		}
	}
	return out
}

// isSlow marks the rows whose full sweep takes seconds rather than
// milliseconds: the paper's 10-pair ping-pong rows and the beyond-Fig. 9
// instances of effpi.LargeSystems. -skip-slow keeps a default run
// fast; the full sweep is one flag away.
func isSlow(name string) bool {
	for _, marker := range []string{
		"10 pairs",    // Fig. 9 rows 14-15
		"12 pairs",    // LargeSystems: the 531k-state ping-pong sweep
		"philos. (7",  // LargeSystems: 7 philosophers
		"philos. (8",  // LargeSystems: 8 philosophers
		"philos. (9",  // LargeSystems: 9 philosophers
		"philos. (10", // LargeSystems: 10 philosophers (59k-state rings)
		"Ring (16",    // LargeSystems: 16-member rings
	} {
		if strings.Contains(name, marker) {
			return true
		}
	}
	return false
}

func propHeaders(kinds map[effpi.Kind]bool) []string {
	var out []string
	for _, k := range effpi.AllKinds() {
		if kinds != nil && !kinds[k] {
			continue
		}
		out = append(out, fmt.Sprintf("%-24s", k))
	}
	return out
}

// jsonReport is the -json output: enough context to compare runs across
// machines and parallelism settings, plus one entry per row.
type jsonReport struct {
	GOMAXPROCS  int  `json:"gomaxprocs"`
	Parallelism int  `json:"parallelism"`
	Reps        int  `json:"reps"`
	SharedCache bool `json:"shared_cache"`
	// Reduction is the state-space reduction the run checked under
	// ("off" or "strong"); with "strong" every row carries the
	// states_full / states_reduced pair and their ratio.
	Reduction string `json:"reduction"`
	// Symmetry is the exploration-time symmetry mode the run used ("off"
	// or "on"); with "on" every row carries states_explored and
	// orbit_ratio.
	Symmetry string `json:"symmetry"`
	// PartialOrder is the exploration-time partial-order mode the run
	// used ("off" or "on"); with "on" every eligible property carries
	// partial_order and its ample-set states_explored count.
	PartialOrder string    `json:"partial_order,omitempty"`
	Rows         []jsonRow `json:"rows"`
}

type jsonRow struct {
	System string `json:"system"`
	States int    `json:"states"`
	// StatesFull/StatesReduced are the row's states-checked totals under
	// -reduce: the concrete state count summed over every property that
	// ran the Reduce stage, against the bisimulation-block count the
	// checker actually visited (each property refines over its own
	// observation classes, so quotient sizes differ per column).
	// ReductionRatio is StatesFull / StatesReduced — the row's
	// states-checked shrink factor.
	StatesFull     int     `json:"states_full,omitempty"`
	StatesReduced  int     `json:"states_reduced,omitempty"`
	ReductionRatio float64 `json:"reduction_ratio,omitempty"`
	// StatesExplored is the smallest orbit-representative count any of
	// the row's properties visited under -symmetry (equal to States when
	// the row has no non-trivial symmetry group; properties whose pinned
	// channels freeze the whole group — e.g. every fork-observing column
	// of a Dining row, since a rotation moves every fork — stay concrete
	// and carry their own per-property states_explored). OrbitRatio is
	// States / StatesExplored — the row's best exploration collapse
	// factor.
	StatesExplored int     `json:"states_explored,omitempty"`
	OrbitRatio     float64 `json:"orbit_ratio,omitempty"`
	// StatesAmple is the largest ample-set reduced state space any of the
	// row's eligible properties explored under -por (each property prunes
	// against its own visible-label set, so reduced sizes differ per
	// column; the full interleaving count is never computed for them —
	// States holds it only when an ineligible property ran full).
	StatesAmple int        `json:"states_ample,omitempty"`
	Properties  []jsonProp `json:"properties"`
}

type jsonProp struct {
	Kind  string `json:"kind"`
	Holds bool   `json:"holds"`
	// StatesReduced is the bisimulation-quotient block count this
	// property was checked on under -reduce (0 = no Reduce stage ran,
	// e.g. reduction off, the existential ev-usage schema, or a formula
	// that simplifies to ⊤).
	StatesReduced int `json:"states_reduced,omitempty"`
	// PartialOrder reports that this property was checked on an ample-set
	// reduced space under -por; StatesExplored is that reduced state
	// count (the full interleaving count is never computed under POR).
	// Under -symmetry it is instead this property's orbit-representative
	// count — per-property because pinned channels can freeze the group
	// for some columns but not others (a Dining row rotates only for
	// deadlock-freedom).
	PartialOrder   bool    `json:"partial_order,omitempty"`
	StatesExplored int     `json:"states_explored,omitempty"`
	Expected       *bool   `json:"expected,omitempty"`
	Matches        bool    `json:"matches_expected"`
	MeanSeconds    float64 `json:"mean_seconds"`
	StddevSeconds  float64 `json:"stddev_seconds"`
	Error          string  `json:"error,omitempty"`
	// Witness is the counterexample lasso of a failing property,
	// replay-validated (effpi.Replay) before it is written. ev-usage
	// failures have none: the schema is existential.
	Witness *effpi.WitnessJSON `json:"witness,omitempty"`
}

// runRow verifies the (filtered) properties of one system, reps times
// each, and prints one Fig. 9-style row. It returns the row's JSON
// record and the number of verdicts that deviate from the expectations.
// With shared, one workspace serves the whole row, so later properties
// reuse earlier per-component work through its cache; without it every
// repetition runs in a fresh workspace (timed cold).
func runRow(s *effpi.BenchSystem, reps, maxStates int, shared bool, par int, reduction effpi.Reduction, symmetry effpi.SymmetryMode, por effpi.PartialOrderMode, kinds map[effpi.Kind]bool) (jsonRow, int) {
	ctx := context.Background()
	row := jsonRow{System: s.Name}
	cells := make([]string, 0, len(s.Props))
	mismatches := 0
	var rowWS *effpi.Workspace
	if shared {
		rowWS = effpi.NewWorkspace()
	}
	newSession := func() (*effpi.Session, error) {
		ws := rowWS
		if ws == nil {
			ws = effpi.NewWorkspace()
		}
		return ws.NewSessionFromType(s.Env, s.Type,
			effpi.WithMaxStates(maxStates), effpi.WithParallelism(par),
			effpi.WithReduction(reduction), effpi.WithSymmetry(symmetry),
			effpi.WithPartialOrder(por))
	}
	for _, prop := range s.Props {
		if !keepProp(kinds, prop) {
			continue
		}
		jp := jsonProp{Kind: prop.Kind.String(), Matches: true}
		var times []float64
		var last *effpi.Outcome
		failed := false
		for r := 0; r < reps; r++ {
			sess, err := newSession()
			if err == nil {
				last, err = sess.Verify(ctx, prop)
			}
			if err != nil {
				cells = append(cells, fmt.Sprintf("error: %v", err))
				jp.Error = err.Error()
				jp.Matches = false
				failed = true
				break
			}
			jp.Holds = last.Holds
			jp.StatesReduced = last.ReducedStates
			if last.PartialOrder {
				// Under POR, States and StatesExplored both count the
				// reduced space — keep the row's full count from the
				// ineligible properties (which still explore everything).
				jp.PartialOrder = true
				jp.StatesExplored = last.StatesExplored
				if last.StatesExplored > row.StatesAmple {
					row.StatesAmple = last.StatesExplored
				}
			} else {
				row.States = last.States
			}
			if symmetry != effpi.SymmetryOff {
				jp.StatesExplored = last.StatesExplored
				if row.StatesExplored == 0 || last.StatesExplored < row.StatesExplored {
					row.StatesExplored = last.StatesExplored
				}
			}
			times = append(times, last.Duration.Seconds())
		}
		if failed {
			mismatches++
			row.Properties = append(row.Properties, jp)
			continue
		}
		if last != nil && !last.Holds && prop.Kind != effpi.EventualOutput {
			w, err := effpi.WitnessToJSON(last)
			if err != nil {
				// A FAIL whose witness does not replay is as bad as a wrong
				// verdict: count it against the row.
				jp.Error = err.Error()
				jp.Matches = false
				mismatches++
			}
			jp.Witness = w
		}
		if jp.StatesReduced > 0 {
			// Row-level states-checked totals: concrete vs quotient.
			row.StatesFull += last.States
			row.StatesReduced += jp.StatesReduced
		}
		jp.MeanSeconds, jp.StddevSeconds = meanStddev(times)
		mark := ""
		if want, ok := s.Expected[prop.Kind]; ok {
			w := want
			jp.Expected = &w
			if want != jp.Holds {
				jp.Matches = false
				mark = " [≠Fig.9]"
				mismatches++
			}
		}
		cells = append(cells, fmt.Sprintf("%-5v (%6.2f±%5.1f%%)%s", jp.Holds, jp.MeanSeconds, relDev(jp.MeanSeconds, jp.StddevSeconds), mark))
		row.Properties = append(row.Properties, jp)
	}
	statesCell := fmt.Sprintf("%19d", row.States)
	if symmetry != effpi.SymmetryOff && row.StatesExplored > 0 {
		row.OrbitRatio = float64(row.States) / float64(row.StatesExplored)
	}
	if reduction != effpi.ReduceOff && row.StatesReduced > 0 {
		// Rows where no property ran the Reduce stage (e.g. -props
		// ev-usage) keep the plain state count instead of a 0\u21920 cell.
		row.ReductionRatio = float64(row.StatesFull) / float64(row.StatesReduced)
		statesCell = fmt.Sprintf("%10d\u2192%-8d", row.StatesFull, row.StatesReduced)
	} else if row.OrbitRatio > 0 {
		statesCell = fmt.Sprintf("%10d\u2192%-8d", row.States, row.StatesExplored)
	} else if por != effpi.PartialOrderOff && row.StatesAmple > 0 {
		statesCell = fmt.Sprintf("%10d\u2192%-8d", row.States, row.StatesAmple)
	}
	fmt.Printf("%-34s %s  %s\n", s.Name, statesCell, strings.Join(cells, "  "))
	return row, mismatches
}

func writeJSON(path string, report *jsonReport) error {
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

func meanStddev(xs []float64) (mean, dev float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		dev += (x - mean) * (x - mean)
	}
	dev = math.Sqrt(dev / float64(len(xs)))
	return mean, dev
}

func relDev(mean, dev float64) float64 {
	if mean == 0 {
		return 0
	}
	return 100 * dev / mean
}
