package main

import (
	"encoding/json"
	"os"
	"testing"

	"effpi"
)

// TestRunRowAttachesReplayedWitnesses: every failing LTL property of a
// benchmark row comes out with a witness that was re-validated by
// replay, and none of the verdicts mismatch Fig. 9.
func TestRunRowAttachesReplayedWitnesses(t *testing.T) {
	s, ok := effpi.BenchSystemByName("Dining philos. (4, deadlock)")
	if !ok {
		t.Fatal("benchmark row not found")
	}
	row, mismatches := runRow(s, 1, 1<<18, true, 1, effpi.ReduceOff, effpi.SymmetryOff, effpi.PartialOrderOff, nil)
	if mismatches != 0 {
		t.Fatalf("unexpected verdict mismatches: %d", mismatches)
	}
	sawWitness := false
	for _, p := range row.Properties {
		kind, err := effpi.ParseKind(p.Kind)
		if err != nil {
			t.Fatal(err)
		}
		want := s.Expected[kind]
		if p.Holds != want {
			t.Errorf("%s: verdict %v, Fig. 9 expects %v", p.Kind, p.Holds, want)
		}
		if p.Holds || kind == effpi.EventualOutput {
			if p.Witness != nil {
				t.Errorf("%s: unexpected witness", p.Kind)
			}
			continue
		}
		if p.Witness == nil {
			t.Fatalf("%s: FAIL without witness in the JSON row", p.Kind)
		}
		if !p.Witness.Replayed {
			t.Errorf("%s: witness not marked replayed", p.Kind)
		}
		if len(p.Witness.Cycle) == 0 {
			t.Errorf("%s: witness cycle is empty", p.Kind)
		}
		for _, st := range append(append([]effpi.WitnessStepJSON{}, p.Witness.Stem...), p.Witness.Cycle...) {
			if st.Label == "" {
				t.Errorf("%s: witness step without label", p.Kind)
			}
		}
		sawWitness = true
	}
	if !sawWitness {
		t.Fatal("row produced no witnesses")
	}
}

// TestRunRowReduced: under -reduce a row carries the states_full /
// states_reduced pair with their ratio, every LTL property reports its
// quotient size, verdicts still match Fig. 9, and failing properties
// still serialise replay-validated witnesses (now produced by lifting).
func TestRunRowReduced(t *testing.T) {
	s, ok := effpi.BenchSystemByName("Dining philos. (4, deadlock)")
	if !ok {
		t.Fatal("benchmark row not found")
	}
	row, mismatches := runRow(s, 1, 1<<18, true, 1, effpi.ReduceStrong, effpi.SymmetryOff, effpi.PartialOrderOff, nil)
	if mismatches != 0 {
		t.Fatalf("unexpected verdict mismatches under -reduce: %d", mismatches)
	}
	// The row totals sum over the five LTL-checked columns (ev-usage has
	// no Reduce stage): concrete states checked vs quotient blocks.
	wantFull, wantReduced := 0, 0
	for _, p := range row.Properties {
		if p.StatesReduced > 0 {
			wantFull += row.States
			wantReduced += p.StatesReduced
		}
	}
	if row.StatesFull != wantFull || wantFull != 5*row.States {
		t.Errorf("states_full=%d, want %d (5 reduced columns × %d states)", row.StatesFull, wantFull, row.States)
	}
	if row.StatesReduced != wantReduced || wantReduced <= 0 || wantReduced > wantFull {
		t.Errorf("states_reduced=%d, want %d in (0, %d]", row.StatesReduced, wantReduced, wantFull)
	}
	if want := float64(row.StatesFull) / float64(row.StatesReduced); row.ReductionRatio != want {
		t.Errorf("reduction_ratio=%v, want %v", row.ReductionRatio, want)
	}
	sawWitness := false
	for _, p := range row.Properties {
		kind, err := effpi.ParseKind(p.Kind)
		if err != nil {
			t.Fatal(err)
		}
		if kind == effpi.EventualOutput {
			if p.StatesReduced != 0 {
				t.Errorf("ev-usage: states_reduced=%d, want 0", p.StatesReduced)
			}
			continue
		}
		if p.StatesReduced <= 0 {
			t.Errorf("%s: no quotient size recorded under -reduce", p.Kind)
		}
		if !p.Holds {
			if p.Witness == nil || !p.Witness.Replayed {
				t.Fatalf("%s: reduced FAIL without replay-validated witness", p.Kind)
			}
			sawWitness = true
		}
	}
	if !sawWitness {
		t.Fatal("reduced row produced no witnesses")
	}
}

// TestRunRowSymmetry: under -symmetry a ping-pong row (interchangeable
// pairs) carries the states_explored / orbit_ratio pair with an actual
// collapse, verdicts still match Fig. 9, and failing properties still
// serialise replay-validated witnesses (now produced by the permutation
// lift).
func TestRunRowSymmetry(t *testing.T) {
	s, ok := effpi.BenchSystemByName("Ping-pong (6 pairs)")
	if !ok {
		t.Fatal("benchmark row not found")
	}
	row, mismatches := runRow(s, 1, 1<<20, true, 1, effpi.ReduceOff, effpi.SymmetryOn, effpi.PartialOrderOff, nil)
	if mismatches != 0 {
		t.Fatalf("unexpected verdict mismatches under -symmetry: %d", mismatches)
	}
	if row.StatesExplored <= 0 || row.StatesExplored >= row.States {
		t.Fatalf("states_explored=%d, want a real collapse of the %d-state row", row.StatesExplored, row.States)
	}
	if want := float64(row.States) / float64(row.StatesExplored); row.OrbitRatio != want {
		t.Errorf("orbit_ratio=%v, want %v", row.OrbitRatio, want)
	}
	sawWitness := false
	for _, p := range row.Properties {
		kind, err := effpi.ParseKind(p.Kind)
		if err != nil {
			t.Fatal(err)
		}
		if p.Holds || kind == effpi.EventualOutput {
			continue
		}
		if p.Witness == nil || !p.Witness.Replayed {
			t.Fatalf("%s: symmetric FAIL without replay-validated witness", p.Kind)
		}
		sawWitness = true
	}
	if !sawWitness {
		t.Fatal("symmetric row produced no witnesses")
	}
}

// TestPropFilter: the -props flag runs through the façade's shared kind
// parser and filters the row's columns.
func TestPropFilter(t *testing.T) {
	kinds, err := parseKindFilter("deadlock-free, reactive")
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 2 || !kinds[effpi.DeadlockFree] || !kinds[effpi.Reactive] {
		t.Errorf("bad filter: %v", kinds)
	}
	if _, err := parseKindFilter("deadlock-free,bogus"); err == nil {
		t.Error("unknown kind must fail")
	}
	all, err := parseKindFilter("")
	if err != nil || all != nil {
		t.Errorf("empty filter must mean all kinds: %v %v", all, err)
	}

	s, ok := effpi.BenchSystemByName("Dining philos. (4, deadlock)")
	if !ok {
		t.Fatal("benchmark row not found")
	}
	row, mismatches := runRow(s, 1, 1<<18, true, 1, effpi.ReduceOff, effpi.SymmetryOff, effpi.PartialOrderOff, kinds)
	if mismatches != 0 {
		t.Fatalf("unexpected verdict mismatches: %d", mismatches)
	}
	if len(row.Properties) != 2 {
		t.Fatalf("filter kept %d properties, want 2", len(row.Properties))
	}
	for _, p := range row.Properties {
		k, err := effpi.ParseKind(p.Kind)
		if err != nil {
			t.Fatal(err)
		}
		if !kinds[k] {
			t.Errorf("property %s escaped the filter", p.Kind)
		}
	}
}

// TestSnapshotSchemaCompat: the committed BENCH_fig9.json parses under
// the current schema, keeps all 19 Fig. 9 rows (plus the LargeSystems
// sweep), agrees with the published verdicts, and every failing
// LTL-checked property carries a replay-validated witness — the snapshot
// is a set of checkable claims, not just numbers.
func TestSnapshotSchemaCompat(t *testing.T) {
	buf, err := os.ReadFile("../../BENCH_fig9.json")
	if err != nil {
		t.Skipf("snapshot not present: %v", err)
	}
	var report jsonReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("committed snapshot does not parse under the current schema: %v", err)
	}
	if len(report.Rows) < 19 {
		t.Fatalf("snapshot has %d rows, want the 19 Fig. 9 rows at least", len(report.Rows))
	}
	witnesses := 0
	for _, row := range report.Rows {
		if len(row.Properties) != 6 {
			t.Errorf("%s: %d properties, want 6", row.System, len(row.Properties))
		}
		for _, p := range row.Properties {
			if !p.Matches {
				t.Errorf("%s / %s: snapshot verdict does not match Fig. 9", row.System, p.Kind)
			}
			if p.Holds || p.Kind == effpi.EventualOutput.String() {
				continue
			}
			if p.Witness == nil {
				t.Errorf("%s / %s: failing property without witness in the snapshot", row.System, p.Kind)
				continue
			}
			if !p.Witness.Replayed || len(p.Witness.Cycle) == 0 {
				t.Errorf("%s / %s: snapshot witness not replay-validated or empty", row.System, p.Kind)
			}
			witnesses++
		}
	}
	if witnesses == 0 {
		t.Fatal("snapshot contains no witnesses")
	}
	// Round-trip: the schema serialises losslessly.
	out, err := json.Marshal(&report)
	if err != nil {
		t.Fatal(err)
	}
	var again jsonReport
	if err := json.Unmarshal(out, &again); err != nil {
		t.Fatal(err)
	}
	if len(again.Rows) != len(report.Rows) {
		t.Error("round-trip changed the row count")
	}
}

// TestRunRowPartialOrder: a -por row keeps every verdict, marks the
// eligible columns with partial_order plus their ample-set explored
// counts (strictly smaller than the full ping-pong space), keeps the
// full count from the ineligible columns, and still attaches
// replay-validated witnesses to FAILs.
func TestRunRowPartialOrder(t *testing.T) {
	s, ok := effpi.BenchSystemByName("Ping-pong (6 pairs)")
	if !ok {
		t.Fatal("benchmark row not found")
	}
	row, mismatches := runRow(s, 1, 1<<20, true, 1, effpi.ReduceOff, effpi.SymmetryOff, effpi.PartialOrderOn, nil)
	if mismatches != 0 {
		t.Fatalf("unexpected verdict mismatches under -por: %d", mismatches)
	}
	if row.States <= 0 {
		t.Fatalf("row lost its full state count: %d", row.States)
	}
	if row.StatesAmple <= 0 || row.StatesAmple >= row.States {
		t.Fatalf("states_ample=%d, want a real reduction of the %d-state row", row.StatesAmple, row.States)
	}
	engaged := 0
	for _, p := range row.Properties {
		kind, err := effpi.ParseKind(p.Kind)
		if err != nil {
			t.Fatal(err)
		}
		if p.PartialOrder {
			engaged++
			if p.StatesExplored <= 0 || p.StatesExplored > row.StatesAmple {
				t.Errorf("%s: states_explored=%d out of range (row ample max %d)", p.Kind, p.StatesExplored, row.StatesAmple)
			}
		}
		if p.Holds || kind == effpi.EventualOutput {
			continue
		}
		if p.Witness == nil || !p.Witness.Replayed {
			t.Fatalf("%s: FAIL without replay-validated witness under -por", p.Kind)
		}
	}
	if engaged == 0 {
		t.Fatal("no column engaged partial-order reduction on the ping-pong row")
	}
}
