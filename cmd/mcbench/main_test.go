package main

import (
	"encoding/json"
	"os"
	"testing"

	"effpi/internal/systems"
	"effpi/internal/verify"
)

// TestRunRowAttachesReplayedWitnesses: every failing LTL property of a
// benchmark row comes out with a witness that was re-validated by
// verify.Replay before serialisation; replay failures count as verdict
// mismatches.
func TestRunRowAttachesReplayedWitnesses(t *testing.T) {
	s := systems.DiningPhilosophers(3, true)
	row, mismatches := runRow(s, 1, 1<<18, true, 1)
	if mismatches != 0 {
		t.Fatalf("unexpected verdict mismatches: %d", mismatches)
	}
	sawWitness := false
	for _, p := range row.Properties {
		want := s.Expected[kindByName(t, p.Kind)]
		if p.Holds != want {
			t.Errorf("%s: verdict %v, Fig. 9 expects %v", p.Kind, p.Holds, want)
		}
		if p.Holds || p.Kind == verify.EventualOutput.String() {
			if p.Witness != nil {
				t.Errorf("%s: unexpected witness", p.Kind)
			}
			continue
		}
		if p.Witness == nil {
			t.Fatalf("%s: FAIL without witness in the JSON row", p.Kind)
		}
		if !p.Witness.Replayed {
			t.Errorf("%s: witness not marked replayed", p.Kind)
		}
		if len(p.Witness.Cycle) == 0 {
			t.Errorf("%s: witness cycle is empty", p.Kind)
		}
		for _, st := range append(append([]jsonStep{}, p.Witness.Stem...), p.Witness.Cycle...) {
			if st.Label == "" {
				t.Errorf("%s: witness step without label", p.Kind)
			}
		}
		sawWitness = true
	}
	if !sawWitness {
		t.Fatal("row produced no witnesses")
	}
}

func kindByName(t *testing.T, name string) verify.Kind {
	t.Helper()
	for _, k := range verify.AllKinds() {
		if k.String() == name {
			return k
		}
	}
	t.Fatalf("unknown kind %q", name)
	return 0
}

// TestSnapshotSchemaCompat: the committed BENCH_fig9.json parses under
// the current schema, keeps all 19 Fig. 9 rows (plus the LargeSystems
// sweep), agrees with the published verdicts, and every failing
// LTL-checked property carries a replay-validated witness — the snapshot
// is a set of checkable claims, not just numbers.
func TestSnapshotSchemaCompat(t *testing.T) {
	buf, err := os.ReadFile("../../BENCH_fig9.json")
	if err != nil {
		t.Skipf("snapshot not present: %v", err)
	}
	var report jsonReport
	if err := json.Unmarshal(buf, &report); err != nil {
		t.Fatalf("committed snapshot does not parse under the current schema: %v", err)
	}
	if len(report.Rows) < 19 {
		t.Fatalf("snapshot has %d rows, want the 19 Fig. 9 rows at least", len(report.Rows))
	}
	witnesses := 0
	for _, row := range report.Rows {
		if len(row.Properties) != 6 {
			t.Errorf("%s: %d properties, want 6", row.System, len(row.Properties))
		}
		for _, p := range row.Properties {
			if !p.Matches {
				t.Errorf("%s / %s: snapshot verdict does not match Fig. 9", row.System, p.Kind)
			}
			if p.Holds || p.Kind == verify.EventualOutput.String() {
				continue
			}
			if p.Witness == nil {
				t.Errorf("%s / %s: failing property without witness in the snapshot", row.System, p.Kind)
				continue
			}
			if !p.Witness.Replayed || len(p.Witness.Cycle) == 0 {
				t.Errorf("%s / %s: snapshot witness not replay-validated or empty", row.System, p.Kind)
			}
			witnesses++
		}
	}
	if witnesses == 0 {
		t.Fatal("snapshot contains no witnesses")
	}
	// Round-trip: the schema serialises losslessly.
	out, err := json.Marshal(&report)
	if err != nil {
		t.Fatal(err)
	}
	var again jsonReport
	if err := json.Unmarshal(out, &again); err != nil {
		t.Fatal(err)
	}
	if len(again.Rows) != len(report.Rows) {
		t.Error("round-trip changed the row count")
	}
}
