// Command loadgen drives a running effpid instance with N concurrent
// clients over a mixed workload of benchmark rows, and reports what the
// admission-controlled server actually delivered: throughput, latency
// percentiles (p50/p95/p99), and how much work was shed as 429s.
//
// It exists to answer the capacity question the unit tests can't: with
// -workers W and -queue-depth D, what arrival rate does an instance
// sustain before backpressure engages, and how sharp is the knee? Each
// -clients level is measured independently (closed-loop: every client
// issues its next request as soon as the previous one resolves), and
// the combined report is written as JSON to -out.
//
// Usage:
//
//	loadgen -url http://localhost:8080 [-clients 4,16] [-duration 5s]
//	        [-rows "Ring (10 elements); Ping-pong (6 pairs)"]
//	        [-async-frac 0.25] [-timeout 60s] [-out BENCH_effpid.json]
//
// A request is "sync" (POST /v1/verify, latency = connection wait) or
// "async" (POST /v1/jobs then poll to a terminal state, latency =
// submit-to-terminal). -async-frac sets the async fraction; both paths
// share the server's queue, so their admission behaviour is identical.
//
// On a 429 the client honours Retry-After before it retries — rejected
// attempts are counted, not timed, so percentiles describe only the
// work the server accepted.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

type levelReport struct {
	Clients int `json:"clients"`
	// Requests counts resolved attempts: OK + Accepted + Rejected + Errors.
	Requests int `json:"requests"`
	OK       int `json:"ok"`
	// Accepted counts async jobs that reached a terminal state other
	// than done (cancelled/failed); done async jobs count as OK.
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
	Errors   int `json:"errors"`
	// ThroughputRPS is completed (OK) work per wall-clock second.
	ThroughputRPS float64   `json:"throughput_rps"`
	LatencyMS     latencyMS `json:"latency_ms"`
	// RetryAfterMax is the largest Retry-After (seconds) the server
	// advertised during this level; 0 when nothing was rejected.
	RetryAfterMax int `json:"retry_after_max,omitempty"`
}

type latencyMS struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

type benchReport struct {
	GeneratedBy     string        `json:"generated_by"`
	URL             string        `json:"url"`
	DurationSeconds float64       `json:"duration_seconds"`
	AsyncFraction   float64       `json:"async_fraction"`
	Rows            []string      `json:"rows"`
	Levels          []levelReport `json:"levels"`
}

// jobView is the slice of the job API's response loadgen needs.
type jobView struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

type config struct {
	url       string
	rows      []string
	duration  time.Duration
	asyncFrac float64
	timeout   time.Duration
}

func main() {
	url := flag.String("url", "http://localhost:8080", "effpid base URL")
	clients := flag.String("clients", "4,16", "comma-separated concurrency levels")
	duration := flag.Duration("duration", 5*time.Second, "measurement window per level")
	rowsFlag := flag.String("rows", defaultRows, "semicolon-separated benchmark rows (mixed sizes; row names contain commas)")
	asyncFrac := flag.Float64("async-frac", 0.25, "fraction of requests using the async job API")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request client timeout")
	out := flag.String("out", "BENCH_effpid.json", "output report path (- for stdout)")
	flag.Parse()

	levels, err := parseLevels(*clients)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	cfg := config{
		url:       strings.TrimRight(*url, "/"),
		rows:      splitRows(*rowsFlag),
		duration:  *duration,
		asyncFrac: *asyncFrac,
		timeout:   *timeout,
	}

	report := benchReport{
		GeneratedBy:     "cmd/loadgen",
		URL:             cfg.url,
		DurationSeconds: cfg.duration.Seconds(),
		AsyncFraction:   cfg.asyncFrac,
		Rows:            cfg.rows,
	}
	for _, n := range levels {
		fmt.Fprintf(os.Stderr, "loadgen: level %d clients, %s window\n", n, cfg.duration)
		lv := runLevel(cfg, n)
		fmt.Fprintf(os.Stderr, "loadgen:   %d ok, %d rejected, %.1f req/s, p50 %.1fms p95 %.1fms p99 %.1fms\n",
			lv.OK, lv.Rejected, lv.ThroughputRPS, lv.LatencyMS.P50, lv.LatencyMS.P95, lv.LatencyMS.P99)
		report.Levels = append(report.Levels, lv)
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: encode report: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "loadgen: report written to %s\n", *out)
}

// defaultRows mixes small, medium, and heavy state spaces so admission
// sees heterogeneous service times — the regime Retry-After estimation
// has to cope with. The 8-philosopher deadlock ring is the heavy tail:
// 6 561 concrete states across six properties, the row whose per-property
// rotational-symmetry collapse BENCH_fig9.json tracks.
const defaultRows = "Dining philos. (4, deadlock); Ping-pong (6 pairs); Ring (10 elements); Dining philos. (5, no deadlock); Dining philos. (8, deadlock)"

func parseLevels(s string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -clients entry %q", part)
		}
		levels = append(levels, n)
	}
	return levels, nil
}

// splitRows splits on semicolons: benchmark row names themselves
// contain commas ("Dining philos. (4, deadlock)").
func splitRows(s string) []string {
	var rows []string
	for _, part := range strings.Split(s, ";") {
		if part = strings.TrimSpace(part); part != "" {
			rows = append(rows, part)
		}
	}
	return rows
}

// clientStats is one client's tally for a level.
type clientStats struct {
	ok, accepted, rejected, errors int
	retryAfterMax                  int
	latencies                      []time.Duration // of OK requests only
}

// runLevel runs n closed-loop clients for the configured window and
// aggregates their tallies.
func runLevel(cfg config, n int) levelReport {
	httpClient := &http.Client{Timeout: cfg.timeout}
	stop := time.Now().Add(cfg.duration)
	stats := make([]clientStats, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i) + 1))
			for time.Now().Before(stop) {
				row := cfg.rows[rng.Intn(len(cfg.rows))]
				async := rng.Float64() < cfg.asyncFrac
				oneRequest(cfg, httpClient, row, async, &stats[i])
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all clientStats
	for _, s := range stats {
		all.ok += s.ok
		all.accepted += s.accepted
		all.rejected += s.rejected
		all.errors += s.errors
		if s.retryAfterMax > all.retryAfterMax {
			all.retryAfterMax = s.retryAfterMax
		}
		all.latencies = append(all.latencies, s.latencies...)
	}
	return levelReport{
		Clients:       n,
		Requests:      all.ok + all.accepted + all.rejected + all.errors,
		OK:            all.ok,
		Accepted:      all.accepted,
		Rejected:      all.rejected,
		Errors:        all.errors,
		ThroughputRPS: float64(all.ok) / elapsed.Seconds(),
		LatencyMS:     summarise(all.latencies),
		RetryAfterMax: all.retryAfterMax,
	}
}

// oneRequest issues a single sync or async verification and records the
// outcome. 429s honour Retry-After (capped so a pessimistic estimate
// can't stall the window) and are tallied as rejections.
func oneRequest(cfg config, client *http.Client, row string, async bool, st *clientStats) {
	body, _ := json.Marshal(map[string]string{"system": row})
	path := "/v1/verify"
	if async {
		path = "/v1/jobs"
	}
	begin := time.Now()
	resp, err := client.Post(cfg.url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		st.errors++
		return
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	switch resp.StatusCode {
	case http.StatusOK:
		st.ok++
		st.latencies = append(st.latencies, time.Since(begin))
	case http.StatusAccepted:
		var j jobView
		if json.Unmarshal(payload, &j) != nil || j.ID == "" {
			st.errors++
			return
		}
		state, ok := pollToTerminal(cfg, client, j.ID)
		if !ok {
			st.errors++
			return
		}
		if state == "done" {
			st.ok++
			st.latencies = append(st.latencies, time.Since(begin))
		} else {
			st.accepted++
		}
	case http.StatusTooManyRequests:
		st.rejected++
		if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			if ra > st.retryAfterMax {
				st.retryAfterMax = ra
			}
			wait := time.Duration(ra) * time.Second
			if wait > 2*time.Second {
				wait = 2 * time.Second
			}
			time.Sleep(wait)
		}
	default:
		st.errors++
	}
}

// pollToTerminal polls an async job until it leaves the queue/run
// states, returning its terminal state.
func pollToTerminal(cfg config, client *http.Client, id string) (string, bool) {
	deadline := time.Now().Add(cfg.timeout)
	for time.Now().Before(deadline) {
		resp, err := client.Get(cfg.url + "/v1/jobs/" + id)
		if err != nil {
			return "", false
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return "", false
		}
		var j jobView
		if json.Unmarshal(payload, &j) != nil {
			return "", false
		}
		switch j.State {
		case "done", "failed", "cancelled":
			return j.State, true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return "", false
}

// summarise computes the latency percentiles of the accepted requests.
func summarise(lat []time.Duration) latencyMS {
	if len(lat) == 0 {
		return latencyMS{}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	pct := func(q float64) float64 {
		i := int(q*float64(len(lat))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lat) {
			i = len(lat) - 1
		}
		return ms(lat[i])
	}
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	return latencyMS{
		P50:  pct(0.50),
		P95:  pct(0.95),
		P99:  pct(0.99),
		Mean: ms(sum / time.Duration(len(lat))),
		Max:  ms(lat[len(lat)-1]),
	}
}
