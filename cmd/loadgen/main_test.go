package main

// loadgen's measurement loop tested against a stub server that speaks
// just enough of the effpid wire protocol: sync 200s with a fixed
// service time, async 202 + poll-to-done, and deterministic 429s with
// Retry-After once "saturated".

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// stubEffpid serves /v1/verify, /v1/jobs, /v1/jobs/{id} with canned
// behaviour: every rejectEvery'th admission attempt is a 429.
type stubEffpid struct {
	mu          sync.Mutex
	admissions  int
	rejectEvery int // 0 = never reject
	jobs        map[string]int
	nextJob     int
}

func (s *stubEffpid) admit() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.admissions++
	return s.rejectEvery == 0 || s.admissions%s.rejectEvery != 0
}

func (s *stubEffpid) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", func(w http.ResponseWriter, r *http.Request) {
		if !s.admit() {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		time.Sleep(2 * time.Millisecond)
		fmt.Fprint(w, `{"system": "stub", "duration_ms": 2}`)
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if !s.admit() {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		s.mu.Lock()
		s.nextJob++
		id := fmt.Sprintf("job-%d", s.nextJob)
		s.jobs[id] = 0
		s.mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(jobView{ID: id, State: "queued"})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s.mu.Lock()
		polls, ok := s.jobs[id]
		if ok {
			s.jobs[id]++
		}
		s.mu.Unlock()
		if !ok {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		state := "running"
		if polls >= 1 { // done on the second poll
			state = "done"
		}
		json.NewEncoder(w).Encode(jobView{ID: id, State: state})
	})
	return mux
}

func stubConfig(url string, asyncFrac float64) config {
	return config{
		url:       url,
		rows:      []string{"stub row"},
		duration:  300 * time.Millisecond,
		asyncFrac: asyncFrac,
		timeout:   5 * time.Second,
	}
}

func TestRunLevelSyncOnly(t *testing.T) {
	stub := &stubEffpid{jobs: map[string]int{}}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	lv := runLevel(stubConfig(ts.URL, 0), 4)
	if lv.Clients != 4 {
		t.Errorf("clients = %d", lv.Clients)
	}
	if lv.OK == 0 || lv.Errors != 0 || lv.Rejected != 0 {
		t.Errorf("level: %+v, want only OK outcomes", lv)
	}
	if lv.Requests != lv.OK {
		t.Errorf("requests %d != ok %d", lv.Requests, lv.OK)
	}
	if lv.ThroughputRPS <= 0 {
		t.Errorf("throughput %v", lv.ThroughputRPS)
	}
	l := lv.LatencyMS
	if l.P50 <= 0 || l.P50 > l.P95 || l.P95 > l.P99 || l.P99 > l.Max {
		t.Errorf("percentiles not monotone: %+v", l)
	}
}

func TestRunLevelAsyncAndRejections(t *testing.T) {
	stub := &stubEffpid{jobs: map[string]int{}, rejectEvery: 3}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	lv := runLevel(stubConfig(ts.URL, 1.0), 3)
	if lv.OK == 0 {
		t.Error("no async job completed")
	}
	if lv.Rejected == 0 {
		t.Error("stub rejects every 3rd admission, but no 429 was tallied")
	}
	if lv.RetryAfterMax < 1 {
		t.Errorf("retry_after_max = %d, want >= 1", lv.RetryAfterMax)
	}
	if lv.Errors != 0 {
		t.Errorf("errors = %d: %+v", lv.Errors, lv)
	}
}

func TestSummarise(t *testing.T) {
	if got := summarise(nil); got != (latencyMS{}) {
		t.Errorf("empty summary: %+v", got)
	}
	lat := make([]time.Duration, 100)
	for i := range lat {
		lat[i] = time.Duration(i+1) * time.Millisecond
	}
	got := summarise(lat)
	if got.P50 != 50 || got.P95 != 95 || got.P99 != 99 || got.Max != 100 {
		t.Errorf("percentiles of 1..100ms: %+v", got)
	}
	if got.Mean != 50.5 {
		t.Errorf("mean = %v, want 50.5", got.Mean)
	}
}

func TestParseLevels(t *testing.T) {
	levels, err := parseLevels("4, 16")
	if err != nil || len(levels) != 2 || levels[0] != 4 || levels[1] != 16 {
		t.Errorf("parseLevels: %v, %v", levels, err)
	}
	if _, err := parseLevels("4,zero"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := parseLevels("0"); err == nil {
		t.Error("zero level accepted")
	}
}
