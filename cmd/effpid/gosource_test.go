package main

// Tests of the go_source request flavour: a Go protocol file is
// statically extracted in-service, verified, and FAIL witnesses carry
// the source positions of the extracted actions.

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// stuckGoSource deadlocks after one handshake on a: both components
// then wait to receive on b, which nobody sends on.
const stuckGoSource = `package p

import rt "effpi/internal/runtime"

func Stuck() rt.Proc {
	a := rt.NewChan()
	b := rt.NewChan()
	return rt.Par{Procs: []rt.Proc{
		rt.Send{Ch: a, Val: 1, Cont: func() rt.Proc {
			return rt.Recv{Ch: b, Cont: func(x any) rt.Proc { return rt.End{} }}
		}},
		rt.Recv{Ch: a, Cont: func(x any) rt.Proc {
			return rt.Recv{Ch: b, Cont: func(y any) rt.Proc { return rt.End{} }}
		}},
	}}
}
`

func marshalReq(t *testing.T, req map[string]any) string {
	t.Helper()
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

func TestGoSourceVerifyWitnessPositions(t *testing.T) {
	ts := testServer(t, serverConfig{})
	body := marshalReq(t, map[string]any{
		"go_source":  stuckGoSource,
		"properties": []map[string]any{{"kind": "deadlock-free"}},
	})
	code, buf := postVerify(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, buf)
	}
	var resp verifyResponse
	if err := json.Unmarshal(buf, &resp); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, buf)
	}
	if resp.Entry != "Stuck" {
		t.Errorf("entry = %q, want Stuck", resp.Entry)
	}
	if resp.Type == "" {
		t.Errorf("response carries no extracted type")
	}
	if len(resp.Results) != 1 {
		t.Fatalf("got %d results, want 1", len(resp.Results))
	}
	res := resp.Results[0]
	if res.Holds {
		t.Fatalf("deadlock-free should FAIL for the stuck protocol")
	}
	if res.Witness == nil {
		t.Fatalf("FAIL carries no witness")
	}
	positions := 0
	for _, st := range append(res.Witness.Stem, res.Witness.Cycle...) {
		for _, p := range st.Pos {
			if !strings.HasPrefix(p, "request.go:") {
				t.Errorf("position %q does not point into request.go", p)
			}
			positions++
		}
	}
	if positions == 0 {
		t.Errorf("witness carries no source positions")
	}
	if !res.Witness.Replayed {
		t.Errorf("witness was not replay-validated")
	}
}

func TestGoSourceEntrySelectionAndErrors(t *testing.T) {
	ts := testServer(t, serverConfig{})
	prop := []map[string]any{{"kind": "deadlock-free"}}
	cases := []struct {
		name   string
		req    map[string]any
		status int
		kind   string
	}{
		{"go_source plus source", map[string]any{
			"go_source": stuckGoSource, "source": "end", "properties": prop,
		}, http.StatusBadRequest, "bad-request"},
		{"go_source without properties", map[string]any{
			"go_source": stuckGoSource,
		}, http.StatusBadRequest, "bad-request"},
		{"go_source with binds", map[string]any{
			"go_source": stuckGoSource, "properties": prop,
			"binds": []map[string]any{{"name": "x", "type": "Chan[Int]"}},
		}, http.StatusBadRequest, "bad-request"},
		{"unknown entry", map[string]any{
			"go_source": stuckGoSource, "entry": "NoSuch", "properties": prop,
		}, http.StatusUnprocessableEntity, "type"},
		{"no entries", map[string]any{
			"go_source": "package p\n", "properties": prop,
		}, http.StatusUnprocessableEntity, "type"},
		{"go parse error", map[string]any{
			"go_source": "package p\nfunc {", "properties": prop,
		}, http.StatusBadRequest, "parse"},
	}
	for _, tc := range cases {
		code, buf := postVerify(t, ts, marshalReq(t, tc.req))
		if code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.status, buf)
			continue
		}
		var e errorResponse
		if err := json.Unmarshal(buf, &e); err != nil {
			t.Errorf("%s: error body is not JSON: %s", tc.name, buf)
			continue
		}
		if e.Kind != tc.kind {
			t.Errorf("%s: kind %q, want %q", tc.name, e.Kind, tc.kind)
		}
	}
	// Naming the entry explicitly works too.
	code, buf := postVerify(t, ts, marshalReq(t, map[string]any{
		"go_source": stuckGoSource, "entry": "Stuck", "properties": prop,
	}))
	if code != http.StatusOK {
		t.Fatalf("explicit entry: status %d: %s", code, buf)
	}
	var resp verifyResponse
	if err := json.Unmarshal(buf, &resp); err != nil || resp.Entry != "Stuck" {
		t.Fatalf("explicit entry: bad response (%v): %s", err, buf)
	}
}
