// Command effpid is the long-lived verification service of the effpi-go
// reproduction: an HTTP JSON API over the public effpi package, serving
// concurrent verification requests from one shared Workspace — so the
// hash-consed interner and transition memos warm up across requests
// instead of being rebuilt per call, with a size-bounded eviction policy
// keeping the resident set bounded.
//
// Every verification is admitted through a bounded job queue drained by
// a fixed worker pool (-workers, -queue-depth): the server's concurrency
// is a configuration knob, not a function of the arrival rate. A full
// queue rejects new work fast — 429 with a Retry-After computed from
// observed service times — instead of oversubscribing the box, and a
// panic inside any single job is contained to that job's failure record.
//
// Usage:
//
//	effpid [-addr :8080] [-timeout 30s] [-max-timeout 5m]
//	       [-max N] [-max-states-cap N] [-par N] [-cache-budget N]
//	       [-workers N] [-queue-depth N] [-retain N] [-retain-ttl D]
//	       [-drain D] [-pprof]
//
// Endpoints:
//
//	POST   /v1/verify   {"source": "...", "binds": [{"name":"c","type":"Chan[Int]"}],
//	                     "properties": [{"kind":"deadlock-free","channels":["c"]}]}
//	                    — or {"system": "Dining philos. (5, deadlock)"} to run a
//	                    benchmark row (omit "properties" for its six Fig. 9 columns).
//	                    Waits for the result on the connection; admitted through
//	                    the same queue as the job API, so a saturated server
//	                    answers 429 + Retry-After.
//	POST   /v1/jobs     same body; returns 202 {"id": ...} immediately and runs
//	                    the verification asynchronously.
//	GET    /v1/jobs/{id}  job state (queued/running/done/failed/cancelled),
//	                    queue position, exploration progress, and — when done —
//	                    the full verification result.
//	DELETE /v1/jobs/{id}  cancel: a queued job never starts, a running one is
//	                    cancelled through its context.
//	GET    /healthz     liveness (200 while the process serves)
//	GET    /readyz      readiness (503 while saturated or draining — take the
//	                    instance out of rotation, don't kill it)
//	GET    /metrics     expvar counters + workspace cache stats (JSON): queue
//	                    depth and high-water, jobs by state, rejections,
//	                    retry_after_seconds, per-outcome latency histograms
//	GET    /debug/pprof/*  Go runtime profiles — only with the -pprof flag
//	                    (profiling endpoints expose internals; opt in on
//	                    instances you control)
//
// Requests are cancellable: each runs under a deadline (its "timeout_ms",
// capped by -max-timeout, defaulting to -timeout, measured from job
// start), and a dropped client connection aborts a synchronous request's
// exploration. A timed-out request returns 504 and leaves the shared
// caches fully usable.
//
// Shutdown (SIGINT/SIGTERM) drains: /readyz flips to not-ready, admission
// stops, running jobs get the -drain window to finish, still-queued jobs
// are cancelled with a clear error, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"effpi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request timeout")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "hard cap on requested timeouts")
	maxStates := flag.Int("max", 0, "default exploration state bound (0 = engine default)")
	maxStatesCap := flag.Int("max-states-cap", 0, "admission cap on requested exploration bounds (0 = none)")
	par := flag.Int("par", 0, "default exploration workers per job (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "concurrent verification jobs (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 64, "admission queue depth; beyond it requests get 429")
	retain := flag.Int("retain", 256, "completed jobs retained for polling")
	retainTTL := flag.Duration("retain-ttl", 15*time.Minute, "completed-job retention age bound")
	drain := flag.Duration("drain", 15*time.Second, "shutdown window for running jobs to finish")
	cacheBudget := flag.Int("cache-budget", 0, "workspace memo budget (0 = default, <0 = unlimited)")
	pprof := flag.Bool("pprof", false, "expose Go runtime profiling under /debug/pprof/ (off by default)")
	flag.Parse()

	ws := effpi.NewWorkspace(effpi.WithCacheBudget(*cacheBudget))
	srv := newServer(ws, serverConfig{
		defaultTimeout: *timeout,
		maxTimeout:     *maxTimeout,
		maxStates:      *maxStates,
		maxStatesCap:   *maxStatesCap,
		parallelism:    *par,
		workers:        *workers,
		queueDepth:     *queueDepth,
		retain:         *retain,
		retainTTL:      *retainTTL,
		pprof:          *pprof,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown v2: on the first signal, readiness flips to
	// not-ready and admission stops (new submits get 503), still-queued
	// jobs are cancelled with a clear error, and running jobs get the
	// -drain window to finish before their contexts are cancelled. Only
	// then does the listener close — synchronous waiters whose jobs
	// completed during the drain still receive their responses.
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		fmt.Fprintf(os.Stderr, "effpid: draining (up to %s for running jobs)\n", *drain)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		srv.drain(drainCtx)
		cancel()
		closeCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(closeCtx)
	}()

	fmt.Fprintf(os.Stderr, "effpid: listening on %s\n", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "effpid: %v\n", err)
		os.Exit(1)
	}
}
