// Command effpid is the long-lived verification service of the effpi-go
// reproduction: an HTTP JSON API over the public effpi package, serving
// concurrent verification requests from one shared Workspace — so the
// hash-consed interner and transition memos warm up across requests
// instead of being rebuilt per call, with a size-bounded eviction policy
// keeping the resident set bounded.
//
// Usage:
//
//	effpid [-addr :8080] [-timeout 30s] [-max-timeout 5m]
//	       [-max N] [-par N] [-cache-budget N] [-pprof]
//
// Endpoints:
//
//	POST /v1/verify   {"source": "...", "binds": [{"name":"c","type":"Chan[Int]"}],
//	                   "properties": [{"kind":"deadlock-free","channels":["c"]}]}
//	                  — or {"system": "Dining philos. (5, deadlock)"} to run a
//	                  benchmark row (omit "properties" for its six Fig. 9 columns).
//	                  Responses carry one result per property with the verdict,
//	                  state counts, timing, and — on FAIL — the replay-validated
//	                  counterexample lasso.
//	GET  /healthz     liveness
//	GET  /metrics     expvar counters + workspace cache stats (JSON)
//	GET  /debug/pprof/*  Go runtime profiles — only with the -pprof flag
//	                  (profiling endpoints expose internals; opt in on
//	                  instances you control)
//
// Requests are cancellable: each runs under a deadline (its "timeout_ms",
// capped by -max-timeout, defaulting to -timeout), and a dropped client
// connection aborts the exploration. A timed-out request returns 504 and
// leaves the shared caches fully usable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"effpi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request timeout")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "hard cap on requested timeouts")
	maxStates := flag.Int("max", 0, "default exploration state bound (0 = engine default)")
	par := flag.Int("par", 0, "default exploration workers (0 = GOMAXPROCS)")
	cacheBudget := flag.Int("cache-budget", 0, "workspace memo budget (0 = default, <0 = unlimited)")
	pprof := flag.Bool("pprof", false, "expose Go runtime profiling under /debug/pprof/ (off by default)")
	flag.Parse()

	ws := effpi.NewWorkspace(effpi.WithCacheBudget(*cacheBudget))
	srv := newServer(ws, serverConfig{
		defaultTimeout: *timeout,
		maxTimeout:     *maxTimeout,
		maxStates:      *maxStates,
		parallelism:    *par,
		pprof:          *pprof,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: in-flight requests get a short drain window;
	// their contexts are cancelled when it closes.
	done := make(chan os.Signal, 1)
	signal.Notify(done, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-done
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx)
	}()

	fmt.Fprintf(os.Stderr, "effpid: listening on %s\n", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "effpid: %v\n", err)
		os.Exit(1)
	}
}
