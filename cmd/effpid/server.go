package main

// HTTP layer of effpid: one long-lived effpi.Workspace serves every
// request, so concurrent and repeated verifications share the interner
// and transition memos (with the workspace's eviction budget keeping the
// resident set bounded). Every verification is admitted through the job
// engine (jobs.go): a bounded queue drained by a fixed worker pool, so
// load beyond capacity is rejected fast (429 + Retry-After) instead of
// oversubscribing the box. The handler set:
//
//	POST   /v1/verify     verify and wait (admitted through the queue)
//	POST   /v1/jobs       submit an async verification job (202 + id)
//	GET    /v1/jobs/{id}  job state, queue position, progress, result
//	DELETE /v1/jobs/{id}  cancel (dequeue-before-start included)
//	GET    /healthz       liveness probe (always 200 while serving)
//	GET    /readyz        readiness: 503 while saturated or draining
//	GET    /metrics       expvar counters + workspace cache stats (JSON)
//
// Verdicts and witnesses are schedule-independent: the engine guarantees
// byte-identical results at any parallelism and under any interleaving
// of concurrent identical requests, so replaying a request stream always
// reproduces its responses (modulo the duration fields, which are
// wall-clock measurements). Witness structure (state ids, label indices)
// is additionally independent of what else warmed the shared caches;
// only the *rendered representative types* inside a witness can pick an
// ≡-equivalent spelling first interned by a sibling workload sharing the
// same environment (see DESIGN.md, workspace sharing).

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"effpi"
)

// server carries the shared workspace, the job engine, the per-request
// limits, and the expvar counter set. Counters live in an unregistered
// expvar.Map so multiple servers (tests) can coexist in one process.
type server struct {
	ws     *effpi.Workspace
	engine *jobEngine

	defaultTimeout time.Duration // applied when a request names none
	maxTimeout     time.Duration // hard cap on requested timeouts
	maxStates      int           // default exploration bound
	maxStatesCap   int           // admission cap on requested bounds (0 = none)
	parallelism    int           // default worker count (0 = GOMAXPROCS)
	pprof          bool          // serve /debug/pprof/ (opt-in)

	start   time.Time
	metrics *expvar.Map
	// Counter handles into metrics (expvar.Map lookups allocate).
	requests, failures, pass, fail, cancelled, inflight *expvar.Int
	// Reduction accounting: how many properties ran with the Reduce
	// stage, and the cumulative concrete/quotient state counts they saw —
	// /metrics derives the fleet-wide reduction ratio from the pair.
	reducedProps, reducedStatesFull, reducedStatesQuotient *expvar.Int
	// Symmetry accounting: how many properties were checked on orbit
	// representatives, and the cumulative covered/explored state counts —
	// /metrics derives the fleet-wide orbit ratio from the pair.
	symmetricProps, symmetryStatesCovered, symmetryStatesExplored *expvar.Int
	// Partial-order accounting: how many properties ran on ample-set
	// reduced state spaces, and the cumulative reduced state counts they
	// explored (the full-space count is never computed under POR, so no
	// ratio pair exists — the reduced total is the honest metric).
	porProps, porStatesExplored *expvar.Int
	// Admission and job-engine accounting: submissions admitted,
	// rejections (queue full), the last Retry-After handed out, the
	// queue's high-water occupancy, and terminal job counts by outcome.
	submitted, rejections, retryAfter, queueHighWater *expvar.Int
	jobsDone, jobsFailed, jobsCancelled               *expvar.Int
	// Containment accounting: panics recovered inside job execution
	// (panics_total) and inside HTTP handlers (http_panics_total), plus
	// JSON encode failures that would otherwise vanish silently.
	jobPanics, httpPanics, encodeFailures *expvar.Int
	// latency holds the per-outcome coarse latency histograms; buckets
	// are registered in the metrics map as latency_<outcome>_le_<N>ms.
	latency map[string]*latencyHist
}

type serverConfig struct {
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	maxStates      int
	// maxStatesCap rejects, at admission, requests asking for a larger
	// exploration bound than the operator allows (0 = no cap).
	maxStatesCap int
	parallelism  int
	// workers is the job engine's pool size (0 = GOMAXPROCS): the
	// maximum number of concurrently running verifications.
	workers int
	// queueDepth bounds the admission queue (0 = 64): requests beyond
	// workers+queueDepth are rejected with 429.
	queueDepth int
	// retain / retainTTL bound the completed-job store (0 = 256 jobs,
	// 15 minutes).
	retain    int
	retainTTL time.Duration
	// pprof exposes the Go runtime profiling endpoints under
	// /debug/pprof/. Off by default: the profiles leak goroutine stacks
	// and heap contents, which a verification service should not serve
	// unless its operator asked for them.
	pprof bool
}

// latencyBucketMS are the coarse per-outcome latency histogram bounds.
var latencyBucketMS = []int{1, 5, 25, 100, 500, 2500, 10000}

// latencyHist is one outcome's histogram: cumulative "≤ bound" buckets,
// an overflow bucket, and a count, all living in the metrics map.
type latencyHist struct {
	le    []*expvar.Int
	gt    *expvar.Int
	count *expvar.Int
}

func (h *latencyHist) observe(ms float64) {
	h.count.Add(1)
	for i, bound := range latencyBucketMS {
		if ms <= float64(bound) {
			h.le[i].Add(1)
			return
		}
	}
	h.gt.Add(1)
}

func newServer(ws *effpi.Workspace, cfg serverConfig) *server {
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	if cfg.queueDepth <= 0 {
		cfg.queueDepth = 64
	}
	if cfg.retain <= 0 {
		cfg.retain = 256
	}
	if cfg.retainTTL <= 0 {
		cfg.retainTTL = 15 * time.Minute
	}
	s := &server{
		ws:             ws,
		defaultTimeout: cfg.defaultTimeout,
		maxTimeout:     cfg.maxTimeout,
		maxStates:      cfg.maxStates,
		maxStatesCap:   cfg.maxStatesCap,
		parallelism:    cfg.parallelism,
		pprof:          cfg.pprof,
		start:          time.Now(),
		metrics:        new(expvar.Map).Init(),
		latency:        make(map[string]*latencyHist),
	}
	newInt := func(name string) *expvar.Int {
		v := new(expvar.Int)
		s.metrics.Set(name, v)
		return v
	}
	s.requests = newInt("requests_total")
	s.failures = newInt("failures_total")
	s.pass = newInt("verdicts_pass_total")
	s.fail = newInt("verdicts_fail_total")
	s.cancelled = newInt("cancelled_total")
	s.inflight = newInt("requests_inflight")
	s.reducedProps = newInt("reduced_properties_total")
	s.reducedStatesFull = newInt("reduction_states_full_total")
	s.reducedStatesQuotient = newInt("reduction_states_reduced_total")
	s.symmetricProps = newInt("symmetric_properties_total")
	s.symmetryStatesCovered = newInt("symmetry_states_covered_total")
	s.symmetryStatesExplored = newInt("symmetry_states_explored_total")
	s.porProps = newInt("por_properties_total")
	s.porStatesExplored = newInt("por_states_explored_total")
	s.submitted = newInt("jobs_submitted_total")
	s.rejections = newInt("rejections_total")
	s.retryAfter = newInt("retry_after_seconds")
	s.queueHighWater = newInt("queue_high_water")
	s.jobsDone = newInt("jobs_done_total")
	s.jobsFailed = newInt("jobs_failed_total")
	s.jobsCancelled = newInt("jobs_cancelled_total")
	s.jobPanics = newInt("panics_total")
	s.httpPanics = newInt("http_panics_total")
	s.encodeFailures = newInt("encode_failures_total")
	for _, outcome := range []string{jobDone.String(), jobFailed.String(), jobCancelled.String()} {
		h := &latencyHist{
			gt:    newInt(fmt.Sprintf("latency_%s_gt_%dms", outcome, latencyBucketMS[len(latencyBucketMS)-1])),
			count: newInt("latency_" + outcome + "_count"),
		}
		for _, bound := range latencyBucketMS {
			h.le = append(h.le, newInt(fmt.Sprintf("latency_%s_le_%dms", outcome, bound)))
		}
		s.latency[outcome] = h
	}
	s.engine = newJobEngine(s, cfg.workers, cfg.queueDepth, cfg.retain, cfg.retainTTL)
	return s
}

// observeLatency records one terminal job's service time into its
// outcome's histogram.
func (s *server) observeLatency(outcome string, ms float64) {
	if h, ok := s.latency[outcome]; ok {
		h.observe(ms)
	}
}

// Close drains the job engine (used by tests; main goes through drain
// with its configured window).
func (s *server) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.engine.Shutdown(ctx)
}

// drain runs graceful-shutdown v2: readiness flips to not-ready and
// admission stops immediately, still-queued jobs are cancelled with a
// clear error, and running jobs get ctx's window to finish before their
// contexts are cancelled.
func (s *server) drain(ctx context.Context) {
	s.engine.Shutdown(ctx)
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.pprof {
		// Explicit registrations rather than net/http/pprof's package
		// side effect: the server never serves http.DefaultServeMux, so
		// the profiles exist only when the operator opted in.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s.recoverHTTP(mux)
}

// recoverHTTP is the panic containment middleware around every handler:
// a panic anywhere in request handling (marshalling, a handler bug, an
// engine path reached outside a job) becomes that request's 500 and a
// counter increment, never a crashed listener. http.ErrAbortHandler is
// net/http's own abort protocol and is re-raised.
func (s *server) recoverHTTP(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.httpPanics.Add(1)
			log.Printf("effpid: panic serving %s %s contained: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			// Best effort: if the handler already wrote headers this
			// appends to a broken body, which the client detects via the
			// truncated/invalid JSON.
			s.writeError(w, http.StatusInternalServerError, "internal", errors.New("internal server error"))
		}()
		next.ServeHTTP(w, r)
	})
}

// ---- wire shapes -----------------------------------------------------

// verifyRequest is the POST /v1/verify and POST /v1/jobs body. Exactly
// one of Source (an .epi program, typed under Binds), System (a
// benchmark row name from Fig. 9 / the large sweep), and GoSource (a Go
// file written against the effpi combinators, statically extracted)
// must be set.
type verifyRequest struct {
	Source string `json:"source,omitempty"`
	System string `json:"system,omitempty"`
	// GoSource is a Go source file using the runtime/actor combinator
	// packages. Its protocol entries are statically extracted
	// (effpi.ExtractGoSource); FAIL witnesses carry the file:line
	// positions of the extracted actions.
	GoSource string `json:"go_source,omitempty"`
	// Entry names the entry function to verify when GoSource defines
	// several; optional when there is exactly one.
	Entry string     `json:"entry,omitempty"`
	Binds []bindJSON `json:"binds,omitempty"`
	// Properties to verify. A System request may omit them to run the
	// row's own six Fig. 9 properties.
	Properties []propJSON `json:"properties,omitempty"`
	// MaxStates bounds each exploration (0 = server default; values
	// above the server's admission cap are rejected with 400).
	MaxStates int `json:"max_states,omitempty"`
	// Parallelism is the exploration worker count (0 = server default;
	// verdicts are identical at any value).
	Parallelism int `json:"parallelism,omitempty"`
	// EarlyExit selects on-the-fly checking where the schema allows it.
	EarlyExit bool `json:"early_exit,omitempty"`
	// Reduction selects the state-space reduction stage: "off" (default)
	// or "strong" (bisimulation quotienting; verdicts identical, FAIL
	// witnesses lifted to concrete runs and replay-validated).
	Reduction string `json:"reduction,omitempty"`
	// Symmetry selects exploration-time symmetry reduction: "off"
	// (default) or "on" (orbit representatives under the system's
	// channel permutation group — interchangeable-bundle classes and
	// ring rotations; verdicts identical, FAIL witnesses
	// permutation-lifted to concrete runs and replay-validated). Any
	// other value is a 400 naming the valid modes.
	Symmetry string `json:"symmetry,omitempty"`
	// PartialOrder selects exploration-time partial-order reduction:
	// "off" (default) or "on" (ample transition subsets from the type
	// semantics' independence relation; verdicts identical, FAIL
	// witnesses are concrete runs of the reduced space and
	// replay-validated; yields to symmetry when both engage).
	PartialOrder string `json:"partial_order,omitempty"`
	// TimeoutMS caps this request's service time (0 = server default;
	// capped by the server's -max-timeout). The clock starts when the
	// job starts running — queue wait is bounded by admission control,
	// not by the deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

type bindJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// propJSON is the structured property shape (see
// effpi.PropertyFromSpec; the CLIs use the flag-string twin
// PropertyFromFlags).
type propJSON struct {
	Kind     string   `json:"kind"`
	Channels []string `json:"channels,omitempty"`
	From     string   `json:"from,omitempty"`
	To       string   `json:"to,omitempty"`
	// Open selects open-process mode (default: closed composition, the
	// right mode for self-contained systems).
	Open bool `json:"open,omitempty"`
}

type verifyResponse struct {
	// Type is the inferred λπ⩽ type of a Source request (or the
	// extracted type of a GoSource request), in concrete syntax; System
	// echoes a System request's row name; Entry names the extracted
	// entry function of a GoSource request.
	Type   string `json:"type,omitempty"`
	System string `json:"system,omitempty"`
	Entry  string `json:"entry,omitempty"`
	// Diagnostics are non-fatal extraction findings of a GoSource
	// request (e.g. shadowed-mailbox warnings), positioned file:line.
	Diagnostics []string     `json:"diagnostics,omitempty"`
	Results     []resultJSON `json:"results"`
	// DurationMS is the whole request's wall-clock time.
	DurationMS float64 `json:"duration_ms"`
}

type resultJSON struct {
	Property string `json:"property"`
	Kind     string `json:"kind"`
	Holds    bool   `json:"holds"`
	States   int    `json:"states"`
	// StatesReduced is the bisimulation-quotient block count the checker
	// ran on when the request selected a reduction (0 = no Reduce stage,
	// e.g. reduction off, ev-usage, a trivially-true formula, or an
	// early-exit search).
	StatesReduced int `json:"states_reduced,omitempty"`
	// StatesExplored is the number of states the engine actually visited
	// when exploration-time symmetry reduction was in effect: orbit
	// representatives, each standing for a whole equivalence class of the
	// States count above. Absent (0) when it equals States — i.e. no
	// symmetry was requested or none was found.
	StatesExplored int `json:"states_explored,omitempty"`
	// OrbitRatio is States / StatesExplored (≥ 1), the per-property
	// collapse factor of the symmetry mode; absent when no symmetry
	// engaged.
	OrbitRatio float64 `json:"orbit_ratio,omitempty"`
	// PartialOrder reports that ample-set partial-order reduction was in
	// effect for this property: States and StatesExplored both count the
	// reduced space (the full interleaving count is never computed).
	PartialOrder bool `json:"partial_order,omitempty"`
	// Expanded is set under early exit: how many of the discovered
	// states were materialised before the search concluded.
	Expanded        int     `json:"expanded,omitempty"`
	EarlyExit       bool    `json:"early_exit,omitempty"`
	ProductStates   int     `json:"product_states"`
	AutomatonStates int     `json:"automaton_states"`
	DurationMS      float64 `json:"duration_ms"`
	// Witness is the replay-validated counterexample lasso of a FAIL
	// (absent for PASS and for ev-usage failures, which are existential
	// and have no single-run witness).
	Witness *effpi.WitnessJSON `json:"witness,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Kind classifies the failure: bad-request, parse, type, bound,
	// timeout, saturated, draining, cancelled, not-found, internal.
	Kind string `json:"kind"`
}

// ---- handlers --------------------------------------------------------

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"uptime_ms": time.Since(s.start).Milliseconds(),
	})
}

// handleReadyz is the readiness probe — deliberately distinct from
// /healthz: a saturated or draining server is alive (keep it in the
// process group) but should not receive new traffic (take it out of the
// load balancer).
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	queued, running, depth, capacity, draining := s.engine.counts()
	ready := !draining && depth < capacity
	body := map[string]any{
		"ready":          ready,
		"queue_depth":    depth,
		"queue_capacity": capacity,
		"jobs_queued":    queued,
		"jobs_running":   running,
	}
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
		if draining {
			body["reason"] = "draining"
		} else {
			body["reason"] = "saturated"
		}
	}
	s.writeJSON(w, status, body)
}

// handleMetrics serves the expvar counters plus point-in-time workspace
// and queue gauges as one flat JSON object, built by marshalling a map
// (sorted keys) — never by hand-assembling JSON text.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.ws.CacheStats()
	queued, running, depth, capacity, draining := s.engine.counts()
	out := make(map[string]any, 64)
	s.metrics.Do(func(kv expvar.KeyValue) {
		if v, ok := kv.Value.(*expvar.Int); ok {
			out[kv.Key] = v.Value()
			return
		}
		// Every metric today is an *expvar.Int; a future non-Int var
		// still round-trips through its JSON representation.
		out[kv.Key] = json.RawMessage(kv.Value.String())
	})
	// Derived gauge: fleet-wide states-checked shrink factor across every
	// reduced property so far (1.0 until a reduction has run).
	ratio := 1.0
	if q := s.reducedStatesQuotient.Value(); q > 0 {
		ratio = float64(s.reducedStatesFull.Value()) / float64(q)
	}
	out["reduction_ratio"] = ratio
	// Derived gauge: fleet-wide orbit collapse factor across every
	// symmetric property so far (1.0 until symmetry has engaged).
	orbit := 1.0
	if e := s.symmetryStatesExplored.Value(); e > 0 {
		orbit = float64(s.symmetryStatesCovered.Value()) / float64(e)
	}
	out["orbit_ratio"] = orbit
	out["cache_caches"] = st.Caches
	out["cache_memos"] = st.Memos
	out["cache_evictions"] = st.Evictions
	out["uptime_ms"] = time.Since(s.start).Milliseconds()
	out["queue_depth"] = depth
	out["queue_capacity"] = capacity
	out["jobs_queued"] = queued
	out["jobs_running"] = running
	// ready as 0/1 keeps the document uniformly numeric.
	ready := int64(1)
	if draining || depth == capacity {
		ready = 0
	}
	out["ready"] = ready

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		s.encodeFailures.Add(1)
		log.Printf("effpid: encoding /metrics: %v", err)
		s.writeError(w, http.StatusInternalServerError, "internal", errors.New("encoding metrics"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(append(buf, '\n')); err != nil {
		s.encodeFailures.Add(1)
		log.Printf("effpid: writing /metrics: %v", err)
	}
}

// decodeVerifyRequest decodes and shape-validates a verification
// request and resolves its effective deadline; admission-level cost
// caps (max_states, timeout) are enforced here, before anything is
// queued. On failure the error response has been written.
func (s *server) decodeVerifyRequest(w http.ResponseWriter, r *http.Request) (*verifyRequest, time.Duration, bool) {
	var req verifyRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad-request", fmt.Errorf("decoding request body: %w", err))
		return nil, 0, false
	}
	// One JSON value per request: a second value after the first
	// ({"system":"x"}{"system":"y"}) is a malformed body, not two
	// requests — without this check the trailing bytes were silently
	// discarded.
	if dec.More() {
		s.writeError(w, http.StatusBadRequest, "parse", errors.New("request body has trailing data after the JSON object"))
		return nil, 0, false
	}
	set := 0
	for _, v := range []string{req.Source, req.System, req.GoSource} {
		if v != "" {
			set++
		}
	}
	if set != 1 {
		s.writeError(w, http.StatusBadRequest, "bad-request", errors.New("exactly one of \"source\", \"system\" and \"go_source\" must be set"))
		return nil, 0, false
	}
	if s.maxStatesCap > 0 && req.MaxStates > s.maxStatesCap {
		s.writeError(w, http.StatusBadRequest, "bad-request",
			fmt.Errorf("max_states %d exceeds the server's cap of %d", req.MaxStates, s.maxStatesCap))
		return nil, 0, false
	}
	timeout := s.defaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.maxTimeout > 0 && timeout > s.maxTimeout {
		timeout = s.maxTimeout
	}
	return &req, timeout, true
}

// rejectSubmit maps an admission failure onto the wire: 429 with a
// Retry-After header for saturation, 503 for a draining server.
func (s *server) rejectSubmit(w http.ResponseWriter, err error) {
	var sat *errSaturated
	switch {
	case errors.As(err, &sat):
		w.Header().Set("Retry-After", strconv.Itoa(sat.RetryAfter))
		s.writeError(w, http.StatusTooManyRequests, "saturated", err)
	case errors.Is(err, errDraining):
		s.writeError(w, http.StatusServiceUnavailable, "draining", err)
	default:
		s.writeError(w, http.StatusInternalServerError, "internal", err)
	}
}

// handleVerify is the synchronous path, rebuilt as submit-and-wait
// through the job queue: it shares one admission policy with the async
// API, so a saturated server answers 429 here too instead of piling up
// unbounded explorations.
func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	start := time.Now()

	req, timeout, ok := s.decodeVerifyRequest(w, r)
	if !ok {
		return
	}
	// The job's base context is the request context: a dropped client
	// cancels a running job and makes a queued one be skipped unstarted.
	j, err := s.engine.submit(req, r.Context(), timeout)
	if err != nil {
		s.rejectSubmit(w, err)
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// Client gone; the engine observes the same context and winds
		// the job down. Nothing useful can be written.
		return
	}
	resp, status, kind, errMsg, state := s.engine.result(j)
	if state == jobDone {
		resp.DurationMS = float64(time.Since(start).Microseconds()) / 1000
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	s.writeError(w, status, kind, errors.New(errMsg))
}

// verify resolves the request into a session + property list, runs the
// batch, and assembles the response. The returned status/kind classify
// a non-nil error for the wire. progress, when non-nil, receives the
// session's streaming events (the job engine feeds them into the job's
// progress snapshot).
func (s *server) verify(ctx context.Context, req *verifyRequest, progress func(effpi.Event)) (*verifyResponse, int, string, error) {
	reduction := effpi.ReduceOff
	if req.Reduction != "" {
		var err error
		if reduction, err = effpi.ParseReduction(req.Reduction); err != nil {
			return nil, http.StatusBadRequest, "bad-request", err
		}
	}
	symmetry := effpi.SymmetryOff
	if req.Symmetry != "" {
		var err error
		if symmetry, err = effpi.ParseSymmetry(req.Symmetry); err != nil {
			return nil, http.StatusBadRequest, "bad-request", err
		}
	}
	partialOrder := effpi.PartialOrderOff
	if req.PartialOrder != "" {
		var err error
		if partialOrder, err = effpi.ParsePartialOrder(req.PartialOrder); err != nil {
			return nil, http.StatusBadRequest, "bad-request", err
		}
	}
	opts := []effpi.Option{
		effpi.WithMaxStates(pick(req.MaxStates, s.maxStates)),
		effpi.WithParallelism(pick(req.Parallelism, s.parallelism)),
		effpi.WithEarlyExit(req.EarlyExit),
		effpi.WithReduction(reduction),
		effpi.WithSymmetry(symmetry),
		effpi.WithPartialOrder(partialOrder),
	}
	if progress != nil {
		opts = append(opts, effpi.WithProgress(progress))
	}

	var (
		sess  *effpi.Session
		props []effpi.Property
		resp  = &verifyResponse{}
		smap  *effpi.SourceMap
		err   error
	)
	switch {
	case req.GoSource != "":
		if len(req.Properties) == 0 {
			return nil, http.StatusBadRequest, "bad-request", errors.New("a go_source request needs at least one property")
		}
		if len(req.Binds) > 0 {
			return nil, http.StatusBadRequest, "bad-request", errors.New("binds are not applicable to a go_source request (the environment is extracted)")
		}
		ext, err := effpi.ExtractGoSource("request.go", req.GoSource)
		if err != nil {
			return nil, http.StatusBadRequest, "parse", err
		}
		sys, diags, selErr := selectEntry(ext, req.Entry)
		resp.Diagnostics = diags
		if selErr != nil {
			return nil, http.StatusUnprocessableEntity, "type", selErr
		}
		sess, err = s.ws.NewSessionFromGo(sys, opts...)
		if err != nil {
			return nil, http.StatusBadRequest, "bad-request", err
		}
		smap = sys.Map
		resp.Entry = sys.Name
		resp.Type = effpi.FormatType(sys.Type)
	case req.Source != "":
		// Shape validation first: a structurally invalid request must be
		// a stable 400, not whichever expensive stage fails first.
		if len(req.Properties) == 0 {
			return nil, http.StatusBadRequest, "bad-request", errors.New("a source request needs at least one property")
		}
		for _, b := range req.Binds {
			opts = append(opts, effpi.WithBind(b.Name, b.Type))
		}
		sess, err = s.ws.NewSession(req.Source, opts...)
		if err != nil {
			return nil, http.StatusBadRequest, "parse", err
		}
		t, err := sess.Check(ctx)
		if err != nil {
			return nil, http.StatusUnprocessableEntity, "type", err
		}
		resp.Type = effpi.FormatType(t)
	default:
		row, ok := effpi.BenchSystemByName(req.System)
		if !ok {
			return nil, http.StatusNotFound, "bad-request", fmt.Errorf("unknown benchmark system %q", req.System)
		}
		if len(req.Binds) > 0 {
			return nil, http.StatusBadRequest, "bad-request", errors.New("binds are not applicable to a system request")
		}
		sess, err = s.ws.NewSessionFromType(row.Env, row.Type, opts...)
		if err != nil {
			return nil, http.StatusBadRequest, "bad-request", err
		}
		resp.System = row.Name
		if len(req.Properties) == 0 {
			props = append(props, row.Props...)
		}
	}
	for _, p := range req.Properties {
		prop, err := effpi.PropertyFromSpec(p.Kind, p.Channels, p.From, p.To, !p.Open)
		if err != nil {
			return nil, http.StatusBadRequest, "bad-request", err
		}
		props = append(props, prop)
	}

	outs, err := sess.VerifyAll(ctx, props...)
	if err != nil {
		status, kind := s.classify(err)
		return nil, status, kind, err
	}
	for _, o := range outs {
		res := resultJSON{
			Property:        o.Property.String(),
			Kind:            o.Property.Kind.String(),
			Holds:           o.Holds,
			States:          o.States,
			StatesReduced:   o.ReducedStates,
			Expanded:        o.Expanded,
			EarlyExit:       o.EarlyExit,
			ProductStates:   o.ProductStates,
			AutomatonStates: o.AutomatonStates,
			DurationMS:      float64(o.Duration.Microseconds()) / 1000,
		}
		if o.ReducedStates > 0 {
			s.reducedProps.Add(1)
			s.reducedStatesFull.Add(int64(o.States))
			s.reducedStatesQuotient.Add(int64(o.ReducedStates))
		}
		if o.StatesExplored > 0 && o.StatesExplored < o.States {
			res.StatesExplored = o.StatesExplored
			res.OrbitRatio = float64(o.States) / float64(o.StatesExplored)
			s.symmetricProps.Add(1)
			s.symmetryStatesCovered.Add(int64(o.States))
			s.symmetryStatesExplored.Add(int64(o.StatesExplored))
		}
		if o.PartialOrder {
			res.PartialOrder = true
			res.StatesExplored = o.StatesExplored
			s.porProps.Add(1)
			s.porStatesExplored.Add(int64(o.StatesExplored))
		}
		if o.Holds {
			s.pass.Add(1)
		} else {
			s.fail.Add(1)
			if o.Property.Kind != effpi.EventualOutput {
				w, werr := effpi.WitnessToJSONMapped(o, smap)
				if werr != nil {
					// A FAIL whose witness does not replay means the checker
					// lied; that is an internal error, not a verdict.
					return nil, http.StatusInternalServerError, "internal", werr
				}
				res.Witness = w
			}
		}
		resp.Results = append(resp.Results, res)
	}
	return resp, 0, "", nil
}

// selectEntry resolves a go_source extraction to the one entry to
// verify: fatal diagnostics refuse the request (they are the error),
// non-fatal ones travel as response diagnostics; with no explicit
// entry name, exactly one extracted entry must exist.
func selectEntry(ext *effpi.GoExtraction, entry string) (*effpi.GoSystem, []string, error) {
	var diags []string
	for _, d := range ext.Diagnostics {
		if d.Fatal {
			return nil, diags, fmt.Errorf("extraction refused: %s", d)
		}
		diags = append(diags, d.String())
	}
	if entry != "" {
		for _, sys := range ext.Systems {
			if sys.Name == entry {
				return sys, diags, nil
			}
		}
		return nil, diags, fmt.Errorf("entry %q not found among the extracted entries", entry)
	}
	switch len(ext.Systems) {
	case 0:
		return nil, diags, errors.New("go_source defines no protocol entry (want func Name() runtime.Proc)")
	case 1:
		return ext.Systems[0], diags, nil
	}
	names := make([]string, len(ext.Systems))
	for i, sys := range ext.Systems {
		names[i] = sys.Name
	}
	return nil, diags, fmt.Errorf("go_source defines %d entries (%v); set \"entry\" to pick one", len(ext.Systems), names)
}

// classify maps a verification error to wire status and kind.
func (s *server) classify(err error) (status int, kind string) {
	var bound *effpi.BoundExceededError
	var typeErr *effpi.TypeError
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.cancelled.Add(1)
		return http.StatusGatewayTimeout, "timeout"
	case errors.As(err, &bound):
		return http.StatusUnprocessableEntity, "bound"
	case errors.As(err, &typeErr):
		return http.StatusUnprocessableEntity, "type"
	}
	return http.StatusInternalServerError, "internal"
}

// writeError is the single counting point for failed requests, so
// failures_total covers every error kind exactly once.
func (s *server) writeError(w http.ResponseWriter, status int, kind string, err error) {
	s.failures.Add(1)
	s.writeJSON(w, status, errorResponse{Error: err.Error(), Kind: kind})
}

// writeJSON writes v as the response body. Encode failures cannot change
// the already-written status, but they are no longer silent: each one is
// logged and counted (encode_failures_total).
func (s *server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		s.encodeFailures.Add(1)
		log.Printf("effpid: encoding %T response: %v", v, err)
	}
}

// pick returns the request value when set, the server default otherwise.
func pick(req, def int) int {
	if req != 0 {
		return req
	}
	return def
}
