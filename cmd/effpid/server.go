package main

// HTTP layer of effpid: one long-lived effpi.Workspace serves every
// request, so concurrent and repeated verifications share the interner
// and transition memos (with the workspace's eviction budget keeping the
// resident more bounded). The handler set is deliberately small:
//
//	POST /v1/verify   verify properties of a program or benchmark system
//	GET  /healthz     liveness probe
//	GET  /metrics     expvar counters + workspace cache stats (JSON)
//
// Verdicts and witnesses are schedule-independent: the engine guarantees
// byte-identical results at any parallelism and under any interleaving
// of concurrent identical requests, so replaying a request stream always
// reproduces its responses (modulo the duration fields, which are
// wall-clock measurements). Witness structure (state ids, label indices)
// is additionally independent of what else warmed the shared caches;
// only the *rendered representative types* inside a witness can pick an
// ≡-equivalent spelling first interned by a sibling workload sharing the
// same environment (see DESIGN.md, workspace sharing).

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"effpi"
)

// server carries the shared workspace, the per-request limits, and the
// expvar counter set. Counters live in an unregistered expvar.Map so
// multiple servers (tests) can coexist in one process.
type server struct {
	ws *effpi.Workspace

	defaultTimeout time.Duration // applied when a request names none
	maxTimeout     time.Duration // hard cap on requested timeouts
	maxStates      int           // default exploration bound
	parallelism    int           // default worker count (0 = GOMAXPROCS)
	pprof          bool          // serve /debug/pprof/ (opt-in)

	start   time.Time
	metrics *expvar.Map
	// Counter handles into metrics (expvar.Map lookups allocate).
	requests, failures, pass, fail, cancelled, inflight *expvar.Int
	// Reduction accounting: how many properties ran with the Reduce
	// stage, and the cumulative concrete/quotient state counts they saw —
	// /metrics derives the fleet-wide reduction ratio from the pair.
	reducedProps, reducedStatesFull, reducedStatesQuotient *expvar.Int
	// Symmetry accounting: how many properties were checked on orbit
	// representatives, and the cumulative covered/explored state counts —
	// /metrics derives the fleet-wide orbit ratio from the pair.
	symmetricProps, symmetryStatesCovered, symmetryStatesExplored *expvar.Int
}

type serverConfig struct {
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	maxStates      int
	parallelism    int
	// pprof exposes the Go runtime profiling endpoints under
	// /debug/pprof/. Off by default: the profiles leak goroutine stacks
	// and heap contents, which a verification service should not serve
	// unless its operator asked for them.
	pprof bool
}

func newServer(ws *effpi.Workspace, cfg serverConfig) *server {
	s := &server{
		ws:             ws,
		defaultTimeout: cfg.defaultTimeout,
		maxTimeout:     cfg.maxTimeout,
		maxStates:      cfg.maxStates,
		parallelism:    cfg.parallelism,
		pprof:          cfg.pprof,
		start:          time.Now(),
		metrics:        new(expvar.Map).Init(),
	}
	newInt := func(name string) *expvar.Int {
		v := new(expvar.Int)
		s.metrics.Set(name, v)
		return v
	}
	s.requests = newInt("requests_total")
	s.failures = newInt("failures_total")
	s.pass = newInt("verdicts_pass_total")
	s.fail = newInt("verdicts_fail_total")
	s.cancelled = newInt("cancelled_total")
	s.inflight = newInt("requests_inflight")
	s.reducedProps = newInt("reduced_properties_total")
	s.reducedStatesFull = newInt("reduction_states_full_total")
	s.reducedStatesQuotient = newInt("reduction_states_reduced_total")
	s.symmetricProps = newInt("symmetric_properties_total")
	s.symmetryStatesCovered = newInt("symmetry_states_covered_total")
	s.symmetryStatesExplored = newInt("symmetry_states_explored_total")
	return s
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.pprof {
		// Explicit registrations rather than net/http/pprof's package
		// side effect: the server never serves http.DefaultServeMux, so
		// the profiles exist only when the operator opted in.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// ---- wire shapes -----------------------------------------------------

// verifyRequest is the POST /v1/verify body. Exactly one of Source
// (an .epi program, typed under Binds) and System (a benchmark row name
// from Fig. 9 / the large sweep) must be set.
type verifyRequest struct {
	Source string     `json:"source,omitempty"`
	System string     `json:"system,omitempty"`
	Binds  []bindJSON `json:"binds,omitempty"`
	// Properties to verify. A System request may omit them to run the
	// row's own six Fig. 9 properties.
	Properties []propJSON `json:"properties,omitempty"`
	// MaxStates bounds each exploration (0 = server default).
	MaxStates int `json:"max_states,omitempty"`
	// Parallelism is the exploration worker count (0 = server default;
	// verdicts are identical at any value).
	Parallelism int `json:"parallelism,omitempty"`
	// EarlyExit selects on-the-fly checking where the schema allows it.
	EarlyExit bool `json:"early_exit,omitempty"`
	// Reduction selects the state-space reduction stage: "off" (default)
	// or "strong" (bisimulation quotienting; verdicts identical, FAIL
	// witnesses lifted to concrete runs and replay-validated).
	Reduction string `json:"reduction,omitempty"`
	// Symmetry selects exploration-time symmetry reduction: "off"
	// (default) or "on" (orbit representatives under the system's
	// channel-bundle symmetry group; verdicts identical, FAIL witnesses
	// permutation-lifted to concrete runs and replay-validated).
	Symmetry string `json:"symmetry,omitempty"`
	// TimeoutMS caps this request's wall-clock (0 = server default;
	// capped by the server's -max-timeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

type bindJSON struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// propJSON is the structured property shape (see
// effpi.PropertyFromSpec; the CLIs use the flag-string twin
// PropertyFromFlags).
type propJSON struct {
	Kind     string   `json:"kind"`
	Channels []string `json:"channels,omitempty"`
	From     string   `json:"from,omitempty"`
	To       string   `json:"to,omitempty"`
	// Open selects open-process mode (default: closed composition, the
	// right mode for self-contained systems).
	Open bool `json:"open,omitempty"`
}

type verifyResponse struct {
	// Type is the inferred λπ⩽ type of a Source request, in concrete
	// syntax; System echoes a System request's row name.
	Type    string       `json:"type,omitempty"`
	System  string       `json:"system,omitempty"`
	Results []resultJSON `json:"results"`
	// DurationMS is the whole request's wall-clock time.
	DurationMS float64 `json:"duration_ms"`
}

type resultJSON struct {
	Property string `json:"property"`
	Kind     string `json:"kind"`
	Holds    bool   `json:"holds"`
	States   int    `json:"states"`
	// StatesReduced is the bisimulation-quotient block count the checker
	// ran on when the request selected a reduction (0 = no Reduce stage,
	// e.g. reduction off, ev-usage, a trivially-true formula, or an
	// early-exit search).
	StatesReduced int `json:"states_reduced,omitempty"`
	// StatesExplored is the number of states the engine actually visited
	// when exploration-time symmetry reduction was in effect: orbit
	// representatives, each standing for a whole equivalence class of the
	// States count above. Absent (0) when it equals States — i.e. no
	// symmetry was requested or none was found.
	StatesExplored int `json:"states_explored,omitempty"`
	// OrbitRatio is States / StatesExplored (≥ 1), the per-property
	// collapse factor of the symmetry mode; absent when no symmetry
	// engaged.
	OrbitRatio float64 `json:"orbit_ratio,omitempty"`
	// Expanded is set under early exit: how many of the discovered
	// states were materialised before the search concluded.
	Expanded        int     `json:"expanded,omitempty"`
	EarlyExit       bool    `json:"early_exit,omitempty"`
	ProductStates   int     `json:"product_states"`
	AutomatonStates int     `json:"automaton_states"`
	DurationMS      float64 `json:"duration_ms"`
	// Witness is the replay-validated counterexample lasso of a FAIL
	// (absent for PASS and for ev-usage failures, which are existential
	// and have no single-run witness).
	Witness *effpi.WitnessJSON `json:"witness,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Kind classifies the failure: bad-request, parse, type, bound,
	// timeout, internal.
	Kind string `json:"kind"`
}

// ---- handlers --------------------------------------------------------

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"uptime_ms": time.Since(s.start).Milliseconds(),
	})
}

// handleMetrics serves the expvar counters plus point-in-time workspace
// gauges as one flat JSON object.
func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := s.ws.CacheStats()
	w.Header().Set("Content-Type", "application/json")
	var b strings.Builder
	b.WriteString("{")
	first := true
	s.metrics.Do(func(kv expvar.KeyValue) {
		if !first {
			b.WriteString(",")
		}
		first = false
		fmt.Fprintf(&b, "%q: %s", kv.Key, kv.Value.String())
	})
	// Derived gauge: fleet-wide states-checked shrink factor across every
	// reduced property so far (1.0 until a reduction has run).
	ratio := 1.0
	if q := s.reducedStatesQuotient.Value(); q > 0 {
		ratio = float64(s.reducedStatesFull.Value()) / float64(q)
	}
	fmt.Fprintf(&b, ",%q: %.3f", "reduction_ratio", ratio)
	// Derived gauge: fleet-wide orbit collapse factor across every
	// symmetric property so far (1.0 until symmetry has engaged).
	orbit := 1.0
	if e := s.symmetryStatesExplored.Value(); e > 0 {
		orbit = float64(s.symmetryStatesCovered.Value()) / float64(e)
	}
	fmt.Fprintf(&b, ",%q: %.3f", "orbit_ratio", orbit)
	fmt.Fprintf(&b, ",%q: %d", "cache_caches", st.Caches)
	fmt.Fprintf(&b, ",%q: %d", "cache_memos", st.Memos)
	fmt.Fprintf(&b, ",%q: %d", "cache_evictions", st.Evictions)
	fmt.Fprintf(&b, ",%q: %d", "uptime_ms", time.Since(s.start).Milliseconds())
	b.WriteString("}\n")
	fmt.Fprint(w, b.String())
}

func (s *server) handleVerify(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	start := time.Now()

	var req verifyRequest
	r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad-request", fmt.Errorf("decoding request body: %w", err))
		return
	}
	if (req.Source == "") == (req.System == "") {
		s.writeError(w, http.StatusBadRequest, "bad-request", errors.New("exactly one of \"source\" and \"system\" must be set"))
		return
	}

	// Per-request deadline: the requested timeout, capped; the server
	// default otherwise. The request context also cancels on client
	// disconnect, so an abandoned request stops exploring.
	timeout := s.defaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.maxTimeout > 0 && timeout > s.maxTimeout {
		timeout = s.maxTimeout
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	resp, status, kind, err := s.verify(ctx, &req)
	if err != nil {
		s.writeError(w, status, kind, err)
		return
	}
	resp.DurationMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// verify resolves the request into a session + property list, runs the
// batch, and assembles the response. The returned status/kind classify
// a non-nil error for the wire.
func (s *server) verify(ctx context.Context, req *verifyRequest) (*verifyResponse, int, string, error) {
	reduction := effpi.ReduceOff
	if req.Reduction != "" {
		var err error
		if reduction, err = effpi.ParseReduction(req.Reduction); err != nil {
			return nil, http.StatusBadRequest, "bad-request", err
		}
	}
	symmetry := effpi.SymmetryOff
	if req.Symmetry != "" {
		var err error
		if symmetry, err = effpi.ParseSymmetry(req.Symmetry); err != nil {
			return nil, http.StatusBadRequest, "bad-request", err
		}
	}
	opts := []effpi.Option{
		effpi.WithMaxStates(pick(req.MaxStates, s.maxStates)),
		effpi.WithParallelism(pick(req.Parallelism, s.parallelism)),
		effpi.WithEarlyExit(req.EarlyExit),
		effpi.WithReduction(reduction),
		effpi.WithSymmetry(symmetry),
	}

	var (
		sess  *effpi.Session
		props []effpi.Property
		resp  = &verifyResponse{}
		err   error
	)
	switch {
	case req.Source != "":
		// Shape validation first: a structurally invalid request must be
		// a stable 400, not whichever expensive stage fails first.
		if len(req.Properties) == 0 {
			return nil, http.StatusBadRequest, "bad-request", errors.New("a source request needs at least one property")
		}
		for _, b := range req.Binds {
			opts = append(opts, effpi.WithBind(b.Name, b.Type))
		}
		sess, err = s.ws.NewSession(req.Source, opts...)
		if err != nil {
			return nil, http.StatusBadRequest, "parse", err
		}
		t, err := sess.Check(ctx)
		if err != nil {
			return nil, http.StatusUnprocessableEntity, "type", err
		}
		resp.Type = effpi.FormatType(t)
	default:
		row, ok := effpi.BenchSystemByName(req.System)
		if !ok {
			return nil, http.StatusNotFound, "bad-request", fmt.Errorf("unknown benchmark system %q", req.System)
		}
		if len(req.Binds) > 0 {
			return nil, http.StatusBadRequest, "bad-request", errors.New("binds are not applicable to a system request")
		}
		sess, err = s.ws.NewSessionFromType(row.Env, row.Type, opts...)
		if err != nil {
			return nil, http.StatusBadRequest, "bad-request", err
		}
		resp.System = row.Name
		if len(req.Properties) == 0 {
			props = append(props, row.Props...)
		}
	}
	for _, p := range req.Properties {
		prop, err := effpi.PropertyFromSpec(p.Kind, p.Channels, p.From, p.To, !p.Open)
		if err != nil {
			return nil, http.StatusBadRequest, "bad-request", err
		}
		props = append(props, prop)
	}

	outs, err := sess.VerifyAll(ctx, props...)
	if err != nil {
		status, kind := s.classify(err)
		return nil, status, kind, err
	}
	for _, o := range outs {
		res := resultJSON{
			Property:        o.Property.String(),
			Kind:            o.Property.Kind.String(),
			Holds:           o.Holds,
			States:          o.States,
			StatesReduced:   o.ReducedStates,
			Expanded:        o.Expanded,
			EarlyExit:       o.EarlyExit,
			ProductStates:   o.ProductStates,
			AutomatonStates: o.AutomatonStates,
			DurationMS:      float64(o.Duration.Microseconds()) / 1000,
		}
		if o.ReducedStates > 0 {
			s.reducedProps.Add(1)
			s.reducedStatesFull.Add(int64(o.States))
			s.reducedStatesQuotient.Add(int64(o.ReducedStates))
		}
		if o.StatesExplored > 0 && o.StatesExplored < o.States {
			res.StatesExplored = o.StatesExplored
			res.OrbitRatio = float64(o.States) / float64(o.StatesExplored)
			s.symmetricProps.Add(1)
			s.symmetryStatesCovered.Add(int64(o.States))
			s.symmetryStatesExplored.Add(int64(o.StatesExplored))
		}
		if o.Holds {
			s.pass.Add(1)
		} else {
			s.fail.Add(1)
			if o.Property.Kind != effpi.EventualOutput {
				w, werr := effpi.WitnessToJSON(o)
				if werr != nil {
					// A FAIL whose witness does not replay means the checker
					// lied; that is an internal error, not a verdict.
					return nil, http.StatusInternalServerError, "internal", werr
				}
				res.Witness = w
			}
		}
		resp.Results = append(resp.Results, res)
	}
	return resp, 0, "", nil
}

// classify maps a verification error to wire status and kind.
func (s *server) classify(err error) (status int, kind string) {
	var bound *effpi.BoundExceededError
	var typeErr *effpi.TypeError
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.cancelled.Add(1)
		return http.StatusGatewayTimeout, "timeout"
	case errors.As(err, &bound):
		return http.StatusUnprocessableEntity, "bound"
	case errors.As(err, &typeErr):
		return http.StatusUnprocessableEntity, "type"
	}
	return http.StatusInternalServerError, "internal"
}

// writeError is the single counting point for failed requests, so
// failures_total covers every error kind exactly once.
func (s *server) writeError(w http.ResponseWriter, status int, kind string, err error) {
	s.failures.Add(1)
	writeJSON(w, status, errorResponse{Error: err.Error(), Kind: kind})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// pick returns the request value when set, the server default otherwise.
func pick(req, def int) int {
	if req != 0 {
		return req
	}
	return def
}
