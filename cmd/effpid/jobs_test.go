package main

// Tests of the admission-controlled job engine: the async lifecycle,
// deterministic backpressure, dequeue-before-start cancellation, panic
// containment (job-level and HTTP-level), graceful drain, and the
// saturation torture run. Everything here runs in the package's -race
// CI step.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"effpi"
)

// Marker systems the test exec hooks intercept before the real engine
// sees them. They are not valid benchmark rows — production servers
// would answer 404 — so a hook that fails to intercept shows up loudly.
const (
	slowSystem  = "__slow__"
	fastSystem  = "__fast__"
	panicSystem = "__panic__"
)

// hookRecorder tracks which requests a test exec hook actually ran, so
// tests can assert a cancelled job never started.
type hookRecorder struct {
	mu   sync.Mutex
	seen []string
}

func (h *hookRecorder) record(name string) {
	h.mu.Lock()
	h.seen = append(h.seen, name)
	h.mu.Unlock()
}

func (h *hookRecorder) ran(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.seen {
		if s == name {
			return true
		}
	}
	return false
}

// gatedExec intercepts the marker systems: slowSystem blocks until
// release closes (announcing itself on started first), fastSystem
// returns immediately, panicSystem panics. Everything else delegates to
// the real verification engine.
func gatedExec(srv *server, rec *hookRecorder, started chan<- struct{}, release <-chan struct{}) execFunc {
	return func(ctx context.Context, req *verifyRequest, progress func(effpi.Event)) (*verifyResponse, int, string, error) {
		rec.record(req.System)
		switch req.System {
		case slowSystem:
			if started != nil {
				started <- struct{}{}
			}
			select {
			case <-release:
				return &verifyResponse{System: slowSystem}, 0, "", nil
			case <-ctx.Done():
				return nil, http.StatusGatewayTimeout, "timeout", ctx.Err()
			}
		case fastSystem:
			return &verifyResponse{System: fastSystem}, 0, "", nil
		case panicSystem:
			panic("injected failure in a verification stage")
		}
		return srv.verify(ctx, req, progress)
	}
}

func doJSON(t *testing.T, method, url, body string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, buf
}

func submitJob(t *testing.T, ts *httptest.Server, body string) (int, http.Header, jobJSON) {
	t.Helper()
	code, hdr, buf := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body)
	var j jobJSON
	if code == http.StatusAccepted {
		if err := json.Unmarshal(buf, &j); err != nil {
			t.Fatalf("job submit body: %v (%s)", err, buf)
		}
	}
	return code, hdr, j
}

func getJob(t *testing.T, ts *httptest.Server, id string) (int, jobJSON) {
	t.Helper()
	code, _, buf := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id, "")
	var j jobJSON
	if code == http.StatusOK {
		if err := json.Unmarshal(buf, &j); err != nil {
			t.Fatalf("job get body: %v (%s)", err, buf)
		}
	}
	return code, j
}

// pollJob polls until the job reaches any of the wanted states.
func pollJob(t *testing.T, ts *httptest.Server, id string, want ...string) jobJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, j := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("job %s: status %d while polling", id, code)
		}
		for _, w := range want {
			if j.State == w {
				return j
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %v in time", id, want)
	return jobJSON{}
}

func metricsMap(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	code, _, buf := doJSON(t, http.MethodGet, ts.URL+"/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d: %s", code, buf)
	}
	var m map[string]float64
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("/metrics not flat numeric JSON: %v (%s)", err, buf)
	}
	return m
}

// TestJobLifecycle: submit → 202 with id and Location → poll to done →
// the job's result is byte-identical (modulo wall-clock fields) to the
// synchronous /v1/verify response for the same request.
func TestJobLifecycle(t *testing.T) {
	ts := testServer(t, serverConfig{})
	row := effpi.Fig9Systems()[5] // Dining philos. (5, deadlock)
	body := fmt.Sprintf(`{"system": %q}`, row.Name)

	code, syncBuf := postVerify(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("sync run: status %d: %s", code, syncBuf)
	}
	want := canonicalise(t, syncBuf)

	code, hdr, j := submitJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", code)
	}
	if j.ID == "" || j.State != "queued" {
		t.Fatalf("submit view: %+v", j)
	}
	if loc := hdr.Get("Location"); loc != "/v1/jobs/"+j.ID {
		t.Errorf("Location header %q does not name the job", loc)
	}

	final := pollJob(t, ts, j.ID, "done")
	if final.Result == nil {
		t.Fatal("done job without result")
	}
	buf, err := json.Marshal(final.Result)
	if err != nil {
		t.Fatal(err)
	}
	if got := canonicalise(t, buf); got != want {
		t.Errorf("async result differs from sync response:\n%s\nvs\n%s", got, want)
	}
	if final.RunningMS <= 0 {
		t.Errorf("done job reports running_ms = %v", final.RunningMS)
	}

	// Cancelling a terminal job is a no-op.
	code, _, buf2 := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+j.ID, "")
	if code != http.StatusOK || !strings.Contains(string(buf2), `"state": "done"`) {
		t.Errorf("DELETE on a done job: status %d body %s", code, buf2)
	}

	m := metricsMap(t, ts)
	if m["jobs_done_total"] < 2 { // the sync request is a job too
		t.Errorf("jobs_done_total = %v, want >= 2", m["jobs_done_total"])
	}
	if m["latency_done_count"] < 2 {
		t.Errorf("latency_done_count = %v, want >= 2", m["latency_done_count"])
	}
}

// TestJobUnknownID: polling or cancelling an unknown id is a structured
// 404.
func TestJobUnknownID(t *testing.T) {
	ts := testServer(t, serverConfig{})
	for _, method := range []string{http.MethodGet, http.MethodDelete} {
		code, _, buf := doJSON(t, method, ts.URL+"/v1/jobs/nope", "")
		if code != http.StatusNotFound {
			t.Errorf("%s unknown job: status %d, want 404", method, code)
		}
		var e errorResponse
		if err := json.Unmarshal(buf, &e); err != nil || e.Kind != "not-found" {
			t.Errorf("%s unknown job: body %s", method, buf)
		}
	}
}

// TestSaturationBackpressure is the deterministic 429 test: a 1-worker,
// depth-2 server whose worker is pinned by a gated slow job admits
// exactly two more jobs and rejects everything else with 429 +
// Retry-After ≥ 1 — and a cancelled queued job never starts. Goroutine
// counts before and after bound the engine's footprint (no leak per
// flood).
func TestSaturationBackpressure(t *testing.T) {
	ts, srv := testServerWithSrv(t, serverConfig{workers: 1, queueDepth: 2})
	rec := &hookRecorder{}
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	srv.engine.setExecute(gatedExec(srv, rec, started, release))

	before := runtime.NumGoroutine()

	slow := fmt.Sprintf(`{"system": %q}`, slowSystem)
	// j1 occupies the worker...
	code, _, j1 := submitJob(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("j1: status %d", code)
	}
	<-started // ...confirmed running: the queue is now empty.
	// j2 and j3 fill the depth-2 queue.
	code, _, j2 := submitJob(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("j2: status %d", code)
	}
	code, _, j3 := submitJob(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("j3: status %d", code)
	}
	if _, j := getJob(t, ts, j2.ID); j.State != "queued" || j.QueuePosition != 1 {
		t.Errorf("j2 view: %+v, want queued at position 1", j)
	}
	if _, j := getJob(t, ts, j3.ID); j.State != "queued" || j.QueuePosition != 2 {
		t.Errorf("j3 view: %+v, want queued at position 2", j)
	}

	// The server is saturated: readiness flips, and every further
	// submission — async or sync — is a deterministic 429 whose
	// Retry-After is a usable whole number of seconds.
	rcode, _, rbuf := doJSON(t, http.MethodGet, ts.URL+"/readyz", "")
	if rcode != http.StatusServiceUnavailable || !strings.Contains(string(rbuf), `"reason": "saturated"`) {
		t.Errorf("/readyz while saturated: status %d body %s", rcode, rbuf)
	}
	const rejected = 5
	for i := 0; i < rejected; i++ {
		var code int
		var hdr http.Header
		var buf []byte
		if i%2 == 0 {
			code, hdr, buf = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", slow)
		} else {
			req, err := http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(slow))
			if err != nil {
				t.Fatal(err)
			}
			buf, _ = io.ReadAll(req.Body)
			req.Body.Close()
			code, hdr = req.StatusCode, req.Header
		}
		if code != http.StatusTooManyRequests {
			t.Fatalf("flood request %d: status %d, want 429 (%s)", i, code, buf)
		}
		ra, err := strconv.Atoi(hdr.Get("Retry-After"))
		if err != nil || ra < 1 {
			t.Errorf("flood request %d: Retry-After %q, want integer >= 1", i, hdr.Get("Retry-After"))
		}
		var e errorResponse
		if err := json.Unmarshal(buf, &e); err != nil || e.Kind != "saturated" {
			t.Errorf("flood request %d: body %s, want kind saturated", i, buf)
		}
	}

	// Cancel j3 while it is still queued: it must finalise as cancelled
	// and never reach the execution hook.
	code, _, buf := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+j3.ID, "")
	if code != http.StatusOK || !strings.Contains(string(buf), `"state": "cancelled"`) {
		t.Fatalf("cancel queued j3: status %d body %s", code, buf)
	}

	close(release)
	pollJob(t, ts, j1.ID, "done")
	pollJob(t, ts, j2.ID, "done")
	if j := pollJob(t, ts, j3.ID, "cancelled"); j.Error == nil || j.Error.Kind != "cancelled" {
		t.Errorf("cancelled j3 error: %+v", j.Error)
	}
	if rec.ran(slowSystem) && len(rec.seen) != 2 {
		t.Errorf("execution hook saw %d jobs (%v), want exactly 2 — the cancelled job must never start", len(rec.seen), rec.seen)
	}

	m := metricsMap(t, ts)
	if m["rejections_total"] != rejected {
		t.Errorf("rejections_total = %v, want %d", m["rejections_total"], rejected)
	}
	if m["retry_after_seconds"] < 1 {
		t.Errorf("retry_after_seconds = %v, want >= 1", m["retry_after_seconds"])
	}
	if hw := m["queue_high_water"]; hw > 2 {
		t.Errorf("queue_high_water = %v exceeds the configured depth 2", hw)
	}
	if m["jobs_cancelled_total"] != 1 {
		t.Errorf("jobs_cancelled_total = %v, want 1", m["jobs_cancelled_total"])
	}

	// No goroutine leak: once the flood is over and idle connections are
	// closed, the count returns to (about) where it started.
	http.DefaultClient.CloseIdleConnections()
	ts.Client().CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines: before flood %d, after %d — leak", before, runtime.NumGoroutine())
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRetryAfterEstimator pins the admission estimator's arithmetic:
// EWMA service time × jobs ahead / workers, rounded up, never below one
// second.
func TestRetryAfterEstimator(t *testing.T) {
	e := &jobEngine{queue: make(chan *job, 4), workers: 2, jobs: make(map[string]*job)}
	if got := e.retryAfterLocked(); got != 1 {
		t.Errorf("empty engine: retry %d, want the 1s floor", got)
	}
	// Three queued jobs at an observed 3 s/job over 2 workers: ceil(4.5).
	e.ewmaMS = 3000
	for i := 0; i < 3; i++ {
		e.queue <- &job{}
	}
	if got := e.retryAfterLocked(); got != 5 {
		t.Errorf("3 queued × 3000ms / 2 workers: retry %d, want 5", got)
	}
	// A running job counts toward the backlog.
	e.jobs["r"] = &job{state: jobRunning}
	if got := e.retryAfterLocked(); got != 6 {
		t.Errorf("3 queued + 1 running: retry %d, want 6", got)
	}
}

// TestPanicContainment is the crash-isolation acceptance test: a panic
// injected into one job's execution fails that job (kind internal,
// panic value and stack in the record), increments panics_total, and
// leaves the server and its shared caches fully intact — the identical
// real request before and after the panic returns byte-identical
// results.
func TestPanicContainment(t *testing.T) {
	ts, srv := testServerWithSrv(t, serverConfig{})
	rec := &hookRecorder{}
	srv.engine.setExecute(gatedExec(srv, rec, nil, nil))

	row := effpi.Fig9Systems()[5] // Dining philos. (5, deadlock): witnesses too
	body := fmt.Sprintf(`{"system": %q}`, row.Name)
	code, baseline := postVerify(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("baseline: status %d: %s", code, baseline)
	}

	code, _, j := submitJob(t, ts, fmt.Sprintf(`{"system": %q}`, panicSystem))
	if code != http.StatusAccepted {
		t.Fatalf("panic job submit: status %d", code)
	}
	final := pollJob(t, ts, j.ID, "failed")
	if final.Error == nil || final.Error.Kind != "internal" {
		t.Fatalf("panic job error: %+v, want kind internal", final.Error)
	}
	if !strings.Contains(final.Panic, "injected failure") {
		t.Errorf("panic value not in job record: %q", final.Panic)
	}
	if !strings.Contains(final.Stack, "gatedExec") {
		t.Errorf("stack trace not in job record (got %d bytes)", len(final.Stack))
	}

	m := metricsMap(t, ts)
	if m["panics_total"] != 1 {
		t.Errorf("panics_total = %v, want 1", m["panics_total"])
	}
	if m["jobs_failed_total"] != 1 {
		t.Errorf("jobs_failed_total = %v, want 1", m["jobs_failed_total"])
	}

	// The server keeps serving and the shared workspace reproduces the
	// pre-panic results bit for bit.
	code, after := postVerify(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("post-panic run: status %d: %s", code, after)
	}
	if canonicalise(t, after) != canonicalise(t, baseline) {
		t.Error("post-panic response differs from the baseline — the panic poisoned shared state")
	}
}

// TestHTTPPanicMiddleware: a panic inside any handler (here: a
// deliberately broken one) is contained by the middleware into a 500
// with kind internal and a counter increment — the listener survives.
func TestHTTPPanicMiddleware(t *testing.T) {
	srv := newServer(effpi.NewWorkspace(), serverConfig{defaultTimeout: time.Second})
	t.Cleanup(srv.Close)
	h := srv.recoverHTTP(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("marshalling bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/verify", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", rec.Code)
	}
	var e errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Kind != "internal" {
		t.Errorf("body %s, want kind internal", rec.Body.String())
	}
	if srv.httpPanics.Value() != 1 {
		t.Errorf("http_panics_total = %d, want 1", srv.httpPanics.Value())
	}
}

// TestGracefulDrain is graceful-shutdown v2 end to end: during a drain,
// readiness flips to not-ready, new submissions are rejected with 503,
// a still-queued job is cancelled with a clear error without ever
// starting, and the in-flight slow job finishes inside the window with
// its synchronous client receiving the full response.
func TestGracefulDrain(t *testing.T) {
	ts, srv := testServerWithSrv(t, serverConfig{workers: 1, queueDepth: 4})
	rec := &hookRecorder{}
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	srv.engine.setExecute(gatedExec(srv, rec, started, release))

	slow := fmt.Sprintf(`{"system": %q}`, slowSystem)
	// A synchronous in-flight request pinned on the gate...
	syncDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(slow))
		if err != nil {
			syncDone <- err
			return
		}
		defer resp.Body.Close()
		buf, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(buf), slowSystem) {
			syncDone <- fmt.Errorf("sync response during drain: status %d body %s", resp.StatusCode, buf)
			return
		}
		syncDone <- nil
	}()
	<-started
	// ...and one job still queued behind it.
	code, _, queued := submitJob(t, ts, slow)
	if code != http.StatusAccepted {
		t.Fatalf("queued job: status %d", code)
	}

	drained := make(chan struct{})
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		srv.drain(ctx)
		close(drained)
	}()

	// Readiness flips immediately; the drain itself is still waiting on
	// the running job.
	waitFor(t, 5*time.Second, func() bool {
		code, _, buf := doJSON(t, http.MethodGet, ts.URL+"/readyz", "")
		return code == http.StatusServiceUnavailable && strings.Contains(string(buf), `"reason": "draining"`)
	}, "readyz did not flip to draining")

	// New work is refused while draining.
	code, _, buf := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", slow)
	if code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503 (%s)", code, buf)
	}
	var e errorResponse
	if err := json.Unmarshal(buf, &e); err != nil || e.Kind != "draining" {
		t.Errorf("submit while draining: body %s, want kind draining", buf)
	}

	// The queued job was cancelled with a clear error and never started.
	j := pollJob(t, ts, queued.ID, "cancelled")
	if j.Error == nil || !strings.Contains(j.Error.Error, "draining") {
		t.Errorf("drained queued job error: %+v, want a message naming the drain", j.Error)
	}

	// The running job finishes inside the window; its client gets a 200.
	close(release)
	if err := <-syncDone; err != nil {
		t.Error(err)
	}
	select {
	case <-drained:
	case <-time.After(15 * time.Second):
		t.Fatal("drain did not complete after the running job finished")
	}
	if len(rec.seen) != 1 {
		t.Errorf("execution hook saw %v, want only the in-flight job — the drained queued job must never start", rec.seen)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestJobRetention: the completed-job store is size- and TTL-bounded —
// old terminal jobs age out of the polling window and become 404s.
func TestJobRetention(t *testing.T) {
	ts, srv := testServerWithSrv(t, serverConfig{retain: 2, retainTTL: time.Hour})
	rec := &hookRecorder{}
	srv.engine.setExecute(gatedExec(srv, rec, nil, nil))

	fast := fmt.Sprintf(`{"system": %q}`, fastSystem)
	var ids []string
	for i := 0; i < 3; i++ {
		code, _, j := submitJob(t, ts, fast)
		if code != http.StatusAccepted {
			t.Fatalf("job %d: status %d", i, code)
		}
		pollJob(t, ts, j.ID, "done")
		ids = append(ids, j.ID)
	}
	if code, _ := getJob(t, ts, ids[0]); code != http.StatusNotFound {
		t.Errorf("oldest job beyond the size bound: status %d, want 404", code)
	}
	if code, _ := getJob(t, ts, ids[2]); code != http.StatusOK {
		t.Errorf("newest job: status %d, want 200", code)
	}

	// And the TTL bound, on a second server with a tiny window.
	ts2, srv2 := testServerWithSrv(t, serverConfig{retain: 16, retainTTL: 30 * time.Millisecond})
	srv2.engine.setExecute(gatedExec(srv2, rec, nil, nil))
	code, _, j := submitJob(t, ts2, fast)
	if code != http.StatusAccepted {
		t.Fatalf("ttl job: status %d", code)
	}
	pollJob(t, ts2, j.ID, "done")
	waitFor(t, 5*time.Second, func() bool {
		code, _ := getJob(t, ts2, j.ID)
		return code == http.StatusNotFound
	}, "terminal job did not age out of the TTL-bounded store")
}

// TestReadyzFresh: an idle server is ready.
func TestReadyzFresh(t *testing.T) {
	ts := testServer(t, serverConfig{})
	code, _, buf := doJSON(t, http.MethodGet, ts.URL+"/readyz", "")
	if code != http.StatusOK || !strings.Contains(string(buf), `"ready": true`) {
		t.Errorf("/readyz on an idle server: status %d body %s", code, buf)
	}
}

// TestSaturationTorture is the acceptance flood: 4× capacity of mixed
// real requests against a small-worker server yields only {200, 202,
// 429}, every 429 carries Retry-After, the queue never grows past its
// depth, and after the flood the server still answers a fresh
// /v1/verify with a verdict byte-identical to the unloaded run.
func TestSaturationTorture(t *testing.T) {
	const (
		workers = 2
		depth   = 3
		flood   = 4 * (workers + depth)
	)
	ts := testServer(t, serverConfig{workers: workers, queueDepth: depth})
	rows := []string{
		"Dining philos. (4, deadlock)",
		"Ping-pong (6 pairs)",
		"Ring (10 elements)",
	}

	// Unloaded baselines, which also warm the shared caches the same way
	// any prior traffic would.
	baselines := make(map[string]string)
	for _, row := range rows {
		code, buf := postVerify(t, ts, fmt.Sprintf(`{"system": %q}`, row))
		if code != http.StatusOK {
			t.Fatalf("baseline %s: status %d: %s", row, code, buf)
		}
		baselines[row] = canonicalise(t, buf)
	}

	type result struct {
		code  int
		retry string
		jobID string
		body  []byte
	}
	results := make([]result, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"system": %q}`, rows[i%len(rows)])
			url, method := ts.URL+"/v1/verify", http.MethodPost
			if i%2 == 0 {
				url = ts.URL + "/v1/jobs"
			}
			req, err := http.NewRequest(method, url, strings.NewReader(body))
			if err != nil {
				results[i] = result{code: -1}
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				results[i] = result{code: -1}
				return
			}
			defer resp.Body.Close()
			buf, _ := io.ReadAll(resp.Body)
			r := result{code: resp.StatusCode, retry: resp.Header.Get("Retry-After"), body: buf}
			if resp.StatusCode == http.StatusAccepted {
				var j jobJSON
				if json.Unmarshal(buf, &j) == nil {
					r.jobID = j.ID
				}
			}
			results[i] = r
		}(i)
	}
	wg.Wait()

	admitted := 0
	for i, r := range results {
		switch r.code {
		case http.StatusOK, http.StatusAccepted:
			admitted++
		case http.StatusTooManyRequests:
			if ra, err := strconv.Atoi(r.retry); err != nil || ra < 1 {
				t.Errorf("flood %d: 429 without usable Retry-After (%q)", i, r.retry)
			}
		default:
			t.Errorf("flood %d: status %d outside {200, 202, 429}: %s", i, r.code, r.body)
		}
	}
	if admitted == 0 {
		t.Error("flood admitted nothing — backpressure rejected even within-capacity load")
	}

	// Every admitted async job reaches a terminal state.
	for _, r := range results {
		if r.jobID != "" {
			pollJob(t, ts, r.jobID, "done", "failed", "cancelled")
		}
	}

	m := metricsMap(t, ts)
	if hw := m["queue_high_water"]; hw > depth {
		t.Errorf("queue_high_water = %v exceeds the depth %d — the queue is not memory-bounded", hw, depth)
	}

	// After the flood: fresh synchronous runs reproduce the unloaded
	// baselines byte for byte.
	for _, row := range rows {
		code, buf := postVerify(t, ts, fmt.Sprintf(`{"system": %q}`, row))
		if code != http.StatusOK {
			t.Fatalf("post-flood %s: status %d: %s", row, code, buf)
		}
		if canonicalise(t, buf) != baselines[row] {
			t.Errorf("post-flood %s differs from the unloaded baseline", row)
		}
	}
}
