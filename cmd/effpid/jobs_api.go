package main

// jobs_api.go is the wire surface of the async job engine:
//
//	POST   /v1/jobs       submit → 202 {"id": ...} (+ Location header)
//	GET    /v1/jobs/{id}  state, queue position, progress, result
//	DELETE /v1/jobs/{id}  cancel — a queued job never starts, a running
//	                      one is cancelled through its context
//
// Job submission shares decodeVerifyRequest (and with it the admission
// caps) and the engine's queue with the synchronous /v1/verify, so both
// paths degrade identically under load: the only difference is whether
// the client waits on the HTTP connection or polls the job id.

import (
	"fmt"
	"net/http"
	"time"
)

// jobJSON is the wire view of a job.
type jobJSON struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// QueuePosition is the 1-based distance from the front of the queue
	// (1 = next to start); present only while queued.
	QueuePosition int `json:"queue_position,omitempty"`
	// Progress is the latest exploration snapshot of a running job.
	Progress *jobProgress `json:"progress,omitempty"`
	// QueuedMS is the time the job spent (or has so far spent) waiting
	// for a worker; RunningMS its service time so far (or total).
	QueuedMS  float64 `json:"queued_ms"`
	RunningMS float64 `json:"running_ms,omitempty"`
	// Result is the verification response of a done job.
	Result *verifyResponse `json:"result,omitempty"`
	// Error describes a failed or cancelled job.
	Error *errorResponse `json:"error,omitempty"`
	// Panic and Stack are set when the failure was a contained panic
	// inside the job's execution: the recovered value and its stack.
	Panic string `json:"panic,omitempty"`
	Stack string `json:"stack,omitempty"`
}

// view renders a job's current state for the wire.
func (e *jobEngine) view(j *job) jobJSON {
	e.mu.Lock()
	defer e.mu.Unlock()
	v := jobJSON{ID: j.id, State: j.state.String()}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	switch j.state {
	case jobQueued:
		v.QueuePosition = e.queuePositionLocked(j)
		v.QueuedMS = ms(time.Since(j.enqueued))
	case jobRunning:
		p := j.progress
		v.Progress = &p
		v.QueuedMS = ms(j.started.Sub(j.enqueued))
		v.RunningMS = ms(time.Since(j.started))
	default: // terminal
		if !j.started.IsZero() {
			v.QueuedMS = ms(j.started.Sub(j.enqueued))
			v.RunningMS = ms(j.finished.Sub(j.started))
		} else {
			// Cancelled before it ever started.
			v.QueuedMS = ms(j.finished.Sub(j.enqueued))
		}
		if j.state == jobDone {
			v.Result = j.resp
		} else {
			v.Error = &errorResponse{Error: j.errMsg, Kind: j.kind}
			v.Panic = j.panicValue
			v.Stack = j.stack
		}
	}
	return v
}

// result extracts a terminal job's payload for the synchronous path.
func (e *jobEngine) result(j *job) (resp *verifyResponse, status int, kind, errMsg string, state jobState) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return j.resp, j.status, j.kind, j.errMsg, j.state
}

// handleJobSubmit admits an async verification job. The job outlives
// the submitting connection; poll GET /v1/jobs/{id} for its state.
func (s *server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	req, timeout, ok := s.decodeVerifyRequest(w, r)
	if !ok {
		return
	}
	j, err := s.engine.submit(req, s.engine.baseCtx, timeout)
	if err != nil {
		s.rejectSubmit(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	s.writeJSON(w, http.StatusAccepted, s.engine.view(j))
}

// handleJobGet reports a job's state: queue position while queued,
// exploration progress while running, the result or error when
// terminal. Terminal jobs age out of the store (size- and TTL-bounded),
// after which the id is a 404.
func (s *server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.engine.get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "not-found",
			fmt.Errorf("unknown job %q (completed jobs are retained only for a bounded time)", id))
		return
	}
	s.writeJSON(w, http.StatusOK, s.engine.view(j))
}

// handleJobDelete cancels a job. Cancelling a queued job finalises it
// immediately — it will never start exploring; cancelling a running job
// cancels its context (the engine's cancellation is prompt) and the
// final state lands shortly after. Cancelling a terminal job is a
// no-op; the response always carries the job's current view.
func (s *server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.engine.get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "not-found", fmt.Errorf("unknown job %q", id))
		return
	}
	s.engine.cancelJob(j)
	s.writeJSON(w, http.StatusOK, s.engine.view(j))
}
