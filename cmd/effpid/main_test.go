package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"effpi"
)

func testServer(t *testing.T, cfg serverConfig) *httptest.Server {
	t.Helper()
	if cfg.defaultTimeout == 0 {
		cfg.defaultTimeout = 30 * time.Second
	}
	srv := newServer(effpi.NewWorkspace(), cfg)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(srv.Close)
	t.Cleanup(ts.Close)
	return ts
}

// testServerWithSrv is testServer when the test also needs the server
// (to override the engine's execute hook or read its counters).
func testServerWithSrv(t *testing.T, cfg serverConfig) (*httptest.Server, *server) {
	t.Helper()
	if cfg.defaultTimeout == 0 {
		cfg.defaultTimeout = 30 * time.Second
	}
	srv := newServer(effpi.NewWorkspace(), cfg)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(srv.Close)
	t.Cleanup(ts.Close)
	return ts, srv
}

func postVerify(t *testing.T, ts *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf
}

func TestHealthzAndMetrics(t *testing.T) {
	ts := testServer(t, serverConfig{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil || !health.OK {
		t.Fatalf("healthz: ok=%v err=%v", health.OK, err)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics map[string]json.Number
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatalf("metrics is not flat JSON: %v", err)
	}
	for _, key := range []string{"requests_total", "verdicts_pass_total", "cache_memos", "cache_evictions"} {
		if _, ok := metrics[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
}

// TestVerifySourceWitness: a deadlocking program posted as source text
// comes back with a FAIL verdict carrying a replay-validated witness
// lasso, and the response names the program's inferred type.
func TestVerifySourceWitness(t *testing.T) {
	ts := testServer(t, serverConfig{})
	code, buf := postVerify(t, ts, `{
		"source": "send(c, 1, fun (_: Unit) => end)",
		"binds": [{"name": "c", "type": "Chan[Int]"}],
		"properties": [{"kind": "deadlock-free", "channels": ["c"]}]
	}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, buf)
	}
	var resp verifyResponse
	if err := json.Unmarshal(buf, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Type == "" {
		t.Error("response missing inferred type")
	}
	if len(resp.Results) != 1 {
		t.Fatalf("want 1 result, got %d", len(resp.Results))
	}
	res := resp.Results[0]
	if res.Holds {
		t.Fatal("deadlocking program must fail deadlock-freedom")
	}
	if res.Witness == nil {
		t.Fatal("FAIL without witness")
	}
	if !res.Witness.Replayed || len(res.Witness.Cycle) == 0 {
		t.Errorf("witness not replay-validated or empty: %+v", res.Witness)
	}
	for _, st := range append(append([]effpi.WitnessStepJSON{}, res.Witness.Stem...), res.Witness.Cycle...) {
		if st.Label == "" {
			t.Error("witness step without label")
		}
	}
}

// TestVerifySystemDefaults: naming a benchmark row without properties
// runs its six Fig. 9 columns, and every verdict matches the published
// expectation.
func TestVerifySystemDefaults(t *testing.T) {
	ts := testServer(t, serverConfig{})
	row := effpi.Fig9Systems()[5] // Dining philos. (5, deadlock)
	code, buf := postVerify(t, ts, fmt.Sprintf(`{"system": %q}`, row.Name))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, buf)
	}
	var resp verifyResponse
	if err := json.Unmarshal(buf, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.System != row.Name {
		t.Errorf("system echo: %q != %q", resp.System, row.Name)
	}
	if len(resp.Results) != len(row.Props) {
		t.Fatalf("want %d results, got %d", len(row.Props), len(resp.Results))
	}
	for i, res := range resp.Results {
		want, ok := row.Expected[row.Props[i].Kind]
		if !ok {
			continue
		}
		if res.Holds != want {
			t.Errorf("%s: verdict %v, Fig. 9 expects %v", res.Property, res.Holds, want)
		}
	}
}

// canonicalise zeroes the wall-clock fields so responses can be compared
// byte for byte.
func canonicalise(t *testing.T, buf []byte) string {
	t.Helper()
	var resp verifyResponse
	if err := json.Unmarshal(buf, &resp); err != nil {
		t.Fatalf("canonicalise: %v (%s)", err, buf)
	}
	resp.DurationMS = 0
	for i := range resp.Results {
		resp.Results[i].DurationMS = 0
	}
	out, err := json.Marshal(&resp)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestConcurrentRequestsIdentical is the service-level determinism
// check: many concurrent requests over one shared workspace return
// byte-identical bodies (modulo wall-clock fields) — to each other and
// to a fully serial (parallelism 1) run of the same request.
func TestConcurrentRequestsIdentical(t *testing.T) {
	ts := testServer(t, serverConfig{})
	row := effpi.Fig9Systems()[5] // Dining philos. (5, deadlock): mixed verdicts, witnesses
	req := fmt.Sprintf(`{"system": %q}`, row.Name)

	code, serialBuf := postVerify(t, ts, fmt.Sprintf(`{"system": %q, "parallelism": 1}`, row.Name))
	if code != http.StatusOK {
		t.Fatalf("serial run: status %d: %s", code, serialBuf)
	}
	serial := canonicalise(t, serialBuf)

	const concurrent = 8
	results := make([]string, concurrent)
	errs := make([]error, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/verify", "application/json", strings.NewReader(req))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			buf, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, buf)
				return
			}
			results[i] = buf2canon(buf)
		}(i)
	}
	wg.Wait()
	for i := 0; i < concurrent; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i] != serial {
			t.Errorf("request %d differs from the serial run:\n%s\nvs\n%s", i, results[i], serial)
		}
	}
}

// buf2canon is canonicalise without *testing.T (for goroutines).
func buf2canon(buf []byte) string {
	var resp verifyResponse
	if err := json.Unmarshal(buf, &resp); err != nil {
		return "unmarshal error: " + err.Error()
	}
	resp.DurationMS = 0
	for i := range resp.Results {
		resp.Results[i].DurationMS = 0
	}
	out, _ := json.Marshal(&resp)
	return string(out)
}

// TestTimeoutCancelsAndCacheSurvives: a request with a 1 ms budget on a
// multi-thousand-state system times out with 504/"timeout", and the
// shared workspace stays fully usable — the identical request without
// the tiny budget succeeds afterwards with the expected verdicts, and
// two post-cancellation runs are byte-identical.
func TestTimeoutCancelsAndCacheSurvives(t *testing.T) {
	ts := testServer(t, serverConfig{})
	row := effpi.LargeSystems()[0] // Dining philos. (7, deadlock): 2187 states
	code, buf := postVerify(t, ts, fmt.Sprintf(`{"system": %q, "timeout_ms": 1}`, row.Name))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("want 504 on a 1ms budget, got %d: %s", code, buf)
	}
	var e errorResponse
	if err := json.Unmarshal(buf, &e); err != nil || e.Kind != "timeout" {
		t.Fatalf("want kind=timeout, got %s (err %v)", buf, err)
	}

	run := func() string {
		code, buf := postVerify(t, ts, fmt.Sprintf(`{"system": %q}`, row.Name))
		if code != http.StatusOK {
			t.Fatalf("post-cancel run: status %d: %s", code, buf)
		}
		return canonicalise(t, buf)
	}
	first := run()
	if second := run(); first != second {
		t.Error("two post-cancellation runs differ — cancellation poisoned the cache")
	}
	var resp verifyResponse
	if err := json.Unmarshal([]byte(first), &resp); err != nil {
		t.Fatal(err)
	}
	for i, res := range resp.Results {
		if want, ok := row.Expected[row.Props[i].Kind]; ok && res.Holds != want {
			t.Errorf("%s: verdict %v after cancellation, expected %v", res.Property, res.Holds, want)
		}
	}
}

// TestBadRequests: malformed inputs come back as structured errors with
// the right statuses.
func TestBadRequests(t *testing.T) {
	ts := testServer(t, serverConfig{})
	cases := []struct {
		name, body string
		status     int
		kind       string
	}{
		{"neither source nor system", `{}`, http.StatusBadRequest, "bad-request"},
		{"both source and system", `{"source": "end", "system": "x"}`, http.StatusBadRequest, "bad-request"},
		{"unknown system", `{"system": "no such row"}`, http.StatusNotFound, "bad-request"},
		{"source without properties", `{"source": "end"}`, http.StatusBadRequest, "bad-request"},
		{"unknown property kind", `{"source": "end", "properties": [{"kind": "bogus"}]}`, http.StatusBadRequest, "bad-request"},
		{"parse error", `{"source": "send(", "properties": [{"kind": "deadlock-free"}]}`, http.StatusBadRequest, "parse"},
		{"type error", `{"source": "send(42, 1, fun (_: Unit) => end)", "properties": [{"kind": "deadlock-free"}]}`, http.StatusUnprocessableEntity, "type"},
		{"unknown field", `{"source": "end", "bogus_field": 1}`, http.StatusBadRequest, "bad-request"},
	}
	for _, tc := range cases {
		code, buf := postVerify(t, ts, tc.body)
		if code != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.status, buf)
			continue
		}
		var e errorResponse
		if err := json.Unmarshal(buf, &e); err != nil {
			t.Errorf("%s: error body is not JSON: %s", tc.name, buf)
			continue
		}
		if e.Kind != tc.kind {
			t.Errorf("%s: kind %q, want %q", tc.name, e.Kind, tc.kind)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
	// GET on the verify endpoint is not allowed.
	resp, err := http.Get(ts.URL + "/v1/verify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/verify: status %d, want 405", resp.StatusCode)
	}
}

// TestEarlyExitRequest: the on-the-fly engine is reachable over the
// wire and reports its discovered/expanded counts.
// TestReductionRequest: a "reduction": "strong" request checks on the
// bisimulation quotient — the verdict matches the unreduced run, every
// LTL result carries states_reduced, a FAIL still carries a
// replay-validated witness, and /metrics exposes the ratio gauges.
func TestReductionRequest(t *testing.T) {
	ts := testServer(t, serverConfig{})
	body := func(reduction string) string {
		return fmt.Sprintf(`{
			"system": "Dining philos. (4, deadlock)",
			"reduction": %q
		}`, reduction)
	}
	code, base := postVerify(t, ts, body("off"))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, base)
	}
	code, reduced := postVerify(t, ts, body("strong"))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, reduced)
	}
	type result struct {
		Kind          string             `json:"kind"`
		Holds         bool               `json:"holds"`
		States        int                `json:"states"`
		StatesReduced int                `json:"states_reduced"`
		Witness       *effpi.WitnessJSON `json:"witness"`
	}
	var baseResp, redResp struct {
		Results []result `json:"results"`
	}
	if err := json.Unmarshal(base, &baseResp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(reduced, &redResp); err != nil {
		t.Fatal(err)
	}
	if len(redResp.Results) != len(baseResp.Results) || len(redResp.Results) == 0 {
		t.Fatalf("result counts differ: %d vs %d", len(redResp.Results), len(baseResp.Results))
	}
	for i, r := range redResp.Results {
		b := baseResp.Results[i]
		if r.Holds != b.Holds || r.States != b.States {
			t.Errorf("%s: reduced verdict/states (%v,%d) differ from unreduced (%v,%d)", r.Kind, r.Holds, r.States, b.Holds, b.States)
		}
		if b.StatesReduced != 0 {
			t.Errorf("%s: unreduced result carries states_reduced=%d", b.Kind, b.StatesReduced)
		}
		if r.Kind == effpi.EventualOutput.String() {
			if r.StatesReduced != 0 {
				t.Errorf("ev-usage: states_reduced=%d, want 0 (no Reduce stage)", r.StatesReduced)
			}
			continue
		}
		if r.StatesReduced <= 0 || r.StatesReduced > r.States {
			t.Errorf("%s: states_reduced=%d out of range (states %d)", r.Kind, r.StatesReduced, r.States)
		}
		if !r.Holds && (r.Witness == nil || !r.Witness.Replayed) {
			t.Errorf("%s: reduced FAIL without replay-validated witness", r.Kind)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics map[string]float64
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics["reduced_properties_total"] <= 0 {
		t.Errorf("reduced_properties_total = %v, want > 0", metrics["reduced_properties_total"])
	}
	if metrics["reduction_ratio"] < 1 {
		t.Errorf("reduction_ratio = %v, want >= 1", metrics["reduction_ratio"])
	}
	if metrics["reduction_states_full_total"] < metrics["reduction_states_reduced_total"] {
		t.Errorf("cumulative full states %v < reduced %v", metrics["reduction_states_full_total"], metrics["reduction_states_reduced_total"])
	}
}

// TestReductionRequestRejectsUnknownMode: an unknown reduction name is a
// stable 400, not an internal failure.
func TestReductionRequestRejectsUnknownMode(t *testing.T) {
	ts := testServer(t, serverConfig{})
	code, buf := postVerify(t, ts, `{"system": "Dining philos. (4, deadlock)", "reduction": "branching"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", code, buf)
	}
	if !bytes.Contains(buf, []byte(`"kind": "bad-request"`)) {
		t.Errorf("error kind not bad-request: %s", buf)
	}
}

// TestSymmetryRequest: a symmetric benchmark row verified with
// "symmetry": "on" keeps every verdict and concrete state count of the
// reference run, reports the orbit collapse in states_explored and
// orbit_ratio (states_explored ≤ states, orbit_ratio ≥ 1), carries
// replay-validated lifted witnesses on FAILs, and feeds the /metrics
// orbit accounting.
func TestSymmetryRequest(t *testing.T) {
	ts := testServer(t, serverConfig{})
	body := func(symmetry string) string {
		return fmt.Sprintf(`{
			"system": "Ping-pong (6 pairs)",
			"symmetry": %q
		}`, symmetry)
	}
	code, base := postVerify(t, ts, body("off"))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, base)
	}
	code, sym := postVerify(t, ts, body("on"))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, sym)
	}
	type result struct {
		Kind           string             `json:"kind"`
		Holds          bool               `json:"holds"`
		States         int                `json:"states"`
		StatesExplored int                `json:"states_explored"`
		OrbitRatio     float64            `json:"orbit_ratio"`
		Witness        *effpi.WitnessJSON `json:"witness"`
	}
	var baseResp, symResp struct {
		Results []result `json:"results"`
	}
	if err := json.Unmarshal(base, &baseResp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(sym, &symResp); err != nil {
		t.Fatal(err)
	}
	if len(symResp.Results) != len(baseResp.Results) || len(symResp.Results) == 0 {
		t.Fatalf("result counts differ: %d vs %d", len(symResp.Results), len(baseResp.Results))
	}
	for i, r := range symResp.Results {
		b := baseResp.Results[i]
		if r.Holds != b.Holds || r.States != b.States {
			t.Errorf("%s: symmetric verdict/states (%v,%d) differ from reference (%v,%d)", r.Kind, r.Holds, r.States, b.Holds, b.States)
		}
		if b.StatesExplored != 0 {
			t.Errorf("%s: reference result carries states_explored=%d", b.Kind, b.StatesExplored)
		}
		if r.StatesExplored <= 0 || r.StatesExplored > r.States {
			t.Errorf("%s: states_explored=%d out of range (states %d)", r.Kind, r.StatesExplored, r.States)
		}
		if r.OrbitRatio < 1 {
			t.Errorf("%s: orbit_ratio=%v, want >= 1", r.Kind, r.OrbitRatio)
		}
		if !r.Holds && r.Kind != effpi.EventualOutput.String() && (r.Witness == nil || !r.Witness.Replayed) {
			t.Errorf("%s: symmetric FAIL without replay-validated witness", r.Kind)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics map[string]float64
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics["symmetric_properties_total"] <= 0 {
		t.Errorf("symmetric_properties_total = %v, want > 0", metrics["symmetric_properties_total"])
	}
	if metrics["orbit_ratio"] <= 1 {
		t.Errorf("orbit_ratio = %v, want > 1 after a collapsed row", metrics["orbit_ratio"])
	}
	if metrics["symmetry_states_covered_total"] < metrics["symmetry_states_explored_total"] {
		t.Errorf("cumulative covered states %v < explored %v", metrics["symmetry_states_covered_total"], metrics["symmetry_states_explored_total"])
	}
}

// TestSymmetryRequestRejectsUnknownMode: an unknown symmetry name is a
// stable 400 spelling out the valid-values list — the contract clients
// and the CI smoke rely on to distinguish a typo from a server fault.
func TestSymmetryRequestRejectsUnknownMode(t *testing.T) {
	ts := testServer(t, serverConfig{})
	for _, bad := range []string{"orbit", "rotational", "ON"} {
		code, buf := postVerify(t, ts, fmt.Sprintf(`{"system": "Dining philos. (4, deadlock)", "symmetry": %q}`, bad))
		if code != http.StatusBadRequest {
			t.Fatalf("mode %q: status %d, want 400: %s", bad, code, buf)
		}
		if !bytes.Contains(buf, []byte(`"kind": "bad-request"`)) {
			t.Errorf("mode %q: error kind not bad-request: %s", bad, buf)
		}
		for _, want := range []string{bad, "valid values", "off", "on"} {
			if !bytes.Contains(buf, []byte(want)) {
				t.Errorf("mode %q: error does not mention %q: %s", bad, want, buf)
			}
		}
	}
}

// TestRotationalSymmetryRequest drives the rotational detector through
// the wire: the Dining fork ring's deadlock-freedom column (the one
// property that observes no fork, so the full cyclic group survives
// pinning) must report the necklace collapse in states_explored and
// orbit_ratio and carry a replay-validated lifted witness for the
// deadlock FAIL.
func TestRotationalSymmetryRequest(t *testing.T) {
	ts := testServer(t, serverConfig{})
	code, buf := postVerify(t, ts, `{
		"system": "Dining philos. (8, deadlock)",
		"symmetry": "on",
		"properties": [{"kind": "deadlock-free"}]
	}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, buf)
	}
	var resp struct {
		Results []struct {
			Kind           string             `json:"kind"`
			Holds          bool               `json:"holds"`
			States         int                `json:"states"`
			StatesExplored int                `json:"states_explored"`
			OrbitRatio     float64            `json:"orbit_ratio"`
			Witness        *effpi.WitnessJSON `json:"witness"`
		} `json:"results"`
	}
	if err := json.Unmarshal(buf, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(resp.Results))
	}
	r := resp.Results[0]
	if r.Holds {
		t.Error("deadlock variant reported deadlock-free")
	}
	if r.States != 6560 || r.StatesExplored != 833 {
		t.Errorf("states=%d explored=%d, want 6560 concrete states on 833 necklaces", r.States, r.StatesExplored)
	}
	if r.OrbitRatio < 4 {
		t.Errorf("orbit_ratio=%v, want ≥ 4 (the ring collapse)", r.OrbitRatio)
	}
	if r.Witness == nil || !r.Witness.Replayed {
		t.Error("rotational FAIL without replay-validated witness")
	}
}

// TestPprofGating: the profiling endpoints exist only behind the -pprof
// flag — a default server 404s them, an opted-in one serves the index.
func TestPprofGating(t *testing.T) {
	off := testServer(t, serverConfig{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}

	on := testServer(t, serverConfig{pprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	buf, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on: status %d, want 200", resp.StatusCode)
	}
	if !bytes.Contains(buf, []byte("goroutine")) {
		t.Errorf("pprof index does not list profiles: %.200s", buf)
	}
}

func TestEarlyExitRequest(t *testing.T) {
	ts := testServer(t, serverConfig{})
	code, buf := postVerify(t, ts, `{
		"source": "send(c, 1, fun (_: Unit) => end)",
		"binds": [{"name": "c", "type": "Chan[Int]"}],
		"properties": [{"kind": "deadlock-free", "channels": ["c"]}],
		"early_exit": true
	}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, buf)
	}
	if !bytes.Contains(buf, []byte(`"early_exit": true`)) {
		t.Errorf("early-exit outcome not marked in response: %s", buf)
	}
}

// TestPartialOrderRequest: a "partial_order": "on" request explores
// ample transition subsets — verdicts match the unreduced run, every
// engaged result carries partial_order plus a states_explored count no
// larger than the reference state space, a FAIL still carries a
// replay-validated witness, and /metrics exposes the POR gauges.
func TestPartialOrderRequest(t *testing.T) {
	ts := testServer(t, serverConfig{})
	body := func(mode string) string {
		return fmt.Sprintf(`{
			"system": "Ping-pong (6 pairs)",
			"partial_order": %q
		}`, mode)
	}
	code, base := postVerify(t, ts, body("off"))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, base)
	}
	code, por := postVerify(t, ts, body("on"))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, por)
	}
	type result struct {
		Kind           string             `json:"kind"`
		Holds          bool               `json:"holds"`
		States         int                `json:"states"`
		StatesExplored int                `json:"states_explored"`
		PartialOrder   bool               `json:"partial_order"`
		Witness        *effpi.WitnessJSON `json:"witness"`
	}
	var baseResp, porResp struct {
		Results []result `json:"results"`
	}
	if err := json.Unmarshal(base, &baseResp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(por, &porResp); err != nil {
		t.Fatal(err)
	}
	if len(porResp.Results) != len(baseResp.Results) || len(porResp.Results) == 0 {
		t.Fatalf("result counts differ: %d vs %d", len(porResp.Results), len(baseResp.Results))
	}
	engaged := 0
	for i, r := range porResp.Results {
		b := baseResp.Results[i]
		if r.Holds != b.Holds {
			t.Errorf("%s: reduced verdict %v differs from reference %v", r.Kind, r.Holds, b.Holds)
		}
		if b.PartialOrder {
			t.Errorf("%s: reference result carries partial_order", b.Kind)
		}
		if !r.PartialOrder {
			if r.States != b.States {
				t.Errorf("%s: disengaged result changed states %d -> %d", r.Kind, b.States, r.States)
			}
			continue
		}
		engaged++
		if r.StatesExplored <= 0 || r.StatesExplored > b.States {
			t.Errorf("%s: states_explored=%d out of range (reference states %d)", r.Kind, r.StatesExplored, b.States)
		}
		if r.States != r.StatesExplored {
			t.Errorf("%s: POR states=%d != states_explored=%d (both count the reduced space)", r.Kind, r.States, r.StatesExplored)
		}
		if !r.Holds && r.Kind != effpi.EventualOutput.String() && (r.Witness == nil || !r.Witness.Replayed) {
			t.Errorf("%s: reduced FAIL without replay-validated witness", r.Kind)
		}
	}
	if engaged == 0 {
		t.Fatal("no property engaged partial-order reduction on the ping-pong row")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics map[string]float64
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics["por_properties_total"] != float64(engaged) {
		t.Errorf("por_properties_total = %v, want %d", metrics["por_properties_total"], engaged)
	}
	if metrics["por_states_explored_total"] <= 0 {
		t.Errorf("por_states_explored_total = %v, want > 0", metrics["por_states_explored_total"])
	}
}

// TestPartialOrderRequestRejectsUnknownMode: an unknown partial-order
// name is a stable 400 naming the valid values.
func TestPartialOrderRequestRejectsUnknownMode(t *testing.T) {
	ts := testServer(t, serverConfig{})
	code, buf := postVerify(t, ts, `{"system": "Dining philos. (4, deadlock)", "partial_order": "ample"}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", code, buf)
	}
	if !bytes.Contains(buf, []byte(`"kind": "bad-request"`)) {
		t.Errorf("error kind not bad-request: %s", buf)
	}
	for _, want := range []string{"ample", "off", "on"} {
		if !bytes.Contains(buf, []byte(want)) {
			t.Errorf("error does not mention %q: %s", want, buf)
		}
	}
}

// TestTrailingBytesRejected: a body holding a second JSON value after
// the request object is malformed — both decode paths must 400 with
// kind "parse" instead of silently discarding the trailing bytes.
func TestTrailingBytesRejected(t *testing.T) {
	ts := testServer(t, serverConfig{})
	// The trailing-data check runs right after decoding, before row
	// lookup — the first object only needs to decode, not to resolve.
	bodies := []struct{ name, body string }{
		{"second object", `{"system": "x"}{"system": "y"}`},
		{"trailing scalar", `{"system": "x"} 42`},
	}
	for _, path := range []string{"/v1/verify", "/v1/jobs"} {
		for _, tc := range bodies {
			resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			buf, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s %s: status %d, want 400 (%s)", path, tc.name, resp.StatusCode, buf)
				continue
			}
			var e errorResponse
			if err := json.Unmarshal(buf, &e); err != nil {
				t.Errorf("%s %s: error body is not JSON: %s", path, tc.name, buf)
				continue
			}
			if e.Kind != "parse" {
				t.Errorf("%s %s: kind %q, want \"parse\"", path, tc.name, e.Kind)
			}
			if !strings.Contains(e.Error, "trailing") {
				t.Errorf("%s %s: error %q does not mention trailing data", path, tc.name, e.Error)
			}
		}
	}
	// Trailing whitespace (a bare newline from curl and friends) is not
	// a second value and must stay accepted.
	code, buf := postVerify(t, ts,
		"{\"source\": \"end\", \"properties\": [{\"kind\": \"deadlock-free\"}]}\n  ")
	if code != http.StatusOK {
		t.Errorf("trailing whitespace rejected: status %d (%s)", code, buf)
	}
}
