package main

// jobs.go is the admission-controlled asynchronous job engine of effpid.
// Every verification — the async job API and the synchronous /v1/verify
// alike — passes through one bounded FIFO queue drained by a fixed pool
// of workers, so the server's concurrency is a configuration knob
// (-workers, -queue-depth) instead of a function of the arrival rate.
// When the queue is full, admission fails fast with a saturation error
// whose Retry-After is computed from observed service times; nothing is
// ever buffered beyond the queue's capacity.
//
// A job's life: queued → running → done | failed | cancelled. Queued
// jobs can be cancelled before they start (they then never touch the
// engine); running jobs are cancelled through their context. Terminal
// jobs are retained in a size- and TTL-bounded store so clients can poll
// results after completion. Panics inside a job are contained: the job
// fails with kind "internal" (panic value and stack preserved in the job
// record), a counter increments, and the worker moves on — the engine's
// shared caches are append-only and schedule-independent (DESIGN.md),
// so a half-finished exploration never poisons later requests.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"effpi"
)

// jobState enumerates the lifecycle states of a job.
type jobState int

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
	jobFailed
	jobCancelled
)

func (s jobState) String() string {
	switch s {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	case jobFailed:
		return "failed"
	case jobCancelled:
		return "cancelled"
	}
	return "unknown"
}

func (s jobState) terminal() bool {
	return s == jobDone || s == jobFailed || s == jobCancelled
}

// jobProgress is a point-in-time exploration snapshot, fed from the
// session's progress events while the job runs.
type jobProgress struct {
	States   int `json:"states"`
	Expanded int `json:"expanded"`
	Edges    int `json:"edges"`
}

// job is one admitted verification request. All mutable fields are
// guarded by the engine's mutex; done is closed exactly once, when the
// job reaches a terminal state.
type job struct {
	id  string
	seq int64 // admission order; queue position derives from it
	req *verifyRequest

	// baseCtx is what the run derives its context from: the submitting
	// HTTP request's context for synchronous (submit-and-wait) jobs — a
	// dropped client cancels the work — and the engine's background
	// context for async jobs, which outlive their submit request.
	baseCtx context.Context
	// timeout is the effective per-job deadline, resolved at admission
	// (request value capped by the server's -max-timeout, server default
	// otherwise). It is measured from the moment the job starts running:
	// queue wait is bounded by admission control, not by the deadline.
	timeout time.Duration

	state         jobState
	enqueued      time.Time
	started       time.Time
	finished      time.Time
	cancel        context.CancelFunc // set while running
	userCancelled bool               // DELETE seen; classify as cancelled
	progress      jobProgress

	// Terminal payload: resp on done; status/kind/errMsg on failed or
	// cancelled; panicValue/stack when the failure was a contained panic.
	resp       *verifyResponse
	status     int
	kind       string
	errMsg     string
	panicValue string
	stack      string

	done chan struct{}
}

// errSaturated is the admission failure of a full queue. RetryAfter is
// the server's service-time estimate for when capacity frees up.
type errSaturated struct {
	RetryAfter int // seconds, >= 1
}

func (e *errSaturated) Error() string {
	return fmt.Sprintf("queue is full; retry in ~%ds", e.RetryAfter)
}

// errDraining is the admission failure of a shutting-down server.
var errDraining = errors.New("server is draining; not accepting new jobs")

// execFunc is the body of a job: the production engine binds it to
// server.verify; tests substitute gated or panicking stages.
type execFunc func(ctx context.Context, req *verifyRequest, progress func(effpi.Event)) (*verifyResponse, int, string, error)

// jobEngine is the admission controller and worker pool.
type jobEngine struct {
	srv     *server
	queue   chan *job
	workers int

	retain    int           // completed-job store size bound
	retainTTL time.Duration // completed-job store age bound

	execute execFunc

	// baseCtx parents every async job; cancelled when the engine is
	// fully shut down (after the drain window), so stragglers die.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu        sync.Mutex
	jobs      map[string]*job
	completed []*job  // terminal jobs in completion order (eviction FIFO)
	seq       int64   // last admission sequence number
	taken     int64   // jobs dequeued by workers so far
	ewmaMS    float64 // exponentially weighted mean job service time
	draining  bool

	wg sync.WaitGroup
}

// ewmaAlpha weights the most recent service time in the Retry-After
// estimator: high enough to track load shifts within a few jobs, low
// enough that one outlier does not swing the estimate.
const ewmaAlpha = 0.3

func newJobEngine(srv *server, workers, depth, retain int, retainTTL time.Duration) *jobEngine {
	ctx, cancel := context.WithCancel(context.Background())
	e := &jobEngine{
		srv:        srv,
		queue:      make(chan *job, depth),
		workers:    workers,
		retain:     retain,
		retainTTL:  retainTTL,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*job),
	}
	e.execute = func(ctx context.Context, req *verifyRequest, progress func(effpi.Event)) (*verifyResponse, int, string, error) {
		return srv.verify(ctx, req, progress)
	}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is catastrophic enough to surface loudly,
		// but job ids only need uniqueness; fall back to the sequence.
		return fmt.Sprintf("j-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// submit admits a job or rejects it: *errSaturated when the queue is
// full, errDraining during shutdown. baseCtx ties the job to its
// submitter (sync) or to the engine (async).
func (e *jobEngine) submit(req *verifyRequest, baseCtx context.Context, timeout time.Duration) (*job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sweepLocked(time.Now())
	if e.draining {
		return nil, errDraining
	}
	if len(e.queue) == cap(e.queue) {
		retry := e.retryAfterLocked()
		e.srv.rejections.Add(1)
		e.srv.retryAfter.Set(int64(retry))
		return nil, &errSaturated{RetryAfter: retry}
	}
	e.seq++
	j := &job{
		id:       newJobID(),
		seq:      e.seq,
		req:      req,
		baseCtx:  baseCtx,
		timeout:  timeout,
		state:    jobQueued,
		enqueued: time.Now(),
		done:     make(chan struct{}),
	}
	e.jobs[j.id] = j
	// The send cannot block: occupancy was checked above and every send
	// happens under the mutex, so the queue has a free slot.
	e.queue <- j
	e.srv.submitted.Add(1)
	if hw := int64(len(e.queue)); hw > e.srv.queueHighWater.Value() {
		e.srv.queueHighWater.Set(hw)
	}
	return j, nil
}

// retryAfterLocked estimates, in whole seconds, when a freed queue slot
// is likely: (observed mean service time) × (jobs ahead of a new
// arrival) / workers. Before any job has completed it assumes one
// second per job; the result is never below one second, so a 429 always
// carries a usable Retry-After.
func (e *jobEngine) retryAfterLocked() int {
	per := e.ewmaMS
	if per <= 0 {
		per = 1000
	}
	running := 0
	for _, j := range e.jobs {
		if j.state == jobRunning {
			running++
		}
	}
	ahead := len(e.queue) + running
	secs := int(math.Ceil(per * float64(ahead) / float64(e.workers) / 1000))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// setExecute swaps the job body (tests: gated or panicking stages).
func (e *jobEngine) setExecute(fn execFunc) {
	e.mu.Lock()
	e.execute = fn
	e.mu.Unlock()
}

// get returns a job by id.
func (e *jobEngine) get(id string) (*job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sweepLocked(time.Now())
	j, ok := e.jobs[id]
	return j, ok
}

// cancelJob cancels a job: a queued job is finalised immediately (it
// will never start), a running one has its context cancelled and
// finishes as cancelled shortly after. Terminal jobs are left alone.
func (e *jobEngine) cancelJob(j *job) {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch j.state {
	case jobQueued:
		e.finishCancelledLocked(j, "job cancelled while queued")
	case jobRunning:
		j.userCancelled = true
		if j.cancel != nil {
			j.cancel()
		}
	}
}

// worker is the pool loop: pop, skip anything no longer runnable, run.
func (e *jobEngine) worker() {
	defer e.wg.Done()
	for j := range e.queue {
		e.mu.Lock()
		e.taken++
		if j.state != jobQueued {
			// Cancelled (or drained) while waiting; never starts.
			e.mu.Unlock()
			continue
		}
		if err := j.baseCtx.Err(); err != nil {
			// The synchronous submitter hung up before the job started.
			e.finishCancelledLocked(j, "submitter disconnected before the job started")
			e.mu.Unlock()
			continue
		}
		j.state = jobRunning
		j.started = time.Now()
		ctx, cancel := context.WithCancel(j.baseCtx)
		if j.timeout > 0 {
			ctx, cancel = context.WithTimeout(j.baseCtx, j.timeout)
		}
		j.cancel = cancel
		e.mu.Unlock()

		e.run(ctx, j)
		cancel()
	}
}

// run executes one job with panic containment: a panicking stage fails
// that job (panic value and stack preserved in the record, panics_total
// incremented) and never unwinds past the worker.
func (e *jobEngine) run(ctx context.Context, j *job) {
	defer func() {
		if r := recover(); r != nil {
			stack := string(debug.Stack())
			e.srv.jobPanics.Add(1)
			log.Printf("effpid: panic in job %s contained: %v\n%s", j.id, r, stack)
			e.finish(j, nil, http.StatusInternalServerError, "internal",
				fmt.Errorf("panic during job execution: %v", r), fmt.Sprint(r), stack)
		}
	}()
	progress := func(ev effpi.Event) {
		if ev.Kind != effpi.EventExploreProgress {
			return
		}
		e.mu.Lock()
		j.progress = jobProgress{States: ev.States, Expanded: ev.Expanded, Edges: ev.Edges}
		e.mu.Unlock()
	}
	e.mu.Lock()
	exec := e.execute
	e.mu.Unlock()
	resp, status, kind, err := exec(ctx, j.req, progress)
	e.finish(j, resp, status, kind, err, "", "")
}

// finish moves a job to its terminal state, updates the service-time
// estimator and the per-outcome metrics, and retires it into the
// completed store. Idempotent: a job that was finalised concurrently
// (e.g. cancelled during drain) is left as-is.
func (e *jobEngine) finish(j *job, resp *verifyResponse, status int, kind string, err error, panicValue, stack string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if j.state.terminal() {
		return
	}
	j.finished = time.Now()
	durMS := float64(j.finished.Sub(j.started).Microseconds()) / 1000
	if e.ewmaMS == 0 {
		e.ewmaMS = durMS
	} else {
		e.ewmaMS = ewmaAlpha*durMS + (1-ewmaAlpha)*e.ewmaMS
	}
	switch {
	case err == nil:
		j.state = jobDone
		j.resp = resp
		e.srv.jobsDone.Add(1)
	case j.userCancelled:
		j.state = jobCancelled
		j.status = http.StatusConflict
		j.kind = "cancelled"
		j.errMsg = "job cancelled"
		e.srv.jobsCancelled.Add(1)
	default:
		j.state = jobFailed
		j.status = status
		j.kind = kind
		j.errMsg = err.Error()
		j.panicValue = panicValue
		j.stack = stack
		e.srv.jobsFailed.Add(1)
	}
	e.srv.observeLatency(j.state.String(), durMS)
	e.retireLocked(j)
	close(j.done)
}

// finishCancelledLocked finalises a job that never ran (cancelled while
// queued, drained at shutdown, or abandoned by its submitter).
func (e *jobEngine) finishCancelledLocked(j *job, msg string) {
	if j.state.terminal() {
		return
	}
	j.finished = time.Now()
	j.state = jobCancelled
	j.status = http.StatusServiceUnavailable
	j.kind = "cancelled"
	j.errMsg = msg
	e.srv.jobsCancelled.Add(1)
	e.retireLocked(j)
	close(j.done)
}

// retireLocked appends a terminal job to the retention store and evicts
// past the size bound.
func (e *jobEngine) retireLocked(j *job) {
	e.completed = append(e.completed, j)
	for len(e.completed) > e.retain {
		old := e.completed[0]
		e.completed = e.completed[1:]
		delete(e.jobs, old.id)
	}
}

// sweepLocked drops terminal jobs older than the retention TTL. Called
// lazily from the admission and lookup paths, so an idle server holds a
// stale store but a serving one converges.
func (e *jobEngine) sweepLocked(now time.Time) {
	if e.retainTTL <= 0 {
		return
	}
	for len(e.completed) > 0 && now.Sub(e.completed[0].finished) > e.retainTTL {
		old := e.completed[0]
		e.completed = e.completed[1:]
		delete(e.jobs, old.id)
	}
}

// queuePositionLocked is the 1-based number of dequeues until this
// queued job's turn (1 = next). The queue is strict FIFO and sequence
// numbers are assigned in admission order, so position is a subtraction.
func (e *jobEngine) queuePositionLocked(j *job) int {
	if j.state != jobQueued {
		return 0
	}
	pos := int(j.seq - e.taken)
	if pos < 1 {
		pos = 1
	}
	return pos
}

// counts returns point-in-time queue/job gauges for /metrics and
// /readyz.
func (e *jobEngine) counts() (queued, running, depth, capacity int, draining bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, j := range e.jobs {
		switch j.state {
		case jobQueued:
			queued++
		case jobRunning:
			running++
		}
	}
	return queued, running, len(e.queue), cap(e.queue), e.draining
}

// Shutdown drains the engine: stop admitting (submit returns
// errDraining and /readyz flips not-ready), finalise every still-queued
// job as cancelled — they never start —, then wait for running jobs to
// finish inside ctx's window. When the window closes with jobs still
// running, their contexts are cancelled and Shutdown waits for the
// (prompt, see the context-plumbing contract) cancellation to land.
func (e *jobEngine) Shutdown(ctx context.Context) {
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		e.wg.Wait()
		return
	}
	e.draining = true
	for _, j := range e.jobs {
		if j.state == jobQueued {
			e.finishCancelledLocked(j, "server draining: job cancelled before it started")
		}
	}
	// Safe: every send happens under the mutex and checks draining first.
	close(e.queue)
	e.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-ctx.Done():
		e.mu.Lock()
		for _, j := range e.jobs {
			if j.state == jobRunning && j.cancel != nil {
				j.cancel()
			}
		}
		e.mu.Unlock()
		<-finished
	}
	e.baseCancel()
}
