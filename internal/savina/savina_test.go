package savina

import (
	"testing"

	"effpi/internal/runtime"
)

func engines() []runtime.Engine {
	return []runtime.Engine{
		runtime.NewScheduler(4, runtime.PolicyDefault),
		runtime.NewScheduler(4, runtime.PolicyChannelFSM),
		runtime.NewGoEngine(),
	}
}

func TestChameneos(t *testing.T) {
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			r := Chameneos(e, 32)
			// Every meeting counts twice (once per participant).
			if r.Messages != 64 {
				t.Errorf("meetings counted = %d, want 64", r.Messages)
			}
		})
	}
}

func TestCounting(t *testing.T) {
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			r := Counting(e, 10_000) // panics internally on a wrong sum
			if r.Messages != 10_001 {
				t.Errorf("messages = %d", r.Messages)
			}
		})
	}
}

func TestForkJoinCreate(t *testing.T) {
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			if r := ForkJoinCreate(e, 50_000); r.Messages != 50_000 {
				t.Errorf("signals = %d, want 50000", r.Messages)
			}
		})
	}
}

func TestForkJoinThroughput(t *testing.T) {
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			want := int64(200) * ForkJoinThroughputMessages
			if r := ForkJoinThroughput(e, 200); r.Messages != want {
				t.Errorf("messages = %d, want %d", r.Messages, want)
			}
		})
	}
}

func TestPingPong(t *testing.T) {
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			want := int64(50) * PingPongRounds
			if r := PingPong(e, 50); r.Messages != want {
				t.Errorf("responses = %d, want %d", r.Messages, want)
			}
		})
	}
}

func TestRing(t *testing.T) {
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			if r := Ring(e, 100); r.Messages != 1000 {
				t.Errorf("hops = %d, want 1000", r.Messages)
			}
			// Small rings exercise the shutdown wave edge cases.
			Ring(e, 2)
			Ring(e, 3)
		})
	}
}

func TestStreamingRing(t *testing.T) {
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			StreamingRing(e, 100)
			StreamingRing(e, 8) // tokens > members/2
			StreamingRing(e, 2) // tokens clamped to members
		})
	}
}

func TestAllRegistered(t *testing.T) {
	if len(All()) != 7 {
		t.Fatalf("expected the 7 Fig. 8 benchmarks, got %d", len(All()))
	}
	for _, b := range All() {
		if _, err := ByName(b.Name); err != nil {
			t.Errorf("ByName(%s): %v", b.Name, err)
		}
		if len(b.Sizes) == 0 {
			t.Errorf("%s: empty size sweep", b.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName must reject unknown benchmarks")
	}
}
