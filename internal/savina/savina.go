// Package savina implements the subset of the Savina actor benchmark
// suite (Imam & Sarkar, AGERE! 2014) used in Fig. 8 of the paper:
// chameneos, counting, fork-join creation, fork-join throughput,
// ping-pong, ring, and streaming ring. Every benchmark is parameterised
// by an execution engine, so the same workload compares the Effpi
// schedulers against the goroutine-per-process baseline.
package savina

import (
	"fmt"
	"sync/atomic"

	"effpi/internal/runtime"
)

// Result reports what a benchmark run did, for validation.
type Result struct {
	// Messages is the number of messages processed (benchmark-specific).
	Messages int64
}

// Benchmark is a runnable Savina workload at a given size.
type Benchmark struct {
	Name string
	// Run executes the workload of the given size on the engine.
	Run func(e runtime.Engine, n int) Result
	// Sizes is the sweep used by the Fig. 8 harness.
	Sizes []int
}

// All returns the seven Fig. 8 benchmarks with their default sweeps.
func All() []Benchmark {
	return []Benchmark{
		{Name: "chameneos", Run: Chameneos, Sizes: []int{10, 100, 1_000, 10_000, 100_000}},
		{Name: "counting", Run: Counting, Sizes: []int{1_000, 10_000, 100_000, 1_000_000}},
		{Name: "fjc", Run: ForkJoinCreate, Sizes: []int{100, 1_000, 10_000, 100_000, 1_000_000}},
		{Name: "fjt", Run: ForkJoinThroughput, Sizes: []int{10, 100, 1_000, 10_000}},
		{Name: "pingpong", Run: PingPong, Sizes: []int{10, 100, 1_000, 10_000, 100_000}},
		{Name: "ring", Run: Ring, Sizes: []int{10, 100, 1_000, 10_000, 100_000}},
		{Name: "streamring", Run: StreamingRing, Sizes: []int{10, 100, 1_000, 10_000, 100_000}},
	}
}

// ByName looks up a benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("savina: unknown benchmark %q", name)
}

// --- chameneos -------------------------------------------------------------

type chamMsg struct {
	id    int
	reply *runtime.Chan
}

// Chameneos runs n chameneos that repeatedly visit a central broker; the
// broker pairs visitors and sends each its peer's reference so they can
// interact, for a total of n meetings.
func Chameneos(e runtime.Engine, n int) Result {
	if n < 2 {
		n = 2
	}
	meetings := n
	broker := e.NewChan()
	var total atomic.Int64

	// Chameneo: visit the broker, wait for either a peer id (meet) or a
	// stop signal.
	cham := func(id int) runtime.Proc {
		self := e.NewChan()
		var visit func() runtime.Proc
		visit = func() runtime.Proc {
			return runtime.Send{Ch: broker, Val: chamMsg{id: id, reply: self}, Cont: func() runtime.Proc {
				return runtime.Recv{Ch: self, Cont: func(v any) runtime.Proc {
					if v == nil { // stop
						return runtime.End{}
					}
					total.Add(1)
					return visit()
				}}
			}}
		}
		return visit()
	}

	// Broker: pair arrivals until the meeting quota is exhausted, then
	// stop every chameneo as it arrives.
	var brokerLoop func(remaining, stopped int) runtime.Proc
	brokerLoop = func(remaining, stopped int) runtime.Proc {
		if stopped == n {
			return runtime.End{}
		}
		return runtime.Recv{Ch: broker, Cont: func(v1 any) runtime.Proc {
			m1 := v1.(chamMsg)
			if remaining <= 0 {
				return runtime.Send{Ch: m1.reply, Val: nil, Cont: func() runtime.Proc {
					return brokerLoop(remaining, stopped+1)
				}}
			}
			return runtime.Recv{Ch: broker, Cont: func(v2 any) runtime.Proc {
				m2 := v2.(chamMsg)
				return runtime.Send{Ch: m1.reply, Val: m2.id, Cont: func() runtime.Proc {
					return runtime.Send{Ch: m2.reply, Val: m1.id, Cont: func() runtime.Proc {
						return brokerLoop(remaining-1, stopped)
					}}
				}}
			}}
		}}
	}

	procs := make([]runtime.Proc, 0, n+1)
	for i := 0; i < n; i++ {
		procs = append(procs, cham(i))
	}
	procs = append(procs, brokerLoop(meetings, 0))
	e.Run(procs...)
	return Result{Messages: total.Load()}
}

// --- counting ----------------------------------------------------------------

// Counting has actor A send the numbers 1..n to actor B, which adds
// them; B reports the sum back to A.
func Counting(e runtime.Engine, n int) Result {
	toB := e.NewChan()
	toA := e.NewChan()
	var final atomic.Int64

	var send func(i int) runtime.Proc
	send = func(i int) runtime.Proc {
		if i > n {
			return runtime.Recv{Ch: toA, Cont: func(v any) runtime.Proc {
				final.Store(v.(int64))
				return runtime.End{}
			}}
		}
		return runtime.Send{Ch: toB, Val: int64(i), Cont: func() runtime.Proc { return send(i + 1) }}
	}

	var add func(i int, acc int64) runtime.Proc
	add = func(i int, acc int64) runtime.Proc {
		if i > n {
			return runtime.Send{Ch: toA, Val: acc, Cont: func() runtime.Proc { return runtime.End{} }}
		}
		return runtime.Recv{Ch: toB, Cont: func(v any) runtime.Proc {
			return add(i+1, acc+v.(int64))
		}}
	}

	e.Run(send(1), add(1, 0))
	if want := int64(n) * int64(n+1) / 2; final.Load() != want {
		panic(fmt.Sprintf("savina: counting sum %d, want %d", final.Load(), want))
	}
	return Result{Messages: int64(n) + 1}
}

// --- fork-join ---------------------------------------------------------------

// ForkJoinCreate creates n processes; each signals readiness and ends.
func ForkJoinCreate(e runtime.Engine, n int) Result {
	done := e.NewChan()
	procs := make([]runtime.Proc, 0, n+1)
	for i := 0; i < n; i++ {
		procs = append(procs, runtime.Send{Ch: done, Val: struct{}{}, Cont: func() runtime.Proc { return runtime.End{} }})
	}
	var collect func(i int) runtime.Proc
	collect = func(i int) runtime.Proc {
		if i == n {
			return runtime.End{}
		}
		return runtime.Recv{Ch: done, Cont: func(any) runtime.Proc { return collect(i + 1) }}
	}
	procs = append(procs, collect(0))
	e.Run(procs...)
	return Result{Messages: int64(n)}
}

// ForkJoinThroughputMessages is the per-worker message count of the
// throughput variant.
const ForkJoinThroughputMessages = 100

// ForkJoinThroughput creates n workers and sends each a sequence of
// messages; workers consume them all and signal completion.
func ForkJoinThroughput(e runtime.Engine, n int) Result {
	const k = ForkJoinThroughputMessages
	done := e.NewChan()
	procs := make([]runtime.Proc, 0, 2*n+1)
	chans := make([]*runtime.Chan, n)
	for i := 0; i < n; i++ {
		chans[i] = e.NewChan()
		var worker func(j int) runtime.Proc
		ch := chans[i]
		worker = func(j int) runtime.Proc {
			if j == k {
				return runtime.Send{Ch: done, Val: struct{}{}, Cont: func() runtime.Proc { return runtime.End{} }}
			}
			return runtime.Recv{Ch: ch, Cont: func(any) runtime.Proc { return worker(j + 1) }}
		}
		procs = append(procs, worker(0))
	}
	// One distributor per worker keeps the send side parallel.
	for i := 0; i < n; i++ {
		ch := chans[i]
		var feed func(j int) runtime.Proc
		feed = func(j int) runtime.Proc {
			if j == k {
				return runtime.End{}
			}
			return runtime.Send{Ch: ch, Val: j, Cont: func() runtime.Proc { return feed(j + 1) }}
		}
		procs = append(procs, feed(0))
	}
	var collect func(i int) runtime.Proc
	collect = func(i int) runtime.Proc {
		if i == n {
			return runtime.End{}
		}
		return runtime.Recv{Ch: done, Cont: func(any) runtime.Proc { return collect(i + 1) }}
	}
	procs = append(procs, collect(0))
	e.Run(procs...)
	return Result{Messages: int64(n) * k}
}

// --- ping-pong ---------------------------------------------------------------

// PingPongRounds is the number of request/response exchanges per pair.
const PingPongRounds = 100

// PingPong runs n pairs of processes exchanging requests and responses.
func PingPong(e runtime.Engine, n int) Result {
	const rounds = PingPongRounds
	procs := make([]runtime.Proc, 0, 2*n)
	var total atomic.Int64
	for i := 0; i < n; i++ {
		ping := e.NewChan()
		pong := e.NewChan()
		var pinger func(r int) runtime.Proc
		pinger = func(r int) runtime.Proc {
			if r == rounds {
				return runtime.Send{Ch: ping, Val: -1, Cont: func() runtime.Proc { return runtime.End{} }}
			}
			return runtime.Send{Ch: ping, Val: r, Cont: func() runtime.Proc {
				return runtime.Recv{Ch: pong, Cont: func(any) runtime.Proc {
					total.Add(1)
					return pinger(r + 1)
				}}
			}}
		}
		var ponger func() runtime.Proc
		ponger = func() runtime.Proc {
			return runtime.Recv{Ch: ping, Cont: func(v any) runtime.Proc {
				if v.(int) < 0 {
					return runtime.End{}
				}
				return runtime.Send{Ch: pong, Val: v, Cont: ponger}
			}}
		}
		procs = append(procs, pinger(0), ponger())
	}
	e.Run(procs...)
	return Result{Messages: total.Load()}
}

// --- rings -------------------------------------------------------------------

// RingHopFactor scales the total number of token hops with the ring size.
const RingHopFactor = 10

// Ring connects n processes in a ring and passes one token
// RingHopFactor·n times around.
func Ring(e runtime.Engine, n int) Result {
	if n < 2 {
		n = 2
	}
	hops := RingHopFactor * n
	chans := make([]*runtime.Chan, n)
	for i := range chans {
		chans[i] = e.NewChan()
	}
	// Message encoding: v > 0 is the live token with v hops remaining;
	// v = 0 retires the token at the receiving member, which then starts
	// a shutdown wave counting up from -(n-1) to -1 so that each of the
	// other n-1 members terminates exactly once.
	member := func(i int) runtime.Proc {
		in, out := chans[i], chans[(i+1)%n]
		var loop func() runtime.Proc
		loop = func() runtime.Proc {
			return runtime.Recv{Ch: in, Cont: func(v any) runtime.Proc {
				left := v.(int)
				switch {
				case left > 0:
					return runtime.Send{Ch: out, Val: left - 1, Cont: loop}
				case left == 0:
					return runtime.Send{Ch: out, Val: -(n - 1), Cont: func() runtime.Proc { return runtime.End{} }}
				case left == -1:
					return runtime.End{}
				default:
					return runtime.Send{Ch: out, Val: left + 1, Cont: func() runtime.Proc { return runtime.End{} }}
				}
			}}
		}
		return loop()
	}
	procs := make([]runtime.Proc, 0, n+1)
	for i := 0; i < n; i++ {
		procs = append(procs, member(i))
	}
	procs = append(procs, runtime.Send{Ch: chans[0], Val: hops, Cont: func() runtime.Proc { return runtime.End{} }})
	e.Run(procs...)
	return Result{Messages: int64(hops)}
}

// StreamingRingTokens is the number of tokens circulating concurrently.
const StreamingRingTokens = 16

// StreamingRing passes several tokens around the ring concurrently (at
// most StreamingRingTokens members are active at once).
func StreamingRing(e runtime.Engine, n int) Result {
	if n < 2 {
		n = 2
	}
	tokens := StreamingRingTokens
	if tokens > n {
		tokens = n
	}
	laps := RingHopFactor
	chans := make([]*runtime.Chan, n)
	for i := range chans {
		chans[i] = e.NewChan()
	}

	// Message encoding: v > 0 is a live token with v hops remaining;
	// v ≤ 0 is a retirement marker with origin member -v. A member
	// terminates after observing every token's retirement: once when the
	// token dies at it (it originates the marker wave), or once when a
	// marker passes through. A marker travels exactly one lap: the member
	// whose successor is the origin consumes it without forwarding.
	member := func(i int) runtime.Proc {
		in, out := chans[i], chans[(i+1)%n]
		succ := (i + 1) % n
		var loop func(retired int) runtime.Proc
		loop = func(retired int) runtime.Proc {
			if retired == tokens {
				return runtime.End{}
			}
			return runtime.Recv{Ch: in, Cont: func(v any) runtime.Proc {
				val := v.(int)
				if val > 1 {
					return runtime.Send{Ch: out, Val: val - 1, Cont: func() runtime.Proc { return loop(retired) }}
				}
				if val == 1 {
					// Last hop: the token dies here; start its wave.
					return runtime.Send{Ch: out, Val: -i, Cont: func() runtime.Proc { return loop(retired + 1) }}
				}
				origin := -val
				if succ == origin {
					return loop(retired + 1) // wave completed its lap
				}
				return runtime.Send{Ch: out, Val: val, Cont: func() runtime.Proc { return loop(retired + 1) }}
			}}
		}
		return loop(0)
	}

	procs := make([]runtime.Proc, 0, n+tokens)
	for i := 0; i < n; i++ {
		procs = append(procs, member(i))
	}
	for t := 0; t < tokens; t++ {
		ch := chans[t%n]
		procs = append(procs, runtime.Send{Ch: ch, Val: laps * n, Cont: func() runtime.Proc { return runtime.End{} }})
	}
	e.Run(procs...)
	return Result{Messages: int64(tokens) * int64(laps) * int64(n)}
}
