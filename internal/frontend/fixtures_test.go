package frontend

import (
	"path/filepath"
	"strings"
	"testing"
)

// fixtureDiags extracts one testdata package and returns its
// diagnostics plus the systems that still came out.
func fixtureDiags(t *testing.T, name string) *Result {
	t.Helper()
	res, err := ExtractPackages(".", filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("ExtractPackages(testdata/%s): %v", name, err)
	}
	return res
}

// assertDiag checks position, code, and message stability for one
// diagnostic — these strings are part of the frontend's contract with
// editors and CI logs.
func assertDiag(t *testing.T, d Diagnostic, wantCode, wantFile string, wantLine int, wantMsg string, wantFatal bool) {
	t.Helper()
	if d.Code != wantCode {
		t.Errorf("code = %q, want %q", d.Code, wantCode)
	}
	if got := filepath.Base(d.Pos.Filename); got != wantFile {
		t.Errorf("file = %q, want %q", got, wantFile)
	}
	if d.Pos.Line != wantLine {
		t.Errorf("line = %d, want %d", d.Pos.Line, wantLine)
	}
	if !strings.Contains(d.Msg, wantMsg) {
		t.Errorf("msg = %q, want it to contain %q", d.Msg, wantMsg)
	}
	if d.Fatal != wantFatal {
		t.Errorf("fatal = %v, want %v", d.Fatal, wantFatal)
	}
}

func TestFixtureEscapingProc(t *testing.T) {
	res := fixtureDiags(t, "escaping")
	if len(res.Systems) != 0 {
		t.Errorf("expected no systems, got %d", len(res.Systems))
	}
	if len(res.Diagnostics) != 1 {
		t.Fatalf("expected 1 diagnostic, got %v", res.Diagnostics)
	}
	assertDiag(t, res.Diagnostics[0], CodeEscapingProc, "escaping.go", 17, "", true)
	if res.Diagnostics[0].Entry != "Escaping" {
		t.Errorf("entry = %q, want Escaping", res.Diagnostics[0].Entry)
	}
}

func TestFixtureNonConstChannel(t *testing.T) {
	res := fixtureDiags(t, "nonconst")
	if len(res.Systems) != 0 {
		t.Errorf("expected no systems, got %d", len(res.Systems))
	}
	if len(res.Diagnostics) != 1 {
		t.Fatalf("expected 1 diagnostic, got %v", res.Diagnostics)
	}
	assertDiag(t, res.Diagnostics[0], CodeNonConstChannel, "nonconst.go", 14, "", true)
}

func TestFixtureShadowedMailbox(t *testing.T) {
	res := fixtureDiags(t, "shadowed")
	// The warning is non-fatal: extraction must still produce a system
	// with the shadowing channel renamed.
	if len(res.Systems) != 1 {
		t.Fatalf("expected 1 system, got %d (diags %v)", len(res.Systems), res.Diagnostics)
	}
	if len(res.Diagnostics) != 1 {
		t.Fatalf("expected 1 diagnostic, got %v", res.Diagnostics)
	}
	assertDiag(t, res.Diagnostics[0], CodeShadowedMailbox, "shadowed.go", 13, "y", false)
	sys := res.Systems[0]
	if !sys.Env.Has("y") || !sys.Env.Has("y2") {
		t.Errorf("env should bind y and renamed y2, got %v", sys.Env)
	}
}
