package frontend

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	gotypes "go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loadedPackage is one parsed+typechecked target package.
type loadedPackage struct {
	fset  *token.FileSet
	dir   string
	path  string
	files []*ast.File
	info  *gotypes.Info
	funcs map[string]*ast.FuncDecl
}

// ExtractPackages extracts every entry function found under the given
// directory patterns (Go-style: a directory, or dir/... for a recursive
// walk), resolved relative to baseDir. Packages that do not import the
// effpi combinators are skipped without typechecking.
func ExtractPackages(baseDir string, patterns ...string) (*Result, error) {
	root, modPath, err := FindModuleRoot(baseDir)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(baseDir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := newModImporter(fset, root, modPath)
	res := &Result{}
	for _, dir := range dirs {
		lp, err := loadDir(fset, imp, dir, modPath, root)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", dir, err)
		}
		if lp == nil {
			continue
		}
		extractPackage(lp, modPath, res)
	}
	return res, nil
}

// ExtractSource extracts entries from a single in-memory Go file,
// typechecked against the module found at (or above) the current
// working directory. This is the effpid "go_source" entry point.
func ExtractSource(filename, src string) (*Result, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, modPath, err := FindModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	imp := newModImporter(fset, root, modPath)
	lp, err := checkFiles(fset, imp, []*ast.File{f}, filename, modPath+"/internal/frontend/gosource")
	if err != nil {
		return nil, err
	}
	res := &Result{}
	extractPackage(lp, modPath, res)
	return res, nil
}

// expandPatterns resolves directory patterns to an ordered, de-duplicated
// directory list. testdata, vendor, and dot/underscore directories are
// skipped in recursive walks.
func expandPatterns(base string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			walkRoot := filepath.Join(base, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			if rest == "" {
				walkRoot = base
			}
			var sub []string
			err := filepath.WalkDir(walkRoot, func(p string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != walkRoot && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(p) {
					sub = append(sub, p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			sort.Strings(sub)
			for _, d := range sub {
				add(d)
			}
			continue
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, filepath.FromSlash(pat))
		}
		st, err := os.Stat(dir)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			return nil, fmt.Errorf("%s is not a directory", pat)
		}
		add(dir)
	}
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}

// loadDir parses and typechecks one target directory; returns nil when
// the package cannot contain entries (no combinator imports).
func loadDir(fset *token.FileSet, imp *modImporter, dir, modPath, root string) (*loadedPackage, error) {
	files, err := parseGoDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 || !importsCombinators(files, modPath) {
		return nil, nil
	}
	pkgPath := importPathFor(dir, root, modPath)
	return checkFiles(fset, imp, files, dir, pkgPath)
}

// importsCombinators pre-scans imports so `verify ./...` does not
// typecheck packages that cannot possibly contain protocol entries.
func importsCombinators(files []*ast.File, modPath string) bool {
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == modPath+"/internal/runtime" || p == modPath+"/internal/actor" {
				return true
			}
		}
	}
	return false
}

func importPathFor(dir, root, modPath string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return modPath + "/x"
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return modPath + "/x"
	}
	if rel == "." {
		return modPath
	}
	return modPath + "/" + filepath.ToSlash(rel)
}

func checkFiles(fset *token.FileSet, imp *modImporter, files []*ast.File, dir, pkgPath string) (*loadedPackage, error) {
	info := &gotypes.Info{
		Types: map[ast.Expr]gotypes.TypeAndValue{},
		Uses:  map[*ast.Ident]gotypes.Object{},
		Defs:  map[*ast.Ident]gotypes.Object{},
	}
	var errs []error
	conf := gotypes.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	_, err := conf.Check(pkgPath, fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("typecheck: %w", errs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	funcs := map[string]*ast.FuncDecl{}
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil {
				funcs[fd.Name.Name] = fd
			}
		}
	}
	return &loadedPackage{fset: fset, dir: dir, path: pkgPath, files: files, info: info, funcs: funcs}, nil
}

// extractPackage runs the extractor over every entry in the package.
func extractPackage(lp *loadedPackage, modPath string, res *Result) {
	for _, f := range lp.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isEntry(fd, lp, modPath) {
				continue
			}
			if sys := extractEntry(lp, modPath, fd, &res.Diagnostics); sys != nil {
				res.Systems = append(res.Systems, sys)
			}
		}
	}
}

// isEntry reports whether fd is an extraction entry point:
//
//	func Name() runtime.Proc
//	func Name(e runtime.Engine) runtime.Proc
func isEntry(fd *ast.FuncDecl, lp *loadedPackage, modPath string) bool {
	if fd.Recv != nil || fd.Body == nil || fd.Type.TypeParams != nil {
		return false
	}
	results := fd.Type.Results
	if results == nil || len(results.List) != 1 || len(results.List[0].Names) > 0 {
		return false
	}
	if !isRuntimeNamed(lp.info.TypeOf(results.List[0].Type), modPath, "Proc") {
		return false
	}
	params := fd.Type.Params
	switch params.NumFields() {
	case 0:
		return true
	case 1:
		return isRuntimeNamed(lp.info.TypeOf(params.List[0].Type), modPath, "Engine")
	}
	return false
}

func isRuntimeNamed(gt gotypes.Type, modPath, name string) bool {
	named, ok := gotypes.Unalias(gt).(*gotypes.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == modPath+"/internal/runtime" && obj.Name() == name
}
