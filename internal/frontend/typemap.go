package frontend

import (
	"fmt"
	"go/token"
	gotypes "go/types"

	"effpi/internal/types"
)

// elemRef is a unification variable for the element type of an extracted
// channel. The constraint grammar is deliberately tiny:
//
//	E ::= unknown | T (concrete effpi type) | co[E]
//
// Typed mailboxes solve their ref immediately (from the Go type
// argument); untyped runtime.Chan refs are solved by the sends observed
// on them — a data send assigns a concrete type, a channel send assigns
// co[E'] where E' is the sent channel's own ref.
type elemRef struct {
	id     int
	fwd    *elemRef // union-find forwarding
	t      types.Type
	chanOf *elemRef
}

func (e *elemRef) find() *elemRef {
	for e.fwd != nil {
		e = e.fwd
	}
	return e
}

func (x *extractor) newElem() *elemRef {
	e := &elemRef{id: x.nextElem}
	x.nextElem++
	return e
}

// elemSentinel is the placeholder Var standing for an unsolved elemRef
// inside the type under construction; substituted out after extraction.
// The NUL prefix keeps it out of the user-visible name space.
func (x *extractor) sentinelFor(e *elemRef) types.Type {
	name := fmt.Sprintf("\x00e%d", e.id)
	x.sentinels[name] = e
	return types.Var{Name: name}
}

// assignElem constrains e to the concrete effpi type t.
func (x *extractor) assignElem(e *elemRef, t types.Type, p token.Pos) {
	e = e.find()
	switch {
	case e.t != nil:
		if !types.Equal(e.t, t) {
			x.refuse(CodeElemConflict, p, "channel carries both %s and %s", e.t, t)
		}
	case e.chanOf != nil:
		co, ok := t.(types.ChanO)
		if !ok {
			x.refuse(CodeElemConflict, p, "channel carries both a channel and %s", t)
		}
		x.assignElem(e.chanOf, co.Elem, p)
	default:
		e.t = t
	}
}

// chanOfElem constrains e to be co[inner] and returns inner: the
// element type of the channels carried on the channel e describes.
func (x *extractor) chanOfElem(e *elemRef, p token.Pos) *elemRef {
	e = e.find()
	if e.chanOf != nil {
		return e.chanOf
	}
	if e.t != nil {
		inner := x.newElem()
		switch ct := e.t.(type) {
		case types.ChanO:
			inner.t = ct.Elem
		case types.ChanI:
			inner.t = ct.Elem
		case types.ChanIO:
			inner.t = ct.Elem
		default:
			x.refuse(CodeElemConflict, p, "value of type %s is used as a channel", e.t)
		}
		return inner
	}
	e.chanOf = x.newElem()
	return e.chanOf
}

// unifyElem merges the constraints of two refs.
func (x *extractor) unifyElem(a, b *elemRef, p token.Pos) {
	a, b = a.find(), b.find()
	if a == b {
		return
	}
	switch {
	case a.t != nil && b.t != nil:
		if !types.Equal(a.t, b.t) {
			x.refuse(CodeElemConflict, p, "channel carries both %s and %s", a.t, b.t)
		}
		b.fwd = a
	case a.t != nil && b.chanOf != nil:
		inner := x.chanOfElem(a, p)
		x.unifyElem(inner, b.chanOf, p)
		b.chanOf = nil
		b.fwd = a
	case b.t != nil && a.chanOf != nil:
		x.unifyElem(b, a, p)
	case b.t != nil:
		a.fwd = b
	case a.chanOf != nil && b.chanOf != nil:
		x.unifyElem(a.chanOf, b.chanOf, p)
		b.chanOf = nil
		b.fwd = a
	default:
		b.fwd = a
	}
}

// resolveElem computes the final element type of a ref; unconstrained
// refs (a channel nothing is ever sent on) default to unit.
func (x *extractor) resolveElem(e *elemRef, seen map[*elemRef]bool) types.Type {
	e = e.find()
	if seen[e] {
		x.refuse(CodeElemConflict, token.NoPos, "recursive channel element type")
	}
	seen[e] = true
	defer delete(seen, e)
	if e.t != nil {
		return e.t
	}
	if e.chanOf != nil {
		return types.ChanO{Elem: x.resolveElem(e.chanOf, seen)}
	}
	return types.Unit{}
}

// substSentinels replaces elem sentinels by their solved types.
func substSentinels(t types.Type, lookup map[string]types.Type) types.Type {
	sub := func(u types.Type) types.Type { return substSentinels(u, lookup) }
	switch v := t.(type) {
	case types.Var:
		if r, ok := lookup[v.Name]; ok {
			return r
		}
		return v
	case types.Union:
		return types.Union{L: sub(v.L), R: sub(v.R)}
	case types.Pi:
		return types.Pi{Var: v.Var, Dom: sub(v.Dom), Cod: sub(v.Cod)}
	case types.Rec:
		return types.Rec{Var: v.Var, Body: sub(v.Body)}
	case types.ChanIO:
		return types.ChanIO{Elem: sub(v.Elem)}
	case types.ChanI:
		return types.ChanI{Elem: sub(v.Elem)}
	case types.ChanO:
		return types.ChanO{Elem: sub(v.Elem)}
	case types.Out:
		return types.Out{Ch: sub(v.Ch), Payload: sub(v.Payload), Cont: sub(v.Cont)}
	case types.In:
		return types.In{Ch: sub(v.Ch), Cont: sub(v.Cont)}
	case types.Par:
		return types.Par{L: sub(v.L), R: sub(v.R)}
	default:
		return t
	}
}

// mapGoType maps a Go type to the effpi payload type it models:
//
//   - bool → bool, string/error → str, numeric → int
//   - empty struct → unit; struct with data fields only → str (an
//     opaque data blob)
//   - actor.Ref[T] → co[map(T)], actor.Mailbox[T] → ci[map(T)]
//   - a struct with exactly one channel-typed field is modelled AS that
//     channel (Pay{Amount int; ReplyTo Ref[Response]} ≡ co[str]),
//     mirroring how the hand-written models track only the reply
//     capability of a message
//
// Everything else — several channel fields, opaque *runtime.Chan fields,
// interfaces, slices — refuses with payload-type.
func (x *extractor) mapGoType(gt gotypes.Type, p token.Pos) types.Type {
	gt = gotypes.Unalias(gt)
	if t := x.refMailboxType(gt, p); t != nil {
		return t
	}
	switch u := gt.Underlying().(type) {
	case *gotypes.Basic:
		info := u.Info()
		switch {
		case info&gotypes.IsBoolean != 0:
			return types.Bool{}
		case info&gotypes.IsString != 0:
			return types.Str{}
		case info&gotypes.IsNumeric != 0:
			return types.Int{}
		}
	case *gotypes.Struct:
		var chanField gotypes.Type
		nchan := 0
		for i := 0; i < u.NumFields(); i++ {
			ft := u.Field(i).Type()
			if x.isChannelish(ft, 0) {
				nchan++
				chanField = ft
			}
		}
		switch {
		case nchan == 1:
			return x.mapGoType(chanField, p)
		case nchan > 1:
			x.refuse(CodePayloadType, p, "struct %s has %d channel-typed fields; at most one is supported", gt, nchan)
		case u.NumFields() == 0:
			return types.Unit{}
		default:
			return types.Str{}
		}
	}
	x.refuse(CodePayloadType, p, "Go type %s has no effpi payload model", gt)
	return nil
}

// refMailboxType maps actor.Ref[T]/actor.Mailbox[T]; nil otherwise.
func (x *extractor) refMailboxType(gt gotypes.Type, p token.Pos) types.Type {
	named, ok := gt.(*gotypes.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != x.actorPath() {
		return nil
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil
	}
	switch obj.Name() {
	case "Ref":
		return types.ChanO{Elem: x.mapGoType(args.At(0), p)}
	case "Mailbox":
		return types.ChanI{Elem: x.mapGoType(args.At(0), p)}
	}
	return nil
}

// isChannelish reports whether a Go type models a channel capability:
// *runtime.Chan, actor.Ref/Mailbox, or a struct with exactly one
// channelish field.
func (x *extractor) isChannelish(gt gotypes.Type, depth int) bool {
	if depth > 8 {
		return false
	}
	gt = gotypes.Unalias(gt)
	if ptr, ok := gt.Underlying().(*gotypes.Pointer); ok {
		return x.isRuntimeChan(ptr.Elem())
	}
	if named, ok := gt.(*gotypes.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == x.actorPath() &&
			(obj.Name() == "Ref" || obj.Name() == "Mailbox") {
			return true
		}
	}
	if st, ok := gt.Underlying().(*gotypes.Struct); ok {
		n := 0
		for i := 0; i < st.NumFields(); i++ {
			if x.isChannelish(st.Field(i).Type(), depth+1) {
				n++
			}
		}
		return n == 1
	}
	return false
}

func (x *extractor) isRuntimeChan(gt gotypes.Type) bool {
	named, ok := gotypes.Unalias(gt).(*gotypes.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == x.runtimePath() && obj.Name() == "Chan"
}
