package frontend

import (
	"testing"

	"effpi/internal/systems"
	"effpi/internal/types"
)

// extractExamples runs the extractor over one example directory and
// indexes the resulting systems by entry name.
func extractExamples(t *testing.T, dir string) (map[string]*System, *Result) {
	t.Helper()
	res, err := ExtractPackages("../..", dir)
	if err != nil {
		t.Fatalf("ExtractPackages(%s): %v", dir, err)
	}
	for _, d := range res.Diagnostics {
		if d.Fatal {
			t.Errorf("fatal diagnostic: %s", d)
		} else {
			t.Logf("diagnostic: %s", d)
		}
	}
	byName := map[string]*System{}
	for _, sys := range res.Systems {
		byName[sys.Name] = sys
	}
	return byName, res
}

// envEqual compares two environments up to structural type equality,
// requiring identical binding names and order.
func envEqual(a, b *types.Env) bool {
	an, bn := a.Names(), b.Names()
	if len(an) != len(bn) {
		return false
	}
	for i, n := range an {
		if n != bn[i] {
			return false
		}
		at, _ := a.Lookup(n)
		bt, _ := b.Lookup(n)
		if !types.Equal(at, bt) {
			return false
		}
	}
	return true
}

func assertMatchesRow(t *testing.T, sys *System, row *systems.System) {
	t.Helper()
	if sys == nil {
		t.Fatalf("entry not extracted (want match for %s)", row.Name)
	}
	if !envEqual(sys.Env, row.Env) {
		t.Errorf("env mismatch:\n got  %v\n want %v", sys.Env, row.Env)
	}
	if !types.Equal(sys.Type, row.Type) {
		t.Errorf("type mismatch:\n got  %v\n want %v", types.Canon(sys.Type), types.Canon(row.Type))
	}
	if sys.Map.Len() == 0 {
		t.Errorf("source map is empty")
	}
}

func TestExtractPhilosophersMatchesHandModel(t *testing.T) {
	byName, _ := extractExamples(t, "examples/philosophers")
	assertMatchesRow(t, byName["PhilosophersDeadlock"], systems.DiningPhilosophers(4, true))
	assertMatchesRow(t, byName["Philosophers"], systems.DiningPhilosophers(4, false))
}

func TestExtractPaymentMatchesHandModel(t *testing.T) {
	byName, _ := extractExamples(t, "examples/payment")
	row := systems.PaymentAudit(3)
	sys := byName["Payment"]
	if sys == nil {
		t.Fatalf("Payment entry not extracted")
	}
	// The three client mailboxes get source-derived names (inbox,
	// inbox2, inbox3) instead of the hand model's c1..c3; the systems
	// the two describe are identical up to that renaming. Assert the
	// property-relevant bindings (m, aud) exactly and the overall term
	// after renaming the client channels.
	for _, ch := range []string{"m", "aud"} {
		got, ok := sys.Env.Lookup(ch)
		if !ok {
			t.Fatalf("env missing %s: %v", ch, sys.Env)
		}
		want, _ := row.Env.Lookup(ch)
		if !types.Equal(got, want) {
			t.Errorf("env[%s] mismatch: got %v want %v", ch, got, want)
		}
	}
	renamed := renameVars(sys.Type, map[string]string{
		"inbox": "c1", "inbox2": "c2", "inbox3": "c3",
	})
	if !types.Equal(renamed, row.Type) {
		t.Errorf("type mismatch:\n got  %v\n want %v", types.Canon(renamed), types.Canon(row.Type))
	}
	if sys.Map.Len() == 0 {
		t.Errorf("source map is empty")
	}
}

func TestExtractQuickstartEnv(t *testing.T) {
	byName, _ := extractExamples(t, "examples/quickstart")
	sys := byName["PingPong"]
	if sys == nil {
		t.Fatalf("PingPong entry not extracted")
	}
	want := types.NewEnv().
		MustExtend("y", types.ChanIO{Elem: types.Str{}}).
		MustExtend("z", types.ChanIO{Elem: types.ChanO{Elem: types.Str{}}})
	if !envEqual(sys.Env, want) {
		t.Errorf("env mismatch:\n got  %v\n want %v", sys.Env, want)
	}
	if sys.Map.Len() == 0 {
		t.Errorf("source map is empty")
	}
}

func TestExtractMobilecode(t *testing.T) {
	byName, _ := extractExamples(t, "examples/mobilecode")
	sys := byName["MobileServer"]
	if sys == nil {
		t.Fatalf("MobileServer entry not extracted")
	}
	for _, ch := range []string{"z1", "z2", "out"} {
		got, ok := sys.Env.Lookup(ch)
		if !ok {
			t.Fatalf("env missing %s: %v", ch, sys.Env)
		}
		if !types.Equal(got, types.ChanIO{Elem: types.Int{}}) {
			t.Errorf("env[%s] = %v, want chan[int]", ch, got)
		}
	}
	if sys.Map.Len() == 0 {
		t.Errorf("source map is empty")
	}
}

// renameVars renames free channel variables in a term (used to align
// source-derived channel names with hand-model names in tests).
func renameVars(t types.Type, m map[string]string) types.Type {
	ren := func(x types.Type) types.Type { return renameVars(x, m) }
	switch v := t.(type) {
	case types.Var:
		if to, ok := m[v.Name]; ok {
			return types.Var{Name: to}
		}
		return v
	case types.Out:
		return types.Out{Ch: ren(v.Ch), Payload: ren(v.Payload), Cont: ren(v.Cont)}
	case types.In:
		return types.In{Ch: ren(v.Ch), Cont: ren(v.Cont)}
	case types.Par:
		return types.Par{L: ren(v.L), R: ren(v.R)}
	case types.Union:
		return types.Union{L: ren(v.L), R: ren(v.R)}
	case types.Pi:
		return types.Pi{Var: v.Var, Dom: ren(v.Dom), Cod: ren(v.Cod)}
	case types.Rec:
		return types.Rec{Var: v.Var, Body: ren(v.Body)}
	case types.ChanIO:
		return types.ChanIO{Elem: ren(v.Elem)}
	case types.ChanI:
		return types.ChanI{Elem: ren(v.Elem)}
	case types.ChanO:
		return types.ChanO{Elem: ren(v.Elem)}
	default:
		return t
	}
}
