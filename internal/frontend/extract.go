package frontend

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	gotypes "go/types"

	"effpi/internal/types"
)

const (
	maxInlineDepth = 64
	maxLoopIter    = 512
)

// refusal aborts extraction of one entry; recovered at the entry boundary.
type refusal struct{ d Diagnostic }

// chanInfo is one extracted channel (a NewChan or NewMailbox site).
type chanInfo struct {
	id   int
	name string // environment name; "" until bound
	elem *elemRef
	pos  token.Pos
}

// value is the abstract-interpretation domain.
type value interface{ frontendValue() }

type chanV struct{ info *chanInfo }

// msgV is a value bound by an input prefix: the Pi variable of the
// extracted In node. srcElem is the carrying channel's element ref —
// the message's own type — which makes payload forwarding dependent
// (sending a received message yields the singleton x̄, as in the paper).
type msgV struct {
	name    string
	srcElem *elemRef
	goType  gotypes.Type // static Go type when received from a typed mailbox
}

type constV struct {
	v      constant.Value
	goType gotypes.Type
}

// opaqueV is a data value with known static type but unknown content.
type opaqueV struct{ goType gotypes.Type }

type sliceV struct{ elems []value }

type structV struct {
	fields []fieldV
	goType gotypes.Type
}

type fieldV struct {
	name string
	v    value
}

type engineV struct{}

type funcV struct {
	decl *ast.FuncDecl // top-level function, or
	lit  *ast.FuncLit  // closure with its defining scope
	sc   *scope
}

// loopV is the continuation passed into a Forever body.
type loopV struct{ recVar string }

type procV struct{ t types.Type }

type tupleV struct{ elems []value }

func (chanV) frontendValue()   {}
func (msgV) frontendValue()    {}
func (constV) frontendValue()  {}
func (opaqueV) frontendValue() {}
func (*sliceV) frontendValue() {}
func (structV) frontendValue() {}
func (engineV) frontendValue() {}
func (funcV) frontendValue()   {}
func (loopV) frontendValue()   {}
func (procV) frontendValue()   {}
func (tupleV) frontendValue()  {}

type scope struct {
	parent *scope
	vars   map[string]value
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, vars: map[string]value{}}
}

func (s *scope) lookup(name string) (value, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (s *scope) define(name string, v value) { s.vars[name] = v }

func (s *scope) assign(name string, v value) bool {
	for sc := s; sc != nil; sc = sc.parent {
		if _, ok := sc.vars[name]; ok {
			sc.vars[name] = v
			return true
		}
	}
	return false
}

// snapshot deep-copies the scope chain so τ-widened branches interpret
// mutations independently. sliceV contents are copied one level.
func (s *scope) snapshot() *scope {
	if s == nil {
		return nil
	}
	ns := &scope{parent: s.parent.snapshot(), vars: make(map[string]value, len(s.vars))}
	for k, v := range s.vars {
		if sv, ok := v.(*sliceV); ok {
			v = &sliceV{elems: append([]value(nil), sv.elems...)}
		}
		ns.vars[k] = v
	}
	return ns
}

type frame struct {
	key    string
	recVar string
	used   bool
}

type extractor struct {
	pkg       *loadedPackage
	modPath   string
	entry     string
	diags     *[]Diagnostic
	chans     []*chanInfo
	names     map[string]bool
	nextElem  int
	sentinels map[string]*elemRef
	smap      *SourceMap
	frames    []*frame
	loopUsed  map[string]*bool
	recCount  int
}

func (x *extractor) runtimePath() string { return x.modPath + "/internal/runtime" }
func (x *extractor) actorPath() string   { return x.modPath + "/internal/actor" }

func (x *extractor) position(p token.Pos) token.Position { return x.pkg.fset.Position(p) }

func (x *extractor) warn(code string, p token.Pos, format string, args ...any) {
	*x.diags = append(*x.diags, Diagnostic{
		Code: code, Entry: x.entry, Pos: x.position(p), Msg: fmt.Sprintf(format, args...),
	})
}

func (x *extractor) refuse(code string, p token.Pos, format string, args ...any) {
	panic(refusal{Diagnostic{
		Code: code, Entry: x.entry, Pos: x.position(p), Fatal: true,
		Msg: fmt.Sprintf(format, args...),
	}})
}

// claimName returns base, uniquified against every channel, message and
// recursion variable claimed so far — extracted names never capture.
func (x *extractor) claimName(base string) string {
	if base == "" || base == "_" {
		base = "ch"
	}
	name := base
	for i := 2; x.names[name]; i++ {
		name = fmt.Sprintf("%s%d", base, i)
	}
	x.names[name] = true
	return name
}

func (x *extractor) freshRecVar() string {
	x.recCount++
	if x.recCount == 1 {
		return "t"
	}
	return fmt.Sprintf("t%d", x.recCount)
}

func (x *extractor) newChan(p token.Pos) *chanInfo {
	ci := &chanInfo{id: len(x.chans), elem: x.newElem(), pos: p}
	x.chans = append(x.chans, ci)
	return ci
}

// bindChanName names a freshly created channel after its binding. If the
// name already denotes a channel visible in scope, the creation shadows
// a live mailbox: warn and rename, never silently merge.
func (x *extractor) bindChanName(ci *chanInfo, base string, sc *scope, p token.Pos) {
	if ci.name != "" || base == "_" {
		return
	}
	if old, ok := sc.lookup(base); ok {
		if _, isChan := old.(chanV); isChan {
			x.warn(CodeShadowedMailbox, p,
				"channel %q shadows an existing channel of the same name; the new channel is renamed in the extracted environment", base)
		}
	}
	ci.name = x.claimName(base)
}

// extractEntry extracts one entry function; nil if the entry is refused.
func extractEntry(pkg *loadedPackage, modPath string, fn *ast.FuncDecl, diags *[]Diagnostic) (sys *System) {
	x := &extractor{
		pkg:       pkg,
		modPath:   modPath,
		entry:     fn.Name.Name,
		diags:     diags,
		names:     map[string]bool{},
		sentinels: map[string]*elemRef{},
		smap:      NewSourceMap(),
		loopUsed:  map[string]*bool{},
	}
	defer func() {
		if r := recover(); r != nil {
			ref, ok := r.(refusal)
			if !ok {
				panic(r)
			}
			*diags = append(*diags, ref.d)
			sys = nil
		}
	}()
	sc := newScope(nil)
	for _, field := range fn.Type.Params.List {
		for _, n := range field.Names {
			sc.define(n.Name, engineV{})
		}
	}
	ret, returned := x.walkBody(fn.Body.List, sc)
	if !returned {
		x.refuse(CodeUnsupported, fn.End(), "entry falls through without returning a proc")
	}
	t := x.asProc(ret, fn.Body.Pos())

	lookup := make(map[string]types.Type, len(x.sentinels))
	for name, ref := range x.sentinels {
		lookup[name] = x.resolveElem(ref, map[*elemRef]bool{})
	}
	t = substSentinels(t, lookup)

	env := types.NewEnv()
	for _, ci := range x.chans {
		if ci.name == "" {
			ci.name = x.claimName("ch")
		}
		env = env.MustExtend(ci.name, types.ChanIO{Elem: x.resolveElem(ci.elem, map[*elemRef]bool{})})
	}
	return &System{
		Name: fn.Name.Name,
		Pkg:  pkg.dir,
		Pos:  pkg.fset.Position(fn.Pos()),
		Env:  env,
		Type: t,
		Map:  x.smap,
	}
}

// walkBody interprets a statement list; returns (value, true) when a
// return statement decides the result.
func (x *extractor) walkBody(stmts []ast.Stmt, sc *scope) (value, bool) {
	for i, st := range stmts {
		rest := stmts[i+1:]
		switch s := st.(type) {
		case *ast.ReturnStmt:
			if len(s.Results) != 1 {
				x.refuse(CodeUnsupported, s.Pos(), "expected exactly one return value")
			}
			v := x.eval(s.Results[0], sc)
			if ov, ok := v.(opaqueV); ok && isRuntimeNamed(ov.goType, x.modPath, "Proc") {
				// Refuse here rather than at the enclosing combinator so
				// the diagnostic points at the expression that escaped.
				x.refuse(CodeEscapingProc, s.Results[0].Pos(),
					"proc value escapes static extraction (opaque expression of type %s)", ov.goType)
			}
			return v, true
		case *ast.BlockStmt:
			if v, ok := x.walkBody(s.List, newScope(sc)); ok {
				return v, true
			}
		case *ast.IfStmt:
			if s.Init != nil {
				x.refuse(CodeUnsupported, s.Pos(), "if statements with init clauses are not extractable")
			}
			cond, known := x.constBool(s.Cond, sc)
			if known {
				var branch []ast.Stmt
				if cond {
					branch = s.Body.List
				} else if s.Else != nil {
					branch = elseStmts(s.Else)
				}
				if v, ok := x.walkBody(branch, newScope(sc)); ok {
					return v, true
				}
				continue
			}
			// Data-dependent branch: τ-widening. The extracted type is the
			// internal choice of both continuations — a sound
			// overapproximation of whichever branch the data selects.
			thenStmts := append(append([]ast.Stmt(nil), s.Body.List...), rest...)
			var elseList []ast.Stmt
			if s.Else != nil {
				elseList = elseStmts(s.Else)
			}
			elseAll := append(append([]ast.Stmt(nil), elseList...), rest...)
			tv, ok1 := x.walkBody(thenStmts, sc.snapshot())
			ev, ok2 := x.walkBody(elseAll, sc.snapshot())
			if !ok1 || !ok2 {
				x.refuse(CodeUnsupported, s.Pos(), "data-dependent branch must return a proc on every path")
			}
			return procV{t: types.UnionOf(x.asProc(tv, s.Pos()), x.asProc(ev, s.Pos()))}, true
		default:
			x.execSimpleStmt(st, sc)
		}
	}
	return nil, false
}

func elseStmts(e ast.Stmt) []ast.Stmt {
	switch e := e.(type) {
	case *ast.BlockStmt:
		return e.List
	default:
		return []ast.Stmt{e}
	}
}

// execSimpleStmt interprets an effect-only statement (no proc returns).
func (x *extractor) execSimpleStmt(st ast.Stmt, sc *scope) {
	switch s := st.(type) {
	case *ast.AssignStmt:
		x.execAssign(s, sc)
	case *ast.DeclStmt:
		x.execDecl(s, sc)
	case *ast.IncDecStmt:
		id, ok := s.X.(*ast.Ident)
		if !ok {
			x.refuse(CodeUnsupported, s.Pos(), "unsupported increment target")
		}
		c, ok := x.eval(s.X, sc).(constV)
		if !ok {
			x.refuse(CodeNonConstLoop, s.Pos(), "%s is not compile-time constant", id.Name)
		}
		op := token.ADD
		if s.Tok == token.DEC {
			op = token.SUB
		}
		nv := constant.BinaryOp(c.v, op, constant.MakeInt64(1))
		if !sc.assign(id.Name, constV{v: nv, goType: c.goType}) {
			sc.define(id.Name, constV{v: nv, goType: c.goType})
		}
	case *ast.ForStmt:
		x.execFor(s, sc)
	case *ast.BlockStmt:
		blockSc := newScope(sc)
		for _, inner := range s.List {
			x.execSimpleStmt(inner, blockSc)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			x.refuse(CodeUnsupported, s.Pos(), "if statements with init clauses are not extractable")
		}
		cond, known := x.constBool(s.Cond, sc)
		if !known {
			x.refuse(CodeUnsupported, s.Pos(), "data-dependent branching without a proc return is not extractable")
		}
		if cond {
			x.execSimpleStmt(s.Body, sc)
		} else if s.Else != nil {
			x.execSimpleStmt(s.Else, sc)
		}
	case *ast.EmptyStmt:
	default:
		x.refuse(CodeUnsupported, st.Pos(), "unsupported statement %T in protocol code", st)
	}
}

// execFor unrolls a constant-bound three-clause for loop.
func (x *extractor) execFor(s *ast.ForStmt, sc *scope) {
	if s.Cond == nil {
		x.refuse(CodeNonConstLoop, s.Pos(), "infinite for loops are not extractable; use Forever")
	}
	loopSc := newScope(sc)
	if s.Init != nil {
		x.execSimpleStmt(s.Init, loopSc)
	}
	for iter := 0; ; iter++ {
		if iter > maxLoopIter {
			x.refuse(CodeNonConstLoop, s.Pos(), "loop exceeds the %d-iteration unroll budget", maxLoopIter)
		}
		b, known := x.constBool(s.Cond, loopSc)
		if !known {
			x.refuse(CodeNonConstLoop, s.Cond.Pos(), "loop condition is not compile-time constant")
		}
		if !b {
			return
		}
		bodySc := newScope(loopSc)
		for _, st := range s.Body.List {
			x.execSimpleStmt(st, bodySc)
		}
		if s.Post != nil {
			x.execSimpleStmt(s.Post, loopSc)
		}
	}
}

func (x *extractor) execAssign(s *ast.AssignStmt, sc *scope) {
	define := s.Tok == token.DEFINE
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		// compound ops (+=, ...) on constants
		if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
			op, ok := compoundOp(s.Tok)
			if ok {
				l, lok := x.eval(s.Lhs[0], sc).(constV)
				r, rok := x.eval(s.Rhs[0], sc).(constV)
				if lok && rok {
					x.bindTarget(s.Lhs[0], constV{v: binaryConst(l.v, op, r.v), goType: l.goType}, false, sc)
					return
				}
			}
		}
		x.refuse(CodeUnsupported, s.Pos(), "unsupported assignment operator %s", s.Tok)
	}
	var vals []value
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		v := x.eval(s.Rhs[0], sc)
		tup, ok := v.(tupleV)
		if !ok || len(tup.elems) != len(s.Lhs) {
			x.refuse(CodeUnsupported, s.Pos(), "unsupported multi-value assignment")
		}
		vals = tup.elems
	} else if len(s.Rhs) == len(s.Lhs) {
		for _, r := range s.Rhs {
			vals = append(vals, x.eval(r, sc))
		}
	} else {
		x.refuse(CodeUnsupported, s.Pos(), "unsupported assignment shape")
	}
	for i, lhs := range s.Lhs {
		x.bindTarget(lhs, vals[i], define, sc)
	}
}

func compoundOp(t token.Token) (token.Token, bool) {
	switch t {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.REM_ASSIGN:
		return token.REM, true
	}
	return token.ILLEGAL, false
}

func (x *extractor) bindTarget(lhs ast.Expr, v value, define bool, sc *scope) {
	switch t := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if cv, ok := v.(chanV); ok {
			x.bindChanName(cv.info, t.Name, sc, t.Pos())
		}
		if t.Name == "_" {
			return
		}
		if define {
			sc.define(t.Name, v)
			return
		}
		if !sc.assign(t.Name, v) {
			x.refuse(CodeUnsupported, t.Pos(), "assignment to %q, which is not a local value", t.Name)
		}
	case *ast.IndexExpr:
		base := x.eval(t.X, sc)
		sv, ok := base.(*sliceV)
		if !ok {
			x.refuse(CodeUnsupported, t.Pos(), "unsupported indexed assignment target")
		}
		idx := x.constIndex(t.Index, sc, len(sv.elems))
		if cv, ok := v.(chanV); ok && cv.info.name == "" {
			if baseName, ok := ast.Unparen(t.X).(*ast.Ident); ok {
				cv.info.name = x.claimName(fmt.Sprintf("%s%d", baseName.Name, idx))
			}
		}
		sv.elems[idx] = v
	default:
		x.refuse(CodeUnsupported, lhs.Pos(), "unsupported assignment target %T", lhs)
	}
}

func (x *extractor) constIndex(e ast.Expr, sc *scope, n int) int {
	v := x.eval(e, sc)
	c, ok := v.(constV)
	if !ok {
		x.refuse(CodeNonConstChannel, e.Pos(), "index is not compile-time constant")
	}
	i, ok := constant.Int64Val(constant.ToInt(c.v))
	if !ok || i < 0 || int(i) >= n {
		x.refuse(CodeUnsupported, e.Pos(), "index %s out of extractable range", c.v)
	}
	return int(i)
}

func (x *extractor) execDecl(s *ast.DeclStmt, sc *scope) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		x.refuse(CodeUnsupported, s.Pos(), "unsupported declaration")
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			x.refuse(CodeUnsupported, spec.Pos(), "unsupported declaration")
		}
		for i, name := range vs.Names {
			var v value
			if i < len(vs.Values) {
				v = x.eval(vs.Values[i], sc)
			} else {
				v = x.zeroValue(name)
			}
			if cv, ok := v.(chanV); ok {
				x.bindChanName(cv.info, name.Name, sc, name.Pos())
			}
			if name.Name != "_" {
				sc.define(name.Name, v)
			}
		}
	}
}

func (x *extractor) zeroValue(name *ast.Ident) value {
	gt := x.pkg.info.TypeOf(name)
	if gt != nil {
		if _, ok := gt.Underlying().(*gotypes.Slice); ok {
			return &sliceV{}
		}
	}
	return opaqueV{goType: gt}
}

func (x *extractor) constBool(e ast.Expr, sc *scope) (bool, bool) {
	v := x.eval(e, sc)
	if c, ok := v.(constV); ok && c.v.Kind() == constant.Bool {
		return constant.BoolVal(c.v), true
	}
	return false, false
}

// asProc demands a proc value; anything else means the proc escaped the
// extractable fragment somewhere upstream.
func (x *extractor) asProc(v value, p token.Pos) types.Type {
	switch v := v.(type) {
	case procV:
		return v.t
	case opaqueV:
		x.refuse(CodeEscapingProc, p, "proc value escapes static extraction (opaque expression of type %s)", v.goType)
	}
	x.refuse(CodeEscapingProc, p, "expression does not evaluate to an extractable proc")
	return nil
}
