package frontend

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	gotypes "go/types"
	"os"
	"path/filepath"
	"strings"
)

// FindModuleRoot walks up from dir to the nearest go.mod, returning the
// containing directory and the module path it declares.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			mp := parseModulePath(data)
			if mp == "" {
				return "", "", fmt.Errorf("frontend: %s/go.mod has no module directive", d)
			}
			return d, mp, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("frontend: no go.mod found in or above %s", dir)
		}
		d = parent
	}
}

func parseModulePath(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// modImporter resolves imports during typechecking. Paths inside the
// current module are parsed and typechecked recursively from repository
// source (the module has no external dependencies, so this is complete);
// everything else — the standard library — is delegated to the compiler
// source importer, which reads GOROOT source and needs no export data.
type modImporter struct {
	fset    *token.FileSet
	root    string
	modPath string
	std     gotypes.Importer
	cache   map[string]*gotypes.Package
	stack   []string
}

func newModImporter(fset *token.FileSet, root, modPath string) *modImporter {
	return &modImporter{
		fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*gotypes.Package{},
	}
}

func (m *modImporter) Import(path string) (*gotypes.Package, error) {
	if pkg, ok := m.cache[path]; ok {
		return pkg, nil
	}
	if path == m.modPath || strings.HasPrefix(path, m.modPath+"/") {
		for _, p := range m.stack {
			if p == path {
				return nil, fmt.Errorf("import cycle through %s", path)
			}
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(path, m.modPath), "/")
		dir := filepath.Join(m.root, filepath.FromSlash(rel))
		m.stack = append(m.stack, path)
		pkg, err := m.checkDir(dir, path)
		m.stack = m.stack[:len(m.stack)-1]
		if err != nil {
			return nil, err
		}
		m.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := m.std.Import(path)
	if err != nil {
		return nil, err
	}
	m.cache[path] = pkg
	return pkg, nil
}

// checkDir parses and typechecks the module-internal package in dir.
// No gotypes.Info is collected for dependency packages.
func (m *modImporter) checkDir(dir, path string) (*gotypes.Package, error) {
	files, err := parseGoDir(m.fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := gotypes.Config{Importer: m}
	return conf.Check(path, m.fset, files, nil)
}

// parseGoDir parses every buildable non-test .go file in dir.
func parseGoDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}
