// Package frontend statically extracts effpi behavioural types from Go
// source written against the repository's own combinator packages
// (internal/runtime and internal/actor).
//
// The extractor is an abstract interpreter over the bodies of "entry"
// functions: top-level functions of the form
//
//	func Name() runtime.Proc
//	func Name(e runtime.Engine) runtime.Proc
//
// Continuation closures give sequencing, NewChan/NewMailbox calls give
// the channel environment, Forever loops and converging recursion give
// µ-types. The result is a types.Env + types.Type pair that feeds the
// existing verify pipeline unchanged, plus a SourceMap from extracted
// send/receive actions back to their token.Position, so FAIL witnesses
// can point at file:line instead of interned state ids.
//
// Unextractable constructs never produce silent wrong terms: data-
// dependent branching widens to an internal choice (τ-widening, a sound
// overapproximation of the branch actually taken); everything else —
// dynamic channel arithmetic, proc values escaping through interfaces
// or uninlineable calls, non-constant loop bounds, unbounded recursion
// — refuses the entry with a positioned Diagnostic. See DESIGN.md
// §frontend for the extraction rules and the soundness posture.
package frontend

import (
	"fmt"
	"go/token"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// Diagnostic codes. The set is part of the tool contract: effpilint
// output and the fixture tests pin code, position and message.
const (
	// CodeNonConstChannel: a channel position (Send.Ch, Recv.Ch, Tell,
	// Read) does not resolve to a statically-known channel — dynamic
	// index, channel arithmetic, value from an opaque call. Fatal.
	CodeNonConstChannel = "nonconst-channel"
	// CodeEscapingProc: a proc value flows through a construct the
	// extractor cannot see through (interface method, method call,
	// opaque callee). Fatal.
	CodeEscapingProc = "escaping-proc"
	// CodeShadowedMailbox: a channel is created under a name that
	// already denotes another channel in scope. Non-fatal: the new
	// channel is renamed in the extracted environment.
	CodeShadowedMailbox = "shadowed-mailbox"
	// CodeUnboundedRecursion: call inlining exceeded the depth budget
	// without converging to a recursive frame. Fatal.
	CodeUnboundedRecursion = "unbounded-recursion"
	// CodeNonConstLoop: a for loop whose bounds are not compile-time
	// constant (or that exceeds the unroll budget). Fatal.
	CodeNonConstLoop = "nonconst-loop"
	// CodePayloadType: a payload's Go type has no effpi model (more
	// than one channel field, opaque *runtime.Chan field, ...). Fatal.
	CodePayloadType = "payload-type"
	// CodeElemConflict: a channel is used at two incompatible element
	// types. Fatal.
	CodeElemConflict = "elem-conflict"
	// CodeUnsupported: any other construct outside the extractable
	// fragment (select, go, method values, ...). Fatal.
	CodeUnsupported = "unsupported"
)

// Diagnostic is a positioned, lint-style extraction finding.
type Diagnostic struct {
	Code  string
	Entry string // entry function being extracted ("" for package-level findings)
	Pos   token.Position
	Msg   string
	// Fatal reports that the enclosing entry was refused: no System is
	// produced for it. Non-fatal diagnostics (shadowed-mailbox) describe
	// a recoverable repair the extractor applied.
	Fatal bool
}

func (d Diagnostic) String() string {
	entry := ""
	if d.Entry != "" {
		entry = d.Entry + ": "
	}
	return fmt.Sprintf("%s: %s%s: %s", d.Pos, entry, d.Code, d.Msg)
}

// System is one extracted entry: a verifiable env+type pair plus the
// source positions of every extracted action.
type System struct {
	Name string // entry function name
	Pkg  string // package directory the entry was extracted from
	Pos  token.Position
	Env  *types.Env
	Type types.Type
	Map  *SourceMap
}

// Result collects everything extracted from a set of packages.
type Result struct {
	Systems     []*System
	Diagnostics []Diagnostic
}

// HasFatal reports whether any entry was refused.
func (r *Result) HasFatal() bool {
	for _, d := range r.Diagnostics {
		if d.Fatal {
			return true
		}
	}
	return false
}

// Dir distinguishes the two action directions a source position can map.
type Dir uint8

const (
	DirSend Dir = iota
	DirRecv
)

type smKey struct {
	name string
	dir  Dir
}

// SourceMap maps (channel-or-message variable name, direction) pairs to
// the source positions of the extracted actions on them. Witness labels
// carry the subject variable (typelts.Output/Input/Comm), so annotating
// a lasso step is a pair of lookups. Lookups may miss — e.g. when the
// exploration substituted a transmitted channel for the static message
// variable the position was recorded under — and that is fine: the
// annotation is best-effort per step.
type SourceMap struct {
	pos map[smKey][]token.Position
}

func NewSourceMap() *SourceMap {
	return &SourceMap{pos: map[smKey][]token.Position{}}
}

func (m *SourceMap) Add(name string, dir Dir, p token.Position) {
	k := smKey{name, dir}
	for _, have := range m.pos[k] {
		if have == p {
			return
		}
	}
	m.pos[k] = append(m.pos[k], p)
}

func (m *SourceMap) Lookup(name string, dir Dir) []token.Position {
	if m == nil {
		return nil
	}
	return m.pos[smKey{name, dir}]
}

// Len returns the number of distinct (name, direction) keys mapped.
func (m *SourceMap) Len() int {
	if m == nil {
		return 0
	}
	return len(m.pos)
}

// LabelPositions returns the source positions behind a witness label:
// the send site for outputs, the receive site for inputs, and both for
// synchronisations. τ-choice, ✔ and ⊠ labels have no position.
func (m *SourceMap) LabelPositions(l typelts.Label) []token.Position {
	if m == nil {
		return nil
	}
	switch l := l.(type) {
	case typelts.Output:
		if v, ok := l.Subject.(types.Var); ok {
			return m.Lookup(v.Name, DirSend)
		}
	case typelts.Input:
		if v, ok := l.Subject.(types.Var); ok {
			return m.Lookup(v.Name, DirRecv)
		}
	case typelts.Comm:
		var out []token.Position
		if v, ok := l.Sender.(types.Var); ok {
			out = append(out, m.Lookup(v.Name, DirSend)...)
		}
		if v, ok := l.Receiver.(types.Var); ok {
			out = append(out, m.Lookup(v.Name, DirRecv)...)
		}
		return out
	}
	return nil
}
