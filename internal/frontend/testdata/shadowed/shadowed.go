// Package shadowed exercises the shadowed-mailbox warning: a channel
// is recreated under a name that still denotes a live channel, which
// is almost always a bug in protocol code (the old endpoint leaks).
// The warning is non-fatal; extraction continues with a renamed
// channel.
package shadowed

import rt "effpi/internal/runtime"

func Shadowed() rt.Proc {
	y := rt.NewChan()
	return rt.Recv{Ch: y, Cont: func(msg any) rt.Proc {
		y := rt.NewChan()
		return rt.Send{Ch: y, Val: 2, Cont: nil}
	}}
}
