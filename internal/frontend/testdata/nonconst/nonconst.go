// Package nonconst exercises the nonconst-channel diagnostic: the
// channel operated on is chosen by a value the extractor cannot
// evaluate, so the subject of the send is not statically known.
package nonconst

import rt "effpi/internal/runtime"

var which int

func NonConst() rt.Proc {
	f := make([]*rt.Chan, 2)
	f[0] = rt.NewChan()
	f[1] = rt.NewChan()
	return rt.Send{Ch: f[which], Val: 1, Cont: nil}
}
