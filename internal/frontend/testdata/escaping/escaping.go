// Package escaping exercises the escaping-proc diagnostic: the
// continuation comes from an interface method, so the extractor cannot
// see its behaviour and must refuse rather than guess.
package escaping

import rt "effpi/internal/runtime"

type procMaker interface {
	Make() rt.Proc
}

var maker procMaker

func Escaping() rt.Proc {
	y := rt.NewChan()
	return rt.Send{Ch: y, Val: 1, Cont: func() rt.Proc {
		return maker.Make()
	}}
}
