package frontend

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	gotypes "go/types"
	"strings"

	"effpi/internal/types"
)

// eval interprets an expression into the abstract value domain. It
// refuses only where a construct makes the *channel/proc structure*
// unknowable; plain data expressions degrade to opaqueV and are only
// rejected if they later appear in a channel or proc position.
func (x *extractor) eval(e ast.Expr, sc *scope) value {
	if tv, ok := x.pkg.info.Types[e]; ok && tv.Value != nil {
		return constV{v: tv.Value, goType: tv.Type}
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return x.eval(e.X, sc)
	case *ast.Ident:
		if v, ok := sc.lookup(e.Name); ok {
			return v
		}
		if fd, ok := x.pkg.funcs[e.Name]; ok {
			return funcV{decl: fd}
		}
		return opaqueV{goType: x.pkg.info.TypeOf(e)}
	case *ast.FuncLit:
		return funcV{lit: e, sc: sc}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return x.eval(e.X, sc)
		}
		if c, ok := x.eval(e.X, sc).(constV); ok {
			return constV{v: constant.UnaryOp(e.Op, c.v, 0), goType: c.goType}
		}
		return opaqueV{goType: x.pkg.info.TypeOf(e)}
	case *ast.BinaryExpr:
		l, lok := x.eval(e.X, sc).(constV)
		r, rok := x.eval(e.Y, sc).(constV)
		if lok && rok {
			return x.foldBinary(e, l, r)
		}
		return opaqueV{goType: x.pkg.info.TypeOf(e)}
	case *ast.SelectorExpr:
		return x.evalSelector(e, sc)
	case *ast.IndexExpr:
		// Generic instantiation (NewMailbox[T]) reaches eval only via
		// CallExpr; a value index here is a slice access.
		if v, isSlice := x.evalIndex(e, sc); isSlice {
			return v
		}
		return opaqueV{goType: x.pkg.info.TypeOf(e)}
	case *ast.CompositeLit:
		return x.evalComposite(e, sc)
	case *ast.CallExpr:
		return x.evalCall(e, sc)
	case *ast.TypeAssertExpr:
		return x.evalTypeAssert(e, sc)
	}
	return opaqueV{goType: x.pkg.info.TypeOf(e)}
}

func (x *extractor) foldBinary(e *ast.BinaryExpr, l, r constV) value {
	switch e.Op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return constV{v: constant.MakeBool(compareConst(l.v, e.Op, r.v)), goType: x.pkg.info.TypeOf(e)}
	case token.LAND:
		return constV{v: constant.MakeBool(constant.BoolVal(l.v) && constant.BoolVal(r.v)), goType: x.pkg.info.TypeOf(e)}
	case token.LOR:
		return constV{v: constant.MakeBool(constant.BoolVal(l.v) || constant.BoolVal(r.v)), goType: x.pkg.info.TypeOf(e)}
	default:
		return constV{v: binaryConst(l.v, e.Op, r.v), goType: x.pkg.info.TypeOf(e)}
	}
}

func compareConst(l constant.Value, op token.Token, r constant.Value) bool {
	if l.Kind() == constant.Int && r.Kind() == constant.Int {
		return constant.Compare(constant.ToInt(l), op, constant.ToInt(r))
	}
	return constant.Compare(l, op, r)
}

func binaryConst(l constant.Value, op token.Token, r constant.Value) constant.Value {
	if op == token.QUO && l.Kind() == constant.Int && r.Kind() == constant.Int {
		op = token.QUO_ASSIGN // integer division (see go/constant.BinaryOp)
	}
	return constant.BinaryOp(l, op, r)
}

func (x *extractor) evalSelector(e *ast.SelectorExpr, sc *scope) value {
	// Package-qualified name (runtime.NewChan referenced as a value, a
	// package-level func, ...) — resolve through go/types.
	if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
		if _, isPkg := x.pkg.info.Uses[id].(*gotypes.PkgName); isPkg {
			return opaqueV{goType: x.pkg.info.TypeOf(e)}
		}
	}
	base := x.eval(e.X, sc)
	fieldType := x.pkg.info.TypeOf(e)
	switch b := base.(type) {
	case msgV:
		// A message modelled as its single channel capability: selecting
		// that channel field yields the message itself (same capability);
		// selecting a data field yields opaque data.
		if fieldType != nil && x.isChannelish(fieldType, 0) {
			return b
		}
		return opaqueV{goType: fieldType}
	case structV:
		for _, f := range b.fields {
			if f.name == e.Sel.Name {
				return f.v
			}
		}
		return opaqueV{goType: fieldType}
	case chanV:
		return b // field of a channel wrapper selects the same capability
	}
	return opaqueV{goType: fieldType}
}

func (x *extractor) evalIndex(e *ast.IndexExpr, sc *scope) (value, bool) {
	base := x.eval(e.X, sc)
	sv, ok := base.(*sliceV)
	if !ok {
		return nil, false
	}
	if c, ok := x.eval(e.Index, sc).(constV); ok {
		i, exact := constant.Int64Val(constant.ToInt(c.v))
		if !exact || i < 0 || int(i) >= len(sv.elems) {
			x.refuse(CodeUnsupported, e.Index.Pos(), "index %s out of extractable range", c.v)
		}
		if sv.elems[i] == nil {
			return opaqueV{goType: x.pkg.info.TypeOf(e)}, true
		}
		return sv.elems[i], true
	}
	// Non-constant index: fatal when the elements are channels or procs
	// (the structure becomes unknowable), opaque for plain data.
	elemType := x.pkg.info.TypeOf(e)
	if elemType != nil && x.isChannelish(elemType, 0) {
		x.refuse(CodeNonConstChannel, e.Index.Pos(), "channel selected by a non-constant index")
	}
	return opaqueV{goType: elemType}, true
}

func (x *extractor) evalTypeAssert(e *ast.TypeAssertExpr, sc *scope) value {
	base := x.eval(e.X, sc)
	if e.Type == nil {
		x.refuse(CodeUnsupported, e.Pos(), "type switches are not extractable")
	}
	target := x.pkg.info.TypeOf(e.Type)
	msg, ok := base.(msgV)
	if !ok {
		// Asserting a non-message (e.g. a proc through any) keeps the value.
		return base
	}
	if target != nil && x.isChannelish(target, 0) {
		// v.(*runtime.Chan): forces the carrying channel's element to be a
		// channel type; the message keeps its dependent identity.
		x.chanOfElem(msg.srcElem, e.Pos())
		return msgV{name: msg.name, srcElem: msg.srcElem, goType: target}
	}
	// Data assertion: the carried payload has this concrete type.
	x.assignElem(msg.srcElem, x.mapGoType(target, e.Pos()), e.Pos())
	return msgV{name: msg.name, srcElem: msg.srcElem, goType: target}
}

func (x *extractor) evalComposite(cl *ast.CompositeLit, sc *scope) value {
	gt := x.pkg.info.TypeOf(cl)
	if gt != nil {
		if named, ok := gotypes.Unalias(gt).(*gotypes.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == x.runtimePath() {
				switch obj.Name() {
				case "End":
					return procV{t: types.Nil{}}
				case "Send":
					return x.buildSend(cl, sc)
				case "Recv":
					return x.buildRecv(cl, sc)
				case "Par":
					return x.buildPar(cl, sc)
				case "Eval":
					run := x.compositeField(cl, "Run", 0)
					if run == nil {
						x.refuse(CodeUnsupported, cl.Pos(), "Eval without a Run thunk")
					}
					return procV{t: x.contType(run, sc)}
				}
			}
		}
		if _, ok := gt.Underlying().(*gotypes.Slice); ok {
			sv := &sliceV{}
			for _, elt := range cl.Elts {
				sv.elems = append(sv.elems, x.eval(elt, sc))
			}
			return sv
		}
		if st, ok := gt.Underlying().(*gotypes.Struct); ok {
			return x.buildStruct(cl, st, gt, sc)
		}
	}
	x.refuse(CodeUnsupported, cl.Pos(), "unsupported composite literal")
	return nil
}

func (x *extractor) buildStruct(cl *ast.CompositeLit, st *gotypes.Struct, gt gotypes.Type, sc *scope) value {
	v := structV{goType: gt}
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				x.refuse(CodeUnsupported, kv.Pos(), "unsupported struct literal key")
			}
			v.fields = append(v.fields, fieldV{name: key.Name, v: x.eval(kv.Value, sc)})
			continue
		}
		if i >= st.NumFields() {
			x.refuse(CodeUnsupported, elt.Pos(), "struct literal has too many values")
		}
		v.fields = append(v.fields, fieldV{name: st.Field(i).Name(), v: x.eval(elt, sc)})
	}
	return v
}

// compositeField finds a composite-literal field by key name, falling
// back to the positional index for unkeyed literals.
func (x *extractor) compositeField(cl *ast.CompositeLit, name string, idx int) ast.Expr {
	keyed := false
	for _, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			keyed = true
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == name {
				return kv.Value
			}
		}
	}
	if !keyed && idx < len(cl.Elts) {
		return cl.Elts[idx]
	}
	return nil
}

// chanUse resolves a channel-position value to its variable name and
// element ref.
func (x *extractor) chanUse(v value, p token.Pos) (string, *elemRef) {
	switch v := v.(type) {
	case chanV:
		if v.info.name == "" {
			v.info.name = x.claimName("ch")
		}
		return v.info.name, v.info.elem
	case msgV:
		return v.name, x.chanOfElem(v.srcElem, p)
	}
	x.refuse(CodeNonConstChannel, p, "channel expression does not resolve to a statically-known channel")
	return "", nil
}

// payloadOf evaluates a payload expression and constrains the carrying
// channel's element type. Channels and received messages are kept
// dependent (the singleton x̄ of the paper); plain data is modelled by
// its static Go type.
func (x *extractor) payloadOf(e ast.Expr, carrier *elemRef, sc *scope) types.Type {
	return x.payloadOfValue(x.eval(e, sc), e, carrier)
}

func (x *extractor) payloadOfValue(v value, e ast.Expr, carrier *elemRef) types.Type {
	switch v := v.(type) {
	case chanV:
		if v.info.name == "" {
			v.info.name = x.claimName("ch")
		}
		inner := x.chanOfElem(carrier, e.Pos())
		x.unifyElem(inner, v.info.elem, e.Pos())
		return types.Var{Name: v.info.name}
	case msgV:
		x.unifyElem(carrier, v.srcElem, e.Pos())
		return types.Var{Name: v.name}
	case structV:
		if inner := x.singleChanComponent(v, e.Pos()); inner != nil {
			return x.payloadOfValue(inner, e, carrier)
		}
		t := x.mapGoType(x.pkg.info.TypeOf(e), e.Pos())
		x.assignElem(carrier, t, e.Pos())
		return t
	case constV, opaqueV:
		t := x.mapGoType(x.pkg.info.TypeOf(e), e.Pos())
		x.assignElem(carrier, t, e.Pos())
		return t
	case procV, funcV:
		x.refuse(CodeEscapingProc, e.Pos(), "proc and function values cannot be sent as payloads")
	}
	x.refuse(CodePayloadType, e.Pos(), "payload expression has no extractable model")
	return nil
}

// singleChanComponent returns the unique channel-capability component of
// a struct value, nil if it has none, and refuses if it has several.
func (x *extractor) singleChanComponent(v structV, p token.Pos) value {
	var found value
	n := 0
	for _, f := range v.fields {
		switch fv := f.v.(type) {
		case chanV:
			found, n = fv, n+1
		case msgV:
			if fv.goType != nil && x.isChannelish(fv.goType, 0) {
				found, n = fv, n+1
			}
		case structV:
			if inner := x.singleChanComponent(fv, p); inner != nil {
				found, n = inner, n+1
			}
		}
	}
	if n > 1 {
		x.refuse(CodePayloadType, p, "struct payload carries %d channels; at most one is supported", n)
	}
	return found
}

// contType extracts the continuation of a Send/Tell/Eval: a zero-arg
// closure, a named thunk, or the Forever loop continuation.
func (x *extractor) contType(e ast.Expr, sc *scope) types.Type {
	if e == nil {
		return types.Nil{}
	}
	v := x.eval(e, sc)
	switch v := v.(type) {
	case loopV:
		x.markLoopUsed(v.recVar)
		return types.RecVar{Name: v.recVar}
	case funcV:
		return x.asProc(x.callFuncV(v, nil, e.Pos()), e.Pos())
	case procV: // e.g. an already-evaluated call expression
		return v.t
	}
	if isNilExpr(e) {
		return types.Nil{}
	}
	x.refuse(CodeEscapingProc, e.Pos(), "continuation does not resolve to an extractable thunk")
	return nil
}

func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func (x *extractor) buildSend(cl *ast.CompositeLit, sc *scope) value {
	chExpr := x.compositeField(cl, "Ch", 0)
	valExpr := x.compositeField(cl, "Val", 1)
	contExpr := x.compositeField(cl, "Cont", 2)
	if chExpr == nil {
		x.refuse(CodeNonConstChannel, cl.Pos(), "Send without a channel")
	}
	chName, chElem := x.chanUse(x.eval(chExpr, sc), chExpr.Pos())
	var payload types.Type = types.Unit{}
	if valExpr != nil && !isNilExpr(valExpr) {
		payload = x.payloadOf(valExpr, chElem, sc)
	} else {
		x.assignElem(chElem, types.Unit{}, cl.Pos())
	}
	cont := x.contType(contExpr, sc)
	x.smap.Add(chName, DirSend, x.position(cl.Pos()))
	return procV{t: types.Out{Ch: types.Var{Name: chName}, Payload: payload, Cont: types.Thunk(cont)}}
}

func (x *extractor) buildRecv(cl *ast.CompositeLit, sc *scope) value {
	chExpr := x.compositeField(cl, "Ch", 0)
	contExpr := x.compositeField(cl, "Cont", 1)
	if chExpr == nil {
		x.refuse(CodeNonConstChannel, cl.Pos(), "Recv without a channel")
	}
	if contExpr == nil {
		x.refuse(CodeUnsupported, cl.Pos(), "Recv without a continuation")
	}
	chName, chElem := x.chanUse(x.eval(chExpr, sc), chExpr.Pos())
	x.smap.Add(chName, DirRecv, x.position(cl.Pos()))
	return procV{t: x.buildInput(chName, chElem, contExpr, nil, sc)}
}

// buildInput builds the In node shared by runtime.Recv and actor.Read.
// msgType is the static Go type of the received message (typed
// mailboxes), nil for untyped runtime channels.
func (x *extractor) buildInput(chName string, chElem *elemRef, contExpr ast.Expr, msgType gotypes.Type, sc *scope) types.Type {
	fv, ok := x.eval(contExpr, sc).(funcV)
	if !ok || (fv.lit == nil && fv.decl == nil) {
		x.refuse(CodeEscapingProc, contExpr.Pos(), "receive continuation does not resolve to a function")
	}
	params, body, defSc := fieldsOf(fv)
	if params.NumFields() != 1 || len(params.List[0].Names) != 1 {
		x.refuse(CodeUnsupported, contExpr.Pos(), "receive continuation must take exactly one parameter")
	}
	param := params.List[0].Names[0]
	msgName := x.claimName(nonBlank(param.Name, "u"))
	if msgType == nil {
		msgType = x.pkg.info.TypeOf(params.List[0].Type)
		if basic, ok := gotypes.Unalias(msgType).(*gotypes.Interface); ok && basic.Empty() {
			msgType = nil // untyped any parameter
		}
	}
	msg := msgV{name: msgName, srcElem: chElem, goType: msgType}
	inner := newScope(defSc)
	if param.Name != "_" {
		inner.define(param.Name, msg)
	}
	ret, returned := x.walkBody(body.List, inner)
	if !returned {
		x.refuse(CodeUnsupported, body.End(), "receive continuation falls through without returning a proc")
	}
	cod := x.asProc(ret, body.Pos())
	return types.In{Ch: types.Var{Name: chName}, Cont: types.Pi{
		Var: msgName,
		Dom: x.sentinelFor(chElem.find()),
		Cod: cod,
	}}
}

func nonBlank(name, fallback string) string {
	if name == "" || name == "_" {
		return fallback
	}
	return name
}

func (x *extractor) buildPar(cl *ast.CompositeLit, sc *scope) value {
	procsExpr := x.compositeField(cl, "Procs", 0)
	if procsExpr == nil {
		return procV{t: types.Nil{}}
	}
	v := x.eval(procsExpr, sc)
	sv, ok := v.(*sliceV)
	if !ok {
		x.refuse(CodeEscapingProc, procsExpr.Pos(), "Par components do not resolve to a static proc list")
	}
	var ts []types.Type
	for i, elem := range sv.elems {
		if elem == nil {
			x.refuse(CodeEscapingProc, procsExpr.Pos(), "Par component %d is unset", i)
		}
		ts = append(ts, x.asProc(elem, procsExpr.Pos()))
	}
	if len(ts) == 0 {
		return procV{t: types.Nil{}}
	}
	return procV{t: types.ParOf(ts...)}
}

func (x *extractor) markLoopUsed(recVar string) {
	if used, ok := x.loopUsed[recVar]; ok {
		*used = true
	}
}

func (x *extractor) evalCall(call *ast.CallExpr, sc *scope) value {
	fun := ast.Unparen(call.Fun)

	// Generic instantiation: NewMailbox[T](e) parses as CallExpr around
	// an IndexExpr; strip the index for object resolution.
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ast.Unparen(ix.X)
	}

	// Builtin and type-conversion calls.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := x.pkg.info.Uses[id].(*gotypes.Builtin); ok {
			return x.evalBuiltin(b.Name(), call, sc)
		}
		if tn, ok := x.pkg.info.Uses[id].(*gotypes.TypeName); ok && len(call.Args) == 1 {
			_ = tn
			return x.eval(call.Args[0], sc)
		}
	}

	// Combinator calls, resolved through go/types.
	if obj := x.callObject(fun); obj != nil && obj.Pkg() != nil {
		switch obj.Pkg().Path() {
		case x.runtimePath():
			switch obj.Name() {
			case "NewChan":
				return chanV{info: x.newChan(call.Pos())}
			case "NewBufChan":
				x.refuse(CodeUnsupported, call.Pos(), "buffered channels are not extractable")
			case "Forever":
				return x.evalForever(call, sc)
			}
		case x.actorPath():
			switch obj.Name() {
			case "NewMailbox":
				return x.evalNewMailbox(call)
			case "Tell":
				return x.evalTell(call, sc)
			case "Read":
				return x.evalRead(call, sc)
			case "Forever":
				return x.evalForever(call, sc)
			case "Stop":
				return procV{t: types.Nil{}}
			}
		}
	}

	// Method call on the engine value.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if _, isEngine := x.eval(sel.X, sc).(engineV); isEngine {
			if sel.Sel.Name == "NewChan" {
				return chanV{info: x.newChan(call.Pos())}
			}
			x.refuse(CodeUnsupported, call.Pos(), "engine method %s is not extractable", sel.Sel.Name)
		}
	}

	// User function: inline it.
	callee := x.eval(fun, sc)
	switch callee := callee.(type) {
	case funcV:
		var args []value
		for _, a := range call.Args {
			args = append(args, x.eval(a, sc))
		}
		return x.callFuncV(callee, args, call.Pos())
	case loopV:
		x.markLoopUsed(callee.recVar)
		return procV{t: types.RecVar{Name: callee.recVar}}
	}

	// Opaque call: fine for data, fatal later if a proc or channel is
	// expected from it.
	return opaqueV{goType: x.pkg.info.TypeOf(call)}
}

// callObject resolves the callee expression to its types.Object.
func (x *extractor) callObject(fun ast.Expr) gotypes.Object {
	switch f := fun.(type) {
	case *ast.Ident:
		return x.pkg.info.Uses[f]
	case *ast.SelectorExpr:
		return x.pkg.info.Uses[f.Sel]
	}
	return nil
}

func (x *extractor) evalBuiltin(name string, call *ast.CallExpr, sc *scope) value {
	switch name {
	case "append":
		if len(call.Args) == 0 || call.Ellipsis != token.NoPos {
			x.refuse(CodeUnsupported, call.Pos(), "unsupported append form")
		}
		base := x.eval(call.Args[0], sc)
		sv, ok := base.(*sliceV)
		if !ok {
			x.refuse(CodeUnsupported, call.Pos(), "append to a non-static slice")
		}
		out := &sliceV{elems: append([]value(nil), sv.elems...)}
		for _, a := range call.Args[1:] {
			out.elems = append(out.elems, x.eval(a, sc))
		}
		return out
	case "len":
		if sv, ok := x.eval(call.Args[0], sc).(*sliceV); ok {
			return constV{v: constant.MakeInt64(int64(len(sv.elems))), goType: gotypes.Typ[gotypes.Int]}
		}
		return opaqueV{goType: x.pkg.info.TypeOf(call)}
	case "make":
		gt := x.pkg.info.TypeOf(call)
		if _, ok := gt.Underlying().(*gotypes.Slice); ok && len(call.Args) >= 2 {
			c, ok := x.eval(call.Args[1], sc).(constV)
			if !ok {
				x.refuse(CodeNonConstLoop, call.Pos(), "make length is not compile-time constant")
			}
			n, _ := constant.Int64Val(constant.ToInt(c.v))
			return &sliceV{elems: make([]value, n)}
		}
		x.refuse(CodeUnsupported, call.Pos(), "unsupported make call")
	}
	return opaqueV{goType: x.pkg.info.TypeOf(call)}
}

func (x *extractor) evalNewMailbox(call *ast.CallExpr) value {
	ci := x.newChan(call.Pos())
	// The element type comes from the mailbox's Go type argument:
	// (Mailbox[T], Ref[T]) — read T off the tuple result type.
	if tup, ok := x.pkg.info.TypeOf(call).(*gotypes.Tuple); ok && tup.Len() == 2 {
		if named, ok := gotypes.Unalias(tup.At(0).Type()).(*gotypes.Named); ok {
			if args := named.TypeArgs(); args != nil && args.Len() == 1 {
				x.assignElem(ci.elem, x.mapGoType(args.At(0), call.Pos()), call.Pos())
			}
		}
	}
	cv := chanV{info: ci}
	return tupleV{elems: []value{cv, cv}}
}

func (x *extractor) evalTell(call *ast.CallExpr, sc *scope) value {
	if len(call.Args) != 3 {
		x.refuse(CodeUnsupported, call.Pos(), "Tell expects (ref, msg, cont)")
	}
	chName, chElem := x.chanUse(x.eval(call.Args[0], sc), call.Args[0].Pos())
	payload := x.payloadOf(call.Args[1], chElem, sc)
	cont := x.contType(call.Args[2], sc)
	x.smap.Add(chName, DirSend, x.position(call.Pos()))
	return procV{t: types.Out{Ch: types.Var{Name: chName}, Payload: payload, Cont: types.Thunk(cont)}}
}

func (x *extractor) evalRead(call *ast.CallExpr, sc *scope) value {
	if len(call.Args) != 2 {
		x.refuse(CodeUnsupported, call.Pos(), "Read expects (mailbox, cont)")
	}
	chName, chElem := x.chanUse(x.eval(call.Args[0], sc), call.Args[0].Pos())
	// The static message type is the mailbox's type argument.
	var msgType gotypes.Type
	if named, ok := gotypes.Unalias(x.pkg.info.TypeOf(call.Args[0])).(*gotypes.Named); ok {
		if args := named.TypeArgs(); args != nil && args.Len() == 1 {
			msgType = args.At(0)
		}
	}
	x.smap.Add(chName, DirRecv, x.position(call.Pos()))
	return procV{t: x.buildInput(chName, chElem, call.Args[1], msgType, sc)}
}

func (x *extractor) evalForever(call *ast.CallExpr, sc *scope) value {
	if len(call.Args) != 1 {
		x.refuse(CodeUnsupported, call.Pos(), "Forever expects a single body function")
	}
	fv, ok := x.eval(call.Args[0], sc).(funcV)
	if !ok {
		x.refuse(CodeEscapingProc, call.Args[0].Pos(), "Forever body does not resolve to a function")
	}
	params, body, defSc := fieldsOf(fv)
	if params.NumFields() != 1 || len(params.List[0].Names) != 1 {
		x.refuse(CodeUnsupported, call.Pos(), "Forever body must take exactly the loop parameter")
	}
	recVar := x.freshRecVar()
	used := false
	x.loopUsed[recVar] = &used
	inner := newScope(defSc)
	inner.define(params.List[0].Names[0].Name, loopV{recVar: recVar})
	ret, returned := x.walkBody(body.List, inner)
	if !returned {
		x.refuse(CodeUnsupported, body.End(), "Forever body falls through without returning a proc")
	}
	t := x.asProc(ret, body.Pos())
	if used {
		return procV{t: types.Rec{Var: recVar, Body: t}}
	}
	return procV{t: t}
}

func fieldsOf(fv funcV) (*ast.FieldList, *ast.BlockStmt, *scope) {
	if fv.decl != nil {
		return fv.decl.Type.Params, fv.decl.Body, nil
	}
	return fv.lit.Type.Params, fv.lit.Body, fv.sc
}

// callFuncV inlines a function call. Re-entering a frame with the same
// (callee, canonical arguments) key is a converged recursion: the call
// becomes a RecVar and the outer frame wraps its body in µ. Opaque data
// arguments share one key slot, so recursion over unknown data widens
// to a µ-type rather than unrolling forever.
func (x *extractor) callFuncV(fv funcV, args []value, callPos token.Pos) value {
	params, body, defSc := fieldsOf(fv)
	if body == nil {
		x.refuse(CodeEscapingProc, callPos, "callee has no body to extract")
	}
	key := frameKey(fv, args)
	for _, fr := range x.frames {
		if fr.key == key {
			fr.used = true
			return procV{t: types.RecVar{Name: fr.recVar}}
		}
	}
	if len(x.frames) >= maxInlineDepth {
		x.refuse(CodeUnboundedRecursion, callPos,
			"call depth exceeds %d without converging to a recursive protocol", maxInlineDepth)
	}
	fr := &frame{key: key, recVar: x.freshRecVar()}
	x.frames = append(x.frames, fr)
	defer func() { x.frames = x.frames[:len(x.frames)-1] }()

	sc := newScope(defSc)
	i := 0
	for _, field := range params.List {
		for _, name := range field.Names {
			if i >= len(args) {
				x.refuse(CodeUnsupported, callPos, "call has too few arguments to inline")
			}
			if name.Name != "_" {
				sc.define(name.Name, args[i])
			}
			i++
		}
	}
	if i != len(args) {
		x.refuse(CodeUnsupported, callPos, "call has too many arguments to inline")
	}
	ret, returned := x.walkBody(body.List, sc)
	if !returned {
		x.refuse(CodeUnsupported, body.End(), "callee falls through without returning")
	}
	if fr.used {
		return procV{t: types.Rec{Var: fr.recVar, Body: x.asProc(ret, callPos)}}
	}
	return ret
}

func frameKey(fv funcV, args []value) string {
	var b strings.Builder
	if fv.decl != nil {
		fmt.Fprintf(&b, "d:%s", fv.decl.Name.Name)
	} else {
		fmt.Fprintf(&b, "l:%p", fv.lit)
	}
	for _, a := range args {
		b.WriteByte('|')
		b.WriteString(valueKey(a))
	}
	return b.String()
}

func valueKey(v value) string {
	switch v := v.(type) {
	case chanV:
		return fmt.Sprintf("c%d", v.info.id)
	case msgV:
		return "m:" + v.name
	case constV:
		return "k:" + v.v.ExactString()
	case engineV:
		return "e"
	case funcV:
		if v.decl != nil {
			return "f:" + v.decl.Name.Name
		}
		return fmt.Sprintf("f:%p", v.lit)
	case loopV:
		return "lp:" + v.recVar
	case *sliceV:
		parts := make([]string, len(v.elems))
		for i, e := range v.elems {
			if e == nil {
				parts[i] = "_"
			} else {
				parts[i] = valueKey(e)
			}
		}
		return "s[" + strings.Join(parts, ",") + "]"
	case structV:
		parts := make([]string, len(v.fields))
		for i, f := range v.fields {
			parts[i] = f.name + "=" + valueKey(f.v)
		}
		return "st{" + strings.Join(parts, ",") + "}"
	default:
		return "?"
	}
}
