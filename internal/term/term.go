// Package term implements the term language of the λπ⩽ calculus
// (PLDI 2019, Fig. 2): a call-by-value λ-calculus extended with channel
// creation, input/output process primitives, and parallel composition.
//
// Following the paper's §2 remark, the language is extended with integer
// and string literals (and the comparison/arithmetic needed by the
// examples, e.g. the payment service's `pay.amount > 42000`).
package term

import (
	"fmt"
	"strings"

	"effpi/internal/types"
)

// Term is a λπ⩽ term (Fig. 2). Terms include the run-time syntax of
// channel instances (ChanVal), which programmers cannot write but which
// reduction introduces via chan().
type Term interface {
	term()
	String() string
}

// Var is a term variable x ∈ X.
type Var struct{ Name string }

// BoolLit is a boolean value tt or ff.
type BoolLit struct{ Val bool }

// IntLit is an integer literal (paper §2 extension).
type IntLit struct{ Val int64 }

// StrLit is a string literal (paper §2 extension).
type StrLit struct{ Val string }

// UnitVal is the unit value ().
type UnitVal struct{}

// Err is the error value err; reduction produces it when a term "goes
// wrong" (Fig. 3, last row). It has no typing rule: typed terms are safe.
type Err struct{ Msg string }

// ChanVal is a channel instance a ∈ C, tagged with its payload type
// (the paper's a^T, rule [t-C]). Part of the run-time syntax.
type ChanVal struct {
	Name string
	Elem types.Type
}

// Lam is a function abstraction λx^U. Body ([t-λ] requires the annotation).
type Lam struct {
	Var  string
	Ann  types.Type
	Body Term
}

// Not is boolean negation ¬t.
type Not struct{ T Term }

// If is the conditional if t then t1 else t2.
type If struct{ Cond, Then, Else Term }

// Let is let x^U = Bound in Body. The bound variable is in scope in Bound
// as well (rule [t-let] types recursion this way).
type Let struct {
	Var   string
	Ann   types.Type
	Bound Term
	Body  Term
}

// App is function application t t′.
type App struct{ Fn, Arg Term }

// NewChan is channel creation chan()^T; it evaluates to a fresh ChanVal.
type NewChan struct{ Elem types.Type }

// End is the terminated process end.
type End struct{}

// Send is the output primitive send(Ch, Val, Cont): send Val on Ch and
// continue as the process thunk Cont (applied to unit).
type Send struct{ Ch, Val, Cont Term }

// Recv is the input primitive recv(Ch, Cont): receive a value from Ch and
// continue as Cont applied to it.
type Recv struct{ Ch, Cont Term }

// Par is parallel composition t ‖ t′.
type Par struct{ L, R Term }

// BinOp is a primitive binary operation on base values (§2 extension);
// Op is one of "+", "-", "*", ">", "<", "==", "++" (string concat).
type BinOp struct {
	Op   string
	L, R Term
}

func (Var) term()     {}
func (BoolLit) term() {}
func (IntLit) term()  {}
func (StrLit) term()  {}
func (UnitVal) term() {}
func (Err) term()     {}
func (ChanVal) term() {}
func (Lam) term()     {}
func (Not) term()     {}
func (If) term()      {}
func (Let) term()     {}
func (App) term()     {}
func (NewChan) term() {}
func (End) term()     {}
func (Send) term()    {}
func (Recv) term()    {}
func (Par) term()     {}
func (BinOp) term()   {}

func (v Var) String() string { return v.Name }

func (b BoolLit) String() string {
	if b.Val {
		return "true"
	}
	return "false"
}

func (i IntLit) String() string { return fmt.Sprintf("%d", i.Val) }
func (s StrLit) String() string { return fmt.Sprintf("%q", s.Val) }
func (UnitVal) String() string  { return "()" }

func (e Err) String() string {
	if e.Msg == "" {
		return "err"
	}
	return fmt.Sprintf("err(%s)", e.Msg)
}

func (c ChanVal) String() string { return fmt.Sprintf("#%s", c.Name) }

func (l Lam) String() string {
	if l.Ann == nil {
		return fmt.Sprintf("(fun %s => %s)", l.Var, l.Body)
	}
	return fmt.Sprintf("(fun %s: %s => %s)", l.Var, l.Ann, l.Body)
}

func (n Not) String() string { return fmt.Sprintf("!%s", n.T) }

func (i If) String() string {
	return fmt.Sprintf("(if %s then %s else %s)", i.Cond, i.Then, i.Else)
}

func (l Let) String() string {
	if l.Ann == nil {
		return fmt.Sprintf("let %s = %s in %s", l.Var, l.Bound, l.Body)
	}
	return fmt.Sprintf("let %s: %s = %s in %s", l.Var, l.Ann, l.Bound, l.Body)
}

func (a App) String() string { return fmt.Sprintf("(%s %s)", a.Fn, a.Arg) }

func (n NewChan) String() string { return fmt.Sprintf("chan[%s]()", n.Elem) }

func (End) String() string { return "end" }

func (s Send) String() string { return fmt.Sprintf("send(%s, %s, %s)", s.Ch, s.Val, s.Cont) }
func (r Recv) String() string { return fmt.Sprintf("recv(%s, %s)", r.Ch, r.Cont) }
func (p Par) String() string  { return fmt.Sprintf("(%s || %s)", p.L, p.R) }

func (b BinOp) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// IsValue reports whether t is a value (the set V of Fig. 2, plus the
// base-literal extensions).
func IsValue(t Term) bool {
	switch t.(type) {
	case BoolLit, IntLit, StrLit, UnitVal, Err, ChanVal, Lam:
		return true
	default:
		return false
	}
}

// IsProcTerm reports whether t is (syntactically) a process term from the
// production P of Fig. 2.
func IsProcTerm(t Term) bool {
	switch t.(type) {
	case End, Send, Recv, Par:
		return true
	default:
		return false
	}
}

// FreeVars returns the free term variables of t.
func FreeVars(t Term) map[string]bool {
	fv := make(map[string]bool)
	collectFree(t, map[string]bool{}, fv)
	return fv
}

func collectFree(t Term, bound, out map[string]bool) {
	switch t := t.(type) {
	case Var:
		if !bound[t.Name] {
			out[t.Name] = true
		}
	case Lam:
		inner := copySet(bound)
		inner[t.Var] = true
		collectFree(t.Body, inner, out)
	case Not:
		collectFree(t.T, bound, out)
	case If:
		collectFree(t.Cond, bound, out)
		collectFree(t.Then, bound, out)
		collectFree(t.Else, bound, out)
	case Let:
		inner := copySet(bound)
		inner[t.Var] = true
		collectFree(t.Bound, inner, out)
		collectFree(t.Body, inner, out)
	case App:
		collectFree(t.Fn, bound, out)
		collectFree(t.Arg, bound, out)
	case Send:
		collectFree(t.Ch, bound, out)
		collectFree(t.Val, bound, out)
		collectFree(t.Cont, bound, out)
	case Recv:
		collectFree(t.Ch, bound, out)
		collectFree(t.Cont, bound, out)
	case Par:
		collectFree(t.L, bound, out)
		collectFree(t.R, bound, out)
	case BinOp:
		collectFree(t.L, bound, out)
		collectFree(t.R, bound, out)
	}
}

func copySet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s)+1)
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Subst returns t{v/x}: capture-avoiding substitution of v for the free
// variable x in t.
func Subst(t Term, x string, v Term) Term {
	if !FreeVars(t)[x] {
		return t
	}
	return substTerm(t, x, v)
}

func substTerm(t Term, x string, v Term) Term {
	switch t := t.(type) {
	case Var:
		if t.Name == x {
			return v
		}
		return t
	case Lam:
		if t.Var == x {
			return t
		}
		body, bv := avoidCapture(t.Body, t.Var, v)
		return Lam{Var: bv, Ann: t.Ann, Body: substTerm(body, x, v)}
	case Not:
		return Not{T: substTerm(t.T, x, v)}
	case If:
		return If{Cond: substTerm(t.Cond, x, v), Then: substTerm(t.Then, x, v), Else: substTerm(t.Else, x, v)}
	case Let:
		if t.Var == x {
			return t
		}
		bv, bound, body := t.Var, t.Bound, t.Body
		if FreeVars(v)[bv] {
			fresh := types.FreshName(bv)
			bound = substTerm(bound, bv, Var{Name: fresh})
			body = substTerm(body, bv, Var{Name: fresh})
			bv = fresh
		}
		return Let{Var: bv, Ann: t.Ann, Bound: substTerm(bound, x, v), Body: substTerm(body, x, v)}
	case App:
		return App{Fn: substTerm(t.Fn, x, v), Arg: substTerm(t.Arg, x, v)}
	case Send:
		return Send{Ch: substTerm(t.Ch, x, v), Val: substTerm(t.Val, x, v), Cont: substTerm(t.Cont, x, v)}
	case Recv:
		return Recv{Ch: substTerm(t.Ch, x, v), Cont: substTerm(t.Cont, x, v)}
	case Par:
		return Par{L: substTerm(t.L, x, v), R: substTerm(t.R, x, v)}
	case BinOp:
		return BinOp{Op: t.Op, L: substTerm(t.L, x, v), R: substTerm(t.R, x, v)}
	default:
		return t
	}
}

// avoidCapture α-renames the binder bv in body if bv occurs free in v,
// returning the (possibly renamed) body and binder name.
func avoidCapture(body Term, bv string, v Term) (Term, string) {
	if !FreeVars(v)[bv] {
		return body, bv
	}
	fresh := types.FreshName(bv)
	return substTerm(body, bv, Var{Name: fresh}), fresh
}

// Render pretty-prints a term with indentation, for diagnostics.
func Render(t Term) string {
	var b strings.Builder
	render(t, 0, &b)
	return b.String()
}

func render(t Term, depth int, b *strings.Builder) {
	ind := strings.Repeat("  ", depth)
	switch t := t.(type) {
	case Let:
		fmt.Fprintf(b, "%slet %s = %s in\n", ind, t.Var, t.Bound)
		render(t.Body, depth, b)
	case Par:
		b.WriteString(ind + "(\n")
		render(t.L, depth+1, b)
		b.WriteString("\n" + ind + "||\n")
		render(t.R, depth+1, b)
		b.WriteString("\n" + ind + ")")
	default:
		b.WriteString(ind + t.String())
	}
}
