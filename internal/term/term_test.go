package term

import (
	"testing"

	"effpi/internal/types"
)

func TestIsValue(t *testing.T) {
	values := []Term{
		BoolLit{Val: true}, IntLit{Val: 1}, StrLit{Val: "s"}, UnitVal{},
		Err{}, ChanVal{Name: "a", Elem: types.Int{}},
		Lam{Var: "x", Ann: types.Int{}, Body: Var{Name: "x"}},
	}
	for _, v := range values {
		if !IsValue(v) {
			t.Errorf("IsValue(%s) = false", v)
		}
	}
	nonValues := []Term{
		Var{Name: "x"}, Not{T: BoolLit{Val: true}}, End{},
		App{Fn: Var{Name: "f"}, Arg: IntLit{Val: 1}},
		Send{Ch: Var{Name: "c"}, Val: UnitVal{}, Cont: UnitVal{}},
		Par{L: End{}, R: End{}},
	}
	for _, v := range nonValues {
		if IsValue(v) {
			t.Errorf("IsValue(%s) = true", v)
		}
	}
}

func TestIsProcTerm(t *testing.T) {
	procs := []Term{End{}, Par{L: End{}, R: End{}},
		Send{Ch: Var{Name: "c"}, Val: UnitVal{}, Cont: UnitVal{}},
		Recv{Ch: Var{Name: "c"}, Cont: UnitVal{}}}
	for _, p := range procs {
		if !IsProcTerm(p) {
			t.Errorf("IsProcTerm(%s) = false", p)
		}
	}
	if IsProcTerm(IntLit{Val: 3}) {
		t.Error("IsProcTerm(3) = true")
	}
}

func TestFreeVars(t *testing.T) {
	// λx. x y — x bound, y free.
	tm := Lam{Var: "x", Ann: types.Int{}, Body: App{Fn: Var{Name: "x"}, Arg: Var{Name: "y"}}}
	fv := FreeVars(tm)
	if fv["x"] || !fv["y"] {
		t.Errorf("FreeVars = %v", fv)
	}
	// let x = x in x — the binder scopes over the bound term too
	// (recursive let), so x is NOT free.
	tm2 := Let{Var: "x", Bound: Var{Name: "x"}, Body: Var{Name: "x"}}
	if FreeVars(tm2)["x"] {
		t.Error("recursive let must bind x in its own bound term")
	}
}

func TestSubstShadowing(t *testing.T) {
	// (λx. x){v/x} leaves the bound x alone.
	lam := Lam{Var: "x", Ann: types.Int{}, Body: Var{Name: "x"}}
	got := Subst(lam, "x", IntLit{Val: 5})
	if got.String() != lam.String() {
		t.Errorf("bound occurrence substituted: %s", got)
	}
	// (λy. x){y/x}: the y in the substitute must not be captured.
	lam2 := Lam{Var: "y", Ann: types.Int{}, Body: Var{Name: "x"}}
	got2 := Subst(lam2, "x", Var{Name: "y"}).(Lam)
	if got2.Var == "y" {
		t.Fatalf("capture: %s", got2)
	}
	if v, ok := got2.Body.(Var); !ok || v.Name != "y" {
		t.Errorf("substitution wrong: %s", got2)
	}
}

func TestSubstLetCapture(t *testing.T) {
	// (let y = 1 in x){y/x} must rename the let binder.
	l := Let{Var: "y", Bound: IntLit{Val: 1}, Body: Var{Name: "x"}}
	got := Subst(l, "x", Var{Name: "y"}).(Let)
	if got.Var == "y" {
		t.Fatalf("capture in let: %s", got)
	}
	if v, ok := got.Body.(Var); !ok || v.Name != "y" {
		t.Errorf("substitution wrong: %s", got)
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		t    Term
		want string
	}{
		{BoolLit{Val: true}, "true"},
		{IntLit{Val: 42}, "42"},
		{StrLit{Val: "hi"}, `"hi"`},
		{UnitVal{}, "()"},
		{End{}, "end"},
		{Par{L: End{}, R: End{}}, "(end || end)"},
		{Not{T: Var{Name: "b"}}, "!b"},
		{BinOp{Op: "+", L: IntLit{Val: 1}, R: IntLit{Val: 2}}, "(1 + 2)"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestRenderMultiline(t *testing.T) {
	tm := Let{Var: "x", Bound: IntLit{Val: 1},
		Body: Par{L: End{}, R: End{}}}
	out := Render(tm)
	if out == "" {
		t.Error("Render produced nothing")
	}
}
