package typecheck

import (
	"testing"

	"effpi/internal/term"
	"effpi/internal/types"
)

// --- Helpers to build the paper's running examples -----------------------

func str() types.Type  { return types.Str{} }
func i64() types.Type  { return types.Int{} }
func tnil() types.Type { return types.Nil{} }

func tvar(n string) types.Type { return types.Var{Name: n} }
func v(n string) term.Term     { return term.Var{Name: n} }

func lam(x string, ann types.Type, body term.Term) term.Term {
	return term.Lam{Var: x, Ann: ann, Body: body}
}

func thunkT(body term.Term) term.Term {
	return term.Lam{Var: "_", Ann: types.Unit{}, Body: body}
}

// pingerTerm is pinger from Ex. 2.2:
// λself.λpongc. send(pongc, self, λ_. recv(self, λreply. end))
func pingerTerm() term.Term {
	return lam("self", types.ChanIO{Elem: str()},
		lam("pongc", types.ChanO{Elem: types.ChanO{Elem: str()}},
			term.Send{
				Ch:  v("pongc"),
				Val: v("self"),
				Cont: thunkT(term.Recv{
					Ch:   v("self"),
					Cont: lam("reply", str(), term.End{}),
				}),
			}))
}

// pongerTerm is ponger from Ex. 2.2:
// λself. recv(self, λreplyTo. send(replyTo, "Hi!", λ_. end))
func pongerTerm() term.Term {
	return lam("self", types.ChanIO{Elem: types.ChanO{Elem: str()}},
		term.Recv{
			Ch: v("self"),
			Cont: lam("replyTo", types.ChanO{Elem: str()},
				term.Send{Ch: v("replyTo"), Val: term.StrLit{Val: "Hi!"}, Cont: thunkT(term.End{})}),
		})
}

// tPing is Tping from Ex. 3.3.
func tPing() types.Type {
	return types.Pi{Var: "self", Dom: types.ChanIO{Elem: str()},
		Cod: types.Pi{Var: "pongc", Dom: types.ChanO{Elem: types.ChanO{Elem: str()}},
			Cod: types.Out{
				Ch:      tvar("pongc"),
				Payload: tvar("self"),
				Cont: types.Thunk(types.In{
					Ch:   tvar("self"),
					Cont: types.Pi{Var: "reply", Dom: str(), Cod: tnil()},
				}),
			}}}
}

// tPong is Tpong from Ex. 3.3.
func tPong() types.Type {
	return types.Pi{Var: "self", Dom: types.ChanIO{Elem: types.ChanO{Elem: str()}},
		Cod: types.In{
			Ch: tvar("self"),
			Cont: types.Pi{Var: "replyTo", Dom: types.ChanO{Elem: str()},
				Cod: types.Out{Ch: tvar("replyTo"), Payload: str(), Cont: types.Thunk(tnil())}},
		}}
}

// --- Tests ----------------------------------------------------------------

func TestBaseTyping(t *testing.T) {
	e := types.NewEnv()
	cases := []struct {
		t    term.Term
		want types.Type
	}{
		{term.BoolLit{Val: true}, types.Bool{}},
		{term.IntLit{Val: 42}, types.Int{}},
		{term.StrLit{Val: "hi"}, types.Str{}},
		{term.UnitVal{}, types.Unit{}},
		{term.End{}, types.Nil{}},
		{term.Not{T: term.BoolLit{Val: false}}, types.Bool{}},
		{term.NewChan{Elem: types.Int{}}, types.ChanIO{Elem: types.Int{}}},
		{term.BinOp{Op: ">", L: term.IntLit{Val: 1}, R: term.IntLit{Val: 2}}, types.Bool{}},
		{term.BinOp{Op: "+", L: term.IntLit{Val: 1}, R: term.IntLit{Val: 2}}, types.Int{}},
	}
	for _, c := range cases {
		got, err := Infer(e, c.t)
		if err != nil {
			t.Errorf("Infer(%s): %v", c.t, err)
			continue
		}
		if !types.Equal(got, c.want) {
			t.Errorf("Infer(%s) = %s, want %s", c.t, got, c.want)
		}
	}
}

func TestErrUntypable(t *testing.T) {
	if _, err := Infer(types.NewEnv(), term.Err{}); err == nil {
		t.Error("err must be untypable")
	}
}

func TestVarSingletonType(t *testing.T) {
	e := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	got, err := Infer(e, v("x"))
	if err != nil {
		t.Fatal(err)
	}
	if !types.Equal(got, tvar("x")) {
		t.Errorf("Infer(x) = %s, want the singleton type x̱", got)
	}
	// Subsumption recovers the environment bound.
	if err := Check(e, v("x"), types.ChanIO{Elem: types.Int{}}); err != nil {
		t.Errorf("Check(x : cio[int]) failed: %v", err)
	}
}

func TestPingerHasTping(t *testing.T) {
	e := types.NewEnv()
	got, err := Infer(e, pingerTerm())
	if err != nil {
		t.Fatalf("Infer(pinger): %v", err)
	}
	want := tPing()
	if !types.Subtype(e, got, want) {
		t.Errorf("pinger : Tping failed\n  got  %s\n  want %s", got, want)
	}
	if !types.Subtype(e, want, got) {
		t.Errorf("inferred pinger type is less precise than Tping\n  got  %s\n  want %s", got, want)
	}
}

func TestPongerHasTpong(t *testing.T) {
	e := types.NewEnv()
	got, err := Infer(e, pongerTerm())
	if err != nil {
		t.Fatalf("Infer(ponger): %v", err)
	}
	if !types.Subtype(e, got, tPong()) {
		t.Errorf("ponger : Tpong failed\n  got  %s\n  want %s", got, tPong())
	}
}

// TestSysComposition reproduces Ex. 3.3/4.3: the type of sys y z must be
// the parallel composition of Tping y z and Tpong z, with the type-level
// applications substituting y and z into the bodies.
func TestSysComposition(t *testing.T) {
	e := types.EnvOf(
		"y", types.ChanIO{Elem: str()},
		"z", types.ChanIO{Elem: types.ChanO{Elem: str()}},
	)
	sys := term.Let{Var: "pinger", Ann: tPing(), Bound: pingerTerm(),
		Body: term.Let{Var: "ponger", Ann: tPong(), Bound: pongerTerm(),
			Body: term.Par{
				L: term.App{Fn: term.App{Fn: v("pinger"), Arg: v("y")}, Arg: v("z")},
				R: term.App{Fn: v("ponger"), Arg: v("z")},
			}}}
	got, err := Infer(e, sys)
	if err != nil {
		t.Fatalf("Infer(sys y z): %v", err)
	}
	// T from Ex. 4.3.
	want := types.Par{
		L: types.Out{Ch: tvar("z"), Payload: tvar("y"),
			Cont: types.Thunk(types.In{Ch: tvar("y"), Cont: types.Pi{Var: "reply", Dom: str(), Cod: tnil()}})},
		R: types.In{Ch: tvar("z"),
			Cont: types.Pi{Var: "replyTo", Dom: types.ChanO{Elem: str()},
				Cod: types.Out{Ch: tvar("replyTo"), Payload: str(), Cont: types.Thunk(tnil())}}},
	}
	if !types.Subtype(e, got, want) || !types.Subtype(e, want, got) {
		t.Errorf("sys composition type mismatch\n  got  %s\n  want %s", got, want)
	}
}

// TestPrecisionLossEx35 reproduces Ex. 3.5: binding a channel with let
// loses precision — the bound variable cannot appear in the type, and is
// replaced by its supertype cio[int].
func TestPrecisionLossEx35(t *testing.T) {
	e := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	// t2's left component: let z = chan() in send(z, 42, λ_. end)
	t2l := term.Let{Var: "z", Bound: term.NewChan{Elem: types.Int{}},
		Body: term.Send{Ch: v("z"), Val: term.IntLit{Val: 42}, Cont: thunkT(term.End{})}}
	got, err := Infer(e, t2l)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	want := types.Out{Ch: types.ChanIO{Elem: types.Int{}}, Payload: types.Int{}, Cont: types.Thunk(tnil())}
	if !types.Equal(got, want) {
		t.Errorf("Ex. 3.5: got %s, want %s (z must be erased to cio[int])", got, want)
	}
}

// TestMissingReplyFailsCheck: a ponger that forgets to reply does not
// check against Tpong — the paper's "missing communication" bug class.
func TestMissingReplyFailsCheck(t *testing.T) {
	buggy := lam("self", types.ChanIO{Elem: types.ChanO{Elem: str()}},
		term.Recv{
			Ch:   v("self"),
			Cont: lam("replyTo", types.ChanO{Elem: str()}, term.End{}), // no send!
		})
	e := types.NewEnv()
	got, err := Infer(e, buggy)
	if err != nil {
		t.Fatalf("Infer(buggy ponger): %v", err)
	}
	if types.Subtype(e, got, tPong()) {
		t.Error("buggy ponger (missing reply) must not have type Tpong")
	}
}

// TestWrongChannelFailsCheck: auditing on the wrong channel (the paper's
// "null instead of aud" bug) is rejected.
func TestWrongChannelFailsCheck(t *testing.T) {
	// Expected: send on pongc; buggy version sends on a freshly made
	// channel instead. The precise type then mentions cio[...] rather than
	// pongc̱, so checking against Tping fails.
	buggy := lam("self", types.ChanIO{Elem: str()},
		lam("pongc", types.ChanO{Elem: types.ChanO{Elem: str()}},
			term.Let{Var: "other", Bound: term.NewChan{Elem: types.ChanO{Elem: str()}},
				Body: term.Send{
					Ch:  v("other"),
					Val: v("self"),
					Cont: thunkT(term.Recv{
						Ch:   v("self"),
						Cont: lam("reply", str(), term.End{}),
					}),
				}}))
	e := types.NewEnv()
	got, err := Infer(e, buggy)
	if err != nil {
		t.Fatalf("Infer(buggy pinger): %v", err)
	}
	if types.Subtype(e, got, tPing()) {
		t.Error("pinger sending on the wrong channel must not have type Tping")
	}
}

// --- Mobile code (Ex. 3.4) -------------------------------------------------

// tMobile is Tm from Ex. 3.4:
// Π(i1:ci[int])Π(i2:ci[int])Π(o:co[int]) µt. i[i1, Π(x:int) i[i2, Π(y:int) o[o, x∨y, Π()t]]]
func tMobile() types.Type {
	return types.Pi{Var: "i1", Dom: types.ChanI{Elem: i64()},
		Cod: types.Pi{Var: "i2", Dom: types.ChanI{Elem: i64()},
			Cod: types.Pi{Var: "o", Dom: types.ChanO{Elem: i64()},
				Cod: types.Rec{Var: "t", Body: types.In{
					Ch: tvar("i1"),
					Cont: types.Pi{Var: "x", Dom: i64(), Cod: types.In{
						Ch: tvar("i2"),
						Cont: types.Pi{Var: "y", Dom: i64(), Cod: types.Out{
							Ch:      tvar("o"),
							Payload: types.Union{L: tvar("x"), R: tvar("y")},
							Cont:    types.Thunk(types.RecVar{Name: "t"}),
						}},
					}},
				}}}}}
}

// mForward is the m1-style filter: always forward x from i1, recursing
// with the channels in the same order. (The paper's m1 swaps i1/i2 on
// recursion; under the strict pointwise reading of Tm the swapped variant
// alternates which channel is read first and does not conform — see
// TestMobileSwapDoesNotConform. DESIGN.md records this deviation.)
func mForward() term.Term {
	body := lam("i1", types.ChanI{Elem: i64()},
		lam("i2", types.ChanI{Elem: i64()},
			lam("o", types.ChanO{Elem: i64()},
				term.Recv{Ch: v("i1"), Cont: lam("x", i64(),
					term.Recv{Ch: v("i2"), Cont: lam("y", i64(),
						term.Send{Ch: v("o"), Val: v("x"),
							Cont: thunkT(term.App{Fn: term.App{Fn: term.App{Fn: v("m"), Arg: v("i1")}, Arg: v("i2")}, Arg: v("o")})})})})))
	return term.Let{Var: "m", Ann: tMobile(), Bound: body, Body: v("m")}
}

// mMax sends the maximum of x and y (the paper's m2).
func mMax() term.Term {
	maxXY := term.If{
		Cond: term.BinOp{Op: ">", L: v("x"), R: v("y")},
		Then: v("x"),
		Else: v("y"),
	}
	body := lam("i1", types.ChanI{Elem: i64()},
		lam("i2", types.ChanI{Elem: i64()},
			lam("o", types.ChanO{Elem: i64()},
				term.Recv{Ch: v("i1"), Cont: lam("x", i64(),
					term.Recv{Ch: v("i2"), Cont: lam("y", i64(),
						term.Send{Ch: v("o"), Val: maxXY,
							Cont: thunkT(term.App{Fn: term.App{Fn: term.App{Fn: v("m"), Arg: v("i1")}, Arg: v("i2")}, Arg: v("o")})})})})))
	return term.Let{Var: "m", Ann: tMobile(), Bound: body, Body: v("m")}
}

func TestMobileCodeConforms(t *testing.T) {
	e := types.NewEnv()
	for name, m := range map[string]term.Term{"forward": mForward(), "max": mMax()} {
		got, err := Infer(e, m)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !types.Subtype(e, got, tMobile()) {
			t.Errorf("%s : Tm failed; got %s", name, got)
		}
	}
}

func TestMobileSwapDoesNotConform(t *testing.T) {
	// m1 with the i1/i2 swap on recursion: reads i2 first on even rounds.
	body := lam("i1", types.ChanI{Elem: i64()},
		lam("i2", types.ChanI{Elem: i64()},
			lam("o", types.ChanO{Elem: i64()},
				term.Recv{Ch: v("i1"), Cont: lam("x", i64(),
					term.Recv{Ch: v("i2"), Cont: lam("y", i64(),
						term.Send{Ch: v("o"), Val: v("x"),
							Cont: thunkT(term.App{Fn: term.App{Fn: term.App{Fn: v("m"), Arg: v("i2")}, Arg: v("i1")}, Arg: v("o")})})})})))
	e := types.EnvOf("m", tMobile())
	got, err := Infer(e, body)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if types.Subtype(e, got, types.UnfoldAll(tMobile())) {
		t.Error("the swapped variant alternates input order and must not conform to Tm pointwise")
	}
}

// TestMobileCodeUntypableFork: a Tm-typed term cannot be a forkbomb —
// parallel composition in the continuation is rejected by the type.
func TestMobileCodeUntypableFork(t *testing.T) {
	forkbomb := lam("i1", types.ChanI{Elem: i64()},
		lam("i2", types.ChanI{Elem: i64()},
			lam("o", types.ChanO{Elem: i64()},
				term.Recv{Ch: v("i1"), Cont: lam("x", i64(),
					term.Par{
						L: term.Send{Ch: v("o"), Val: v("x"), Cont: thunkT(term.End{})},
						R: term.Send{Ch: v("o"), Val: v("x"), Cont: thunkT(term.End{})},
					})})))
	e := types.NewEnv()
	got, err := Infer(e, forkbomb)
	if err != nil {
		t.Fatalf("Infer: %v", err)
	}
	if types.Subtype(e, got, tMobile()) {
		t.Error("a forking filter must not conform to Tm")
	}
}

// TestDependentApplication checks the type-level substitution of [t-app]:
// applying a function to a channel variable records that very variable in
// the result type.
func TestDependentApplication(t *testing.T) {
	e := types.EnvOf("c", types.ChanIO{Elem: i64()})
	f := lam("x", types.ChanO{Elem: i64()},
		term.Send{Ch: v("x"), Val: term.IntLit{Val: 1}, Cont: thunkT(term.End{})})
	app := term.App{Fn: f, Arg: v("c")}
	got, err := Infer(e, app)
	if err != nil {
		t.Fatal(err)
	}
	want := types.Out{Ch: tvar("c"), Payload: i64(), Cont: types.Thunk(tnil())}
	if !types.Equal(got, want) {
		t.Errorf("dependent application: got %s, want %s", got, want)
	}
}

func TestLamNeedsAnnotation(t *testing.T) {
	if _, err := Infer(types.NewEnv(), term.Lam{Var: "x", Body: v("x")}); err == nil {
		t.Error("unannotated λ must be rejected")
	}
}

func TestIfUnion(t *testing.T) {
	e := types.EnvOf("x", i64(), "y", i64())
	tt := term.If{Cond: term.BoolLit{Val: true}, Then: v("x"), Else: v("y")}
	got, err := Infer(e, tt)
	if err != nil {
		t.Fatal(err)
	}
	want := types.Union{L: tvar("x"), R: tvar("y")}
	if !types.Equal(got, want) {
		t.Errorf("if: got %s, want %s", got, want)
	}
	if !types.Subtype(e, got, i64()) {
		t.Error("x̱ ∨ y̱ ⩽ int should hold")
	}
}

func TestParRequiresProcesses(t *testing.T) {
	e := types.NewEnv()
	// [Err-par]: a value in parallel composition is an error; the type
	// system rejects it.
	bad := term.Par{L: term.IntLit{Val: 1}, R: term.End{}}
	if _, err := Infer(e, bad); err == nil {
		t.Error("value ‖ process must be untypable")
	}
}

// --- Payment service at the calculus level (§1 / Fig. 1) --------------------

// tService is the Π-abstracted payment-service protocol: receive a Pay
// (carrying the payer's reply channel p), then either reject (reply
// immediately) or accept (audit by forwarding p, then reply), forever.
func tService() types.Type {
	// Accepted and Rejected are distinct message types (Int vs Str), as
	// in the Akka Typed original — this is what makes the missing audit
	// detectable: replying Accepted is only allowed after the audit.
	respT := types.Union{L: types.Int{}, R: types.Str{}}
	payT := types.ChanO{Elem: respT}
	reject := func(cont types.Type) types.Type {
		return types.Out{Ch: tvar("p"), Payload: types.Str{}, Cont: types.Thunk(cont)}
	}
	accept := func(cont types.Type) types.Type {
		return types.Out{Ch: tvar("p"), Payload: types.Int{}, Cont: types.Thunk(cont)}
	}
	body := types.Rec{Var: "t", Body: types.In{Ch: tvar("m"),
		Cont: types.Pi{Var: "p", Dom: payT, Cod: types.Union{
			L: reject(types.RecVar{Name: "t"}),
			R: types.Out{Ch: tvar("aud"), Payload: tvar("p"),
				Cont: types.Thunk(accept(types.RecVar{Name: "t"}))},
		}}}}
	return types.Pi{Var: "m", Dom: types.ChanIO{Elem: payT},
		Cod: types.Pi{Var: "aud", Dom: types.ChanIO{Elem: payT}, Cod: body}}
}

// serviceTerm implements tService; buggy variants drop the audit or
// respond on the wrong channel.
func serviceTerm(auditBeforeAccept bool) term.Term {
	respT := types.Union{L: types.Int{}, R: types.Str{}}
	payT := types.ChanO{Elem: respT}
	recurse := term.App{Fn: term.App{Fn: v("srv"), Arg: v("m")}, Arg: v("aud")}
	reject := term.Send{Ch: v("p"), Val: term.StrLit{Val: "rejected"}, Cont: thunkT(recurse)}
	accepted := term.IntLit{Val: 1} // the Accepted message
	var accept term.Term
	if auditBeforeAccept {
		accept = term.Send{Ch: v("aud"), Val: v("p"),
			Cont: thunkT(term.Send{Ch: v("p"), Val: accepted, Cont: thunkT(recurse)})}
	} else {
		// The §1 bug: forgetting line 7 — accept without auditing.
		accept = term.Send{Ch: v("p"), Val: accepted, Cont: thunkT(recurse)}
	}
	body := lam("m", types.ChanIO{Elem: payT},
		lam("aud", types.ChanIO{Elem: payT},
			term.Recv{Ch: v("m"), Cont: lam("p", payT,
				term.If{
					Cond: term.BinOp{Op: ">", L: term.IntLit{Val: 50000}, R: term.IntLit{Val: 42000}},
					Then: reject,
					Else: accept,
				})}))
	return term.Let{Var: "srv", Ann: tService(), Bound: body, Body: v("srv")}
}

// TestPaymentServiceConforms: the correct implementation checks against
// the protocol type; this is the paper's opening promise.
func TestPaymentServiceConforms(t *testing.T) {
	e := types.NewEnv()
	got, err := Infer(e, serviceTerm(true))
	if err != nil {
		t.Fatalf("Infer(service): %v", err)
	}
	if !types.Subtype(e, got, tService()) {
		t.Errorf("payment service does not conform to its protocol\n  got %s", got)
	}
}

// TestPaymentServiceMissingAuditRejected: dropping the audit send (the
// paper's "if the developer forgets to write line 7" bug) makes the
// program fail to type-check against the protocol.
func TestPaymentServiceMissingAuditRejected(t *testing.T) {
	e := types.NewEnv()
	got, err := Infer(e, serviceTerm(false))
	if err != nil {
		return // rejected at the let annotation — the compile error the paper promises
	}
	if types.Subtype(e, got, tService()) {
		t.Error("the audit-less service must NOT conform to the protocol")
	}
}

// TestCheckHelper exercises the Check entry point.
func TestCheckHelper(t *testing.T) {
	e := types.NewEnv()
	if err := Check(e, serviceTerm(true), tService()); err != nil {
		t.Errorf("Check(service): %v", err)
	}
	if err := Check(e, serviceTerm(false), tService()); err == nil {
		t.Error("Check must reject the audit-less service")
	}
}

// TestUnionBranchTyping: the if-branches produce the union type that the
// protocol's internal choice (∨) expects.
func TestUnionBranchTyping(t *testing.T) {
	e := types.EnvOf("c", types.ChanIO{Elem: types.Str{}})
	tt := term.If{
		Cond: term.BoolLit{Val: true},
		Then: term.Send{Ch: v("c"), Val: term.StrLit{Val: "l"}, Cont: thunkT(term.End{})},
		Else: term.End{},
	}
	got, err := Infer(e, tt)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := got.(types.Union)
	if !ok {
		t.Fatalf("expected a union type, got %s", got)
	}
	if err := types.CheckProcType(e, u); err != nil {
		t.Errorf("union of π-types must be a π-type: %v", err)
	}
}
