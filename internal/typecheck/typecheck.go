// Package typecheck implements the typing judgement Γ ⊢ t : T of the λπ⩽
// calculus (PLDI 2019, Fig. 4).
//
// The checker is syntax-driven and infers *minimal* types: a term variable
// x gets the singleton type x̱ ([t-x]), so the types of processes record
// exactly which channels they use — the paper's key device for tracking
// channel usage across transmissions. Subsumption ([t-⩽]) is applied at
// the leaves of elimination forms via subtype checks.
package typecheck

import (
	"fmt"

	"effpi/internal/term"
	"effpi/internal/types"
)

// Infer computes the minimal type of t in env, implementing the
// syntax-driven reading of Fig. 4.
func Infer(env *types.Env, t term.Term) (types.Type, error) {
	switch t := t.(type) {
	case term.Var:
		if !env.Has(t.Name) {
			return nil, fmt.Errorf("unbound variable %s", t.Name)
		}
		return types.Var{Name: t.Name}, nil // [t-x]: x : x̱

	case term.BoolLit:
		return types.Bool{}, nil // [t-B]
	case term.IntLit:
		return types.Int{}, nil
	case term.StrLit:
		return types.Str{}, nil
	case term.UnitVal:
		return types.Unit{}, nil // [t-()]

	case term.Err:
		return nil, fmt.Errorf("the error value has no type (well-typed terms are safe, Thm. 3.6)")

	case term.ChanVal:
		// [t-C]: a^T : cio[T]
		if err := types.CheckType(env, t.Elem); err != nil {
			return nil, fmt.Errorf("channel instance %s: %w", t.Name, err)
		}
		return types.ChanIO{Elem: t.Elem}, nil

	case term.NewChan:
		// [t-chan]: chan()^T : cio[T]
		if err := types.CheckType(env, t.Elem); err != nil {
			return nil, fmt.Errorf("chan(): %w", err)
		}
		return types.ChanIO{Elem: t.Elem}, nil

	case term.Lam:
		return inferLam(env, t)

	case term.Not:
		// [t-¬]
		if err := checkSub(env, t.T, types.Bool{}); err != nil {
			return nil, fmt.Errorf("operand of !: %w", err)
		}
		return types.Bool{}, nil

	case term.BinOp:
		return inferBinOp(env, t)

	case term.If:
		// [t-if]: the result is the union of the branch types.
		if err := checkSub(env, t.Cond, types.Bool{}); err != nil {
			return nil, fmt.Errorf("condition of if: %w", err)
		}
		thenT, err := Infer(env, t.Then)
		if err != nil {
			return nil, err
		}
		elseT, err := Infer(env, t.Else)
		if err != nil {
			return nil, err
		}
		if types.Equal(thenT, elseT) {
			return thenT, nil
		}
		return types.Union{L: thenT, R: elseT}, nil

	case term.Let:
		return inferLet(env, t)

	case term.App:
		return inferApp(env, t)

	case term.End:
		return types.Nil{}, nil // [t-end]

	case term.Send:
		return inferSend(env, t)

	case term.Recv:
		return inferRecv(env, t)

	case term.Par:
		// [t-||]: both components must be π-typed.
		lt, err := Infer(env, t.L)
		if err != nil {
			return nil, err
		}
		rt, err := Infer(env, t.R)
		if err != nil {
			return nil, err
		}
		p := types.Par{L: lt, R: rt}
		if err := types.CheckProcType(env, p); err != nil {
			return nil, fmt.Errorf("parallel composition: %w", err)
		}
		return p, nil

	default:
		return nil, fmt.Errorf("cannot type term %T", t)
	}
}

// Check verifies Γ ⊢ t : want, combining Infer with subsumption [t-⩽].
func Check(env *types.Env, t term.Term, want types.Type) error {
	got, err := Infer(env, t)
	if err != nil {
		return err
	}
	if !types.Subtype(env, got, want) {
		return fmt.Errorf("type mismatch:\n  inferred %s\n  expected %s", got, want)
	}
	return nil
}

func inferLam(env *types.Env, t term.Lam) (types.Type, error) {
	if t.Ann == nil {
		return nil, fmt.Errorf("λ%s: parameter needs a type annotation", t.Var)
	}
	if err := types.CheckType(env, t.Ann); err != nil {
		return nil, fmt.Errorf("annotation of λ%s: %w", t.Var, err)
	}
	body := t.Body
	v := t.Var
	// λ_.t abbreviates λx.t with x ∉ fv(t) (paper Def. 2.1): produce the
	// thunk type Π()T in that case.
	thunk := v == "_" || !term.FreeVars(body)[v]
	if v == "_" {
		v = types.FreshName("u")
	}
	inner, bound := env.ExtendFresh(v, t.Ann)
	if bound != v {
		body = term.Subst(body, v, term.Var{Name: bound})
	}
	bodyT, err := Infer(inner, body)
	if err != nil {
		return nil, err
	}
	if thunk && isUnit(t.Ann) && !types.FreeVars(bodyT)[bound] {
		return types.Thunk(bodyT), nil
	}
	return types.Pi{Var: bound, Dom: t.Ann, Cod: bodyT}, nil
}

func inferLet(env *types.Env, t term.Let) (types.Type, error) {
	if t.Ann == nil {
		// Without an annotation, the let cannot be recursive: type the
		// bound term first, then bind its inferred type.
		boundT, err := Infer(env, t.Bound)
		if err != nil {
			return nil, fmt.Errorf("in let %s: %w", t.Var, err)
		}
		body := t.Body
		inner, bound := env.ExtendFresh(t.Var, boundT)
		if bound != t.Var {
			body = term.Subst(body, t.Var, term.Var{Name: bound})
		}
		bodyT, err := Infer(inner, body)
		if err != nil {
			return nil, err
		}
		return types.Subst(bodyT, bound, boundT), nil
	}
	// [t-let] with annotation U: Γ,x:U ⊢ t : U′ ⩽ U and Γ,x:U ⊢ t′ : T,
	// giving T{U′/x}. The bound term may refer to x (recursion).
	if err := types.CheckType(env, t.Ann); err != nil {
		return nil, fmt.Errorf("annotation of let %s: %w", t.Var, err)
	}
	boundTerm, body := t.Bound, t.Body
	inner, bv := env.ExtendFresh(t.Var, t.Ann)
	if bv != t.Var {
		boundTerm = term.Subst(boundTerm, t.Var, term.Var{Name: bv})
		body = term.Subst(body, t.Var, term.Var{Name: bv})
	}
	boundT, err := Infer(inner, boundTerm)
	if err != nil {
		return nil, fmt.Errorf("in let %s: %w", t.Var, err)
	}
	if !types.Subtype(inner, boundT, t.Ann) {
		return nil, fmt.Errorf("let %s: bound term has type %s, not a subtype of annotation %s", t.Var, boundT, t.Ann)
	}
	bodyT, err := Infer(inner, body)
	if err != nil {
		return nil, err
	}
	// When the bound term's precise type still mentions x (recursive
	// definitions), substituting it would not eliminate the variable;
	// fall back to the annotation, which is closed w.r.t. x.
	u := boundT
	if types.FreeVars(u)[bv] {
		u = t.Ann
	}
	return types.Subst(bodyT, bv, u), nil
}

func inferApp(env *types.Env, t term.App) (types.Type, error) {
	fnT, err := Infer(env, t.Fn)
	if err != nil {
		return nil, err
	}
	pi, err := resolvePi(env, fnT)
	if err != nil {
		return nil, fmt.Errorf("cannot apply %s: %w", t.Fn, err)
	}
	argT, err := Infer(env, t.Arg)
	if err != nil {
		return nil, err
	}
	if !types.Subtype(env, argT, pi.Dom) {
		return nil, fmt.Errorf("argument %s has type %s, not a subtype of parameter type %s", t.Arg, argT, pi.Dom)
	}
	// [t-app]: the result is T{U′/x} where U′ is the argument's minimal
	// type — the type-level application that composes protocols (Ex. 3.3).
	if pi.Var == "" {
		return pi.Cod, nil
	}
	return types.Subst(pi.Cod, pi.Var, argT), nil
}

func inferSend(env *types.Env, t term.Send) (types.Type, error) {
	chT, err := Infer(env, t.Ch)
	if err != nil {
		return nil, err
	}
	cap, ok := types.ResolveChan(env, chT)
	if !ok {
		return nil, fmt.Errorf("send: %s has type %s, which is not a channel type", t.Ch, chT)
	}
	if !cap.Out {
		return nil, fmt.Errorf("send: channel type %s does not permit output", chT)
	}
	valT, err := Infer(env, t.Val)
	if err != nil {
		return nil, err
	}
	if !types.Subtype(env, valT, cap.Payload) {
		return nil, fmt.Errorf("send: payload %s has type %s, not a subtype of channel payload %s", t.Val, valT, cap.Payload)
	}
	contT, err := Infer(env, t.Cont)
	if err != nil {
		return nil, err
	}
	thunk, err := resolveThunk(env, contT)
	if err != nil {
		return nil, fmt.Errorf("send continuation: %w", err)
	}
	out := types.Out{Ch: chT, Payload: valT, Cont: thunk}
	if err := types.CheckProcType(env, out); err != nil {
		return nil, fmt.Errorf("send: %w", err)
	}
	return out, nil
}

func inferRecv(env *types.Env, t term.Recv) (types.Type, error) {
	chT, err := Infer(env, t.Ch)
	if err != nil {
		return nil, err
	}
	cap, ok := types.ResolveChan(env, chT)
	if !ok {
		return nil, fmt.Errorf("recv: %s has type %s, which is not a channel type", t.Ch, chT)
	}
	if !cap.In {
		return nil, fmt.Errorf("recv: channel type %s does not permit input", chT)
	}
	contT, err := Infer(env, t.Cont)
	if err != nil {
		return nil, err
	}
	pi, err := resolvePi(env, contT)
	if err != nil {
		return nil, fmt.Errorf("recv continuation: %w", err)
	}
	// [π-i]: the channel's payload must fit the continuation's domain.
	if !types.Subtype(env, cap.Payload, pi.Dom) {
		return nil, fmt.Errorf("recv: channel payload %s is not a subtype of continuation parameter type %s", cap.Payload, pi.Dom)
	}
	in := types.In{Ch: chT, Cont: pi}
	if err := types.CheckProcType(env, in); err != nil {
		return nil, fmt.Errorf("recv: %w", err)
	}
	return in, nil
}

func inferBinOp(env *types.Env, t term.BinOp) (types.Type, error) {
	lt, err := Infer(env, t.L)
	if err != nil {
		return nil, err
	}
	rt, err := Infer(env, t.R)
	if err != nil {
		return nil, err
	}
	isInt := func(x types.Type) bool { return types.Subtype(env, x, types.Int{}) }
	isStr := func(x types.Type) bool { return types.Subtype(env, x, types.Str{}) }
	switch t.Op {
	case "+", "-", "*":
		if isInt(lt) && isInt(rt) {
			return types.Int{}, nil
		}
	case ">", "<", ">=", "<=":
		if isInt(lt) && isInt(rt) {
			return types.Bool{}, nil
		}
	case "==":
		return types.Bool{}, nil
	case "++":
		if isStr(lt) && isStr(rt) {
			return types.Str{}, nil
		}
	default:
		return nil, fmt.Errorf("unknown operator %q", t.Op)
	}
	return nil, fmt.Errorf("operator %q not applicable to %s and %s", t.Op, lt, rt)
}

// resolvePi resolves t (through variables and µ-unfolding) to a dependent
// function type.
func resolvePi(env *types.Env, t types.Type) (types.Pi, error) {
	for i := 0; i < 64; i++ {
		t = types.UnfoldAll(t)
		switch tt := t.(type) {
		case types.Pi:
			return tt, nil
		case types.Var:
			bound, ok := env.Lookup(tt.Name)
			if !ok {
				return types.Pi{}, fmt.Errorf("unbound variable %s", tt.Name)
			}
			t = bound
		default:
			return types.Pi{}, fmt.Errorf("%s is not a function type", t)
		}
	}
	return types.Pi{}, fmt.Errorf("function type resolution diverged")
}

// resolveThunk resolves t to a process thunk type Π()U with U a π-type
// (the shape [π-o] requires of output continuations).
func resolveThunk(env *types.Env, t types.Type) (types.Pi, error) {
	pi, err := resolvePi(env, t)
	if err != nil {
		return types.Pi{}, err
	}
	if pi.Var != "" && types.FreeVars(pi.Cod)[pi.Var] {
		return types.Pi{}, fmt.Errorf("continuation %s is not a thunk: it depends on its parameter", t)
	}
	if !isUnit(pi.Dom) {
		return types.Pi{}, fmt.Errorf("continuation %s must take a unit argument", t)
	}
	return types.Thunk(pi.Cod), nil
}

func isUnit(t types.Type) bool {
	_, ok := types.UnfoldAll(t).(types.Unit)
	return ok
}

func checkSub(env *types.Env, t term.Term, want types.Type) error {
	got, err := Infer(env, t)
	if err != nil {
		return err
	}
	if !types.Subtype(env, got, want) {
		return fmt.Errorf("%s has type %s, expected %s", t, got, want)
	}
	return nil
}
