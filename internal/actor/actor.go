// Package actor provides the simplified actor-based API of Effpi (§5.1):
// an actor is a process with a unique input channel (its mailbox); other
// processes interact with it through an ActorRef, which is just the
// output endpoint of the mailbox. The Ref/Mailbox split mirrors the
// co[T]/ci[T] channel types of the calculus: a Ref can only send, a
// Mailbox can only read.
package actor

import "effpi/internal/runtime"

// Ref is a typed actor reference: the output endpoint co[T] of an
// actor's mailbox. It only permits sending T-typed messages, the
// static guarantee Akka Typed's ActorRef[T] provides.
type Ref[T any] struct{ ch *runtime.Chan }

// Mailbox is the input endpoint ci[T] of an actor's channel.
type Mailbox[T any] struct{ ch *runtime.Chan }

// NewMailbox creates an actor channel on the engine and returns both
// endpoints.
func NewMailbox[T any](e runtime.Engine) (Mailbox[T], Ref[T]) {
	ch := e.NewChan()
	return Mailbox[T]{ch: ch}, Ref[T]{ch: ch}
}

// Tell sends msg to the actor behind r, then continues as cont
// (the `send(ref, msg) >> ...` combinator of Fig. 1).
func Tell[T any](r Ref[T], msg T, cont func() runtime.Proc) runtime.Proc {
	return runtime.Send{Ch: r.ch, Val: msg, Cont: cont}
}

// Read waits for the next message in the mailbox (the `read {...}`
// combinator of Fig. 1; the mailbox channel stays implicit in user code
// by closing over it).
func Read[T any](m Mailbox[T], cont func(T) runtime.Proc) runtime.Proc {
	return runtime.Recv{Ch: m.ch, Cont: func(v any) runtime.Proc { return cont(v.(T)) }}
}

// Forever loops an actor behaviour (the `forever {...}` combinator of
// Fig. 1).
func Forever(body func(loop func() runtime.Proc) runtime.Proc) runtime.Proc {
	return runtime.Forever(body)
}

// Stop is the terminated actor.
func Stop() runtime.Proc { return runtime.End{} }
