package actor

import (
	"sync/atomic"
	"testing"

	"effpi/internal/runtime"
)

type greeting struct {
	text    string
	replyTo Ref[string]
}

func engines() []runtime.Engine {
	return []runtime.Engine{
		runtime.NewScheduler(2, runtime.PolicyDefault),
		runtime.NewScheduler(2, runtime.PolicyChannelFSM),
		runtime.NewGoEngine(),
	}
}

func TestTypedRequestResponse(t *testing.T) {
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			mb, ref := NewMailbox[greeting](e)
			var got atomic.Value

			server := Read(mb, func(g greeting) runtime.Proc {
				return Tell(g.replyTo, "re: "+g.text, Stop)
			})

			inbox, me := NewMailbox[string](e)
			client := Tell(ref, greeting{text: "hello", replyTo: me}, func() runtime.Proc {
				return Read(inbox, func(s string) runtime.Proc {
					got.Store(s)
					return Stop()
				})
			})

			e.Run(server, client)
			if got.Load() != "re: hello" {
				t.Errorf("got %v", got.Load())
			}
		})
	}
}

func TestForeverActorCounts(t *testing.T) {
	for _, e := range engines() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			mb, ref := NewMailbox[int](e)
			var sum atomic.Int64
			const n = 1000

			counter := Forever(func(loop func() runtime.Proc) runtime.Proc {
				return Read(mb, func(v int) runtime.Proc {
					if v < 0 {
						return Stop()
					}
					sum.Add(int64(v))
					return runtime.Eval{Run: loop}
				})
			})

			var producer func(i int) runtime.Proc
			producer = func(i int) runtime.Proc {
				if i == n {
					return Tell(ref, -1, Stop)
				}
				return Tell(ref, i, func() runtime.Proc { return producer(i + 1) })
			}

			e.Run(counter, producer(0))
			if sum.Load() != n*(n-1)/2 {
				t.Errorf("sum = %d, want %d", sum.Load(), n*(n-1)/2)
			}
		})
	}
}

// TestMailboxIsTyped demonstrates the Ref[T]/Mailbox[T] split: a Ref can
// only carry its message type — this is a compile-time property, so the
// test simply exercises distinct instantiations sharing an engine.
func TestMailboxIsTyped(t *testing.T) {
	e := runtime.NewScheduler(2, runtime.PolicyChannelFSM)
	ints, intRef := NewMailbox[int](e)
	strs, strRef := NewMailbox[string](e)
	var okInt, okStr atomic.Bool
	e.Run(
		Tell(intRef, 7, Stop),
		Tell(strRef, "seven", Stop),
		Read(ints, func(v int) runtime.Proc { okInt.Store(v == 7); return Stop() }),
		Read(strs, func(v string) runtime.Proc { okStr.Store(v == "seven"); return Stop() }),
	)
	if !okInt.Load() || !okStr.Load() {
		t.Error("typed mailboxes delivered wrong values")
	}
}
