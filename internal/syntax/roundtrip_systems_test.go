package syntax

// Round-trip property tests over the real systems corpus: every type the
// repository actually verifies — the Fig. 9 rows, the large sweep, and a
// band of generated systems — must survive PrintType → ParseType with
// structural equality, and representative protocol terms must survive
// PrintTerm → ParseTerm exactly. The generated-AST round-trips in
// syntax_test.go cover the grammar combinatorially; this file pins the
// concrete spellings the rest of the repo depends on.

import (
	"reflect"
	"testing"

	"effpi/internal/systems"
	"effpi/internal/types"
)

func TestSystemsCorpusTypeRoundTrip(t *testing.T) {
	corpus := append(systems.Fig9Systems(), systems.LargeSystems()...)
	corpus = append(corpus, systems.RandomSystems(25)...)
	if len(corpus) < 30 {
		t.Fatalf("corpus unexpectedly small: %d systems", len(corpus))
	}
	check := func(label string, ty types.Type) {
		t.Helper()
		src := PrintType(ty)
		back, err := ParseType(src)
		if err != nil {
			t.Errorf("%s: reparse of %q failed: %v", label, src, err)
			return
		}
		if !types.Equal(back, ty) {
			t.Errorf("%s: round-trip not structurally equal:\n  orig %s\n  back %s",
				label, PrintType(ty), PrintType(back))
		}
		// The printer must also be deterministic: printing the reparse
		// yields the same spelling.
		if again := PrintType(back); again != src {
			t.Errorf("%s: print not stable: %q vs %q", label, src, again)
		}
	}
	for _, sys := range corpus {
		check(sys.Name+"/type", sys.Type)
		for _, n := range sys.Env.Names() {
			ty, _ := sys.Env.Lookup(n)
			check(sys.Name+"/env/"+n, ty)
		}
	}
}

// representativeTerms are protocol sources in the shapes the examples
// and docs actually use: dependent sends, recursion through let, mobile
// code, channel creation.
var representativeTerms = []string{
	`send(z, y, fun (_: Unit) => recv(y, fun (reply: Str) => end))`,
	`recv(z, fun (replyTo: OChan[Str]) => send(replyTo, "Hi!", fun (_: Unit) => end))`,
	`let m = fun (i1: IChan[Int]) => fun (i2: IChan[Int]) => fun (o: OChan[Int]) =>
	   recv(i1, fun (x: Int) => recv(i2, fun (y: Int) => send(o, x, fun (_: Unit) => m i1 i2 o)))
	 in m`,
	`let c = chan[Int]() in (send(c, 1, fun (_: Unit) => end) || recv(c, fun (v: Int) => end))`,
	`if x > y then send(o, x, fun (_: Unit) => end) else send(o, y, fun (_: Unit) => end)`,
}

func TestRepresentativeTermRoundTrip(t *testing.T) {
	for i, src := range representativeTerms {
		tm, err := ParseTerm(src)
		if err != nil {
			t.Fatalf("term %d: parse failed: %v", i, err)
		}
		printed := PrintTerm(tm)
		back, err := ParseTerm(printed)
		if err != nil {
			t.Fatalf("term %d: reparse of %q failed: %v", i, printed, err)
		}
		if !reflect.DeepEqual(back, tm) {
			t.Errorf("term %d: round-trip mismatch:\n  src     %s\n  printed %s", i, src, printed)
		}
		if again := PrintTerm(back); again != printed {
			t.Errorf("term %d: print not stable: %q vs %q", i, printed, again)
		}
	}
}
