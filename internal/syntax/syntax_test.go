package syntax

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"effpi/internal/term"
	"effpi/internal/types"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`let x = 42 in send(x, "hi\n", fun (u: Unit) => end) // trailing comment`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	want := []string{"let", "x", "=", "42", "in", "send", "(", "x", ",", "hi\n", ",", "fun", "(", "u", ":", "Unit", ")", "=>", "end", ")"}
	if !reflect.DeepEqual(texts, want) {
		t.Errorf("tokens = %q, want %q", texts, want)
	}
}

func TestLexPunctGreedy(t *testing.T) {
	toks, err := Lex("|| | == = => -> >= > ++ +")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks[:len(toks)-1] {
		texts = append(texts, tok.Text)
	}
	want := []string{"||", "|", "==", "=", "=>", "->", ">=", ">", "++", "+"}
	if !reflect.DeepEqual(texts, want) {
		t.Errorf("tokens = %q, want %q", texts, want)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `"bad \q escape"`, "§"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestParseTypeSpotChecks(t *testing.T) {
	cases := []struct {
		src  string
		want types.Type
	}{
		{"Bool", types.Bool{}},
		{"Chan[Int]", types.ChanIO{Elem: types.Int{}}},
		{"IChan[OChan[Str]]", types.ChanI{Elem: types.ChanO{Elem: types.Str{}}}},
		{"Int | Bool", types.Union{L: types.Int{}, R: types.Bool{}}},
		{"(x: Chan[Str]) -> Out[x, Str, Nil]",
			types.Pi{Var: "x", Dom: types.ChanIO{Elem: types.Str{}},
				Cod: types.Out{Ch: types.Var{Name: "x"}, Payload: types.Str{}, Cont: types.Thunk(types.Nil{})}}},
		{"() -> Nil", types.Thunk(types.Nil{})},
		{"rec t. In[x, (v: Int) -> t]",
			types.Rec{Var: "t", Body: types.In{Ch: types.Var{Name: "x"},
				Cont: types.Pi{Var: "v", Dom: types.Int{}, Cod: types.RecVar{Name: "t"}}}}},
		{"Par[Nil, Nil, Nil]", types.ParOf(types.Nil{}, types.Nil{}, types.Nil{})},
	}
	for _, c := range cases {
		got, err := ParseType(c.src)
		if err != nil {
			t.Errorf("ParseType(%q): %v", c.src, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseType(%q) = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestParseTermSpotChecks(t *testing.T) {
	cases := []struct {
		src  string
		want term.Term
	}{
		{"42", term.IntLit{Val: 42}},
		{"x y z", term.App{Fn: term.App{Fn: term.Var{Name: "x"}, Arg: term.Var{Name: "y"}}, Arg: term.Var{Name: "z"}}},
		{"!true", term.Not{T: term.BoolLit{Val: true}}},
		{"1 + 2 * 3", term.BinOp{Op: "+", L: term.IntLit{Val: 1},
			R: term.BinOp{Op: "*", L: term.IntLit{Val: 2}, R: term.IntLit{Val: 3}}}},
		{"chan[Int]()", term.NewChan{Elem: types.Int{}}},
		{"end || end", term.Par{L: term.End{}, R: term.End{}}},
		{`send(c, "m", fun (u: Unit) => end)`,
			term.Send{Ch: term.Var{Name: "c"}, Val: term.StrLit{Val: "m"},
				Cont: term.Lam{Var: "u", Ann: types.Unit{}, Body: term.End{}}}},
		{"let x: Int = 1 in x",
			term.Let{Var: "x", Ann: types.Int{}, Bound: term.IntLit{Val: 1}, Body: term.Var{Name: "x"}}},
		{"if x > 0 then x else 0 - x",
			term.If{Cond: term.BinOp{Op: ">", L: term.Var{Name: "x"}, R: term.IntLit{Val: 0}},
				Then: term.Var{Name: "x"},
				Else: term.BinOp{Op: "-", L: term.IntLit{Val: 0}, R: term.Var{Name: "x"}}}},
	}
	for _, c := range cases {
		got, err := ParseTerm(c.src)
		if err != nil {
			t.Errorf("ParseTerm(%q): %v", c.src, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseTerm(%q) = %#v, want %#v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	badTerms := []string{
		"let x = in y", "fun x => x", "send(a, b)", "if x then y",
		"(", "x ||", "let = 3 in x", "recv(a, b, c)", "1 +",
	}
	for _, src := range badTerms {
		if _, err := ParseTerm(src); err == nil {
			t.Errorf("ParseTerm(%q) should fail", src)
		}
	}
	badTypes := []string{"Chan", "Out[Int]", "rec . t", "(x: ) -> Nil", "In[x]", "Par[Nil]"}
	for _, src := range badTypes {
		if _, err := ParseType(src); err == nil {
			t.Errorf("ParseType(%q) should fail", src)
		}
	}
}

func TestParseProgramWithAliases(t *testing.T) {
	src := `
// ponger from Ex. 2.2
type Reply = OChan[Str]
type Mail = Chan[Reply]
let ponger = fun (self: Mail) =>
  recv(self, fun (replyTo: Reply) =>
    send(replyTo, "Hi!", fun (u: Unit) => end))
in ponger
`
	got, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	l, ok := got.(term.Let)
	if !ok {
		t.Fatalf("expected a let, got %T", got)
	}
	lam, ok := l.Bound.(term.Lam)
	if !ok {
		t.Fatalf("expected a fun, got %T", l.Bound)
	}
	want := types.ChanIO{Elem: types.ChanO{Elem: types.Str{}}}
	if !reflect.DeepEqual(lam.Ann, types.Type(want)) {
		t.Errorf("alias expansion failed: %#v", lam.Ann)
	}
}

// --- round-trip property tests ----------------------------------------------

var typeNames = []string{"x", "y", "z", "c"}

func genType(r *rand.Rand, depth int) types.Type {
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return types.Bool{}
		case 1:
			return types.Int{}
		case 2:
			return types.Str{}
		case 3:
			return types.Unit{}
		case 4:
			return types.Nil{}
		default:
			return types.Var{Name: typeNames[r.Intn(len(typeNames))]}
		}
	}
	switch r.Intn(8) {
	case 0:
		return types.Union{L: genType(r, depth-1), R: genType(r, depth-1)}
	case 1:
		return types.Pi{Var: typeNames[r.Intn(len(typeNames))], Dom: genType(r, depth-1), Cod: genType(r, depth-1)}
	case 2:
		return types.ChanIO{Elem: genType(r, depth-1)}
	case 3:
		return types.ChanI{Elem: genType(r, depth-1)}
	case 4:
		return types.ChanO{Elem: genType(r, depth-1)}
	case 5:
		return types.Out{Ch: genType(r, depth-1), Payload: genType(r, depth-1), Cont: types.Thunk(genType(r, depth-1))}
	case 6:
		return types.In{Ch: genType(r, depth-1), Cont: types.Pi{Var: "v", Dom: genType(r, depth-1), Cod: genType(r, depth-1)}}
	default:
		return types.Par{L: genType(r, depth-1), R: genType(r, depth-1)}
	}
}

func TestTypeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		ty := genType(r, 4)
		src := PrintType(ty)
		back, err := ParseType(src)
		if err != nil {
			t.Fatalf("round-trip parse failed for %q: %v", src, err)
		}
		if !reflect.DeepEqual(back, ty) {
			t.Fatalf("round-trip mismatch:\n  orig %#v\n  src  %s\n  back %#v", ty, src, back)
		}
	}
}

var termNames = []string{"a", "b", "f", "g"}

func genTerm(r *rand.Rand, depth int) term.Term {
	if depth <= 0 {
		switch r.Intn(6) {
		case 0:
			return term.BoolLit{Val: r.Intn(2) == 0}
		case 1:
			return term.IntLit{Val: int64(r.Intn(100))}
		case 2:
			return term.StrLit{Val: "s"}
		case 3:
			return term.UnitVal{}
		case 4:
			return term.End{}
		default:
			return term.Var{Name: termNames[r.Intn(len(termNames))]}
		}
	}
	switch r.Intn(10) {
	case 0:
		return term.Not{T: genTerm(r, depth-1)}
	case 1:
		return term.If{Cond: genTerm(r, depth-1), Then: genTerm(r, depth-1), Else: genTerm(r, depth-1)}
	case 2:
		return term.Let{Var: termNames[r.Intn(len(termNames))], Bound: genTerm(r, depth-1), Body: genTerm(r, depth-1)}
	case 3:
		return term.App{Fn: genTerm(r, depth-1), Arg: genTerm(r, depth-1)}
	case 4:
		return term.Lam{Var: termNames[r.Intn(len(termNames))], Ann: genType(r, 2), Body: genTerm(r, depth-1)}
	case 5:
		return term.Send{Ch: genTerm(r, depth-1), Val: genTerm(r, depth-1), Cont: genTerm(r, depth-1)}
	case 6:
		return term.Recv{Ch: genTerm(r, depth-1), Cont: genTerm(r, depth-1)}
	case 7:
		return term.Par{L: genTerm(r, depth-1), R: genTerm(r, depth-1)}
	case 8:
		return term.NewChan{Elem: genType(r, 2)}
	default:
		ops := []string{"+", "-", "*", ">", "<", ">=", "<=", "==", "++"}
		return term.BinOp{Op: ops[r.Intn(len(ops))], L: genTerm(r, depth-1), R: genTerm(r, depth-1)}
	}
}

func TestTermRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		tm := genTerm(r, 4)
		src := PrintTerm(tm)
		back, err := ParseTerm(src)
		if err != nil {
			t.Fatalf("round-trip parse failed for %q: %v", src, err)
		}
		if !reflect.DeepEqual(back, tm) {
			t.Fatalf("round-trip mismatch:\n  orig %#v\n  src  %s\n  back %#v", tm, src, back)
		}
	}
}

// TestLexNeverPanics fuzzes the lexer with random strings via
// testing/quick: it must either tokenise or return an error, never panic.
func TestLexNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Lex(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestParseNeverPanics fuzzes the parser similarly.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = ParseTerm(s)
		_, _ = ParseType(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
