package syntax

import (
	"fmt"
	"strings"

	"effpi/internal/term"
	"effpi/internal/types"
)

// PrintType renders a type in the concrete syntax accepted by ParseType.
func PrintType(t types.Type) string {
	var b strings.Builder
	printType(t, &b)
	return b.String()
}

func printType(t types.Type, b *strings.Builder) {
	switch t := t.(type) {
	case types.Bool:
		b.WriteString("Bool")
	case types.Unit:
		b.WriteString("Unit")
	case types.Int:
		b.WriteString("Int")
	case types.Str:
		b.WriteString("Str")
	case types.Top:
		b.WriteString("Top")
	case types.Bottom:
		b.WriteString("Bot")
	case types.Proc:
		b.WriteString("Proc")
	case types.Nil:
		b.WriteString("Nil")
	case types.Var:
		b.WriteString(t.Name)
	case types.RecVar:
		b.WriteString(t.Name)
	case types.Union:
		b.WriteString("(")
		printType(t.L, b)
		b.WriteString(" | ")
		printType(t.R, b)
		b.WriteString(")")
	case types.Pi:
		if t.Var == "" {
			b.WriteString("(() -> ")
			printType(t.Cod, b)
			b.WriteString(")")
			return
		}
		fmt.Fprintf(b, "((%s: ", t.Var)
		printType(t.Dom, b)
		b.WriteString(") -> ")
		printType(t.Cod, b)
		b.WriteString(")")
	case types.Rec:
		fmt.Fprintf(b, "(rec %s. ", t.Var)
		printType(t.Body, b)
		b.WriteString(")")
	case types.ChanIO:
		b.WriteString("Chan[")
		printType(t.Elem, b)
		b.WriteString("]")
	case types.ChanI:
		b.WriteString("IChan[")
		printType(t.Elem, b)
		b.WriteString("]")
	case types.ChanO:
		b.WriteString("OChan[")
		printType(t.Elem, b)
		b.WriteString("]")
	case types.Out:
		b.WriteString("Out[")
		printType(t.Ch, b)
		b.WriteString(", ")
		printType(t.Payload, b)
		b.WriteString(", ")
		printType(t.Cont, b)
		b.WriteString("]")
	case types.In:
		b.WriteString("In[")
		printType(t.Ch, b)
		b.WriteString(", ")
		printType(t.Cont, b)
		b.WriteString("]")
	case types.Par:
		b.WriteString("Par[")
		printType(t.L, b)
		b.WriteString(", ")
		printType(t.R, b)
		b.WriteString("]")
	default:
		fmt.Fprintf(b, "?%T", t)
	}
}

// PrintTerm renders a term in the concrete syntax accepted by ParseTerm.
func PrintTerm(t term.Term) string {
	var b strings.Builder
	printTerm(t, &b)
	return b.String()
}

func printTerm(t term.Term, b *strings.Builder) {
	switch t := t.(type) {
	case term.Var:
		b.WriteString(t.Name)
	case term.BoolLit:
		if t.Val {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case term.IntLit:
		fmt.Fprintf(b, "%d", t.Val)
	case term.StrLit:
		fmt.Fprintf(b, "%q", t.Val)
	case term.UnitVal:
		b.WriteString("()")
	case term.Err:
		b.WriteString("err")
	case term.ChanVal:
		// Run-time syntax; not re-parseable by design.
		fmt.Fprintf(b, "#%s", t.Name)
	case term.Lam:
		fmt.Fprintf(b, "(fun (%s: ", t.Var)
		printType(t.Ann, b)
		b.WriteString(") => ")
		printTerm(t.Body, b)
		b.WriteString(")")
	case term.Not:
		b.WriteString("!")
		printAtom(t.T, b)
	case term.If:
		b.WriteString("(if ")
		printTerm(t.Cond, b)
		b.WriteString(" then ")
		printTerm(t.Then, b)
		b.WriteString(" else ")
		printTerm(t.Else, b)
		b.WriteString(")")
	case term.Let:
		b.WriteString("(let ")
		b.WriteString(t.Var)
		if t.Ann != nil {
			b.WriteString(": ")
			printType(t.Ann, b)
		}
		b.WriteString(" = ")
		printTerm(t.Bound, b)
		b.WriteString(" in ")
		printTerm(t.Body, b)
		b.WriteString(")")
	case term.App:
		// The function position must be atomic: `!f x` would otherwise
		// re-parse with the application under the negation.
		b.WriteString("(")
		printAtom(t.Fn, b)
		b.WriteString(" ")
		printAtom(t.Arg, b)
		b.WriteString(")")
	case term.NewChan:
		b.WriteString("chan[")
		printType(t.Elem, b)
		b.WriteString("]()")
	case term.End:
		b.WriteString("end")
	case term.Send:
		b.WriteString("send(")
		printTerm(t.Ch, b)
		b.WriteString(", ")
		printTerm(t.Val, b)
		b.WriteString(", ")
		printTerm(t.Cont, b)
		b.WriteString(")")
	case term.Recv:
		b.WriteString("recv(")
		printTerm(t.Ch, b)
		b.WriteString(", ")
		printTerm(t.Cont, b)
		b.WriteString(")")
	case term.Par:
		b.WriteString("(")
		printTerm(t.L, b)
		b.WriteString(" || ")
		printTerm(t.R, b)
		b.WriteString(")")
	case term.BinOp:
		b.WriteString("(")
		printTerm(t.L, b)
		fmt.Fprintf(b, " %s ", t.Op)
		printTerm(t.R, b)
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "?%T", t)
	}
}

func printAtom(t term.Term, b *strings.Builder) {
	switch t.(type) {
	case term.Var, term.BoolLit, term.IntLit, term.StrLit, term.UnitVal, term.End:
		printTerm(t, b)
	default:
		b.WriteString("(")
		printTerm(t, b)
		b.WriteString(")")
	}
}
