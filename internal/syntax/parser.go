package syntax

import (
	"fmt"
	"strconv"

	"effpi/internal/term"
	"effpi/internal/types"
)

// ParseError is a syntax error with position information.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks    []Token
	pos     int
	aliases map[string]types.Type
	recVars map[string]bool
}

// NewParser tokenises src and readies a parser.
func NewParser(src string) (*Parser, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks, aliases: map[string]types.Type{}, recVars: map[string]bool{}}, nil
}

// ParseProgram parses a whole .epi file: a sequence of `type N = T`
// alias declarations followed by one term.
func ParseProgram(src string) (term.Term, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	for p.peekIdent("type") {
		if err := p.parseAlias(); err != nil {
			return nil, err
		}
	}
	t, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseTerm parses a single term.
func ParseTerm(src string) (term.Term, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	t, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return t, p.expectEOF()
}

// ParseType parses a single type.
func ParseType(src string) (types.Type, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	return t, p.expectEOF()
}

// --- token plumbing ---------------------------------------------------------

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) errf(format string, args ...any) error {
	t := p.cur()
	return &ParseError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) peekPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *Parser) peekIdent(s string) bool {
	t := p.cur()
	return t.Kind == TokIdent && t.Text == s
}

func (p *Parser) eatPunct(s string) bool {
	if p.peekPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) eatIdent(s string) bool {
	if p.peekIdent(s) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectPunct(s string) error {
	if !p.eatPunct(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *Parser) expectIdent(s string) error {
	if !p.eatIdent(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *Parser) expectEOF() error {
	if p.cur().Kind != TokEOF {
		return p.errf("unexpected trailing input: %s", p.cur())
	}
	return nil
}

func (p *Parser) ident() (string, error) {
	t := p.cur()
	if t.Kind != TokIdent || IsKeyword(t.Text) {
		return "", p.errf("expected an identifier, found %s", t)
	}
	p.pos++
	return t.Text, nil
}

// --- aliases ----------------------------------------------------------------

func (p *Parser) parseAlias() error {
	if err := p.expectIdent("type"); err != nil {
		return err
	}
	name, err := p.ident()
	if err != nil {
		return err
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	t, err := p.parseType()
	if err != nil {
		return err
	}
	p.aliases[name] = t
	return nil
}

// --- types ------------------------------------------------------------------

func (p *Parser) parseType() (types.Type, error) {
	// Union is the lowest-precedence type operator.
	left, err := p.parseTypeArrow()
	if err != nil {
		return nil, err
	}
	for p.eatPunct("|") {
		right, err := p.parseTypeArrow()
		if err != nil {
			return nil, err
		}
		left = types.Union{L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseTypeArrow() (types.Type, error) {
	if p.peekPunct("(") {
		return p.parseParenType()
	}
	atom, err := p.parseTypeAtom()
	if err != nil {
		return nil, err
	}
	if p.eatPunct("->") {
		cod, err := p.parseTypeArrow()
		if err != nil {
			return nil, err
		}
		return types.Pi{Var: "_", Dom: atom, Cod: cod}, nil
	}
	return atom, nil
}

// parseParenType disambiguates `() -> U`, `(x: T) -> U`, and `(T)`.
func (p *Parser) parseParenType() (types.Type, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	// Thunk: () -> U.
	if p.eatPunct(")") {
		if err := p.expectPunct("->"); err != nil {
			return nil, err
		}
		cod, err := p.parseTypeArrow()
		if err != nil {
			return nil, err
		}
		return types.Thunk(cod), nil
	}
	// Dependent arrow: (x: T) -> U.
	if p.cur().Kind == TokIdent && !IsKeyword(p.cur().Text) &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokPunct && p.toks[p.pos+1].Text == ":" {
		x, err := p.ident()
		if err != nil {
			return nil, err
		}
		p.pos++ // ':'
		dom, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("->"); err != nil {
			return nil, err
		}
		cod, err := p.parseTypeArrow()
		if err != nil {
			return nil, err
		}
		return types.Pi{Var: x, Dom: dom, Cod: cod}, nil
	}
	// Parenthesised type, optionally followed by ->.
	inner, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.eatPunct("->") {
		cod, err := p.parseTypeArrow()
		if err != nil {
			return nil, err
		}
		return types.Pi{Var: "_", Dom: inner, Cod: cod}, nil
	}
	return inner, nil
}

func (p *Parser) parseTypeAtom() (types.Type, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return nil, p.errf("expected a type, found %s", t)
	}
	switch t.Text {
	case "Bool":
		p.pos++
		return types.Bool{}, nil
	case "Unit":
		p.pos++
		return types.Unit{}, nil
	case "Int":
		p.pos++
		return types.Int{}, nil
	case "Str":
		p.pos++
		return types.Str{}, nil
	case "Top":
		p.pos++
		return types.Top{}, nil
	case "Bot":
		p.pos++
		return types.Bottom{}, nil
	case "Proc":
		p.pos++
		return types.Proc{}, nil
	case "Nil":
		p.pos++
		return types.Nil{}, nil
	case "Chan", "IChan", "OChan":
		p.pos++
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		switch t.Text {
		case "Chan":
			return types.ChanIO{Elem: elem}, nil
		case "IChan":
			return types.ChanI{Elem: elem}, nil
		default:
			return types.ChanO{Elem: elem}, nil
		}
	case "Out":
		p.pos++
		args, err := p.typeArgs(3)
		if err != nil {
			return nil, err
		}
		return types.Out{Ch: args[0], Payload: args[1], Cont: thunkify(args[2])}, nil
	case "In":
		p.pos++
		args, err := p.typeArgs(2)
		if err != nil {
			return nil, err
		}
		return types.In{Ch: args[0], Cont: args[1]}, nil
	case "Par":
		p.pos++
		args, err := p.typeArgsAtLeast(2)
		if err != nil {
			return nil, err
		}
		return types.ParOf(args...), nil
	case "rec":
		p.pos++
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("."); err != nil {
			return nil, err
		}
		saved := p.recVars[name]
		p.recVars[name] = true
		body, err := p.parseType()
		p.recVars[name] = saved
		if err != nil {
			return nil, err
		}
		return types.Rec{Var: name, Body: body}, nil
	default:
		if IsKeyword(t.Text) {
			return nil, p.errf("expected a type, found keyword %q", t.Text)
		}
		p.pos++
		if p.recVars[t.Text] {
			return types.RecVar{Name: t.Text}, nil
		}
		if alias, ok := p.aliases[t.Text]; ok {
			return alias, nil
		}
		return types.Var{Name: t.Text}, nil
	}
}

// thunkify wraps a non-thunk continuation type: Out[S,T,U] may be written
// with a bare π-type U, which abbreviates () -> U (as in the paper's own
// notation, e.g. Ex. 3.3).
func thunkify(t types.Type) types.Type {
	if pi, ok := t.(types.Pi); ok && pi.Var == "" {
		return pi
	}
	return types.Thunk(t)
}

func (p *Parser) typeArgs(n int) ([]types.Type, error) {
	args, err := p.typeArgsAtLeast(n)
	if err != nil {
		return nil, err
	}
	if len(args) != n {
		return nil, p.errf("expected %d type arguments, got %d", n, len(args))
	}
	return args, nil
}

func (p *Parser) typeArgsAtLeast(n int) ([]types.Type, error) {
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	var args []types.Type
	for {
		a, err := p.parseType()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct("]"); err != nil {
		return nil, err
	}
	if len(args) < n {
		return nil, p.errf("expected at least %d type arguments, got %d", n, len(args))
	}
	return args, nil
}

// --- terms ------------------------------------------------------------------

func (p *Parser) parseTerm() (term.Term, error) {
	return p.parsePar()
}

func (p *Parser) parsePar() (term.Term, error) {
	left, err := p.parseCompare()
	if err != nil {
		return nil, err
	}
	for p.eatPunct("||") {
		right, err := p.parseCompare()
		if err != nil {
			return nil, err
		}
		left = term.Par{L: left, R: right}
	}
	return left, nil
}

var compareOps = map[string]bool{"==": true, ">": true, "<": true, ">=": true, "<=": true}

func (p *Parser) parseCompare() (term.Term, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct && compareOps[t.Text] {
		p.pos++
		right, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return term.BinOp{Op: t.Text, L: left, R: right}, nil
	}
	return left, nil
}

func (p *Parser) parseAdd() (term.Term, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind == TokPunct && (t.Text == "+" || t.Text == "-" || t.Text == "++") {
			p.pos++
			right, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = term.BinOp{Op: t.Text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *Parser) parseMul() (term.Term, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.eatPunct("*") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = term.BinOp{Op: "*", L: left, R: right}
	}
	return left, nil
}

func (p *Parser) parseUnary() (term.Term, error) {
	if p.eatPunct("!") {
		t, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return term.Not{T: t}, nil
	}
	return p.parseApp()
}

func (p *Parser) parseApp() (term.Term, error) {
	fn, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for p.startsAtom() {
		arg, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		fn = term.App{Fn: fn, Arg: arg}
	}
	return fn, nil
}

// startsAtom reports whether the current token can begin an application
// argument.
func (p *Parser) startsAtom() bool {
	t := p.cur()
	switch t.Kind {
	case TokInt, TokStr:
		return true
	case TokPunct:
		return t.Text == "("
	case TokIdent:
		switch t.Text {
		case "in", "then", "else", "type":
			return false
		case "let", "fun", "if", "rec":
			return false
		default:
			return true
		}
	default:
		return false
	}
}

func (p *Parser) parseAtom() (term.Term, error) {
	t := p.cur()
	switch t.Kind {
	case TokInt:
		p.pos++
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer literal %q", t.Text)
		}
		return term.IntLit{Val: n}, nil

	case TokStr:
		p.pos++
		return term.StrLit{Val: t.Text}, nil

	case TokPunct:
		if t.Text == "(" {
			p.pos++
			if p.eatPunct(")") {
				return term.UnitVal{}, nil
			}
			inner, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			return inner, p.expectPunct(")")
		}
		return nil, p.errf("expected a term, found %s", t)

	case TokIdent:
		switch t.Text {
		case "true":
			p.pos++
			return term.BoolLit{Val: true}, nil
		case "false":
			p.pos++
			return term.BoolLit{Val: false}, nil
		case "end":
			p.pos++
			return term.End{}, nil
		case "let":
			return p.parseLet()
		case "fun":
			return p.parseFun()
		case "if":
			return p.parseIf()
		case "send":
			p.pos++
			args, err := p.termArgs(3)
			if err != nil {
				return nil, err
			}
			return term.Send{Ch: args[0], Val: args[1], Cont: args[2]}, nil
		case "recv":
			p.pos++
			args, err := p.termArgs(2)
			if err != nil {
				return nil, err
			}
			return term.Recv{Ch: args[0], Cont: args[1]}, nil
		case "chan":
			p.pos++
			if err := p.expectPunct("["); err != nil {
				return nil, err
			}
			elem, err := p.parseType()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return term.NewChan{Elem: elem}, nil
		default:
			if IsKeyword(t.Text) {
				return nil, p.errf("unexpected keyword %q", t.Text)
			}
			p.pos++
			return term.Var{Name: t.Text}, nil
		}
	default:
		return nil, p.errf("expected a term, found %s", t)
	}
}

func (p *Parser) parseLet() (term.Term, error) {
	if err := p.expectIdent("let"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	var ann types.Type
	if p.eatPunct(":") {
		ann, err = p.parseType()
		if err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	bound, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("in"); err != nil {
		return nil, err
	}
	body, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return term.Let{Var: name, Ann: ann, Bound: bound, Body: body}, nil
}

func (p *Parser) parseFun() (term.Term, error) {
	if err := p.expectIdent("fun"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	ann, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("=>"); err != nil {
		return nil, err
	}
	body, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return term.Lam{Var: name, Ann: ann, Body: body}, nil
}

func (p *Parser) parseIf() (term.Term, error) {
	if err := p.expectIdent("if"); err != nil {
		return nil, err
	}
	cond, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("then"); err != nil {
		return nil, err
	}
	thn, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if err := p.expectIdent("else"); err != nil {
		return nil, err
	}
	els, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return term.If{Cond: cond, Then: thn, Else: els}, nil
}

func (p *Parser) termArgs(n int) ([]term.Term, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []term.Term
	for {
		a, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if !p.eatPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if len(args) != n {
		return nil, p.errf("expected %d arguments, got %d", n, len(args))
	}
	return args, nil
}
