// Package syntax provides a concrete syntax for λπ⩽ terms and types — a
// lexer, a recursive-descent parser, and a pretty-printer. It plays the
// role of the Dotty surface syntax in the original artifact: programs are
// written in .epi files and checked/verified/run by cmd/effpi.
//
// The grammar (see parser.go for the full productions):
//
//	term  ::= let x [: type] = term in term
//	        | fun (x: type) => term
//	        | if term then term else term
//	        | send(term, term, term) | recv(term, term)
//	        | chan[type]() | end | term || term | term binop term
//	        | !term | term term | x | literal | (term)
//	type  ::= type "|" type | rec t. type | (x: type) -> type
//	        | Chan[type] | IChan[type] | OChan[type]
//	        | Out[type, type, type] | In[type, type] | Par[type, ...]
//	        | Bool | Unit | Int | Str | Top | Bot | Proc | Nil | x | (type)
package syntax

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind int

const (
	// TokEOF marks the end of input.
	TokEOF TokenKind = iota
	// TokIdent is an identifier (or keyword; the parser distinguishes).
	TokIdent
	// TokInt is an integer literal.
	TokInt
	// TokStr is a string literal (already unquoted).
	TokStr
	// TokPunct is an operator or punctuation token.
	TokPunct
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokStr:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}

// Keywords of the term and type languages.
var keywords = map[string]bool{
	"let": true, "in": true, "fun": true, "if": true, "then": true,
	"else": true, "end": true, "send": true, "recv": true, "chan": true,
	"true": true, "false": true, "rec": true, "type": true,
}

// IsKeyword reports whether s is a reserved word.
func IsKeyword(s string) bool { return keywords[s] }

// punctuation tokens, longest first so the lexer is greedy.
var puncts = []string{
	"||", "|", "(", ")", "[", "]", ",", ".", "=>", "->", "==", "=",
	"++", "+", "-", "*", ">=", "<=", ">", "<", "!", ":",
}

// LexError is a lexical error with position information.
type LexError struct {
	Line, Col int
	Msg       string
}

func (e *LexError) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

// Lex tokenises src.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if src[i+k] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)

		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}

		case unicode.IsLetter(rune(c)) || c == '_':
			start, sl, sc := i, line, col
			for i < len(src) && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_' || src[i] == '\'') {
				advance(1)
			}
			toks = append(toks, Token{Kind: TokIdent, Text: src[start:i], Line: sl, Col: sc})

		case unicode.IsDigit(rune(c)):
			start, sl, sc := i, line, col
			for i < len(src) && unicode.IsDigit(rune(src[i])) {
				advance(1)
			}
			toks = append(toks, Token{Kind: TokInt, Text: src[start:i], Line: sl, Col: sc})

		case c == '"':
			sl, sc := line, col
			advance(1)
			var b strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\\' && i+1 < len(src) {
					switch src[i+1] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '"':
						b.WriteByte('"')
					case '\\':
						b.WriteByte('\\')
					default:
						return nil, &LexError{Line: line, Col: col, Msg: fmt.Sprintf("unknown escape \\%c", src[i+1])}
					}
					advance(2)
					continue
				}
				if src[i] == '"' {
					advance(1)
					closed = true
					break
				}
				if src[i] == '\n' {
					return nil, &LexError{Line: sl, Col: sc, Msg: "newline in string literal"}
				}
				b.WriteByte(src[i])
				advance(1)
			}
			if !closed {
				return nil, &LexError{Line: sl, Col: sc, Msg: "unterminated string literal"}
			}
			toks = append(toks, Token{Kind: TokStr, Text: b.String(), Line: sl, Col: sc})

		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, Token{Kind: TokPunct, Text: p, Line: line, Col: col})
					advance(len(p))
					matched = true
					break
				}
			}
			if !matched {
				return nil, &LexError{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}
