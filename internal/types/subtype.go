package types

// This file implements the subtyping judgement Γ ⊢ T ⩽ U of Fig. 4.
//
// Subtyping is coinductive (the double-lined rules in the paper); we decide
// it with the standard assume-on-revisit algorithm: when checking a pair
// (T, U) that is already on the current derivation path, the check succeeds
// (the infinite derivation exists). Equi-recursive µ-types are unfolded on
// demand; contractivity (enforced by well-formedness) plus the finiteness
// of reachable subterm pairs guarantee termination.
//
// The congruence ≡ is folded in by working with canonical forms: parallel
// compositions are flattened multisets (nil dropped), unions are flattened,
// and reflexivity is checked on canonical renderings.

// Subtype reports Γ ⊢ t ⩽ u.
func Subtype(env *Env, t, u Type) bool {
	c := &subtypeChecker{env: env, assumed: make(map[string]bool)}
	return c.sub(t, u)
}

type subtypeChecker struct {
	env     *Env
	assumed map[string]bool
	depth   int
}

const maxSubtypeDepth = 512

func (c *subtypeChecker) sub(t, u Type) bool {
	c.depth++
	defer func() { c.depth-- }()
	if c.depth > maxSubtypeDepth {
		return false
	}

	t = UnfoldAll(t)
	u = UnfoldAll(u)

	ct, cu := Canon(t), Canon(u)
	if ct == cu {
		return true // [⩽-refl] modulo ≡ (AC laws)
	}
	key := ct + " <: " + cu
	if c.assumed[key] {
		return true // coinduction hypothesis
	}
	c.assumed[key] = true
	defer delete(c.assumed, key)

	// [⩽-⊤] and [⩽-⊥].
	if _, ok := u.(Top); ok {
		return true
	}
	if _, ok := t.(Bottom); ok {
		return true
	}

	// [⩽-∨L]: T ∨ U ⩽ S iff both branches are.
	if tu, ok := t.(Union); ok {
		return c.sub(tu.L, u) && c.sub(tu.R, u)
	}

	// [⩽-∨R]: S ⩽ T ∨ U if either branch works.
	if uu, ok := u.(Union); ok {
		if c.sub(t, uu.L) || c.sub(t, uu.R) {
			return true
		}
		// fall through: a Var on the left may still resolve via [⩽-x].
	}

	// [⩽-x]: x ⩽ T if Γ(x) ⩽ T.
	if tv, ok := t.(Var); ok {
		bound, ok := c.env.Lookup(tv.Name)
		if !ok {
			return false
		}
		return c.sub(bound, u)
	}

	// [⩽-proc]: any π-type is a subtype of proc.
	if _, ok := u.(Proc); ok {
		return looksProcType(t)
	}

	switch t := t.(type) {
	case Pi:
		up, ok := u.(Pi)
		if !ok {
			return false
		}
		return c.subPi(t, up)
	case ChanIO:
		switch u := u.(type) {
		case ChanI: // cio[T] ⩽ ci[T'] if T ⩽ T'
			return c.sub(t.Elem, u.Elem)
		case ChanO: // cio[T'] ⩽ co[T] if T ⩽ T'
			return c.sub(u.Elem, t.Elem)
		case ChanIO: // only via ≡; allow mutual payload subtyping
			return c.sub(t.Elem, u.Elem) && c.sub(u.Elem, t.Elem)
		}
		return false
	case ChanI:
		u, ok := u.(ChanI)
		return ok && c.sub(t.Elem, u.Elem)
	case ChanO:
		u, ok := u.(ChanO)
		return ok && c.sub(u.Elem, t.Elem)
	case Out:
		u, ok := u.(Out)
		return ok && c.sub(t.Ch, u.Ch) && c.sub(t.Payload, u.Payload) && c.sub(t.Cont, u.Cont)
	case In:
		u, ok := u.(In)
		return ok && c.sub(t.Ch, u.Ch) && c.sub(t.Cont, u.Cont)
	case Par, Nil:
		return c.subPar(FlattenPar(t), u)
	}
	return false
}

// subPi implements [⩽-Π] (kernel rule, after Cardelli-Wegner [9]):
// Π(x:T)U ⩽ Π(x:T)U' iff Γ,x:T ⊢ U ⩽ U'. Domains must be equivalent;
// bound variables are α-aligned on a fresh name.
func (c *subtypeChecker) subPi(t, u Pi) bool {
	if !(c.sub(t.Dom, u.Dom) && c.sub(u.Dom, t.Dom)) {
		return false
	}
	if t.Var == "" && u.Var == "" {
		return c.sub(t.Cod, u.Cod)
	}
	base := t.Var
	if base == "" {
		base = u.Var
	}
	env, fresh := c.env.ExtendFresh(base, t.Dom)
	tCod, uCod := t.Cod, u.Cod
	if t.Var != "" {
		tCod = Subst(tCod, t.Var, Var{Name: fresh})
	}
	if u.Var != "" {
		uCod = Subst(uCod, u.Var, Var{Name: fresh})
	}
	saved := c.env
	c.env = env
	ok := c.sub(tCod, uCod)
	c.env = saved
	return ok
}

// subPar implements [⩽-p] modulo the AC+nil congruence on parallel
// compositions: the flattened components of t must match the flattened
// components of u by some bijection, componentwise covariantly.
func (c *subtypeChecker) subPar(ts []Type, u Type) bool {
	switch UnfoldAll(u).(type) {
	case Par, Nil:
	default:
		// p[T, nil] ≡ T: a singleton composition may be compared with a
		// non-parallel type directly.
		if len(ts) == 1 {
			return c.sub(ts[0], u)
		}
		return false
	}
	us := FlattenPar(UnfoldAll(u))
	if len(ts) != len(us) {
		return false
	}
	if len(ts) == 0 {
		return true
	}
	used := make([]bool, len(us))
	return c.matchPar(ts, us, used, 0)
}

func (c *subtypeChecker) matchPar(ts, us []Type, used []bool, i int) bool {
	if i == len(ts) {
		return true
	}
	for j := range us {
		if used[j] {
			continue
		}
		if c.sub(ts[i], us[j]) {
			used[j] = true
			if c.matchPar(ts, us, used, i+1) {
				return true
			}
			used[j] = false
		}
	}
	return false
}

// looksProcType is a structural approximation of the judgement
// Γ ⊢ T π-type sufficient for [⩽-proc]: process constructors, unions of
// them, and recursive types whose body is one.
func looksProcType(t Type) bool {
	switch t := UnfoldAll(t).(type) {
	case Nil, Proc, Out, In, Par:
		return true
	case Union:
		return looksProcType(t.L) && looksProcType(t.R)
	default:
		return false
	}
}

// MightInteract implements Γ ⊢ S ▷◁ S′ (Def. 4.2): S and S′ have a common
// subtype other than ⊥, i.e. some term might be typed by both, so an
// output using an S-typed channel can synchronise with an input using an
// S′-typed channel.
func MightInteract(env *Env, s, sp Type) bool {
	s = UnfoldAll(s)
	sp = UnfoldAll(sp)
	if _, ok := s.(Bottom); ok {
		return false
	}
	if _, ok := sp.(Bottom); ok {
		return false
	}
	// A mutual subtype is itself the common subtype (vars included:
	// x ⩽ S′ makes x̱ the witness).
	if Subtype(env, s, sp) || Subtype(env, sp, s) {
		return true
	}
	// Distinct variables have no common subtype besides ⊥ unless related
	// through their bounds (covered above).
	if _, ok := s.(Var); ok {
		return false
	}
	if _, ok := sp.(Var); ok {
		return false
	}
	// Channel-lattice meets not covered by mutual subtyping.
	switch a := s.(type) {
	case ChanI:
		if b, ok := sp.(ChanO); ok {
			// cio[X] ⩽ ci[A] iff X ⩽ A; cio[X] ⩽ co[B] iff B ⩽ X.
			return Subtype(env, b.Elem, a.Elem)
		}
		if b, ok := sp.(ChanI); ok {
			return Subtype(env, a.Elem, b.Elem) || Subtype(env, b.Elem, a.Elem)
		}
	case ChanO:
		if b, ok := sp.(ChanI); ok {
			return Subtype(env, a.Elem, b.Elem)
		}
		if _, ok := sp.(ChanO); ok {
			// co[A∨B] is always a common subtype of co[A] and co[B].
			return true
		}
	}
	return false
}

// ChanCap describes the capabilities offered by a resolved channel type.
type ChanCap struct {
	In      bool // values may be received
	Out     bool // values may be sent
	Payload Type
}

// ResolveChan resolves t (through variables, µ-unfolding, and environment
// bounds) to a channel capability. It reports false if t does not resolve
// to a channel type.
func ResolveChan(env *Env, t Type) (ChanCap, bool) {
	for i := 0; i < 64; i++ {
		t = UnfoldAll(t)
		switch tt := t.(type) {
		case ChanIO:
			return ChanCap{In: true, Out: true, Payload: tt.Elem}, true
		case ChanI:
			return ChanCap{In: true, Payload: tt.Elem}, true
		case ChanO:
			return ChanCap{Out: true, Payload: tt.Elem}, true
		case Var:
			bound, ok := env.Lookup(tt.Name)
			if !ok {
				return ChanCap{}, false
			}
			t = bound
		default:
			return ChanCap{}, false
		}
	}
	return ChanCap{}, false
}
