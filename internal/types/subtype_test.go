package types

import "testing"

func env(bindings ...any) *Env { return EnvOf(bindings...) }

func TestSubtypeReflexivity(t *testing.T) {
	samples := []Type{
		Bool{}, Unit{}, Int{}, Str{}, Top{}, Bottom{},
		Union{L: Bool{}, R: Int{}},
		ChanIO{Elem: Int{}}, ChanI{Elem: Str{}}, ChanO{Elem: Bool{}},
		Nil{}, Proc{},
		Out{Ch: ChanO{Elem: Int{}}, Payload: Int{}, Cont: Thunk(Nil{})},
		In{Ch: ChanI{Elem: Int{}}, Cont: Pi{Var: "x", Dom: Int{}, Cod: Nil{}}},
		Par{L: Nil{}, R: Proc{}},
		Pi{Var: "x", Dom: Int{}, Cod: Bool{}},
		Rec{Var: "t", Body: In{Ch: ChanI{Elem: Int{}}, Cont: Pi{Var: "x", Dom: Int{}, Cod: RecVar{Name: "t"}}}},
	}
	e := NewEnv()
	for _, s := range samples {
		if !Subtype(e, s, s) {
			t.Errorf("reflexivity failed for %s", s)
		}
	}
}

func TestSubtypeTopBottom(t *testing.T) {
	e := NewEnv()
	for _, s := range []Type{Bool{}, Int{}, ChanIO{Elem: Str{}}, Union{L: Bool{}, R: Int{}}} {
		if !Subtype(e, s, Top{}) {
			t.Errorf("%s ⩽ ⊤ failed", s)
		}
		if !Subtype(e, Bottom{}, s) {
			t.Errorf("⊥ ⩽ %s failed", s)
		}
	}
	if Subtype(e, Top{}, Bool{}) {
		t.Error("⊤ ⩽ Bool should fail")
	}
}

func TestSubtypeChannelVariance(t *testing.T) {
	e := NewEnv()
	cio := ChanIO{Elem: Int{}}
	ci := ChanI{Elem: Int{}}
	co := ChanO{Elem: Int{}}
	// [⩽-c]: cio[T] ⩽ ci[T'], cio[T'] ⩽ co[T] when T ⩽ T'.
	if !Subtype(e, cio, ci) {
		t.Error("cio[int] ⩽ ci[int] failed")
	}
	if !Subtype(e, cio, co) {
		t.Error("cio[int] ⩽ co[int] failed")
	}
	if Subtype(e, ci, cio) {
		t.Error("ci[int] ⩽ cio[int] should fail")
	}
	if Subtype(e, ci, co) {
		t.Error("ci[int] ⩽ co[int] should fail")
	}
	// Input covariance.
	if !Subtype(e, ChanI{Elem: Bottom{}}, ChanI{Elem: Int{}}) {
		t.Error("ci covariance failed")
	}
	if Subtype(e, ChanI{Elem: Int{}}, ChanI{Elem: Bottom{}}) {
		t.Error("ci covariance direction wrong")
	}
	// Output contravariance.
	big := Union{L: Int{}, R: Bool{}}
	if !Subtype(e, ChanO{Elem: big}, ChanO{Elem: Int{}}) {
		t.Error("co contravariance failed: co[int∨bool] ⩽ co[int]")
	}
	if Subtype(e, ChanO{Elem: Int{}}, ChanO{Elem: big}) {
		t.Error("co contravariance direction wrong")
	}
}

func TestSubtypeUnion(t *testing.T) {
	e := NewEnv()
	u := Union{L: Int{}, R: Bool{}}
	if !Subtype(e, Int{}, u) {
		t.Error("[⩽-∨R] failed: Int ⩽ Int∨Bool")
	}
	if !Subtype(e, u, Union{L: Bool{}, R: Int{}}) {
		t.Error("union commutativity failed")
	}
	if !Subtype(e, u, Union{L: Str{}, R: u}) {
		t.Error("union widening failed")
	}
	if Subtype(e, u, Int{}) {
		t.Error("Int∨Bool ⩽ Int should fail")
	}
	// Associativity via ≡.
	a := Union{L: Int{}, R: Union{L: Bool{}, R: Str{}}}
	b := Union{L: Union{L: Int{}, R: Bool{}}, R: Str{}}
	if !Subtype(e, a, b) || !Subtype(e, b, a) {
		t.Error("union associativity failed")
	}
}

func TestSubtypeVarRule(t *testing.T) {
	// [⩽-x]: x ⩽ T whenever Γ(x) ⩽ T.
	e := env("x", ChanIO{Elem: Int{}})
	x := Var{Name: "x"}
	if !Subtype(e, x, x) {
		t.Error("x ⩽ x failed")
	}
	if !Subtype(e, x, ChanIO{Elem: Int{}}) {
		t.Error("x ⩽ cio[int] failed (Γ(x) = cio[int])")
	}
	if !Subtype(e, x, ChanO{Elem: Int{}}) {
		t.Error("x ⩽ co[int] failed (via Γ(x) = cio[int] ⩽ co[int])")
	}
	if Subtype(e, ChanIO{Elem: Int{}}, x) {
		t.Error("cio[int] ⩽ x should fail: x̱ is a singleton type")
	}
	e2 := env("x", ChanIO{Elem: Int{}}, "y", ChanIO{Elem: Int{}})
	if Subtype(e2, Var{Name: "x"}, Var{Name: "y"}) {
		t.Error("distinct variables must not be subtypes")
	}
}

func TestSubtypeProcTop(t *testing.T) {
	e := NewEnv()
	procs := []Type{
		Nil{},
		Out{Ch: ChanO{Elem: Int{}}, Payload: Int{}, Cont: Thunk(Nil{})},
		In{Ch: ChanI{Elem: Int{}}, Cont: Pi{Var: "x", Dom: Int{}, Cod: Nil{}}},
		Par{L: Nil{}, R: Nil{}},
		Union{L: Nil{}, R: Proc{}},
	}
	for _, p := range procs {
		if !Subtype(e, p, Proc{}) {
			t.Errorf("[⩽-proc] failed for %s", p)
		}
	}
	if Subtype(e, Bool{}, Proc{}) {
		t.Error("Bool ⩽ proc should fail")
	}
}

func TestSubtypeParCongruence(t *testing.T) {
	e := NewEnv()
	a := Out{Ch: ChanO{Elem: Int{}}, Payload: Int{}, Cont: Thunk(Nil{})}
	b := In{Ch: ChanI{Elem: Int{}}, Cont: Pi{Var: "x", Dom: Int{}, Cod: Nil{}}}
	// p[T,U] ≡ p[U,T].
	if !Subtype(e, Par{L: a, R: b}, Par{L: b, R: a}) {
		t.Error("parallel commutativity failed")
	}
	// p[T,nil] ≡ T.
	if !Subtype(e, Par{L: a, R: Nil{}}, a) || !Subtype(e, a, Par{L: a, R: Nil{}}) {
		t.Error("parallel nil unit failed")
	}
	// Associativity.
	l := Par{L: a, R: Par{L: b, R: Nil{}}}
	r := Par{L: Par{L: a, R: b}, R: Nil{}}
	if !Subtype(e, l, r) || !Subtype(e, r, l) {
		t.Error("parallel associativity failed")
	}
	// end ‖ end ≡ end.
	if !Subtype(e, Par{L: Nil{}, R: Nil{}}, Nil{}) {
		t.Error("p[nil,nil] ⩽ nil failed")
	}
	// Covariance: components may be widened to proc.
	if !Subtype(e, Par{L: a, R: b}, Par{L: Proc{}, R: Proc{}}) {
		t.Error("[⩽-p] covariance failed")
	}
}

func TestSubtypeOutInCovariance(t *testing.T) {
	e := env("x", ChanIO{Elem: Int{}})
	x := Var{Name: "x"}
	// Ex. 3.5: o[x̱, int, Π()nil] ⩽ o[cio[int], int, Π()nil].
	t1 := Out{Ch: x, Payload: Int{}, Cont: Thunk(Nil{})}
	t2 := Out{Ch: ChanIO{Elem: Int{}}, Payload: Int{}, Cont: Thunk(Nil{})}
	if !Subtype(e, t1, t2) {
		t.Error("[⩽-o] covariance in channel position failed (Ex. 3.5)")
	}
	if Subtype(e, t2, t1) {
		t.Error("o[cio[int],...] ⩽ o[x̱,...] should fail")
	}
	i1 := In{Ch: x, Cont: Pi{Var: "y", Dom: Int{}, Cod: Nil{}}}
	i2 := In{Ch: ChanIO{Elem: Int{}}, Cont: Pi{Var: "y", Dom: Int{}, Cod: Nil{}}}
	if !Subtype(e, i1, i2) {
		t.Error("[⩽-i] covariance failed")
	}
	// Full Ex. 3.5: T1 ⩽ T2.
	T1 := Par{L: t1, R: i1}
	T2 := Par{L: t2, R: i1}
	if !Subtype(e, T1, T2) {
		t.Error("Ex. 3.5: T1 ⩽ T2 failed")
	}
}

func TestSubtypeRecUnfold(t *testing.T) {
	e := env("x", ChanIO{Elem: Int{}})
	x := Var{Name: "x"}
	// µt. i[x, Π(y:int) o[x, y, Π()t]]
	rec := Rec{Var: "t", Body: In{Ch: x, Cont: Pi{Var: "y", Dom: Int{},
		Cod: Out{Ch: x, Payload: Var{Name: "y"}, Cont: Thunk(RecVar{Name: "t"})}}}}
	unfolded := Unfold(rec)
	if !Subtype(e, rec, unfolded) || !Subtype(e, unfolded, rec) {
		t.Error("equi-recursive unfolding equivalence failed")
	}
	if !Subtype(e, rec, Proc{}) {
		t.Error("recursive π-type ⩽ proc failed")
	}
}

func TestSubtypePi(t *testing.T) {
	e := NewEnv()
	// [⩽-Π]: covariant codomain, invariant domain.
	f1 := Pi{Var: "x", Dom: Int{}, Cod: Int{}}
	f2 := Pi{Var: "x", Dom: Int{}, Cod: Union{L: Int{}, R: Bool{}}}
	if !Subtype(e, f1, f2) {
		t.Error("Π codomain covariance failed")
	}
	if Subtype(e, f2, f1) {
		t.Error("Π codomain covariance direction wrong")
	}
	f3 := Pi{Var: "x", Dom: Bool{}, Cod: Int{}}
	if Subtype(e, f1, f3) || Subtype(e, f3, f1) {
		t.Error("Π domain must be invariant")
	}
	// α-equivalence.
	g1 := Pi{Var: "a", Dom: ChanIO{Elem: Int{}}, Cod: Out{Ch: Var{Name: "a"}, Payload: Int{}, Cont: Thunk(Nil{})}}
	g2 := Pi{Var: "b", Dom: ChanIO{Elem: Int{}}, Cod: Out{Ch: Var{Name: "b"}, Payload: Int{}, Cont: Thunk(Nil{})}}
	if !Subtype(e, g1, g2) {
		t.Error("Π α-equivalence failed")
	}
}

func TestMightInteract(t *testing.T) {
	e := env("x", ChanIO{Elem: Int{}}, "y", ChanIO{Elem: Int{}})
	x, y := Var{Name: "x"}, Var{Name: "y"}
	if !MightInteract(e, x, x) {
		t.Error("x ▷◁ x failed")
	}
	if MightInteract(e, x, y) {
		t.Error("x ▷◁ y should fail for distinct channels")
	}
	if !MightInteract(e, x, ChanIO{Elem: Int{}}) {
		t.Error("x ▷◁ cio[int] failed (x ⩽ cio[int])")
	}
	if !MightInteract(e, ChanO{Elem: Int{}}, ChanI{Elem: Int{}}) {
		t.Error("co[int] ▷◁ ci[int] failed")
	}
	if MightInteract(e, ChanO{Elem: Int{}}, ChanI{Elem: Bool{}}) {
		t.Error("co[int] ▷◁ ci[bool] should fail")
	}
	if MightInteract(e, Bottom{}, x) {
		t.Error("⊥ interacts with nothing")
	}
}

func TestResolveChan(t *testing.T) {
	e := env("x", ChanIO{Elem: Int{}}, "r", ChanO{Elem: Str{}})
	cap, ok := ResolveChan(e, Var{Name: "x"})
	if !ok || !cap.In || !cap.Out {
		t.Fatalf("ResolveChan(x) = %+v, %v", cap, ok)
	}
	if _, ok := cap.Payload.(Int); !ok {
		t.Errorf("payload = %s, want Int", cap.Payload)
	}
	cap, ok = ResolveChan(e, Var{Name: "r"})
	if !ok || cap.In || !cap.Out {
		t.Fatalf("ResolveChan(r) = %+v, %v", cap, ok)
	}
	if _, ok := ResolveChan(e, Bool{}); ok {
		t.Error("Bool should not resolve to a channel")
	}
}
