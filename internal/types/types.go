// Package types implements the type language of the λπ⩽ calculus from
// "Verifying Message-Passing Programs with Dependent Behavioural Types"
// (Scalas, Yoshida, Benussi; PLDI 2019), Definition 3.1.
//
// The type syntax blends ordinary functional types (booleans, unit, unions,
// dependent function types Π(x:U)T, equi-recursive types µt.T), channel
// types (cio/ci/co), and behavioural process types (nil, o[S,T,U], i[S,T],
// p[T,U], proc). Its distinguishing feature is that types may contain *term
// variables* (Var): the type x̱ is the singleton, most-precise type of the
// term variable x, which is how the system tracks which channels a process
// uses, and when.
//
// As extensions (anticipated by the paper, §2: "λπ⩽ can be routinely
// extended with, e.g., integers, strings") the package also provides Int
// and Str base types, used pervasively in the paper's own examples.
package types

import (
	"fmt"
	"sort"
	"strings"
)

// Type is a λπ⩽ type (Def. 3.1).
//
// The implementations are:
//
//	Bool, Unit, Int, Str          base types
//	Top, Bottom                   ⊤ and ⊥
//	Union                         T ∨ U
//	Pi                            dependent function type Π(x:U)T
//	Rec, RecVar                   equi-recursive type µt.T and its variable t
//	Var                           a term variable x used as a type (x̱)
//	ChanIO, ChanI, ChanO          channel types cio[T], ci[T], co[T]
//	Proc, Nil                     generic and terminated process types
//	Out                           output process type o[S,T,U]
//	In                            input process type i[S,T]
//	Par                           parallel process type p[T,U]
type Type interface {
	typ()
	String() string
}

// Bool is the type of booleans.
type Bool struct{}

// Unit is the unit type ().
type Unit struct{}

// Int is the integer base type (paper §2 extension).
type Int struct{}

// Str is the string base type (paper §2 extension).
type Str struct{}

// Top is the top type ⊤.
type Top struct{}

// Bottom is the bottom type ⊥.
type Bottom struct{}

// Union is the union type T ∨ U.
type Union struct{ L, R Type }

// Pi is the dependent function type Π(x:Dom)Cod. The bound variable Var
// may occur free in Cod (as a Var type). A thunk type Π()T is represented
// with Var == "" and Dom == Unit.
type Pi struct {
	Var string
	Dom Type
	Cod Type
}

// Rec is the equi-recursive type µt.Body; RecVar{t} refers to the binder.
type Rec struct {
	Var  string
	Body Type
}

// RecVar is an occurrence of a recursion variable bound by Rec.
type RecVar struct{ Name string }

// Var is a term variable used as a type: the singleton type x̱ of the term
// variable x (paper Def. 3.1, underlined x).
type Var struct{ Name string }

// ChanIO is the channel type cio[T]: input or output of T-typed values.
type ChanIO struct{ Elem Type }

// ChanI is the input-only channel type ci[T].
type ChanI struct{ Elem Type }

// ChanO is the output-only channel type co[T].
type ChanO struct{ Elem Type }

// Proc is the generic process type proc (top of the π-types).
type Proc struct{}

// Nil is the type of the terminated process end.
type Nil struct{}

// Out is the output process type o[Ch, Payload, Cont]: send a Payload-typed
// value on a Ch-typed channel and continue as Cont (a thunk type Π()U).
type Out struct {
	Ch      Type
	Payload Type
	Cont    Type
}

// In is the input process type i[Ch, Cont]: receive from a Ch-typed channel
// and continue as Cont, which must be a dependent function type Π(x:T)U so
// that the received value is bound to x in the continuation's type U.
type In struct {
	Ch   Type
	Cont Type
}

// Par is the parallel composition type p[L, R].
type Par struct{ L, R Type }

func (Bool) typ()   {}
func (Unit) typ()   {}
func (Int) typ()    {}
func (Str) typ()    {}
func (Top) typ()    {}
func (Bottom) typ() {}
func (Union) typ()  {}
func (Pi) typ()     {}
func (Rec) typ()    {}
func (RecVar) typ() {}
func (Var) typ()    {}
func (ChanIO) typ() {}
func (ChanI) typ()  {}
func (ChanO) typ()  {}
func (Proc) typ()   {}
func (Nil) typ()    {}
func (Out) typ()    {}
func (In) typ()     {}
func (Par) typ()    {}

func (Bool) String() string   { return "Bool" }
func (Unit) String() string   { return "Unit" }
func (Int) String() string    { return "Int" }
func (Str) String() string    { return "Str" }
func (Top) String() string    { return "Top" }
func (Bottom) String() string { return "Bot" }

func (u Union) String() string { return fmt.Sprintf("(%s | %s)", u.L, u.R) }

func (p Pi) String() string {
	if p.Var == "" {
		return fmt.Sprintf("(() -> %s)", p.Cod)
	}
	return fmt.Sprintf("((%s: %s) -> %s)", p.Var, p.Dom, p.Cod)
}

func (r Rec) String() string    { return fmt.Sprintf("rec %s. %s", r.Var, r.Body) }
func (r RecVar) String() string { return r.Name }
func (v Var) String() string    { return v.Name }

func (c ChanIO) String() string { return fmt.Sprintf("Chan[%s]", c.Elem) }
func (c ChanI) String() string  { return fmt.Sprintf("IChan[%s]", c.Elem) }
func (c ChanO) String() string  { return fmt.Sprintf("OChan[%s]", c.Elem) }

func (Proc) String() string { return "Proc" }
func (Nil) String() string  { return "Nil" }

func (o Out) String() string { return fmt.Sprintf("Out[%s, %s, %s]", o.Ch, o.Payload, o.Cont) }
func (i In) String() string  { return fmt.Sprintf("In[%s, %s]", i.Ch, i.Cont) }
func (p Par) String() string { return fmt.Sprintf("Par[%s, %s]", p.L, p.R) }

// Thunk builds the thunk type Π()T used as the continuation of outputs.
func Thunk(t Type) Pi { return Pi{Var: "", Dom: Unit{}, Cod: t} }

// UnionOf folds a list of types into a right-nested union. It returns
// Bottom for an empty list and the sole element for a singleton.
func UnionOf(ts ...Type) Type {
	if len(ts) == 0 {
		return Bottom{}
	}
	t := ts[len(ts)-1]
	for i := len(ts) - 2; i >= 0; i-- {
		t = Union{L: ts[i], R: t}
	}
	return t
}

// ParOf folds a list of types into a right-nested parallel composition.
// It returns Nil for an empty list and the sole element for a singleton.
func ParOf(ts ...Type) Type {
	if len(ts) == 0 {
		return Nil{}
	}
	t := ts[len(ts)-1]
	for i := len(ts) - 2; i >= 0; i-- {
		t = Par{L: ts[i], R: t}
	}
	return t
}

// FlattenUnion returns the leaves of a (possibly nested) union.
func FlattenUnion(t Type) []Type {
	if u, ok := t.(Union); ok {
		return append(FlattenUnion(u.L), FlattenUnion(u.R)...)
	}
	return []Type{t}
}

// FlattenPar returns the non-nil leaves of a (possibly nested) parallel
// composition, implementing the congruences p[S,p[T,U]] ≡ p[p[S,T],U] and
// p[T,nil] ≡ T. A fully terminated composition flattens to an empty slice.
func FlattenPar(t Type) []Type {
	switch t := t.(type) {
	case Par:
		return append(FlattenPar(t.L), FlattenPar(t.R)...)
	case Nil:
		return nil
	default:
		return []Type{t}
	}
}

// FreeVars returns the set of free term variables (Var) of t.
func FreeVars(t Type) map[string]bool {
	fv := make(map[string]bool)
	freeVars(t, map[string]bool{}, fv)
	return fv
}

func freeVars(t Type, bound map[string]bool, out map[string]bool) {
	switch t := t.(type) {
	case Var:
		if !bound[t.Name] {
			out[t.Name] = true
		}
	case Union:
		freeVars(t.L, bound, out)
		freeVars(t.R, bound, out)
	case Pi:
		freeVars(t.Dom, bound, out)
		if t.Var == "" {
			freeVars(t.Cod, bound, out)
			return
		}
		inner := copySet(bound)
		inner[t.Var] = true
		freeVars(t.Cod, inner, out)
	case Rec:
		freeVars(t.Body, bound, out)
	case ChanIO:
		freeVars(t.Elem, bound, out)
	case ChanI:
		freeVars(t.Elem, bound, out)
	case ChanO:
		freeVars(t.Elem, bound, out)
	case Out:
		freeVars(t.Ch, bound, out)
		freeVars(t.Payload, bound, out)
		freeVars(t.Cont, bound, out)
	case In:
		freeVars(t.Ch, bound, out)
		freeVars(t.Cont, bound, out)
	case Par:
		freeVars(t.L, bound, out)
		freeVars(t.R, bound, out)
	}
}

// FreeRecVars returns the set of free recursion variables (RecVar) of t.
func FreeRecVars(t Type) map[string]bool {
	fv := make(map[string]bool)
	freeRecVars(t, map[string]bool{}, fv)
	return fv
}

func freeRecVars(t Type, bound map[string]bool, out map[string]bool) {
	switch t := t.(type) {
	case RecVar:
		if !bound[t.Name] {
			out[t.Name] = true
		}
	case Union:
		freeRecVars(t.L, bound, out)
		freeRecVars(t.R, bound, out)
	case Pi:
		freeRecVars(t.Dom, bound, out)
		freeRecVars(t.Cod, bound, out)
	case Rec:
		inner := copySet(bound)
		inner[t.Var] = true
		freeRecVars(t.Body, inner, out)
	case ChanIO:
		freeRecVars(t.Elem, bound, out)
	case ChanI:
		freeRecVars(t.Elem, bound, out)
	case ChanO:
		freeRecVars(t.Elem, bound, out)
	case Out:
		freeRecVars(t.Ch, bound, out)
		freeRecVars(t.Payload, bound, out)
		freeRecVars(t.Cont, bound, out)
	case In:
		freeRecVars(t.Ch, bound, out)
		freeRecVars(t.Cont, bound, out)
	case Par:
		freeRecVars(t.L, bound, out)
		freeRecVars(t.R, bound, out)
	}
}

func copySet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s)+1)
	for k, v := range s {
		c[k] = v
	}
	return c
}

// Canon renders t to a canonical string: parallel compositions are
// flattened (dropping nil) and sorted, unions are flattened and sorted,
// and binders are renamed to positional names. Two types with equal Canon
// strings are equivalent under the congruence ≡ of Def. 3.1 restricted to
// the AC laws (µ-unfolding is *not* applied, so Canon is a sound but
// incomplete ≡-check; subtyping handles unfolding separately).
func Canon(t Type) string {
	var b strings.Builder
	canon(t, map[string]string{}, 0, &b)
	return b.String()
}

func canon(t Type, rn map[string]string, depth int, b *strings.Builder) {
	switch t := t.(type) {
	case Bool:
		b.WriteString("B")
	case Unit:
		b.WriteString("U")
	case Int:
		b.WriteString("Z")
	case Str:
		b.WriteString("S")
	case Top:
		b.WriteString("⊤")
	case Bottom:
		b.WriteString("⊥")
	case Proc:
		b.WriteString("P")
	case Nil:
		b.WriteString("0")
	case Var:
		if r, ok := rn[t.Name]; ok {
			b.WriteString(r)
		} else {
			b.WriteString("v!")
			b.WriteString(t.Name)
		}
	case RecVar:
		if r, ok := rn[t.Name]; ok {
			b.WriteString(r)
		} else {
			b.WriteString("µ!")
			b.WriteString(t.Name)
		}
	case Union:
		leaves := FlattenUnion(t)
		parts := make([]string, len(leaves))
		for i, l := range leaves {
			var sb strings.Builder
			canon(l, rn, depth, &sb)
			parts[i] = sb.String()
		}
		sort.Strings(parts)
		parts = dedupe(parts)
		if len(parts) == 1 {
			b.WriteString(parts[0])
			return
		}
		b.WriteString("∨(")
		b.WriteString(strings.Join(parts, ","))
		b.WriteString(")")
	case Par:
		leaves := FlattenPar(t)
		if len(leaves) == 0 {
			b.WriteString("0")
			return
		}
		parts := make([]string, len(leaves))
		for i, l := range leaves {
			var sb strings.Builder
			canon(l, rn, depth, &sb)
			parts[i] = sb.String()
		}
		sort.Strings(parts)
		if len(parts) == 1 {
			b.WriteString(parts[0])
			return
		}
		b.WriteString("‖(")
		b.WriteString(strings.Join(parts, ","))
		b.WriteString(")")
	case Pi:
		b.WriteString("Π(")
		if t.Var == "" {
			b.WriteString("_:")
			canon(t.Dom, rn, depth, b)
			b.WriteString(")")
			canon(t.Cod, rn, depth, b)
			return
		}
		fresh := fmt.Sprintf("π%d", depth)
		b.WriteString(fresh)
		b.WriteString(":")
		canon(t.Dom, rn, depth, b)
		b.WriteString(")")
		inner := copyStrMap(rn)
		inner[t.Var] = fresh
		canon(t.Cod, inner, depth+1, b)
	case Rec:
		fresh := fmt.Sprintf("µ%d", depth)
		b.WriteString("µ")
		b.WriteString(fresh)
		b.WriteString(".")
		inner := copyStrMap(rn)
		inner[t.Var] = fresh
		canon(t.Body, inner, depth+1, b)
	case ChanIO:
		b.WriteString("c*[")
		canon(t.Elem, rn, depth, b)
		b.WriteString("]")
	case ChanI:
		b.WriteString("c?[")
		canon(t.Elem, rn, depth, b)
		b.WriteString("]")
	case ChanO:
		b.WriteString("c![")
		canon(t.Elem, rn, depth, b)
		b.WriteString("]")
	case Out:
		b.WriteString("o[")
		canon(t.Ch, rn, depth, b)
		b.WriteString(",")
		canon(t.Payload, rn, depth, b)
		b.WriteString(",")
		canon(t.Cont, rn, depth, b)
		b.WriteString("]")
	case In:
		b.WriteString("i[")
		canon(t.Ch, rn, depth, b)
		b.WriteString(",")
		canon(t.Cont, rn, depth, b)
		b.WriteString("]")
	default:
		b.WriteString(fmt.Sprintf("?%T", t))
	}
}

func dedupe(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func copyStrMap(m map[string]string) map[string]string {
	c := make(map[string]string, len(m)+1)
	for k, v := range m {
		c[k] = v
	}
	return c
}

// Equal reports whether two types are equivalent under the AC fragment of
// the congruence ≡ (union/parallel commutativity and associativity,
// p[T,nil] ≡ T, α-conversion of binders). It does not unfold µ-types.
func Equal(a, b Type) bool { return Canon(a) == Canon(b) }

// IsNilPar reports whether t is a (possibly nested, possibly empty)
// parallel composition of nil processes, i.e. t ≡ nil.
func IsNilPar(t Type) bool { return len(FlattenPar(t)) == 0 && isParOrNil(t) }

func isParOrNil(t Type) bool {
	switch t := t.(type) {
	case Nil:
		return true
	case Par:
		return isParOrNil(t.L) && isParOrNil(t.R)
	default:
		return false
	}
}
