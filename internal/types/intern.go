package types

// This file implements hash-consing of types: an Interner maps every type
// to a small integer ID such that two types receive the same ID iff their
// canonical forms (Canon) are equal — i.e. iff they are equivalent under
// the AC fragment of the congruence ≡ of Def. 3.1 (union/parallel
// commutativity and associativity, p[T,nil] ≡ T, α-conversion of binders).
//
// The interner is the identity backbone of the verification hot path:
// state identity in lts.Explore, transition-label identity, and the
// memoisation keys of the cached type semantics (typelts.Cache) are all
// interned IDs, so the expensive canonical *string* of a type never needs
// to be built at all. Interning walks the type once and hashes structural
// node keys (tag + child IDs + positional binder names), which mirrors
// Canon's traversal exactly: Par components are flattened (nil dropped)
// and sorted, union leaves are flattened, sorted and deduplicated, and
// binders are renamed positionally. Equality of IDs therefore coincides
// with equality of Canon strings (see intern_test.go, which checks the
// iff on every fixture of package systems).
//
// On top of the ID table the interner memoises the two tree rewrites that
// dominate exploration: equi-recursive unfolding (Unfold) and type-level
// substitution (Subst), both keyed on interned IDs. A memoised result may
// be a different syntax tree than a fresh rewrite would produce (it is
// the rewrite of the *first* representative interned at that ID), but it
// is always ≡-equivalent, which is all the transition semantics observes.

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// ID is the hash-consed identity of a type: two types interned in the
// same Interner have equal IDs iff Canon renders them equally.
type ID int32

// Interner hash-conses types. It is safe for concurrent use.
type Interner struct {
	mu    sync.Mutex
	table map[string]ID
	reps  []Type // first representative interned at each ID

	unfold map[ID]Type
	subst  map[substKey]Type

	// positional binder names π0, π1, ... / µ0, µ1, ..., grown on demand
	// so interning does not fmt.Sprintf per binder.
	piNames, muNames []string

	buf []byte // scratch for node keys
}

type substKey struct {
	t ID
	x string
	s ID
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{
		table:  make(map[string]ID, 1024),
		unfold: make(map[ID]Type),
		subst:  make(map[substKey]Type),
	}
}

// Intern returns the ID of t, assigning a fresh one if t's canonical form
// has not been seen before.
func (in *Interner) Intern(t Type) ID {
	in.mu.Lock()
	id := in.intern(t, nil, 0)
	in.mu.Unlock()
	return id
}

// TypeOf returns a representative type of id: the first type interned at
// that ID. It is ≡-equivalent to every other type interned at id.
func (in *Interner) TypeOf(id ID) Type {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.reps[id]
}

// InternPar interns the parallel composition of the already-interned
// components ids — a multiset: order is irrelevant, and ids is sorted in
// place. No type tree is walked or built unless the composition is new
// (its representative is then assembled from the components'
// representatives). This is how lts.Explore identifies successor states
// in O(|components|) instead of O(|type tree|).
//
// ids must be the interned IDs of FlattenPar leaves (non-Par, non-Nil
// types), which is the same invariant Intern itself establishes for Par
// children.
func (in *Interner) InternPar(ids []ID) ID {
	in.mu.Lock()
	defer in.mu.Unlock()
	sortIDs(ids)
	switch len(ids) {
	case 0:
		return in.leaf('0', Nil{})
	case 1:
		return ids[0]
	}
	key := append(in.buf[:0], tagPar)
	for _, id := range ids {
		key = appendID(key, id)
	}
	in.buf = key[:0]
	if id, ok := in.table[string(key)]; ok {
		return id
	}
	comps := make([]Type, len(ids))
	for i, c := range ids {
		comps[i] = in.reps[c]
	}
	id := ID(len(in.reps))
	in.table[string(key)] = id
	in.reps = append(in.reps, ParOf(comps...))
	return id
}

// Len returns the number of distinct types interned so far.
func (in *Interner) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.reps)
}

// Unfold is a memoised types.Unfold: one step of µt.T ≡ T{µt.T/t}. The
// result is ≡-equivalent to (but not necessarily syntactically identical
// with) Unfold(t): it is computed from the interner's representative of
// t, which makes the memo entry a pure function of t's interned identity
// — independent of which syntactic variant was passed first and of
// goroutine scheduling. Concurrent racing computations are resolved
// first-write-wins, so a published entry never changes.
func (in *Interner) Unfold(t Type) Type {
	r, ok := t.(Rec)
	if !ok {
		return t
	}
	in.mu.Lock()
	id := in.intern(t, nil, 0)
	if u, ok := in.unfold[id]; ok {
		in.mu.Unlock()
		return u
	}
	if rep, ok := in.reps[id].(Rec); ok {
		r = rep
	}
	in.mu.Unlock()
	u := SubstRec(r.Body, r.Var, r)
	in.mu.Lock()
	if prev, ok := in.unfold[id]; ok {
		u = prev
	} else {
		in.unfold[id] = u
	}
	in.mu.Unlock()
	return u
}

// Subst is a memoised types.Subst: t with every free occurrence of the
// term variable x replaced by s. Like Unfold, the result is computed
// from the representatives of t and s (≡-equivalent to Subst(t, x, s),
// schedule-independent) and races are resolved first-write-wins.
func (in *Interner) Subst(t Type, x string, s Type) Type {
	in.mu.Lock()
	tid := in.intern(t, nil, 0)
	sid := in.intern(s, nil, 0)
	key := substKey{t: tid, x: x, s: sid}
	if r, ok := in.subst[key]; ok {
		in.mu.Unlock()
		return r
	}
	tRep, sRep := in.reps[tid], in.reps[sid]
	in.mu.Unlock()
	r := Subst(tRep, x, sRep)
	in.mu.Lock()
	if prev, ok := in.subst[key]; ok {
		r = prev
	} else {
		in.subst[key] = r
	}
	in.mu.Unlock()
	return r
}

// rnPair is one binder renaming; lookups scan backwards so inner binders
// shadow outer ones, like Canon's copied map.
type rnPair struct{ from, to string }

func lookupRn(rn []rnPair, name string) (string, bool) {
	for i := len(rn) - 1; i >= 0; i-- {
		if rn[i].from == name {
			return rn[i].to, true
		}
	}
	return "", false
}

func (in *Interner) piName(depth int) string {
	for len(in.piNames) <= depth {
		in.piNames = append(in.piNames, "π"+itoaSmall(len(in.piNames)))
	}
	return in.piNames[depth]
}

func (in *Interner) muName(depth int) string {
	for len(in.muNames) <= depth {
		in.muNames = append(in.muNames, "µ"+itoaSmall(len(in.muNames)))
	}
	return in.muNames[depth]
}

func itoaSmall(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Node key tags. Each tag is followed by the fields listed; IDs and the
// binder depth are fixed-width 32-bit values, names are NUL-terminated.
const (
	tagLeaf  = byte('L') // + canon leaf byte (B U Z S ⊤→T ⊥→F P 0)
	tagOcc   = byte('n') // + resolved occurrence string (π3 / µ1 / v!x / µ!t)
	tagUnion = byte('|') // + sorted, deduped child IDs
	tagPar   = byte('p') // + sorted child IDs
	tagThunk = byte('Q') // + dom ID + cod ID
	tagPi    = byte('>') // + depth + dom ID + cod ID
	tagRec   = byte('u') // + depth + body ID
	tagCIO   = byte('c') // + elem ID
	tagCI    = byte('i') // + elem ID
	tagCO    = byte('o') // + elem ID
	tagOut   = byte('!') // + ch ID + payload ID + cont ID
	tagIn    = byte('?') // + ch ID + cont ID
	tagOther = byte('#') // + Go type string (mirrors Canon's "?%T" fallback)
)

// intern walks t bottom-up: children are interned first, then the node's
// key is assembled in the scratch buffer and looked up. The traversal,
// renaming and flattening mirror canon() exactly; the caller holds mu.
func (in *Interner) intern(t Type, rn []rnPair, depth int) ID {
	switch t := t.(type) {
	case Bool:
		return in.leaf('B', t)
	case Unit:
		return in.leaf('U', t)
	case Int:
		return in.leaf('Z', t)
	case Str:
		return in.leaf('S', t)
	case Top:
		return in.leaf('T', t)
	case Bottom:
		return in.leaf('F', t)
	case Proc:
		return in.leaf('P', t)
	case Nil:
		return in.leaf('0', t)

	case Var:
		if r, ok := lookupRn(rn, t.Name); ok {
			return in.occ(r, t)
		}
		return in.occ2("v!", t.Name, t)
	case RecVar:
		if r, ok := lookupRn(rn, t.Name); ok {
			return in.occ(r, t)
		}
		return in.occ2("µ!", t.Name, t)

	case Union:
		leaves := FlattenUnion(t)
		ids := make([]ID, len(leaves))
		for i, l := range leaves {
			ids[i] = in.intern(l, rn, depth)
		}
		sortIDs(ids)
		ids = dedupeIDs(ids)
		if len(ids) == 1 {
			return ids[0]
		}
		key := append(in.buf[:0], tagUnion)
		for _, id := range ids {
			key = appendID(key, id)
		}
		return in.get(key, t)

	case Par:
		leaves := FlattenPar(t)
		if len(leaves) == 0 {
			return in.leaf('0', Nil{})
		}
		ids := make([]ID, len(leaves))
		for i, l := range leaves {
			ids[i] = in.intern(l, rn, depth)
		}
		if len(ids) == 1 {
			return ids[0]
		}
		sortIDs(ids)
		key := append(in.buf[:0], tagPar)
		for _, id := range ids {
			key = appendID(key, id)
		}
		return in.get(key, t)

	case Pi:
		if t.Var == "" {
			dom := in.intern(t.Dom, rn, depth)
			cod := in.intern(t.Cod, rn, depth)
			key := appendID(appendID(append(in.buf[:0], tagThunk), dom), cod)
			return in.get(key, t)
		}
		dom := in.intern(t.Dom, rn, depth)
		cod := in.intern(t.Cod, append(rn, rnPair{from: t.Var, to: in.piName(depth)}), depth+1)
		key := appendID(appendID(appendInt(append(in.buf[:0], tagPi), depth), dom), cod)
		return in.get(key, t)

	case Rec:
		body := in.intern(t.Body, append(rn, rnPair{from: t.Var, to: in.muName(depth)}), depth+1)
		key := appendID(appendInt(append(in.buf[:0], tagRec), depth), body)
		return in.get(key, t)

	case ChanIO:
		return in.unary(tagCIO, in.intern(t.Elem, rn, depth), t)
	case ChanI:
		return in.unary(tagCI, in.intern(t.Elem, rn, depth), t)
	case ChanO:
		return in.unary(tagCO, in.intern(t.Elem, rn, depth), t)

	case Out:
		ch := in.intern(t.Ch, rn, depth)
		pl := in.intern(t.Payload, rn, depth)
		ct := in.intern(t.Cont, rn, depth)
		key := appendID(appendID(appendID(append(in.buf[:0], tagOut), ch), pl), ct)
		return in.get(key, t)

	case In:
		ch := in.intern(t.Ch, rn, depth)
		ct := in.intern(t.Cont, rn, depth)
		key := appendID(appendID(append(in.buf[:0], tagIn), ch), ct)
		return in.get(key, t)

	default:
		// Mirror Canon's "?%T" fallback: unknown implementations are
		// identified by their Go type alone.
		key := append(in.buf[:0], tagOther)
		key = append(key, typeName(t)...)
		return in.get(key, t)
	}
}

func typeName(t Type) string {
	// Matches the identity granularity of Canon's "?%T" fallback: unknown
	// implementations are identified by their Go type alone.
	return fmt.Sprintf("%T", t)
}

func (in *Interner) leaf(c byte, rep Type) ID {
	key := append(in.buf[:0], tagLeaf, c)
	return in.get(key, rep)
}

func (in *Interner) occ(resolved string, rep Type) ID {
	key := append(append(in.buf[:0], tagOcc), resolved...)
	return in.get(key, rep)
}

func (in *Interner) occ2(prefix, name string, rep Type) ID {
	key := append(append(append(in.buf[:0], tagOcc), prefix...), name...)
	return in.get(key, rep)
}

func (in *Interner) unary(tag byte, child ID, rep Type) ID {
	key := appendID(append(in.buf[:0], tag), child)
	return in.get(key, rep)
}

func (in *Interner) get(key []byte, rep Type) ID {
	// Keep the (possibly grown) scratch buffer for the next node.
	in.buf = key[:0]
	if id, ok := in.table[string(key)]; ok {
		return id
	}
	id := ID(len(in.reps))
	in.table[string(key)] = id
	in.reps = append(in.reps, rep)
	return id
}

func appendID(b []byte, id ID) []byte {
	return binary.LittleEndian.AppendUint32(b, uint32(id))
}

func appendInt(b []byte, n int) []byte {
	return binary.LittleEndian.AppendUint32(b, uint32(n))
}

// sortIDs is an insertion sort: the flattened leaf lists of unions and
// parallel compositions are short, and this avoids sort.Slice's closure
// allocation on the exploration hot path.
func sortIDs(ids []ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func dedupeIDs(sorted []ID) []ID {
	out := sorted[:0]
	for i, id := range sorted {
		if i == 0 || id != sorted[i-1] {
			out = append(out, id)
		}
	}
	return out
}
