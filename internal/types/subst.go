package types

import (
	"fmt"
	"sync/atomic"
)

var freshCounter atomic.Uint64

// FreshName returns a name, derived from base, that has not been returned
// before in this process. It implements the Barendregt convention used
// throughout the paper: bound variables are kept distinct by renaming.
func FreshName(base string) string {
	n := freshCounter.Add(1)
	return fmt.Sprintf("%s%%%d", base, n)
}

// Subst returns t with every free occurrence of the term variable x (as a
// type, Var{x}) replaced by s: the type-level substitution T{S/x} of
// Def. 3.1. The substitution is capture-avoiding: Π-binders whose variable
// occurs free in s are α-renamed first.
func Subst(t Type, x string, s Type) Type {
	if !FreeVars(t)[x] {
		return t
	}
	return subst(t, x, s)
}

func subst(t Type, x string, s Type) Type {
	switch t := t.(type) {
	case Var:
		if t.Name == x {
			return s
		}
		return t
	case Union:
		return Union{L: subst(t.L, x, s), R: subst(t.R, x, s)}
	case Pi:
		if t.Var == x {
			// x is shadowed in the codomain.
			return Pi{Var: t.Var, Dom: subst(t.Dom, x, s), Cod: t.Cod}
		}
		if t.Var == "" {
			// Thunk: no binder, substitute everywhere.
			return Pi{Var: "", Dom: subst(t.Dom, x, s), Cod: subst(t.Cod, x, s)}
		}
		cod := t.Cod
		v := t.Var
		if FreeVars(s)[v] {
			fresh := FreshName(v)
			cod = subst(cod, v, Var{Name: fresh})
			v = fresh
		}
		return Pi{Var: v, Dom: subst(t.Dom, x, s), Cod: subst(cod, x, s)}
	case Rec:
		return Rec{Var: t.Var, Body: subst(t.Body, x, s)}
	case ChanIO:
		return ChanIO{Elem: subst(t.Elem, x, s)}
	case ChanI:
		return ChanI{Elem: subst(t.Elem, x, s)}
	case ChanO:
		return ChanO{Elem: subst(t.Elem, x, s)}
	case Out:
		return Out{Ch: subst(t.Ch, x, s), Payload: subst(t.Payload, x, s), Cont: subst(t.Cont, x, s)}
	case In:
		return In{Ch: subst(t.Ch, x, s), Cont: subst(t.Cont, x, s)}
	case Par:
		return Par{L: subst(t.L, x, s), R: subst(t.R, x, s)}
	default:
		return t
	}
}

// SubstRec returns t with every free occurrence of the recursion variable
// name replaced by s. It is used to unfold µ-types.
func SubstRec(t Type, name string, s Type) Type {
	switch t := t.(type) {
	case RecVar:
		if t.Name == name {
			return s
		}
		return t
	case Union:
		return Union{L: SubstRec(t.L, name, s), R: SubstRec(t.R, name, s)}
	case Pi:
		return Pi{Var: t.Var, Dom: SubstRec(t.Dom, name, s), Cod: SubstRec(t.Cod, name, s)}
	case Rec:
		if t.Var == name {
			return t
		}
		return Rec{Var: t.Var, Body: SubstRec(t.Body, name, s)}
	case ChanIO:
		return ChanIO{Elem: SubstRec(t.Elem, name, s)}
	case ChanI:
		return ChanI{Elem: SubstRec(t.Elem, name, s)}
	case ChanO:
		return ChanO{Elem: SubstRec(t.Elem, name, s)}
	case Out:
		return Out{Ch: SubstRec(t.Ch, name, s), Payload: SubstRec(t.Payload, name, s), Cont: SubstRec(t.Cont, name, s)}
	case In:
		return In{Ch: SubstRec(t.Ch, name, s), Cont: SubstRec(t.Cont, name, s)}
	case Par:
		return Par{L: SubstRec(t.L, name, s), R: SubstRec(t.R, name, s)}
	default:
		return t
	}
}

// Unfold performs one step of equi-recursive unfolding:
// µt.T ≡ T{µt.T/t}. Non-recursive types are returned unchanged.
func Unfold(t Type) Type {
	if r, ok := t.(Rec); ok {
		return SubstRec(r.Body, r.Var, r)
	}
	return t
}

// UnfoldAll unfolds top-level µ-binders until the head constructor is not
// a Rec. The limit guards against non-contractive types such as µt.t,
// which well-formedness rejects but malformed inputs may contain.
func UnfoldAll(t Type) Type {
	for i := 0; i < 64; i++ {
		r, ok := t.(Rec)
		if !ok {
			return t
		}
		t = SubstRec(r.Body, r.Var, r)
	}
	return t
}

// Apply performs the type-level application T S of Def. 3.1: if t is a
// dependent function type Π(x:U)T it returns T{S/x}; a thunk Π()T returns
// T unchanged. The boolean reports whether t was a Π-type.
func Apply(t Type, arg Type) (Type, bool) {
	p, ok := UnfoldAll(t).(Pi)
	if !ok {
		return nil, false
	}
	if p.Var == "" {
		return p.Cod, true
	}
	return Subst(p.Cod, p.Var, arg), true
}
