package types

import "testing"

func TestCheckTypeBasics(t *testing.T) {
	e := env("x", ChanIO{Elem: Int{}})
	good := []Type{
		Bool{}, Unit{}, Int{}, Str{}, Top{}, Bottom{},
		Union{L: Int{}, R: Bool{}},
		ChanIO{Elem: Str{}}, ChanI{Elem: ChanO{Elem: Int{}}},
		Var{Name: "x"},
		Pi{Var: "y", Dom: Int{}, Cod: Bool{}},
		Pi{Var: "c", Dom: ChanIO{Elem: Int{}}, Cod: Out{Ch: Var{Name: "c"}, Payload: Int{}, Cont: Thunk(Nil{})}},
	}
	for _, g := range good {
		if err := CheckType(e, g); err != nil {
			t.Errorf("CheckType(%s): %v", g, err)
		}
	}
	bad := []Type{
		Var{Name: "unbound"},
		Nil{},  // π-type, not a type
		Proc{}, // π-type
		Par{L: Nil{}, R: Nil{}},
		RecVar{Name: "t"},
	}
	for _, b := range bad {
		if err := CheckType(e, b); err == nil {
			t.Errorf("CheckType(%s) should fail", b)
		}
	}
}

func TestCheckProcTypeBasics(t *testing.T) {
	e := env("x", ChanIO{Elem: Int{}})
	good := []Type{
		Nil{}, Proc{},
		Out{Ch: Var{Name: "x"}, Payload: Int{}, Cont: Thunk(Nil{})},
		In{Ch: Var{Name: "x"}, Cont: Pi{Var: "v", Dom: Int{}, Cod: Nil{}}},
		Par{L: Nil{}, R: Proc{}},
		Union{L: Nil{}, R: Proc{}},
		Rec{Var: "t", Body: Out{Ch: Var{Name: "x"}, Payload: Int{}, Cont: Thunk(RecVar{Name: "t"})}},
	}
	for _, g := range good {
		if err := CheckProcType(e, g); err != nil {
			t.Errorf("CheckProcType(%s): %v", g, err)
		}
	}
	bad := []struct {
		name string
		t    Type
	}{
		{"bool is not a π-type", Bool{}},
		{"output payload too big", Out{Ch: Var{Name: "x"}, Payload: Str{}, Cont: Thunk(Nil{})}},
		{"output on non-channel", Out{Ch: Bool{}, Payload: Int{}, Cont: Thunk(Nil{})}},
		{"input domain too small", In{Ch: Var{Name: "x"}, Cont: Pi{Var: "v", Dom: Bottom{}, Cod: Nil{}}}},
		{"parallel of non-processes", Par{L: Bool{}, R: Nil{}}},
	}
	for _, b := range bad {
		if err := CheckProcType(e, b.t); err == nil {
			t.Errorf("%s: CheckProcType(%s) should fail", b.name, b.t)
		}
	}
}

func TestClassifyType(t *testing.T) {
	e := env("x", ChanIO{Elem: Int{}})
	if k := ClassifyType(e, Bool{}); k != KindType {
		t.Errorf("Bool classified as %s", k)
	}
	if k := ClassifyType(e, Nil{}); k != KindProc {
		t.Errorf("Nil classified as %s", k)
	}
	if k := ClassifyType(e, Var{Name: "zzz"}); k != KindNone {
		t.Errorf("unbound var classified as %s", k)
	}
}

func TestContractivity(t *testing.T) {
	// µt.t and µt.(t ∨ U) are rejected ([T-µ] side conditions).
	bad := []Type{
		Rec{Var: "t", Body: RecVar{Name: "t"}},
		Rec{Var: "t", Body: Union{L: RecVar{Name: "t"}, R: Nil{}}},
		Rec{Var: "t", Body: Rec{Var: "u", Body: RecVar{Name: "t"}}},
	}
	e := NewEnv()
	for _, b := range bad {
		if err := CheckProcType(e, b); err == nil {
			t.Errorf("non-contractive %s must be rejected", b)
		}
	}
}

func TestNegativeRecursionRejected(t *testing.T) {
	// µt.co[t]: t in contravariant position.
	b := Rec{Var: "t", Body: ChanO{Elem: RecVar{Name: "t"}}}
	if err := CheckType(NewEnv(), b); err == nil {
		t.Error("recursion variable in negative position must be rejected")
	}
	// µt.ci[t] is fine (covariant).
	g := Rec{Var: "t", Body: ChanI{Elem: RecVar{Name: "t"}}}
	if err := CheckType(NewEnv(), g); err != nil {
		t.Errorf("covariant recursion rejected: %v", err)
	}
}

func TestGuardedness(t *testing.T) {
	e := env("x", ChanIO{Elem: Int{}})
	_ = e
	guarded := Rec{Var: "t", Body: In{Ch: Var{Name: "x"},
		Cont: Pi{Var: "v", Dom: Int{}, Cod: RecVar{Name: "t"}}}}
	if err := CheckGuarded(guarded); err != nil {
		t.Errorf("guarded type rejected: %v", err)
	}
	unguarded := Rec{Var: "t", Body: Par{L: RecVar{Name: "t"}, R: Nil{}}}
	if err := CheckGuarded(unguarded); err == nil {
		t.Error("recursion under parallel without i/o guard must be rejected (Lemma 4.7)")
	}
	unguardedUnion := Rec{Var: "t", Body: Union{L: RecVar{Name: "t"}, R: Nil{}}}
	if err := CheckGuarded(unguardedUnion); err == nil {
		t.Error("recursion exposed through a union must be rejected")
	}
}

func TestFiniteControl(t *testing.T) {
	e := env("x", ChanIO{Elem: Int{}})
	_ = e
	ok := Par{
		L: Rec{Var: "t", Body: Out{Ch: Var{Name: "x"}, Payload: Int{}, Cont: Thunk(RecVar{Name: "t"})}},
		R: Nil{},
	}
	if err := CheckFiniteControl(ok); err != nil {
		t.Errorf("parallel of recursive components rejected: %v", err)
	}
	bad := Rec{Var: "t", Body: Out{Ch: Var{Name: "x"}, Payload: Int{},
		Cont: Thunk(Par{L: RecVar{Name: "t"}, R: RecVar{Name: "t"}})}}
	if err := CheckFiniteControl(bad); err == nil {
		t.Error("parallel under recursion must be rejected (§5.1 limitation 2)")
	}
}

func TestCheckEnv(t *testing.T) {
	good := env("x", ChanIO{Elem: Int{}}, "y", Pi{Var: "v", Dom: Int{}, Cod: Bool{}})
	if err := CheckEnv(good); err != nil {
		t.Errorf("CheckEnv: %v", err)
	}
	// Environments may not bind π-types ([Γ-x]).
	bad := env("p", Nil{})
	if err := CheckEnv(bad); err == nil {
		t.Error("an environment binding a π-type must be rejected")
	}
}

func TestEnvOperations(t *testing.T) {
	e := NewEnv()
	e2, err := e.Extend("x", Int{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Has("x") {
		t.Error("Extend must not mutate the receiver")
	}
	if _, err := e2.Extend("x", Bool{}); err == nil {
		t.Error("duplicate binding must be rejected")
	}
	e3, name := e2.ExtendFresh("x", Bool{})
	if name == "x" {
		t.Error("ExtendFresh must rename on collision")
	}
	if !e3.Has(name) {
		t.Error("fresh name not bound")
	}
	if got := e2.Key(); got != env("x", Int{}).Key() {
		t.Errorf("Key mismatch: %q", got)
	}
}
