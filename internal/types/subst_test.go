package types

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSubstBasics(t *testing.T) {
	x := Var{Name: "x"}
	// T{S/x} replaces free occurrences only.
	got := Subst(Out{Ch: x, Payload: x, Cont: Thunk(Nil{})}, "x", ChanIO{Elem: Int{}})
	want := Out{Ch: ChanIO{Elem: Int{}}, Payload: ChanIO{Elem: Int{}}, Cont: Thunk(Nil{})}
	if !Equal(got, want) {
		t.Errorf("Subst = %s, want %s", got, want)
	}
	// Bound occurrences are untouched.
	pi := Pi{Var: "x", Dom: Int{}, Cod: x}
	if got := Subst(pi, "x", Bool{}); !Equal(got, pi) {
		t.Errorf("bound variable substituted: %s", got)
	}
	// Thunks have no binder: substitution goes through.
	th := Thunk(Out{Ch: x, Payload: Int{}, Cont: Thunk(Nil{})})
	got = Subst(th, "x", ChanO{Elem: Int{}})
	if FreeVars(got)["x"] {
		t.Errorf("x survived substitution under a thunk: %s", got)
	}
}

func TestSubstCaptureAvoidance(t *testing.T) {
	// (Π(y:int) x̱){y̱/x}: the free y in the substitute must not be
	// captured by the binder.
	pi := Pi{Var: "y", Dom: Int{}, Cod: Var{Name: "x"}}
	got := Subst(pi, "x", Var{Name: "y"}).(Pi)
	if got.Var == "y" {
		t.Fatalf("binder not renamed: %s", got)
	}
	cod, ok := got.Cod.(Var)
	if !ok || cod.Name != "y" {
		t.Errorf("substituted variable wrong: %s", got)
	}
}

func TestUnfoldEquivalence(t *testing.T) {
	rec := Rec{Var: "t", Body: In{Ch: Var{Name: "x"},
		Cont: Pi{Var: "v", Dom: Int{}, Cod: RecVar{Name: "t"}}}}
	u := Unfold(rec)
	in, ok := u.(In)
	if !ok {
		t.Fatalf("Unfold produced %T", u)
	}
	cod := in.Cont.(Pi).Cod
	if !Equal(cod, rec) {
		t.Errorf("unfolding must substitute the µ-type for t, got %s", cod)
	}
	// Unfold of a non-µ type is the identity.
	if !Equal(Unfold(Bool{}), Bool{}) {
		t.Error("Unfold must be identity on non-recursive types")
	}
}

func TestApply(t *testing.T) {
	pi := Pi{Var: "c", Dom: ChanIO{Elem: Int{}},
		Cod: Out{Ch: Var{Name: "c"}, Payload: Int{}, Cont: Thunk(Nil{})}}
	got, ok := Apply(pi, Var{Name: "z"})
	if !ok {
		t.Fatal("Apply failed")
	}
	want := Out{Ch: Var{Name: "z"}, Payload: Int{}, Cont: Thunk(Nil{})}
	if !Equal(got, want) {
		t.Errorf("Apply = %s, want %s", got, want)
	}
	if _, ok := Apply(Bool{}, Int{}); ok {
		t.Error("Apply of non-function must fail")
	}
}

func TestFreshNameUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		n := FreshName("x")
		if seen[n] {
			t.Fatalf("FreshName repeated %q", n)
		}
		seen[n] = true
	}
}

// --- property-based tests (testing/quick over a structured generator) --------

// genClosedishType generates types whose free variables come from a small
// fixed pool.
func genClosedishType(r *rand.Rand, depth int) Type {
	pool := []string{"x", "y", "z"}
	if depth <= 0 {
		switch r.Intn(5) {
		case 0:
			return Bool{}
		case 1:
			return Int{}
		case 2:
			return Unit{}
		case 3:
			return Nil{}
		default:
			return Var{Name: pool[r.Intn(len(pool))]}
		}
	}
	switch r.Intn(7) {
	case 0:
		return Union{L: genClosedishType(r, depth-1), R: genClosedishType(r, depth-1)}
	case 1:
		return Pi{Var: pool[r.Intn(len(pool))], Dom: genClosedishType(r, depth-1), Cod: genClosedishType(r, depth-1)}
	case 2:
		return ChanIO{Elem: genClosedishType(r, depth-1)}
	case 3:
		return Out{Ch: genClosedishType(r, depth-1), Payload: genClosedishType(r, depth-1), Cont: Thunk(genClosedishType(r, depth-1))}
	case 4:
		return In{Ch: genClosedishType(r, depth-1), Cont: Pi{Var: "v", Dom: genClosedishType(r, depth-1), Cod: genClosedishType(r, depth-1)}}
	case 5:
		return Par{L: genClosedishType(r, depth-1), R: genClosedishType(r, depth-1)}
	default:
		return ChanO{Elem: genClosedishType(r, depth-1)}
	}
}

// TestPropSubstIdentity: T{x̱/x} = T.
func TestPropSubstIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		ty := genClosedishType(r, 4)
		got := Subst(ty, "x", Var{Name: "x"})
		if Canon(got) != Canon(ty) {
			t.Fatalf("T{x/x} ≠ T:\n  T    %s\n  got  %s", ty, got)
		}
	}
}

// TestPropSubstRemovesFreeVar: x ∉ fv(T{S/x}) when x ∉ fv(S).
func TestPropSubstRemovesFreeVar(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 500; i++ {
		ty := genClosedishType(r, 4)
		got := Subst(ty, "x", Int{})
		if FreeVars(got)["x"] {
			t.Fatalf("x survived substitution:\n  T   %s\n  got %s", ty, got)
		}
	}
}

// TestPropSubtypeReflexive: every generated type is a subtype of itself.
func TestPropSubtypeReflexive(t *testing.T) {
	e := env("x", ChanIO{Elem: Int{}}, "y", ChanIO{Elem: Int{}}, "z", ChanIO{Elem: Bool{}})
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		ty := genClosedishType(r, 4)
		if !Subtype(e, ty, ty) {
			t.Fatalf("reflexivity failed for %s", ty)
		}
	}
}

// TestPropSubtypeTopBottom: ⊥ ⩽ T ⩽ ⊤ for non-process types; π-types are
// below proc.
func TestPropSubtypeTopBottom(t *testing.T) {
	e := env("x", ChanIO{Elem: Int{}}, "y", ChanIO{Elem: Int{}}, "z", ChanIO{Elem: Bool{}})
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 300; i++ {
		ty := genClosedishType(r, 3)
		if !Subtype(e, Bottom{}, ty) {
			t.Fatalf("⊥ ⩽ %s failed", ty)
		}
	}
}

// TestPropUnionUpperBound: T ⩽ T∨U and U ⩽ T∨U.
func TestPropUnionUpperBound(t *testing.T) {
	e := env("x", ChanIO{Elem: Int{}}, "y", ChanIO{Elem: Int{}}, "z", ChanIO{Elem: Bool{}})
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		a := genClosedishType(r, 3)
		b := genClosedishType(r, 3)
		u := Union{L: a, R: b}
		if !Subtype(e, a, u) || !Subtype(e, b, u) {
			t.Fatalf("union upper bound failed for %s ∨ %s", a, b)
		}
	}
}

// TestPropCanonSound: Canon equality implies mutual subtyping.
func TestPropCanonSound(t *testing.T) {
	e := env("x", ChanIO{Elem: Int{}}, "y", ChanIO{Elem: Int{}}, "z", ChanIO{Elem: Bool{}})
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		a := genClosedishType(r, 3)
		// A shuffled parallel/union arrangement of a with itself.
		b := Par{L: Par{L: a, R: Nil{}}, R: Nil{}}
		if _, isProc := a.(Par); true {
			_ = isProc
		}
		if CheckProcType(e, a) == nil {
			if Canon(b) != Canon(Par{L: Nil{}, R: a}) {
				t.Fatalf("canon AC failure for %s", a)
			}
			if !Subtype(e, b, a) || !Subtype(e, a, b) {
				t.Fatalf("p[p[T,nil],nil] ≢ T for %s", a)
			}
		}
	}
}

// TestPropRingBufferFIFO uses quick.Check on the Env key determinism:
// permuted insertion orders give the same Key.
func TestPropEnvKeyOrderInsensitive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		names := []string{"a", "b", "c", "d"}
		perm := r.Perm(len(names))
		e1 := NewEnv()
		for _, n := range names {
			e1 = e1.MustExtend(n, Int{})
		}
		e2 := NewEnv()
		for _, i := range perm {
			e2 = e2.MustExtend(names[i], Int{})
		}
		return e1.Key() == e2.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
