package types_test

// External test package: the fixtures come from package systems, which
// imports types, so the tests live outside the package to avoid a cycle.

import (
	"sync"
	"testing"

	"effpi/internal/systems"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// fixtureTypes collects a corpus of types exercising every constructor:
// the Fig. 9 benchmark compositions, their parallel components, and a
// bounded crawl of their transition successors (which is exactly the
// population the exploration hot path interns).
func fixtureTypes() []types.Type {
	var all []types.Type
	add := func(t types.Type) {
		all = append(all, t)
		all = append(all, types.FlattenPar(t)...)
	}
	for _, s := range []*systems.System{
		systems.PaymentAudit(2),
		systems.DiningPhilosophers(3, true),
		systems.DiningPhilosophers(3, false),
		systems.PingPongPairs(2, true),
		systems.Ring(4, 1),
	} {
		add(s.Type)
		sem := &typelts.Semantics{Env: s.Env, Observable: map[string]bool{}, WitnessOnly: true}
		frontier := []types.Type{s.Type}
		for depth := 0; depth < 3 && len(all) < 400; depth++ {
			var next []types.Type
			for _, t := range frontier {
				for _, st := range sem.Transitions(t) {
					add(st.Next)
					next = append(next, st.Next)
				}
			}
			frontier = next
		}
	}
	// A few hand-picked shapes the crawl may miss: unions, nested pars,
	// duplicate union branches, thunks, base types.
	x := types.Var{Name: "x"}
	add(types.Union{L: types.Bool{}, R: types.Int{}})
	add(types.Union{L: types.Int{}, R: types.Bool{}})
	add(types.Union{L: types.Bool{}, R: types.Bool{}})
	add(types.Bool{})
	add(types.Par{L: types.Nil{}, R: types.Par{L: types.Nil{}, R: types.Nil{}}})
	add(types.Nil{})
	add(types.Pi{Var: "a", Dom: types.Int{}, Cod: types.Var{Name: "a"}})
	add(types.Pi{Var: "b", Dom: types.Int{}, Cod: types.Var{Name: "b"}})
	add(types.Pi{Var: "a", Dom: types.Int{}, Cod: x})
	add(types.Thunk(types.Nil{}))
	add(types.Rec{Var: "t", Body: types.Out{Ch: x, Payload: types.Int{}, Cont: types.Thunk(types.RecVar{Name: "t"})}})
	add(types.Rec{Var: "u", Body: types.Out{Ch: x, Payload: types.Int{}, Cont: types.Thunk(types.RecVar{Name: "u"})}})
	add(types.ChanIO{Elem: types.Top{}})
	add(types.ChanI{Elem: types.Bottom{}})
	add(types.ChanO{Elem: types.Str{}})
	add(types.Proc{})
	return all
}

// TestInternMatchesCanon is the soundness/completeness property of the
// interner: Intern(t) == Intern(u) iff Canon(t) == Canon(u), across all
// pairs of the fixture corpus.
func TestInternMatchesCanon(t *testing.T) {
	fixtures := fixtureTypes()
	if len(fixtures) < 100 {
		t.Fatalf("fixture corpus too small (%d): the crawl broke", len(fixtures))
	}
	in := types.NewInterner()
	ids := make([]types.ID, len(fixtures))
	canons := make([]string, len(fixtures))
	for i, f := range fixtures {
		ids[i] = in.Intern(f)
		canons[i] = types.Canon(f)
	}
	for i := range fixtures {
		for j := i + 1; j < len(fixtures); j++ {
			sameID := ids[i] == ids[j]
			sameCanon := canons[i] == canons[j]
			if sameID != sameCanon {
				t.Fatalf("Intern/Canon disagree:\n  %s (id %d, canon %q)\n  %s (id %d, canon %q)",
					fixtures[i], ids[i], canons[i], fixtures[j], ids[j], canons[j])
			}
		}
	}
	// Interning is stable: a second pass yields the same IDs.
	for i, f := range fixtures {
		if got := in.Intern(f); got != ids[i] {
			t.Fatalf("Intern(%s) unstable: %d then %d", f, ids[i], got)
		}
	}
}

// TestInternParMatchesIntern: building a state ID from interned
// components (the Explore fast path) agrees with interning the composed
// type tree.
func TestInternParMatchesIntern(t *testing.T) {
	in := types.NewInterner()
	for _, f := range fixtureTypes() {
		leaves := types.FlattenPar(f)
		ids := make([]types.ID, len(leaves))
		for i, l := range leaves {
			ids[i] = in.Intern(l)
		}
		if got, want := in.InternPar(ids), in.Intern(f); got != want {
			t.Fatalf("InternPar(%s) = %d, Intern = %d", f, got, want)
		}
	}
}

// TestInternParRepresentative: representatives of InternPar-minted IDs
// are ≡ to the composition they stand for.
func TestInternParRepresentative(t *testing.T) {
	in := types.NewInterner()
	x := types.Var{Name: "x"}
	a := types.Out{Ch: x, Payload: types.Int{}, Cont: types.Thunk(types.Nil{})}
	b := types.In{Ch: x, Cont: types.Pi{Var: "v", Dom: types.Int{}, Cod: types.Nil{}}}
	ids := []types.ID{in.Intern(a), in.Intern(b)}
	id := in.InternPar(ids)
	rep := in.TypeOf(id)
	if !types.Equal(rep, types.Par{L: a, R: b}) {
		t.Fatalf("representative %s is not ≡ to the composition", rep)
	}
}

// TestInternerMemoisedRewrites: the memoised Unfold/Subst agree with the
// plain rewrites up to ≡.
func TestInternerMemoisedRewrites(t *testing.T) {
	in := types.NewInterner()
	x := types.Var{Name: "x"}
	rec := types.Rec{Var: "t", Body: types.In{Ch: x,
		Cont: types.Pi{Var: "y", Dom: types.Int{},
			Cod: types.Out{Ch: x, Payload: types.Var{Name: "y"}, Cont: types.Thunk(types.RecVar{Name: "t"})}}}}
	for i := 0; i < 2; i++ { // second round hits the memo
		if !types.Equal(in.Unfold(rec), types.Unfold(rec)) {
			t.Fatal("memoised Unfold diverged from Unfold")
		}
		cod := types.Out{Ch: types.Var{Name: "y"}, Payload: types.Var{Name: "y"}, Cont: types.Thunk(types.Nil{})}
		if !types.Equal(in.Subst(cod, "y", x), types.Subst(cod, "y", x)) {
			t.Fatal("memoised Subst diverged from Subst")
		}
	}
}

// TestConcurrentIntern hammers one interner from many goroutines; run
// under -race it exercises the interner's locking (the CI workflow does).
// Consistency is checked by comparing every goroutine's IDs against a
// sequential reference pass.
func TestConcurrentIntern(t *testing.T) {
	fixtures := fixtureTypes()
	in := types.NewInterner()
	ref := make([]types.ID, len(fixtures))
	for i, f := range fixtures {
		ref[i] = in.Intern(f)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for i := range fixtures {
					// Stagger start points so goroutines collide on
					// different entries.
					i = (i + w*len(fixtures)/workers) % len(fixtures)
					if got := in.Intern(fixtures[i]); got != ref[i] {
						select {
						case errs <- fixtures[i].String():
						default:
						}
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if bad, ok := <-errs; ok {
		t.Fatalf("concurrent Intern diverged from sequential IDs on %s", bad)
	}
}
