package types

import "fmt"

// This file implements the well-formedness judgements of Fig. 4:
//
//	⊢ Γ env          the environment is valid
//	Γ ⊢ T type       T is a valid (functional) type
//	Γ ⊢ T π-type     T is a valid process type
//
// plus the two side conditions used by the verification pipeline:
// guardedness (Lemma 4.7) and finite control (the implementation's known
// limitation 2: no parallel composition under recursion).

// Kind distinguishes the two well-formedness judgements.
type Kind int

const (
	// KindNone means the type is not well-formed.
	KindNone Kind = iota
	// KindType means Γ ⊢ T type.
	KindType
	// KindProc means Γ ⊢ T π-type.
	KindProc
)

func (k Kind) String() string {
	switch k {
	case KindType:
		return "type"
	case KindProc:
		return "π-type"
	default:
		return "ill-formed"
	}
}

// CheckEnv verifies ⊢ Γ env: every bound type must be a valid type (not a
// π-type; rule [Γ-x] only admits Γ ⊢ T type).
func CheckEnv(env *Env) error {
	for _, name := range env.Names() {
		t, _ := env.Lookup(name)
		if err := CheckType(env, t); err != nil {
			return fmt.Errorf("environment entry %s: %w", name, err)
		}
	}
	return nil
}

// CheckType verifies Γ ⊢ T type.
func CheckType(env *Env, t Type) error {
	w := &wfChecker{env: env}
	return w.check(t, KindType, map[string]Kind{})
}

// CheckProcType verifies Γ ⊢ T π-type.
func CheckProcType(env *Env, t Type) error {
	w := &wfChecker{env: env}
	return w.check(t, KindProc, map[string]Kind{})
}

// ClassifyType returns which of the two judgements (if any) t satisfies
// in Γ: Γ ⊢ T type, Γ ⊢ T π-type, or neither.
func ClassifyType(env *Env, t Type) Kind {
	if CheckProcType(env, t) == nil {
		return KindProc
	}
	if CheckType(env, t) == nil {
		return KindType
	}
	return KindNone
}

type wfChecker struct {
	env *Env
}

// check verifies the judgement of the requested kind. recVars maps in-scope
// recursion variables to the kind of judgement under which they were bound
// ([T-µ] vs [π-µ]).
func (w *wfChecker) check(t Type, kind Kind, recVars map[string]Kind) error {
	switch t := t.(type) {
	case Bool, Unit, Int, Str, Top, Bottom:
		if kind != KindType {
			return fmt.Errorf("%s is a type, not a π-type", t)
		}
		return nil
	case Proc, Nil:
		if kind != KindProc {
			return fmt.Errorf("%s is a π-type, not a type", t)
		}
		return nil
	case Var:
		if kind != KindType {
			return fmt.Errorf("variable type %s cannot be a π-type", t.Name)
		}
		if !w.env.Has(t.Name) {
			return fmt.Errorf("type variable %s not bound in environment", t.Name)
		}
		return nil
	case RecVar:
		bk, ok := recVars[t.Name]
		if !ok {
			return fmt.Errorf("unbound recursion variable %s", t.Name)
		}
		if bk != kind {
			return fmt.Errorf("recursion variable %s bound as %s but used as %s", t.Name, bk, kind)
		}
		return nil
	case Union:
		if err := w.check(t.L, kind, recVars); err != nil {
			return err
		}
		return w.check(t.R, kind, recVars)
	case Pi:
		// [T-Π] and [Tπ-Π]: the domain is a type; the codomain may be a
		// type or a π-type, and either way the whole Π is a *type*.
		if kind != KindType {
			return fmt.Errorf("function type %s is a type, not a π-type", t)
		}
		if err := w.check(t.Dom, KindType, recVars); err != nil {
			return fmt.Errorf("in domain of %s: %w", t, err)
		}
		env := w.env
		cod := t.Cod
		if t.Var != "" {
			var bound string
			env, bound = w.env.ExtendFresh(t.Var, t.Dom)
			if bound != t.Var {
				// α-rename to respect the Barendregt convention.
				cod = Subst(cod, t.Var, Var{Name: bound})
			}
		}
		inner := &wfChecker{env: env}
		if err := inner.check(cod, KindType, recVars); err == nil {
			return nil
		}
		if err := inner.check(cod, KindProc, recVars); err != nil {
			return fmt.Errorf("in codomain of Π: %w", err)
		}
		return nil
	case Rec:
		// [T-µ] / [π-µ]: contractive, and the variable must not occur in
		// negative position.
		if err := checkContractive(t); err != nil {
			return err
		}
		if occursNegative(t.Body, t.Var, false) {
			return fmt.Errorf("recursion variable %s occurs in negative position in %s", t.Var, t)
		}
		inner := copyKindMap(recVars)
		inner[t.Var] = kind
		return w.check(t.Body, kind, inner)
	case ChanIO:
		return w.checkChan(t.Elem, kind, recVars)
	case ChanI:
		return w.checkChan(t.Elem, kind, recVars)
	case ChanO:
		return w.checkChan(t.Elem, kind, recVars)
	case Out:
		if kind != KindProc {
			return fmt.Errorf("output type %s is a π-type, not a type", t)
		}
		return w.checkOut(t, recVars)
	case In:
		if kind != KindProc {
			return fmt.Errorf("input type %s is a π-type, not a type", t)
		}
		return w.checkIn(t, recVars)
	case Par:
		if kind != KindProc {
			return fmt.Errorf("parallel type %s is a π-type, not a type", t)
		}
		if err := w.check(t.L, KindProc, recVars); err != nil {
			return err
		}
		return w.check(t.R, KindProc, recVars)
	default:
		return fmt.Errorf("unknown type %T", t)
	}
}

func (w *wfChecker) checkChan(elem Type, kind Kind, recVars map[string]Kind) error {
	if kind != KindType {
		return fmt.Errorf("channel type is a type, not a π-type")
	}
	// [T-c]: the payload must itself be a valid type.
	return w.check(elem, KindType, recVars)
}

// checkOut implements [π-o]: Γ ⊢ S ⩽ co[To], Γ ⊢ T ⩽ To, Γ ⊢ U π-type,
// where the continuation is the thunk Π()U.
func (w *wfChecker) checkOut(t Out, recVars map[string]Kind) error {
	cap, ok := ResolveChan(w.env, t.Ch)
	if !ok {
		if !containsRecVar(t.Ch, recVars) {
			return fmt.Errorf("output channel position %s does not resolve to a channel type", t.Ch)
		}
	} else {
		if !cap.Out {
			return fmt.Errorf("channel type %s does not permit output", t.Ch)
		}
		if err := w.check(t.Payload, KindType, recVars); err != nil {
			// Payload may also be a recursion-variable placeholder in
			// open recursive bodies; tolerate and defer to closed check.
			if !containsRecVar(t.Payload, recVars) {
				return fmt.Errorf("in payload of %s: %w", t, err)
			}
		} else if !Subtype(w.env, t.Payload, cap.Payload) {
			return fmt.Errorf("payload %s is not a subtype of channel payload %s", t.Payload, cap.Payload)
		}
	}
	cont, ok := t.Cont.(Pi)
	if !ok || cont.Var != "" {
		if containsRecVar(t.Cont, recVars) {
			return nil
		}
		return fmt.Errorf("output continuation %s must be a thunk type ()->U", t.Cont)
	}
	return w.check(cont.Cod, KindProc, recVars)
}

// checkIn implements [π-i]: Γ ⊢ S ⩽ ci[Ti], Γ ⊢ Ti ⩽ T, and
// Γ, x:T ⊢ U π-type for continuation Π(x:T)U.
func (w *wfChecker) checkIn(t In, recVars map[string]Kind) error {
	cont, ok := t.Cont.(Pi)
	if !ok {
		return fmt.Errorf("input continuation %s must be a dependent function type", t.Cont)
	}
	cap, ok := ResolveChan(w.env, t.Ch)
	if ok {
		if !cap.In {
			return fmt.Errorf("channel type %s does not permit input", t.Ch)
		}
		if !Subtype(w.env, cap.Payload, cont.Dom) {
			return fmt.Errorf("channel payload %s is not a subtype of continuation domain %s", cap.Payload, cont.Dom)
		}
	} else if !containsRecVar(t.Ch, recVars) {
		return fmt.Errorf("input channel position %s does not resolve to a channel type", t.Ch)
	}
	env := w.env
	cod := cont.Cod
	if cont.Var != "" {
		var bound string
		env, bound = w.env.ExtendFresh(cont.Var, cont.Dom)
		if bound != cont.Var {
			cod = Subst(cod, cont.Var, Var{Name: bound})
		}
	}
	inner := &wfChecker{env: env}
	return inner.check(cod, KindProc, recVars)
}

// checkContractive rejects µt.µt'...(t ∨ U) per the side condition of
// [T-µ]: the body must not be (equivalent to) a bare recursion variable
// or a union exposing one.
func checkContractive(r Rec) error {
	body := r.Body
	for {
		switch b := body.(type) {
		case RecVar:
			return fmt.Errorf("non-contractive recursive type %s", r)
		case Rec:
			body = b.Body
		case Union:
			for _, leaf := range FlattenUnion(b) {
				if _, ok := leaf.(RecVar); ok {
					return fmt.Errorf("non-contractive recursive type %s: recursion variable exposed in union", r)
				}
			}
			return nil
		default:
			return nil
		}
	}
}

// occursNegative reports whether recursion variable name occurs at
// negative polarity in t (the x ∉ fv⁻(T) condition of [T-µ]/[π-µ]).
// Output-channel payloads are contravariant; cio payloads and Π domains
// are invariant (counted as both polarities).
func occursNegative(t Type, name string, neg bool) bool {
	switch t := t.(type) {
	case RecVar:
		return neg && t.Name == name
	case Union:
		return occursNegative(t.L, name, neg) || occursNegative(t.R, name, neg)
	case Pi:
		return occursBoth(t.Dom, name) || occursNegative(t.Cod, name, neg)
	case Rec:
		if t.Var == name {
			return false
		}
		return occursNegative(t.Body, name, neg)
	case ChanIO:
		return occursBoth(t.Elem, name)
	case ChanI:
		return occursNegative(t.Elem, name, neg)
	case ChanO:
		return occursNegative(t.Elem, name, !neg)
	case Out:
		return occursNegative(t.Ch, name, neg) || occursNegative(t.Payload, name, neg) || occursNegative(t.Cont, name, neg)
	case In:
		return occursNegative(t.Ch, name, neg) || occursNegative(t.Cont, name, neg)
	case Par:
		return occursNegative(t.L, name, neg) || occursNegative(t.R, name, neg)
	default:
		return false
	}
}

func occursBoth(t Type, name string) bool {
	return occursNegative(t, name, false) || occursNegative(t, name, true)
}

func containsRecVar(t Type, recVars map[string]Kind) bool {
	for name := range FreeRecVars(t) {
		if _, ok := recVars[name]; ok {
			return true
		}
	}
	return false
}

func copyKindMap(m map[string]Kind) map[string]Kind {
	c := make(map[string]Kind, len(m)+1)
	for k, v := range m {
		c[k] = v
	}
	return c
}

// CheckGuarded verifies the guardedness condition of Lemma 4.7: for every
// π-type subterm µt.U of t, the variable t may occur in U only under an
// input or output constructor. Guarded types have decidable µ-calculus
// model checking.
func CheckGuarded(t Type) error {
	return checkGuarded(t, map[string]bool{})
}

// checkGuarded walks t; unguarded maps recursion variables to true when
// they have not yet been crossed by an i[...]/o[...] constructor.
func checkGuarded(t Type, unguarded map[string]bool) error {
	switch t := t.(type) {
	case RecVar:
		if unguarded[t.Name] {
			return fmt.Errorf("recursion variable %s occurs unguarded (not under i[...] or o[...])", t.Name)
		}
		return nil
	case Rec:
		inner := copySet(unguarded)
		inner[t.Var] = true
		return checkGuarded(t.Body, inner)
	case Union:
		if err := checkGuarded(t.L, unguarded); err != nil {
			return err
		}
		return checkGuarded(t.R, unguarded)
	case Par:
		if err := checkGuarded(t.L, unguarded); err != nil {
			return err
		}
		return checkGuarded(t.R, unguarded)
	case Out:
		// The continuation (and channel/payload) are guarded by the output.
		return checkGuardedAll(unguardAll(unguarded), t.Ch, t.Payload, t.Cont)
	case In:
		return checkGuardedAll(unguardAll(unguarded), t.Ch, t.Cont)
	case Pi:
		if err := checkGuarded(t.Dom, unguarded); err != nil {
			return err
		}
		return checkGuarded(t.Cod, unguarded)
	case ChanIO:
		return checkGuarded(t.Elem, unguarded)
	case ChanI:
		return checkGuarded(t.Elem, unguarded)
	case ChanO:
		return checkGuarded(t.Elem, unguarded)
	default:
		return nil
	}
}

func checkGuardedAll(unguarded map[string]bool, ts ...Type) error {
	for _, t := range ts {
		if err := checkGuarded(t, unguarded); err != nil {
			return err
		}
	}
	return nil
}

func unguardAll(unguarded map[string]bool) map[string]bool {
	c := make(map[string]bool, len(unguarded))
	for k := range unguarded {
		c[k] = false
	}
	return c
}

// CheckFiniteControl enforces the implementation restriction of §5.1
// (known limitation 2): no parallel composition p[...] under a recursion
// binder µ. Types violating it may have unbounded parallel components and
// an infinite state space.
func CheckFiniteControl(t Type) error {
	return checkFiniteControl(t, false)
}

func checkFiniteControl(t Type, underRec bool) error {
	switch t := t.(type) {
	case Par:
		if underRec {
			return fmt.Errorf("parallel composition under recursion is not supported by the verifier (paper §5.1, limitation 2)")
		}
		if err := checkFiniteControl(t.L, underRec); err != nil {
			return err
		}
		return checkFiniteControl(t.R, underRec)
	case Rec:
		return checkFiniteControl(t.Body, true)
	case Union:
		if err := checkFiniteControl(t.L, underRec); err != nil {
			return err
		}
		return checkFiniteControl(t.R, underRec)
	case Out:
		if err := checkFiniteControl(t.Payload, underRec); err != nil {
			return err
		}
		return checkFiniteControl(t.Cont, underRec)
	case In:
		return checkFiniteControl(t.Cont, underRec)
	case Pi:
		if err := checkFiniteControl(t.Dom, underRec); err != nil {
			return err
		}
		return checkFiniteControl(t.Cod, underRec)
	case ChanIO:
		return checkFiniteControl(t.Elem, underRec)
	case ChanI:
		return checkFiniteControl(t.Elem, underRec)
	case ChanO:
		return checkFiniteControl(t.Elem, underRec)
	default:
		return nil
	}
}
