package types

import (
	"fmt"
	"sort"
	"strings"
)

// Env is a typing environment Γ: a finite map from term variables to
// types (Def. 3.2). Entry order is immaterial for the judgements; Env
// additionally remembers insertion order for readable error messages and
// deterministic iteration.
type Env struct {
	names []string
	table map[string]Type
}

// NewEnv returns an empty typing environment.
func NewEnv() *Env {
	return &Env{table: make(map[string]Type)}
}

// EnvOf builds an environment from alternating name/type pairs, in order.
// It panics on duplicate names, mirroring rule [Γ-x]'s side condition
// x ∉ dom(Γ).
func EnvOf(bindings ...any) *Env {
	if len(bindings)%2 != 0 {
		panic("types.EnvOf: odd number of arguments")
	}
	e := NewEnv()
	for i := 0; i < len(bindings); i += 2 {
		name, ok := bindings[i].(string)
		if !ok {
			panic(fmt.Sprintf("types.EnvOf: argument %d is not a string", i))
		}
		t, ok := bindings[i+1].(Type)
		if !ok {
			panic(fmt.Sprintf("types.EnvOf: argument %d is not a Type", i+1))
		}
		var err error
		e, err = e.Extend(name, t)
		if err != nil {
			panic(err)
		}
	}
	return e
}

// Lookup returns the type bound to name, if any.
func (e *Env) Lookup(name string) (Type, bool) {
	if e == nil {
		return nil, false
	}
	t, ok := e.table[name]
	return t, ok
}

// Has reports whether name ∈ dom(Γ).
func (e *Env) Has(name string) bool {
	_, ok := e.Lookup(name)
	return ok
}

// Extend returns a new environment Γ, x:T. The receiver is not modified.
// It fails if x ∈ dom(Γ) (rule [Γ-x]).
func (e *Env) Extend(name string, t Type) (*Env, error) {
	if name == "" {
		return nil, fmt.Errorf("types: cannot bind empty variable name")
	}
	if e.Has(name) {
		return nil, fmt.Errorf("types: variable %q already bound in environment", name)
	}
	ne := &Env{
		names: make([]string, len(e.names), len(e.names)+1),
		table: make(map[string]Type, len(e.table)+1),
	}
	copy(ne.names, e.names)
	for k, v := range e.table {
		ne.table[k] = v
	}
	ne.names = append(ne.names, name)
	ne.table[name] = t
	return ne, nil
}

// MustExtend is Extend for statically-known-fresh names; it panics on error.
func (e *Env) MustExtend(name string, t Type) *Env {
	ne, err := e.Extend(name, t)
	if err != nil {
		panic(err)
	}
	return ne
}

// ExtendFresh binds name if fresh, or an α-renamed fresh variant
// otherwise, returning the environment and the name actually bound.
func (e *Env) ExtendFresh(name string, t Type) (*Env, string) {
	if name == "" {
		name = "x"
	}
	bound := name
	if e.Has(bound) {
		bound = FreshName(name)
	}
	return e.MustExtend(bound, t), bound
}

// Names returns the bound variable names in insertion order.
func (e *Env) Names() []string {
	if e == nil {
		return nil
	}
	out := make([]string, len(e.names))
	copy(out, e.names)
	return out
}

// Len returns |dom(Γ)|.
func (e *Env) Len() int {
	if e == nil {
		return 0
	}
	return len(e.names)
}

// String renders the environment as "x1: T1, x2: T2, ...".
func (e *Env) String() string {
	if e == nil || len(e.names) == 0 {
		return "∅"
	}
	parts := make([]string, len(e.names))
	for i, n := range e.names {
		parts[i] = fmt.Sprintf("%s: %s", n, e.table[n])
	}
	return strings.Join(parts, ", ")
}

// Key returns a canonical identity string for the environment, used to
// memoise judgements that depend on Γ. Names are sorted because entry
// order is immaterial.
func (e *Env) Key() string {
	if e == nil {
		return ""
	}
	names := make([]string, len(e.names))
	copy(names, e.names)
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		b.WriteString(n)
		b.WriteString(":")
		b.WriteString(Canon(e.table[n]))
		b.WriteString(";")
	}
	return b.String()
}
