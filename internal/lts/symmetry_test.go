package lts

import (
	"fmt"
	"testing"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// pairsFixture builds n independent ping-pong pairs (the Fig. 9
// "Ping-pong" benchmark shape): pair i exchanges on zi/yi, so the pairs
// are fully interchangeable and the bundle classes are maximal. The
// responsive variant passes the reply channel (Ex. 2.2), exercising
// payload-variable renaming in the orbit map.
func pairsFixture(n int, responsive bool) (*typelts.Semantics, types.Type) {
	env := types.NewEnv()
	var comps []types.Type
	str := types.Str{}
	for i := 1; i <= n; i++ {
		z := fmt.Sprintf("z%d", i)
		y := fmt.Sprintf("y%d", i)
		if responsive {
			env = env.MustExtend(z, types.ChanIO{Elem: types.ChanO{Elem: str}})
			env = env.MustExtend(y, types.ChanIO{Elem: str})
			pinger := types.Out{Ch: tv(z), Payload: tv(y),
				Cont: types.Thunk(types.In{Ch: tv(y), Cont: types.Pi{Var: "r", Dom: str, Cod: types.Nil{}}})}
			ponger := types.In{Ch: tv(z), Cont: types.Pi{Var: "replyTo", Dom: types.ChanO{Elem: str},
				Cod: types.Out{Ch: tv("replyTo"), Payload: str, Cont: types.Thunk(types.Nil{})}}}
			comps = append(comps, pinger, ponger)
		} else {
			env = env.MustExtend(z, types.ChanIO{Elem: str})
			env = env.MustExtend(y, types.ChanIO{Elem: str})
			pinger := types.Out{Ch: tv(z), Payload: str,
				Cont: types.Thunk(types.In{Ch: tv(y), Cont: types.Pi{Var: "r", Dom: str, Cod: types.Nil{}}})}
			ponger := types.In{Ch: tv(z), Cont: types.Pi{Var: "s", Dom: str,
				Cod: types.Out{Ch: tv(y), Payload: str, Cont: types.Thunk(types.Nil{})}}}
			comps = append(comps, pinger, ponger)
		}
	}
	sem := &typelts.Semantics{Env: env, Observable: map[string]bool{}, WitnessOnly: true}
	sem.Cache = typelts.NewCache(env, true)
	return sem, types.ParOf(comps...)
}

func TestDetectSymmetryPingPong(t *testing.T) {
	for _, responsive := range []bool{false, true} {
		sem, t0 := pairsFixture(4, responsive)
		sym := DetectSymmetry(sem.Cache, t0, []string{"z1", "y1"})
		if sym == nil {
			t.Fatalf("responsive=%v: no symmetry detected on 4 interchangeable pairs", responsive)
		}
		// Pair 1 is pinned (its bundle frozen), pairs 2–4 form one class.
		if got := sym.NumBundles(); got != 3 {
			t.Errorf("responsive=%v: bundles = %d, want 3 (pair 1 pinned)", responsive, got)
		}
		if got := sym.NumClasses(); got != 1 {
			t.Errorf("responsive=%v: classes = %d, want 1", responsive, got)
		}
	}
}

func TestDetectSymmetryDegenerate(t *testing.T) {
	// All components share every channel: a single bundle, no class.
	env := types.EnvOf("a", types.ChanIO{Elem: types.Str{}}, "b", types.ChanIO{Elem: types.Str{}})
	cache := typelts.NewCache(env, true)
	shared := types.ParOf(
		types.Out{Ch: tv("a"), Payload: types.Str{}, Cont: types.Thunk(tvIn("b"))},
		types.In{Ch: tv("a"), Cont: types.Pi{Var: "x", Dom: types.Str{}, Cod: types.Out{Ch: tv("b"), Payload: types.Str{}, Cont: types.Thunk(types.Nil{})}}},
	)
	if DetectSymmetry(cache, shared, nil) != nil {
		t.Error("single-bundle system must have no symmetry")
	}

	// Everything pinned: all bundles frozen.
	sem, t0 := pairsFixture(3, false)
	if DetectSymmetry(sem.Cache, t0, []string{"z1", "y1", "z2", "y2", "z3", "y3"}) != nil {
		t.Error("fully pinned system must have no symmetry")
	}

	// A non-witness-only cache must refuse detection outright.
	if DetectSymmetry(typelts.NewCache(sem.Env, false), t0, nil) != nil {
		t.Error("detection must require a witness-only cache")
	}
}

func tvIn(ch string) types.Type {
	return types.In{Ch: tv(ch), Cont: types.Pi{Var: "x", Dom: types.Str{}, Cod: types.Nil{}}}
}

// symFingerprint extends the LTS fingerprint with the symmetry side
// arrays — edge permutations, orbit sizes, root permutation — the
// determinism contract of the symmetric explorer.
func symFingerprint(m *LTS) string {
	out := ltsFingerprint(m)
	if m.Sym == nil {
		return out
	}
	out += fmt.Sprintf("rootPerm=%d orbitSizes=%v\n", m.Sym.RootPerm, m.Sym.OrbitSizes)
	for s := 0; s < m.Len(); s++ {
		for k := range m.Out(s) {
			out += fmt.Sprintf("p %d %d %d\n", s, k, m.EdgePerm(s, k))
		}
	}
	return out
}

// TestSymmetricExploreCollapsesAndCovers is the core soundness check of
// the orbit map: the symmetric exploration visits far fewer states, yet
// its orbit sizes account for exactly the concrete reachable set.
func TestSymmetricExploreCollapsesAndCovers(t *testing.T) {
	for _, responsive := range []bool{false, true} {
		sem, t0 := pairsFixture(4, responsive)
		full, err := Explore(sem, t0, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		sym := DetectSymmetry(sem.Cache, t0, []string{"z1", "y1"})
		if sym == nil {
			t.Fatal("no symmetry detected")
		}
		red, err := Explore(sem, t0, Options{Parallelism: 1, Symmetry: sym})
		if err != nil {
			t.Fatal(err)
		}
		if red.Sym == nil {
			t.Fatal("symmetric exploration did not record SymInfo")
		}
		if red.Len() >= full.Len() {
			t.Errorf("responsive=%v: symmetric exploration has %d states, full has %d — no collapse",
				responsive, red.Len(), full.Len())
		}
		if got, want := red.Covered(), int64(full.Len()); got != want {
			t.Errorf("responsive=%v: covered = %d, want %d (orbit sizes must tile the concrete space)",
				responsive, got, want)
		}
		if full.Covered() != int64(full.Len()) {
			t.Error("plain exploration must cover exactly its own states")
		}
	}
}

// TestSymmetricExploreDeterministic extends the parallel determinism
// contract to symmetric mode: states, labels, CSR arrays, edge
// permutations and orbit sizes are byte-identical at any worker count.
func TestSymmetricExploreDeterministic(t *testing.T) {
	sem, t0 := pairsFixture(4, true)
	sym := DetectSymmetry(sem.Cache, t0, []string{"z1", "y1"})
	if sym == nil {
		t.Fatal("no symmetry detected")
	}
	serial, err := Explore(sem, t0, Options{Parallelism: 1, Symmetry: sym})
	if err != nil {
		t.Fatal(err)
	}
	want := symFingerprint(serial)
	for _, par := range []int{2, 4, 8} {
		for rep := 0; rep < 3; rep++ {
			sem2, t2 := pairsFixture(4, true)
			sym2 := DetectSymmetry(sem2.Cache, t2, []string{"z1", "y1"})
			m, err := Explore(sem2, t2, Options{Parallelism: par, Symmetry: sym2})
			if err != nil {
				t.Fatal(err)
			}
			if got := symFingerprint(m); got != want {
				t.Fatalf("par=%d rep=%d: symmetric fingerprint differs from serial", par, rep)
			}
		}
	}
}

// TestSymmetricExploreHostileInternOrder pre-interns the reachable
// components in adversarial orders before exploring, so interner ID
// values differ wildly between runs — the orbit map (whose canonical
// order is defined by first-encounter ranks of abstract shapes, never
// interner IDs) must still produce the byte-identical LTS.
func TestSymmetricExploreHostileInternOrder(t *testing.T) {
	sem, t0 := pairsFixture(3, true)
	symBase := DetectSymmetry(sem.Cache, t0, []string{"z1", "y1"})
	baseline, err := Explore(sem, t0, Options{Parallelism: 1, Symmetry: symBase})
	if err != nil {
		t.Fatal(err)
	}
	want := symFingerprint(baseline)

	// Gather the concrete component population from a plain exploration.
	semFull, tFull := pairsFixture(3, true)
	full, err := Explore(semFull, tFull, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var comps []types.Type
	seen := map[string]bool{}
	for _, s := range full.States {
		for _, c := range types.FlattenPar(s) {
			key := types.Canon(c)
			if !seen[key] {
				seen[key] = true
				comps = append(comps, c)
			}
		}
	}

	for trial := 0; trial < 3; trial++ {
		sem2, t2 := pairsFixture(3, true)
		in := sem2.Cache.Interner()
		switch trial {
		case 0: // reversed
			for i := len(comps) - 1; i >= 0; i-- {
				in.Intern(comps[i])
			}
		case 1: // rotated
			for i := range comps {
				in.Intern(comps[(i+len(comps)/2)%len(comps)])
			}
		case 2: // interleaved from both ends
			for i, j := 0, len(comps)-1; i <= j; i, j = i+1, j-1 {
				in.Intern(comps[j])
				in.Intern(comps[i])
			}
		}
		for _, par := range []int{1, 4} {
			sym := DetectSymmetry(sem2.Cache, t2, []string{"z1", "y1"})
			m, err := Explore(sem2, t2, Options{Parallelism: par, Symmetry: sym})
			if err != nil {
				t.Fatal(err)
			}
			if got := symFingerprint(m); got != want {
				t.Fatalf("trial %d par %d: symmetric fingerprint differs under hostile intern order", trial, par)
			}
		}
	}
}

// ringFixture builds an n-philosopher dining ring over fork channels
// f0..f(n-1): each fork is offered and retaken on its own channel, each
// philosopher takes its two neighbouring forks in ring order — the
// canonical rotational-symmetry shape (uniform, deadlock-prone
// variant). fixed=true swaps philosopher 0's fork order (the classic
// deadlock fix), which breaks the rotation: the co-mention graph is
// still a cycle, but philosopher 0's shape has no rotated twin.
func ringFixture(n int, fixed bool) (*typelts.Semantics, types.Type) {
	env := types.NewEnv()
	unit := types.Unit{}
	forks := make([]string, n)
	for i := range forks {
		forks[i] = fmt.Sprintf("f%d", i)
		env = env.MustExtend(forks[i], types.ChanIO{Elem: unit})
	}
	rout := func(ch string, cont types.Type) types.Type {
		return types.Out{Ch: tv(ch), Payload: unit, Cont: types.Thunk(cont)}
	}
	rin := func(ch, v string, cont types.Type) types.Type {
		return types.In{Ch: tv(ch), Cont: types.Pi{Var: v, Dom: unit, Cod: cont}}
	}
	var comps []types.Type
	for i := 0; i < n; i++ {
		comps = append(comps, types.Rec{Var: "t",
			Body: rout(forks[i], rin(forks[i], "u", types.RecVar{Name: "t"}))})
	}
	for i := 0; i < n; i++ {
		first, second := forks[i], forks[(i+1)%n]
		if fixed && i == 0 {
			first, second = second, first
		}
		comps = append(comps, types.Rec{Var: "t",
			Body: rin(first, "u", rin(second, "u2",
				rout(first, rout(second, types.RecVar{Name: "t"}))))})
	}
	sem := &typelts.Semantics{Env: env, Observable: map[string]bool{}, WitnessOnly: true}
	sem.Cache = typelts.NewCache(env, true)
	return sem, types.ParOf(comps...)
}

func TestDetectSymmetryRing(t *testing.T) {
	sem, t0 := ringFixture(5, false)
	sym := DetectSymmetry(sem.Cache, t0, nil)
	if sym == nil {
		t.Fatal("no symmetry detected on a uniform 5-ring")
	}
	if got := sym.NumClasses(); got != 0 {
		t.Errorf("classes = %d, want 0 (one fused bundle, nothing to swap)", got)
	}
	if got := sym.NumRings(); got != 1 {
		t.Errorf("rings = %d, want 1", got)
	}
	if got := sym.NumBundles(); got != 1 {
		t.Errorf("bundles = %d, want 1", got)
	}

	// The symmetry-broken variant's co-mention graph is the same cycle,
	// but the shape multiset is not shift-invariant: no group.
	semF, tF := ringFixture(5, true)
	if DetectSymmetry(semF.Cache, tF, nil) != nil {
		t.Error("symmetry-broken ring must have no rotation group")
	}

	// Observing any fork freezes the whole ring — a rotation moves every
	// ring channel, so nothing survives pinning.
	semP, tP := ringFixture(5, false)
	if DetectSymmetry(semP.Cache, tP, []string{"f0"}) != nil {
		t.Error("ring with a pinned channel must have no rotation group")
	}
}

// TestRingExploreCollapsesAndCovers is the rotational analogue of the
// bundle-class soundness check: the quotient explores necklace
// representatives whose orbit sizes tile the concrete reachable set
// exactly.
func TestRingExploreCollapsesAndCovers(t *testing.T) {
	sem, t0 := ringFixture(5, false)
	full, err := Explore(sem, t0, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	sym := DetectSymmetry(sem.Cache, t0, nil)
	if sym == nil {
		t.Fatal("no symmetry detected")
	}
	red, err := Explore(sem, t0, Options{Parallelism: 1, Symmetry: sym})
	if err != nil {
		t.Fatal(err)
	}
	if red.Sym == nil {
		t.Fatal("symmetric exploration did not record SymInfo")
	}
	if red.Len()*4 > full.Len() {
		t.Errorf("ring exploration has %d states, full has %d — expected ≥4× collapse",
			red.Len(), full.Len())
	}
	if got, want := red.Covered(), int64(full.Len()); got != want {
		t.Errorf("covered = %d, want %d (orbit sizes must tile the concrete space)", got, want)
	}
}

// TestRingExploreDeterministic extends the worker-count determinism
// contract to the rotation canonicaliser.
func TestRingExploreDeterministic(t *testing.T) {
	sem, t0 := ringFixture(5, false)
	sym := DetectSymmetry(sem.Cache, t0, nil)
	if sym == nil {
		t.Fatal("no symmetry detected")
	}
	serial, err := Explore(sem, t0, Options{Parallelism: 1, Symmetry: sym})
	if err != nil {
		t.Fatal(err)
	}
	want := symFingerprint(serial)
	for _, par := range []int{2, 4, 8} {
		for rep := 0; rep < 3; rep++ {
			sem2, t2 := ringFixture(5, false)
			sym2 := DetectSymmetry(sem2.Cache, t2, nil)
			m, err := Explore(sem2, t2, Options{Parallelism: par, Symmetry: sym2})
			if err != nil {
				t.Fatal(err)
			}
			if got := symFingerprint(m); got != want {
				t.Fatalf("par=%d rep=%d: ring fingerprint differs from serial", par, rep)
			}
		}
	}
}

// TestRingHostileInternOrder replays the hostile interner-order attack
// against the rotation canonicaliser: its lex-min choice is defined by
// first-encounter ranks assigned on the registration side, never by
// interner ID values, so pre-interning the component population in
// adversarial orders must not change a byte.
func TestRingHostileInternOrder(t *testing.T) {
	sem, t0 := ringFixture(5, false)
	symBase := DetectSymmetry(sem.Cache, t0, nil)
	baseline, err := Explore(sem, t0, Options{Parallelism: 1, Symmetry: symBase})
	if err != nil {
		t.Fatal(err)
	}
	want := symFingerprint(baseline)

	semFull, tFull := ringFixture(5, false)
	full, err := Explore(semFull, tFull, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var comps []types.Type
	seen := map[string]bool{}
	for _, s := range full.States {
		for _, c := range types.FlattenPar(s) {
			key := types.Canon(c)
			if !seen[key] {
				seen[key] = true
				comps = append(comps, c)
			}
		}
	}

	for trial := 0; trial < 3; trial++ {
		sem2, t2 := ringFixture(5, false)
		in := sem2.Cache.Interner()
		switch trial {
		case 0: // reversed
			for i := len(comps) - 1; i >= 0; i-- {
				in.Intern(comps[i])
			}
		case 1: // rotated
			for i := range comps {
				in.Intern(comps[(i+len(comps)/2)%len(comps)])
			}
		case 2: // interleaved from both ends
			for i, j := 0, len(comps)-1; i <= j; i, j = i+1, j-1 {
				in.Intern(comps[j])
				in.Intern(comps[i])
			}
		}
		for _, par := range []int{1, 4} {
			sym := DetectSymmetry(sem2.Cache, t2, nil)
			m, err := Explore(sem2, t2, Options{Parallelism: par, Symmetry: sym})
			if err != nil {
				t.Fatal(err)
			}
			if got := symFingerprint(m); got != want {
				t.Fatalf("trial %d par %d: ring fingerprint differs under hostile intern order", trial, par)
			}
		}
	}
}

// TestRingPermOps runs the permutation-algebra round-trip on cyclic
// permutations: Compose is additive and Invert negates modulo the ring
// length, and both component multisets and labels survive the
// round-trip — the contract the ρ-composition witness lift depends on.
func TestRingPermOps(t *testing.T) {
	sem, t0 := ringFixture(5, false)
	sym := DetectSymmetry(sem.Cache, t0, nil)
	m, err := Explore(sem, t0, Options{Symmetry: sym})
	if err != nil {
		t.Fatal(err)
	}
	sawNonIdentity := false
	for s := 0; s < m.Len(); s++ {
		for k, e := range m.Out(s) {
			p := m.EdgePerm(s, k)
			if p != 0 {
				sawNonIdentity = true
			}
			inv := sym.Invert(p)
			if got := sym.Compose(p, inv); got != 0 {
				t.Fatalf("p∘p⁻¹ = perm %d, want identity", got)
			}
			dst := sem.InternLeaves(m.States[e.Dst])
			if _, ok := sym.PermuteComps(inv, dst); !ok {
				t.Fatalf("edge %d/%d: destination components cannot be un-permuted", s, k)
			}
			lab := m.Labels[e.Label]
			back := sym.PermuteLabel(p, sym.PermuteLabel(inv, lab))
			if back.Key() != lab.Key() {
				t.Fatalf("label %s does not round-trip through perm %d (got %s)", lab.Key(), p, back.Key())
			}
		}
	}
	if !sawNonIdentity {
		t.Error("no non-identity edge permutation recorded — the ring never rotated")
	}
}

// TestDetectSymmetryMixed exercises the direct product: a uniform ring
// alongside interchangeable ping-pong pairs yields one symmetric-group
// class and one cyclic factor, and their joint quotient still tiles the
// concrete space.
func TestDetectSymmetryMixed(t *testing.T) {
	buildMixed := func() (*typelts.Semantics, types.Type) {
		semR, tR := ringFixture(4, false)
		semP, tP := pairsFixture(3, false)
		env := semR.Env
		for _, n := range semP.Env.Names() {
			bind, _ := semP.Env.Lookup(n)
			env = env.MustExtend(n, bind)
		}
		sem := &typelts.Semantics{Env: env, Observable: map[string]bool{}, WitnessOnly: true}
		sem.Cache = typelts.NewCache(env, true)
		return sem, types.ParOf(append(types.FlattenPar(tR), types.FlattenPar(tP)...)...)
	}
	sem, t0 := buildMixed()
	sym := DetectSymmetry(sem.Cache, t0, nil)
	if sym == nil {
		t.Fatal("no symmetry detected on ring + pairs")
	}
	if got := sym.NumClasses(); got != 1 {
		t.Errorf("classes = %d, want 1 (the three pairs)", got)
	}
	if got := sym.NumRings(); got != 1 {
		t.Errorf("rings = %d, want 1", got)
	}
	full, err := Explore(sem, t0, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	sem2, t2 := buildMixed()
	sym2 := DetectSymmetry(sem2.Cache, t2, nil)
	red, err := Explore(sem2, t2, Options{Parallelism: 1, Symmetry: sym2})
	if err != nil {
		t.Fatal(err)
	}
	if red.Len() >= full.Len() {
		t.Errorf("mixed exploration has %d states, full has %d — no collapse", red.Len(), full.Len())
	}
	if got, want := red.Covered(), int64(full.Len()); got != want {
		t.Errorf("covered = %d, want %d (direct-product orbit sizes must tile the space)", got, want)
	}
}

// TestSymmetryPermOps checks the permutation algebra the witness lift
// composes: inverse and composition round-trip both component multisets
// and labels.
func TestSymmetryPermOps(t *testing.T) {
	sem, t0 := pairsFixture(4, true)
	sym := DetectSymmetry(sem.Cache, t0, []string{"z1", "y1"})
	m, err := Explore(sem, t0, Options{Symmetry: sym})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < m.Len(); s++ {
		for k, e := range m.Out(s) {
			p := m.EdgePerm(s, k)
			inv := sym.Invert(p)
			if got := sym.Compose(p, inv); got != 0 {
				t.Fatalf("p∘p⁻¹ = perm %d, want identity", got)
			}
			// Un-permuting the canonical destination must give a real raw
			// successor of s's representative: one of the uncanonicalised
			// splice results.
			dst := sem.InternLeaves(m.States[e.Dst])
			raw, ok := sym.PermuteComps(inv, dst)
			if !ok {
				t.Fatalf("edge %d/%d: destination components cannot be un-permuted", s, k)
			}
			_ = raw
			// Labels must round-trip too.
			lab := m.Labels[e.Label]
			back := sym.PermuteLabel(p, sym.PermuteLabel(inv, lab))
			if back.Key() != lab.Key() {
				t.Fatalf("label %s does not round-trip through perm %d (got %s)", lab.Key(), p, back.Key())
			}
		}
	}
}
