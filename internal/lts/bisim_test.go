package lts

import (
	"testing"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

func bisimEnv() *types.Env {
	return types.EnvOf(
		"x", types.ChanIO{Elem: types.Int{}},
		"y", types.ChanIO{Elem: types.Int{}},
	)
}

func outLoop(ch string) types.Type {
	return types.Rec{Var: "t", Body: types.Out{Ch: types.Var{Name: ch}, Payload: types.Int{},
		Cont: types.Thunk(types.RecVar{Name: "t"})}}
}

func TestBisimilarUnfolding(t *testing.T) {
	env := bisimEnv()
	rec := outLoop("x")
	ok, err := TypesBisimilar(env, rec, types.Unfold(rec), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("µt.T must be bisimilar to its unfolding")
	}
}

func TestBisimilarParCongruence(t *testing.T) {
	env := bisimEnv()
	a := outLoop("x")
	// p[T, nil] ~ T and p[T,U] ~ p[U,T].
	ok, err := TypesBisimilar(env, types.Par{L: a, R: types.Nil{}}, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("p[T,nil] must be bisimilar to T")
	}
	b := outLoop("y")
	ok, err = TypesBisimilar(env, types.Par{L: a, R: b}, types.Par{L: b, R: a}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("p[T,U] must be bisimilar to p[U,T]")
	}
}

func TestNotBisimilarDifferentChannels(t *testing.T) {
	env := bisimEnv()
	ok, err := TypesBisimilar(env, outLoop("x"), outLoop("y"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("loops on different channels must not be bisimilar")
	}
}

func TestNotBisimilarChoiceVsCommitment(t *testing.T) {
	env := bisimEnv()
	// x⟨int⟩ + internal choice vs committed output: the classic
	// a.(b+c) vs a.b + a.c distinction, built with unions.
	sendThen := func(then types.Type) types.Type {
		return types.Out{Ch: types.Var{Name: "x"}, Payload: types.Int{}, Cont: types.Thunk(then)}
	}
	outY := types.Out{Ch: types.Var{Name: "y"}, Payload: types.Int{}, Cont: types.Thunk(types.Nil{})}
	outX := types.Out{Ch: types.Var{Name: "x"}, Payload: types.Int{}, Cont: types.Thunk(types.Nil{})}

	// T1 = x⟨⟩.(y⟨⟩ ∨ x⟨⟩): choice after the prefix.
	t1 := sendThen(types.Union{L: outY, R: outX})
	// T2 = (x⟨⟩.y⟨⟩) ∨ (x⟨⟩.x⟨⟩): choice before the prefix.
	t2 := types.Union{L: sendThen(outY), R: sendThen(outX)}
	ok, err := TypesBisimilar(env, t1, t2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("a.(b∨c) and (a.b)∨(a.c) must be distinguished by strong bisimilarity")
	}
}

func TestBisimilarTerminationKinds(t *testing.T) {
	env := bisimEnv()
	// A terminated process (✔-loop) is not bisimilar to a stuck one
	// (⊠-loop): the completion kind is observable.
	done := types.Nil{}
	stuck := types.Out{Ch: types.Var{Name: "x"}, Payload: types.Int{}, Cont: types.Thunk(types.Nil{})}
	sem := &typelts.Semantics{Env: env, Observable: map[string]bool{}} // closed: the output is stuck
	m1, err := Explore(sem, done, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Explore(sem, stuck, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if Bisimilar(m1, m2) {
		t.Error("✔ and ⊠ completions must be distinguished")
	}
	if !Bisimilar(m1, m1) || !Bisimilar(m2, m2) {
		t.Error("bisimilarity must be reflexive")
	}
}
