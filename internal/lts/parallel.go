package lts

// This file implements the parallel exploration engine: a
// level-synchronised BFS over the type LTS.
//
// The serial engine (builder.exploreSerial) interleaves two very
// different kinds of work: *expansion* — computing a state's component
// steps and synchronisations, which bottoms out in subtype checks,
// µ-unfolding and substitution — and *registration* — interning the
// successor multisets, assigning state numbers and splicing the CSR edge
// array. Expansion dominates and is embarrassingly parallel once the
// transition cache is concurrency-safe; registration is cheap but order-
// sensitive, because state numbers and the dense label alphabet are
// assigned first-seen.
//
// So the parallel engine splits them. Each BFS level (the states
// discovered by the previous level's merge) is expanded by Parallelism
// workers, each holding a Fork of the semantics and sharing its
// lock-striped cache; a worker turns one state into an ordered list of
// edge proposals — successor multiset, label and compact label key —
// without touching the LTS under construction. A single-threaded merge
// then replays the proposals in (parent-index, edge-order) order through
// exactly the same builder methods the serial engine uses, so state
// numbering, alphabet order, edge order and truncation behaviour are
// identical to the serial engine's at any worker count. See DESIGN.md
// for the determinism argument.

import (
	"sync"
	"sync/atomic"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// proposal is one candidate edge produced by a worker: the successor
// component multiset (before interning) plus the transition label and
// its compact identity. The merge turns proposals into states and CSR
// edges.
type proposal struct {
	succ []types.ID
	key  typelts.LabelKey
	lab  typelts.Label
	// i and j are the acting positions in the parent's component
	// multiset (j is -1 for an interleaving step). The ample-set
	// computation of partial-order reduction derives its independence
	// relation from them; plain registration ignores them.
	i, j int32
}

// minParallelFrontier is the frontier size below which a level is
// expanded inline on the merge goroutine: spawning workers for a
// handful of states costs more than it saves.
const minParallelFrontier = 4

// exploreParallel runs the level-synchronised BFS with par workers.
// The worker Semantics forks are created once and reused across levels
// — the levels are separated by a join, so no fork is ever used by two
// goroutines at once, and reuse keeps each worker's L1 memo hot for the
// whole exploration instead of one level.
func (b *builder) exploreParallel(par int) error {
	forks := make([]*typelts.Semantics, par)
	for i := range forks {
		forks[i] = b.sem.Fork()
	}
	for done := 0; done < len(b.l.States); {
		lo, hi := done, len(b.l.States)
		n := hi - lo

		if b.ctx.Err() != nil {
			return b.cancelled()
		}

		// Expand the level. If the bound is already exceeded the merge
		// will fail at state lo, so skip the (possibly huge) expansion.
		var props [][]proposal
		if hi <= b.maxStates {
			props = b.expandLevel(lo, n, forks)
			// Workers bail early on cancellation, leaving nil proposal
			// slots; the merge must not mistake those for edge-less states.
			if b.ctx.Err() != nil {
				return b.cancelled()
			}
		} else {
			props = make([][]proposal, n)
		}

		// Merge in deterministic (parent-index, edge-order) order,
		// mirroring the serial loop state by state.
		for i := 0; i < n; i++ {
			next := lo + i
			if len(b.l.States) > b.maxStates {
				return b.boundExceeded()
			}
			from := b.l.start[next]
			b.beginState()
			if b.por != nil {
				// Ample selection runs here, on the single-threaded
				// merge side, in deterministic (parent, edge-order)
				// order — exactly where the serial engine runs it — so
				// the reduced LTS stays byte-identical at any worker
				// count.
				b.porCur = int32(next)
				b.registerPOR(from, b.stateComps[next], props[i])
			} else {
				for _, p := range props[i] {
					// register performs the same rank-order →
					// canonicalise → intern → splice sequence applyStep
					// runs on the serial path, so the two engines build
					// identical states and edges (symmetric or not).
					b.register(from, p.succ, p.key, p.lab)
				}
			}
			b.finishState(next, from)
			props[i] = nil
		}
		done = hi
		b.report(done)
	}
	return nil
}

// expandLevel computes the proposals of states [lo, lo+n) — concurrently
// when the frontier is large enough to amortise the goroutine handoff,
// inline otherwise (on forks[0], so the warm L1 memo is still used).
func (b *builder) expandLevel(lo, n int, forks []*typelts.Semantics) [][]proposal {
	props := make([][]proposal, n)
	workers := len(forks)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minParallelFrontier {
		for i := 0; i < n; i++ {
			if i%cancelStride == 0 && b.ctx.Err() != nil {
				return props
			}
			props[i] = expandState(forks[0], b.stateComps[lo+i])
		}
		return props
	}

	done := b.ctx.Done()
	var idx atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		ws := forks[w]
		go func() {
			defer wg.Done()
			for {
				i := int(idx.Add(1)) - 1
				if i >= n {
					return
				}
				if done != nil {
					select {
					case <-done:
						// Cancelled mid-level: stop expanding. The merge
						// re-checks ctx before consuming the (partial)
						// proposals.
						return
					default:
					}
				}
				props[i] = expandState(ws, b.stateComps[lo+i])
			}
		}()
	}
	wg.Wait()
	return props
}

// expandState computes the edge proposals of one state, in the exact
// order the serial engine would splice them: interleaving steps of each
// component (Y-limited), then pairwise synchronisations.
func expandState(sem *typelts.Semantics, comps []types.ID) []proposal {
	var out []proposal
	for i := range comps {
		for _, st := range sem.ComponentSteps(comps[i]) {
			if !sem.KeepLabel(st.Label) {
				continue
			}
			out = append(out, proposal{succ: spliceSucc(comps, i, -1, st.Next), key: st.Key, lab: st.Label, i: int32(i), j: -1})
		}
	}
	for i := range comps {
		for j := range comps {
			if i == j {
				continue
			}
			for _, st := range sem.SyncSteps(comps[i], comps[j]) {
				out = append(out, proposal{succ: spliceSucc(comps, i, j, st.Next), key: st.Key, lab: st.Label, i: int32(i), j: int32(j)})
			}
		}
	}
	return out
}
