package lts

// This file implements exploration-time partial-order reduction: per
// expanded state, the builder registers an ample (persistent) subset of
// the enabled transitions instead of all of them, so commuting
// interleavings of independent synchronisations collapse to one
// representative order and the reduced reachable set shrinks.
//
// The independence relation comes straight from the component-multiset
// semantics: a transition's participants are the acting positions of
// applyStep (one position for an interleaving step, two for a
// synchronisation), successors are multiset surgery on exactly those
// positions, and solo/pairwise enabledness is a pure function of the
// participating component IDs. Two transitions with disjoint participant
// sets therefore commute: firing one neither disables the other nor
// changes its successor. The ample computation closes a set C of
// protected positions so that
//
//   (C0) the ample set is non-empty (it contains the seed transition);
//   (C1) every enabled transition touching C is ample, and no sequence
//        of non-ample transitions can enable a new transition touching C
//        — non-ample transitions keep every C component frozen, so the
//        ample transitions stay enabled and commute to the front
//        (persistence);
//   (C2) every ample label is invisible to the property (POR.Visible);
//   (C3) an ample-only edge never closes a cycle: a state whose selected
//        successor was already discovered is fully expanded instead, so
//        every cycle of the reduced graph contains a fully expanded
//        state and no enabled transition is deferred forever.
//
// C1's "no future enabling" half is checked with a context-free
// descendant closure: a position outside C joins C when any component
// its current component can evolve into (through any number of its own
// steps, in any context) could synchronise with the current component
// of a C member. That over-approximation is cheap — it is a pure
// function of component IDs and memoised across the exploration — and
// it is what decides how far a reduction can go: compositions whose
// conflict graph falls apart into independent clusters (ping-pong
// pairs) collapse to nearly linear size, while a Dining-shaped ring,
// where every unit's future touches both neighbours, keeps ample sets
// close to full and the reduction is mostly in edges, not states (see
// DESIGN.md §por for the measurements).
//
// Everything here runs on the single-threaded registration side of the
// engines (serial loop, parallel merge, incremental expansion) and uses
// only content-deterministic queries — boolean set membership, position
// order, canonical proposal order — never interner-ID iteration order,
// so the reduced LTS honours the byte-determinism contract: it is
// identical at any worker count.

import (
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// POR configures exploration-time partial-order reduction
// (Options.PartialOrder).
type POR struct {
	// Visible reports whether the verified property observes the label.
	// A transition with a visible label never enters a proper ample set
	// (condition C2), so the visible projection of every full run — all
	// the property can distinguish — survives the reduction. Nil means
	// no label is visible.
	Visible func(l typelts.Label) bool

	// Liveness selects the strong cycle proviso: an ample set is usable
	// only when none of its successors' ample decisions were already made,
	// so no cycle of the reduced graph is built from reduced states only
	// and no enabled transition is deferred around a lasso forever —
	// required for properties with eventualities (Reactive). Safety
	// properties (NonUsage, DeadlockFree) only need the weak queue
	// proviso — at least one selected successor still undecided: a
	// deferred transition stays enabled by persistence and the deferral
	// chain follows strictly later-decided states, so some state on it is
	// eventually expanded in full and fires the transition; deadlock
	// states are preserved by persistence alone.
	Liveness bool
}

// maxAmpleSeeds bounds how many seed transitions the ample computation
// tries per state. Seeds are tried in canonical proposal order, so the
// bound only matters for states with very wide branching; giving up
// merely falls back to full expansion, which is always sound.
const maxAmpleSeeds = 64

// porState holds the memoised relations and per-state scratch of the
// ample-set computation for one exploration.
type porState struct {
	spec *POR
	sem  *typelts.Semantics

	// canSync memoises, per unordered component-ID pair, whether the two
	// components can synchronise in either direction (+1 yes, -1 no).
	// Synchronisation enabledness is a pure function of the two IDs, so
	// the memo is exploration-global.
	canSync map[[2]types.ID]int8

	// descs memoises the context-free descendant closure per component
	// ID (see desc).
	descs map[types.ID][]types.ID

	// Per-state scratch, reused across expansions.
	inC      []bool    // position ∈ C (protected)
	inAmple  []bool    // proposal ∈ ample set
	queue    []int     // positions awaiting rule-A processing
	posProps [][]int32 // position → indices of touching proposals
}

func newPORState(spec *POR, sem *typelts.Semantics) *porState {
	return &porState{spec: spec, sem: sem, canSync: make(map[[2]types.ID]int8, 256), descs: make(map[types.ID][]types.ID, 64)}
}

func (p *porState) visible(l typelts.Label) bool {
	return p.spec.Visible != nil && p.spec.Visible(l)
}

// syncable reports whether components x and y can synchronise in either
// direction, memoised per unordered pair.
func (p *porState) syncable(x, y types.ID) bool {
	k := [2]types.ID{x, y}
	if k[0] > k[1] {
		k[0], k[1] = k[1], k[0]
	}
	if v, ok := p.canSync[k]; ok {
		return v > 0
	}
	v := int8(-1)
	if len(p.sem.SyncSteps(x, y)) > 0 || len(p.sem.SyncSteps(y, x)) > 0 {
		v = 1
	}
	p.canSync[k] = v
	return v > 0
}

// registerPOR registers the state's proposals through the ample filter:
// a valid ample subset whose successors are all fresh (C3) is registered
// alone; otherwise every proposal is registered, exactly as without POR.
func (b *builder) registerPOR(from int32, comps []types.ID, props []proposal) {
	// Cycle proviso (C3): an ample set is only usable when none of its
	// edges closes back onto a state whose ample decision was already
	// made (or onto this very state) — otherwise a cycle of ample-only
	// edges could defer the dropped transitions forever. Feeding the
	// check into seed selection lets a different seed succeed where the
	// first choice would close a cycle. Soundness: every cycle of the
	// reduced graph contains a fully expanded state — consider the last
	// state of a cycle to make its decision; its cycle successor decided
	// earlier, so the check fired and the state expanded fully.
	fresh := func(succ []types.ID) bool {
		num, ok := b.peekSeen(succ)
		return !ok || (num != b.porCur && !b.porExpanded(num))
	}
	sel := b.por.ample(comps, props, fresh)
	if sel == nil {
		for i := range props {
			b.register(from, props[i].succ, props[i].key, props[i].lab)
		}
		return
	}
	for _, k := range sel {
		b.register(from, props[k].succ, props[k].key, props[k].lab)
	}
}

// peekSeen returns the state number of the successor multiset if it is
// already discovered, without registering anything. InternPar sorts by
// ID value internally, so no rank ordering is needed — and none is
// assigned, keeping the peek free of ordering side effects.
func (b *builder) peekSeen(succ []types.ID) (int32, bool) {
	b.scratch = append(b.scratch[:0], succ...)
	num, ok := b.index[b.in.InternPar(b.scratch)]
	return num, ok
}

// ample returns the indices (in canonical proposal order) of a valid
// ample subset of props at the state with component multiset comps, or
// nil when the state must be fully expanded. fresh is the cycle-proviso
// filter: a candidate set with a non-fresh successor is discarded (and
// another seed tried).
func (p *porState) ample(comps []types.ID, props []proposal, fresh func(succ []types.ID) bool) []int32 {
	if len(props) < 2 {
		return nil
	}
	n := len(comps)
	if cap(p.posProps) < n {
		p.posProps = make([][]int32, n)
		p.inC = make([]bool, n)
	}
	p.posProps = p.posProps[:n]
	p.inC = p.inC[:n]
	for i := range p.posProps {
		p.posProps[i] = p.posProps[i][:0]
	}
	if cap(p.inAmple) < len(props) {
		p.inAmple = make([]bool, len(props))
	}
	p.inAmple = p.inAmple[:len(props)]
	for k := range props {
		p.posProps[props[k].i] = append(p.posProps[props[k].i], int32(k))
		if props[k].j >= 0 {
			p.posProps[props[k].j] = append(p.posProps[props[k].j], int32(k))
		}
	}

	// Seeds are tried in canonical proposal order (position-major): every
	// state prefers to advance its lowest reducible position, and the
	// first valid ample set wins. The consistency matters more than the
	// set size — when neighbouring states agree on which position moves
	// first, the commuting interleavings collapse into one canonical
	// corridor instead of re-reaching the dropped diamond states through
	// sibling orders.
	tries := len(props)
	if tries > maxAmpleSeeds {
		tries = maxAmpleSeeds
	}
	for seed := 0; seed < tries; seed++ {
		sel := p.closure(comps, props, seed)
		if sel == nil {
			continue
		}
		ok := false // weak (safety) proviso: ∃ fresh selected successor
		for _, k := range sel {
			if fresh(props[k].succ) {
				ok = true
				if !p.spec.Liveness {
					break
				}
			} else if p.spec.Liveness {
				// Strong proviso: ∀ selected successors fresh.
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		return sel
	}
	return nil
}

// closure grows the seed transition into an ample set: rule A pulls in
// every enabled proposal touching a protected position (failing on a
// visible label), rule B protects every position whose context-justified
// future can synchronise with a protected component. Returns the ample
// proposal indices in ascending order, or nil when the closure covers
// everything (no reduction) or meets a visible label.
func (p *porState) closure(comps []types.ID, props []proposal, seed int) []int32 {
	n := len(comps)
	for i := range p.inC {
		p.inC[i] = false
	}
	for i := range p.inAmple {
		p.inAmple[i] = false
	}
	p.queue = p.queue[:0]
	ampleCount := 0

	addPos := func(pos int32) {
		if !p.inC[pos] {
			p.inC[pos] = true
			p.queue = append(p.queue, int(pos))
		}
	}
	addProp := func(k int) bool {
		if p.inAmple[k] {
			return true
		}
		if p.visible(props[k].lab) {
			return false
		}
		p.inAmple[k] = true
		ampleCount++
		addPos(props[k].i)
		if props[k].j >= 0 {
			addPos(props[k].j)
		}
		return true
	}

	if !addProp(seed) {
		return nil
	}
	for {
		for len(p.queue) > 0 {
			pos := p.queue[len(p.queue)-1]
			p.queue = p.queue[:len(p.queue)-1]
			for _, k := range p.posProps[pos] {
				if !addProp(int(k)) {
					return nil
				}
			}
			if ampleCount == len(props) {
				return nil
			}
		}
		if !p.ruleB(comps, n) {
			break
		}
	}

	sel := make([]int32, 0, ampleCount)
	for k := range props {
		if p.inAmple[k] {
			sel = append(sel, int32(k))
		}
	}
	if len(sel) == len(props) {
		return nil
	}
	return sel
}

// ruleB protects every position whose current component could ever —
// after any number of its own steps — synchronise with the current
// component of a protected position, and reports whether C grew. A
// position that passes this test can only interact with C after C
// itself moves, so freezing C also freezes every interaction the
// position could have with it: no sequence of non-ample transitions
// enables a new transition touching C (the future-enabling half of
// persistence).
//
// The future of a component is its context-free descendant closure —
// every component reachable through its own steps regardless of
// whether a synchronisation partner exists. That over-approximates
// what the position can do in any context, which errs toward
// protecting more positions and is therefore sound; it is also a pure
// function of the component ID, so the closure is memoised for the
// whole exploration and the per-state cost is a handful of indexed
// set probes.
func (p *porState) ruleB(comps []types.ID, n int) bool {
	grew := false
	for q := 0; q < n; q++ {
		if p.inC[q] {
			continue
		}
		hit := false
		for _, id := range p.desc(comps[q]) {
			for pos := 0; pos < n && !hit; pos++ {
				if p.inC[pos] && p.syncable(id, comps[pos]) {
					hit = true
				}
			}
			if hit {
				break
			}
		}
		if hit {
			p.inC[q] = true
			p.queue = append(p.queue, q)
			grew = true
		}
	}
	return grew
}

// desc returns the context-free descendant closure of a component:
// the component itself plus every component reachable through its own
// steps, in deterministic discovery order. Memoised per ID for the
// whole exploration.
func (p *porState) desc(id types.ID) []types.ID {
	if d, ok := p.descs[id]; ok {
		return d
	}
	seen := map[types.ID]bool{id: true}
	closure := []types.ID{id}
	for k := 0; k < len(closure); k++ {
		for _, st := range p.sem.ComponentSteps(closure[k]) {
			for _, nxt := range st.Next {
				if !seen[nxt] {
					seen[nxt] = true
					closure = append(closure, nxt)
				}
			}
		}
	}
	p.descs[id] = closure
	return closure
}
