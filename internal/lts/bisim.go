package lts

import (
	"context"
	"sort"
	"strings"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// This file implements strong bisimilarity of type LTSs by partition
// refinement (Kanellakis–Smolka). It gives the repository an executable
// notion of behavioural type equivalence: two types are strongly
// bisimilar iff no µ-calculus formula over their action alphabet
// distinguishes them, so e.g. µ-unfolding and the ≡ congruence laws can
// be validated semantically, and protocol refactorings can be checked
// behaviour-preserving.

// Bisimilar reports whether the initial states of m1 and m2 are strongly
// bisimilar (labels compared by Key).
func Bisimilar(m1, m2 *LTS) bool {
	// Work on the disjoint union of the two systems.
	n1 := m1.Len()
	n := n1 + m2.Len()
	succ := make([]map[string][]int, n)
	for i := 0; i < n; i++ {
		succ[i] = map[string][]int{}
	}
	for s := 0; s < m1.Len(); s++ {
		for _, e := range m1.Out(s) {
			k := m1.LabelOf(e).Key()
			succ[s][k] = append(succ[s][k], int(e.Dst))
		}
	}
	for s := 0; s < m2.Len(); s++ {
		for _, e := range m2.Out(s) {
			k := m2.LabelOf(e).Key()
			succ[n1+s][k] = append(succ[n1+s][k], n1+int(e.Dst))
		}
	}

	// Initial partition: all states together.
	block := make([]int, n)
	numBlocks := 1

	// Refine until stable: two states stay in the same block iff for
	// every label they reach the same *set of blocks*.
	for {
		sig := make([]string, n)
		for s := 0; s < n; s++ {
			sig[s] = signature(succ[s], block)
		}
		// Re-block by (old block, signature).
		index := map[string]int{}
		next := make([]int, n)
		count := 0
		for s := 0; s < n; s++ {
			key := strings.Join([]string{itoa(block[s]), sig[s]}, "⊢")
			b, ok := index[key]
			if !ok {
				b = count
				count++
				index[key] = b
			}
			next[s] = b
		}
		if count == numBlocks {
			break
		}
		block, numBlocks = next, count
	}
	return block[m1.Initial] == block[n1+m2.Initial]
}

// signature renders the set of (label, target-block) pairs of a state.
func signature(succ map[string][]int, block []int) string {
	var parts []string
	for lab, dsts := range succ {
		blocks := map[int]bool{}
		for _, d := range dsts {
			blocks[block[d]] = true
		}
		ids := make([]int, 0, len(blocks))
		for b := range blocks {
			ids = append(ids, b)
		}
		sort.Ints(ids)
		var sb strings.Builder
		sb.WriteString(lab)
		sb.WriteString("→{")
		for i, b := range ids {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(itoa(b))
		}
		sb.WriteString("}")
		parts = append(parts, sb.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// TypesBisimilar explores two types under the same semantics and decides
// their strong bisimilarity.
func TypesBisimilar(env *types.Env, a, b types.Type, opts Options) (bool, error) {
	return TypesBisimilarContext(context.Background(), env, a, b, opts)
}

// TypesBisimilarContext is TypesBisimilar with cancellable explorations.
func TypesBisimilarContext(ctx context.Context, env *types.Env, a, b types.Type, opts Options) (bool, error) {
	sem := &typelts.Semantics{Env: env}
	m1, err := ExploreContext(ctx, sem, a, opts)
	if err != nil {
		return false, err
	}
	m2, err := ExploreContext(ctx, sem, b, opts)
	if err != nil {
		return false, err
	}
	return Bisimilar(m1, m2), nil
}
