package lts

import (
	"context"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// This file decides strong bisimilarity of type LTSs. It gives the
// repository an executable notion of behavioural type equivalence: two
// types are strongly bisimilar iff no µ-calculus formula over their
// action alphabet distinguishes them, so e.g. µ-unfolding and the ≡
// congruence laws can be validated semantically, and protocol
// refactorings can be checked behaviour-preserving.
//
// The decision procedure is the minimize.go partition refiner run on the
// disjoint union of the two systems: the roots are bisimilar iff the
// coarsest stable partition puts them in one block. Labels are compared
// by Key (the two LTSs have independent dense alphabets, so their label
// indices are unified into joint classes first).

// Bisimilar reports whether the initial states of m1 and m2 are strongly
// bisimilar (labels compared by Key).
func Bisimilar(m1, m2 *LTS) bool {
	n1 := m1.Len()
	n := n1 + m2.Len()
	if n == 0 {
		return true
	}

	// Joint label classes: one dense class per distinct label key across
	// both alphabets. The map is lookup-only and filled in deterministic
	// (alphabet) order; class ids never depend on its iteration order.
	classIdx := make(map[string]int32, len(m1.Labels)+len(m2.Labels))
	classFor := func(lab typelts.Label) int32 {
		key := lab.Key()
		if c, ok := classIdx[key]; ok {
			return c
		}
		c := int32(len(classIdx))
		classIdx[key] = c
		return c
	}
	class1 := make([]int32, len(m1.Labels))
	for i, lab := range m1.Labels {
		class1[i] = classFor(lab)
	}
	class2 := make([]int32, len(m2.Labels))
	for i, lab := range m2.Labels {
		class2[i] = classFor(lab)
	}

	// Disjoint-union CSR: m2's states are shifted by n1, every edge is
	// rewritten to (joint class, shifted destination) once up front so
	// the refiner sees plain Edge slices.
	ustart := make([]int32, 1, n+1)
	uedges := make([]Edge, 0, m1.NumEdges()+m2.NumEdges())
	for s := 0; s < n1; s++ {
		for _, e := range m1.Out(s) {
			uedges = append(uedges, Edge{Label: class1[e.Label], Dst: e.Dst})
		}
		ustart = append(ustart, int32(len(uedges)))
	}
	for s := 0; s < m2.Len(); s++ {
		for _, e := range m2.Out(s) {
			uedges = append(uedges, Edge{Label: class2[e.Label], Dst: e.Dst + int32(n1)})
		}
		ustart = append(ustart, int32(len(uedges)))
	}

	blockOf, _, _ := refineCSR(nil, n, // nil ctx: refinement never errors
		func(s int) []Edge { return uedges[ustart[s]:ustart[s+1]] },
		func(l int32) int32 { return l })
	return blockOf[m1.Initial] == blockOf[n1+m2.Initial]
}

// TypesBisimilar explores two types under the same semantics and decides
// their strong bisimilarity.
func TypesBisimilar(env *types.Env, a, b types.Type, opts Options) (bool, error) {
	return TypesBisimilarContext(context.Background(), env, a, b, opts)
}

// TypesBisimilarContext is TypesBisimilar with cancellable explorations.
func TypesBisimilarContext(ctx context.Context, env *types.Env, a, b types.Type, opts Options) (bool, error) {
	sem := &typelts.Semantics{Env: env}
	m1, err := ExploreContext(ctx, sem, a, opts)
	if err != nil {
		return false, err
	}
	m2, err := ExploreContext(ctx, sem, b, opts)
	if err != nil {
		return false, err
	}
	return Bisimilar(m1, m2), nil
}
