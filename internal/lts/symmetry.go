package lts

// This file implements exploration-time symmetry reduction: instead of
// materialising every reachable state, the builder canonicalises each
// successor multiset to a representative of its orbit under a group of
// channel permutations, so whole families of symmetric interleavings
// collapse *during* BFS — before they cost states, edges or cache work —
// the way the bisimulation quotient (minimize.go) collapses them after.
//
// The group is detected statically (DetectSymmetry) and described by
// generators, never materialised. Environment channels are partitioned
// into *bundles* — channels co-mentioned by a root component, closed
// under union-find — and two generator families are recognised:
//
//   - *Classes* of interchangeable bundles: bundles with identical
//     profiles (channel binding types plus the canonical shapes of their
//     resident root components, both up to a positional renaming of the
//     bundle's own channels) may be swapped wholesale, contributing the
//     full symmetric group of the class.
//   - *Rings*: a single bundle whose channels form a simple cycle in the
//     co-mention graph of its residents (each resident touches at most
//     two of the bundle's channels, every channel exactly two edges),
//     where the shift-by-one renaming maps every channel's binding type
//     and the multiset of resident shapes onto themselves — the Dining
//     fork ring. Such a bundle contributes the cyclic group C_n of
//     rotations along the cycle.
//
// The group G is the direct product of these factors (they move disjoint
// channels), represented by permutation vectors: one slot per class
// bundle holding its image bundle, one slot per ring holding a rotation
// amount. Composition is functional on class slots and additive (mod
// ring length) on ring slots, so the witness lift's permutation algebra
// is uniform across both generator families.
//
// Soundness rests on a confinement invariant: in a closed, witness-only
// exploration that passes the static gate, every reachable component
// mentions channels of at most one bundle, and every label is confined
// to the bundle of its subject — distinct environment channel variables
// never interact ([⩽-x] only unfolds the left variable, so two
// different channel variables are never mutually subtypes), and a
// synchronisation's payload variable is free in the sender, hence in
// the sender's (= the subject's) bundle. Renaming along π therefore
// maps reachable states to reachable states, edges to edges, and — with
// the property's channels pinned (never permuted) — labels to labels of
// the same observation class. The canonicaliser additionally falls back
// to the identity on any state whose components it cannot place, which
// only loses reduction, never soundness: the canonical successor is
// always *a* member of the orbit, reached by the recorded permutation.
//
// Every edge records the permutation that carried its raw successor
// onto the canonical representative (LTS.EdgePerm); internal/verify
// composes these along a counterexample lasso to rebuild a concrete
// run, and re-validates it with the replay oracle. Canonicalisation
// runs only on the single-threaded registration side of each engine
// (serial loop, parallel merge, incremental expansion), so the
// parallel engine's byte-for-byte determinism contract is untouched:
// abstract-shape ranks, permutation table indices and canonical states
// are all assigned in merge order.

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// Symmetry is a channel-permutation group detected by DetectSymmetry,
// plus the memo tables the canonicaliser needs. A Symmetry is built for
// one (cache, environment, initial type, pinned set) and must only be
// used by one exploration at a time (the builder calls it from its
// single-threaded side; the exploration memos are not locked). The
// permutation-algebra entry points used by witness lifting — Compose,
// Invert, PermuteComps, PermuteLabel — take mu, because the verifier
// lifts counterexamples of independent properties concurrently after the
// shared exploration has finished.
type Symmetry struct {
	env *types.Env
	in  *types.Interner
	mu  sync.Mutex

	// bundles[b] lists slot b's channels: slots below firstRing are class
	// bundles (channels in first-mention order, members of some class),
	// slots at or above it are rings (channels in cyclic order). ph[i] is
	// the placeholder variable standing for position i while a component
	// is abstracted away from its slot ("\x00"-prefixed, so it can never
	// collide with a source binder or environment name).
	bundles   [][]string
	firstRing int32
	ph        []string
	// chanBundle maps a permutable channel to its slot.
	chanBundle map[string]int32
	// classes lists each class's member bundles in first-mention order.
	classes [][]int32

	// Exploration memos: residence of a component ID, reification of an
	// abstract shape onto a bundle, dense first-encounter ranks of
	// abstract shapes, and the interned permutation table (index 0 is
	// the identity).
	res       map[types.ID]residence
	reifyMemo map[reifyKey]types.ID
	abstRank  map[types.ID]int32
	permIdx   map[string]int32
	perms     [][]int32
	chanMaps  []map[string]string

	// Scratch buffers reused across canonicalise calls.
	contents [][]types.ID
	fixed    []types.ID
	ordBuf   []int32
	permBuf  []int32
	rotA     []types.ID
	rotB     []types.ID
}

// residence places one component: the permutable bundle whose channels
// it mentions (resFixed if none, resSpanning if more than one — the
// canonicaliser then falls back to the identity for the whole state),
// and its abstract shape (the component with the bundle's channels
// renamed to positional placeholders).
type residence struct {
	bundle int32
	abst   types.ID
}

const (
	resFixed    = int32(-1)
	resSpanning = int32(-2)
)

type reifyKey struct {
	abst   types.ID
	bundle int32
	// rot is the cyclic offset applied while reifying onto a ring slot
	// (always 0 for class bundles): position p reifies onto channel
	// (p+rot) mod n.
	rot int32
}

// DetectSymmetry analyses a closed system and returns its channel
// permutation group — the direct product of the symmetric groups of
// interchangeable-bundle classes and the cyclic rotation groups of ring
// bundles — or nil when no usable symmetry exists. pinned lists
// environment channels that must never be permuted — the verifier pins
// every channel its property observes, which is what keeps the orbit
// LTS property-equivalent to the concrete one. A pinned channel freezes
// its whole bundle, so a ring containing any observed channel yields no
// rotation (a rotation moves every ring channel).
//
// The detection is all-or-nothing per bundle and conservative overall:
// any construction the confinement argument does not cover (non-variable
// channel subjects, input binders used as channels without an
// environment witness, channels mentioned by binding types, channel
// names shadowed by binders) either disables symmetry entirely or
// freezes the offending bundle. The result is only sound for
// explorations that are closed (no observable set) and witness-only —
// the gate the verifier always satisfies and prepBuilder re-checks.
func DetectSymmetry(cache *typelts.Cache, init types.Type, pinned []string) *Symmetry {
	if cache == nil || !cache.WitnessOnly() {
		return nil
	}
	env := cache.Env()
	if env == nil {
		return nil
	}
	roots := types.FlattenPar(init)
	if len(roots) < 2 {
		return nil
	}
	isChan := map[string]bool{}
	for _, n := range env.Names() {
		isChan[n] = true
	}

	// Static gate: every channel position in the system (roots and
	// environment types) must hold variables, and every input binder
	// used in channel position must have an environment witness — then
	// witness-only early input only ever substitutes environment
	// variables into channel positions, and the confinement invariant
	// holds (see the file comment).
	scope := append(append([]types.Type{}, roots...), envTypes(env)...)
	for _, t := range scope {
		if !subjectsSafe(env, t) {
			return nil
		}
	}

	// Bundles: union-find over channels co-mentioned by a root.
	chanIdx := map[string]int{}
	var mention []string
	var parent []int
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	rootChans := make([][]int, len(roots))
	for i, r := range roots {
		var local []int
		seenLocal := map[int]bool{}
		walkFreeVarOccurrences(r, nil, func(n string) {
			if !isChan[n] {
				return
			}
			ci, ok := chanIdx[n]
			if !ok {
				ci = len(mention)
				chanIdx[n] = ci
				mention = append(mention, n)
				parent = append(parent, ci)
			}
			if !seenLocal[ci] {
				seenLocal[ci] = true
				local = append(local, ci)
			}
		})
		rootChans[i] = local
		for k := 1; k < len(local); k++ {
			ra, rb := find(local[0]), find(local[k])
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	if len(mention) < 2 {
		return nil
	}

	// Freeze channels the group must not move: the pinned set, channels
	// whose binding types refer to other channels (renaming would have
	// to rewrite the environment), channels shadowed by a binder name
	// anywhere in scope (renaming onto them could capture), and
	// generated names ("%" is the FreshName marker).
	frozen := make([]bool, len(mention))
	freeze := func(n string) {
		if ci, ok := chanIdx[n]; ok {
			frozen[ci] = true
		}
	}
	for _, p := range pinned {
		freeze(p)
	}
	binders := map[string]bool{}
	for _, t := range scope {
		collectBinders(t, binders)
	}
	for ci, n := range mention {
		if binders[n] || strings.Contains(n, "%") {
			frozen[ci] = true
		}
	}
	for _, n := range env.Names() {
		bind, _ := env.Lookup(n)
		for fv := range types.FreeVars(bind) {
			if isChan[fv] {
				freeze(fv)
				freeze(n)
			}
		}
	}

	// Group channels into bundles (dense ids in first-mention order; a
	// frozen channel freezes its whole bundle).
	bundleOf := map[int]int{}
	var bundleChans [][]int
	var bundleFrozen []bool
	for ci := range mention {
		r := find(ci)
		bi, ok := bundleOf[r]
		if !ok {
			bi = len(bundleChans)
			bundleOf[r] = bi
			bundleChans = append(bundleChans, nil)
			bundleFrozen = append(bundleFrozen, false)
		}
		bundleChans[bi] = append(bundleChans[bi], ci)
		if frozen[ci] {
			bundleFrozen[bi] = true
		}
	}
	residents := make([][]int, len(bundleChans))
	for i := range roots {
		if len(rootChans[i]) == 0 {
			continue
		}
		bi := bundleOf[find(rootChans[i][0])]
		residents[bi] = append(residents[bi], i)
	}

	// Profile each unfrozen bundle: the binding types of its channels
	// (positional) plus the canonical shapes of its resident roots with
	// the bundle's channels renamed to positional placeholders. Equal
	// profiles ⇒ interchangeable bundles, with the positional renaming
	// as the witness bijection.
	maxW := 0
	for bi, bc := range bundleChans {
		if !bundleFrozen[bi] && len(bc) > maxW {
			maxW = len(bc)
		}
	}
	ph := make([]string, maxW)
	for i := range ph {
		ph[i] = fmt.Sprintf("\x00sym%d", i)
	}
	profiles := map[string][]int{}
	var profileOrder []string
	for bi, bc := range bundleChans {
		if bundleFrozen[bi] {
			continue
		}
		var sb strings.Builder
		for _, ci := range bc {
			bind, _ := env.Lookup(mention[ci])
			sb.WriteString(types.Canon(bind))
			sb.WriteByte('\n')
		}
		var shapes []string
		for _, ri := range residents[bi] {
			t := roots[ri]
			for pos, ci := range bc {
				t = types.Subst(t, mention[ci], types.Var{Name: ph[pos]})
			}
			shapes = append(shapes, types.Canon(t))
		}
		sort.Strings(shapes)
		sb.WriteByte('\x01')
		sb.WriteString(strings.Join(shapes, "\x01"))
		p := sb.String()
		if _, ok := profiles[p]; !ok {
			profileOrder = append(profileOrder, p)
		}
		profiles[p] = append(profiles[p], bi)
	}

	s := &Symmetry{
		env:        env,
		in:         cache.Interner(),
		ph:         ph,
		chanBundle: map[string]int32{},
		res:        map[types.ID]residence{},
		reifyMemo:  map[reifyKey]types.ID{},
		abstRank:   map[types.ID]int32{},
		permIdx:    map[string]int32{},
	}
	inClass := make([]bool, len(bundleChans))
	for _, p := range profileOrder {
		members := profiles[p]
		if len(members) < 2 {
			continue
		}
		var cls []int32
		for _, bi := range members {
			inClass[bi] = true
			nb := int32(len(s.bundles))
			names := make([]string, len(bundleChans[bi]))
			for pos, ci := range bundleChans[bi] {
				names[pos] = mention[ci]
				s.chanBundle[mention[ci]] = nb
			}
			s.bundles = append(s.bundles, names)
			cls = append(cls, nb)
		}
		s.classes = append(s.classes, cls)
	}
	s.firstRing = int32(len(s.bundles))

	// Rotational symmetry: an unfrozen bundle that joined no class may
	// still be a ring — channels in a simple co-mention cycle whose
	// shift-by-one is an automorphism. The shift generates C_n, so one
	// generator check (binding types all equal, resident-shape multiset
	// invariant under the shift) covers the whole cyclic group.
	for bi, bc := range bundleChans {
		if bundleFrozen[bi] || inClass[bi] {
			continue
		}
		order := ringOrder(bc, residents[bi], rootChans)
		if order == nil {
			continue
		}
		n := len(order)
		// The shift renames every ring channel, so the environment stays
		// fixed only when the channels' binding types coincide. (Bindings
		// never mention channels here — that froze the bundle above.)
		bind0, _ := env.Lookup(mention[order[0]])
		same := true
		for _, ci := range order[1:] {
			bind, _ := env.Lookup(mention[ci])
			if types.Canon(bind) != types.Canon(bind0) {
				same = false
				break
			}
		}
		if !same {
			continue
		}
		// Initial-state invariance: the residents' shapes, abstracted to
		// cyclic positions, must form a multiset the shift maps onto
		// itself. (Dining's fixed variant fails exactly here: philosopher
		// 0's swapped fork order has no rotated twin.)
		var shapes, shifted []string
		for _, ri := range residents[bi] {
			t := roots[ri]
			for p, ci := range order {
				t = types.Subst(t, mention[ci], types.Var{Name: ph[p]})
			}
			shapes = append(shapes, types.Canon(t))
			// Two-phase shift ph[p] → ph[(p+1) mod n] through fresh
			// temporaries, so the simultaneous renaming never collides.
			t2 := t
			for p := range order {
				t2 = types.Subst(t2, ph[p], types.Var{Name: fmt.Sprintf("\x00shift%d", p)})
			}
			for p := range order {
				t2 = types.Subst(t2, fmt.Sprintf("\x00shift%d", p), types.Var{Name: ph[(p+1)%n]})
			}
			shifted = append(shifted, types.Canon(t2))
		}
		sort.Strings(shapes)
		sort.Strings(shifted)
		invariant := true
		for i := range shapes {
			if shapes[i] != shifted[i] {
				invariant = false
				break
			}
		}
		if !invariant {
			continue
		}
		slot := int32(len(s.bundles))
		names := make([]string, n)
		for p, ci := range order {
			names[p] = mention[ci]
			s.chanBundle[mention[ci]] = slot
		}
		s.bundles = append(s.bundles, names)
	}

	if len(s.classes) == 0 && int(s.firstRing) == len(s.bundles) {
		return nil
	}
	identity := make([]int32, len(s.bundles))
	for i := int32(0); i < s.firstRing; i++ {
		identity[i] = i
	}
	s.perms = [][]int32{identity}
	s.permIdx[packPerm(identity)] = 0
	s.chanMaps = []map[string]string{nil}
	s.contents = make([][]types.ID, len(s.bundles))
	s.permBuf = make([]int32, len(s.bundles))
	return s
}

// ringOrder recognises a single Hamiltonian cycle in the co-mention
// graph of one bundle: vertices are the bundle's channels, and every
// resident root mentioning exactly two of them contributes an edge. It
// returns the channels (as mention indices) in cyclic order, or nil when
// the bundle is not a simple ring — a resident touching three or more
// channels, a vertex of degree ≠ 2, or a 2-regular graph that splits
// into several cycles. Rings need at least three channels: with two, no
// simple cycle exists, so the degenerate shared-pair bundle stays
// symmetry-free.
func ringOrder(bc []int, residents []int, rootChans [][]int) []int {
	n := len(bc)
	if n < 3 {
		return nil
	}
	pos := make(map[int]int, n)
	for p, ci := range bc {
		pos[ci] = p
	}
	adj := make([][]int, n)
	addEdge := func(u, v int) {
		for _, w := range adj[u] {
			if w == v {
				return
			}
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for _, ri := range residents {
		chs := rootChans[ri]
		if len(chs) > 2 {
			return nil
		}
		if len(chs) == 2 {
			addEdge(pos[chs[0]], pos[chs[1]])
		}
	}
	for _, a := range adj {
		if len(a) != 2 {
			return nil
		}
	}
	order := make([]int, 0, n)
	prev, cur := -1, 0
	for {
		order = append(order, bc[cur])
		next := adj[cur][0]
		if next == prev {
			next = adj[cur][1]
		}
		prev, cur = cur, next
		if cur == 0 {
			break
		}
		if len(order) == n {
			return nil
		}
	}
	if len(order) != n {
		// The walk closed before visiting every channel: several disjoint
		// cycles, not one ring.
		return nil
	}
	return order
}

// envTypes lists every environment binding type, in Names order.
func envTypes(env *types.Env) []types.Type {
	var out []types.Type
	for _, n := range env.Names() {
		t, _ := env.Lookup(n)
		out = append(out, t)
	}
	return out
}

// NumBundles reports the number of permutable bundles.
func (s *Symmetry) NumBundles() int { return len(s.bundles) }

// NumClasses reports the number of interchangeability classes.
func (s *Symmetry) NumClasses() int { return len(s.classes) }

// NumRings reports the number of ring slots (cyclic group factors).
func (s *Symmetry) NumRings() int { return len(s.bundles) - int(s.firstRing) }

// Perm returns the permutation table entry p: on class slots the image
// bundle, on ring slots the rotation amount. The returned slice is
// owned by the Symmetry; callers must not mutate it.
func (s *Symmetry) Perm(p int32) []int32 { return s.perms[p] }

// SameInterner reports whether the group was detected over in — the
// precondition for applying its permutations to component IDs of another
// exploration (witness lifting walks a fresh concrete exploration, which
// must share the interner).
func (s *Symmetry) SameInterner(in *types.Interner) bool { return s.in == in }

// Compose interns the composition p∘q (apply q, then p): functional on
// class slots ((p∘q)[b] = p[q[b]]), additive modulo the ring length on
// ring slots — rotations of one ring commute.
func (s *Symmetry) Compose(p, q int32) int32 {
	if p == 0 {
		return q
	}
	if q == 0 {
		return p
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pp, qq := s.perms[p], s.perms[q]
	out := s.permBuf
	for b := range out {
		if int32(b) >= s.firstRing {
			out[b] = (pp[b] + qq[b]) % int32(len(s.bundles[b]))
		} else {
			out[b] = pp[qq[b]]
		}
	}
	return s.internPerm(out)
}

// Invert interns the inverse permutation of p. The two slot regions
// never collide: a class slot's image is itself a class bundle (classes
// permute within themselves, so pp[b] < firstRing), while a ring slot
// inverts in place.
func (s *Symmetry) Invert(p int32) int32 {
	if p == 0 {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pp := s.perms[p]
	out := s.permBuf
	for b := range out {
		if int32(b) >= s.firstRing {
			n := int32(len(s.bundles[b]))
			out[b] = (n - pp[b]) % n
		} else {
			out[pp[b]] = int32(b)
		}
	}
	return s.internPerm(out)
}

// PermuteComps applies permutation p to a component multiset: each
// component resident on bundle b is renamed onto bundle p[b]. It
// reports failure when a component cannot be placed (which a gated
// exploration never produces on canonical states).
func (s *Symmetry) PermuteComps(p int32, comps []types.ID) ([]types.ID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]types.ID, 0, len(comps))
	perm := s.perms[p]
	for _, id := range comps {
		r := s.residence(id)
		switch {
		case r.bundle == resSpanning:
			return nil, false
		case r.bundle == resFixed:
			out = append(out, id)
		case r.bundle >= s.firstRing:
			if rot := perm[r.bundle]; rot == 0 {
				out = append(out, id)
			} else {
				out = append(out, s.reify(r.abst, r.bundle, rot))
			}
		case perm[r.bundle] == r.bundle:
			out = append(out, id)
		default:
			out = append(out, s.reify(r.abst, perm[r.bundle], 0))
		}
	}
	return out, true
}

// PermuteLabel applies permutation p to a transition label by renaming
// the channels of every moved bundle inside its type components.
// Payload-free labels (τ-choice, ✔, ⊠) are invariant.
func (s *Symmetry) PermuteLabel(p int32, lab typelts.Label) typelts.Label {
	if p == 0 {
		return lab
	}
	s.mu.Lock()
	m := s.chanMap(p)
	s.mu.Unlock()
	if len(m) == 0 {
		return lab
	}
	switch l := lab.(type) {
	case typelts.Output:
		return typelts.Output{Subject: renameFree(l.Subject, m), Payload: renameFree(l.Payload, m)}
	case typelts.Input:
		return typelts.Input{Subject: renameFree(l.Subject, m), Payload: renameFree(l.Payload, m)}
	case typelts.Comm:
		return typelts.Comm{
			Sender:   renameFree(l.Sender, m),
			Receiver: renameFree(l.Receiver, m),
			Payload:  renameFree(l.Payload, m),
		}
	default:
		return lab
	}
}

// chanMap materialises (and memoises) the channel renaming of a
// permutation: for every class bundle b with p[b] ≠ b, b's i-th channel
// maps to p[b]'s i-th channel; for every ring slot with rotation r ≠ 0,
// the channel at cyclic position i maps to the one at (i+r) mod n.
func (s *Symmetry) chanMap(p int32) map[string]string {
	for int(p) >= len(s.chanMaps) {
		s.chanMaps = append(s.chanMaps, nil)
	}
	if m := s.chanMaps[p]; m != nil {
		return m
	}
	m := map[string]string{}
	for b, dst := range s.perms[p] {
		if int32(b) >= s.firstRing {
			if dst == 0 {
				continue
			}
			names := s.bundles[b]
			n := int32(len(names))
			for pos := int32(0); pos < n; pos++ {
				m[names[pos]] = names[(pos+dst)%n]
			}
			continue
		}
		if int32(b) == dst {
			continue
		}
		for pos, ch := range s.bundles[b] {
			m[ch] = s.bundles[dst][pos]
		}
	}
	s.chanMaps[p] = m
	return m
}

// residence places one component and computes its abstract shape (memoised).
func (s *Symmetry) residence(id types.ID) residence {
	if r, ok := s.res[id]; ok {
		return r
	}
	t := s.in.TypeOf(id)
	fv := types.FreeVars(t)
	b := resFixed
	for name := range fv {
		bi, ok := s.chanBundle[name]
		if !ok {
			continue
		}
		if b == resFixed {
			b = bi
		} else if b != bi {
			b = resSpanning
			break
		}
	}
	r := residence{bundle: b, abst: id}
	if b >= 0 {
		t2 := t
		for pos, ch := range s.bundles[b] {
			if !fv[ch] {
				continue
			}
			t2 = s.in.Subst(t2, ch, types.Var{Name: s.ph[pos]})
		}
		r.abst = s.in.Intern(t2)
	}
	s.res[id] = r
	return r
}

// reify renames an abstract shape onto a bundle's channels, position p
// landing on channel (p+rot) mod n — rot is always 0 for class bundles
// and selects the rotation for ring slots (memoised).
func (s *Symmetry) reify(abst types.ID, bundle, rot int32) types.ID {
	key := reifyKey{abst: abst, bundle: bundle, rot: rot}
	if id, ok := s.reifyMemo[key]; ok {
		return id
	}
	names := s.bundles[bundle]
	n := int32(len(names))
	t := s.in.TypeOf(abst)
	for pos := int32(0); pos < n; pos++ {
		t = s.in.Subst(t, s.ph[pos], types.Var{Name: names[(pos+rot)%n]})
	}
	id := s.in.Intern(t)
	s.reifyMemo[key] = id
	return id
}

// rankOfAbst assigns dense first-encounter ranks to abstract shapes —
// the comparison key of the canonical order. Ranks are assigned on the
// single-threaded registration side in deterministic encounter order,
// mirroring builder.rankOf for component IDs.
func (s *Symmetry) rankOfAbst(id types.ID) int32 {
	if r, ok := s.abstRank[id]; ok {
		return r
	}
	r := int32(len(s.abstRank))
	s.abstRank[id] = r
	return r
}

// fillContents distributes a state's components over the permutable
// bundles (abstract shapes, sorted by rank) and the fixed remainder. It
// reports false when any component spans bundles.
func (s *Symmetry) fillContents(comps []types.ID) bool {
	for i := range s.contents {
		s.contents[i] = s.contents[i][:0]
	}
	s.fixed = s.fixed[:0]
	for _, id := range comps {
		r := s.residence(id)
		switch r.bundle {
		case resSpanning:
			return false
		case resFixed:
			s.fixed = append(s.fixed, id)
		default:
			s.rankOfAbst(r.abst)
			s.contents[r.bundle] = append(s.contents[r.bundle], r.abst)
		}
	}
	for bi := range s.contents {
		c := s.contents[bi]
		for i := 1; i < len(c); i++ {
			for j := i; j > 0 && s.abstRank[c[j]] < s.abstRank[c[j-1]]; j-- {
				c[j], c[j-1] = c[j-1], c[j]
			}
		}
	}
	return true
}

// lessContents orders two bundles' content vectors lexicographically by
// abstract rank (ties broken by length).
func (s *Symmetry) lessContents(a, b int32) bool {
	ca, cb := s.contents[a], s.contents[b]
	n := len(ca)
	if len(cb) < n {
		n = len(cb)
	}
	for i := 0; i < n; i++ {
		ra, rb := s.abstRank[ca[i]], s.abstRank[cb[i]]
		if ra != rb {
			return ra < rb
		}
	}
	return len(ca) < len(cb)
}

func (s *Symmetry) equalContents(a, b int32) bool {
	ca, cb := s.contents[a], s.contents[b]
	if len(ca) != len(cb) {
		return false
	}
	for i := range ca {
		if ca[i] != cb[i] {
			return false
		}
	}
	return true
}

// canonicalise maps a component multiset to its orbit representative.
// Within each class, bundle contents are stably sorted into canonical
// order and reified back onto the class's bundles; each ring is turned
// to the rotation whose sorted content vector is lexicographically
// minimal by abstract rank (ties keep the smallest rotation, so a
// rotation-fixed ring stays put). The two decisions are independent —
// the group is a direct product on disjoint channels — so the pass
// first decides the full permutation, then builds the representative.
// It returns the canonical multiset (freshly allocated when it differs
// from the input) and the interned permutation π with
// canonical = π(input); (input, 0) when the state is already canonical
// or cannot be placed.
func (s *Symmetry) canonicalise(comps []types.ID) ([]types.ID, int32) {
	if !s.fillContents(comps) {
		return comps, 0
	}
	perm := s.permBuf
	identity := true
	ord := s.ordBuf[:0]
	for _, cls := range s.classes {
		k := len(cls)
		base := len(ord)
		for j := 0; j < k; j++ {
			ord = append(ord, int32(j))
		}
		o := ord[base:]
		for i := 1; i < k; i++ {
			for j := i; j > 0 && s.lessContents(cls[o[j]], cls[o[j-1]]); j-- {
				o[j], o[j-1] = o[j-1], o[j]
			}
		}
		for j := 0; j < k; j++ {
			if o[j] != int32(j) {
				identity = false
			}
			perm[cls[o[j]]] = cls[j]
		}
	}
	for slot := s.firstRing; slot < int32(len(s.bundles)); slot++ {
		rot := s.bestRotation(slot)
		perm[slot] = rot
		if rot != 0 {
			identity = false
		}
	}
	s.ordBuf = ord
	if identity {
		return comps, 0
	}
	out := make([]types.ID, 0, len(comps))
	out = append(out, s.fixed...)
	base := 0
	for _, cls := range s.classes {
		o := ord[base : base+len(cls)]
		base += len(cls)
		for j, dst := range cls {
			for _, abst := range s.contents[cls[o[j]]] {
				out = append(out, s.reify(abst, dst, 0))
			}
		}
	}
	for slot := s.firstRing; slot < int32(len(s.bundles)); slot++ {
		for _, abst := range s.contents[slot] {
			out = append(out, s.reify(abst, slot, perm[slot]))
		}
	}
	return out, s.internPerm(perm)
}

// bestRotation returns the rotation r minimising the ring slot's sorted
// content vector — the reifications of the slot's resident shapes at
// rotation r, ordered and compared by abstract rank. Because the shapes
// of a rotated state at rotation r coincide with the original state's
// at rotation r+d, two states of one orbit enumerate the same candidate
// set and pick the same minimum, which is what makes the lex-min
// representative canonical. Ranks are first-encounter and assigned here
// on the single-threaded registration side (rotations ascending,
// contents in sorted order), so the choice is deterministic at any
// worker count. O(n²·|contents|) per state with n the ring length.
func (s *Symmetry) bestRotation(slot int32) int32 {
	n := int32(len(s.bundles[slot]))
	best := int32(0)
	s.rotA = s.buildRotation(slot, 0, s.rotA[:0])
	for r := int32(1); r < n; r++ {
		s.rotB = s.buildRotation(slot, r, s.rotB[:0])
		if s.lessVec(s.rotB, s.rotA) {
			best = r
			s.rotA, s.rotB = s.rotB, s.rotA
		}
	}
	return best
}

// buildRotation appends the ring slot's contents reified at rotation
// rot, rank-registered and sorted by rank.
func (s *Symmetry) buildRotation(slot, rot int32, buf []types.ID) []types.ID {
	for _, abst := range s.contents[slot] {
		id := s.reify(abst, slot, rot)
		s.rankOfAbst(id)
		buf = append(buf, id)
	}
	s.sortByRank(buf)
	return buf
}

func (s *Symmetry) sortByRank(c []types.ID) {
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && s.abstRank[c[j]] < s.abstRank[c[j-1]]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
}

// lessVec lexicographically compares two equal-length rank-sorted
// vectors by abstract rank.
func (s *Symmetry) lessVec(a, b []types.ID) bool {
	for i := range a {
		ra, rb := s.abstRank[a[i]], s.abstRank[b[i]]
		if ra != rb {
			return ra < rb
		}
	}
	return false
}

func (s *Symmetry) equalVec(a, b []types.ID) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// orbitSize returns |orbit(state)| — the number of distinct concrete
// states the canonical state represents: the product over classes of
// the multinomials counting distinct assignments of the class's content
// multisets to its bundles, times n/|stabiliser| for each ring of
// length n (the rotations fixing a ring's content multiset form a
// subgroup of C_n, so the division is exact — orbit–stabiliser).
// Saturates at MaxInt64; returns 1 for states the canonicaliser could
// not place.
func (s *Symmetry) orbitSize(comps []types.ID) int64 {
	if !s.fillContents(comps) {
		return 1
	}
	ord := s.ordBuf
	orbit := int64(1)
	for _, cls := range s.classes {
		k := len(cls)
		ord = ord[:0]
		for j := 0; j < k; j++ {
			ord = append(ord, int32(j))
		}
		for i := 1; i < k; i++ {
			for j := i; j > 0 && s.lessContents(cls[ord[j]], cls[ord[j-1]]); j-- {
				ord[j], ord[j-1] = ord[j-1], ord[j]
			}
		}
		remaining := k
		for lo := 0; lo < k; {
			hi := lo + 1
			for hi < k && s.equalContents(cls[ord[lo]], cls[ord[hi]]) {
				hi++
			}
			orbit = satMul(orbit, binomial(remaining, hi-lo))
			remaining -= hi - lo
			lo = hi
		}
	}
	s.ordBuf = ord
	for slot := s.firstRing; slot < int32(len(s.bundles)); slot++ {
		n := int32(len(s.bundles[slot]))
		stab := int64(1)
		s.rotA = s.buildRotation(slot, 0, s.rotA[:0])
		for r := int32(1); r < n; r++ {
			s.rotB = s.buildRotation(slot, r, s.rotB[:0])
			if s.equalVec(s.rotA, s.rotB) {
				stab++
			}
		}
		orbit = satMul(orbit, int64(n)/stab)
	}
	return orbit
}

// internPerm interns a permutation vector, returning its dense table
// index (assigned in first-encounter order on the registration side,
// hence deterministic).
func (s *Symmetry) internPerm(p []int32) int32 {
	key := packPerm(p)
	if i, ok := s.permIdx[key]; ok {
		return i
	}
	i := int32(len(s.perms))
	s.perms = append(s.perms, append([]int32{}, p...))
	s.permIdx[key] = i
	return i
}

func packPerm(p []int32) string {
	buf := make([]byte, 0, 4*len(p))
	for _, v := range p {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(buf)
}

// binomial computes C(n, k) exactly (the running product is divisible
// at every step), saturating at MaxInt64.
func binomial(n, k int) int64 {
	if k > n-k {
		k = n - k
	}
	b := int64(1)
	for i := 1; i <= k; i++ {
		f := int64(n - k + i)
		if b > math.MaxInt64/f {
			return math.MaxInt64
		}
		b = b * f / int64(i)
	}
	return b
}

func satMul(a, b int64) int64 {
	if b != 0 && a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// subjectsSafe checks the static channel discipline of one type: every
// In/Out channel position holds variables (possibly a union of them),
// and every input binder that is itself used in channel position has an
// environment witness for its domain — so witness-only early input only
// ever substitutes environment variables into channel positions.
func subjectsSafe(env *types.Env, t types.Type) bool {
	ok := true
	checkSubject := func(sub types.Type) {
		for _, leaf := range types.FlattenUnion(sub) {
			if _, isVar := leaf.(types.Var); !isVar {
				ok = false
			}
		}
	}
	var walk func(types.Type)
	walk = func(t types.Type) {
		if !ok {
			return
		}
		switch t := t.(type) {
		case types.Union:
			walk(t.L)
			walk(t.R)
		case types.Pi:
			walk(t.Dom)
			walk(t.Cod)
		case types.Rec:
			walk(t.Body)
		case types.ChanIO:
			walk(t.Elem)
		case types.ChanI:
			walk(t.Elem)
		case types.ChanO:
			walk(t.Elem)
		case types.Par:
			walk(t.L)
			walk(t.R)
		case types.Out:
			checkSubject(t.Ch)
			walk(t.Payload)
			walk(t.Cont)
		case types.In:
			checkSubject(t.Ch)
			pi, isPi := t.Cont.(types.Pi)
			if !isPi {
				// [T→i] anchors its binder analysis on the syntactic Π.
				ok = false
				return
			}
			walk(pi.Dom)
			if pi.Var != "" && occursInChanPos(pi.Cod, pi.Var) && !hasEnvWitness(env, pi.Dom) {
				ok = false
				return
			}
			walk(pi.Cod)
		}
	}
	walk(t)
	return ok
}

// occursInChanPos reports whether the free variable v occurs in some
// In/Out channel position of t.
func occursInChanPos(t types.Type, v string) bool {
	switch t := t.(type) {
	case types.Union:
		return occursInChanPos(t.L, v) || occursInChanPos(t.R, v)
	case types.Pi:
		if t.Var == v {
			return occursInChanPos(t.Dom, v)
		}
		return occursInChanPos(t.Dom, v) || occursInChanPos(t.Cod, v)
	case types.Rec:
		return occursInChanPos(t.Body, v)
	case types.ChanIO:
		return occursInChanPos(t.Elem, v)
	case types.ChanI:
		return occursInChanPos(t.Elem, v)
	case types.ChanO:
		return occursInChanPos(t.Elem, v)
	case types.Par:
		return occursInChanPos(t.L, v) || occursInChanPos(t.R, v)
	case types.Out:
		if subjectMentions(t.Ch, v) {
			return true
		}
		return occursInChanPos(t.Payload, v) || occursInChanPos(t.Cont, v)
	case types.In:
		if subjectMentions(t.Ch, v) {
			return true
		}
		return occursInChanPos(t.Cont, v)
	default:
		return false
	}
}

func subjectMentions(sub types.Type, v string) bool {
	for _, leaf := range types.FlattenUnion(sub) {
		if lv, ok := leaf.(types.Var); ok && lv.Name == v {
			return true
		}
	}
	return false
}

// hasEnvWitness reports whether some environment variable is a subtype
// of dom — the Thm. 4.10 footnote condition under which witness-only
// early input drops the anonymous instance.
func hasEnvWitness(env *types.Env, dom types.Type) bool {
	for _, n := range env.Names() {
		if types.Subtype(env, types.Var{Name: n}, dom) {
			return true
		}
	}
	return false
}

// collectBinders records every Π-binder name in t.
func collectBinders(t types.Type, out map[string]bool) {
	switch t := t.(type) {
	case types.Union:
		collectBinders(t.L, out)
		collectBinders(t.R, out)
	case types.Pi:
		if t.Var != "" {
			out[t.Var] = true
		}
		collectBinders(t.Dom, out)
		collectBinders(t.Cod, out)
	case types.Rec:
		collectBinders(t.Body, out)
	case types.ChanIO:
		collectBinders(t.Elem, out)
	case types.ChanI:
		collectBinders(t.Elem, out)
	case types.ChanO:
		collectBinders(t.Elem, out)
	case types.Out:
		collectBinders(t.Ch, out)
		collectBinders(t.Payload, out)
		collectBinders(t.Cont, out)
	case types.In:
		collectBinders(t.Ch, out)
		collectBinders(t.Cont, out)
	case types.Par:
		collectBinders(t.L, out)
		collectBinders(t.R, out)
	}
}

// walkFreeVarOccurrences visits every free Var occurrence of t in
// pre-order (deterministic first-mention order, unlike FreeVars' map).
func walkFreeVarOccurrences(t types.Type, bound []string, visit func(string)) {
	switch t := t.(type) {
	case types.Var:
		for _, b := range bound {
			if b == t.Name {
				return
			}
		}
		visit(t.Name)
	case types.Union:
		walkFreeVarOccurrences(t.L, bound, visit)
		walkFreeVarOccurrences(t.R, bound, visit)
	case types.Pi:
		walkFreeVarOccurrences(t.Dom, bound, visit)
		if t.Var != "" {
			bound = append(bound, t.Var)
		}
		walkFreeVarOccurrences(t.Cod, bound, visit)
	case types.Rec:
		walkFreeVarOccurrences(t.Body, bound, visit)
	case types.ChanIO:
		walkFreeVarOccurrences(t.Elem, bound, visit)
	case types.ChanI:
		walkFreeVarOccurrences(t.Elem, bound, visit)
	case types.ChanO:
		walkFreeVarOccurrences(t.Elem, bound, visit)
	case types.Out:
		walkFreeVarOccurrences(t.Ch, bound, visit)
		walkFreeVarOccurrences(t.Payload, bound, visit)
		walkFreeVarOccurrences(t.Cont, bound, visit)
	case types.In:
		walkFreeVarOccurrences(t.Ch, bound, visit)
		walkFreeVarOccurrences(t.Cont, bound, visit)
	case types.Par:
		walkFreeVarOccurrences(t.L, bound, visit)
		walkFreeVarOccurrences(t.R, bound, visit)
	}
}

// renameFree renames free variable occurrences of t along m. Capture is
// impossible by construction: DetectSymmetry freezes any bundle whose
// channels collide with a binder name, so neither sources nor targets
// are ever bound in t.
func renameFree(t types.Type, m map[string]string) types.Type {
	switch t := t.(type) {
	case types.Var:
		if to, ok := m[t.Name]; ok {
			return types.Var{Name: to}
		}
		return t
	case types.Union:
		return types.Union{L: renameFree(t.L, m), R: renameFree(t.R, m)}
	case types.Pi:
		return types.Pi{Var: t.Var, Dom: renameFree(t.Dom, m), Cod: renameFree(t.Cod, m)}
	case types.Rec:
		return types.Rec{Var: t.Var, Body: renameFree(t.Body, m)}
	case types.ChanIO:
		return types.ChanIO{Elem: renameFree(t.Elem, m)}
	case types.ChanI:
		return types.ChanI{Elem: renameFree(t.Elem, m)}
	case types.ChanO:
		return types.ChanO{Elem: renameFree(t.Elem, m)}
	case types.Out:
		return types.Out{Ch: renameFree(t.Ch, m), Payload: renameFree(t.Payload, m), Cont: renameFree(t.Cont, m)}
	case types.In:
		return types.In{Ch: renameFree(t.Ch, m), Cont: renameFree(t.Cont, m)}
	case types.Par:
		return types.Par{L: renameFree(t.L, m), R: renameFree(t.R, m)}
	default:
		return t
	}
}
