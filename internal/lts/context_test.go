package lts

// Cancellation coverage for all three exploration engines. Promptness
// is asserted structurally (bounded discovered-state counts), not with
// wall-clock sleeps: the engines poll the context at deterministic
// points, so a context cancelled after N states can never discover the
// whole space.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// unboundedCounter builds an infinite-state system (a µ-free output
// chain would be finite; instead each step spawns a fresh parallel
// sender), so only the bound or the context can stop exploration.
func unboundedCounter() (*typelts.Semantics, types.Type) {
	env := types.EnvOf("c", types.ChanIO{Elem: types.Int{}})
	// µt. c!Int . (t ‖ c!Int.nil): every unfolding adds one more pending
	// sender component — states grow without bound.
	leaf := types.Out{Ch: types.Var{Name: "c"}, Payload: types.Int{}, Cont: types.Thunk(types.Nil{})}
	rec := types.Rec{Var: "t", Body: types.Out{Ch: types.Var{Name: "c"}, Payload: types.Int{},
		Cont: types.Thunk(types.Par{L: types.RecVar{Name: "t"}, R: leaf})}}
	return &typelts.Semantics{Env: env}, rec
}

// flipCtx is a context whose Err flips to Canceled after a fixed number
// of polls: deterministic mid-exploration cancellation with no timing
// dependence and no goroutines. Done stays nil (like Background), which
// also covers the engines' nil-Done path.
type flipCtx struct {
	context.Context
	polls, after int
}

func (c *flipCtx) Err() error {
	c.polls++
	if c.polls > c.after {
		return context.Canceled
	}
	return nil
}

func TestExploreContextCancelledSerial(t *testing.T) {
	sem, init := unboundedCounter()
	ctx := &flipCtx{Context: context.Background(), after: 3}
	m, err := ExploreContext(ctx, sem, init, Options{
		Parallelism: 1,
		MaxStates:   1 << 19,
	})
	if err == nil {
		t.Fatal("cancelled exploration must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got: %v", err)
	}
	// Prompt: the flip happens within the first few cancel strides, far
	// from the state bound.
	if m.Len() > 16*cancelStride {
		t.Errorf("exploration ran on after cancellation: %d states", m.Len())
	}
}

func TestExploreContextCancelledParallel(t *testing.T) {
	sem, init := unboundedCounter()
	ctx := &flipCtx{Context: context.Background(), after: 3}
	m, err := ExploreContext(ctx, sem, init, Options{
		Parallelism: 4,
		MaxStates:   1 << 19,
	})
	if err == nil {
		t.Fatal("cancelled parallel exploration must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got: %v", err)
	}
	// The parallel engine polls per level and per inline stride; the
	// counter's frontier grows by ~one per level, so overshoot is small.
	if m.Len() > 64*cancelStride {
		t.Errorf("parallel exploration ran on after cancellation: %d states", m.Len())
	}
}

func TestIncrementalContextCancelled(t *testing.T) {
	sem, init := unboundedCounter()
	ctx, cancel := context.WithCancel(context.Background())
	inc := NewIncrementalContext(ctx, sem, init, Options{MaxStates: 1 << 19})
	// Expand a few states, then cancel: the next expansion must fail and
	// the error must be sticky.
	if _, err := inc.Succ(0); err != nil {
		t.Fatal(err)
	}
	cancel()
	s := inc.Len() - 1
	if _, err := inc.Succ(s); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got: %v", err)
	}
	if inc.Err() == nil || !errors.Is(inc.Err(), context.Canceled) {
		t.Errorf("cancellation must stick: %v", inc.Err())
	}
	// Already-expanded states keep serving their cached edges.
	if _, err := inc.Succ(0); err != nil {
		t.Errorf("expanded state must stay readable after cancellation: %v", err)
	}
}

// TestExploreCancelledSharedCacheReusable: a cancelled exploration must
// leave a shared cache fully usable — re-running the identical
// exploration to completion produces an LTS byte-identical to one built
// on a virgin cache.
func TestExploreCancelledSharedCacheReusable(t *testing.T) {
	base, init := pingPong()
	// Cache compatibility is by *Env pointer identity: derive every
	// semantics from one base so they can share caches.
	mkSem := func(c *typelts.Cache) *typelts.Semantics {
		clone := *base
		clone.Cache = c
		return &clone
	}

	shared := typelts.NewCache(base.Env, base.WitnessOnly)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExploreContext(ctx, mkSem(shared), init, Options{Parallelism: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got: %v", err)
	}

	warm, err := Explore(mkSem(shared), init, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Explore(mkSem(typelts.NewCache(base.Env, base.WitnessOnly)), init, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(warm) != fingerprint(cold) {
		t.Error("exploration on a cancellation-survivor cache differs from a virgin cache")
	}
}

// fingerprint renders the full LTS structure for byte comparison.
func fingerprint(m *LTS) string {
	s := fmt.Sprintf("init=%d;", m.Initial)
	for i, lab := range m.Labels {
		s += fmt.Sprintf("L%d=%s;", i, lab.Key())
	}
	for st := range m.States {
		s += fmt.Sprintf("s%d:", st)
		for _, e := range m.Out(st) {
			s += fmt.Sprintf("(%d→%d)", e.Label, e.Dst)
		}
		s += ";"
	}
	return s
}
