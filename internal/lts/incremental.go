package lts

// This file implements the on-demand exploration engine behind on-the-fly
// model checking (the early-exit mode of verify.Request): instead of
// materialising the whole reachable state space up front, an Incremental
// expands a state's successors the first time the checker asks for them.
// The nested DFS of mucalc.CheckModel stops at the first accepting lasso,
// so on a failing property the unexplored remainder of the state space is
// never built — the measurable win the early-exit acceptance tests assert
// on the philosophers systems.
//
// Each state's expansion runs through exactly the same builder machinery
// as the serial engine (expandInto, completeRun, internState), so the
// edges of any given state — and hence the witness the checker extracts —
// are identical to what the full exploration would produce for that
// state. Only the *numbering* of states can differ from Explore's
// BFS numbering, because discovery order follows the DFS: state IDs in an
// Incremental are meaningful only relative to itself and its Snapshot.

import (
	"context"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// Incremental is an on-demand LTS explorer. It satisfies mucalc.Model:
// Succ materialises a state's successors on first request. Not safe for
// concurrent use — on-the-fly checking is inherently DFS-driven and
// serial.
type Incremental struct {
	b *builder
	// lo/hi are the per-state extents into the flat edge array, -1 when
	// the state has not been expanded yet. A state's edges are contiguous
	// because an expansion appends them all before returning.
	lo, hi   []int32
	expanded int
	err      error
}

// NewIncremental prepares on-demand exploration of init under the given
// semantics. Options.Parallelism is ignored (the engine is serial by
// nature); MaxStates bounds the number of *discovered* states exactly as
// in Explore — once exceeded, every further expansion fails with the
// state-bound error.
func NewIncremental(sem *typelts.Semantics, init types.Type, opts Options) *Incremental {
	return NewIncrementalContext(context.Background(), sem, init, opts)
}

// NewIncrementalContext is NewIncremental with cancellation: every Succ
// expansion polls ctx first, and a cancelled context makes the expansion
// (and every later one) fail with an error wrapping ctx.Err() — which
// aborts the driving nested DFS. Already-expanded states keep serving
// their cached edges, so the explored fragment stays internally
// consistent.
func NewIncrementalContext(ctx context.Context, sem *typelts.Semantics, init types.Type, opts Options) *Incremental {
	x := &Incremental{b: prepBuilder(ctx, sem, init, opts), lo: []int32{-1}, hi: []int32{-1}}
	if x.b.por != nil {
		// The incremental engine expands states in checker-driven DFS
		// order, not state-number order, so the cycle proviso's
		// "already decided" predicate is the expansion map itself.
		x.b.porExpanded = func(s int32) bool {
			return int(s) < len(x.lo) && x.lo[s] >= 0
		}
	}
	return x
}

// Initial is the initial state index (always 0).
func (x *Incremental) Initial() int { return x.b.l.Initial }

// Labels is the dense label alphabet discovered so far; indices are
// stable, the slice only grows.
func (x *Incremental) Labels() []typelts.Label { return x.b.l.Labels }

// Len is the number of states discovered so far (expanded states plus
// registered-but-unexpanded successors).
func (x *Incremental) Len() int { return len(x.b.l.States) }

// Expanded is the number of states whose successors were materialised.
func (x *Incremental) Expanded() int { return x.expanded }

// Err returns the sticky exploration error (state bound exceeded), if any.
func (x *Incremental) Err() error { return x.err }

// StateType returns the representative type of a discovered state.
func (x *Incremental) StateType(s int) types.Type { return x.b.l.States[s] }

// StateComps returns the rank-sorted component multiset of a discovered
// state. The slice is owned by the explorer; callers must not mutate it.
func (x *Incremental) StateComps(s int) []types.ID { return x.b.stateComps[s] }

// Succ returns the outgoing edges of state s, expanding it on first
// request. Expansion registers s's successor states (growing Len) and
// completes the run of edge-less states with ✔/⊠ exactly like Explore.
// Once the state bound is exceeded the error is sticky: the fragment
// explored so far is no longer extended.
func (x *Incremental) Succ(s int) ([]Edge, error) {
	if s < len(x.lo) && x.lo[s] >= 0 {
		// Three-index slice: the flat edge array is shared by every
		// expanded state, so a caller append must reallocate instead of
		// overwriting a neighbour's edges.
		return x.b.l.edges[x.lo[s]:x.hi[s]:x.hi[s]], nil
	}
	if x.err != nil {
		return nil, x.err
	}
	if x.b.ctx.Err() != nil {
		x.err = x.b.cancelled()
		return nil, x.err
	}
	x.grow()
	if len(x.b.l.States) > x.b.maxStates {
		x.err = x.b.boundExceeded()
		return nil, x.err
	}
	from := int32(len(x.b.l.edges))
	x.b.beginState()
	x.b.porCur = int32(s)
	x.b.expandInto(from, x.b.stateComps[s])
	x.b.completeRun(s, from)
	x.grow() // expansion may have discovered new states
	hi := int32(len(x.b.l.edges))
	x.lo[s], x.hi[s] = from, hi
	x.expanded++
	if x.expanded%progressStride == 0 {
		x.b.report(x.expanded)
	}
	return x.b.l.edges[from:hi:hi], nil
}

// grow pads the extent arrays to cover newly discovered states.
func (x *Incremental) grow() {
	for len(x.lo) < len(x.b.l.States) {
		x.lo = append(x.lo, -1)
		x.hi = append(x.hi, -1)
	}
}

// Snapshot assembles the explored fragment into an LTS: expanded states
// keep their edges (in the engine's canonical per-state order),
// unexpanded states have none. The result is marked Partial unless every
// discovered state was expanded, and Truncated if the state bound was
// hit. Witness runs extracted by the checker only visit expanded states,
// so they validate against the snapshot.
func (x *Incremental) Snapshot() *LTS {
	l := &LTS{
		Initial:   x.b.l.Initial,
		Truncated: x.b.l.Truncated,
		States:    append([]types.Type{}, x.b.l.States...),
		Labels:    append([]typelts.Label{}, x.b.l.Labels...),
	}
	var sym *SymInfo
	if src := x.b.l.Sym; src != nil {
		sym = &SymInfo{
			S:          src.S,
			RootPerm:   src.RootPerm,
			OrbitSizes: append([]int64{}, src.OrbitSizes...),
		}
		l.Sym = sym
	}
	l.start = make([]int32, 1, len(l.States)+1)
	for s := range l.States {
		if s < len(x.lo) && x.lo[s] >= 0 {
			l.edges = append(l.edges, x.b.l.edges[x.lo[s]:x.hi[s]]...)
			if sym != nil {
				sym.edgePerms = append(sym.edgePerms, x.b.l.Sym.edgePerms[x.lo[s]:x.hi[s]]...)
			}
		}
		l.start = append(l.start, int32(len(l.edges)))
	}
	l.Partial = x.expanded < len(l.States)
	return l
}
