package lts

import (
	"strings"
	"testing"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

func tv(n string) types.Type { return types.Var{Name: n} }

func pingPong() (*typelts.Semantics, types.Type) {
	env := types.EnvOf(
		"y", types.ChanIO{Elem: types.Str{}},
		"z", types.ChanIO{Elem: types.ChanO{Elem: types.Str{}}},
	)
	t := types.Par{
		L: types.Out{Ch: tv("z"), Payload: tv("y"),
			Cont: types.Thunk(types.In{Ch: tv("y"), Cont: types.Pi{Var: "r", Dom: types.Str{}, Cod: types.Nil{}}})},
		R: types.In{Ch: tv("z"),
			Cont: types.Pi{Var: "w", Dom: types.ChanO{Elem: types.Str{}},
				Cod: types.Out{Ch: tv("w"), Payload: types.Str{}, Cont: types.Thunk(types.Nil{})}}},
	}
	return &typelts.Semantics{Env: env, Observable: map[string]bool{}, WitnessOnly: true}, t
}

func TestExploreClosedPingPong(t *testing.T) {
	sem, t0 := pingPong()
	m, err := Explore(sem, t0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Closed: τ[z,z] then τ[y,y] then termination — three states.
	if m.Len() != 3 {
		t.Errorf("states = %d, want 3", m.Len())
	}
	if m.Deadlocked() {
		t.Error("ping-pong must terminate cleanly (✔), not deadlock")
	}
	// Final state self-loops on ✔.
	sawDone := false
	for s := 0; s < m.Len(); s++ {
		for _, e := range m.Out(s) {
			if _, ok := m.LabelOf(e).(typelts.Done); ok {
				sawDone = true
			}
		}
	}
	if !sawDone {
		t.Error("terminated state must carry a ✔ completion loop")
	}
}

func TestEveryStateHasSuccessor(t *testing.T) {
	sem, t0 := pingPong()
	m, err := Explore(sem, t0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.Len(); i++ {
		if len(m.Out(i)) == 0 {
			t.Errorf("state %d (%s) has no outgoing edge: runs must be completed", i, m.States[i])
		}
	}
}

func TestAlphabetDeterministic(t *testing.T) {
	sem, t0 := pingPong()
	m, _ := Explore(sem, t0, Options{})
	a1 := m.Alphabet()
	a2 := m.Alphabet()
	if len(a1) != len(a2) {
		t.Fatal("alphabet size changed between calls")
	}
	for i := range a1 {
		if a1[i].Key() != a2[i].Key() {
			t.Fatal("alphabet order not deterministic")
		}
	}
}

func TestStateBound(t *testing.T) {
	// An unbounded counter-ish type family cannot be built with finite
	// control; instead force a tiny bound on a legal system.
	sem, t0 := pingPong()
	_, err := Explore(sem, t0, Options{MaxStates: 1})
	if err == nil {
		t.Fatal("exploration must fail when the bound is exceeded")
	}
	if !strings.Contains(err.Error(), "state bound") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestDeadlockCompletion(t *testing.T) {
	// A lone output with no partner under a closed limitation is stuck.
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	sem := &typelts.Semantics{Env: env, Observable: map[string]bool{}}
	t0 := types.Out{Ch: tv("x"), Payload: types.Int{}, Cont: types.Thunk(types.Nil{})}
	m, err := Explore(sem, t0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Deadlocked() {
		t.Error("a partnerless output under ↑∅ must be reported as deadlocked")
	}
}

func TestDOTOutput(t *testing.T) {
	sem, t0 := pingPong()
	m, _ := Explore(sem, t0, Options{})
	dot := m.DOT()
	for _, want := range []string{"digraph", "init ->", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestNumEdges(t *testing.T) {
	sem, t0 := pingPong()
	m, _ := Explore(sem, t0, Options{})
	if m.NumEdges() < m.Len() {
		t.Errorf("completed LTS must have ≥ one edge per state: %d edges, %d states", m.NumEdges(), m.Len())
	}
}
