package lts

import (
	"strings"
	"testing"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// TestIncrementalFullyExpandedMatchesExplore: expanding every discovered
// state in index order replays exactly the serial BFS, so the snapshot
// must be byte-identical to Explore's LTS — states, alphabet, CSR arrays.
func TestIncrementalFullyExpandedMatchesExplore(t *testing.T) {
	for _, fx := range exploreFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			full, err := Explore(fx.sem(), fx.init, Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			inc := NewIncremental(fx.sem(), fx.init, Options{})
			for s := 0; s < inc.Len(); s++ {
				if _, err := inc.Succ(s); err != nil {
					t.Fatalf("Succ(%d): %v", s, err)
				}
			}
			snap := inc.Snapshot()
			if snap.Partial {
				t.Error("fully expanded snapshot must not be partial")
			}
			if got, want := ltsFingerprint(snap), ltsFingerprint(full); got != want {
				t.Errorf("snapshot differs from Explore\n--- explore ---\n%s--- snapshot ---\n%s", want, got)
			}
			if inc.Expanded() != full.Len() {
				t.Errorf("expanded %d states, Explore found %d", inc.Expanded(), full.Len())
			}
		})
	}
}

// TestIncrementalSuccIsStable: repeated Succ calls return the same edges,
// and expansion completes edge-less states with the ✔/⊠ self-loop.
func TestIncrementalSuccIsStable(t *testing.T) {
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	stuck := types.Out{Ch: tv("x"), Payload: types.Int{}, Cont: types.Thunk(types.Nil{})}
	sem := &typelts.Semantics{Env: env, Observable: map[string]bool{}}
	inc := NewIncremental(sem, stuck, Options{})
	first, err := inc.Succ(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 1 {
		t.Fatalf("stuck output under closed limitation: want 1 completion edge, got %d", len(first))
	}
	if _, ok := inc.Labels()[first[0].Label].(typelts.Stuck); !ok {
		t.Errorf("completion label %v, want ⊠", inc.Labels()[first[0].Label])
	}
	again, err := inc.Succ(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(first) || again[0] != first[0] {
		t.Errorf("repeated Succ changed: %v then %v", first, again)
	}
	if inc.Expanded() != 1 {
		t.Errorf("expanded = %d after two Succ(0) calls, want 1", inc.Expanded())
	}
}

// TestIncrementalPartialSnapshot: expanding only part of the space yields
// a Partial snapshot whose unexpanded states have no edges, while the
// expanded states' edges match the full exploration (matched by state
// canon: incremental numbering follows discovery order, not BFS order).
func TestIncrementalPartialSnapshot(t *testing.T) {
	sem, init := philosophersFixture(3)
	inc := NewIncremental(sem, init, Options{})
	if _, err := inc.Succ(0); err != nil {
		t.Fatal(err)
	}
	snap := inc.Snapshot()
	if !snap.Partial {
		t.Error("snapshot with unexpanded states must be Partial")
	}
	if snap.Len() < 2 {
		t.Fatalf("expanding the root must discover successors, got %d states", snap.Len())
	}
	if len(snap.Out(0)) == 0 {
		t.Error("expanded root has no edges in the snapshot")
	}
	for s := 1; s < snap.Len(); s++ {
		if len(snap.Out(s)) != 0 {
			t.Errorf("unexpanded state %d has %d edges in the snapshot", s, len(snap.Out(s)))
		}
	}

	// The root's edges agree with the full exploration's root edges (state
	// 0 is the root in both numberings; labels compared by key, targets by
	// canonical form).
	full, err := Explore(philosophersSem(t), init, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	render := func(m *LTS) string {
		var b strings.Builder
		for _, e := range m.Out(0) {
			b.WriteString(m.LabelOf(e).Key())
			b.WriteString("→")
			b.WriteString(types.Canon(m.States[e.Dst]))
			b.WriteString("\n")
		}
		return b.String()
	}
	if got, want := render(snap), render(full); got != want {
		t.Errorf("root edges differ between incremental and full exploration\n--- full ---\n%s--- incremental ---\n%s", want, got)
	}
}

func philosophersSem(t *testing.T) *typelts.Semantics {
	t.Helper()
	sem, _ := philosophersFixture(3)
	return sem
}

// TestIncrementalStateBound: the bound is checked per expansion exactly
// like the serial engine; once exceeded the error is sticky and the
// snapshot is flagged Truncated.
func TestIncrementalStateBound(t *testing.T) {
	sem, init := philosophersFixture(3)
	inc := NewIncremental(sem, init, Options{MaxStates: 2})
	// The root may expand (bound not yet exceeded) but discovers more than
	// two states; the next expansion must fail.
	if _, err := inc.Succ(0); err != nil {
		t.Fatalf("root expansion within bound failed: %v", err)
	}
	if inc.Len() <= 2 {
		t.Skip("fixture too small to exceed the bound")
	}
	if _, err := inc.Succ(1); err == nil {
		t.Fatal("expansion past the bound must fail")
	}
	if inc.Err() == nil || !strings.Contains(inc.Err().Error(), "state bound") {
		t.Errorf("sticky error = %v, want a state-bound error", inc.Err())
	}
	// Already expanded states still serve; new expansions keep failing.
	if _, err := inc.Succ(0); err != nil {
		t.Errorf("already expanded state must still serve after the bound: %v", err)
	}
	if _, err := inc.Succ(2); err == nil {
		t.Error("expansions after the bound must keep failing")
	}
	if snap := inc.Snapshot(); !snap.Truncated || !snap.Partial {
		t.Errorf("snapshot truncated=%v partial=%v, want both true", snap.Truncated, snap.Partial)
	}
}
