package lts

import (
	"context"
	"testing"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// quotientAsLTS converts a quotient back into a plain LTS (blocks become
// states, representative edges become edges) so the refiner itself can
// judge it: with identity classes, the quotient must be strongly
// bisimilar to the LTS it was computed from.
func quotientAsLTS(q *Quotient) *LTS {
	states := make([]types.Type, q.NumBlocks())
	adj := make([][]AdjEdge, q.NumBlocks())
	for b := 0; b < q.NumBlocks(); b++ {
		states[b] = q.Full.States[q.Rep[b]]
		for _, e := range q.Out(b) {
			adj[b] = append(adj[b], AdjEdge{Label: q.Full.Labels[e.Label], Dst: int(e.Dst)})
		}
	}
	return FromAdjacency(states, adj, q.InitialBlock())
}

// TestMinimizeBisimilarToFull: for every exploration fixture, the
// identity-class quotient is strongly bisimilar to the concrete LTS —
// the defining property of a bisimulation quotient, decided by the same
// refiner on the disjoint union (a genuinely different input).
func TestMinimizeBisimilarToFull(t *testing.T) {
	for _, fx := range exploreFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			m, err := Explore(fx.sem(), fx.init, Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			q := Minimize(m, nil)
			if q.NumBlocks() > m.Len() {
				t.Fatalf("quotient has %d blocks for %d states", q.NumBlocks(), m.Len())
			}
			if !Bisimilar(m, quotientAsLTS(q)) {
				t.Errorf("identity-class quotient is not bisimilar to the full LTS (%d states → %d blocks)", m.Len(), q.NumBlocks())
			}
		})
	}
}

// TestMinimizeStability checks the partition's defining stability
// property state by state: every concrete state must have exactly its
// block's (class, destination block) move set — i.e. every member agrees
// with the block's quotient edges, in both directions.
func TestMinimizeStability(t *testing.T) {
	sem, init := philosophersFixture(4)
	m, err := Explore(sem, init, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for name, classes := range map[string][]int32{
		"identity": nil,
		"coarse":   make([]int32, len(m.Labels)), // every label one class
	} {
		q := Minimize(m, classes)
		for s := 0; s < m.Len(); s++ {
			b := int(q.BlockOf[s])
			// Every quotient move of the block must be realisable from s...
			for _, qe := range q.Out(b) {
				if _, ok := q.FindLift(s, qe.Label, qe.Dst); !ok {
					t.Fatalf("%s: state %d (block %d) cannot fire quotient move (class %d → block %d)",
						name, s, b, q.Class(qe.Label), qe.Dst)
				}
			}
			// ...and every concrete move of s must appear as a quotient move.
			for _, e := range m.Out(s) {
				found := false
				for _, qe := range q.Out(b) {
					if q.Class(qe.Label) == q.Class(e.Label) && qe.Dst == q.BlockOf[e.Dst] {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s: concrete move of state %d (class %d → block %d) missing from block %d's quotient edges",
						name, s, q.Class(e.Label), q.BlockOf[e.Dst], b)
				}
			}
		}
	}
}

// TestMinimizeCoarseClassesCollapse: with every label in one class, the
// no-deadlock philosophers LTS — where every state can always keep
// moving — must collapse to a single block, and a system with both live
// and terminating behaviour must keep them apart under identity classes.
func TestMinimizeCoarseClassesCollapse(t *testing.T) {
	sem, init := philosophersFixture(3)
	m, err := Explore(sem, init, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	classes := make([]int32, len(m.Labels)) // all zero: one class
	q := Minimize(m, classes)
	if q.NumBlocks() != 1 {
		t.Errorf("single-class quotient of an always-live LTS: %d blocks, want 1", q.NumBlocks())
	}
	if got := q.InitialBlock(); got != 0 {
		t.Errorf("initial block = %d, want 0", got)
	}
}

// TestQuotientEncounterRankContract pins the deterministic numbering
// contract directly: block b's representative is its least member, and
// representatives are strictly increasing — blocks are numbered by the
// first concrete state that reaches them, never by map order. (The
// contract was mutation-tested: renumbering blocks through a Go map
// makes this and the byte-identity tests fail.)
func TestQuotientEncounterRankContract(t *testing.T) {
	sem, init := philosophersFixture(4)
	m, err := Explore(sem, init, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, classes := range [][]int32{nil, make([]int32, len(m.Labels))} {
		q := Minimize(m, classes)
		last := int32(-1)
		for b := 0; b < q.NumBlocks(); b++ {
			ms := q.Members(b)
			if len(ms) == 0 {
				t.Fatalf("block %d has no members", b)
			}
			if q.Rep[b] != ms[0] {
				t.Errorf("block %d: rep %d is not its least member %d", b, q.Rep[b], ms[0])
			}
			for i := 1; i < len(ms); i++ {
				if ms[i] <= ms[i-1] {
					t.Fatalf("block %d members not strictly increasing: %v", b, ms)
				}
			}
			if q.Rep[b] <= last {
				t.Errorf("representatives not strictly increasing at block %d (%d after %d): blocks are not in encounter-rank order", b, q.Rep[b], last)
			}
			last = q.Rep[b]
			for _, s := range ms {
				if q.BlockOf[s] != int32(b) {
					t.Fatalf("member table and BlockOf disagree at state %d", s)
				}
			}
		}
	}
}

// TestQuotientIndependentOfInternOrder attacks the quotient's
// determinism the same way TestExploreIndependentOfInternOrder attacks
// the explorer's: pre-intern the system's components in hostile orders
// (so interner ID values differ wildly), explore at several worker
// counts, and require the quotient fingerprint — block numbering,
// representatives, member lists, quotient CSR — to be byte-identical in
// every run.
func TestQuotientIndependentOfInternOrder(t *testing.T) {
	baselineSem, init := philosophersFixture(3)
	baseline, err := Explore(baselineSem, init, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	coarse := func(m *LTS) []int32 {
		// A two-class view (completions vs everything else): coarse
		// enough to merge states, fine enough to keep structure.
		classes := make([]int32, len(m.Labels))
		for i, lab := range m.Labels {
			if typelts.IsTau(lab) {
				classes[i] = 0
			} else {
				classes[i] = 1
			}
		}
		return classes
	}
	wantID := Minimize(baseline, nil).Fingerprint()
	wantCoarse := Minimize(baseline, coarse(baseline)).Fingerprint()

	var comps []types.Type
	seen := map[string]bool{}
	for _, s := range baseline.States {
		for _, c := range types.FlattenPar(s) {
			key := types.Canon(c)
			if !seen[key] {
				seen[key] = true
				comps = append(comps, c)
			}
		}
	}

	for trial := 0; trial < 4; trial++ {
		sem, init := philosophersFixture(3)
		sem.Cache = typelts.NewCache(sem.Env, sem.WitnessOnly)
		in := sem.Cache.Interner()
		switch trial {
		case 0: // reversed
			for i := len(comps) - 1; i >= 0; i-- {
				in.Intern(comps[i])
			}
		case 1: // rotated
			for i := range comps {
				in.Intern(comps[(i+len(comps)/2)%len(comps)])
			}
		case 2: // interleaved from both ends
			for i, j := 0, len(comps)-1; i <= j; i, j = i+1, j-1 {
				in.Intern(comps[j])
				in.Intern(comps[i])
			}
		case 3: // forward (control)
			for i := range comps {
				in.Intern(comps[i])
			}
		}
		for _, par := range []int{1, 4} {
			m, err := Explore(sem, init, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("trial %d par %d: %v", trial, par, err)
			}
			if got := Minimize(m, nil).Fingerprint(); got != wantID {
				t.Errorf("trial %d par %d: identity quotient depends on interner ID order\n--- baseline ---\n%s--- got ---\n%s", trial, par, wantID, got)
			}
			if got := Minimize(m, coarse(m)).Fingerprint(); got != wantCoarse {
				t.Errorf("trial %d par %d: coarse quotient depends on interner ID order\n--- baseline ---\n%s--- got ---\n%s", trial, par, wantCoarse, got)
			}
		}
	}
}

// TestMinimizeRepeatedRunsIdentical guards against any hidden
// nondeterminism (map iteration, allocation addresses) inside one
// process: repeated minimizations of one LTS must be byte-identical.
func TestMinimizeRepeatedRunsIdentical(t *testing.T) {
	sem, init := philosophersFixture(4)
	m, err := Explore(sem, init, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := Minimize(m, nil).Fingerprint()
	for i := 0; i < 5; i++ {
		if got := Minimize(m, nil).Fingerprint(); got != want {
			t.Fatalf("run %d: quotient differs from first run", i)
		}
	}
}

// TestMinimizeContextCancelled: a pre-cancelled context aborts the
// refinement with a classifiable error.
func TestMinimizeContextCancelled(t *testing.T) {
	sem, init := philosophersFixture(3)
	m, err := Explore(sem, init, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MinimizeContext(ctx, m, nil); err == nil {
		t.Fatal("cancelled minimization must error")
	} else if got := context.Cause(ctx); got == nil {
		t.Fatalf("unexpected cause state: %v", got)
	}
}

// TestBisimilarQuotientSizes cross-checks the refiner against the
// bisimilarity corpus from the other direction: a type and its unfolding
// explore to different LTSs whose joint quotient must put the two roots
// in one block (Bisimilar true) while separating e.g. loops on different
// channels.
func TestBisimilarQuotientSizes(t *testing.T) {
	env := types.EnvOf(
		"x", types.ChanIO{Elem: types.Int{}},
		"y", types.ChanIO{Elem: types.Int{}},
	)
	loop := func(ch string) types.Type {
		return types.Rec{Var: "t", Body: types.Out{Ch: types.Var{Name: ch}, Payload: types.Int{},
			Cont: types.Thunk(types.RecVar{Name: "t"})}}
	}
	ok, err := TypesBisimilar(env, loop("x"), types.Unfold(loop("x")), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("µt.T must be bisimilar to its unfolding under the refiner")
	}
	ok, err = TypesBisimilar(env, loop("x"), loop("y"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("loops on different channels must not be bisimilar")
	}
}
