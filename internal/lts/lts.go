// Package lts provides explicit-state labelled transition systems built
// from λπ⩽ types, with bounded exploration, run completion, alphabet
// extraction and DOT export. It is the bridge between the type semantics
// (Def. 4.2) and the linear-time model checker (Def. 4.6).
package lts

import (
	"fmt"
	"sort"
	"strings"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// Edge is a transition to state Dst firing Label.
type Edge struct {
	Label typelts.Label
	Dst   int
}

// LTS is a finite labelled transition system over type states.
// Every state has at least one outgoing edge: states with no type
// transitions are completed with a ✔ (terminated) or ⊠ (deadlock)
// self-loop so that all maximal runs are infinite (Def. 4.6 quantifies
// over complete runs; see DESIGN.md §4.4).
type LTS struct {
	States  []types.Type
	Edges   [][]Edge
	Initial int
	// Truncated reports that exploration hit the state bound; verification
	// results on a truncated LTS are not trustworthy and the verifier
	// refuses to produce them.
	Truncated bool
}

// Options configures exploration.
type Options struct {
	// MaxStates bounds the exploration (default 1 << 20).
	MaxStates int
}

// DefaultMaxStates bounds exploration when Options.MaxStates is zero.
const DefaultMaxStates = 1 << 20

// Explore builds the reachable LTS of init under the given semantics.
func Explore(sem *typelts.Semantics, init types.Type, opts Options) (*LTS, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	l := &LTS{Initial: 0}
	index := map[string]int{}

	intern := func(t types.Type) int {
		key := types.Canon(t)
		if id, ok := index[key]; ok {
			return id
		}
		id := len(l.States)
		index[key] = id
		l.States = append(l.States, t)
		l.Edges = append(l.Edges, nil)
		return id
	}

	intern(init)
	for next := 0; next < len(l.States); next++ {
		if len(l.States) > maxStates {
			l.Truncated = true
			return l, fmt.Errorf("lts: state bound %d exceeded (type may be infinite-state; see Lemma 4.7 and §5.1 limitation 2)", maxStates)
		}
		st := l.States[next]
		steps := sem.Transitions(st)
		if len(steps) == 0 {
			// Complete the run: ✔^ω for proper termination, ⊠^ω for
			// deadlock.
			var lab typelts.Label = typelts.Stuck{}
			if types.IsNilPar(st) {
				lab = typelts.Done{}
			}
			l.Edges[next] = []Edge{{Label: lab, Dst: next}}
			continue
		}
		seen := map[string]bool{}
		for _, s := range steps {
			dst := intern(s.Next)
			k := s.Label.Key() + "→" + fmt.Sprint(dst)
			if seen[k] {
				continue
			}
			seen[k] = true
			l.Edges[next] = append(l.Edges[next], Edge{Label: s.Label, Dst: dst})
		}
	}
	return l, nil
}

// Len returns the number of states.
func (l *LTS) Len() int { return len(l.States) }

// Alphabet returns one representative of every distinct label (by Key),
// sorted by key for determinism. This is the finite action set AΓ(T) of
// the paper (used by Def. 4.8 and Thm. 4.10).
func (l *LTS) Alphabet() []typelts.Label {
	byKey := map[string]typelts.Label{}
	for _, edges := range l.Edges {
		for _, e := range edges {
			byKey[e.Label.Key()] = e.Label
		}
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]typelts.Label, len(keys))
	for i, k := range keys {
		out[i] = byKey[k]
	}
	return out
}

// NumEdges returns the total number of transitions.
func (l *LTS) NumEdges() int {
	n := 0
	for _, es := range l.Edges {
		n += len(es)
	}
	return n
}

// Deadlocked reports whether any reachable state is completed with ⊠.
func (l *LTS) Deadlocked() bool {
	for _, es := range l.Edges {
		for _, e := range es {
			if _, ok := e.Label.(typelts.Stuck); ok {
				return true
			}
		}
	}
	return false
}

// DOT renders the LTS in Graphviz format for inspection.
func (l *LTS) DOT() string {
	var b strings.Builder
	b.WriteString("digraph lts {\n  rankdir=LR;\n")
	fmt.Fprintf(&b, "  init [shape=point];\n  init -> s%d;\n", l.Initial)
	for i := range l.States {
		fmt.Fprintf(&b, "  s%d [label=%q];\n", i, truncate(l.States[i].String(), 60))
	}
	for src, es := range l.Edges {
		for _, e := range es {
			fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", src, e.Dst, truncate(e.Label.String(), 40))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
