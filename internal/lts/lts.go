// Package lts provides explicit-state labelled transition systems built
// from λπ⩽ types, with bounded exploration, run completion, alphabet
// extraction and DOT export. It is the bridge between the type semantics
// (Def. 4.2) and the linear-time model checker (Def. 4.6).
//
// State identity is hash-consed: exploration interns every state in a
// types.Interner (Canon-equal states get the same integer ID), so the
// frontier set is a map over ints, not canonical strings. Labels are
// interned into a dense per-LTS alphabet, and edges live in one flat
// CSR-style array indexed by per-state offsets — which is what lets the
// model checker precompute per-Büchi-state admit bitsets and walk the
// product with plain array indexing (see DESIGN.md).
package lts

import (
	"fmt"
	"sort"
	"strings"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// Edge is a transition to state Dst firing the label with index Label in
// the owning LTS's dense alphabet (LTS.Labels).
type Edge struct {
	Label int32
	Dst   int32
}

// LTS is a finite labelled transition system over type states.
// Every state has at least one outgoing edge: states with no type
// transitions are completed with a ✔ (terminated) or ⊠ (deadlock)
// self-loop so that all maximal runs are infinite (Def. 4.6 quantifies
// over complete runs; see DESIGN.md §4.4).
type LTS struct {
	States []types.Type
	// Labels is the dense alphabet: one representative per distinct label
	// (by Key), in first-seen order. Edge.Label indexes into it.
	Labels []typelts.Label
	// edges is the flat CSR edge array; state s owns edges[start[s]:start[s+1]].
	edges []Edge
	start []int32
	// Initial is the initial state index.
	Initial int
	// Truncated reports that exploration hit the state bound; verification
	// results on a truncated LTS are not trustworthy and the verifier
	// refuses to produce them.
	Truncated bool
}

// Options configures exploration.
type Options struct {
	// MaxStates bounds the exploration (default 1 << 20).
	MaxStates int
}

// DefaultMaxStates bounds exploration when Options.MaxStates is zero.
const DefaultMaxStates = 1 << 20

// Explore builds the reachable LTS of init under the given semantics.
//
// States are represented as sorted multisets of hash-consed component
// IDs (the FlattenPar leaves), so a successor is multiset surgery —
// remove the acting components, splice in their cached replacements —
// followed by one interner lookup; no successor type tree is ever built
// or walked. Per-component steps and per-pair synchronisations come from
// the semantics' typelts.Cache. When sem carries a cache, it is reused
// (and extended), so repeated explorations of overlapping systems — the
// six Fig. 9 properties of one system, say — share their per-component
// work.
func Explore(sem *typelts.Semantics, init types.Type, opts Options) (*LTS, error) {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}

	// Attach a private cache when the semantics has none: even a single
	// exploration profits from hash-consed state identity and memoised
	// per-component steps, and the clone keeps the caller's value intact.
	if !sem.HasCompatibleCache() {
		clone := *sem
		clone.Cache = typelts.NewCache(sem.Env, sem.WitnessOnly)
		sem = &clone
	}
	in := sem.Cache.Interner()

	l := &LTS{Initial: 0, start: make([]int32, 1, 64)}
	index := make(map[types.ID]int32, 256)
	labelIdx := make(map[typelts.LabelKey]int32, 16)
	var stateComps [][]types.ID

	// internState registers the state with the given sorted component
	// multiset, materialising a representative type for new states.
	internState := func(comps []types.ID, rep types.Type) int32 {
		sid := in.InternPar(comps)
		if s, ok := index[sid]; ok {
			return s
		}
		s := int32(len(l.States))
		index[sid] = s
		if rep == nil {
			rep = in.TypeOf(sid)
		}
		l.States = append(l.States, rep)
		stateComps = append(stateComps, comps)
		return s
	}
	internLabel := func(key typelts.LabelKey, lab typelts.Label) int32 {
		if i, ok := labelIdx[key]; ok {
			return i
		}
		i := int32(len(l.Labels))
		labelIdx[key] = i
		l.Labels = append(l.Labels, lab)
		return i
	}

	internState(sem.InternLeaves(init), init)
	for next := 0; next < len(l.States); next++ {
		if len(l.States) > maxStates {
			l.Truncated = true
			l.sealTruncated()
			return l, fmt.Errorf("lts: state bound %d exceeded (type may be infinite-state; see Lemma 4.7 and §5.1 limitation 2)", maxStates)
		}
		comps := stateComps[next]
		from := l.start[next]

		// addEdge splices a successor multiset together (dropping the
		// acting positions i and j), registers it, and appends the edge,
		// deduplicating parallel (label, dst) pairs with a linear scan —
		// out-degrees are small, so this beats a per-state map.
		addEdge := func(st typelts.CompStep, i, j int) {
			succ := make([]types.ID, 0, len(comps)+len(st.Next))
			for k, c := range comps {
				if k == i || k == j {
					continue
				}
				succ = append(succ, c)
			}
			succ = append(succ, st.Next...)
			dst := internState(succ, nil)
			lid := internLabel(st.Key, st.Label)
			for _, e := range l.edges[from:] {
				if e.Label == lid && e.Dst == dst {
					return
				}
			}
			l.edges = append(l.edges, Edge{Label: lid, Dst: dst})
		}

		// Interleaving: each component may act on its own (Y-limited).
		for i := range comps {
			for _, st := range sem.ComponentSteps(comps[i]) {
				if !sem.KeepLabel(st.Label) {
					continue
				}
				addEdge(st, i, -1)
			}
		}
		// Synchronisation: an output of component i meets an input of
		// component j (i ≠ j); τ labels always survive the Y-limitation.
		for i := range comps {
			for j := range comps {
				if i == j {
					continue
				}
				for _, st := range sem.SyncSteps(comps[i], comps[j]) {
					addEdge(st, i, j)
				}
			}
		}

		if len(l.edges) == int(from) {
			// Complete the run: ✔^ω for proper termination (all components
			// terminated), ⊠^ω for deadlock.
			var lab typelts.Label = typelts.Stuck{}
			if len(comps) == 0 {
				lab = typelts.Done{}
			}
			l.edges = append(l.edges, Edge{Label: internLabel(sem.Cache.LabelKeyOf(lab), lab), Dst: int32(next)})
		}
		l.start = append(l.start, int32(len(l.edges)))
	}
	return l, nil
}

// sealTruncated pads the offset array so Out stays in bounds for the
// states that were discovered but never processed.
func (l *LTS) sealTruncated() {
	for len(l.start) < len(l.States)+1 {
		l.start = append(l.start, int32(len(l.edges)))
	}
}

// FromAdjacency builds an LTS from an explicit adjacency list — states[i]
// has the outgoing edges adj[i]. It is meant for tests and hand-built
// models; Explore is the production constructor.
func FromAdjacency(states []types.Type, adj [][]AdjEdge, initial int) *LTS {
	l := &LTS{Initial: initial, start: make([]int32, 1, len(states)+1)}
	labelIdx := map[string]int32{}
	l.States = append(l.States, states...)
	for i := range states {
		for _, e := range adj[i] {
			key := e.Label.Key()
			lid, ok := labelIdx[key]
			if !ok {
				lid = int32(len(l.Labels))
				labelIdx[key] = lid
				l.Labels = append(l.Labels, e.Label)
			}
			l.edges = append(l.edges, Edge{Label: lid, Dst: int32(e.Dst)})
		}
		l.start = append(l.start, int32(len(l.edges)))
	}
	return l
}

// AdjEdge is one labelled edge of a FromAdjacency adjacency list.
type AdjEdge struct {
	Label typelts.Label
	Dst   int
}

// Len returns the number of states.
func (l *LTS) Len() int { return len(l.States) }

// Out returns the outgoing edges of state s (a view into the flat edge
// array; callers must not mutate it).
func (l *LTS) Out(s int) []Edge {
	if s+1 >= len(l.start) {
		return nil
	}
	return l.edges[l.start[s]:l.start[s+1]]
}

// LabelOf resolves an edge's label index to the label itself.
func (l *LTS) LabelOf(e Edge) typelts.Label { return l.Labels[e.Label] }

// Alphabet returns one representative of every distinct label (by Key),
// sorted by key for determinism. This is the finite action set AΓ(T) of
// the paper (used by Def. 4.8 and Thm. 4.10).
func (l *LTS) Alphabet() []typelts.Label {
	out := make([]typelts.Label, len(l.Labels))
	copy(out, l.Labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// NumEdges returns the total number of transitions.
func (l *LTS) NumEdges() int { return len(l.edges) }

// Deadlocked reports whether any reachable state is completed with ⊠.
// Labels enter the dense alphabet only when an edge fires them, so a ⊠
// in the alphabet is equivalent to a ⊠ edge.
func (l *LTS) Deadlocked() bool {
	for _, lab := range l.Labels {
		if _, ok := lab.(typelts.Stuck); ok {
			return true
		}
	}
	return false
}

// DOT renders the LTS in Graphviz format for inspection.
func (l *LTS) DOT() string {
	var b strings.Builder
	b.WriteString("digraph lts {\n  rankdir=LR;\n")
	fmt.Fprintf(&b, "  init [shape=point];\n  init -> s%d;\n", l.Initial)
	for i := range l.States {
		fmt.Fprintf(&b, "  s%d [label=%q];\n", i, truncate(l.States[i].String(), 60))
	}
	for src := range l.States {
		for _, e := range l.Out(src) {
			fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", src, e.Dst, truncate(l.LabelOf(e).String(), 40))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
