// Package lts provides explicit-state labelled transition systems built
// from λπ⩽ types, with bounded exploration, run completion, alphabet
// extraction and DOT export. It is the bridge between the type semantics
// (Def. 4.2) and the linear-time model checker (Def. 4.6).
//
// State identity is hash-consed: exploration interns every state in a
// types.Interner (Canon-equal states get the same integer ID), so the
// frontier set is a map over ints, not canonical strings. Labels are
// interned into a dense per-LTS alphabet, and edges live in one flat
// CSR-style array indexed by per-state offsets — which is what lets the
// model checker precompute per-Büchi-state admit bitsets and walk the
// product with plain array indexing (see DESIGN.md).
package lts

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// ErrStateBound is the sentinel wrapped by every state-bound-exceeded
// error, so callers can classify the failure with errors.Is regardless of
// which engine (serial, parallel, incremental) hit the bound.
var ErrStateBound = errors.New("state bound exceeded")

// Edge is a transition to state Dst firing the label with index Label in
// the owning LTS's dense alphabet (LTS.Labels).
type Edge struct {
	Label int32
	Dst   int32
}

// LTS is a finite labelled transition system over type states.
// Every state has at least one outgoing edge: states with no type
// transitions are completed with a ✔ (terminated) or ⊠ (deadlock)
// self-loop so that all maximal runs are infinite (Def. 4.6 quantifies
// over complete runs; see DESIGN.md §4.4).
type LTS struct {
	States []types.Type
	// Labels is the dense alphabet: one representative per distinct label
	// (by Key), in first-seen order. Edge.Label indexes into it.
	Labels []typelts.Label
	// edges is the flat CSR edge array; state s owns edges[start[s]:start[s+1]].
	edges []Edge
	start []int32
	// Initial is the initial state index.
	Initial int
	// Truncated reports that exploration hit the state bound; verification
	// results on a truncated LTS are not trustworthy and the verifier
	// refuses to produce them.
	Truncated bool
	// Partial reports that the LTS is an on-demand fragment (an
	// Incremental snapshot with unexpanded states): discovered states that
	// were never expanded have no outgoing edges, so Deadlocked and
	// whole-space analyses are meaningless on it. Runs that only visit
	// expanded states — counterexample witnesses — replay fine.
	Partial bool
	// Sym is the symmetry bookkeeping of a symmetric exploration
	// (Options.Symmetry): the group, the root permutation, the per-edge
	// permutations and the per-state orbit sizes. Nil for plain
	// explorations.
	Sym *SymInfo
}

// SymInfo records the bookkeeping of a symmetric exploration. States of
// the owning LTS are orbit representatives; every edge carries the
// permutation that mapped its raw successor onto the canonical one, so
// counterexamples can be lifted back to concrete runs.
type SymInfo struct {
	// S is the group the exploration canonicalised under.
	S *Symmetry
	// RootPerm maps the caller's initial state onto the canonical root:
	// States[Initial] = RootPerm(init).
	RootPerm int32
	// edgePerms[k] is the permutation π of edge k: the raw successor u
	// of the edge's source representative satisfies dst = π(u). Aligned
	// with the LTS's flat edge array.
	edgePerms []int32
	// OrbitSizes[s] is |orbit(s)| (1 when the canonicaliser fell back to
	// the identity for lack of residence info). Aligned with States.
	OrbitSizes []int64
}

// EdgePerm returns the permutation recorded for the k-th outgoing edge
// of state s (the identity, 0, when the LTS was explored without
// symmetry).
func (l *LTS) EdgePerm(s, k int) int32 {
	if l.Sym == nil {
		return 0
	}
	return l.Sym.edgePerms[int(l.start[s])+k]
}

// Covered returns the number of concrete states the LTS represents: the
// state count itself for plain explorations, the sum of orbit sizes
// (saturating) for symmetric ones.
func (l *LTS) Covered() int64 {
	if l.Sym == nil {
		return int64(len(l.States))
	}
	var sum int64
	for _, o := range l.Sym.OrbitSizes {
		sum = satAdd(sum, o)
	}
	return sum
}

// Options configures exploration.
type Options struct {
	// MaxStates bounds the exploration (default 1 << 20).
	MaxStates int
	// Parallelism is the number of worker goroutines expanding the BFS
	// frontier (0 = GOMAXPROCS, 1 = the serial engine). Any value yields
	// the same LTS: state order, dense alphabet and the CSR edge arrays
	// are identical to the serial engine's (see DESIGN.md §parallel).
	Parallelism int
	// Progress, when non-nil, is called periodically during exploration —
	// after every BFS level in the parallel engine, every progressStride
	// expanded states in the serial one, and once at the end — with the
	// running state and edge counts. It is always called from the
	// exploration's merge (single-threaded) side, never concurrently.
	Progress func(p Progress)
	// Symmetry, when non-nil, canonicalises every registered state to
	// its orbit representative under the given channel-permutation group
	// (see DetectSymmetry), recording the applied permutation per edge
	// in LTS.Sym. It is honoured only for the explorations its
	// soundness argument covers — closed (no observable set),
	// witness-only, over the same interner the group was detected with —
	// and silently ignored otherwise. Canonicalisation runs on the
	// single-threaded registration side of every engine, so the parallel
	// determinism contract is preserved: the symmetric LTS is
	// byte-identical at any worker count.
	Symmetry *Symmetry
	// PartialOrder, when non-nil, enables exploration-time partial-order
	// reduction (see por.go): each expanded state registers an ample
	// subset of its enabled transitions instead of all of them, sound
	// for properties that only observe the labels PartialOrder.Visible
	// reports. Ample selection runs on the single-threaded registration
	// side of every engine, so the reduced LTS is byte-identical at any
	// worker count. Ignored when Symmetry is active: orbit
	// canonicalisation assumes every successor is registered, so
	// symmetry takes precedence.
	PartialOrder *POR
}

// Progress is a snapshot of a running exploration, delivered through
// Options.Progress.
type Progress struct {
	// States is the number of states discovered so far; Expanded of them
	// have had their successors computed.
	States, Expanded int
	// Edges is the number of transitions spliced so far.
	Edges int
}

// progressStride is how many states the serial engine expands between
// Progress callbacks. Exploration of one state is microseconds, so this
// keeps the callback off the hot path while still reporting every few
// hundred microseconds. cancelStride is the (smaller) interval between
// context polls: a poll is one atomic-ish check, so cancellation latency
// is bounded by a few dozen expansions.
const (
	progressStride = 512
	cancelStride   = 64
)

// DefaultMaxStates bounds exploration when Options.MaxStates is zero.
const DefaultMaxStates = 1 << 20

// Explore builds the reachable LTS of init under the given semantics.
//
// States are represented as sorted multisets of hash-consed component
// IDs (the FlattenPar leaves), so a successor is multiset surgery —
// remove the acting components, splice in their cached replacements —
// followed by one interner lookup; no successor type tree is ever built
// or walked. Per-component steps and per-pair synchronisations come from
// the semantics' typelts.Cache. When sem carries a cache, it is reused
// (and extended), so repeated explorations of overlapping systems — the
// six Fig. 9 properties of one system, say — share their per-component
// work.
//
// With Options.Parallelism ≠ 1 the reachable set is computed by a
// level-synchronised parallel BFS: workers expand a frontier's states
// concurrently against the shared (concurrency-safe) cache, and a
// single-threaded merge then assigns state IDs and splices the CSR edge
// array in (parent-index, edge-order) order — so the resulting LTS is
// identical to the serial engine's at any worker count (see DESIGN.md).
func Explore(sem *typelts.Semantics, init types.Type, opts Options) (*LTS, error) {
	return ExploreContext(context.Background(), sem, init, opts)
}

// ExploreContext is Explore with cancellation: the exploration polls ctx
// between state expansions (serial) and BFS levels / worker batches
// (parallel), and returns an error wrapping ctx.Err() as soon as the
// context is cancelled or its deadline passes. A cancelled exploration
// leaves any shared typelts.Cache fully usable — the cache is an
// append-only memo, so a later identical exploration produces the
// identical LTS (it just starts warmer).
func ExploreContext(ctx context.Context, sem *typelts.Semantics, init types.Type, opts Options) (*LTS, error) {
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	b := prepBuilder(ctx, sem, init, opts)
	if par == 1 {
		return b.l, b.exploreSerial()
	}
	return b.l, b.exploreParallel(par)
}

// prepBuilder is the shared entry point of both exploration engines
// (Explore and NewIncremental): resolve the state bound, attach a private
// cache when the semantics has none (even a single exploration profits
// from hash-consed state identity, and the clone keeps the caller's value
// intact), and intern the root state. The root-intern sequence is
// determinism-critical — encounter-rank assignment starts here — so both
// engines must run it identically: a witness extracted from an
// Incremental only replays against Explore-style numbering because the
// two share this path.
func prepBuilder(ctx context.Context, sem *typelts.Semantics, init types.Type, opts Options) *builder {
	maxStates := opts.MaxStates
	if maxStates <= 0 {
		maxStates = DefaultMaxStates
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if !sem.HasCompatibleCache() {
		clone := *sem
		clone.Cache = typelts.NewCache(sem.Env, sem.WitnessOnly)
		sem = &clone
	}
	b := newBuilder(sem, maxStates)
	b.ctx = ctx
	b.progress = opts.Progress
	if s := opts.Symmetry; s != nil && len(sem.Observable) == 0 && sem.WitnessOnly && s.in == sem.Cache.Interner() {
		b.sym = s
		b.l.Sym = &SymInfo{S: s}
	}
	if por := opts.PartialOrder; por != nil && b.sym == nil {
		b.por = newPORState(por, b.sem)
		// Default proviso predicate: the serial and parallel engines
		// make ample decisions in state-number order, so a state is
		// decided iff its number precedes the current one. The
		// incremental engine overrides this with its own expansion map.
		b.porExpanded = func(s int32) bool { return s < b.porCur }
	}
	root := sem.InternLeaves(init)
	b.orderComps(root)
	if b.sym != nil {
		canon, perm := b.sym.canonicalise(root)
		b.l.Sym.RootPerm = perm
		if perm != 0 {
			// The canonical root is a different state; its representative
			// type is materialised from the interner.
			root = canon
			b.orderComps(root)
			init = nil
		}
	}
	b.internState(root, init)
	return b
}

// builder holds the mutable state of one exploration: the LTS under
// construction, the state index (interned multiset ID → state number),
// and the dense label index. It is single-threaded: the serial engine
// uses it directly, the parallel engine only from the merge goroutine.
type builder struct {
	sem      *typelts.Semantics
	in       *types.Interner
	l        *LTS
	index    map[types.ID]int32
	labelIdx map[typelts.LabelKey]int32
	// stateComps[s] is the component multiset of state s, sorted by
	// builder-local rank (see rankOf) — NOT by interner ID value, whose
	// assignment order is scheduler-dependent when workers intern fresh
	// successor types concurrently.
	stateComps [][]types.ID
	maxStates  int
	// rank maps a component ID to its dense per-exploration rank,
	// assigned in first-encounter order by the (single-threaded) builder.
	// Ordering multisets by rank makes iteration order — and therefore
	// proposal order, state numbering and the CSR arrays — independent
	// of the interner's ID assignment order, which is the keystone of
	// the parallel engine's determinism guarantee (see DESIGN.md).
	rank map[types.ID]int32
	// scratch is a reusable buffer for InternPar keys (InternPar sorts
	// its argument in place by ID value, which must not disturb the
	// rank-sorted stateComps entries); rankScratch buffers the ranks
	// during orderComps.
	scratch     []types.ID
	rankScratch []int32

	// ctx is polled between expansions; a cancelled context aborts the
	// exploration with an error wrapping ctx.Err(). progress, when
	// non-nil, receives periodic Progress snapshots (see Options).
	ctx      context.Context
	progress func(Progress)

	// sym, when non-nil, canonicalises every registered successor to its
	// orbit representative (see Options.Symmetry); l.Sym records the
	// per-edge permutations and per-state orbit sizes alongside.
	sym *Symmetry

	// por, when non-nil, filters every expansion through the ample-set
	// computation (see por.go). Mutually exclusive with sym. porCur is
	// the state whose expansion is being decided; porExpanded reports
	// whether a state's own ample decision was already made — the cycle
	// proviso's notion of "closes a cycle". Both are maintained by the
	// driving engine (state-number order for the serial and parallel
	// engines, expansion order for the incremental one).
	por         *porState
	porCur      int32
	porExpanded func(int32) bool

	// Per-state edge dedup: linear scan while the out-degree is small,
	// switching to a map once it crosses dedupThreshold (high-out-degree
	// states would otherwise pay O(d²) rescans of l.edges[from:]).
	dedup       map[Edge]struct{}
	dedupActive bool
}

// dedupThreshold is the out-degree at which per-state edge dedup turns
// from a linear rescan into a map. Most states have a handful of edges
// (scan wins on constants); the high-fan-out states of the large rows
// have hundreds.
const dedupThreshold = 32

func newBuilder(sem *typelts.Semantics, maxStates int) *builder {
	return &builder{
		sem:       sem,
		in:        sem.Cache.Interner(),
		l:         &LTS{Initial: 0, start: make([]int32, 1, 64)},
		index:     make(map[types.ID]int32, 256),
		labelIdx:  make(map[typelts.LabelKey]int32, 16),
		maxStates: maxStates,
		rank:      make(map[types.ID]int32, 64),
	}
}

// rankOf returns the builder-local rank of a component ID, assigning
// the next dense rank on first encounter.
func (b *builder) rankOf(id types.ID) int32 {
	if r, ok := b.rank[id]; ok {
		return r
	}
	r := int32(len(b.rank))
	b.rank[id] = r
	return r
}

// orderComps assigns ranks to every ID (in slice order, so new
// components are ranked in deterministic encounter order) and sorts the
// slice by rank. Each rank is looked up once into a scratch slice and
// the two are co-sorted — multisets arrive mostly sorted (the kept
// parent components already are), so the insertion sort is near-linear
// and compares plain ints.
func (b *builder) orderComps(ids []types.ID) {
	rs := b.rankScratch[:0]
	for _, id := range ids {
		rs = append(rs, b.rankOf(id))
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && rs[j] < rs[j-1]; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	b.rankScratch = rs
}

// internState registers the state with the given rank-sorted component
// multiset, materialising a representative type for new states.
func (b *builder) internState(comps []types.ID, rep types.Type) int32 {
	// InternPar sorts by ID value in place; give it a scratch copy so
	// the rank order of comps survives.
	b.scratch = append(b.scratch[:0], comps...)
	sid := b.in.InternPar(b.scratch)
	if s, ok := b.index[sid]; ok {
		return s
	}
	s := int32(len(b.l.States))
	b.index[sid] = s
	if rep == nil {
		rep = b.in.TypeOf(sid)
	}
	b.l.States = append(b.l.States, rep)
	b.stateComps = append(b.stateComps, comps)
	if b.sym != nil {
		b.l.Sym.OrbitSizes = append(b.l.Sym.OrbitSizes, b.sym.orbitSize(comps))
	}
	return s
}

func (b *builder) internLabel(key typelts.LabelKey, lab typelts.Label) int32 {
	if i, ok := b.labelIdx[key]; ok {
		return i
	}
	i := int32(len(b.l.Labels))
	b.labelIdx[key] = i
	b.l.Labels = append(b.l.Labels, lab)
	return i
}

// beginState resets the per-state edge dedup.
func (b *builder) beginState() { b.dedupActive = false }

// addEdge appends (lid → dst) unless the current state already has it.
// perm is the symmetry permutation recorded for the edge (0 = identity;
// always 0 without symmetry). When a duplicate (label, dst) pair is
// dropped, the first recorded permutation stands — any recorded
// permutation maps the canonical destination back to *a* raw successor
// of the source under that label, which is all the lift needs.
func (b *builder) addEdge(from int32, lid, dst, perm int32) {
	e := Edge{Label: lid, Dst: dst}
	if !b.dedupActive {
		seg := b.l.edges[from:]
		for _, x := range seg {
			if x == e {
				return
			}
		}
		b.appendEdge(e, perm)
		if len(seg)+1 >= dedupThreshold {
			b.dedupActive = true
			if b.dedup == nil {
				b.dedup = make(map[Edge]struct{}, 2*dedupThreshold)
			} else {
				clear(b.dedup)
			}
			for _, x := range b.l.edges[from:] {
				b.dedup[x] = struct{}{}
			}
		}
		return
	}
	if _, ok := b.dedup[e]; ok {
		return
	}
	b.dedup[e] = struct{}{}
	b.appendEdge(e, perm)
}

// appendEdge grows the flat edge array, keeping the per-edge
// permutation array aligned when symmetry is active.
func (b *builder) appendEdge(e Edge, perm int32) {
	b.l.edges = append(b.l.edges, e)
	if b.sym != nil {
		b.l.Sym.edgePerms = append(b.l.Sym.edgePerms, perm)
	}
}

// applyStep splices a successor multiset together (dropping the acting
// positions i and j) and registers the resulting edge.
func (b *builder) applyStep(from int32, comps []types.ID, i, j int, st typelts.CompStep) {
	b.register(from, spliceSucc(comps, i, j, st.Next), st.Key, st.Label)
}

// register is the shared successor-registration path of all three
// engines (serial loop, parallel merge, incremental expansion): order
// the multiset by builder rank, canonicalise it to its orbit
// representative when symmetry is active, intern state and label, and
// splice the edge — recording the canonicalisation permutation
// alongside. Everything order-sensitive (ranks, state numbers, label
// indices, permutation table indices) is assigned here, on the
// single-threaded side, which is what keeps the parallel engine
// byte-deterministic with symmetry on.
func (b *builder) register(from int32, succ []types.ID, key typelts.LabelKey, lab typelts.Label) {
	b.orderComps(succ)
	var perm int32
	if b.sym != nil {
		var canon []types.ID
		canon, perm = b.sym.canonicalise(succ)
		if perm != 0 {
			succ = canon
			b.orderComps(succ)
		}
	}
	dst := b.internState(succ, nil)
	lid := b.internLabel(key, lab)
	b.addEdge(from, lid, dst, perm)
}

// spliceSucc builds the successor multiset: comps without positions i
// and j, plus the acting components' replacements next.
func spliceSucc(comps []types.ID, i, j int, next []types.ID) []types.ID {
	succ := make([]types.ID, 0, len(comps)+len(next))
	for k, c := range comps {
		if k == i || k == j {
			continue
		}
		succ = append(succ, c)
	}
	return append(succ, next...)
}

// completeRun appends the run-completion self-loop of an edge-less state
// (✔^ω for proper termination, ⊠^ω for deadlock). from is the index of
// the state's first edge in the flat array; a state whose expansion
// produced no edges gets exactly one completion edge.
func (b *builder) completeRun(next int, from int32) {
	if len(b.l.edges) == int(from) {
		var lab typelts.Label = typelts.Stuck{}
		if len(b.stateComps[next]) == 0 {
			lab = typelts.Done{}
		}
		b.appendEdge(Edge{Label: b.internLabel(b.sem.Cache.LabelKeyOf(lab), lab), Dst: int32(next)}, 0)
	}
}

// finishState completes the run for edge-less states and seals the
// state's CSR extent.
func (b *builder) finishState(next int, from int32) {
	b.completeRun(next, from)
	b.l.start = append(b.l.start, int32(len(b.l.edges)))
}

// expandInto splices all transitions of the state with component multiset
// comps into the edge array, starting at offset from: interleaving moves
// of each component (Y-limited) first, then pairwise synchronisations —
// the canonical per-state edge order shared by the serial, parallel and
// incremental engines.
func (b *builder) expandInto(from int32, comps []types.ID) {
	if b.por != nil {
		// POR needs the whole proposal list (participants included)
		// before registering anything, so it can select an ample subset.
		b.registerPOR(from, comps, expandState(b.sem, comps))
		return
	}
	sem := b.sem
	// Interleaving: each component may act on its own (Y-limited).
	for i := range comps {
		for _, st := range sem.ComponentSteps(comps[i]) {
			if !sem.KeepLabel(st.Label) {
				continue
			}
			b.applyStep(from, comps, i, -1, st)
		}
	}
	// Synchronisation: an output of component i meets an input of
	// component j (i ≠ j); τ labels always survive the Y-limitation.
	for i := range comps {
		for j := range comps {
			if i == j {
				continue
			}
			for _, st := range sem.SyncSteps(comps[i], comps[j]) {
				b.applyStep(from, comps, i, j, st)
			}
		}
	}
}

// boundExceeded truncates the LTS and reports the state-bound error.
func (b *builder) boundExceeded() error {
	b.l.Truncated = true
	b.l.sealTruncated()
	return fmt.Errorf("lts: state bound %d exceeded (type may be infinite-state; see Lemma 4.7 and §5.1 limitation 2): %w", b.maxStates, ErrStateBound)
}

// cancelled reports (and wraps) a cancelled context. The partial LTS is
// sealed so its CSR arrays stay consistent, but a cancelled exploration's
// LTS must not be consumed — only the error matters.
func (b *builder) cancelled() error {
	b.l.sealTruncated()
	return fmt.Errorf("lts: exploration cancelled after %d states: %w", len(b.l.States), b.ctx.Err())
}

// report delivers a Progress snapshot (expanded = the number of states
// whose successors are spliced).
func (b *builder) report(expanded int) {
	if b.progress != nil {
		b.progress(Progress{States: len(b.l.States), Expanded: expanded, Edges: len(b.l.edges)})
	}
}

// exploreSerial is the single-threaded worklist engine (Parallelism 1):
// one pass over the growing state list, expanding and splicing in place.
func (b *builder) exploreSerial() error {
	for next := 0; next < len(b.l.States); next++ {
		if len(b.l.States) > b.maxStates {
			return b.boundExceeded()
		}
		if next%cancelStride == 0 && b.ctx.Err() != nil {
			return b.cancelled()
		}
		if next%progressStride == 0 && next > 0 {
			b.report(next)
		}
		from := b.l.start[next]
		b.beginState()
		b.porCur = int32(next)
		b.expandInto(from, b.stateComps[next])
		b.finishState(next, from)
	}
	b.report(len(b.l.States))
	return nil
}

// sealTruncated pads the offset array so Out stays in bounds for the
// states that were discovered but never processed.
func (l *LTS) sealTruncated() {
	for len(l.start) < len(l.States)+1 {
		l.start = append(l.start, int32(len(l.edges)))
	}
}

// FromAdjacency builds an LTS from an explicit adjacency list — states[i]
// has the outgoing edges adj[i]. It is meant for tests and hand-built
// models; Explore is the production constructor.
func FromAdjacency(states []types.Type, adj [][]AdjEdge, initial int) *LTS {
	l := &LTS{Initial: initial, start: make([]int32, 1, len(states)+1)}
	labelIdx := map[string]int32{}
	l.States = append(l.States, states...)
	for i := range states {
		for _, e := range adj[i] {
			key := e.Label.Key()
			lid, ok := labelIdx[key]
			if !ok {
				lid = int32(len(l.Labels))
				labelIdx[key] = lid
				l.Labels = append(l.Labels, e.Label)
			}
			l.edges = append(l.edges, Edge{Label: lid, Dst: int32(e.Dst)})
		}
		l.start = append(l.start, int32(len(l.edges)))
	}
	return l
}

// AdjEdge is one labelled edge of a FromAdjacency adjacency list.
type AdjEdge struct {
	Label typelts.Label
	Dst   int
}

// Len returns the number of states.
func (l *LTS) Len() int { return len(l.States) }

// Out returns the outgoing edges of state s (a view into the flat edge
// array; callers must not mutate it).
func (l *LTS) Out(s int) []Edge {
	if s+1 >= len(l.start) {
		return nil
	}
	// Three-index slice: the flat edge array is shared by every state, so
	// a caller append must reallocate instead of overwriting a
	// neighbouring state's edges.
	hi := l.start[s+1]
	return l.edges[l.start[s]:hi:hi]
}

// LabelOf resolves an edge's label index to the label itself.
func (l *LTS) LabelOf(e Edge) typelts.Label { return l.Labels[e.Label] }

// Alphabet returns one representative of every distinct label (by Key),
// sorted by key for determinism. This is the finite action set AΓ(T) of
// the paper (used by Def. 4.8 and Thm. 4.10).
func (l *LTS) Alphabet() []typelts.Label {
	out := make([]typelts.Label, len(l.Labels))
	copy(out, l.Labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// NumEdges returns the total number of transitions.
func (l *LTS) NumEdges() int { return len(l.edges) }

// Deadlocked reports whether any reachable state is completed with ⊠.
// Labels enter the dense alphabet only when an edge fires them, so a ⊠
// in the alphabet is equivalent to a ⊠ edge.
func (l *LTS) Deadlocked() bool {
	for _, lab := range l.Labels {
		if _, ok := lab.(typelts.Stuck); ok {
			return true
		}
	}
	return false
}

// DOT renders the LTS in Graphviz format for inspection.
func (l *LTS) DOT() string {
	var b strings.Builder
	b.WriteString("digraph lts {\n  rankdir=LR;\n")
	fmt.Fprintf(&b, "  init [shape=point];\n  init -> s%d;\n", l.Initial)
	for i := range l.States {
		fmt.Fprintf(&b, "  s%d [label=%q];\n", i, truncate(l.States[i].String(), 60))
	}
	for src := range l.States {
		for _, e := range l.Out(src) {
			fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", src, e.Dst, truncate(l.LabelOf(e).String(), 40))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
