package lts

import (
	"fmt"
	"testing"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// porAll is the property-free ample filter (no visible labels, weak
// proviso): the strongest reduction the engine supports, and the one the
// structural tests below run under — any soundness bug shows up soonest
// when the most edges are dropped.
func porAll() *POR { return &POR{} }

// stateKey/edgeKey identify states and edges independently of state
// numbering, so a reduced LTS can be compared against the full one even
// though dropping edges reorders the BFS discovery sequence.
func stateKey(m *LTS, s int) string { return types.Canon(m.States[s]) }
func edgeKey(m *LTS, s int, e Edge) string {
	return fmt.Sprintf("%s --%s--> %s", stateKey(m, s), m.Labels[e.Label].Key(), stateKey(m, int(e.Dst)))
}

// TestPORAmpleIsSubset is the structural soundness anchor the witness
// argument rests on: every state and every edge of the ample-reduced
// LTS is a state and edge of the full exploration — ample sets only
// ever drop transitions, never invent or rewrite them. (Completion
// self-loops are part of the contract too: they are appended after
// filtering, to the same states the full engine appends them to.)
func TestPORAmpleIsSubset(t *testing.T) {
	for _, fx := range exploreFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			full, err := Explore(fx.sem(), fx.init, Options{})
			if err != nil {
				t.Fatal(err)
			}
			red, err := Explore(fx.sem(), fx.init, Options{PartialOrder: porAll()})
			if err != nil {
				t.Fatal(err)
			}
			if red.Len() > full.Len() {
				t.Fatalf("reduced exploration has %d states, full has %d", red.Len(), full.Len())
			}
			states := map[string]bool{}
			edges := map[string]bool{}
			for s := range full.States {
				states[stateKey(full, s)] = true
				for _, e := range full.Out(s) {
					edges[edgeKey(full, s, e)] = true
				}
			}
			if !states[stateKey(red, red.Initial)] || stateKey(red, red.Initial) != stateKey(full, full.Initial) {
				t.Errorf("initial states differ")
			}
			for s := range red.States {
				if !states[stateKey(red, s)] {
					t.Errorf("reduced state %s is not a state of the full LTS", stateKey(red, s))
				}
				if len(red.Out(s)) == 0 && s < red.Len() {
					t.Errorf("reduced state %s has no outgoing edges — completion self-loops must survive", stateKey(red, s))
				}
				for _, e := range red.Out(s) {
					if !edges[edgeKey(red, s, e)] {
						t.Errorf("reduced edge %s is not an edge of the full LTS", edgeKey(red, s, e))
					}
				}
			}
		})
	}
}

// TestPORDeterministicAcrossWorkers extends the parallel engine's
// byte-determinism guarantee to the reduced exploration: ample selection
// runs on the single-threaded merge side in (parent, edge-order) order,
// so Explore with PartialOrder at Parallelism 1 vs N yields identical
// state order, alphabet and CSR arrays at every worker count.
func TestPORDeterministicAcrossWorkers(t *testing.T) {
	for _, fx := range exploreFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			serial, err := Explore(fx.sem(), fx.init, Options{Parallelism: 1, PartialOrder: porAll()})
			if err != nil {
				t.Fatal(err)
			}
			want := ltsFingerprint(serial)
			for _, par := range []int{2, 4, 8} {
				for rep := 0; rep < 3; rep++ {
					m, err := Explore(fx.sem(), fx.init, Options{Parallelism: par, PartialOrder: porAll()})
					if err != nil {
						t.Fatal(err)
					}
					if got := ltsFingerprint(m); got != want {
						t.Errorf("par=%d rep=%d: reduced LTS differs from serial engine\n--- serial ---\n%s--- parallel ---\n%s", par, rep, want, got)
					}
				}
			}
		})
	}
}

// TestPORIncrementalMatchesExplore: driving the incremental engine in
// BFS order under the ample filter reproduces Explore's reduced LTS
// byte-for-byte — the cycle proviso's "already decided" predicate (the
// expansion map) coincides with the serial engine's state-number cursor
// exactly when expansion follows discovery order.
func TestPORIncrementalMatchesExplore(t *testing.T) {
	for _, fx := range exploreFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			want, err := Explore(fx.sem(), fx.init, Options{Parallelism: 1, PartialOrder: porAll()})
			if err != nil {
				t.Fatal(err)
			}
			inc := NewIncremental(fx.sem(), fx.init, Options{PartialOrder: porAll()})
			for s := 0; s < inc.Len(); s++ {
				if _, err := inc.Succ(s); err != nil {
					t.Fatal(err)
				}
			}
			if got := ltsFingerprint(inc.Snapshot()); got != ltsFingerprint(want) {
				t.Errorf("BFS-driven incremental snapshot differs from Explore\n--- explore ---\n%s--- incremental ---\n%s", ltsFingerprint(want), got)
			}
		})
	}
}

// TestOutAppendDoesNotCorrupt is the regression test for the aliased
// sub-slice bug: Out used to return a plain two-index slice into the
// shared CSR edge array, so a caller appending to the result (a natural
// way to collect edges) silently overwrote the next state's first edge.
// The three-index slice forces the append to reallocate.
func TestOutAppendDoesNotCorrupt(t *testing.T) {
	for _, fx := range exploreFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			m, err := Explore(fx.sem(), fx.init, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want := ltsFingerprint(m)
			for s := 0; s < m.Len(); s++ {
				es := m.Out(s)
				_ = append(es, Edge{Label: -1, Dst: -1})
			}
			if got := ltsFingerprint(m); got != want {
				t.Errorf("appending to Out's result corrupted the LTS\n--- before ---\n%s--- after ---\n%s", want, got)
			}
		})
	}
}

// TestIncrementalSuccAppendDoesNotCorrupt: the same aliasing fix for the
// incremental engine — both the cached-expansion path and the
// just-expanded return are capacity-clamped, so appends by the driving
// checker cannot clobber a neighbour's edges.
func TestIncrementalSuccAppendDoesNotCorrupt(t *testing.T) {
	for _, fx := range exploreFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			want, err := Explore(fx.sem(), fx.init, Options{Parallelism: 1})
			if err != nil {
				t.Fatal(err)
			}
			inc := NewIncremental(fx.sem(), fx.init, Options{})
			for s := 0; s < inc.Len(); s++ {
				es, err := inc.Succ(s) // just-expanded return
				if err != nil {
					t.Fatal(err)
				}
				_ = append(es, Edge{Label: -1, Dst: -1})
				es, err = inc.Succ(s) // cached path
				if err != nil {
					t.Fatal(err)
				}
				_ = append(es, Edge{Label: -1, Dst: -1})
			}
			if got := ltsFingerprint(inc.Snapshot()); got != ltsFingerprint(want) {
				t.Errorf("appending to Succ's result corrupted the explored fragment\n--- explore ---\n%s--- incremental ---\n%s", ltsFingerprint(want), got)
			}
		})
	}
}

// TestPORLivenessProviso: the strong (liveness) proviso is at least as
// conservative as the weak one — it can only keep more transitions — and
// stays deterministic across worker counts.
func TestPORLivenessProviso(t *testing.T) {
	for _, fx := range exploreFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			weak, err := Explore(fx.sem(), fx.init, Options{PartialOrder: &POR{}})
			if err != nil {
				t.Fatal(err)
			}
			strong, err := Explore(fx.sem(), fx.init, Options{PartialOrder: &POR{Liveness: true}})
			if err != nil {
				t.Fatal(err)
			}
			if strong.Len() < weak.Len() {
				t.Errorf("strong proviso explored %d states, weak explored %d — strong must be ⊇ weak", strong.Len(), weak.Len())
			}
			par, err := Explore(fx.sem(), fx.init, Options{Parallelism: 8, PartialOrder: &POR{Liveness: true}})
			if err != nil {
				t.Fatal(err)
			}
			if ltsFingerprint(par) != ltsFingerprint(strong) {
				t.Error("strong-proviso exploration is not byte-identical across worker counts")
			}
		})
	}
}

// TestPORVisibilityKeepsLabels: a visibility predicate that marks every
// label visible disables the reduction entirely (C2 rejects every
// candidate), reproducing the full exploration byte-for-byte — the
// degenerate end of the soundness spectrum.
func TestPORVisibilityKeepsLabels(t *testing.T) {
	for _, fx := range exploreFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			full, err := Explore(fx.sem(), fx.init, Options{})
			if err != nil {
				t.Fatal(err)
			}
			red, err := Explore(fx.sem(), fx.init, Options{PartialOrder: &POR{Visible: func(typelts.Label) bool { return true }}})
			if err != nil {
				t.Fatal(err)
			}
			if ltsFingerprint(red) != ltsFingerprint(full) {
				t.Error("all-visible filter did not reproduce the full exploration")
			}
		})
	}
}

// TestPORSymmetryPrecedence: when both exploration-time reductions are
// requested, the symmetry group claims the exploration and the ample
// filter stays disengaged — the reduced LTS equals the symmetry-only
// one, orbit bookkeeping included.
func TestPORSymmetryPrecedence(t *testing.T) {
	run := func(por *POR) *LTS {
		sem, sys := pairsFixture(3, false)
		sym := DetectSymmetry(sem.Cache, sys, nil)
		if sym == nil {
			t.Fatal("fixture has no detectable symmetry")
		}
		m, err := Explore(sem, sys, Options{Symmetry: sym, PartialOrder: por})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	symOnly, both := run(nil), run(porAll())
	if both.Sym == nil {
		t.Fatal("symmetry bookkeeping missing when both reductions were requested")
	}
	if ltsFingerprint(both) != ltsFingerprint(symOnly) {
		t.Error("requesting partial order changed the orbit exploration")
	}
}
