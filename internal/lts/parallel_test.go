package lts

import (
	"fmt"
	"sync"
	"testing"

	"effpi/internal/typelts"
	"effpi/internal/types"
)

// exploreFixtures builds a few structurally different systems: channel
// passing (ping-pong), unions (payment-like choice), deadlock
// completion, and a token ring — small enough for -race, varied enough
// to exercise every proposal kind.
func exploreFixtures() []struct {
	name string
	sem  func() *typelts.Semantics
	init types.Type
} {
	pp := func() (*typelts.Semantics, types.Type) { return pingPong() }

	choiceEnv := types.EnvOf(
		"m", types.ChanIO{Elem: types.Str{}},
		"a", types.ChanIO{Elem: types.Str{}},
	)
	choice := types.Par{
		L: types.Rec{Var: "t", Body: types.In{Ch: tv("m"), Cont: types.Pi{Var: "p", Dom: types.Str{},
			Cod: types.Union{
				L: types.Out{Ch: tv("a"), Payload: types.Str{}, Cont: types.Thunk(types.RecVar{Name: "t"})},
				R: types.RecVar{Name: "t"},
			}}}},
		R: types.Par{
			L: types.Rec{Var: "t", Body: types.Out{Ch: tv("m"), Payload: types.Str{},
				Cont: types.Thunk(types.RecVar{Name: "t"})}},
			R: types.Rec{Var: "t", Body: types.In{Ch: tv("a"), Cont: types.Pi{Var: "x", Dom: types.Str{},
				Cod: types.RecVar{Name: "t"}}}},
		},
	}

	stuckEnv := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	stuck := types.Out{Ch: tv("x"), Payload: types.Int{}, Cont: types.Thunk(types.Nil{})}

	ringEnv := types.EnvOf(
		"c0", types.ChanIO{Elem: types.ChanIO{Elem: types.Unit{}}},
		"c1", types.ChanIO{Elem: types.ChanIO{Elem: types.Unit{}}},
		"c2", types.ChanIO{Elem: types.ChanIO{Elem: types.Unit{}}},
		"tok", types.ChanIO{Elem: types.Unit{}},
	)
	member := func(in, out string) types.Type {
		return types.Rec{Var: "t", Body: types.In{Ch: tv(in),
			Cont: types.Pi{Var: "z", Dom: types.ChanIO{Elem: types.Unit{}},
				Cod: types.Out{Ch: tv(out), Payload: tv("z"), Cont: types.Thunk(types.RecVar{Name: "t"})}}}}
	}
	ring := types.ParOf(
		types.Out{Ch: tv("c1"), Payload: tv("tok"), Cont: types.Thunk(member("c0", "c1"))},
		member("c1", "c2"),
		member("c2", "c0"),
	)

	return []struct {
		name string
		sem  func() *typelts.Semantics
		init types.Type
	}{
		{"pingpong", func() *typelts.Semantics { s, _ := pp(); return s }, func() types.Type { _, t := pp(); return t }()},
		{"choice", func() *typelts.Semantics {
			return &typelts.Semantics{Env: choiceEnv, Observable: map[string]bool{}, WitnessOnly: true}
		}, choice},
		{"stuck", func() *typelts.Semantics {
			return &typelts.Semantics{Env: stuckEnv, Observable: map[string]bool{}}
		}, stuck},
		{"ring", func() *typelts.Semantics {
			return &typelts.Semantics{Env: ringEnv, Observable: map[string]bool{}, WitnessOnly: true}
		}, ring},
	}
}

// ltsFingerprint renders the determinism-relevant content of an LTS:
// state order (by canonical form), dense alphabet order (by label key),
// and the raw CSR arrays. Two LTSes with equal fingerprints are the same
// transition system with the same numbering.
func ltsFingerprint(m *LTS) string {
	out := fmt.Sprintf("initial=%d truncated=%v\n", m.Initial, m.Truncated)
	for i, s := range m.States {
		out += fmt.Sprintf("S%d %s\n", i, types.Canon(s))
	}
	for i, l := range m.Labels {
		out += fmt.Sprintf("L%d %s\n", i, l.Key())
	}
	out += fmt.Sprintf("start=%v\n", m.start)
	for _, e := range m.edges {
		out += fmt.Sprintf("e %d %d\n", e.Label, e.Dst)
	}
	return out
}

// TestParallelExploreDeterministic asserts the headline guarantee of the
// parallel engine: Explore at Parallelism 1 vs N yields identical state
// order, label alphabet and CSR edge arrays, at every worker count and
// across repeated parallel runs.
func TestParallelExploreDeterministic(t *testing.T) {
	for _, fx := range exploreFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			serial, serialErr := Explore(fx.sem(), fx.init, Options{Parallelism: 1})
			want := ltsFingerprint(serial)
			for _, par := range []int{2, 4, 8} {
				for rep := 0; rep < 3; rep++ {
					m, err := Explore(fx.sem(), fx.init, Options{Parallelism: par})
					if (err == nil) != (serialErr == nil) {
						t.Fatalf("par=%d rep=%d: err=%v, serial err=%v", par, rep, err, serialErr)
					}
					if got := ltsFingerprint(m); got != want {
						t.Errorf("par=%d rep=%d: LTS differs from serial engine\n--- serial ---\n%s--- parallel ---\n%s", par, rep, want, got)
					}
				}
			}
		})
	}
}

// TestParallelExploreSharedCache runs concurrent explorations (different
// Y-limitations) against one shared cache — the VerifyAll usage pattern —
// and checks each result against its serial counterpart. Run under -race
// this exercises the lock-striped cache end to end.
func TestParallelExploreSharedCache(t *testing.T) {
	env := types.EnvOf(
		"m", types.ChanIO{Elem: types.Str{}},
		"a", types.ChanIO{Elem: types.Str{}},
	)
	init := types.Par{
		L: types.Rec{Var: "t", Body: types.In{Ch: tv("m"), Cont: types.Pi{Var: "p", Dom: types.Str{},
			Cod: types.Out{Ch: tv("a"), Payload: types.Str{}, Cont: types.Thunk(types.RecVar{Name: "t"})}}}},
		R: types.Par{
			L: types.Rec{Var: "t", Body: types.Out{Ch: tv("m"), Payload: types.Str{}, Cont: types.Thunk(types.RecVar{Name: "t"})}},
			R: types.Rec{Var: "t", Body: types.In{Ch: tv("a"), Cont: types.Pi{Var: "x", Dom: types.Str{}, Cod: types.RecVar{Name: "t"}}}},
		},
	}
	limitations := []map[string]bool{
		{},
		{"m": true},
		{"a": true},
		{"m": true, "a": true},
	}

	// Serial baselines, one fresh cache each.
	want := make([]string, len(limitations))
	for i, obs := range limitations {
		sem := &typelts.Semantics{Env: env, Observable: obs, WitnessOnly: true}
		m, err := Explore(sem, init, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = ltsFingerprint(m)
	}

	// All four explorations concurrently, sharing one cache, each itself
	// running the parallel engine.
	shared := typelts.NewCache(env, true)
	var wg sync.WaitGroup
	got := make([]string, len(limitations))
	errs := make([]error, len(limitations))
	for i, obs := range limitations {
		wg.Add(1)
		go func(i int, obs map[string]bool) {
			defer wg.Done()
			sem := &typelts.Semantics{Env: env, Observable: obs, WitnessOnly: true, Cache: shared}
			m, err := Explore(sem, init, Options{Parallelism: 4})
			if err != nil {
				errs[i] = err
				return
			}
			got[i] = ltsFingerprint(m)
		}(i, obs)
	}
	wg.Wait()
	for i := range limitations {
		if errs[i] != nil {
			t.Fatalf("limitation %d: %v", i, errs[i])
		}
		if got[i] != want[i] {
			t.Errorf("limitation %d: shared-cache parallel LTS differs from serial\n--- serial ---\n%s--- parallel ---\n%s", i, want[i], got[i])
		}
	}
}

// philosophersFixture builds an n-philosopher / n-fork system inline
// (the systems package sits above lts in the import graph). Its BFS
// frontiers grow to dozens of states — well past minParallelFrontier —
// so parallel runs genuinely expand concurrently, with workers interning
// fresh successor types in scheduler-dependent order. This is the
// fixture that exercises rank-based (ID-order-independent) multiset
// ordering.
func philosophersFixture(n int) (*typelts.Semantics, types.Type) {
	unit := types.Unit{}
	env := types.NewEnv()
	forks := make([]string, n)
	for i := range forks {
		forks[i] = fmt.Sprintf("f%d", i)
		env = env.MustExtend(forks[i], types.ChanIO{Elem: unit})
	}
	out := func(ch string, cont types.Type) types.Type {
		return types.Out{Ch: tv(ch), Payload: unit, Cont: types.Thunk(cont)}
	}
	in := func(ch, v string, cont types.Type) types.Type {
		return types.In{Ch: tv(ch), Cont: types.Pi{Var: v, Dom: unit, Cod: cont}}
	}
	var comps []types.Type
	for i := 0; i < n; i++ {
		comps = append(comps, types.Rec{Var: "t", Body: out(forks[i], in(forks[i], "u", types.RecVar{Name: "t"}))})
	}
	for i := 0; i < n; i++ {
		first, second := forks[i], forks[(i+1)%n]
		comps = append(comps, types.Rec{Var: "t", Body: in(first, "u", in(second, "u2",
			out(first, out(second, types.RecVar{Name: "t"}))))})
	}
	sem := &typelts.Semantics{Env: env, Observable: map[string]bool{}, WitnessOnly: true}
	return sem, types.ParOf(comps...)
}

// TestParallelExploreDeterministicWideFrontier is the determinism
// assertion on a state space with wide frontiers (4 philosophers, ~80
// states): workers race on real expansion work, and the resulting state
// order, alphabet and CSR arrays must still match the serial engine
// byte for byte, repeatedly.
func TestParallelExploreDeterministicWideFrontier(t *testing.T) {
	sem, init := philosophersFixture(4)
	serial, err := Explore(sem, init, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := ltsFingerprint(serial)
	for _, par := range []int{2, 8} {
		for rep := 0; rep < 5; rep++ {
			sem, init := philosophersFixture(4)
			m, err := Explore(sem, init, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("par=%d rep=%d: %v", par, rep, err)
			}
			if got := ltsFingerprint(m); got != want {
				t.Fatalf("par=%d rep=%d: LTS differs from serial engine", par, rep)
			}
		}
	}
}

// TestExploreIndependentOfInternOrder attacks the determinism guarantee
// directly: it pre-interns the system's component types into the shared
// cache in several adversarial orders (reversed, rotated) before
// exploring, so the interner's ID values — and hence any ID-value-based
// ordering — differ wildly between runs. The explored LTS must be
// identical regardless: multiset iteration order is builder-local
// encounter rank, not interner ID.
func TestExploreIndependentOfInternOrder(t *testing.T) {
	baselineSem, init := philosophersFixture(3)
	baseline, err := Explore(baselineSem, init, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := ltsFingerprint(baseline)

	// Collect every distinct state component the baseline saw, as trees.
	var comps []types.Type
	seen := map[string]bool{}
	for _, s := range baseline.States {
		for _, c := range types.FlattenPar(s) {
			key := types.Canon(c)
			if !seen[key] {
				seen[key] = true
				comps = append(comps, c)
			}
		}
	}
	if len(comps) < 4 {
		t.Fatalf("fixture too small: %d distinct components", len(comps))
	}

	for trial := 0; trial < 4; trial++ {
		sem, init := philosophersFixture(3)
		sem.Cache = typelts.NewCache(sem.Env, sem.WitnessOnly)
		in := sem.Cache.Interner()
		switch trial {
		case 0: // reversed
			for i := len(comps) - 1; i >= 0; i-- {
				in.Intern(comps[i])
			}
		case 1: // rotated
			for i := range comps {
				in.Intern(comps[(i+len(comps)/2)%len(comps)])
			}
		case 2: // interleaved from both ends
			for i, j := 0, len(comps)-1; i <= j; i, j = i+1, j-1 {
				in.Intern(comps[j])
				in.Intern(comps[i])
			}
		case 3: // forward (control)
			for i := range comps {
				in.Intern(comps[i])
			}
		}
		for _, par := range []int{1, 4} {
			m, err := Explore(sem, init, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("trial %d par %d: %v", trial, par, err)
			}
			if got := ltsFingerprint(m); got != want {
				t.Errorf("trial %d par %d: LTS depends on interner ID assignment order\n--- baseline ---\n%s--- got ---\n%s", trial, par, want, got)
			}
		}
	}
}

// TestParallelStateBound checks that truncation behaves identically in
// both engines: same error, same truncation flag.
func TestParallelStateBound(t *testing.T) {
	sem, t0 := pingPong()
	for _, par := range []int{1, 4} {
		m, err := Explore(sem, t0, Options{MaxStates: 1, Parallelism: par})
		if err == nil {
			t.Fatalf("par=%d: exploration must fail when the bound is exceeded", par)
		}
		if !m.Truncated {
			t.Errorf("par=%d: truncated LTS must be flagged", par)
		}
	}
}

// TestAddEdgeDedupHighDegree drives one state's out-degree far past
// dedupThreshold (forcing the map path) with duplicate proposals mixed
// in, and checks the dedup semantics match the linear path: first
// occurrence kept, order preserved.
func TestAddEdgeDedupHighDegree(t *testing.T) {
	sem, t0 := pingPong()
	sem.Cache = typelts.NewCache(sem.Env, sem.WitnessOnly)
	b := newBuilder(sem, DefaultMaxStates)
	// Seed two real states so dst indices are valid.
	b.internState(sem.InternLeaves(t0), t0)
	b.beginState()
	from := int32(0)
	total := 3 * dedupThreshold
	for round := 0; round < 2; round++ { // second round: all duplicates
		for k := 0; k < total; k++ {
			lab := typelts.Output{Subject: types.Var{Name: fmt.Sprintf("v%d", k)}, Payload: types.Str{}}
			b.addEdge(from, b.internLabel(sem.Cache.LabelKeyOf(lab), lab), 0, 0)
		}
	}
	if got := len(b.l.edges); got != total {
		t.Fatalf("edges = %d, want %d (duplicates must be dropped above the dedup threshold)", got, total)
	}
	for k, e := range b.l.edges {
		if int(e.Label) != k {
			t.Fatalf("edge %d has label %d: insertion order must be preserved", k, e.Label)
		}
	}
}
