package lts

// This file is the state-space reduction layer: partition refinement in
// the Paige–Tarjan tradition over the CSR edge array, producing the
// coarsest strong-bisimulation partition of an LTS and packaging it as a
// Quotient — a block-level transition system every µ-calculus verdict can
// be decided on instead of the concrete one (see DESIGN.md §reduction).
//
// The refiner is shared by two consumers with different label views:
//
//   - Minimize quotients one LTS for the verifier's Reduce stage. Labels
//     are first collapsed into observation classes (labels the property's
//     automaton cannot tell apart, computed by mucalc.LabelClasses), which
//     is what turns symmetric benchmark rows into tiny quotients while
//     preserving the verdict of the formula that induced the classes.
//   - Bisimilar decides strong bisimilarity of two LTSs on their joint
//     concrete alphabet (classes = label keys), replacing the former
//     ad-hoc string-signature algorithm.
//
// Determinism contract: block ids are assigned by encounter rank — the
// order in which blocks are first met scanning states 0..n-1 — never by
// map iteration order. Two byte-identical LTSs therefore always produce
// byte-identical quotients (block numbering, representatives, member
// lists, quotient CSR), regardless of interner ID assignment or worker
// count; TestQuotientIndependentOfInternOrder pins this the same way
// TestExploreIndependentOfInternOrder pins it for exploration.

import (
	"context"
	"fmt"
	"slices"

	"effpi/internal/types"
)

// Quotient is an LTS quotiented by the coarsest partition stable under
// its (class-projected) edge relation: states of a block are pairwise
// strongly bisimilar over the class alphabet. Blocks are dense ids in
// encounter-rank order (block b's least member precedes block b+1's), so
// a quotient is a pure function of the LTS bytes and the class vector.
type Quotient struct {
	// Full is the concrete LTS the quotient was computed from.
	Full *LTS
	// ClassOf maps every label index of Full to its observation class
	// (nil = identity: plain strong bisimulation on concrete labels).
	ClassOf []int32
	// BlockOf maps every concrete state to its block.
	BlockOf []int32
	// Rep maps every block to its representative concrete state — the
	// least state id in the block (strictly increasing across blocks, the
	// encounter-rank numbering contract).
	Rep []int32

	// members[memberStart[b]:memberStart[b+1]] lists block b's concrete
	// states in increasing id order.
	memberStart []int32
	members     []int32

	// Quotient CSR: block b owns qedges[qstart[b]:qstart[b+1]]. Edge
	// labels are concrete label indices into Full.Labels — the first
	// label (in the representative's edge order) that realises the
	// (class, destination block) move — so block-level runs project to
	// concrete label words directly.
	qstart []int32
	qedges []Edge
}

// NumBlocks returns the number of blocks.
func (q *Quotient) NumBlocks() int { return len(q.Rep) }

// InitialBlock returns the block of the concrete initial state.
func (q *Quotient) InitialBlock() int { return int(q.BlockOf[q.Full.Initial]) }

// Out returns block b's outgoing quotient edges (a view; do not mutate).
func (q *Quotient) Out(b int) []Edge { return q.qedges[q.qstart[b]:q.qstart[b+1]] }

// NumEdges returns the number of quotient transitions.
func (q *Quotient) NumEdges() int { return len(q.qedges) }

// Members returns block b's concrete states in increasing id order (a
// view; do not mutate).
func (q *Quotient) Members(b int) []int32 {
	return q.members[q.memberStart[b]:q.memberStart[b+1]]
}

// Class returns the observation class of a concrete label index.
func (q *Quotient) Class(label int32) int32 {
	if q.ClassOf == nil {
		return label
	}
	return q.ClassOf[label]
}

// Minimize computes the strong-bisimulation quotient of m over the given
// label classes. classOf maps each label index of m to its observation
// class; nil means every label is its own class (plain strong
// bisimulation). Two states land in the same block iff no class-word
// distinguishes their behaviours — so any property whose checker only
// observes labels through the classes (mucalc.LabelClasses computes
// exactly that set for a formula) has the same verdict on the quotient.
func Minimize(m *LTS, classOf []int32) *Quotient {
	q, _ := MinimizeContext(context.Background(), m, classOf) // only a cancelled ctx errors
	return q
}

// MinimizeContext is Minimize with cancellation: the refiner polls ctx
// every refineCancelStride member scans (signature computations are
// sub-microsecond, so cancellation latency stays in the tens of
// microseconds even mid-round on a million-state LTS) and returns an
// error wrapping ctx.Err() once the context is done.
func MinimizeContext(ctx context.Context, m *LTS, classOf []int32) (*Quotient, error) {
	n := m.Len()
	q := &Quotient{Full: m, ClassOf: classOf}
	if n == 0 {
		q.BlockOf = []int32{}
		q.memberStart = []int32{0}
		q.qstart = []int32{0}
		return q, nil
	}
	class := func(l int32) int32 {
		if classOf == nil {
			return l
		}
		return classOf[l]
	}
	blockOf, numBlocks, err := refineCSR(ctx, n, func(s int) []Edge { return m.Out(s) }, class)
	if err != nil {
		return nil, err
	}
	q.BlockOf = blockOf

	// Representatives and member lists. Blocks are numbered in
	// first-encounter order over the state scan, so the first member seen
	// for a block is its least state id.
	q.Rep = make([]int32, numBlocks)
	for i := range q.Rep {
		q.Rep[i] = -1
	}
	counts := make([]int32, numBlocks)
	for s := 0; s < n; s++ {
		b := blockOf[s]
		if q.Rep[b] < 0 {
			q.Rep[b] = int32(s)
		}
		counts[b]++
	}
	q.memberStart = make([]int32, numBlocks+1)
	for b := 0; b < numBlocks; b++ {
		q.memberStart[b+1] = q.memberStart[b] + counts[b]
	}
	q.members = make([]int32, n)
	fill := append([]int32(nil), q.memberStart[:numBlocks]...)
	for s := 0; s < n; s++ {
		b := blockOf[s]
		q.members[fill[b]] = int32(s)
		fill[b]++
	}

	// Quotient edges from each block's representative: by stability the
	// representative's (class, destination block) set is the whole
	// block's. The concrete label kept per move is the first one in the
	// representative's edge order that realises it — deterministic, and a
	// valid letter of the class by construction.
	q.qstart = make([]int32, 1, numBlocks+1)
	var seen map[Edge]struct{}
	for b := 0; b < numBlocks; b++ {
		from := len(q.qedges)
		edges := m.Out(int(q.Rep[b]))
		if len(edges) >= dedupThreshold {
			if seen == nil {
				seen = make(map[Edge]struct{}, 2*dedupThreshold)
			} else {
				clear(seen)
			}
		}
		for _, e := range edges {
			move := Edge{Label: class(e.Label), Dst: blockOf[e.Dst]}
			if len(edges) >= dedupThreshold {
				if _, dup := seen[move]; dup {
					continue
				}
				seen[move] = struct{}{}
			} else if hasMove(q.qedges[from:], move, class) {
				continue
			}
			q.qedges = append(q.qedges, Edge{Label: e.Label, Dst: move.Dst})
		}
		q.qstart = append(q.qstart, int32(len(q.qedges)))
	}
	return q, nil
}

// hasMove reports whether the (class, block) move is already represented
// in the spliced quotient edges (whose Dst is already a block id).
func hasMove(edges []Edge, move Edge, class func(int32) int32) bool {
	for _, x := range edges {
		if class(x.Label) == move.Label && x.Dst == move.Dst {
			return true
		}
	}
	return false
}

// FindLift returns the first edge of concrete state s (in edge order)
// whose label class and destination block match the quotient move
// (qlabel, dstBlock). Stability guarantees such an edge exists for every
// quotient edge of s's block; ok is false only on a contract violation.
func (q *Quotient) FindLift(s int, qlabel int32, dstBlock int32) (Edge, bool) {
	c := q.Class(qlabel)
	for _, e := range q.Full.Out(s) {
		if q.Class(e.Label) == c && q.BlockOf[e.Dst] == dstBlock {
			return e, true
		}
	}
	return Edge{}, false
}

// refineCSR computes the coarsest partition of states 0..n-1 stable under
// the labelled edge relation (labels viewed through class): the strong-
// bisimulation partition. Block ids are dense, assigned in first-
// encounter order over the final state scan, so the result is a pure
// function of the input — no map iteration order is ever observed.
//
// The algorithm is worklist partition refinement in the Paige–Tarjan
// tradition: a split of block C enqueues only the blocks holding
// predecessors of the states C lost, so stabilised regions of the state
// space are never rescanned — the work per round is proportional to the
// part of the partition still in motion, not to the whole LTS. Within a
// round, blocks are split by exact signature — the dedup-sorted set of
// (class, successor block) moves — grouped through an open-addressed
// table with full collision checks. Splitting is monotone (the largest
// signature group keeps the block's id, the others get fresh ids), so
// the partition only ever refines and the loop terminates with the
// coarsest stable one.
// refineCancelStride is the number of member scans between context
// polls: a scan is sub-microsecond, so cancellation latency stays in
// the tens of microseconds without touching the hot path.
const refineCancelStride = 32768

func refineCSR(ctx context.Context, n int, out func(s int) []Edge, class func(int32) int32) ([]int32, int, error) {
	poll := ctx != nil && ctx.Done() != nil

	// The reverse CSR — the worklist needs "who can reach the states this
	// split moved" — is built lazily, on the first split that actually
	// moves states: partitions that collapse in one pass (frequent under
	// coarse observation classes) never pay for it.
	var rstart, rsrc []int32
	buildRev := func() {
		rstart = make([]int32, n+1)
		total := 0
		for s := 0; s < n; s++ {
			for _, e := range out(s) {
				rstart[e.Dst+1]++
				total++
			}
		}
		for i := 0; i < n; i++ {
			rstart[i+1] += rstart[i]
		}
		rsrc = make([]int32, total)
		rfill := append([]int32(nil), rstart[:n]...)
		for s := 0; s < n; s++ {
			for _, e := range out(s) {
				rsrc[rfill[e.Dst]] = int32(s)
				rfill[e.Dst]++
			}
		}
	}

	// Internal block state: ids are stable across rounds (only fresh
	// split-off groups get new ones); the canonical encounter-rank
	// numbering is applied in one renaming pass at the end.
	blockOf := make([]int32, n)
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	members := [][]int32{all}
	inQueue := []bool{true}
	queue := []int32{0}
	var nextQueue []int32
	dirtyState := make([]bool, n)
	var dirtyList []int32

	var sig []uint64       // scratch: the signature of the member at hand
	var groupSigs []uint64 // pooled: one canonical signature per group
	var gidx []int32       // group index per member of the block at hand
	var table []int32      // pooled open-addressed table (group index + 1)
	var tslots []int32     // slots written into table, zeroed after each block
	var changed []int32    // states whose block id changed this round

	sincePoll := 0
	for round := 0; len(queue) > 0; round++ {
		if poll && ctx.Err() != nil {
			return nil, 0, fmt.Errorf("lts: minimization cancelled after %d refinement rounds (%d blocks): %w", round, len(members), ctx.Err())
		}
		changed = changed[:0]
		for _, b := range queue {
			inQueue[b] = false
			ms := members[b]
			if len(ms) <= 1 {
				continue
			}
			// Group members by exact signature, two passes (so the id
			// assignment can favour the LARGEST group — see below). A
			// member's signature lives only in a scratch while it is
			// matched against the per-group canonical copies: nothing
			// proportional to the block's edge count is retained.
			tcap := 16
			for tcap < 2*len(ms) {
				tcap <<= 1
			}
			if len(table) < tcap {
				table = make([]int32, tcap) // group index + 1; 0 = empty
			}
			type group struct {
				off, len int32 // canonical signature, into groupSigs
				count    int32
			}
			var groups []group
			groupSigs = groupSigs[:0]
			gidx = gidx[:0]
			tslots = tslots[:0]
			for _, s := range ms {
				// In-round cancellation: one poll per refineCancelStride
				// member scans, so a huge block (round one is the whole
				// LTS) cannot delay a timeout by a full round.
				if poll {
					if sincePoll++; sincePoll >= refineCancelStride {
						sincePoll = 0
						if ctx.Err() != nil {
							return nil, 0, fmt.Errorf("lts: minimization cancelled after %d refinement rounds (%d blocks): %w", round, len(members), ctx.Err())
						}
					}
				}
				sig = sig[:0]
				for _, e := range out(int(s)) {
					sig = append(sig, uint64(uint32(class(e.Label)))<<32|uint64(uint32(blockOf[e.Dst])))
				}
				sortDedupU64(&sig)
				h := hashU64s(sig)
				for i := int(h) & (tcap - 1); ; i = (i + 1) & (tcap - 1) {
					ei := table[i]
					if ei == 0 {
						table[i] = int32(len(groups) + 1)
						tslots = append(tslots, int32(i))
						gidx = append(gidx, int32(len(groups)))
						groups = append(groups, group{off: int32(len(groupSigs)), len: int32(len(sig)), count: 1})
						groupSigs = append(groupSigs, sig...)
						break
					}
					g := &groups[ei-1]
					if int(g.len) == len(sig) && equalU64(groupSigs[g.off:g.off+g.len], sig) {
						g.count++
						gidx = append(gidx, ei-1)
						break
					}
				}
			}
			// The pooled table must be clean for the next block: zero
			// exactly the slots this block wrote.
			for _, i := range tslots {
				table[i] = 0
			}
			if len(groups) == 1 {
				continue
			}
			// The largest group keeps id b (ties: first encountered), the
			// others take fresh ids in encounter order. Keeping the big
			// group in place is the Hopcroft bound: every state then
			// migrates O(log n) times over the whole refinement, which
			// caps the total churn the reverse pass has to chase.
			keeper := 0
			for gi := 1; gi < len(groups); gi++ {
				if groups[gi].count > groups[keeper].count {
					keeper = gi
				}
			}
			ids := make([]int32, len(groups))
			segs := make([][]int32, len(groups))
			backing := make([]int32, len(ms))
			used := int32(0)
			for gi := range groups {
				segs[gi] = backing[used : used : used+groups[gi].count]
				used += groups[gi].count
				if gi == keeper {
					ids[gi] = b
				} else {
					ids[gi] = int32(len(members))
					members = append(members, nil)
					inQueue = append(inQueue, false)
				}
			}
			for mi, s := range ms {
				gi := gidx[mi]
				segs[gi] = append(segs[gi], s)
				if int(gi) != keeper {
					blockOf[s] = ids[gi]
					changed = append(changed, s)
				}
			}
			for gi := range groups {
				members[ids[gi]] = segs[gi]
			}
		}
		// Predecessors of moved states must be re-examined: their
		// signatures now mention the fresh block ids. (States that kept
		// their id need no re-examination — their predecessors'
		// signatures are bitwise unchanged, and any split those
		// predecessors still owe is triggered by a dirty co-member.)
		if len(changed) > 0 && rsrc == nil {
			buildRev()
		}
		for _, d := range changed {
			for _, p := range rsrc[rstart[d]:rstart[d+1]] {
				if !dirtyState[p] {
					dirtyState[p] = true
					dirtyList = append(dirtyList, p)
				}
			}
		}
		nextQueue = nextQueue[:0]
		for _, s := range dirtyList {
			dirtyState[s] = false
			if b := blockOf[s]; !inQueue[b] {
				inQueue[b] = true
				nextQueue = append(nextQueue, b)
			}
		}
		dirtyList = dirtyList[:0]
		slices.Sort(nextQueue) // fixed processing order: determinism
		queue, nextQueue = nextQueue, queue
	}

	// Canonical numbering: dense ids in first-encounter order over the
	// state scan (a plain rename slice — no map is consulted).
	rename := make([]int32, len(members))
	for i := range rename {
		rename[i] = -1
	}
	final := make([]int32, n)
	count := 0
	for s := 0; s < n; s++ {
		b := blockOf[s]
		if rename[b] < 0 {
			rename[b] = int32(count)
			count++
		}
		final[s] = rename[b]
	}
	return final, count, nil
}

// hashU64s mixes a signature into a 64-bit probe hash.
func hashU64s(sig []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, x := range sig {
		h ^= x
		h *= 0x100000001b3
		h ^= h >> 29
	}
	return h
}

// sortDedupU64 sorts the signature moves and removes duplicates in place.
// Move lists are short and mostly sorted (successor blocks correlate with
// edge order), so the insertion sort wins on constants; long lists fall
// back to the library sort.
func sortDedupU64(xs *[]uint64) {
	s := *xs
	if len(s) <= 1 {
		return
	}
	if len(s) <= 32 {
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
	} else {
		slices.Sort(s)
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[i-1] {
			s[w] = s[i]
			w++
		}
	}
	*xs = s[:w]
}

func equalU64(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// fingerprint renders the determinism-relevant content of a quotient:
// block count, representatives, members, and the quotient CSR. Exposed
// for the determinism tests (compare byte for byte across hostile
// interner orders and worker counts).
func (q *Quotient) fingerprint() string {
	out := fmt.Sprintf("blocks=%d initial=%d\n", q.NumBlocks(), q.InitialBlock())
	for b := 0; b < q.NumBlocks(); b++ {
		out += fmt.Sprintf("B%d rep=%d members=%v\n", b, q.Rep[b], q.Members(b))
	}
	for b := 0; b < q.NumBlocks(); b++ {
		for _, e := range q.Out(b) {
			out += fmt.Sprintf("q %d %d %d\n", b, e.Label, e.Dst)
		}
	}
	return out
}

// Fingerprint is the exported determinism fingerprint of the quotient
// (see fingerprint); tests outside the package compare it byte for byte.
func (q *Quotient) Fingerprint() string { return q.fingerprint() }

// QuotientLTS materialises a quotient as a standalone LTS: blocks
// become states (represented by their Rep's type), and the quotient CSR
// becomes the edge array. Labels are shared with the full LTS — quotient
// edges already carry concrete label indices — so formulas compiled over
// the full alphabet apply unchanged, and a second Minimize over a
// coarser class vector yields a quotient-of-quotient (used by
// VerifyAll's cross-property refinement reuse: refine once over the
// join of all properties' classes, then project each property's
// quotient from the joint one).
func QuotientLTS(q *Quotient) *LTS {
	nb := q.NumBlocks()
	l := &LTS{
		Initial:   q.InitialBlock(),
		Labels:    q.Full.Labels,
		Truncated: q.Full.Truncated,
		States:    make([]types.Type, nb),
	}
	l.start = make([]int32, 1, nb+1)
	for b := 0; b < nb; b++ {
		l.States[b] = q.Full.States[q.Rep[b]]
		l.edges = append(l.edges, q.Out(b)...)
		l.start = append(l.start, int32(len(l.edges)))
	}
	return l
}
