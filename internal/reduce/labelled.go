package reduce

import (
	"fmt"

	"effpi/internal/term"
	"effpi/internal/typecheck"
	"effpi/internal/types"
)

// This file implements the over-approximating labelled semantics of open
// typed terms (Def. 4.1 / Fig. 5). Open terms reduce by instantiating
// their free variables non-deterministically: ¬x steps to both tt and ff,
// send/recv on variable channels fire visible input/output labels, and
// parallel components synchronise on a common channel variable.
//
// Not implemented: rule [SR-x()] (application of a variable in function
// position, which instantiates it with an arbitrary suitably-typed
// function) — its transition targets are not finitely enumerable and the
// theory tests do not need it. This mirrors the paper's own use of the
// semantics as an analysis device rather than an implementation.

// TermLabel is a transition label of the open-term semantics.
type TermLabel interface {
	termLabel()
	String() string
}

// TauStep is τ[r]: an internal step by base rule r, or the instantiating
// steps τ[¬x], τ[if x], τ[λ()].
type TauStep struct{ Rule string }

// OutLabel is w⟨w′⟩: output of w′ on channel w ([SR-send]).
type OutLabel struct{ Subject, Payload term.Term }

// InLabel is w(w′): input of w′ from channel w ([SR-recv]).
type InLabel struct{ Subject, Payload term.Term }

// CommLabel is τ[w]: a synchronisation on channel w ([SR-Comm] on a
// variable or instance w).
type CommLabel struct{ Subject term.Term }

func (TauStep) termLabel()   {}
func (OutLabel) termLabel()  {}
func (InLabel) termLabel()   {}
func (CommLabel) termLabel() {}

func (l TauStep) String() string   { return "τ[" + l.Rule + "]" }
func (l OutLabel) String() string  { return fmt.Sprintf("%s⟨%s⟩", l.Subject, l.Payload) }
func (l InLabel) String() string   { return fmt.Sprintf("%s(%s)", l.Subject, l.Payload) }
func (l CommLabel) String() string { return fmt.Sprintf("τ[%s]", l.Subject) }

// IsTauStarLabel reports whether l is in the τ•-set of Def. 4.1 (internal
// moves excluding interaction: no i/o labels, no τ[w] communications).
func IsTauStarLabel(l TermLabel) bool {
	switch l := l.(type) {
	case TauStep:
		return true
	case CommLabel:
		_ = l
		return false
	default:
		return false
	}
}

// TermStep is one labelled transition of an open term.
type TermStep struct {
	Label TermLabel
	Next  term.Term
}

// Transitions computes the labelled transitions Γ ⊢ t --α--> t′ of
// Fig. 5 (minus [SR-x()], see the package comment).
func Transitions(env *types.Env, t term.Term) []TermStep {
	var steps []TermStep

	// [SR-→]: concrete reductions (including [R-Comm] on instances).
	if t2, rule, ok := Step(t); ok {
		if rule == "R-Comm" {
			steps = append(steps, TermStep{Label: TauStep{Rule: "R-Comm"}, Next: t2})
		} else {
			steps = append(steps, TermStep{Label: TauStep{Rule: rule}, Next: t2})
		}
	}

	steps = append(steps, openTransitions(env, t)...)
	return steps
}

// openTransitions computes the variable-instantiating and visible
// transitions.
func openTransitions(env *types.Env, t term.Term) []TermStep {
	switch t := t.(type) {
	case term.Not:
		if v, ok := t.T.(term.Var); ok {
			return []TermStep{
				{Label: TauStep{Rule: "¬" + v.Name}, Next: term.BoolLit{Val: true}},
				{Label: TauStep{Rule: "¬" + v.Name}, Next: term.BoolLit{Val: false}},
			}
		}
		return lift(openTransitions(env, t.T), func(s term.Term) term.Term { return term.Not{T: s} })

	case term.If:
		if v, ok := t.Cond.(term.Var); ok {
			return []TermStep{
				{Label: TauStep{Rule: "if " + v.Name}, Next: t.Then},
				{Label: TauStep{Rule: "if " + v.Name}, Next: t.Else},
			}
		}
		return lift(openTransitions(env, t.Cond), func(s term.Term) term.Term {
			return term.If{Cond: s, Then: t.Then, Else: t.Else}
		})

	case term.App:
		// [SR-λ()]: (λy.t) x → t{x/y}.
		if lam, ok := t.Fn.(term.Lam); ok {
			if x, ok := t.Arg.(term.Var); ok {
				return []TermStep{{Label: TauStep{Rule: "λ()"}, Next: term.Subst(lam.Body, lam.Var, x)}}
			}
		}
		return nil

	case term.Send:
		// [SR-send]: all three positions must be values or variables.
		if isValueOrVar(t.Ch) && isValueOrVar(t.Val) && isValueOrVar(t.Cont) {
			return []TermStep{{
				Label: OutLabel{Subject: t.Ch, Payload: t.Val},
				Next:  term.App{Fn: t.Cont, Arg: term.UnitVal{}},
			}}
		}
		return nil

	case term.Recv:
		// [SR-recv]: early input — receive any w′ with Γ ⊢ w′ : T, where
		// T is the input payload type. Candidates: environment variables
		// of a suitable type, plus a canonical closed value.
		if !isValueOrVar(t.Ch) || !isValueOrVar(t.Cont) {
			return nil
		}
		payloadT, ok := recvPayloadType(env, t)
		if !ok {
			return nil
		}
		var steps []TermStep
		for _, w := range inputCandidates(env, payloadT) {
			steps = append(steps, TermStep{
				Label: InLabel{Subject: t.Ch, Payload: w},
				Next:  term.App{Fn: t.Cont, Arg: w},
			})
		}
		return steps

	case term.Par:
		comps := flattenPar(t)
		var steps []TermStep
		per := make([][]TermStep, len(comps))
		for i, c := range comps {
			per[i] = openTransitions(env, c)
			// Interleave, provided labels don't mention bound vars
			// (Barendregt keeps them distinct, so this is direct).
			for _, st := range per[i] {
				next := make([]term.Term, len(comps))
				copy(next, comps)
				next[i] = st.Next
				steps = append(steps, TermStep{Label: st.Label, Next: parOf(next)})
			}
		}
		// [SR-Comm]: matching output/input on the same variable subject.
		for i := range comps {
			for j := range comps {
				if i == j {
					continue
				}
				for _, so := range per[i] {
					out, ok := so.Label.(OutLabel)
					if !ok {
						continue
					}
					// [SR-recv] admits any suitably-typed payload, so a
					// matching receiver accepts exactly what the sender
					// offers (early semantics).
					recv, ok := comps[j].(term.Recv)
					if !ok || !sameSubject(out.Subject, recv.Ch) || !isValueOrVar(recv.Cont) {
						continue
					}
					next := make([]term.Term, len(comps))
					copy(next, comps)
					next[i] = so.Next
					next[j] = term.App{Fn: recv.Cont, Arg: out.Payload}
					steps = append(steps, TermStep{Label: CommLabel{Subject: out.Subject}, Next: parOf(next)})
				}
			}
		}
		return steps

	default:
		return nil
	}
}

func lift(steps []TermStep, rebuild func(term.Term) term.Term) []TermStep {
	out := make([]TermStep, len(steps))
	for i, s := range steps {
		out[i] = TermStep{Label: s.Label, Next: rebuild(s.Next)}
	}
	return out
}

func isValueOrVar(t term.Term) bool {
	if term.IsValue(t) {
		return true
	}
	_, ok := t.(term.Var)
	return ok
}

func sameSubject(a, b term.Term) bool {
	av, aok := a.(term.Var)
	bv, bok := b.(term.Var)
	if aok && bok {
		return av.Name == bv.Name
	}
	ac, aok := a.(term.ChanVal)
	bc, bok := b.(term.ChanVal)
	return aok && bok && ac.Name == bc.Name
}

// recvPayloadType resolves the payload type of the receive's channel.
func recvPayloadType(env *types.Env, t term.Recv) (types.Type, bool) {
	chT, err := typecheck.Infer(env, t.Ch)
	if err != nil {
		return nil, false
	}
	cap, ok := types.ResolveChan(env, chT)
	if !ok || !cap.In {
		return nil, false
	}
	return cap.Payload, true
}

// inputCandidates enumerates the w′ used by the early-input rule:
// environment variables whose singleton type fits, plus one canonical
// closed value of the payload type when it has one.
func inputCandidates(env *types.Env, payload types.Type) []term.Term {
	var out []term.Term
	for _, name := range env.Names() {
		if types.Subtype(env, types.Var{Name: name}, payload) {
			out = append(out, term.Var{Name: name})
		}
	}
	if v, ok := canonicalValue(payload); ok {
		out = append(out, v)
	}
	return out
}

func canonicalValue(t types.Type) (term.Term, bool) {
	switch t := types.UnfoldAll(t).(type) {
	case types.Bool:
		return term.BoolLit{Val: true}, true
	case types.Int:
		return term.IntLit{Val: 0}, true
	case types.Str:
		return term.StrLit{Val: "·"}, true
	case types.Unit:
		return term.UnitVal{}, true
	case types.ChanIO:
		return freshChan(t.Elem), true
	case types.ChanI:
		return freshChan(t.Elem), true
	case types.ChanO:
		return freshChan(t.Elem), true
	default:
		return nil, false
	}
}
