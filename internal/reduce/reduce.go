// Package reduce implements the operational semantics of λπ⩽ terms: the
// call-by-value reduction of Def. 2.4 / Fig. 3 (including the error
// rules), and the over-approximating labelled semantics of open typed
// terms of Def. 4.1 / Fig. 5 used to relate process behaviour to type
// behaviour (Thm. 4.4, 4.5).
package reduce

import (
	"fmt"
	"sync/atomic"

	"effpi/internal/term"
	"effpi/internal/types"
)

var chanCounter atomic.Uint64

// freshChan returns a fresh channel instance ([R-chan()]).
func freshChan(elem types.Type) term.ChanVal {
	n := chanCounter.Add(1)
	return term.ChanVal{Name: fmt.Sprintf("a%d", n), Elem: elem}
}

// Step performs one reduction step of Def. 2.4, preferring communications,
// then leftmost-innermost functional reductions. It returns the reduct,
// the name of the rule applied, and whether any step was possible.
func Step(t term.Term) (term.Term, string, bool) {
	// Communication has priority so that closed process soups make
	// progress deterministically ([R-Comm] modulo ≡).
	if t2, ok := stepComm(t); ok {
		return t2, "R-Comm", true
	}
	return stepFun(t)
}

// Eval reduces t for at most maxSteps steps, returning the final term and
// the number of steps taken.
func Eval(t term.Term, maxSteps int) (term.Term, int) {
	steps := 0
	for steps < maxSteps {
		t2, _, ok := Step(t)
		if !ok {
			return t, steps
		}
		t = t2
		steps++
	}
	return t, steps
}

// IsError reports whether t is (or contains, under evaluation contexts)
// the error value: t = E[err] for some context E.
func IsError(t term.Term) bool {
	switch t := t.(type) {
	case term.Err:
		return true
	case term.Not:
		return IsError(t.T)
	case term.If:
		return IsError(t.Cond)
	case term.Let:
		return IsError(t.Bound) || (term.IsValue(t.Bound) && IsError(t.Body))
	case term.App:
		return IsError(t.Fn) || IsError(t.Arg)
	case term.Send:
		return IsError(t.Ch) || IsError(t.Val) || IsError(t.Cont)
	case term.Recv:
		return IsError(t.Ch) || IsError(t.Cont)
	case term.Par:
		return IsError(t.L) || IsError(t.R)
	case term.BinOp:
		return IsError(t.L) || IsError(t.R)
	default:
		return false
	}
}

// stepComm implements [R-Comm] modulo the structural congruence ≡:
// send(a,u,v1) ‖ recv(a,v2) → v1 () ‖ v2 u across a flattened parallel
// composition.
func stepComm(t term.Term) (term.Term, bool) {
	comps := flattenPar(t)
	if len(comps) < 2 {
		return nil, false
	}
	for i, s := range comps {
		send, ok := s.(term.Send)
		if !ok || !term.IsValue(send.Ch) || !term.IsValue(send.Val) || !term.IsValue(send.Cont) {
			continue
		}
		sc, ok := send.Ch.(term.ChanVal)
		if !ok {
			continue
		}
		for j, r := range comps {
			if i == j {
				continue
			}
			recv, ok := r.(term.Recv)
			if !ok || !term.IsValue(recv.Ch) || !term.IsValue(recv.Cont) {
				continue
			}
			rc, ok := recv.Ch.(term.ChanVal)
			if !ok || rc.Name != sc.Name {
				continue
			}
			next := make([]term.Term, len(comps))
			copy(next, comps)
			next[i] = term.App{Fn: send.Cont, Arg: term.UnitVal{}}
			next[j] = term.App{Fn: recv.Cont, Arg: send.Val}
			return parOf(next), true
		}
	}
	return nil, false
}

// stepFun performs one functional (non-communication) reduction step.
func stepFun(t term.Term) (term.Term, string, bool) {
	switch t := t.(type) {
	case term.Not:
		if b, ok := t.T.(term.BoolLit); ok {
			return term.BoolLit{Val: !b.Val}, "R-¬", true
		}
		if term.IsValue(t.T) {
			return term.Err{Msg: "¬ applied to non-boolean"}, "Err-¬", true
		}
		return inCtx(t.T, func(s term.Term) term.Term { return term.Not{T: s} })

	case term.If:
		if b, ok := t.Cond.(term.BoolLit); ok {
			if b.Val {
				return t.Then, "R-if-tt", true
			}
			return t.Else, "R-if-ff", true
		}
		if term.IsValue(t.Cond) {
			return term.Err{Msg: "if on non-boolean"}, "Err-if", true
		}
		return inCtx(t.Cond, func(s term.Term) term.Term {
			return term.If{Cond: s, Then: t.Then, Else: t.Else}
		})

	case term.BinOp:
		return stepBinOp(t)

	case term.Let:
		if !term.IsValue(t.Bound) {
			return inCtx(t.Bound, func(s term.Term) term.Term {
				return term.Let{Var: t.Var, Ann: t.Ann, Bound: s, Body: t.Body}
			})
		}
		return stepLet(t)

	case term.App:
		if !term.IsValue(t.Fn) {
			return inCtx(t.Fn, func(s term.Term) term.Term { return term.App{Fn: s, Arg: t.Arg} })
		}
		if !term.IsValue(t.Arg) {
			return inCtx(t.Arg, func(s term.Term) term.Term { return term.App{Fn: t.Fn, Arg: s} })
		}
		lam, ok := t.Fn.(term.Lam)
		if !ok {
			return term.Err{Msg: "application of non-function"}, "Err-app", true
		}
		return term.Subst(lam.Body, lam.Var, t.Arg), "R-λ", true

	case term.NewChan:
		return freshChan(t.Elem), "R-chan()", true

	case term.Send:
		if !term.IsValue(t.Ch) {
			return inCtx(t.Ch, func(s term.Term) term.Term { return term.Send{Ch: s, Val: t.Val, Cont: t.Cont} })
		}
		if !term.IsValue(t.Val) {
			return inCtx(t.Val, func(s term.Term) term.Term { return term.Send{Ch: t.Ch, Val: s, Cont: t.Cont} })
		}
		if !term.IsValue(t.Cont) {
			return inCtx(t.Cont, func(s term.Term) term.Term { return term.Send{Ch: t.Ch, Val: t.Val, Cont: s} })
		}
		if _, ok := t.Ch.(term.ChanVal); !ok {
			if _, isVar := t.Ch.(term.Var); !isVar {
				return term.Err{Msg: "send on non-channel"}, "Err-send", true
			}
		}
		return nil, "", false // a value-send waits for a partner

	case term.Recv:
		if !term.IsValue(t.Ch) {
			return inCtx(t.Ch, func(s term.Term) term.Term { return term.Recv{Ch: s, Cont: t.Cont} })
		}
		if !term.IsValue(t.Cont) {
			return inCtx(t.Cont, func(s term.Term) term.Term { return term.Recv{Ch: t.Ch, Cont: s} })
		}
		if _, ok := t.Ch.(term.ChanVal); !ok {
			if _, isVar := t.Ch.(term.Var); !isVar {
				return term.Err{Msg: "recv on non-channel"}, "Err-recv", true
			}
		}
		return nil, "", false

	case term.Par:
		// Error rule: a value in parallel composition is an error.
		if term.IsValue(t.L) || term.IsValue(t.R) {
			return term.Err{Msg: "value in parallel composition"}, "Err-par", true
		}
		// end ‖ end ≡ end.
		if isEnd(t.L) && isEnd(t.R) {
			return term.End{}, "≡", true
		}
		if t2, rule, ok := stepFun(t.L); ok {
			return term.Par{L: t2, R: t.R}, rule, true
		}
		if t2, rule, ok := stepFun(t.R); ok {
			return term.Par{L: t.L, R: t2}, rule, true
		}
		return nil, "", false

	default:
		return nil, "", false
	}
}

func stepLet(t term.Let) (term.Term, string, bool) {
	fv := term.FreeVars(t.Body)
	if !fv[t.Var] {
		// [R-letgc].
		return t.Body, "R-letgc", true
	}
	bound := t.Bound
	if term.FreeVars(bound)[t.Var] {
		// Recursive binding: substitute a self-unfolding box so that
		// each occurrence re-unfolds on demand ([R-let] applied lazily).
		bound = term.Let{Var: t.Var, Ann: t.Ann, Bound: t.Bound, Body: term.Var{Name: t.Var}}
		if v, ok := t.Body.(term.Var); ok && v.Name == t.Var {
			// let x = w in x → w{box/x}: unfold once.
			return term.Subst(t.Bound, t.Var, bound), "R-let", true
		}
	}
	return term.Subst(t.Body, t.Var, bound), "R-let", true
}

func stepBinOp(t term.BinOp) (term.Term, string, bool) {
	if !term.IsValue(t.L) {
		return inCtx(t.L, func(s term.Term) term.Term { return term.BinOp{Op: t.Op, L: s, R: t.R} })
	}
	if !term.IsValue(t.R) {
		return inCtx(t.R, func(s term.Term) term.Term { return term.BinOp{Op: t.Op, L: t.L, R: s} })
	}
	li, lok := t.L.(term.IntLit)
	ri, rok := t.R.(term.IntLit)
	switch t.Op {
	case "+", "-", "*", ">", "<", ">=", "<=":
		if !lok || !rok {
			return term.Err{Msg: "arithmetic on non-integers"}, "Err-op", true
		}
		switch t.Op {
		case "+":
			return term.IntLit{Val: li.Val + ri.Val}, "R-op", true
		case "-":
			return term.IntLit{Val: li.Val - ri.Val}, "R-op", true
		case "*":
			return term.IntLit{Val: li.Val * ri.Val}, "R-op", true
		case ">":
			return term.BoolLit{Val: li.Val > ri.Val}, "R-op", true
		case "<":
			return term.BoolLit{Val: li.Val < ri.Val}, "R-op", true
		case ">=":
			return term.BoolLit{Val: li.Val >= ri.Val}, "R-op", true
		default:
			return term.BoolLit{Val: li.Val <= ri.Val}, "R-op", true
		}
	case "==":
		return term.BoolLit{Val: t.L.String() == t.R.String()}, "R-op", true
	case "++":
		ls, lok := t.L.(term.StrLit)
		rs, rok := t.R.(term.StrLit)
		if !lok || !rok {
			return term.Err{Msg: "concatenation of non-strings"}, "Err-op", true
		}
		return term.StrLit{Val: ls.Val + rs.Val}, "R-op", true
	default:
		return term.Err{Msg: "unknown operator " + t.Op}, "Err-op", true
	}
}

// inCtx reduces inside an evaluation context: step the subterm and
// rebuild.
func inCtx(sub term.Term, rebuild func(term.Term) term.Term) (term.Term, string, bool) {
	if t2, ok := stepComm(sub); ok {
		return rebuild(t2), "R-Comm", true
	}
	t2, rule, ok := stepFun(sub)
	if !ok {
		return nil, "", false
	}
	return rebuild(t2), rule, true
}

func flattenPar(t term.Term) []term.Term {
	if p, ok := t.(term.Par); ok {
		return append(flattenPar(p.L), flattenPar(p.R)...)
	}
	return []term.Term{t}
}

func parOf(ts []term.Term) term.Term {
	if len(ts) == 0 {
		return term.End{}
	}
	t := ts[len(ts)-1]
	for i := len(ts) - 2; i >= 0; i-- {
		t = term.Par{L: ts[i], R: t}
	}
	return t
}

func isEnd(t term.Term) bool {
	_, ok := t.(term.End)
	return ok
}
