package reduce

import (
	"fmt"

	"effpi/internal/term"
)

// This file provides bounded exhaustive exploration of the
// *nondeterministic* reduction relation: Step commits to one scheduling
// (communications first, leftmost redex), but Thm. 3.6's safety statement
// quantifies over all reducts. StepAll enumerates every one-step reduct —
// every communication pairing and every enabled component — and
// CheckSafety searches the reachable set for errors.

// StepAll returns all single-step reducts of t under Def. 2.4, covering
// every enabled communication pair and every independently reducible
// parallel component.
func StepAll(t term.Term) []term.Term {
	var out []term.Term

	// All communication pairings across the parallel soup.
	comps := flattenPar(t)
	for i, s := range comps {
		send, ok := s.(term.Send)
		if !ok || !term.IsValue(send.Ch) || !term.IsValue(send.Val) || !term.IsValue(send.Cont) {
			continue
		}
		sc, ok := send.Ch.(term.ChanVal)
		if !ok {
			continue
		}
		for j, r := range comps {
			if i == j {
				continue
			}
			recv, ok := r.(term.Recv)
			if !ok || !term.IsValue(recv.Ch) || !term.IsValue(recv.Cont) {
				continue
			}
			rc, ok := recv.Ch.(term.ChanVal)
			if !ok || rc.Name != sc.Name {
				continue
			}
			next := make([]term.Term, len(comps))
			copy(next, comps)
			next[i] = term.App{Fn: send.Cont, Arg: term.UnitVal{}}
			next[j] = term.App{Fn: recv.Cont, Arg: send.Val}
			out = append(out, parOf(next))
		}
	}

	// Each component's own functional step (independent interleavings).
	if len(comps) > 1 {
		for i, c := range comps {
			if c2, _, ok := stepFun(c); ok {
				next := make([]term.Term, len(comps))
				copy(next, comps)
				next[i] = c2
				out = append(out, parOf(next))
			}
		}
		return dedupeTerms(out)
	}

	if t2, _, ok := stepFun(t); ok {
		out = append(out, t2)
	}
	return dedupeTerms(out)
}

func dedupeTerms(ts []term.Term) []term.Term {
	seen := map[string]bool{}
	var out []term.Term
	for _, t := range ts {
		k := t.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return out
}

// SafetyReport is the result of an exhaustive bounded search.
type SafetyReport struct {
	// States is the number of distinct terms visited.
	States int
	// Truncated reports whether the bound was hit before exhaustion.
	Truncated bool
	// ErrWitness is a reachable erroneous term, if any.
	ErrWitness term.Term
}

// CheckSafety explores all reducts of t (up to maxStates distinct terms)
// and reports whether an error term is reachable — the "t is safe"
// predicate of Def. 2.4, decided exhaustively on bounded state spaces.
func CheckSafety(t term.Term, maxStates int) SafetyReport {
	if maxStates <= 0 {
		maxStates = 1 << 16
	}
	seen := map[string]bool{}
	queue := []term.Term{t}
	seen[t.String()] = true
	report := SafetyReport{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		report.States++
		if IsError(cur) {
			report.ErrWitness = cur
			return report
		}
		if report.States >= maxStates {
			report.Truncated = true
			return report
		}
		for _, next := range StepAll(cur) {
			k := next.String()
			if !seen[k] {
				seen[k] = true
				queue = append(queue, next)
			}
		}
	}
	return report
}

// MustBeSafe is a test helper: it panics if an error term is reachable.
func MustBeSafe(t term.Term, maxStates int) {
	if r := CheckSafety(t, maxStates); r.ErrWitness != nil {
		panic(fmt.Sprintf("reduce: reachable error term: %s", r.ErrWitness))
	}
}
