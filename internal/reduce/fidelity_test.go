package reduce

import (
	"testing"

	"effpi/internal/term"
	"effpi/internal/typecheck"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// This file samples the two directions of the type/process correspondence
// on the ping-pong configuration of Ex. 4.3:
//
//   - subject transition (Thm. 4.4): every communication step of the term
//     is matched by a τ[S,S′] transition of its type, and the reduct is
//     typed by the transition's target;
//   - type fidelity (Thm. 4.5): every communication transition of the
//     type is matched by a communication step of the term (possibly after
//     τ•-steps).

func pingPongTermAndType() (*types.Env, term.Term, types.Type) {
	env := types.EnvOf(
		"y", types.ChanIO{Elem: types.Str{}},
		"z", types.ChanIO{Elem: types.ChanO{Elem: types.Str{}}},
	)
	t := term.Par{
		L: term.Send{Ch: v("z"), Val: v("y"),
			Cont: thunkT(term.Recv{Ch: v("y"), Cont: lam("reply", types.Str{}, term.End{})})},
		R: term.Recv{Ch: v("z"),
			Cont: lam("replyTo", types.ChanO{Elem: types.Str{}},
				term.Send{Ch: v("replyTo"), Val: term.StrLit{Val: "Hi!"}, Cont: thunkT(term.End{})})},
	}
	ty := types.Par{
		L: types.Out{Ch: types.Var{Name: "z"}, Payload: types.Var{Name: "y"},
			Cont: types.Thunk(types.In{Ch: types.Var{Name: "y"},
				Cont: types.Pi{Var: "reply", Dom: types.Str{}, Cod: types.Nil{}}})},
		R: types.In{Ch: types.Var{Name: "z"},
			Cont: types.Pi{Var: "replyTo", Dom: types.ChanO{Elem: types.Str{}},
				Cod: types.Out{Ch: types.Var{Name: "replyTo"}, Payload: types.Str{}, Cont: types.Thunk(types.Nil{})}}},
	}
	return env, t, ty
}

// commVar extracts the subject variable name of a τ[x] term step.
func commVar(l TermLabel) (string, bool) {
	c, ok := l.(CommLabel)
	if !ok {
		return "", false
	}
	vv, ok := c.Subject.(term.Var)
	if !ok {
		return "", false
	}
	return vv.Name, true
}

// typeCommVar extracts the subject variable of a precise τ[x,x] type step.
func typeCommVar(l typelts.Label) (string, bool) {
	c, ok := l.(typelts.Comm)
	if !ok {
		return "", false
	}
	s, okS := c.Sender.(types.Var)
	r, okR := c.Receiver.(types.Var)
	if !okS || !okR || s.Name != r.Name {
		return "", false
	}
	return s.Name, true
}

// tauStarClosure exhausts τ•-steps (internal, non-interacting) of a term.
func tauStarClosure(env *types.Env, t term.Term) term.Term {
	for i := 0; i < 200; i++ {
		advanced := false
		for _, s := range Transitions(env, t) {
			if IsTauStarLabel(s.Label) {
				t = s.Next
				advanced = true
				break
			}
		}
		if !advanced {
			return t
		}
	}
	return t
}

// TestFidelitySampledEx43 walks the type and the term side by side: the
// type's two communications (on z, then on y) must be mirrored by the
// term, and the reducts must stay in the typing relation.
func TestFidelitySampledEx43(t *testing.T) {
	env, tm, ty := pingPongTermAndType()
	sem := &typelts.Semantics{Env: env}

	if _, err := typecheck.Infer(env, tm); err != nil {
		t.Fatalf("initial typing: %v", err)
	}

	for round, wantChan := range []string{"z", "y"} {
		// Type side: find the precise communication.
		var nextType types.Type
		found := false
		for _, s := range sem.Transitions(ty) {
			if x, ok := typeCommVar(s.Label); ok && x == wantChan {
				nextType = s.Next
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("round %d: type has no τ[%s,%s] transition", round, wantChan, wantChan)
		}

		// Term side (Thm. 4.5(3)): after τ•-steps, the term communicates
		// on the same channel.
		tm = tauStarClosure(env, tm)
		var nextTerm term.Term
		found = false
		for _, s := range Transitions(env, tm) {
			if x, ok := commVar(s.Label); ok && x == wantChan {
				nextTerm = s.Next
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("round %d: term has no τ[%s] transition (fidelity failure)", round, wantChan)
		}

		// Subject transition (Thm. 4.4(2d)): the term reduct is typed by
		// the type reduct.
		nextTerm = tauStarClosure(env, nextTerm)
		got, err := typecheck.Infer(env, nextTerm)
		if err != nil {
			t.Fatalf("round %d: reduct untypable: %v\n  term %s", round, err, nextTerm)
		}
		if !types.Subtype(env, got, nextType) {
			t.Fatalf("round %d: reduct type %s not below transition target %s", round, got, nextType)
		}
		tm, ty = nextTerm, nextType
	}

	// Both sides must now be terminated.
	if !types.IsNilPar(ty) {
		t.Errorf("type did not reach nil‖nil: %s", ty)
	}
	final, _ := Eval(tm, 100)
	if _, ok := final.(term.End); !ok {
		t.Errorf("term did not reach end: %s", final)
	}
}

// TestSubjectTransitionOutputLabel checks Thm. 4.4(2b): a visible output
// step of the term is matched by an output transition of the type.
func TestSubjectTransitionOutputLabel(t *testing.T) {
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	tm := term.Send{Ch: v("x"), Val: term.IntLit{Val: 1}, Cont: thunkT(term.End{})}
	ty := types.Out{Ch: types.Var{Name: "x"}, Payload: types.Int{}, Cont: types.Thunk(types.Nil{})}
	sem := &typelts.Semantics{Env: env}

	termOut := false
	for _, s := range Transitions(env, tm) {
		if _, ok := s.Label.(OutLabel); ok {
			termOut = true
		}
	}
	typeOut := false
	for _, s := range sem.Transitions(ty) {
		if _, ok := s.Label.(typelts.Output); ok {
			typeOut = true
		}
	}
	if termOut != typeOut {
		t.Errorf("output capability mismatch: term=%v type=%v", termOut, typeOut)
	}
}
