package reduce

import (
	"testing"

	"effpi/internal/term"
	"effpi/internal/typecheck"
	"effpi/internal/types"
)

func v(n string) term.Term { return term.Var{Name: n} }

func lam(x string, ann types.Type, body term.Term) term.Term {
	return term.Lam{Var: x, Ann: ann, Body: body}
}

func thunkT(body term.Term) term.Term {
	return term.Lam{Var: "_", Ann: types.Unit{}, Body: body}
}

func TestFunctionalReduction(t *testing.T) {
	cases := []struct {
		in   term.Term
		want string
	}{
		{term.Not{T: term.BoolLit{Val: true}}, "false"},
		{term.If{Cond: term.BoolLit{Val: true}, Then: term.IntLit{Val: 1}, Else: term.IntLit{Val: 2}}, "1"},
		{term.If{Cond: term.BoolLit{Val: false}, Then: term.IntLit{Val: 1}, Else: term.IntLit{Val: 2}}, "2"},
		{term.App{Fn: lam("x", types.Int{}, term.BinOp{Op: "+", L: v("x"), R: term.IntLit{Val: 1}}), Arg: term.IntLit{Val: 41}}, "42"},
		{term.Let{Var: "x", Bound: term.IntLit{Val: 5}, Body: term.BinOp{Op: "*", L: v("x"), R: v("x")}}, "25"},
		{term.BinOp{Op: ">", L: term.IntLit{Val: 50000}, R: term.IntLit{Val: 42000}}, "true"},
		{term.BinOp{Op: "++", L: term.StrLit{Val: "Hi"}, R: term.StrLit{Val: "!"}}, `"Hi!"`},
	}
	for _, c := range cases {
		got, _ := Eval(c.in, 1000)
		if got.String() != c.want {
			t.Errorf("Eval(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestErrorRules(t *testing.T) {
	bad := []term.Term{
		term.Not{T: term.IntLit{Val: 3}},                                                  // ¬ on non-boolean
		term.If{Cond: term.IntLit{Val: 1}, Then: term.End{}, Else: term.End{}},            // if on non-boolean
		term.App{Fn: term.IntLit{Val: 1}, Arg: term.IntLit{Val: 2}},                       // non-function applied
		term.Send{Ch: term.IntLit{Val: 1}, Val: term.UnitVal{}, Cont: thunkT(term.End{})}, // send on non-channel
		term.Recv{Ch: term.BoolLit{Val: true}, Cont: lam("x", types.Unit{}, term.End{})},  // recv on non-channel
		term.Par{L: term.IntLit{Val: 1}, R: term.End{}},                                   // value in parallel
	}
	for _, b := range bad {
		got, _ := Eval(b, 100)
		if !IsError(got) {
			t.Errorf("Eval(%s) = %s, expected an error", b, got)
		}
	}
}

// TestPingPongRuns executes the ping-pong system of Ex. 2.2 end-to-end
// under the Def. 2.4 semantics: main () creates the channels, the
// processes communicate twice, and everything terminates as end.
func TestPingPongRuns(t *testing.T) {
	strT := types.Str{}
	pinger := lam("self", types.ChanIO{Elem: strT},
		lam("pongc", types.ChanO{Elem: types.ChanO{Elem: strT}},
			term.Send{Ch: v("pongc"), Val: v("self"),
				Cont: thunkT(term.Recv{Ch: v("self"), Cont: lam("reply", strT, term.End{})})}))
	ponger := lam("self", types.ChanIO{Elem: types.ChanO{Elem: strT}},
		term.Recv{Ch: v("self"),
			Cont: lam("replyTo", types.ChanO{Elem: strT},
				term.Send{Ch: v("replyTo"), Val: term.StrLit{Val: "Hi!"}, Cont: thunkT(term.End{})})})
	main := term.Let{Var: "y", Bound: term.NewChan{Elem: strT},
		Body: term.Let{Var: "z", Bound: term.NewChan{Elem: types.ChanO{Elem: strT}},
			Body: term.Par{
				L: term.App{Fn: term.App{Fn: pinger, Arg: v("y")}, Arg: v("z")},
				R: term.App{Fn: ponger, Arg: v("z")},
			}}}

	got, steps := Eval(main, 1000)
	if _, ok := got.(term.End); !ok {
		t.Fatalf("ping-pong did not terminate as end after %d steps: %s", steps, got)
	}
	if IsError(got) {
		t.Fatal("ping-pong produced an error")
	}
}

// TestTypeSafetySampled samples Thm. 3.6: well-typed closed terms never
// reduce to an error.
func TestTypeSafetySampled(t *testing.T) {
	intT := types.Int{}
	progs := []term.Term{
		// Arithmetic under functions.
		term.App{Fn: lam("x", intT, term.If{
			Cond: term.BinOp{Op: ">", L: v("x"), R: term.IntLit{Val: 0}},
			Then: v("x"),
			Else: term.BinOp{Op: "-", L: term.IntLit{Val: 0}, R: v("x")},
		}), Arg: term.IntLit{Val: -7}},
		// Channel round-trip.
		term.Let{Var: "c", Bound: term.NewChan{Elem: intT},
			Body: term.Par{
				L: term.Send{Ch: v("c"), Val: term.IntLit{Val: 42}, Cont: thunkT(term.End{})},
				R: term.Recv{Ch: v("c"), Cont: lam("x", intT, term.End{})},
			}},
	}
	env := types.NewEnv()
	for _, p := range progs {
		if _, err := typecheck.Infer(env, p); err != nil {
			t.Errorf("program should be typable: %v\n  %s", err, p)
			continue
		}
		cur := p
		for i := 0; i < 200; i++ {
			if IsError(cur) {
				t.Errorf("well-typed term reduced to error: %s", cur)
				break
			}
			next, _, ok := Step(cur)
			if !ok {
				break
			}
			cur = next
		}
	}
}

// TestSubjectReductionSampled samples the subject-transition theorem
// (Thm. 4.4): along reductions of a typed term, every intermediate term
// stays typable.
func TestSubjectReductionSampled(t *testing.T) {
	intT := types.Int{}
	prog := term.Let{Var: "c", Bound: term.NewChan{Elem: intT},
		Body: term.Par{
			L: term.Send{Ch: v("c"), Val: term.BinOp{Op: "+", L: term.IntLit{Val: 40}, R: term.IntLit{Val: 2}}, Cont: thunkT(term.End{})},
			R: term.Recv{Ch: v("c"), Cont: lam("x", intT, term.End{})},
		}}
	env := types.NewEnv()
	cur := prog
	var curT term.Term = cur
	for i := 0; i < 100; i++ {
		if _, err := typecheck.Infer(env, curT); err != nil {
			t.Fatalf("step %d: term became untypable: %v\n  %s", i, err, curT)
		}
		next, _, ok := Step(curT)
		if !ok {
			break
		}
		curT = next
	}
	if _, ok := curT.(term.End); !ok {
		t.Errorf("expected termination at end, got %s", curT)
	}
}

// TestRecursiveLet: recursive definitions unfold on demand and keep
// producing (a bounded model of productivity).
func TestRecursiveLet(t *testing.T) {
	intT := types.Int{}
	// let f = λn. if n > 0 then f (n-1) else 0 in f 3  ⇓  0
	fT := types.Pi{Var: "n", Dom: intT, Cod: intT}
	prog := term.Let{Var: "f", Ann: fT,
		Bound: lam("n", intT, term.If{
			Cond: term.BinOp{Op: ">", L: v("n"), R: term.IntLit{Val: 0}},
			Then: term.App{Fn: v("f"), Arg: term.BinOp{Op: "-", L: v("n"), R: term.IntLit{Val: 1}}},
			Else: term.IntLit{Val: 0},
		}),
		Body: term.App{Fn: v("f"), Arg: term.IntLit{Val: 3}}}
	got, steps := Eval(prog, 10000)
	if got.String() != "0" {
		t.Errorf("recursive let: got %s after %d steps, want 0", got, steps)
	}
}

// TestOpenSemantics exercises Def. 4.1: t1 from Ex. 3.5 fires τ[x] and
// reaches end ‖ end.
func TestOpenSemantics(t *testing.T) {
	env := types.EnvOf("x", types.ChanIO{Elem: types.Int{}})
	t1 := term.Par{
		L: term.Send{Ch: v("x"), Val: term.IntLit{Val: 42}, Cont: thunkT(term.End{})},
		R: term.Recv{Ch: v("x"), Cont: lam("y", types.Int{}, term.End{})},
	}
	steps := Transitions(env, t1)
	var comm *TermStep
	for i := range steps {
		if c, ok := steps[i].Label.(CommLabel); ok {
			if vv, ok := c.Subject.(term.Var); ok && vv.Name == "x" {
				comm = &steps[i]
			}
		}
	}
	if comm == nil {
		labels := make([]string, len(steps))
		for i, s := range steps {
			labels[i] = s.Label.String()
		}
		t.Fatalf("expected τ[x] transition, got %v", labels)
	}
	// The continuation applications reduce to end ‖ end.
	final, _ := Eval(comm.Next, 100)
	if _, ok := final.(term.End); !ok {
		t.Errorf("after τ[x]: expected end, got %s", final)
	}
}

// TestOpenSemanticsEarlyInput: a receive on an open channel variable
// fires one input per candidate payload ([SR-recv], early style).
func TestOpenSemanticsEarlyInput(t *testing.T) {
	env := types.EnvOf(
		"x", types.ChanIO{Elem: types.ChanO{Elem: types.Str{}}},
		"r", types.ChanO{Elem: types.Str{}},
	)
	rcv := term.Recv{Ch: v("x"), Cont: lam("w", types.ChanO{Elem: types.Str{}}, term.End{})}
	steps := Transitions(env, rcv)
	sawVar := false
	for _, s := range steps {
		if in, ok := s.Label.(InLabel); ok {
			if pv, ok := in.Payload.(term.Var); ok && pv.Name == "r" {
				sawVar = true
			}
		}
	}
	if !sawVar {
		t.Error("early input must include the environment witness r")
	}
}

// TestOpenIfInstantiation: if on a free boolean variable steps to both
// branches.
func TestOpenIfInstantiation(t *testing.T) {
	env := types.EnvOf("b", types.Bool{})
	tt := term.If{Cond: v("b"), Then: term.IntLit{Val: 1}, Else: term.IntLit{Val: 2}}
	steps := Transitions(env, tt)
	if len(steps) != 2 {
		t.Fatalf("expected 2 instantiating steps, got %d", len(steps))
	}
}

// TestExhaustiveSafety: Thm. 3.6 quantifies over all schedulings;
// CheckSafety explores every interleaving of a typed term and finds no
// error, while an untyped term's error is found.
func TestExhaustiveSafety(t *testing.T) {
	intT := types.Int{}
	// Two racing senders, one receiver: both pairings are explored.
	typed := term.Let{Var: "c", Bound: term.NewChan{Elem: intT},
		Body: term.Par{
			L: term.Par{
				L: term.Send{Ch: v("c"), Val: term.IntLit{Val: 1}, Cont: thunkT(term.End{})},
				R: term.Send{Ch: v("c"), Val: term.IntLit{Val: 2}, Cont: thunkT(term.End{})},
			},
			R: term.Recv{Ch: v("c"), Cont: lam("x", intT, term.End{})},
		}}
	r := CheckSafety(typed, 10_000)
	if r.ErrWitness != nil {
		t.Fatalf("typed term reached an error: %s", r.ErrWitness)
	}
	if r.Truncated {
		t.Fatal("exploration should exhaust this small space")
	}
	if r.States < 3 {
		t.Errorf("expected several interleavings, visited %d states", r.States)
	}

	// An ill-typed term whose error is buried behind a communication.
	buggy := term.Let{Var: "c", Bound: term.NewChan{Elem: intT},
		Body: term.Par{
			L: term.Send{Ch: v("c"), Val: term.IntLit{Val: 1}, Cont: thunkT(term.End{})},
			R: term.Recv{Ch: v("c"), Cont: lam("x", intT, term.Par{L: term.Not{T: v("x")}, R: term.End{}})},
		}}
	r = CheckSafety(buggy, 10_000)
	if r.ErrWitness == nil {
		t.Error("exploration must find the buried error")
	}
}

// TestStepAllEnumeratesPairings: with two senders and two receivers on
// one channel, all four communication pairings appear.
func TestStepAllEnumeratesPairings(t *testing.T) {
	ch := term.ChanVal{Name: "k", Elem: types.Int{}}
	mk := func(vv int64) term.Term {
		return term.Send{Ch: ch, Val: term.IntLit{Val: vv}, Cont: thunkT(term.End{})}
	}
	rc := func() term.Term { return term.Recv{Ch: ch, Cont: lam("x", types.Int{}, term.End{})} }
	soup := term.Par{L: term.Par{L: mk(1), R: mk(2)}, R: term.Par{L: rc(), R: rc()}}
	steps := StepAll(soup)
	if len(steps) != 4 {
		t.Errorf("expected 4 communication pairings, got %d", len(steps))
	}
}
