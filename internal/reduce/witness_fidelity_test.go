package reduce

import (
	"testing"

	"effpi/internal/systems"
	"effpi/internal/term"
	"effpi/internal/typecheck"
	"effpi/internal/typelts"
	"effpi/internal/types"
	"effpi/internal/verify"
)

func strT() types.Type       { return types.Str{} }
func replyChanT() types.Type { return types.ChanO{Elem: types.Str{}} }

// Differential fidelity against the process level: the counterexample
// witnesses extracted from the *type* LTS of the Fig. 9 ping-pong
// examples must embed into real reduction sequences of matching *terms*
// (Thm. 4.5's direction, sampled along witness runs instead of
// hand-picked transitions). Every synchronisation τ[x,x] of a witness
// stem must be matched — after τ•-closure — by a communication step of
// the term on the same channel, and the witness's run-completion suffix
// (✔ or ⊠) must match how the term actually ends.

// pingPongTerm mirrors systems.PingPongPairs(n, responsive) at the term
// level: for each pair i, a pinger and a ponger over channels zi/yi.
func pingPongTerm(n int, responsive bool) term.Term {
	var comps []term.Term
	for i := 1; i <= n; i++ {
		z := v(fn("z", i))
		y := v(fn("y", i))
		if responsive {
			// pinger: send its mailbox over z, await the reply on y.
			pinger := term.Send{Ch: z, Val: y,
				Cont: thunkT(term.Recv{Ch: y, Cont: lam(fn("r", i), strT(), term.End{})})}
			// ponger: receive a reply channel from z, respond through it.
			ponger := term.Recv{Ch: z,
				Cont: lam(fn("replyTo", i), replyChanT(),
					term.Send{Ch: v(fn("replyTo", i)), Val: term.StrLit{Val: "Hi!"}, Cont: thunkT(term.End{})})}
			comps = append(comps, pinger, ponger)
		} else {
			pinger := term.Send{Ch: z, Val: term.StrLit{Val: "ping"},
				Cont: thunkT(term.Recv{Ch: y, Cont: lam(fn("r", i), strT(), term.End{})})}
			ponger := term.Recv{Ch: z,
				Cont: lam(fn("s", i), strT(),
					term.Send{Ch: y, Val: term.StrLit{Val: "pong"}, Cont: thunkT(term.End{})})}
			comps = append(comps, pinger, ponger)
		}
	}
	return parOf(comps)
}

// TestWitnessStemsEmbedIntoTermReductions: for each ping-pong instance,
// collect every witness the verifier produces across the six properties
// and drive the matching term along the witness's synchronisation
// sequence (stem plus one cycle unrolling).
func TestWitnessStemsEmbedIntoTermReductions(t *testing.T) {
	cases := []struct {
		n          int
		responsive bool
	}{
		{1, false},
		{1, true},
		{2, false},
	}
	embedded := 0
	for _, tc := range cases {
		s := systems.PingPongPairs(tc.n, tc.responsive)
		tm := pingPongTerm(tc.n, tc.responsive)
		if _, err := typecheck.Infer(s.Env, tm); err != nil {
			t.Fatalf("%s: term does not type-check: %v", s.Name, err)
		}
		outcomes, err := verify.VerifyAll(s.Env, s.Type, s.Props, 1<<18)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		for _, o := range outcomes {
			if o.Holds || o.Witness == nil {
				continue
			}
			if err := verify.Replay(o); err != nil {
				t.Fatalf("%s / %s: witness does not even replay on the type side: %v", s.Name, o.Property, err)
			}
			steps := append(append([]verify.WitnessStep{}, o.Witness.Stem...), o.Witness.Cycle...)
			driveTermAlongWitness(t, s, o, tm, steps)
			embedded++
		}
	}
	if embedded == 0 {
		t.Fatal("no witnesses produced: the embedding was never exercised")
	}
	t.Logf("embedded %d witnesses into term reductions", embedded)
}

// driveTermAlongWitness replays the witness's label sequence on the term:
// type-level synchronisations must be matched by term communications on
// the same channel, internal choices need no term step, and the
// run-completion label ends the walk with the corresponding term state
// (properly terminated vs communication-stuck).
func driveTermAlongWitness(t *testing.T, s *systems.System, o *verify.Outcome, tm term.Term, steps []verify.WitnessStep) {
	t.Helper()
	env := s.Env
	for i, st := range steps {
		switch lab := st.Label.(type) {
		case typelts.Comm:
			x, ok := typeCommVar(lab)
			if !ok {
				t.Fatalf("%s / %s step %d: witness synchronisation %s has no variable subject", s.Name, o.Property, i, lab)
			}
			tm = tauStarClosure(env, tm)
			var next term.Term
			found := false
			for _, ts := range Transitions(env, tm) {
				if c, ok := commVar(ts.Label); ok && c == x {
					next = ts.Next
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s / %s step %d: type witness fires τ[%s,%s] but the term cannot communicate on %s (fidelity failure)\n  term: %s",
					s.Name, o.Property, i, x, x, x, tm)
			}
			tm = next
		case typelts.TauChoice:
			// Internal choice of the type level; the term's τ•-closure
			// subsumes it.
		case typelts.Done:
			tm = tauStarClosure(env, tm)
			final, _ := Eval(tm, 200)
			if _, ok := final.(term.End); !ok {
				t.Fatalf("%s / %s step %d: witness reports ✔ but the term did not terminate: %s", s.Name, o.Property, i, final)
			}
			return
		case typelts.Stuck:
			tm = tauStarClosure(env, tm)
			for _, ts := range Transitions(env, tm) {
				if _, ok := ts.Label.(CommLabel); ok {
					t.Fatalf("%s / %s step %d: witness reports ⊠ but the term can still communicate: %s", s.Name, o.Property, i, tm)
				}
			}
			if _, ok := tauStarClosure(env, tm).(term.End); ok {
				t.Fatalf("%s / %s step %d: witness reports ⊠ but the term terminated properly", s.Name, o.Property, i)
			}
			return
		default:
			// Closed compositions only fire τ and completion labels; a
			// free i/o label in a witness would mean the Y-limitation
			// leaked.
			t.Fatalf("%s / %s step %d: unexpected witness label %s in a closed composition", s.Name, o.Property, i, st.Label)
		}
	}
}

func fn(prefix string, i int) string { return prefix + itoa(i) }

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + itoa(i%10)
}
