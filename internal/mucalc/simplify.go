package mucalc

// Simplify performs constant folding on formulas before translation:
// compiled Fig. 7 schemas frequently contain empty action sets (e.g. a
// responsiveness obligation over a channel that is never used), whose
// atoms are constantly false; folding them keeps the GPVW tableau — and
// hence the product — small.

// Empty reports whether the action set is known to be empty (only sets
// built by LabelSet from zero labels carry this information).
func (a ActionSet) Empty() bool { return a.known && a.size == 0 }

// Simplify rewrites f to an equivalent, usually smaller formula:
// boolean-constant folding through every connective, plus the standard
// temporal identities X⊤ = ⊤, ⊥Uϕ = ϕ, ϕU⊥ = ⊥, ⊤Rϕ... (see cases).
func Simplify(f Formula) Formula {
	switch f := f.(type) {
	case True, False:
		return f
	case Prop:
		if f.Set.Empty() {
			return False{}
		}
		return f
	case NegProp:
		if f.Set.Empty() {
			return True{}
		}
		return f
	case Not:
		switch inner := Simplify(f.F).(type) {
		case True:
			return False{}
		case False:
			return True{}
		case Not:
			return inner.F
		default:
			return Not{F: inner}
		}
	case And:
		l, r := Simplify(f.L), Simplify(f.R)
		if isFalse(l) || isFalse(r) {
			return False{}
		}
		if isTrue(l) {
			return r
		}
		if isTrue(r) {
			return l
		}
		if l.Key() == r.Key() {
			return l
		}
		return And{L: l, R: r}
	case Or:
		l, r := Simplify(f.L), Simplify(f.R)
		if isTrue(l) || isTrue(r) {
			return True{}
		}
		if isFalse(l) {
			return r
		}
		if isFalse(r) {
			return l
		}
		if l.Key() == r.Key() {
			return l
		}
		return Or{L: l, R: r}
	case Next:
		inner := Simplify(f.F)
		// On infinite (run-completed) words, X distributes over the
		// constants.
		if isTrue(inner) {
			return True{}
		}
		if isFalse(inner) {
			return False{}
		}
		return Next{F: inner}
	case Until:
		l, r := Simplify(f.L), Simplify(f.R)
		if isFalse(r) {
			return False{} // the goal never becomes true
		}
		if isTrue(r) {
			return True{} // satisfied at position 0
		}
		if isFalse(l) {
			return r // the goal must hold immediately
		}
		// ⊤ U ϕ stays (it is ♢ϕ).
		return Until{L: l, R: r}
	case Release:
		l, r := Simplify(f.L), Simplify(f.R)
		if isTrue(r) {
			return True{}
		}
		if isTrue(l) {
			return r // released immediately
		}
		if isFalse(r) {
			return False{} // r must hold at position 0
		}
		// ⊥ R ϕ stays (it is □ϕ).
		return Release{L: l, R: r}
	default:
		return f
	}
}

func isTrue(f Formula) bool {
	_, ok := f.(True)
	return ok
}

func isFalse(f Formula) bool {
	_, ok := f.(False)
	return ok
}
