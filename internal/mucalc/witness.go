package mucalc

import (
	"fmt"

	"effpi/internal/typelts"
)

// Witness is a lasso-shaped violating run with full state identity: the
// LTS state visited at every position, plus the label fired at every
// step, as indices into the model that produced it. Unlike Trace (labels
// only), a Witness is machine-replayable: Validate re-runs it against the
// LTS edge relation, and Buchi.AcceptsLasso re-checks that its label word
// violates the property — together the replay oracle of verify.Replay.
//
// Shape: StemStates[0] is the initial state and firing StemLabels[i]
// moves StemStates[i] → StemStates[i+1], so len(StemStates) ==
// len(StemLabels)+1; the last stem state is the lasso head. The cycle
// starts and ends there: CycleStates[0] == CycleStates[last] == lasso
// head, with CycleLabels[i] moving CycleStates[i] → CycleStates[i+1] and
// len(CycleStates) == len(CycleLabels)+1. A self-loop lasso has one cycle
// label; an empty stem (violation cycling through the initial state) has
// len(StemStates) == 1.
type Witness struct {
	StemStates  []int
	StemLabels  []int32
	CycleStates []int
	CycleLabels []int32
}

// Head returns the lasso head: the state the cycle loops on.
func (w *Witness) Head() int { return w.StemStates[len(w.StemStates)-1] }

// Trace projects the witness to its label word, resolving label indices
// against the given alphabet.
func (w *Witness) Trace(labels []typelts.Label) *Trace {
	tr := &Trace{}
	for _, l := range w.StemLabels {
		tr.Prefix = append(tr.Prefix, labels[l])
	}
	for _, l := range w.CycleLabels {
		tr.Cycle = append(tr.Cycle, labels[l])
	}
	return tr
}

// Validate checks that w is structurally a real run of m: the stem starts
// at the initial state, every step fires an actual edge of m (label index
// and destination both match), the cycle is non-empty, and it closes on
// the lasso head. Edges are matched by exact (label index, destination)
// identity, which is stronger than label-key equality.
func (w *Witness) Validate(m Model) error {
	if len(w.StemStates) != len(w.StemLabels)+1 {
		return fmt.Errorf("mucalc: malformed witness: %d stem states for %d stem labels", len(w.StemStates), len(w.StemLabels))
	}
	if len(w.CycleStates) != len(w.CycleLabels)+1 {
		return fmt.Errorf("mucalc: malformed witness: %d cycle states for %d cycle labels", len(w.CycleStates), len(w.CycleLabels))
	}
	if len(w.CycleLabels) == 0 {
		return fmt.Errorf("mucalc: malformed witness: empty cycle")
	}
	if w.StemStates[0] != m.Initial() {
		return fmt.Errorf("mucalc: witness stem starts at state %d, not the initial state %d", w.StemStates[0], m.Initial())
	}
	head := w.Head()
	if w.CycleStates[0] != head || w.CycleStates[len(w.CycleStates)-1] != head {
		return fmt.Errorf("mucalc: witness cycle does not loop on the lasso head %d (starts %d, ends %d)",
			head, w.CycleStates[0], w.CycleStates[len(w.CycleStates)-1])
	}
	check := func(kind string, states []int, labels []int32) error {
		for i, lab := range labels {
			src, dst := states[i], states[i+1]
			edges, err := m.Succ(src)
			if err != nil {
				return fmt.Errorf("mucalc: witness %s step %d: %w", kind, i, err)
			}
			found := false
			for _, e := range edges {
				if e.Label == lab && int(e.Dst) == dst {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("mucalc: witness %s step %d: state %d has no edge with label %d to state %d", kind, i, src, lab, dst)
			}
		}
		return nil
	}
	if err := check("stem", w.StemStates, w.StemLabels); err != nil {
		return err
	}
	return check("cycle", w.CycleStates, w.CycleLabels)
}

// AcceptsLasso reports whether the automaton accepts the infinite word
// prefix·cycle^ω. Together with Witness.Validate this replays a witness:
// the automaton built for ¬ϕ accepts the lasso's label word iff the run
// really violates ϕ.
//
// The check is the standard finite one: collect the automaton states
// reachable after reading the prefix (guards are evaluated on *entering*
// a state, matching the product construction), then look for a reachable
// accepting cycle in the finite graph of (automaton state, cycle
// position) pairs — every accepting run of an ultimately periodic word is
// ultimately periodic over that graph.
func (b *Buchi) AcceptsLasso(prefix, cycle []typelts.Label) bool {
	if len(cycle) == 0 {
		return false
	}
	// States reachable after the prefix, starting from the virtual initial
	// node (whose successors are Init).
	cur := map[int]bool{}
	for _, q := range b.Init {
		cur[q] = true
	}
	first := true
	step := func(from map[int]bool, letter typelts.Label) map[int]bool {
		next := map[int]bool{}
		for q := range from {
			for _, qq := range b.Succ[q] {
				if b.Admits(qq, letter) {
					next[qq] = true
				}
			}
		}
		return next
	}
	for _, letter := range prefix {
		if first {
			// The Init set holds the *successors* of the virtual node; the
			// first letter is consumed entering them.
			filtered := map[int]bool{}
			for q := range cur {
				if b.Admits(q, letter) {
					filtered[q] = true
				}
			}
			cur = filtered
			first = false
			continue
		}
		cur = step(cur, letter)
	}
	if len(cur) == 0 {
		return false
	}

	// Lasso graph: node (q, i) means the automaton entered q and the next
	// letter is cycle[i]. Edges follow one letter of the cycle.
	n := len(cycle)
	node := func(q, i int) int { return q*n + i }
	var start []int
	if first {
		// Empty prefix: the virtual initial node is still pending; its
		// Init successors are entered consuming cycle[0].
		for q := range cur {
			if b.Admits(q, cycle[0]) {
				start = append(start, node(q, 1%n))
			}
		}
	} else {
		for q := range cur {
			start = append(start, node(q, 0))
		}
	}

	// Reachability from the start frontier.
	total := b.Len() * n
	reach := make([]bool, total)
	queue := append([]int{}, start...)
	for _, v := range start {
		reach[v] = true
	}
	succ := func(v int) []int {
		q, i := v/n, v%n
		var out []int
		for _, qq := range b.Succ[q] {
			if b.Admits(qq, cycle[i]) {
				out = append(out, node(qq, (i+1)%n))
			}
		}
		return out
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range succ(v) {
			if !reach[u] {
				reach[u] = true
				queue = append(queue, u)
			}
		}
	}

	// An accepting run exists iff some reachable node with an accepting
	// automaton state lies on a cycle of the lasso graph.
	for v := 0; v < total; v++ {
		if !reach[v] || !b.Accepting[v/n] {
			continue
		}
		// BFS from v back to v.
		seen := make([]bool, total)
		q2 := succ(v)
		hit := false
		for _, u := range q2 {
			if u == v {
				hit = true
			}
			seen[u] = true
		}
		for len(q2) > 0 && !hit {
			u := q2[0]
			q2 = q2[1:]
			for _, x := range succ(u) {
				if x == v {
					hit = true
					break
				}
				if !seen[x] {
					seen[x] = true
					q2 = append(q2, x)
				}
			}
		}
		if hit {
			return true
		}
	}
	return false
}
