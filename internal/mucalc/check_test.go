package mucalc

import (
	"testing"

	"effpi/internal/lts"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// lab builds a distinct label named n (an output on channel variable n).
func lab(n string) typelts.Label {
	return typelts.Output{Subject: types.Var{Name: n}, Payload: types.Unit{}}
}

// set is the action set containing exactly the labels with the given names.
func set(names ...string) ActionSet {
	labels := make([]typelts.Label, len(names))
	for i, n := range names {
		labels[i] = lab(n)
	}
	return LabelSet("{"+join(names)+"}", labels...)
}

func join(ns []string) string {
	out := ""
	for i, n := range ns {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

// mkLTS builds a test LTS; every state must have ≥1 outgoing edge
// (run-completed), matching what lts.Explore produces.
func mkLTS(n int, edges map[int][]lts.Edge) *lts.LTS {
	m := &lts.LTS{Initial: 0}
	for i := 0; i < n; i++ {
		m.States = append(m.States, types.Nil{})
		m.Edges = append(m.Edges, edges[i])
	}
	return m
}

func edge(l typelts.Label, dst int) lts.Edge { return lts.Edge{Label: l, Dst: dst} }

func TestBoxOnSelfLoop(t *testing.T) {
	// One state looping on "a".
	m := mkLTS(1, map[int][]lts.Edge{0: {edge(lab("a"), 0)}})
	if r := Check(m, Box(Prop{Set: set("a")})); !r.Holds {
		t.Errorf("□⟨a⟩ must hold on a^ω (counterexample: %+v)", r.Counterexample)
	}
	if r := Check(m, Box(Prop{Set: set("b")})); r.Holds {
		t.Error("□⟨b⟩ must fail on a^ω")
	} else if r.Counterexample == nil {
		t.Error("expected a counterexample lasso")
	}
}

func TestDiamond(t *testing.T) {
	// 0 --a--> 1 --b--> 1.
	m := mkLTS(2, map[int][]lts.Edge{
		0: {edge(lab("a"), 1)},
		1: {edge(lab("b"), 1)},
	})
	if r := Check(m, Diamond(Prop{Set: set("b")})); !r.Holds {
		t.Error("♢⟨b⟩ must hold")
	}
	if r := Check(m, Diamond(Prop{Set: set("c")})); r.Holds {
		t.Error("♢⟨c⟩ must fail")
	}
	if r := Check(m, Box(Diamond(Prop{Set: set("b")}))); !r.Holds {
		t.Error("□♢⟨b⟩ must hold")
	}
	if r := Check(m, Box(Prop{Set: set("a")})); r.Holds {
		t.Error("□⟨a⟩ must fail (b occurs)")
	}
}

func TestUntil(t *testing.T) {
	// 0 --a--> 0, 0 --b--> 1, 1 --c--> 1: runs a^n b c^ω and a^ω.
	m := mkLTS(2, map[int][]lts.Edge{
		0: {edge(lab("a"), 0), edge(lab("b"), 1)},
		1: {edge(lab("c"), 1)},
	})
	// ⟨a⟩⊤ U ⟨b⟩⊤ fails: the run a^ω never reaches b.
	phi := Until{L: Prop{Set: set("a")}, R: Prop{Set: set("b")}}
	if r := Check(m, phi); r.Holds {
		t.Error("aUb must fail on a^ω")
	}
	// On the sub-LTS without the a-loop it holds.
	m2 := mkLTS(2, map[int][]lts.Edge{
		0: {edge(lab("b"), 1)},
		1: {edge(lab("c"), 1)},
	})
	if r := Check(m2, phi); !r.Holds {
		t.Errorf("aUb must hold on b c^ω (b immediately): %+v", r.Counterexample)
	}
}

func TestPrefix(t *testing.T) {
	// 0 --a--> 1 --b--> 1.
	m := mkLTS(2, map[int][]lts.Edge{
		0: {edge(lab("a"), 1)},
		1: {edge(lab("b"), 1)},
	})
	// (a)(b)⊤ holds; (b)⊤ fails; (a)(a)⊤ fails.
	if r := Check(m, Prefix(set("a"), Prefix(set("b"), True{}))); !r.Holds {
		t.Error("(a)(b)⊤ must hold")
	}
	if r := Check(m, Prefix(set("b"), True{})); r.Holds {
		t.Error("(b)⊤ must fail")
	}
	if r := Check(m, Prefix(set("a"), Prefix(set("a"), True{}))); r.Holds {
		t.Error("(a)(a)⊤ must fail")
	}
	// (−b)⊤ holds (first action is a ∉ {b}).
	if r := Check(m, PrefixCo(set("b"), True{})); !r.Holds {
		t.Error("(−b)⊤ must hold")
	}
}

func TestBranchingAllRuns(t *testing.T) {
	// 0 branches to a-loop and b-loop: T |= ϕ quantifies over ALL runs.
	m := mkLTS(3, map[int][]lts.Edge{
		0: {edge(lab("a"), 1), edge(lab("b"), 2)},
		1: {edge(lab("a"), 1)},
		2: {edge(lab("b"), 2)},
	})
	if r := Check(m, Box(Prop{Set: set("a", "b")})); !r.Holds {
		t.Error("□⟨a,b⟩ must hold on both branches")
	}
	if r := Check(m, Box(Prop{Set: set("a")})); r.Holds {
		t.Error("□⟨a⟩ must fail on the b branch")
	}
	if r := Check(m, Diamond(Prop{Set: set("b")})); r.Holds {
		t.Error("♢⟨b⟩ must fail on the a branch")
	}
}

func TestImplicationResponse(t *testing.T) {
	// Request/response: 0 --req--> 1 --resp--> 0, and an idle loop 0 --idle--> 0.
	m := mkLTS(2, map[int][]lts.Edge{
		0: {edge(lab("idle"), 0), edge(lab("req"), 1)},
		1: {edge(lab("resp"), 0)},
	})
	// □(⟨req⟩⊤ ⇒ X ♢⟨resp⟩⊤) holds.
	phi := Box(Implies(Prop{Set: set("req")}, Next{F: Diamond(Prop{Set: set("resp")})}))
	if r := Check(m, phi); !r.Holds {
		t.Errorf("request⇒response must hold: %+v", r.Counterexample)
	}
	// Broken system: 1 loops on "stall" instead of responding.
	m2 := mkLTS(2, map[int][]lts.Edge{
		0: {edge(lab("idle"), 0), edge(lab("req"), 1)},
		1: {edge(lab("stall"), 1)},
	})
	if r := Check(m2, phi); r.Holds {
		t.Error("request⇒response must fail when the server stalls")
	}
}

func TestDoneCompletion(t *testing.T) {
	// 0 --a--> 1(✔): proper termination.
	m := mkLTS(2, map[int][]lts.Edge{
		0: {edge(lab("a"), 1)},
		1: {edge(typelts.Done{}, 1)},
	})
	// ♢⟨✔⟩ holds; □⟨a⟩ fails.
	if r := Check(m, Diamond(Prop{Set: DoneActions()})); !r.Holds {
		t.Error("♢✔ must hold on a terminating run")
	}
	if r := Check(m, Box(Prop{Set: set("a")})); r.Holds {
		t.Error("□⟨a⟩ must fail at termination")
	}
}

func TestCounterexampleShape(t *testing.T) {
	// 0 --a--> 1 --b--> 1; □⟨a⟩ fails with prefix [a] and cycle [b...].
	m := mkLTS(2, map[int][]lts.Edge{
		0: {edge(lab("a"), 1)},
		1: {edge(lab("b"), 1)},
	})
	r := Check(m, Box(Prop{Set: set("a")}))
	if r.Holds || r.Counterexample == nil {
		t.Fatal("expected counterexample")
	}
	if len(r.Counterexample.Cycle) == 0 {
		t.Error("counterexample cycle must be non-empty")
	}
	all := append(append([]typelts.Label{}, r.Counterexample.Prefix...), r.Counterexample.Cycle...)
	sawB := false
	for _, l := range all {
		if set("b").Contains(l) {
			sawB = true
		}
	}
	if !sawB {
		t.Errorf("counterexample must exhibit the violating action b: %v", all)
	}
}

func TestNNFInvolution(t *testing.T) {
	phi := Box(Implies(Prop{Set: set("req")}, Until{L: NegProp{Set: set("req")}, R: Prop{Set: set("resp")}}))
	n1 := NNF(phi)
	n2 := NNF(NNF(Not{F: Not{F: phi}}))
	if n1.Key() != n2.Key() {
		t.Errorf("NNF(¬¬ϕ) ≠ NNF(ϕ):\n  %s\n  %s", n1.Key(), n2.Key())
	}
	if hasNot(n1) {
		t.Error("NNF output contains Not")
	}
}

func hasNot(f Formula) bool {
	switch f := f.(type) {
	case Not:
		return true
	case And:
		return hasNot(f.L) || hasNot(f.R)
	case Or:
		return hasNot(f.L) || hasNot(f.R)
	case Next:
		return hasNot(f.F)
	case Until:
		return hasNot(f.L) || hasNot(f.R)
	case Release:
		return hasNot(f.L) || hasNot(f.R)
	default:
		return false
	}
}

func TestReleaseSemantics(t *testing.T) {
	// a R b: b holds until (and including when) a holds; if a never
	// holds, b must hold forever.
	m := mkLTS(1, map[int][]lts.Edge{0: {edge(lab("b"), 0)}})
	phi := Release{L: Prop{Set: set("a")}, R: Prop{Set: set("b")}}
	if r := Check(m, phi); !r.Holds {
		t.Error("aRb must hold on b^ω")
	}
	m2 := mkLTS(2, map[int][]lts.Edge{
		0: {edge(lab("b"), 1)},
		1: {edge(lab("c"), 1)},
	})
	if r := Check(m2, phi); r.Holds {
		t.Error("aRb must fail on b c^ω")
	}
	// b, then a&b simultaneously impossible with single labels; release
	// with overlapping sets: (a∪b R b) on b^ω then... keep simple: the
	// release fires when a position satisfies both L and R.
	m3 := mkLTS(2, map[int][]lts.Edge{
		0: {edge(lab("b"), 1)},
		1: {edge(lab("c"), 1)},
	})
	phi2 := Release{L: Prop{Set: set("b")}, R: Prop{Set: set("b")}}
	if r := Check(m3, phi2); !r.Holds {
		t.Error("bRb must hold when the first position satisfies both")
	}
}
