package mucalc

import (
	"testing"

	"effpi/internal/lts"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// lab builds a distinct label named n (an output on channel variable n).
func lab(n string) typelts.Label {
	return typelts.Output{Subject: types.Var{Name: n}, Payload: types.Unit{}}
}

// set is the action set containing exactly the labels with the given names.
func set(names ...string) ActionSet {
	labels := make([]typelts.Label, len(names))
	for i, n := range names {
		labels[i] = lab(n)
	}
	return LabelSet("{"+join(names)+"}", labels...)
}

func join(ns []string) string {
	out := ""
	for i, n := range ns {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

// mkLTS builds a test LTS; every state must have ≥1 outgoing edge
// (run-completed), matching what lts.Explore produces.
func mkLTS(n int, edges map[int][]lts.AdjEdge) *lts.LTS {
	states := make([]types.Type, n)
	adj := make([][]lts.AdjEdge, n)
	for i := 0; i < n; i++ {
		states[i] = types.Nil{}
		adj[i] = edges[i]
	}
	return lts.FromAdjacency(states, adj, 0)
}

func edge(l typelts.Label, dst int) lts.AdjEdge { return lts.AdjEdge{Label: l, Dst: dst} }

func TestBoxOnSelfLoop(t *testing.T) {
	// One state looping on "a".
	m := mkLTS(1, map[int][]lts.AdjEdge{0: {edge(lab("a"), 0)}})
	if r := Check(m, Box(Prop{Set: set("a")})); !r.Holds {
		t.Errorf("□⟨a⟩ must hold on a^ω (counterexample: %+v)", r.Counterexample)
	}
	if r := Check(m, Box(Prop{Set: set("b")})); r.Holds {
		t.Error("□⟨b⟩ must fail on a^ω")
	} else if r.Counterexample == nil {
		t.Error("expected a counterexample lasso")
	}
}

func TestDiamond(t *testing.T) {
	// 0 --a--> 1 --b--> 1.
	m := mkLTS(2, map[int][]lts.AdjEdge{
		0: {edge(lab("a"), 1)},
		1: {edge(lab("b"), 1)},
	})
	if r := Check(m, Diamond(Prop{Set: set("b")})); !r.Holds {
		t.Error("♢⟨b⟩ must hold")
	}
	if r := Check(m, Diamond(Prop{Set: set("c")})); r.Holds {
		t.Error("♢⟨c⟩ must fail")
	}
	if r := Check(m, Box(Diamond(Prop{Set: set("b")}))); !r.Holds {
		t.Error("□♢⟨b⟩ must hold")
	}
	if r := Check(m, Box(Prop{Set: set("a")})); r.Holds {
		t.Error("□⟨a⟩ must fail (b occurs)")
	}
}

func TestUntil(t *testing.T) {
	// 0 --a--> 0, 0 --b--> 1, 1 --c--> 1: runs a^n b c^ω and a^ω.
	m := mkLTS(2, map[int][]lts.AdjEdge{
		0: {edge(lab("a"), 0), edge(lab("b"), 1)},
		1: {edge(lab("c"), 1)},
	})
	// ⟨a⟩⊤ U ⟨b⟩⊤ fails: the run a^ω never reaches b.
	phi := Until{L: Prop{Set: set("a")}, R: Prop{Set: set("b")}}
	if r := Check(m, phi); r.Holds {
		t.Error("aUb must fail on a^ω")
	}
	// On the sub-LTS without the a-loop it holds.
	m2 := mkLTS(2, map[int][]lts.AdjEdge{
		0: {edge(lab("b"), 1)},
		1: {edge(lab("c"), 1)},
	})
	if r := Check(m2, phi); !r.Holds {
		t.Errorf("aUb must hold on b c^ω (b immediately): %+v", r.Counterexample)
	}
}

func TestPrefix(t *testing.T) {
	// 0 --a--> 1 --b--> 1.
	m := mkLTS(2, map[int][]lts.AdjEdge{
		0: {edge(lab("a"), 1)},
		1: {edge(lab("b"), 1)},
	})
	// (a)(b)⊤ holds; (b)⊤ fails; (a)(a)⊤ fails.
	if r := Check(m, Prefix(set("a"), Prefix(set("b"), True{}))); !r.Holds {
		t.Error("(a)(b)⊤ must hold")
	}
	if r := Check(m, Prefix(set("b"), True{})); r.Holds {
		t.Error("(b)⊤ must fail")
	}
	if r := Check(m, Prefix(set("a"), Prefix(set("a"), True{}))); r.Holds {
		t.Error("(a)(a)⊤ must fail")
	}
	// (−b)⊤ holds (first action is a ∉ {b}).
	if r := Check(m, PrefixCo(set("b"), True{})); !r.Holds {
		t.Error("(−b)⊤ must hold")
	}
}

func TestBranchingAllRuns(t *testing.T) {
	// 0 branches to a-loop and b-loop: T |= ϕ quantifies over ALL runs.
	m := mkLTS(3, map[int][]lts.AdjEdge{
		0: {edge(lab("a"), 1), edge(lab("b"), 2)},
		1: {edge(lab("a"), 1)},
		2: {edge(lab("b"), 2)},
	})
	if r := Check(m, Box(Prop{Set: set("a", "b")})); !r.Holds {
		t.Error("□⟨a,b⟩ must hold on both branches")
	}
	if r := Check(m, Box(Prop{Set: set("a")})); r.Holds {
		t.Error("□⟨a⟩ must fail on the b branch")
	}
	if r := Check(m, Diamond(Prop{Set: set("b")})); r.Holds {
		t.Error("♢⟨b⟩ must fail on the a branch")
	}
}

func TestImplicationResponse(t *testing.T) {
	// Request/response: 0 --req--> 1 --resp--> 0, and an idle loop 0 --idle--> 0.
	m := mkLTS(2, map[int][]lts.AdjEdge{
		0: {edge(lab("idle"), 0), edge(lab("req"), 1)},
		1: {edge(lab("resp"), 0)},
	})
	// □(⟨req⟩⊤ ⇒ X ♢⟨resp⟩⊤) holds.
	phi := Box(Implies(Prop{Set: set("req")}, Next{F: Diamond(Prop{Set: set("resp")})}))
	if r := Check(m, phi); !r.Holds {
		t.Errorf("request⇒response must hold: %+v", r.Counterexample)
	}
	// Broken system: 1 loops on "stall" instead of responding.
	m2 := mkLTS(2, map[int][]lts.AdjEdge{
		0: {edge(lab("idle"), 0), edge(lab("req"), 1)},
		1: {edge(lab("stall"), 1)},
	})
	if r := Check(m2, phi); r.Holds {
		t.Error("request⇒response must fail when the server stalls")
	}
}

func TestDoneCompletion(t *testing.T) {
	// 0 --a--> 1(✔): proper termination.
	m := mkLTS(2, map[int][]lts.AdjEdge{
		0: {edge(lab("a"), 1)},
		1: {edge(typelts.Done{}, 1)},
	})
	// ♢⟨✔⟩ holds; □⟨a⟩ fails.
	if r := Check(m, Diamond(Prop{Set: DoneActions()})); !r.Holds {
		t.Error("♢✔ must hold on a terminating run")
	}
	if r := Check(m, Box(Prop{Set: set("a")})); r.Holds {
		t.Error("□⟨a⟩ must fail at termination")
	}
}

func TestCounterexampleShape(t *testing.T) {
	// 0 --a--> 1 --b--> 1; □⟨a⟩ fails with prefix [a] and cycle [b...].
	m := mkLTS(2, map[int][]lts.AdjEdge{
		0: {edge(lab("a"), 1)},
		1: {edge(lab("b"), 1)},
	})
	r := Check(m, Box(Prop{Set: set("a")}))
	if r.Holds || r.Counterexample == nil {
		t.Fatal("expected counterexample")
	}
	if len(r.Counterexample.Cycle) == 0 {
		t.Error("counterexample cycle must be non-empty")
	}
	all := append(append([]typelts.Label{}, r.Counterexample.Prefix...), r.Counterexample.Cycle...)
	sawB := false
	for _, l := range all {
		if set("b").Contains(l) {
			sawB = true
		}
	}
	if !sawB {
		t.Errorf("counterexample must exhibit the violating action b: %v", all)
	}
}

// TestRedDFSCycleLabels regression-tests the inner-DFS counterexample
// reconstruction: the cycle labels must be the *incoming* labels of the
// red path (frame.in, fixed at push time), not the frames' outgoing-edge
// cursor (frame.via), which each frame overwrites while iterating. With
// the cursor wrongly reused, a 3-edge cycle x y z came back as y z z —
// a label sequence that is not a run of the LTS.
func TestRedDFSCycleLabels(t *testing.T) {
	// 0 --i--> 1 --x--> 2 --y--> 3 --z--> 1.
	m := mkLTS(4, map[int][]lts.AdjEdge{
		0: {edge(lab("i"), 1)},
		1: {edge(lab("x"), 2)},
		2: {edge(lab("y"), 3)},
		3: {edge(lab("z"), 1)},
	})
	// A one-state Büchi automaton admitting everything: the product is
	// the LTS itself, so redDFS from (1,q) must walk the full 3-edge
	// cycle back to its seed.
	ba := &Buchi{
		Pos:       make([][]ActionSet, 1),
		Neg:       make([][]ActionSet, 1),
		Succ:      [][]int{{0}},
		Init:      []int{0},
		Accepting: []bool{true},
	}
	p := newProduct(LTSModel(m), ba)
	path := p.redDFS(p.encode(1, 0))
	if path == nil {
		t.Fatal("expected redDFS to find the cycle")
	}
	var got []string
	for _, f := range path[1:] {
		got = append(got, p.m.Labels()[f.in].Key())
	}
	want := []string{lab("x").Key(), lab("y").Key(), lab("z").Key()}
	if len(got) != len(want) {
		t.Fatalf("cycle labels %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle labels %v, want %v", got, want)
		}
	}
}

// lassoFeasible reports whether the trace is an actual run of m: the
// prefix must be traversable from the initial state, and the cycle must
// remain traversable when repeated (checked twice, which exposes any
// label sequence that only accidentally matches once).
func lassoFeasible(m *lts.LTS, tr *Trace) bool {
	step := func(cur map[int]bool, l typelts.Label) map[int]bool {
		next := map[int]bool{}
		for s := range cur {
			for _, e := range m.Out(s) {
				if m.LabelOf(e).Key() == l.Key() {
					next[int(e.Dst)] = true
				}
			}
		}
		return next
	}
	cur := map[int]bool{m.Initial: true}
	for _, l := range tr.Prefix {
		if cur = step(cur, l); len(cur) == 0 {
			return false
		}
	}
	for i := 0; i < 2; i++ {
		for _, l := range tr.Cycle {
			if cur = step(cur, l); len(cur) == 0 {
				return false
			}
		}
	}
	return true
}

// TestCounterexamplesAreRuns: every counterexample lasso the checker
// reports on a multi-state cycle must be a feasible run of the LTS.
func TestCounterexamplesAreRuns(t *testing.T) {
	m := mkLTS(4, map[int][]lts.AdjEdge{
		0: {edge(lab("i"), 1)},
		1: {edge(lab("x"), 2)},
		2: {edge(lab("y"), 3)},
		3: {edge(lab("z"), 1)},
	})
	for _, phi := range []Formula{
		Box(Prop{Set: set("i", "x", "y")}),                              // z occurs
		Box(Diamond(Prop{Set: set("i")})),                               // i fires only once
		Box(Implies(Prop{Set: set("x")}, Next{F: Prop{Set: set("z")}})), // x is followed by y
	} {
		r := Check(m, phi)
		if r.Holds {
			t.Fatalf("%s must fail on i (x y z)^ω", phi)
		}
		if r.Counterexample == nil || len(r.Counterexample.Cycle) == 0 {
			t.Fatalf("%s: expected a lasso counterexample, got %+v", phi, r.Counterexample)
		}
		if !lassoFeasible(m, r.Counterexample) {
			t.Errorf("%s: counterexample is not a run of the LTS: prefix=%v cycle=%v",
				phi, r.Counterexample.Prefix, r.Counterexample.Cycle)
		}
	}
}

func TestNNFInvolution(t *testing.T) {
	phi := Box(Implies(Prop{Set: set("req")}, Until{L: NegProp{Set: set("req")}, R: Prop{Set: set("resp")}}))
	n1 := NNF(phi)
	n2 := NNF(NNF(Not{F: Not{F: phi}}))
	if n1.Key() != n2.Key() {
		t.Errorf("NNF(¬¬ϕ) ≠ NNF(ϕ):\n  %s\n  %s", n1.Key(), n2.Key())
	}
	if hasNot(n1) {
		t.Error("NNF output contains Not")
	}
}

func hasNot(f Formula) bool {
	switch f := f.(type) {
	case Not:
		return true
	case And:
		return hasNot(f.L) || hasNot(f.R)
	case Or:
		return hasNot(f.L) || hasNot(f.R)
	case Next:
		return hasNot(f.F)
	case Until:
		return hasNot(f.L) || hasNot(f.R)
	case Release:
		return hasNot(f.L) || hasNot(f.R)
	default:
		return false
	}
}

func TestReleaseSemantics(t *testing.T) {
	// a R b: b holds until (and including when) a holds; if a never
	// holds, b must hold forever.
	m := mkLTS(1, map[int][]lts.AdjEdge{0: {edge(lab("b"), 0)}})
	phi := Release{L: Prop{Set: set("a")}, R: Prop{Set: set("b")}}
	if r := Check(m, phi); !r.Holds {
		t.Error("aRb must hold on b^ω")
	}
	m2 := mkLTS(2, map[int][]lts.AdjEdge{
		0: {edge(lab("b"), 1)},
		1: {edge(lab("c"), 1)},
	})
	if r := Check(m2, phi); r.Holds {
		t.Error("aRb must fail on b c^ω")
	}
	// b, then a&b simultaneously impossible with single labels; release
	// with overlapping sets: (a∪b R b) on b^ω then... keep simple: the
	// release fires when a position satisfies both L and R.
	m3 := mkLTS(2, map[int][]lts.AdjEdge{
		0: {edge(lab("b"), 1)},
		1: {edge(lab("c"), 1)},
	})
	phi2 := Release{L: Prop{Set: set("b")}, R: Prop{Set: set("b")}}
	if r := Check(m3, phi2); !r.Holds {
		t.Error("bRb must hold when the first position satisfies both")
	}
}
