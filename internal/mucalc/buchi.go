package mucalc

import (
	"effpi/internal/typelts"
)

// This file translates NNF formulas to Büchi automata with the GPVW
// tableau (Gerth, Peled, Vardi, Wolper, PSTV 1995), then degeneralizes
// the resulting generalized acceptance condition with the counter
// construction (Baier & Katoen, Principles of Model Checking, Thm. 4.56).
//
// Automaton states carry literal guards: a run q0 q1 q2... accepts the
// action word a0 a1 a2... iff a_i satisfies the literals of q_{i+1}'s Old
// set (guards are checked when *entering* a state) and the acceptance
// condition holds.

// Buchi is a (degeneralized) Büchi automaton whose transitions are
// guarded by action-set literals on the target state.
type Buchi struct {
	// Pos[q] / Neg[q]: the letter entering q must belong to every set in
	// Pos[q] and to no set in Neg[q].
	Pos [][]ActionSet
	Neg [][]ActionSet
	// Succ[q]: successor states of q.
	Succ [][]int
	// Init: successor states of the virtual initial node.
	Init []int
	// Accepting[q] reports Büchi acceptance.
	Accepting []bool
}

// Len returns the number of automaton states.
func (b *Buchi) Len() int { return len(b.Succ) }

// Admits reports whether label l satisfies the guard of state q.
func (b *Buchi) Admits(q int, l typelts.Label) bool {
	for _, a := range b.Pos[q] {
		if !a.Contains(l) {
			return false
		}
	}
	for _, a := range b.Neg[q] {
		if a.Contains(l) {
			return false
		}
	}
	return true
}

// Translate builds a Büchi automaton accepting exactly the runs
// satisfying f. The input is converted to NNF internally.
func Translate(f Formula) *Buchi {
	f = NNF(f)
	g := newGraphBuilder()
	initNew := make(formulaSet)
	initNew.add(f)
	g.expand(&gpvwNode{
		incoming: map[int]bool{initID: true},
		new:      initNew,
		old:      make(formulaSet),
		next:     make(formulaSet),
	})
	gba := g.finish(f)
	return degeneralize(gba)
}

const initID = -1

type gpvwNode struct {
	id       int
	incoming map[int]bool
	new      formulaSet
	old      formulaSet
	next     formulaSet
}

type graphBuilder struct {
	nodes  []*gpvwNode
	byKey  map[string]*gpvwNode // old.key + "⊲" + next.key → node
	nextID int
}

func newGraphBuilder() *graphBuilder {
	return &graphBuilder{byKey: map[string]*gpvwNode{}}
}

func nodeKey(old, next formulaSet) string { return old.key() + "⊲" + next.key() }

func (g *graphBuilder) expand(q *gpvwNode) {
	if len(q.new) == 0 {
		key := nodeKey(q.old, q.next)
		if r, ok := g.byKey[key]; ok {
			for in := range q.incoming {
				r.incoming[in] = true
			}
			return
		}
		q.id = g.nextID
		g.nextID++
		g.nodes = append(g.nodes, q)
		g.byKey[key] = q
		succ := &gpvwNode{
			incoming: map[int]bool{q.id: true},
			new:      q.next.clone(),
			old:      make(formulaSet),
			next:     make(formulaSet),
		}
		g.expand(succ)
		return
	}

	// Pop a formula from New.
	var f Formula
	for k, v := range q.new {
		f = v
		delete(q.new, k)
		_ = k
		break
	}

	if q.old.has(f) {
		g.expand(q)
		return
	}

	switch f := f.(type) {
	case False:
		return // contradiction: drop the node
	case True:
		g.expand(q)
	case Prop:
		if q.old.has(NegProp{Set: f.Set}) {
			return
		}
		q.old.add(f)
		g.expand(q)
	case NegProp:
		if q.old.has(Prop{Set: f.Set}) {
			return
		}
		q.old.add(f)
		g.expand(q)
	case And:
		q.old.add(f)
		if !q.old.has(f.L) {
			q.new.add(f.L)
		}
		if !q.old.has(f.R) {
			q.new.add(f.R)
		}
		g.expand(q)
	case Next:
		q.old.add(f)
		q.next.add(f.F)
		g.expand(q)
	case Or:
		q1 := splitNode(q, f, f.L, nil)
		q2 := splitNode(q, f, f.R, nil)
		g.expand(q1)
		g.expand(q2)
	case Until:
		// f ≡ R ∨ (L ∧ X f)
		q1 := splitNode(q, f, f.L, f)
		q2 := splitNode(q, f, f.R, nil)
		g.expand(q1)
		g.expand(q2)
	case Release:
		// f ≡ (R ∧ L) ∨ (R ∧ X f)
		q1 := splitNode(q, f, f.R, f)
		q2 := splitNode(q, f, f.R, nil)
		q2.new.add(f.L)
		g.expand(q1)
		g.expand(q2)
	default:
		panic("mucalc: non-NNF formula reached tableau")
	}
}

// splitNode clones q, records f as processed, pushes sub onto New, and
// (for Until/Release) pushes the recurrence xf onto Next.
func splitNode(q *gpvwNode, f Formula, sub Formula, xf Formula) *gpvwNode {
	n := &gpvwNode{
		incoming: cloneIntSet(q.incoming),
		new:      q.new.clone(),
		old:      q.old.clone(),
		next:     q.next.clone(),
	}
	n.old.add(f)
	if !n.old.has(sub) {
		n.new.add(sub)
	}
	if xf != nil {
		n.next.add(xf)
	}
	return n
}

func cloneIntSet(s map[int]bool) map[int]bool {
	c := make(map[int]bool, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// gba is a generalized Büchi automaton produced by the tableau.
type gba struct {
	pos, neg [][]ActionSet
	succ     [][]int
	init     []int
	// accept[i] is the i-th acceptance set (one per Until subformula).
	accept [][]bool
}

func (g *graphBuilder) finish(f Formula) *gba {
	n := len(g.nodes)
	a := &gba{
		pos:  make([][]ActionSet, n),
		neg:  make([][]ActionSet, n),
		succ: make([][]int, n),
	}
	for _, q := range g.nodes {
		for _, ff := range q.old {
			switch ff := ff.(type) {
			case Prop:
				a.pos[q.id] = append(a.pos[q.id], ff.Set)
			case NegProp:
				a.neg[q.id] = append(a.neg[q.id], ff.Set)
			}
		}
		for in := range q.incoming {
			if in == initID {
				a.init = append(a.init, q.id)
			} else {
				a.succ[in] = append(a.succ[in], q.id)
			}
		}
	}
	// One acceptance set per Until subformula u = L U R:
	// F_u = {q | u ∉ Old(q) or R ∈ Old(q)}.
	for _, u := range collectUntils(f) {
		set := make([]bool, n)
		for _, q := range g.nodes {
			set[q.id] = !q.old.has(u) || q.old.has(u.R)
		}
		a.accept = append(a.accept, set)
	}
	return a
}

func collectUntils(f Formula) []Until {
	seen := map[string]bool{}
	var out []Until
	var walk func(Formula)
	walk = func(f Formula) {
		switch f := f.(type) {
		case And:
			walk(f.L)
			walk(f.R)
		case Or:
			walk(f.L)
			walk(f.R)
		case Next:
			walk(f.F)
		case Until:
			if !seen[f.Key()] {
				seen[f.Key()] = true
				out = append(out, f)
			}
			walk(f.L)
			walk(f.R)
		case Release:
			walk(f.L)
			walk(f.R)
		}
	}
	walk(f)
	return out
}

// degeneralize applies the counter construction: states (q, i) where i
// indexes the acceptance set currently awaited; leaving a state of F_i at
// level i advances the counter; acceptance is F_0 × {0}.
func degeneralize(g *gba) *Buchi {
	n := len(g.succ)
	k := len(g.accept)
	if k == 0 {
		// No Until subformulas: every infinite run is accepting.
		b := &Buchi{
			Pos:       g.pos,
			Neg:       g.neg,
			Succ:      g.succ,
			Init:      g.init,
			Accepting: make([]bool, n),
		}
		for i := range b.Accepting {
			b.Accepting[i] = true
		}
		return b
	}
	id := func(q, i int) int { return q*k + i }
	b := &Buchi{
		Pos:       make([][]ActionSet, n*k),
		Neg:       make([][]ActionSet, n*k),
		Succ:      make([][]int, n*k),
		Accepting: make([]bool, n*k),
	}
	for q := 0; q < n; q++ {
		for i := 0; i < k; i++ {
			s := id(q, i)
			b.Pos[s] = g.pos[q]
			b.Neg[s] = g.neg[q]
			j := i
			if g.accept[i][q] {
				j = (i + 1) % k
			}
			for _, qq := range g.succ[q] {
				b.Succ[s] = append(b.Succ[s], id(qq, j))
			}
			b.Accepting[s] = i == 0 && g.accept[0][q]
		}
	}
	for _, q := range g.init {
		b.Init = append(b.Init, id(q, 0))
	}
	return b
}
