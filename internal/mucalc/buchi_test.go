package mucalc

import (
	"testing"

	"effpi/internal/lts"
	"effpi/internal/typelts"
)

func TestTranslateSmokes(t *testing.T) {
	a := set("a")
	b := set("b")
	formulas := []Formula{
		True{},
		Prop{Set: a},
		Box(Prop{Set: a}),
		Diamond(Prop{Set: b}),
		Until{L: Prop{Set: a}, R: Prop{Set: b}},
		Release{L: Prop{Set: a}, R: Prop{Set: b}},
		And{L: Box(Prop{Set: a}), R: Diamond(Prop{Set: b})},
		Box(Implies(Prop{Set: a}, Next{F: Diamond(Prop{Set: b})})),
	}
	for _, f := range formulas {
		ba := Translate(f)
		if ba.Len() == 0 && len(ba.Init) == 0 {
			// The empty automaton is only right for ⊥.
			t.Errorf("Translate(%s) produced an empty automaton", f)
		}
	}
	// ⊥ accepts nothing.
	ba := Translate(False{})
	if len(ba.Init) != 0 {
		t.Errorf("Translate(⊥) must have no initial states, got %d", len(ba.Init))
	}
}

// TestMultipleUntilsDegeneralization: a conjunction of two eventualities
// requires the counter construction to cycle through both acceptance
// sets. The run must satisfy both; each single one is insufficient.
func TestMultipleUntils(t *testing.T) {
	// 0 --a--> 1 --b--> 2 --c--> 0 : the run cycles a b c a b c ...
	m := mkLTS(3, map[int][]lts.AdjEdge{
		0: {edge(lab("a"), 1)},
		1: {edge(lab("b"), 2)},
		2: {edge(lab("c"), 0)},
	})
	phi := And{
		L: Box(Diamond(Prop{Set: set("a")})),
		R: Box(Diamond(Prop{Set: set("b")})),
	}
	if r := Check(m, phi); !r.Holds {
		t.Errorf("□♢a ∧ □♢b must hold on (abc)^ω: %+v", r.Counterexample)
	}
	phi2 := And{
		L: Box(Diamond(Prop{Set: set("a")})),
		R: Box(Diamond(Prop{Set: set("d")})),
	}
	if r := Check(m, phi2); r.Holds {
		t.Error("□♢a ∧ □♢d must fail on (abc)^ω")
	}
	// Three-way conjunction exercises k=3 counters.
	phi3 := And{L: phi, R: Box(Diamond(Prop{Set: set("c")}))}
	if r := Check(m, phi3); !r.Holds {
		t.Errorf("□♢a ∧ □♢b ∧ □♢c must hold on (abc)^ω: %+v", r.Counterexample)
	}
}

func TestNestedUntil(t *testing.T) {
	// (a U (b U c)): a's until b's until c.
	m := mkLTS(3, map[int][]lts.AdjEdge{
		0: {edge(lab("a"), 1)},
		1: {edge(lab("b"), 2)},
		2: {edge(lab("c"), 2)},
	})
	phi := Until{L: Prop{Set: set("a")}, R: Until{L: Prop{Set: set("b")}, R: Prop{Set: set("c")}}}
	if r := Check(m, phi); !r.Holds {
		t.Errorf("a U (b U c) must hold on a b c^ω: %+v", r.Counterexample)
	}
}

func TestActionSetHelpers(t *testing.T) {
	a := lab("a")
	done := typelts.Done{}
	tau := typelts.TauChoice{}

	if !AnyAction().Contains(a) || !AnyAction().Contains(done) {
		t.Error("AnyAction must contain everything")
	}
	if !TauActions().Contains(tau) || TauActions().Contains(a) {
		t.Error("TauActions wrong")
	}
	if !DoneActions().Contains(done) || DoneActions().Contains(a) {
		t.Error("DoneActions wrong")
	}
	u := UnionSet(set("a"), set("b"))
	if !u.Contains(lab("a")) || !u.Contains(lab("b")) || u.Contains(lab("c")) {
		t.Error("UnionSet wrong")
	}
	ls := LabelSet("x", a)
	if !ls.Contains(lab("a")) || ls.Contains(lab("b")) {
		t.Error("LabelSet wrong")
	}
}

func TestCheckReportsEffort(t *testing.T) {
	m := mkLTS(2, map[int][]lts.AdjEdge{
		0: {edge(lab("a"), 1)},
		1: {edge(lab("b"), 1)},
	})
	r := Check(m, Box(Prop{Set: set("a", "b")}))
	if r.ProductStates <= 0 {
		t.Error("product state count must be reported")
	}
	if r.AutomatonStates <= 0 {
		t.Error("automaton state count must be reported")
	}
}

func TestVacuousBoxOnDeadEndFreeLTS(t *testing.T) {
	// □⊥ fails on any LTS with a run; ♢⊤ holds.
	m := mkLTS(1, map[int][]lts.AdjEdge{0: {edge(lab("a"), 0)}})
	if r := Check(m, Box(False{})); r.Holds {
		t.Error("□⊥ cannot hold")
	}
	if r := Check(m, Diamond(True{})); !r.Holds {
		t.Error("♢⊤ must hold")
	}
	if r := Check(m, True{}); !r.Holds {
		t.Error("⊤ must hold")
	}
	if r := Check(m, False{}); r.Holds {
		t.Error("⊥ cannot hold")
	}
}

func TestSimplify(t *testing.T) {
	a := Prop{Set: set("a")}
	empty := LabelSet("∅")
	cases := []struct {
		in   Formula
		want string
	}{
		{And{L: True{}, R: a}, a.Key()},
		{And{L: a, R: False{}}, False{}.Key()},
		{Or{L: False{}, R: a}, a.Key()},
		{Or{L: a, R: True{}}, True{}.Key()},
		{Not{F: Not{F: a}}, a.Key()},
		{Next{F: True{}}, True{}.Key()},
		{Until{L: a, R: False{}}, False{}.Key()},
		{Until{L: False{}, R: a}, a.Key()},
		{Release{L: a, R: True{}}, True{}.Key()},
		{Prop{Set: empty}, False{}.Key()},
		{NegProp{Set: empty}, True{}.Key()},
		{Box(NegProp{Set: empty}), True{}.Key()},
		{And{L: a, R: a}, a.Key()},
	}
	for _, c := range cases {
		if got := Simplify(c.in); got.Key() != c.want {
			t.Errorf("Simplify(%s) = %s, want key %s", c.in, got, c.want)
		}
	}
}

// TestSimplifyPreservesVerdicts: simplified and raw formulas agree on a
// battery of formulas and a small LTS.
func TestSimplifyPreservesVerdicts(t *testing.T) {
	m := mkLTS(2, map[int][]lts.AdjEdge{
		0: {edge(lab("a"), 1), edge(lab("b"), 0)},
		1: {edge(lab("c"), 0)},
	})
	formulas := []Formula{
		Box(Prop{Set: set("a", "b", "c")}),
		And{L: True{}, R: Box(Prop{Set: set("a", "b", "c")})},
		Or{L: Diamond(Prop{Set: set("a")}), R: False{}},
		Until{L: NegProp{Set: LabelSet("∅")}, R: Prop{Set: set("c")}},
		Box(Implies(Prop{Set: set("a")}, Next{F: Prop{Set: set("c")}})),
	}
	for _, f := range formulas {
		raw := Check(m, f).Holds
		// Check already simplifies; compare against translating the raw
		// formula directly.
		ba := Translate(Not{F: f})
		p := newProduct(LTSModel(m), ba)
		trace, _ := p.findAcceptingLasso()
		if raw != (trace == nil) {
			t.Errorf("Simplify changed the verdict of %s", f)
		}
	}
}
