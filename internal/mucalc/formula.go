// Package mucalc implements the linear-time µ-calculus fragment of
// Def. 4.6 as action-based linear temporal logic, together with a model
// checker: formulas are translated to Büchi automata with the classic
// GPVW tableau (Gerth, Peled, Vardi, Wolper 1995), composed with the type
// LTS, and checked for emptiness with the nested depth-first search of
// Courcoubetis et al.
//
// The paper's basic formulas are Z, ¬ϕ, ϕ∧ϕ, (α)ϕ and νZ.ϕ; all the
// derived forms actually used by the verification schemas of Fig. 7
// (⊤, ⊥, ∨, ⇒, (A)ϕ, (−A)ϕ, U, □, ♢) live in the LTL fragment, which is
// what this package implements. T |= ϕ means every complete run of T
// satisfies ϕ; the checker decides it by searching for a run of ¬ϕ.
package mucalc

import (
	"fmt"
	"sort"
	"strings"

	"effpi/internal/typelts"
)

// ActionSet is a (possibly infinite) set of transition labels, given
// semantically by a membership predicate. Name identifies the set:
// two sets with the same Name are treated as the same atom, so builders
// must give extensionally different sets different names.
type ActionSet struct {
	Name     string
	Contains func(l typelts.Label) bool
	// known/size let Simplify detect constantly-false atoms: only
	// LabelSet-built sets know their cardinality.
	known bool
	size  int
}

// AnyAction is the full action set Act.
func AnyAction() ActionSet {
	return ActionSet{Name: "Act", Contains: func(typelts.Label) bool { return true }}
}

// TauActions is the set of internal actions {τ[∨]} ∪ {τ[S,S′]}.
func TauActions() ActionSet {
	return ActionSet{Name: "τ", Contains: typelts.IsTau}
}

// DoneActions is the singleton {✔}.
func DoneActions() ActionSet {
	return ActionSet{Name: "✔", Contains: func(l typelts.Label) bool {
		_, ok := l.(typelts.Done)
		return ok
	}}
}

// UnionSet is A ∪ B.
func UnionSet(a, b ActionSet) ActionSet {
	return ActionSet{
		Name:     "(" + a.Name + "∪" + b.Name + ")",
		Contains: func(l typelts.Label) bool { return a.Contains(l) || b.Contains(l) },
	}
}

// LabelSet builds a finite action set from explicit labels.
func LabelSet(name string, labels ...typelts.Label) ActionSet {
	keys := make(map[string]bool, len(labels))
	for _, l := range labels {
		keys[l.Key()] = true
	}
	return ActionSet{
		Name:     name,
		Contains: func(l typelts.Label) bool { return keys[l.Key()] },
		known:    true,
		size:     len(keys),
	}
}

// Formula is an action-based LTL formula over ActionSet atoms.
type Formula interface {
	formula()
	Key() string
	String() string
}

// True accepts every run.
type True struct{}

// False accepts no run.
type False struct{}

// Prop holds at a position whose action is in Set.
type Prop struct{ Set ActionSet }

// NegProp holds at a position whose action is not in Set.
type NegProp struct{ Set ActionSet }

// Not is logical negation (eliminated by NNF before translation).
type Not struct{ F Formula }

// And is conjunction.
type And struct{ L, R Formula }

// Or is disjunction.
type Or struct{ L, R Formula }

// Next is the next-time operator X ϕ.
type Next struct{ F Formula }

// Until is ϕ1 U ϕ2 (strong until: ϕ2 eventually holds).
type Until struct{ L, R Formula }

// Release is ϕ1 R ϕ2, the dual of Until.
type Release struct{ L, R Formula }

func (True) formula()    {}
func (False) formula()   {}
func (Prop) formula()    {}
func (NegProp) formula() {}
func (Not) formula()     {}
func (And) formula()     {}
func (Or) formula()      {}
func (Next) formula()    {}
func (Until) formula()   {}
func (Release) formula() {}

func (True) Key() string      { return "⊤" }
func (False) Key() string     { return "⊥" }
func (p Prop) Key() string    { return "in:" + p.Set.Name }
func (p NegProp) Key() string { return "out:" + p.Set.Name }
func (n Not) Key() string     { return "¬(" + n.F.Key() + ")" }
func (a And) Key() string     { return "(" + a.L.Key() + "∧" + a.R.Key() + ")" }
func (o Or) Key() string      { return "(" + o.L.Key() + "∨" + o.R.Key() + ")" }
func (x Next) Key() string    { return "X(" + x.F.Key() + ")" }
func (u Until) Key() string   { return "(" + u.L.Key() + "U" + u.R.Key() + ")" }
func (r Release) Key() string { return "(" + r.L.Key() + "R" + r.R.Key() + ")" }

func (True) String() string      { return "⊤" }
func (False) String() string     { return "⊥" }
func (p Prop) String() string    { return "⟨" + p.Set.Name + "⟩" }
func (p NegProp) String() string { return "⟨−" + p.Set.Name + "⟩" }
func (n Not) String() string     { return "¬" + n.F.String() }
func (a And) String() string     { return "(" + a.L.String() + " ∧ " + a.R.String() + ")" }
func (o Or) String() string      { return "(" + o.L.String() + " ∨ " + o.R.String() + ")" }
func (x Next) String() string    { return "X " + x.F.String() }
func (u Until) String() string   { return "(" + u.L.String() + " U " + u.R.String() + ")" }
func (r Release) String() string { return "(" + r.L.String() + " R " + r.R.String() + ")" }

// --- Derived forms (Def. 4.6, "derived formulas") -------------------------

// Prefix is (A)ϕ: the run's first action is in A, and ϕ holds afterwards.
func Prefix(a ActionSet, f Formula) Formula {
	return And{L: Prop{Set: a}, R: nextOf(f)}
}

// PrefixCo is (−A)ϕ: the first action is outside A, and ϕ holds afterwards.
func PrefixCo(a ActionSet, f Formula) Formula {
	return And{L: NegProp{Set: a}, R: nextOf(f)}
}

func nextOf(f Formula) Formula {
	if _, ok := f.(True); ok {
		return True{} // X⊤ ≡ ⊤ on infinite (completed) runs
	}
	return Next{F: f}
}

// Box is □ϕ ≡ ⊥ R ϕ.
func Box(f Formula) Formula { return Release{L: False{}, R: f} }

// Diamond is ♢ϕ ≡ ⊤ U ϕ.
func Diamond(f Formula) Formula { return Until{L: True{}, R: f} }

// Implies is ϕ1 ⇒ ϕ2.
func Implies(a, b Formula) Formula { return Or{L: nnfNot(a), R: b} }

// --- Negation normal form --------------------------------------------------

// NNF rewrites f into negation normal form: negations appear only on
// atoms (as NegProp), which is what the tableau construction consumes.
func NNF(f Formula) Formula {
	switch f := f.(type) {
	case True, False, Prop, NegProp:
		return f
	case Not:
		return nnfNot(f.F)
	case And:
		return And{L: NNF(f.L), R: NNF(f.R)}
	case Or:
		return Or{L: NNF(f.L), R: NNF(f.R)}
	case Next:
		return Next{F: NNF(f.F)}
	case Until:
		return Until{L: NNF(f.L), R: NNF(f.R)}
	case Release:
		return Release{L: NNF(f.L), R: NNF(f.R)}
	default:
		panic(fmt.Sprintf("mucalc: unknown formula %T", f))
	}
}

func nnfNot(f Formula) Formula {
	switch f := f.(type) {
	case True:
		return False{}
	case False:
		return True{}
	case Prop:
		return NegProp{Set: f.Set}
	case NegProp:
		return Prop{Set: f.Set}
	case Not:
		return NNF(f.F)
	case And:
		return Or{L: nnfNot(f.L), R: nnfNot(f.R)}
	case Or:
		return And{L: nnfNot(f.L), R: nnfNot(f.R)}
	case Next:
		return Next{F: nnfNot(f.F)}
	case Until:
		return Release{L: nnfNot(f.L), R: nnfNot(f.R)}
	case Release:
		return Until{L: nnfNot(f.L), R: nnfNot(f.R)}
	default:
		panic(fmt.Sprintf("mucalc: unknown formula %T", f))
	}
}

// --- Formula sets -----------------------------------------------------------

type formulaSet map[string]Formula

func (s formulaSet) add(f Formula)      { s[f.Key()] = f }
func (s formulaSet) has(f Formula) bool { _, ok := s[f.Key()]; return ok }
func (s formulaSet) clone() formulaSet {
	c := make(formulaSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func (s formulaSet) key() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}
