package mucalc

import (
	"effpi/internal/lts"
	"effpi/internal/typelts"
)

// This file connects the checker to the reduction layer: LabelClasses
// computes the observation classes a formula induces on an alphabet (the
// input to lts.Minimize), and QuotientModel presents the resulting
// quotient as a Model so both NDFS passes run on blocks unchanged.

// LabelClasses partitions an alphabet by indistinguishability under the
// Büchi automaton for ¬phi: two labels land in one class iff every
// automaton state admits both or neither — the product construction (and
// AcceptsLasso, the replay oracle) observe labels only through Admits, so
// swapping class-mates in a run cannot change acceptance. Class ids are
// dense, assigned in label-index order (first label of a new class gets
// the next id), and the second return is the class count.
//
// This is the label view to quotient an LTS under before checking phi:
// strong bisimulation over these classes preserves the checker's verdict
// (see DESIGN.md §reduction).
func LabelClasses(labels []typelts.Label, phi Formula) ([]int32, int) {
	phi = Simplify(phi)
	ba := Translate(Not{F: phi})
	classOf := make([]int32, len(labels))
	// Admit column per label: one bit per automaton state. Columns are
	// compared via a lookup-only map keyed by the packed column; ids are
	// assigned in label order, never map order.
	words := (ba.Len() + 63) / 64
	if words == 0 {
		words = 1
	}
	index := make(map[string]int32, 16)
	col := make([]uint64, words)
	buf := make([]byte, 8*words)
	count := 0
	for i := range labels {
		for w := range col {
			col[w] = 0
		}
		for q := 0; q < ba.Len(); q++ {
			if ba.Admits(q, labels[i]) {
				col[q>>6] |= 1 << (uint(q) & 63)
			}
		}
		for w, x := range col {
			for b := 0; b < 8; b++ {
				buf[8*w+b] = byte(x >> (8 * b))
			}
		}
		c, ok := index[string(buf)]
		if !ok {
			c = int32(count)
			count++
			index[string(buf)] = c
		}
		classOf[i] = c
	}
	return classOf, count
}

// TriviallyTrue reports whether phi simplifies to ⊤. The checker
// answers such formulas without touching the model (CheckModelContext's
// early-out), so a reduction stage would be pure overhead — the
// verifier skips quotienting for them.
func TriviallyTrue(phi Formula) bool { return isTrue(Simplify(phi)) }

// quotientModel adapts a bisimulation quotient to the checker's Model:
// states are blocks, successors are the quotient's representative edges
// (concrete label indices into the full LTS's alphabet, destinations are
// blocks), and the alphabet is the full LTS's. Checking a formula on it
// is sound whenever the quotient was computed over classes at least as
// fine as LabelClasses(labels, phi).
type quotientModel struct{ q *lts.Quotient }

func (x quotientModel) Initial() int                   { return x.q.InitialBlock() }
func (x quotientModel) Succ(b int) ([]lts.Edge, error) { return x.q.Out(b), nil }
func (x quotientModel) Labels() []typelts.Label        { return x.q.Full.Labels }
func (x quotientModel) Len() int                       { return x.q.NumBlocks() }

// QuotientModel wraps a reduction quotient as a checker Model.
func QuotientModel(q *lts.Quotient) Model { return quotientModel{q: q} }
