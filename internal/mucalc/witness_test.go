package mucalc

import (
	"reflect"
	"testing"

	"effpi/internal/lts"
	"effpi/internal/typelts"
)

// --- Witness shape on edge-case lassos --------------------------------------

// TestWitnessSelfLoopLasso: the smallest possible lasso. On a one-state
// a-loop, □⟨b⟩ fails with a self-loop cycle on state 0. The stem visits
// only state 0 too (the product stem may take several steps there — the
// automaton walks its own states over the one LTS self-loop) but can
// never be empty: the virtual initial product state is not accepting, so
// at least one label is consumed entering the automaton — the invariant
// Validate's shape rules lean on.
func TestWitnessSelfLoopLasso(t *testing.T) {
	m := mkLTS(1, map[int][]lts.AdjEdge{0: {edge(lab("a"), 0)}})
	r := Check(m, Box(Prop{Set: set("b")}))
	if r.Holds || r.Witness == nil {
		t.Fatal("expected a witness")
	}
	w := r.Witness
	if err := w.Validate(LTSModel(m)); err != nil {
		t.Fatalf("self-loop witness does not validate: %v", err)
	}
	if len(w.CycleLabels) != 1 || w.CycleStates[0] != 0 || w.CycleStates[1] != 0 {
		t.Errorf("self-loop lasso: cycle %v / %v, want a single a-step 0→0", w.CycleStates, w.CycleLabels)
	}
	if len(w.StemLabels) == 0 {
		t.Error("a zero-step stem cannot arise: the virtual initial product state is never accepting")
	}
	for _, s := range w.StemStates {
		if s != 0 {
			t.Errorf("self-loop stem %v must only visit state 0", w.StemStates)
		}
	}
	if w.Head() != 0 {
		t.Errorf("lasso head %d, want 0", w.Head())
	}
}

// TestWitnessCycleThroughInitial: a violation whose lasso loops back
// through the initial state. The cycle must close on the lasso head and
// include the initial state.
func TestWitnessCycleThroughInitial(t *testing.T) {
	// 0 --a--> 1 --b--> 0: the only run is (a b)^ω; □⟨a⟩ fails.
	m := mkLTS(2, map[int][]lts.AdjEdge{
		0: {edge(lab("a"), 1)},
		1: {edge(lab("b"), 0)},
	})
	r := Check(m, Box(Prop{Set: set("a")}))
	if r.Holds || r.Witness == nil {
		t.Fatal("expected a witness")
	}
	w := r.Witness
	if err := w.Validate(LTSModel(m)); err != nil {
		t.Fatalf("witness does not validate: %v", err)
	}
	visitsInitial := false
	for _, s := range w.CycleStates {
		if s == 0 {
			visitsInitial = true
		}
	}
	if !visitsInitial {
		t.Errorf("cycle %v must loop through the initial state", w.CycleStates)
	}
}

// TestWitnessConsistentWithTrace: the label projection of the witness is
// exactly the reported Counterexample.
func TestWitnessConsistentWithTrace(t *testing.T) {
	m := mkLTS(4, map[int][]lts.AdjEdge{
		0: {edge(lab("i"), 1)},
		1: {edge(lab("x"), 2)},
		2: {edge(lab("y"), 3)},
		3: {edge(lab("z"), 1)},
	})
	for _, phi := range []Formula{
		Box(Prop{Set: set("i", "x", "y")}),
		Box(Diamond(Prop{Set: set("i")})),
	} {
		r := Check(m, phi)
		if r.Holds || r.Witness == nil {
			t.Fatalf("%s: expected a witness", phi)
		}
		if err := r.Witness.Validate(LTSModel(m)); err != nil {
			t.Fatalf("%s: %v", phi, err)
		}
		if !reflect.DeepEqual(r.Witness.Trace(m.Labels), r.Counterexample) {
			t.Errorf("%s: Counterexample and Witness.Trace disagree", phi)
		}
	}
}

// --- Validate as an oracle ---------------------------------------------------

// TestValidateRejectsDoctoredWitnesses: the structural replay must catch
// every class of corruption — a wrong label, a wrong destination, a stem
// not anchored at the initial state, a cycle that does not close, and
// mismatched state/label lengths.
func TestValidateRejectsDoctoredWitnesses(t *testing.T) {
	m := mkLTS(3, map[int][]lts.AdjEdge{
		0: {edge(lab("a"), 1)},
		1: {edge(lab("b"), 2)},
		2: {edge(lab("c"), 1)},
	})
	r := Check(m, Box(Prop{Set: set("a")}))
	if r.Holds || r.Witness == nil {
		t.Fatal("expected a witness")
	}
	good := r.Witness
	if err := good.Validate(LTSModel(m)); err != nil {
		t.Fatalf("genuine witness rejected: %v", err)
	}
	clone := func() *Witness {
		c := &Witness{
			StemStates:  append([]int{}, good.StemStates...),
			StemLabels:  append([]int32{}, good.StemLabels...),
			CycleStates: append([]int{}, good.CycleStates...),
			CycleLabels: append([]int32{}, good.CycleLabels...),
		}
		return c
	}
	cases := map[string]func(*Witness){
		"wrong stem label": func(w *Witness) { w.StemLabels[0] = w.StemLabels[0] + 1 },
		"wrong cycle dst":  func(w *Witness) { w.CycleStates[1] = (w.CycleStates[1] + 1) % m.Len() },
		"unanchored stem":  func(w *Witness) { w.StemStates[0] = w.StemStates[0] + 1 },
		"open cycle":       func(w *Witness) { w.CycleStates[len(w.CycleStates)-1] = (w.Head() + 1) % m.Len() },
		"length mismatch":  func(w *Witness) { w.StemStates = w.StemStates[:len(w.StemStates)-1] },
		"empty cycle":      func(w *Witness) { w.CycleLabels = nil; w.CycleStates = w.CycleStates[:1] },
	}
	for name, corrupt := range cases {
		w := clone()
		corrupt(w)
		if err := w.Validate(LTSModel(m)); err == nil {
			t.Errorf("%s: corrupted witness validated", name)
		}
	}
}

// --- Büchi lasso acceptance --------------------------------------------------

func TestAcceptsLasso(t *testing.T) {
	a, b, c := lab("a"), lab("b"), lab("c")
	// ¬□⟨a⟩ = ♢⟨¬a⟩: accepts any lasso containing a non-a label.
	ba := Translate(Not{F: Box(Prop{Set: set("a")})})
	if !ba.AcceptsLasso([]typelts.Label{a}, []typelts.Label{b}) {
		t.Error("a b^ω must be accepted by ¬□⟨a⟩")
	}
	if ba.AcceptsLasso(nil, []typelts.Label{a}) {
		t.Error("a^ω must be rejected by ¬□⟨a⟩")
	}
	if !ba.AcceptsLasso(nil, []typelts.Label{a, c}) {
		t.Error("(a c)^ω must be accepted by ¬□⟨a⟩ (empty-prefix path)")
	}
	// ¬♢⟨b⟩ = □⟨¬b⟩: accepts exactly the b-free lassos.
	ba2 := Translate(Not{F: Diamond(Prop{Set: set("b")})})
	if !ba2.AcceptsLasso([]typelts.Label{a}, []typelts.Label{c}) {
		t.Error("a c^ω must be accepted by □¬⟨b⟩")
	}
	if ba2.AcceptsLasso([]typelts.Label{a, b}, []typelts.Label{c}) {
		t.Error("a b c^ω must be rejected by □¬⟨b⟩ (b in the prefix)")
	}
	if ba2.AcceptsLasso([]typelts.Label{a}, []typelts.Label{c, b}) {
		t.Error("a (c b)^ω must be rejected by □¬⟨b⟩ (b in the cycle)")
	}
	if ba2.AcceptsLasso(nil, nil) {
		t.Error("the empty lasso is not a run")
	}
	// Until with an obligation inside the cycle: ¬(a U b) accepted lassos
	// either never reach b or leave the a-region first.
	ba3 := Translate(Not{F: Until{L: Prop{Set: set("a")}, R: Prop{Set: set("b")}}})
	if !ba3.AcceptsLasso(nil, []typelts.Label{a}) {
		t.Error("a^ω must be accepted by ¬(aUb) (b never holds)")
	}
	if ba3.AcceptsLasso(nil, []typelts.Label{b}) {
		t.Error("b^ω must be rejected by ¬(aUb) (b holds immediately)")
	}
}

// TestCheckerAgreesWithAcceptsLasso cross-checks the two algorithms on
// every counterexample of the existing suite fixtures: the product NDFS
// produced the lasso, the independent lasso-acceptance check must agree
// it violates the formula.
func TestCheckerAgreesWithAcceptsLasso(t *testing.T) {
	m := mkLTS(4, map[int][]lts.AdjEdge{
		0: {edge(lab("i"), 1), edge(lab("a"), 0)},
		1: {edge(lab("x"), 2)},
		2: {edge(lab("y"), 3)},
		3: {edge(lab("z"), 1), edge(typelts.Done{}, 3)},
	})
	formulas := []Formula{
		Box(Prop{Set: set("i", "x", "y", "a")}),
		Box(Diamond(Prop{Set: set("i")})),
		Box(Implies(Prop{Set: set("x")}, Next{F: Prop{Set: set("z")}})),
		Diamond(Prop{Set: DoneActions()}),
		Until{L: Prop{Set: set("a")}, R: Prop{Set: set("i")}},
	}
	for _, phi := range formulas {
		r := Check(m, phi)
		if r.Holds {
			continue
		}
		if r.Witness == nil {
			t.Fatalf("%s: FAIL without witness", phi)
		}
		if err := r.Witness.Validate(LTSModel(m)); err != nil {
			t.Errorf("%s: %v", phi, err)
		}
		tr := r.Witness.Trace(m.Labels)
		ba := Translate(Not{F: Simplify(phi)})
		if !ba.AcceptsLasso(tr.Prefix, tr.Cycle) {
			t.Errorf("%s: NDFS counterexample rejected by the lasso-acceptance check", phi)
		}
	}
}

// --- markStore: growth and the sparse fallback -------------------------------

// TestMarkStoreGrowthAndSparseFallback drives the store through its three
// regimes: preallocated dense, grown dense (the on-the-fly path), and the
// sparse overflow beyond the dense cap.
func TestMarkStoreGrowthAndSparseFallback(t *testing.T) {
	// Dense growth: start tiny, write far beyond the initial size.
	s := newMarkStore(2)
	s.setColor(0, colorCyan)
	s.or(1000, redFlag)
	s.setColor(1000, colorBlue)
	if got := s.get(0); got&colorMask != colorCyan {
		t.Errorf("dense get(0) = %d", got)
	}
	if got := s.get(1000); got != colorBlue|redFlag {
		t.Errorf("grown get(1000) = %d, want blue|red", got)
	}
	if s.sparse != nil {
		t.Error("growth below the cap must stay dense")
	}
	// Sparse from birth (size beyond the cap), exercising the same ops.
	s2 := newMarkStore(maxDenseMarks + 1)
	if s2.dense != nil {
		t.Fatal("oversized store must start sparse")
	}
	s2.setColor(maxDenseMarks+5, colorCyan)
	s2.or(maxDenseMarks+5, redFlag)
	if got := s2.get(maxDenseMarks + 5); got != colorCyan|redFlag {
		t.Errorf("sparse get = %d, want cyan|red", got)
	}
	if got := s2.get(42); got != 0 {
		t.Errorf("sparse default = %d, want 0", got)
	}
	// Hybrid: a dense store that overflows the cap spills to the map while
	// the dense prefix keeps serving.
	s3 := markStore{dense: make([]uint8, 4)}
	s3.setColor(1, colorBlue)
	s3.sparse = map[int]uint8{} // simulate a store that already spilled
	s3.setColor(10, colorCyan)
	if s3.get(1)&colorMask != colorBlue || s3.get(10)&colorMask != colorCyan {
		t.Error("hybrid store must serve both regimes")
	}
}

// TestSparseMarkStoreSameVerdictAndWitness forces the checker's marks
// into the sparse regime and asserts verdict, witness and visit count are
// identical to the dense run — the sparse fallback is a memory strategy,
// never a semantic one.
func TestSparseMarkStoreSameVerdictAndWitness(t *testing.T) {
	m := mkLTS(4, map[int][]lts.AdjEdge{
		0: {edge(lab("i"), 1)},
		1: {edge(lab("x"), 2)},
		2: {edge(lab("y"), 3)},
		3: {edge(lab("z"), 1)},
	})
	for _, phi := range []Formula{
		Box(Prop{Set: set("i", "x", "y")}),
		Box(Diamond(Prop{Set: set("i")})),
		Box(Prop{Set: set("i", "x", "y", "z")}), // holds
	} {
		phi := Simplify(phi)
		ba := Translate(Not{F: phi})

		dense := newProduct(LTSModel(m), ba)
		dw, dv := dense.findAcceptingLasso()

		sparse := newProduct(LTSModel(m), ba)
		sparse.marks = markStore{sparse: map[int]uint8{}}
		sw, sv := sparse.findAcceptingLasso()

		if (dw == nil) != (sw == nil) {
			t.Fatalf("%s: dense verdict %v, sparse %v", phi, dw == nil, sw == nil)
		}
		if dv != sv {
			t.Errorf("%s: dense visited %d, sparse %d", phi, dv, sv)
		}
		if !reflect.DeepEqual(dw, sw) {
			t.Errorf("%s: dense and sparse witnesses differ:\n%+v\n%+v", phi, dw, sw)
		}
	}
}
