package mucalc

import (
	"context"
	"fmt"

	"effpi/internal/lts"
	"effpi/internal/typelts"
)

// Result is the outcome of a model-checking query T |= ϕ.
type Result struct {
	// Holds reports whether every complete run satisfies ϕ.
	Holds bool
	// Counterexample, when Holds is false, is a lasso-shaped violating
	// run: Prefix followed by Cycle repeated forever.
	Counterexample *Trace
	// Witness, when Holds is false, is the same violating lasso with full
	// state identity: the LTS state visited at every position, which makes
	// the run machine-replayable (see Witness and verify.Replay).
	Witness *Witness
	// ProductStates is the number of product states visited.
	ProductStates int
	// AutomatonStates is the size of the Büchi automaton for ¬ϕ.
	AutomatonStates int
}

// Trace is a lasso-shaped run.
type Trace struct {
	Prefix []typelts.Label
	Cycle  []typelts.Label
}

// Model is the checker's view of a state space. A static *lts.LTS is
// wrapped by LTSModel; lts.Incremental implements Model directly,
// materialising states on demand so the nested DFS drives exploration
// (on-the-fly checking, the early-exit mode of verify.Request).
//
// Label indices are stable: Labels() only ever grows, and Succ may grow
// both the state count and the alphabet.
type Model interface {
	// Initial is the initial state index.
	Initial() int
	// Succ returns the outgoing edges of state s. On-demand
	// implementations expand s here; the error (e.g. a state bound hit
	// mid-search) aborts the check.
	Succ(s int) ([]lts.Edge, error)
	// Labels is the dense label alphabet discovered so far.
	Labels() []typelts.Label
	// Len is the number of states discovered so far.
	Len() int
}

// ltsModel adapts a fully explored, immutable LTS to the Model interface.
type ltsModel struct{ m *lts.LTS }

func (x ltsModel) Initial() int                   { return x.m.Initial }
func (x ltsModel) Succ(s int) ([]lts.Edge, error) { return x.m.Out(s), nil }
func (x ltsModel) Labels() []typelts.Label        { return x.m.Labels }
func (x ltsModel) Len() int                       { return x.m.Len() }

// LTSModel wraps a fully explored LTS as a checker Model.
func LTSModel(m *lts.LTS) Model { return ltsModel{m: m} }

// Check decides m |= ϕ: it translates ¬ϕ to a Büchi automaton and
// searches the product for an accepting cycle with nested DFS. The LTS
// must be run-completed (every state has a successor), which lts.Explore
// guarantees.
//
// The search is dense: each automaton state's guard is precomputed into
// an admit bitset over the LTS's label alphabet (one membership test per
// distinct label instead of a guard walk per product edge), product
// colours live in a flat slice indexed by state*(|BA|+1)+q, and both DFS
// passes enumerate successors lazily with per-frame cursors instead of
// materialising successor slices.
func Check(m *lts.LTS, phi Formula) Result {
	r, _ := CheckModel(LTSModel(m), phi) // a static model never errors
	return r
}

// CheckContext is Check with cancellation: the nested DFS polls ctx every
// checkCancelStride visited product states and returns an error wrapping
// ctx.Err() when the context is cancelled or past its deadline. The
// Result accompanying a non-nil error is invalid.
func CheckContext(ctx context.Context, m *lts.LTS, phi Formula) (Result, error) {
	return CheckModelContext(ctx, LTSModel(m), phi)
}

// CheckModel is Check over an arbitrary Model. With an on-demand model
// (lts.Incremental) the search is on-the-fly: LTS states are materialised
// only when the blue DFS first needs their successors, so a violation
// found early leaves the rest of the state space unexplored. The nested
// DFS itself already stops at the first accepting cycle, so FAIL verdicts
// return as soon as a witness exists; PASS verdicts still visit the full
// (automaton-reachable) product. The returned error is the model's — a
// state bound hit mid-search — and invalidates the Result.
func CheckModel(m Model, phi Formula) (Result, error) {
	return CheckModelContext(context.Background(), m, phi)
}

// CheckModelContext is CheckModel with cancellation: both DFS passes poll
// ctx every checkCancelStride state visits, so even a check over a fully
// materialised (never-erroring) model returns promptly — with an error
// wrapping ctx.Err() — once the context is done.
func CheckModelContext(ctx context.Context, m Model, phi Formula) (Result, error) {
	phi = Simplify(phi)
	if isTrue(phi) {
		return Result{Holds: true}, nil
	}
	ba := Translate(Not{F: phi})
	p := newProduct(m, ba)
	if ctx != nil && ctx.Done() != nil {
		p.ctx = ctx
	}
	w, visited := p.findAcceptingLasso()
	res := Result{
		Holds:           w == nil,
		Witness:         w,
		ProductStates:   visited,
		AutomatonStates: ba.Len(),
	}
	if w != nil {
		res.Counterexample = w.Trace(m.Labels())
	}
	return res, p.err
}

// product is the synchronous product of an LTS and a Büchi automaton.
// Product states are encoded as int: lts-state * (|BA|+1) + (ba+1),
// with ba = -1 encoding the automaton's virtual initial state.
type product struct {
	m      Model
	ba     *Buchi
	stride int // |BA| + 1

	// admit[q] is the bitset of label indices whose labels satisfy the
	// guard of automaton state q, covering the first `baked` labels of the
	// model's alphabet. On-demand models grow their alphabet during the
	// search; bakeLabels extends every row when a new index appears.
	admit [][]uint64
	baked int

	marks markStore

	// err records a model error (state bound hit mid-expansion) or a
	// cancelled context; the search aborts as soon as it is set.
	err error
	// ctx, when non-nil, is polled every checkCancelStride visits of
	// either DFS pass; visits counts them.
	ctx    context.Context
	visits int
}

// checkCancelStride is how many product-state visits pass between
// context polls: visits are tens of nanoseconds, so this bounds the
// cancellation latency to microseconds without touching the hot path.
const checkCancelStride = 1024

// pollCtx checks for cancellation every checkCancelStride visits,
// recording the wrapped context error in p.err.
func (p *product) pollCtx() bool {
	if p.ctx == nil {
		return false
	}
	p.visits++
	if p.visits%checkCancelStride != 0 {
		return false
	}
	if err := p.ctx.Err(); err != nil {
		p.err = fmt.Errorf("mucalc: check cancelled after %d product states: %w", p.visits, err)
		return true
	}
	return false
}

// Colour/flag values packed into one byte per product state: the low two
// bits are the blue-DFS colour, bit 2 is the red-DFS visited flag.
const (
	colorWhite = 0
	colorCyan  = 1 // on the blue DFS stack
	colorBlue  = 2 // blue DFS finished
	colorMask  = 3
	redFlag    = 4
)

// markStore keeps the per-product-state byte. Product spaces up to
// maxDenseMarks states use a flat slice (the common case: even the
// million-state Fig. 9 rows stay within it for the schema automata),
// growing geometrically when an on-demand model discovers new states;
// anything beyond the dense cap falls back to a sparse map so memory
// stays bounded by the visited set. The two regimes coexist: ids below
// the dense length stay dense, the overflow lives in the map.
type markStore struct {
	dense  []uint8
	sparse map[int]uint8
}

const maxDenseMarks = 1 << 27

func newMarkStore(size int) markStore {
	if size >= 0 && size <= maxDenseMarks {
		return markStore{dense: make([]uint8, size)}
	}
	return markStore{sparse: map[int]uint8{}}
}

func (s *markStore) get(id int) uint8 {
	if id < len(s.dense) {
		return s.dense[id]
	}
	return s.sparse[id]
}

func (s *markStore) put(id int, v uint8) {
	if id < len(s.dense) {
		s.dense[id] = v
		return
	}
	if s.sparse == nil && id < maxDenseMarks {
		n := 2 * len(s.dense)
		if n <= id {
			n = id + 1
		}
		if n > maxDenseMarks {
			n = maxDenseMarks
		}
		grown := make([]uint8, n)
		copy(grown, s.dense)
		s.dense = grown
		s.dense[id] = v
		return
	}
	if s.sparse == nil {
		s.sparse = make(map[int]uint8, 1024)
	}
	s.sparse[id] = v
}

func (s *markStore) or(id int, bits uint8) { s.put(id, s.get(id)|bits) }

func (s *markStore) setColor(id int, c uint8) { s.put(id, s.get(id)&^colorMask|c) }

func newProduct(m Model, ba *Buchi) *product {
	p := &product{
		m:      m,
		ba:     ba,
		stride: ba.Len() + 1,
		admit:  make([][]uint64, ba.Len()),
	}
	p.bakeLabels()
	p.marks = newMarkStore(m.Len() * p.stride)
	return p
}

// bakeLabels extends every automaton state's admit bitset to cover the
// labels discovered since the last bake. Indices are stable, so already
// baked bits never change.
func (p *product) bakeLabels() {
	labels := p.m.Labels()
	if len(labels) == p.baked {
		return
	}
	words := (len(labels) + 63) / 64
	for q := range p.admit {
		row := p.admit[q]
		for len(row) < words {
			row = append(row, 0)
		}
		for i := p.baked; i < len(labels); i++ {
			if p.ba.Admits(q, labels[i]) {
				row[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		p.admit[q] = row
	}
	p.baked = len(labels)
}

func (p *product) encode(s, q int) int { return s*p.stride + q + 1 }

func (p *product) admits(q int, label int32) bool {
	if int(label) >= p.baked {
		p.bakeLabels()
	}
	return p.admit[q][label>>6]&(1<<(uint(label)&63)) != 0
}

func (p *product) baSucc(q int) []int {
	if q < 0 {
		return p.ba.Init
	}
	return p.ba.Succ[q]
}

func (p *product) accepting(id int) bool {
	q := id%p.stride - 1
	return q >= 0 && p.ba.Accepting[q]
}

// frame is one DFS frame: a product state plus the cursor (ei, bi) into
// its successor enumeration (LTS edge index × automaton successor index).
// via is the label of the successor edge most recently yielded — a moving
// cursor register, which for every frame below the top of the blue stack
// is exactly the edge leading to its child frame. in, by contrast, is
// immutable: the label of the edge that *reached* this frame when it was
// pushed, which is what red-DFS cycle reconstruction needs (via would be
// clobbered by the frame's own outgoing iteration).
type frame struct {
	id     int
	s, q   int
	ei, bi int
	via    int32
	hasVia bool
	in     int32
	// edges caches the LTS successors of s after the first advance: a
	// state's edge slice never changes once produced (true for static
	// models and for expanded Incremental states), and fetching it
	// through the Model interface on every yield would put a dynamic
	// dispatch in the innermost loop of the search.
	edges   []lts.Edge
	fetched bool
}

func (p *product) newFrame(id int) frame {
	return frame{id: id, s: id / p.stride, q: id%p.stride - 1}
}

// advance yields the next product successor of f, moving its cursor. On a
// model error it records p.err and reports exhaustion; the caller must
// check p.err before trusting an empty enumeration.
func (p *product) advance(f *frame) (int, bool) {
	if !f.fetched {
		edges, err := p.m.Succ(f.s)
		if err != nil {
			p.err = err
			return 0, false
		}
		f.edges = edges
		f.fetched = true
	}
	bs := p.baSucc(f.q)
	for f.ei < len(f.edges) {
		e := f.edges[f.ei]
		for f.bi < len(bs) {
			qq := bs[f.bi]
			f.bi++
			if p.admits(qq, e.Label) {
				f.via = e.Label
				f.hasVia = true
				return p.encode(int(e.Dst), qq), true
			}
		}
		f.ei++
		f.bi = 0
	}
	return 0, false
}

// findAcceptingLasso runs the CVWY nested depth-first search (with the
// Holzmann-Peled-Yannakakis cyan improvement): the outer (blue) DFS
// visits states in post-order; whenever an accepting state is retired,
// an inner (red) DFS looks for a cycle back to it or to any state still
// on the blue stack. The returned witness carries the LTS state at every
// position of the lasso (see assemble).
func (p *product) findAcceptingLasso() (*Witness, int) {
	start := p.encode(p.m.Initial(), -1)
	visited := 0

	stack := make([]frame, 0, 64)
	push := func(id int) {
		p.marks.setColor(id, colorCyan)
		visited++
		stack = append(stack, p.newFrame(id))
	}
	push(start)

	for len(stack) > 0 {
		if p.pollCtx() {
			return nil, visited
		}
		top := &stack[len(stack)-1]
		if next, ok := p.advance(top); ok {
			if p.marks.get(next)&colorMask == colorWhite {
				push(next)
			}
			continue
		}
		if p.err != nil {
			return nil, visited
		}
		// Post-order retirement.
		retired := *top
		stack = stack[:len(stack)-1]
		if p.accepting(retired.id) {
			if cyc := p.redDFS(retired.id); cyc != nil {
				return p.assemble(stack, retired, cyc), visited
			}
			if p.err != nil {
				return nil, visited
			}
		}
		p.marks.setColor(retired.id, colorBlue)
	}
	return nil, visited
}

// redDFS searches from seed for a path back to seed or to a cyan state.
// It returns the frames of that path (the cycle body), or nil.
func (p *product) redDFS(seed int) []frame {
	stack := make([]frame, 0, 32)
	stack = append(stack, p.newFrame(seed))
	p.marks.or(seed, redFlag)
	for len(stack) > 0 {
		if p.pollCtx() {
			return nil
		}
		top := &stack[len(stack)-1]
		next, ok := p.advance(top)
		if !ok {
			if p.err != nil {
				return nil
			}
			stack = stack[:len(stack)-1]
			continue
		}
		if next == seed || p.marks.get(next)&colorMask == colorCyan {
			// Cycle found: path seed → ... → top → next (where next is
			// the seed itself or an ancestor of it on the blue stack).
			closing := p.newFrame(next)
			closing.in = top.via // label that reached `next`
			path := make([]frame, len(stack), len(stack)+1)
			copy(path, stack)
			return append(path, closing)
		}
		if p.marks.get(next)&redFlag == 0 {
			p.marks.or(next, redFlag)
			nf := p.newFrame(next)
			nf.in = top.via
			stack = append(stack, nf)
		}
	}
	return nil
}

// assemble reconstructs the violating lasso as a state-level witness: the
// blue stack gives the stem from the initial state down to the seed (the
// lasso head); the red path gives the cycle, possibly closed through a
// cyan blue-stack segment. Every blue frame's via is the edge to the
// frame above it (the seed for the last one), and every red frame's in is
// the edge that reached it, so states and labels pair up exactly.
func (p *product) assemble(blue []frame, seed frame, redPath []frame) *Witness {
	w := &Witness{}
	// Stem: initial state, then one step per blue frame. Every blue frame
	// has yielded its child (hasVia), but stay defensive: a frame without
	// a via cannot contribute a step.
	w.StemStates = append(w.StemStates, p.m.Initial())
	for i := range blue {
		if !blue[i].hasVia {
			continue
		}
		dst := seed.s
		if i+1 < len(blue) {
			dst = blue[i+1].s
		}
		w.StemLabels = append(w.StemLabels, blue[i].via)
		w.StemStates = append(w.StemStates, dst)
	}
	// Cycle: the red path from the seed. redPath[0] is the seed itself (no
	// incoming label); every later frame records the label that reached it.
	w.CycleStates = append(w.CycleStates, seed.s)
	for _, st := range redPath[1:] {
		w.CycleLabels = append(w.CycleLabels, st.in)
		w.CycleStates = append(w.CycleStates, st.s)
	}
	closing := redPath[len(redPath)-1].id
	if closing != seed.id {
		// The red path ended on a cyan state above the seed: close the
		// lasso by following the blue stack from that state back down to
		// the seed.
		idx := -1
		for i := range blue {
			if blue[i].id == closing {
				idx = i
				break
			}
		}
		if idx >= 0 {
			for i := idx; i < len(blue); i++ {
				if !blue[i].hasVia {
					continue
				}
				dst := seed.s
				if i+1 < len(blue) {
					dst = blue[i+1].s
				}
				w.CycleLabels = append(w.CycleLabels, blue[i].via)
				w.CycleStates = append(w.CycleStates, dst)
			}
		}
	}
	return w
}
