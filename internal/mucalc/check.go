package mucalc

import (
	"effpi/internal/lts"
	"effpi/internal/typelts"
)

// Result is the outcome of a model-checking query T |= ϕ.
type Result struct {
	// Holds reports whether every complete run satisfies ϕ.
	Holds bool
	// Counterexample, when Holds is false, is a lasso-shaped violating
	// run: Prefix followed by Cycle repeated forever.
	Counterexample *Trace
	// ProductStates is the number of product states visited.
	ProductStates int
	// AutomatonStates is the size of the Büchi automaton for ¬ϕ.
	AutomatonStates int
}

// Trace is a lasso-shaped run.
type Trace struct {
	Prefix []typelts.Label
	Cycle  []typelts.Label
}

// Check decides m |= ϕ: it translates ¬ϕ to a Büchi automaton and
// searches the product for an accepting cycle with nested DFS. The LTS
// must be run-completed (every state has a successor), which lts.Explore
// guarantees.
func Check(m *lts.LTS, phi Formula) Result {
	phi = Simplify(phi)
	if isTrue(phi) {
		return Result{Holds: true}
	}
	ba := Translate(Not{F: phi})
	p := &product{m: m, ba: ba}
	trace, visited := p.findAcceptingLasso()
	return Result{
		Holds:           trace == nil,
		Counterexample:  trace,
		ProductStates:   visited,
		AutomatonStates: ba.Len(),
	}
}

// product is the synchronous product of an LTS and a Büchi automaton.
// Product states are encoded as uint64: lts-state * (|BA|+1) + (ba+1),
// with ba = -1 encoding the automaton's virtual initial state.
type product struct {
	m  *lts.LTS
	ba *Buchi
}

func (p *product) encode(s, q int) uint64 {
	return uint64(s)*uint64(p.ba.Len()+1) + uint64(q+1)
}

func (p *product) decode(id uint64) (s, q int) {
	n := uint64(p.ba.Len() + 1)
	return int(id / n), int(id%n) - 1
}

// succ enumerates product successors: an LTS edge s --l--> s' pairs with
// a BA edge q → q' whose target guard admits l.
func (p *product) succ(id uint64, yield func(next uint64, l typelts.Label) bool) bool {
	s, q := p.decode(id)
	var baSucc []int
	if q < 0 {
		baSucc = p.ba.Init
	} else {
		baSucc = p.ba.Succ[q]
	}
	for _, e := range p.m.Edges[s] {
		for _, qq := range baSucc {
			if !p.ba.Admits(qq, e.Label) {
				continue
			}
			if !yield(p.encode(e.Dst, qq), e.Label) {
				return false
			}
		}
	}
	return true
}

func (p *product) accepting(id uint64) bool {
	_, q := p.decode(id)
	return q >= 0 && p.ba.Accepting[q]
}

const (
	colorWhite = 0
	colorCyan  = 1 // on the blue DFS stack
	colorBlue  = 2 // blue DFS finished
)

type blueFrame struct {
	id    uint64
	edges []succEdge
	next  int
}

type succEdge struct {
	dst   uint64
	label typelts.Label
}

// findAcceptingLasso runs the CVWY nested depth-first search (with the
// Holzmann-Peled-Yannakakis cyan improvement): the outer (blue) DFS
// visits states in post-order; whenever an accepting state is retired,
// an inner (red) DFS looks for a cycle back to it or to any state still
// on the blue stack.
func (p *product) findAcceptingLasso() (*Trace, int) {
	color := map[uint64]uint8{}
	red := map[uint64]bool{}
	start := p.encode(p.m.Initial, -1)

	expand := func(id uint64) []succEdge {
		var out []succEdge
		p.succ(id, func(next uint64, l typelts.Label) bool {
			out = append(out, succEdge{dst: next, label: l})
			return true
		})
		return out
	}

	var stack []*blueFrame
	push := func(id uint64) {
		color[id] = colorCyan
		stack = append(stack, &blueFrame{id: id, edges: expand(id)})
	}
	push(start)

	for len(stack) > 0 {
		top := stack[len(stack)-1]
		if top.next < len(top.edges) {
			e := top.edges[top.next]
			top.next++
			if color[e.dst] == colorWhite {
				push(e.dst)
			}
			continue
		}
		// Post-order retirement.
		stack = stack[:len(stack)-1]
		if p.accepting(top.id) {
			if cyc := p.redDFS(top.id, color, red); cyc != nil {
				prefix, cycle := p.assemble(stack, top.id, cyc)
				return &Trace{Prefix: prefix, Cycle: cycle}, len(color)
			}
		}
		color[top.id] = colorBlue
	}
	return nil, len(color)
}

// redStep is a frame of the inner DFS, remembering the label taken to
// reach it for counterexample reconstruction.
type redStep struct {
	id    uint64
	via   typelts.Label
	edges []succEdge
	next  int
}

// redDFS searches from seed for a path back to seed or to a cyan state.
// It returns the labels of that path (the cycle body), or nil.
func (p *product) redDFS(seed uint64, color map[uint64]uint8, red map[uint64]bool) []redStep {
	expand := func(id uint64) []succEdge {
		var out []succEdge
		p.succ(id, func(next uint64, l typelts.Label) bool {
			out = append(out, succEdge{dst: next, label: l})
			return true
		})
		return out
	}
	stack := []*redStep{{id: seed, edges: expand(seed)}}
	red[seed] = true
	for len(stack) > 0 {
		top := stack[len(stack)-1]
		if top.next >= len(top.edges) {
			stack = stack[:len(stack)-1]
			continue
		}
		e := top.edges[top.next]
		top.next++
		if e.dst == seed || color[e.dst] == colorCyan {
			// Cycle found: path seed → ... → top → e.dst (where e.dst is
			// the seed itself or an ancestor of it on the blue stack).
			path := make([]redStep, len(stack))
			for i, f := range stack {
				path[i] = *f
			}
			path = append(path, redStep{id: e.dst, via: e.label})
			return path
		}
		if !red[e.dst] {
			red[e.dst] = true
			stack = append(stack, &redStep{id: e.dst, via: e.label, edges: expand(e.dst)})
		}
	}
	return nil
}

// assemble reconstructs the violating lasso: the blue stack gives the
// prefix from the initial state down to the seed's parent; the red path
// gives the cycle, possibly closed through a cyan blue-stack segment.
func (p *product) assemble(blue []*blueFrame, seed uint64, redPath []redStep) (prefix, cycle []typelts.Label) {
	// Labels along the blue stack: each frame's (next-1)-th edge led to
	// the following frame (or to the seed for the last frame).
	for _, f := range blue {
		if f.next-1 >= 0 && f.next-1 < len(f.edges) {
			prefix = append(prefix, f.edges[f.next-1].label)
		}
	}
	// Red path labels: redPath[0] is the seed (no incoming label).
	for _, st := range redPath[1:] {
		cycle = append(cycle, st.via)
	}
	closing := redPath[len(redPath)-1].id
	if closing != seed {
		// The red path ended on a cyan state above the seed: close the
		// lasso by following the blue stack from that state back down to
		// the seed.
		idx := -1
		for i, f := range blue {
			if f.id == closing {
				idx = i
				break
			}
		}
		if idx >= 0 {
			for i := idx; i < len(blue); i++ {
				f := blue[i]
				if f.next-1 >= 0 && f.next-1 < len(f.edges) {
					cycle = append(cycle, f.edges[f.next-1].label)
				}
			}
		}
	}
	return prefix, cycle
}
