package mucalc

import (
	"effpi/internal/lts"
	"effpi/internal/typelts"
)

// Result is the outcome of a model-checking query T |= ϕ.
type Result struct {
	// Holds reports whether every complete run satisfies ϕ.
	Holds bool
	// Counterexample, when Holds is false, is a lasso-shaped violating
	// run: Prefix followed by Cycle repeated forever.
	Counterexample *Trace
	// ProductStates is the number of product states visited.
	ProductStates int
	// AutomatonStates is the size of the Büchi automaton for ¬ϕ.
	AutomatonStates int
}

// Trace is a lasso-shaped run.
type Trace struct {
	Prefix []typelts.Label
	Cycle  []typelts.Label
}

// Check decides m |= ϕ: it translates ¬ϕ to a Büchi automaton and
// searches the product for an accepting cycle with nested DFS. The LTS
// must be run-completed (every state has a successor), which lts.Explore
// guarantees.
//
// The search is dense: each automaton state's guard is precomputed into
// an admit bitset over the LTS's label alphabet (one membership test per
// distinct label instead of a guard walk per product edge), product
// colours live in a flat slice indexed by state*(|BA|+1)+q, and both DFS
// passes enumerate successors lazily with per-frame cursors instead of
// materialising successor slices.
func Check(m *lts.LTS, phi Formula) Result {
	phi = Simplify(phi)
	if isTrue(phi) {
		return Result{Holds: true}
	}
	ba := Translate(Not{F: phi})
	p := newProduct(m, ba)
	trace, visited := p.findAcceptingLasso()
	return Result{
		Holds:           trace == nil,
		Counterexample:  trace,
		ProductStates:   visited,
		AutomatonStates: ba.Len(),
	}
}

// product is the synchronous product of an LTS and a Büchi automaton.
// Product states are encoded as int: lts-state * (|BA|+1) + (ba+1),
// with ba = -1 encoding the automaton's virtual initial state.
type product struct {
	m      *lts.LTS
	ba     *Buchi
	stride int // |BA| + 1

	// admit[q*words : (q+1)*words] is the bitset of label indices whose
	// labels satisfy the guard of automaton state q.
	admit []uint64
	words int

	marks markStore
}

// Colour/flag values packed into one byte per product state: the low two
// bits are the blue-DFS colour, bit 2 is the red-DFS visited flag.
const (
	colorWhite = 0
	colorCyan  = 1 // on the blue DFS stack
	colorBlue  = 2 // blue DFS finished
	colorMask  = 3
	redFlag    = 4
)

// markStore keeps the per-product-state byte. Product spaces up to
// maxDenseMarks states use a flat slice (the common case: even the
// million-state Fig. 9 rows stay within it for the schema automata);
// anything larger falls back to a sparse map so memory stays bounded by
// the visited set.
type markStore struct {
	dense  []uint8
	sparse map[int]uint8
}

const maxDenseMarks = 1 << 27

func newMarkStore(size int) markStore {
	if size >= 0 && size <= maxDenseMarks {
		return markStore{dense: make([]uint8, size)}
	}
	return markStore{sparse: make(map[int]uint8, 1024)}
}

func (s *markStore) get(id int) uint8 {
	if s.dense != nil {
		return s.dense[id]
	}
	return s.sparse[id]
}

func (s *markStore) or(id int, bits uint8) {
	if s.dense != nil {
		s.dense[id] |= bits
	} else {
		s.sparse[id] |= bits
	}
}

func (s *markStore) setColor(id int, c uint8) {
	if s.dense != nil {
		s.dense[id] = s.dense[id]&^colorMask | c
	} else {
		s.sparse[id] = s.sparse[id]&^colorMask | c
	}
}

func newProduct(m *lts.LTS, ba *Buchi) *product {
	p := &product{
		m:      m,
		ba:     ba,
		stride: ba.Len() + 1,
		words:  (len(m.Labels) + 63) / 64,
	}
	p.admit = make([]uint64, ba.Len()*p.words)
	for q := 0; q < ba.Len(); q++ {
		row := p.admit[q*p.words : (q+1)*p.words]
		for i, lab := range m.Labels {
			if ba.Admits(q, lab) {
				row[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	p.marks = newMarkStore(m.Len() * p.stride)
	return p
}

func (p *product) encode(s, q int) int { return s*p.stride + q + 1 }

func (p *product) admits(q int, label int32) bool {
	return p.admit[q*p.words+int(label)>>6]&(1<<(uint(label)&63)) != 0
}

func (p *product) baSucc(q int) []int {
	if q < 0 {
		return p.ba.Init
	}
	return p.ba.Succ[q]
}

func (p *product) accepting(id int) bool {
	q := id%p.stride - 1
	return q >= 0 && p.ba.Accepting[q]
}

// frame is one DFS frame: a product state plus the cursor (ei, bi) into
// its successor enumeration (LTS edge index × automaton successor index).
// via is the label of the successor edge most recently yielded — a moving
// cursor register, which for every frame below the top of the blue stack
// is exactly the edge leading to its child frame. in, by contrast, is
// immutable: the label of the edge that *reached* this frame when it was
// pushed, which is what red-DFS cycle reconstruction needs (via would be
// clobbered by the frame's own outgoing iteration).
type frame struct {
	id     int
	s, q   int
	ei, bi int
	via    int32
	hasVia bool
	in     int32
}

func (p *product) newFrame(id int) frame {
	return frame{id: id, s: id / p.stride, q: id%p.stride - 1}
}

// advance yields the next product successor of f, moving its cursor.
func (p *product) advance(f *frame) (int, bool) {
	edges := p.m.Out(f.s)
	bs := p.baSucc(f.q)
	for f.ei < len(edges) {
		e := edges[f.ei]
		for f.bi < len(bs) {
			qq := bs[f.bi]
			f.bi++
			if p.admits(qq, e.Label) {
				f.via = e.Label
				f.hasVia = true
				return p.encode(int(e.Dst), qq), true
			}
		}
		f.ei++
		f.bi = 0
	}
	return 0, false
}

// findAcceptingLasso runs the CVWY nested depth-first search (with the
// Holzmann-Peled-Yannakakis cyan improvement): the outer (blue) DFS
// visits states in post-order; whenever an accepting state is retired,
// an inner (red) DFS looks for a cycle back to it or to any state still
// on the blue stack.
func (p *product) findAcceptingLasso() (*Trace, int) {
	start := p.encode(p.m.Initial, -1)
	visited := 0

	stack := make([]frame, 0, 64)
	push := func(id int) {
		p.marks.setColor(id, colorCyan)
		visited++
		stack = append(stack, p.newFrame(id))
	}
	push(start)

	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if next, ok := p.advance(top); ok {
			if p.marks.get(next)&colorMask == colorWhite {
				push(next)
			}
			continue
		}
		// Post-order retirement.
		retired := *top
		stack = stack[:len(stack)-1]
		if p.accepting(retired.id) {
			if cyc := p.redDFS(retired.id); cyc != nil {
				prefix, cycle := p.assemble(stack, retired.id, cyc)
				return &Trace{Prefix: prefix, Cycle: cycle}, visited
			}
		}
		p.marks.setColor(retired.id, colorBlue)
	}
	return nil, visited
}

// redDFS searches from seed for a path back to seed or to a cyan state.
// It returns the frames of that path (the cycle body), or nil.
func (p *product) redDFS(seed int) []frame {
	stack := make([]frame, 0, 32)
	stack = append(stack, p.newFrame(seed))
	p.marks.or(seed, redFlag)
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		next, ok := p.advance(top)
		if !ok {
			stack = stack[:len(stack)-1]
			continue
		}
		if next == seed || p.marks.get(next)&colorMask == colorCyan {
			// Cycle found: path seed → ... → top → next (where next is
			// the seed itself or an ancestor of it on the blue stack).
			closing := p.newFrame(next)
			closing.in = top.via // label that reached `next`
			path := make([]frame, len(stack), len(stack)+1)
			copy(path, stack)
			return append(path, closing)
		}
		if p.marks.get(next)&redFlag == 0 {
			p.marks.or(next, redFlag)
			nf := p.newFrame(next)
			nf.in = top.via
			stack = append(stack, nf)
		}
	}
	return nil
}

// assemble reconstructs the violating lasso: the blue stack gives the
// prefix from the initial state down to the seed's parent; the red path
// gives the cycle, possibly closed through a cyan blue-stack segment.
func (p *product) assemble(blue []frame, seed int, redPath []frame) (prefix, cycle []typelts.Label) {
	// Labels along the blue stack: each frame's most recently yielded
	// edge led to the following frame (or to the seed for the last one).
	for i := range blue {
		if blue[i].hasVia {
			prefix = append(prefix, p.m.Labels[blue[i].via])
		}
	}
	// Red path labels: redPath[0] is the seed (no incoming label); every
	// later frame records the label that reached it.
	for _, st := range redPath[1:] {
		cycle = append(cycle, p.m.Labels[st.in])
	}
	closing := redPath[len(redPath)-1].id
	if closing != seed {
		// The red path ended on a cyan state above the seed: close the
		// lasso by following the blue stack from that state back down to
		// the seed.
		idx := -1
		for i := range blue {
			if blue[i].id == closing {
				idx = i
				break
			}
		}
		if idx >= 0 {
			for i := idx; i < len(blue); i++ {
				if blue[i].hasVia {
					cycle = append(cycle, p.m.Labels[blue[i].via])
				}
			}
		}
	}
	return prefix, cycle
}
