package mucalc

// Cancellation coverage for the nested DFS: a context that dies
// mid-search must abort both passes promptly and surface an error
// wrapping context.Canceled, and the same check re-run with a live
// context must produce the original result.

import (
	"context"
	"errors"
	"testing"

	"effpi/internal/lts"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// bigCycle builds a strongly connected N-state LTS where every state
// fires label "a" to its successor: the product with any liveness
// automaton visits all N states, giving the DFS room to be interrupted.
func bigCycle(n int) *lts.LTS {
	states := make([]types.Type, n)
	adj := make([][]lts.AdjEdge, n)
	lab := typelts.Output{Subject: types.Var{Name: "a"}, Payload: types.Int{}}
	for i := range states {
		states[i] = types.Nil{}
		adj[i] = []lts.AdjEdge{{Label: lab, Dst: (i + 1) % n}}
	}
	return lts.FromAdjacency(states, adj, 0)
}

// pollCountCtx flips to Canceled after a fixed number of Err polls —
// deterministic mid-DFS cancellation (the checker polls every
// checkCancelStride product-state visits).
type pollCountCtx struct {
	context.Context
	polls, after int
}

func (c *pollCountCtx) Err() error {
	c.polls++
	if c.polls > c.after {
		return context.Canceled
	}
	return nil
}

func (c *pollCountCtx) Done() <-chan struct{} {
	// Non-nil so CheckModelContext arms its polling; never closed — Err
	// is the only cancellation signal, as with a real cancelCtx the
	// checker never selects on Done anyway.
	return make(chan struct{})
}

func TestCheckContextCancelledMidNDFS(t *testing.T) {
	m := bigCycle(32 * checkCancelStride)
	// □◇a holds (every state fires a forever) — the checker must visit
	// the whole product to prove it, so a mid-search cancel interrupts.
	phi := Box(Diamond(Prop{Set: AnyAction()}))

	res, err := CheckContext(&pollCountCtx{Context: context.Background(), after: 2}, m, phi)
	if err == nil {
		t.Fatalf("cancelled check must fail (got holds=%v)", res.Holds)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got: %v", err)
	}
	// Prompt: at most a few polling strides of product states visited.
	if res.ProductStates > 8*checkCancelStride {
		t.Errorf("search ran on after cancellation: %d product states", res.ProductStates)
	}

	// The model is untouched: the same check with a live context
	// completes and holds.
	redo, err := CheckContext(context.Background(), m, phi)
	if err != nil {
		t.Fatal(err)
	}
	if !redo.Holds {
		t.Error("□◇a must hold on the cycle")
	}
}

// TestCheckContextCancelledRedDFS steers the flip so it lands during a
// red (inner) search: the formula fails, so red DFSes run from every
// retired accepting state; a late flip is overwhelmingly consumed by
// one of them. Either pass aborting must yield the wrapped error.
func TestCheckContextCancelledRedDFS(t *testing.T) {
	m := bigCycle(8 * checkCancelStride)
	// □◇b with no b anywhere: fails; the ¬ϕ automaton accepts
	// everything, so the product is accepting-state-rich and the nested
	// search alternates blue and red phases.
	phi := Box(Diamond(Prop{Set: LabelSet("b" /* empty: matches nothing */)}))

	_, err := CheckContext(&pollCountCtx{Context: context.Background(), after: 4}, m, phi)
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled (or fast verdict), got: %v", err)
	}
	if err == nil {
		// The search found its lasso before the fourth poll — legal (the
		// NDFS stops at the first accepting cycle); then the verdict must
		// simply be correct.
		redo, rerr := CheckContext(context.Background(), m, phi)
		if rerr != nil || redo.Holds {
			t.Fatalf("fallback verdict wrong: holds=%v err=%v", redo.Holds, rerr)
		}
	}
}
