package mucalc

import (
	"testing"

	"effpi/internal/lts"
	"effpi/internal/typelts"
	"effpi/internal/types"
)

// TestLabelClassesByAdmitColumn: labels are classed exactly by how the
// ¬ϕ automaton can see them — the formula □¬⟨{a}⟩ distinguishes a from
// everything else and nothing further, so b and c share a class while a
// gets its own, with dense ids in label-index order.
func TestLabelClassesByAdmitColumn(t *testing.T) {
	la := typelts.Output{Subject: types.Var{Name: "a"}, Payload: types.Int{}}
	lb := typelts.Output{Subject: types.Var{Name: "b"}, Payload: types.Int{}}
	lc := typelts.Output{Subject: types.Var{Name: "c"}, Payload: types.Int{}}
	labels := []typelts.Label{la, lb, lc}

	phi := Box(NegProp{Set: LabelSet("a-only", la)})
	classes, n := LabelClasses(labels, phi)
	if len(classes) != 3 {
		t.Fatalf("classes = %v", classes)
	}
	if classes[0] == classes[1] || classes[1] != classes[2] {
		t.Errorf("want a alone and b,c together, got %v", classes)
	}
	if classes[0] != 0 || classes[1] != 1 {
		t.Errorf("class ids must be dense in label-index order, got %v", classes)
	}
	if n != 2 {
		t.Errorf("class count %d, want 2", n)
	}

	// A formula mentioning no action set cannot distinguish anything.
	classes, n = LabelClasses(labels, Box(Prop{Set: AnyAction()}))
	if n != 1 || classes[0] != 0 || classes[1] != 0 || classes[2] != 0 {
		t.Errorf("alphabet-blind formula must induce one class, got %v (%d)", classes, n)
	}
}

// TestQuotientModelAdapts: the quotient model exposes blocks as states,
// the full alphabet, and the quotient CSR — and checking through it
// agrees with checking the concrete LTS for a formula the classes were
// computed from.
func TestQuotientModelAdapts(t *testing.T) {
	la := typelts.Output{Subject: types.Var{Name: "a"}, Payload: types.Int{}}
	lb := typelts.Output{Subject: types.Var{Name: "b"}, Payload: types.Int{}}
	// Two states looping a|b vs b|a: strongly bisimilar over {a,b}
	// classes merged, distinguishable when a is observed alone.
	states := []types.Type{types.Nil{}, types.Nil{}}
	adj := [][]lts.AdjEdge{
		{{Label: la, Dst: 1}, {Label: lb, Dst: 0}},
		{{Label: lb, Dst: 0}, {Label: la, Dst: 1}},
	}
	m := lts.FromAdjacency(states, adj, 0)

	phi := Box(Prop{Set: AnyAction()}) // always holds; classes collapse
	classes, _ := LabelClasses(m.Labels, phi)
	q := lts.Minimize(m, classes)
	if q.NumBlocks() != 1 {
		t.Fatalf("blind classes must merge both states, got %d blocks", q.NumBlocks())
	}
	qm := QuotientModel(q)
	if qm.Len() != 1 || qm.Initial() != 0 {
		t.Fatalf("quotient model shape: len=%d initial=%d", qm.Len(), qm.Initial())
	}
	if len(qm.Labels()) != len(m.Labels) {
		t.Fatalf("quotient model must expose the full alphabet")
	}
	full := Check(m, phi)
	red, err := CheckModel(qm, phi)
	if err != nil {
		t.Fatal(err)
	}
	if full.Holds != red.Holds {
		t.Errorf("verdicts differ: full %v, quotient %v", full.Holds, red.Holds)
	}

	// Now a formula that observes a: the identity quotient keeps the
	// structure and the verdict still agrees (here: ⟨a⟩⊤ eventually
	// fails on the b-loop run — both models must find it).
	phi2 := Box(Prop{Set: LabelSet("a", la)})
	classes2, _ := LabelClasses(m.Labels, phi2)
	q2 := lts.Minimize(m, classes2)
	full2 := Check(m, phi2)
	red2, err := CheckModel(QuotientModel(q2), phi2)
	if err != nil {
		t.Fatal(err)
	}
	if full2.Holds != red2.Holds {
		t.Errorf("verdicts differ under a-observing formula: full %v, quotient %v", full2.Holds, red2.Holds)
	}
}
