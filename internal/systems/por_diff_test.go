package systems

import (
	"fmt"
	"reflect"
	"testing"

	"effpi/internal/verify"
)

// This file extends the randomized differential suite (gen_test.go) and
// the Fig. 9 acceptance matrix (systems_test.go) to the partial-order
// mode: exploring ample subsets of each state's transitions must be
// invisible in verdicts, deterministic at every worker count, and every
// FAIL's witness — a concrete run of the reduced edge-subset — must
// replay on the concrete semantics.

func porEligibleKind(k verify.Kind) bool {
	return k == verify.NonUsage || k == verify.DeadlockFree || k == verify.Reactive
}

// TestRandomDifferentialPartialOrder: every seeded system is verified
// with partial order on at parallelism 1, 2 and 8 and compared against
// the reference (partial order off, serial). The reduced space is an
// edge-subset of the full one, so a run that exceeds the state bound
// under reduction must have exceeded it without; the reverse can differ
// per property, so bound-exceeding seeds are only checked for agreement
// on *whether* they error.
func TestRandomDifferentialPartialOrder(t *testing.T) {
	n := genSeedCount(t)
	fails, engaged, systems := 0, 0, 0
	for seed := 0; seed < n; seed++ {
		s := RandomSystem(int64(seed))
		base, baseErr := verify.VerifyAllWith(s.Env, s.Type, s.Props, verify.AllOptions{MaxStates: genMaxStates, Parallelism: 1})
		var porBase []*verify.Outcome
		var porBaseErr error
		for _, par := range []int{1, 2, 8} {
			por, err := verify.VerifyAllWith(s.Env, s.Type, s.Props, verify.AllOptions{
				MaxStates: genMaxStates, Parallelism: par, PartialOrder: verify.PartialOrderOn})
			if par == 1 {
				porBase, porBaseErr = por, err
			}
			if (err == nil) != (porBaseErr == nil) || (err != nil && err.Error() != porBaseErr.Error()) {
				t.Fatalf("seed %d par %d: reduced err=%v, serial reduced err=%v", seed, par, err, porBaseErr)
			}
			if err != nil {
				// Ample sets only drop edges: if even the reduced batch
				// exceeded the bound, the reference batch must have too.
				if baseErr == nil {
					t.Fatalf("seed %d par %d: reduced run exceeded the bound but the full run did not: %v", seed, par, err)
				}
				break
			}
			for i := range por {
				if por[i].PartialOrder && !porEligibleKind(por[i].Property.Kind) {
					t.Errorf("seed %d par %d %s: PartialOrder engaged for an ineligible schema", seed, par, por[i].Property)
				}
				if por[i].StatesExplored != porBase[i].StatesExplored {
					t.Errorf("seed %d par %d %s: explored %d states, serial reduced run explored %d",
						seed, par, por[i].Property, por[i].StatesExplored, porBase[i].StatesExplored)
				}
				if !reflect.DeepEqual(rawWitness(por[i]), rawWitness(porBase[i])) {
					t.Errorf("seed %d par %d %s: reduced witness differs from the serial reduced run's", seed, par, por[i].Property)
				}
				if por[i].PartialOrder && publicFingerprint(por[i].LTS) != publicFingerprint(porBase[i].LTS) {
					t.Errorf("seed %d par %d %s: reduced LTS is not byte-identical to the serial reduced run's", seed, par, por[i].Property)
				}
				if baseErr != nil {
					continue // no reference verdicts to compare against
				}
				if por[i].Holds != base[i].Holds {
					t.Errorf("seed %d par %d %s: reduced verdict %v, reference %v", seed, par, por[i].Property, por[i].Holds, base[i].Holds)
				}
				if por[i].StatesExplored > base[i].States {
					t.Errorf("seed %d par %d %s: explored %d states, full space has %d",
						seed, par, por[i].Property, por[i].StatesExplored, base[i].States)
				}
				if !por[i].PartialOrder && por[i].States != base[i].States {
					t.Errorf("seed %d par %d %s: disengaged mode changed States %d -> %d",
						seed, par, por[i].Property, base[i].States, por[i].States)
				}
			}
		}
		if porBaseErr != nil || baseErr != nil {
			continue
		}
		systems++
		for i, o := range porBase {
			if o.PartialOrder && o.StatesExplored < base[i].States {
				engaged++
			}
			if o.Holds || !o.PartialOrder {
				continue
			}
			fails++
			if o.Witness == nil {
				t.Fatalf("seed %d %s: reduced FAIL without witness", seed, o.Property)
			}
			if err := verify.Replay(o); err != nil {
				t.Errorf("seed %d %s: reduced witness does not replay: %v", seed, o.Property, err)
			}
		}
	}
	if engaged == 0 {
		t.Fatalf("no property explored fewer states across %d systems — partial order never engaged", systems)
	}
	if fails == 0 {
		t.Fatalf("no reduced failing properties across %d systems — the replay route was never exercised", systems)
	}
	t.Logf("replayed %d reduced witnesses, %d reduced cells, across %d systems", fails, engaged, systems)
}

// TestFig9MatrixPartialOrder is the acceptance gate of the partial-order
// mode: the complete 19×6 matrix re-verified on ample subsets at 1, 2
// and 8 workers must reproduce every Fig. 9 verdict, never explore more
// states than the concrete space, actually shrink the loosely-coupled
// families (ping-pong, ring), and validate every failing LTL property's
// witness through the replay oracle. Dining-shaped rows keep ample sets
// close to full (their conflict graph is one connected ring — see
// DESIGN.md §por), so the matrix asserts they do not *grow*, not that
// they shrink.
func TestFig9MatrixPartialOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("partial-order sweep of the full matrix skipped in -short mode")
	}
	reduced, replayed := 0, 0
	for _, s := range Fig9Systems() {
		base, err := verify.VerifyAllWith(s.Env, s.Type, s.Props, verify.AllOptions{MaxStates: 1 << 22, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s reference: %v", s.Name, err)
		}
		for _, par := range []int{1, 2, 8} {
			s, par, base := s, par, base
			t.Run(fmt.Sprintf("par=%d/%s", par, s.Name), func(t *testing.T) {
				outcomes, err := verify.VerifyAllWith(s.Env, s.Type, s.Props,
					verify.AllOptions{MaxStates: 1 << 22, Parallelism: par, PartialOrder: verify.PartialOrderOn})
				if err != nil {
					t.Fatalf("%s: %v", s.Name, err)
				}
				for i, o := range outcomes {
					if want, ok := s.Expected[o.Property.Kind]; ok && o.Holds != want {
						t.Errorf("%s / %s: reduced verdict %v, Fig. 9 says %v (explored %d of %d states)",
							s.Name, o.Property, o.Holds, want, o.StatesExplored, base[i].States)
					}
					if o.StatesExplored > base[i].States {
						t.Errorf("%s / %s: explored %d states, full space has %d", s.Name, o.Property, o.StatesExplored, base[i].States)
					}
					if o.StatesExplored < base[i].States {
						reduced++
					}
					if o.Holds || !o.PartialOrder {
						continue
					}
					if err := verify.Replay(o); err != nil {
						t.Errorf("%s / %s: reduced witness does not replay: %v", s.Name, o.Property, err)
					}
					replayed++
				}
			})
		}
	}
	if reduced == 0 {
		t.Error("no Fig. 9 cell explored fewer states than the concrete space — partial order never engaged")
	}
	if replayed == 0 {
		t.Error("no failing property was replayed — the matrix exercised no reduced witness")
	}
	t.Logf("reduced %d (system, property) cells, replayed %d reduced witnesses", reduced, replayed)
}

// TestPartialOrderRatios pins the quantitative behaviour of the mode on
// the structural extremes, measured at the public API. Ping-pong pairs
// have a conflict graph that falls apart into independent clusters, so
// the ample exploration collapses the 3^n interleaving product to a
// near-linear corridor; the token ring keeps one cluster per token; and
// the dining table — whose philosopher-to-philosopher token handover
// couples every neighbour pair — is the documented negative result: the
// reduction is in edges, not states (see DESIGN.md §por), so the pin is
// "no worse", not "smaller".
func TestPartialOrderRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("full-space reference explorations skipped in -short mode")
	}
	for _, tc := range []struct {
		sys      *System
		kind     verify.Kind
		explored int
		full     int
	}{
		// 3^12 = 531441 concrete states collapse to a 25-state corridor.
		{PingPongPairs(12, false), verify.DeadlockFree, 25, 531441},
		// One cluster per token: 7280 states down 34.8×.
		{Ring(16, 4), verify.DeadlockFree, 209, 7280},
		// Reactive carries an eventuality: the strong cycle proviso still
		// leaves a 75× reduction on the ring.
		{Ring(16, 4), verify.Reactive, 97, 7280},
		// The negative result: 3^8 = 6561 states, ample sets near-full.
		{DiningPhilosophers(8, false), verify.DeadlockFree, 6559, 6561},
	} {
		var prop *verify.Property
		for i := range tc.sys.Props {
			if tc.sys.Props[i].Kind == tc.kind {
				prop = &tc.sys.Props[i]
				break
			}
		}
		if prop == nil {
			t.Fatalf("%s: no %v property wired", tc.sys.Name, tc.kind)
		}
		full, err := verify.Verify(verify.Request{Env: tc.sys.Env, Type: tc.sys.Type, Property: *prop, MaxStates: 1 << 22})
		if err != nil {
			t.Fatalf("%s / %v full: %v", tc.sys.Name, tc.kind, err)
		}
		if full.States != tc.full {
			t.Errorf("%s / %v: full space has %d states, want %d", tc.sys.Name, tc.kind, full.States, tc.full)
		}
		red, err := verify.Verify(verify.Request{Env: tc.sys.Env, Type: tc.sys.Type, Property: *prop,
			MaxStates: 1 << 22, PartialOrder: verify.PartialOrderOn})
		if err != nil {
			t.Fatalf("%s / %v reduced: %v", tc.sys.Name, tc.kind, err)
		}
		if !red.PartialOrder {
			t.Errorf("%s / %v: PartialOrder did not engage", tc.sys.Name, tc.kind)
		}
		if red.Holds != full.Holds {
			t.Errorf("%s / %v: reduced verdict %v, reference %v", tc.sys.Name, tc.kind, red.Holds, full.Holds)
		}
		if red.StatesExplored != tc.explored {
			t.Errorf("%s / %v: explored %d states, want %d (%.1f×)",
				tc.sys.Name, tc.kind, red.StatesExplored, tc.explored, float64(tc.full)/float64(tc.explored))
		}
	}
}
