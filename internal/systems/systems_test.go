package systems

import (
	"fmt"
	"testing"

	"effpi/internal/types"
	"effpi/internal/verify"
)

// checkSystem verifies all six properties of a system against the
// expected verdicts at the default parallelism.
func checkSystem(t *testing.T, s *System, maxStates int) {
	t.Helper()
	checkSystemWith(t, s, verify.AllOptions{MaxStates: maxStates})
}

func checkSystemWith(t *testing.T, s *System, opts verify.AllOptions) {
	t.Helper()
	if err := verify.Admissible(s.Env, s.Type); err != nil {
		t.Fatalf("%s: not admissible: %v", s.Name, err)
	}
	outcomes, err := verify.VerifyAllWith(s.Env, s.Type, s.Props, opts)
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	for _, o := range outcomes {
		want, ok := s.Expected[o.Property.Kind]
		if !ok {
			continue
		}
		if o.Holds != want {
			t.Errorf("%s / %s: got %v, want %v (states=%d)", s.Name, o.Property, o.Holds, want, o.States)
			if o.Counterexample != nil && want {
				t.Logf("  counterexample prefix: %v", o.Counterexample.Prefix)
				t.Logf("  counterexample cycle:  %v", o.Counterexample.Cycle)
			}
		}
	}
}

// Small instances keep the unit-test suite fast; the full Fig. 9 sizes
// run in TestFig9Matrix (guarded by -short) and in cmd/mcbench.

func TestPaymentAuditSmall(t *testing.T) {
	checkSystem(t, PaymentAudit(2), 1<<18)
}

func TestDiningPhilosophersSmall(t *testing.T) {
	checkSystem(t, DiningPhilosophers(3, true), 1<<18)
	checkSystem(t, DiningPhilosophers(3, false), 1<<18)
}

func TestPingPongSmall(t *testing.T) {
	checkSystem(t, PingPongPairs(2, false), 1<<18)
	checkSystem(t, PingPongPairs(2, true), 1<<18)
}

func TestRingSmall(t *testing.T) {
	checkSystem(t, Ring(4, 1), 1<<18)
	checkSystem(t, Ring(5, 2), 1<<18)
}

func TestSystemsAreWellFormed(t *testing.T) {
	for _, s := range []*System{
		PaymentAudit(2), DiningPhilosophers(3, true), PingPongPairs(2, true), Ring(4, 1),
	} {
		if err := types.CheckProcType(s.Env, s.Type); err != nil {
			t.Errorf("%s: not a π-type: %v", s.Name, err)
		}
		if err := types.CheckGuarded(s.Type); err != nil {
			t.Errorf("%s: unguarded: %v", s.Name, err)
		}
		if err := types.CheckFiniteControl(s.Type); err != nil {
			t.Errorf("%s: infinite control: %v", s.Name, err)
		}
	}
}

// TestFig9Matrix reproduces the complete true/false outcome matrix of
// Fig. 9 (19 systems × 6 properties) at the paper's sizes. Run with
// -timeout suitably large; skipped in -short mode.
func TestFig9Matrix(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 9 full matrix skipped in -short mode")
	}
	for _, s := range Fig9Systems() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			checkSystem(t, s, 1<<22)
		})
	}
}

// TestFig9MatrixParallelismInvariant re-runs the complete 19×6 matrix
// with the verification pipeline pinned to 2 and then 8 workers: every
// verdict must match Fig. 9 regardless of parallelism (the determinism
// guarantee of the parallel engine, observed at the top of the stack).
func TestFig9MatrixParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("parallelism sweep of the full matrix skipped in -short mode")
	}
	for _, par := range []int{2, 8} {
		for _, s := range Fig9Systems() {
			s, par := s, par
			t.Run(fmt.Sprintf("par=%d/%s", par, s.Name), func(t *testing.T) {
				checkSystemWith(t, s, verify.AllOptions{MaxStates: 1 << 22, Parallelism: par})
			})
		}
	}
}

// TestFig9MatrixReduction is the acceptance gate of the Reduce stage:
// the complete 19×6 matrix re-verified on bisimulation quotients must
// reproduce every Fig. 9 verdict, and every failing LTL property must
// carry a lifted witness the replay oracle validates against the
// concrete LTS — i.e. reduction on vs off is verdict- and
// witness-replay-identical across the whole published table.
func TestFig9MatrixReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("reduction sweep of the full matrix skipped in -short mode")
	}
	replayed := 0
	for _, s := range Fig9Systems() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			outcomes, err := verify.VerifyAllWith(s.Env, s.Type, s.Props,
				verify.AllOptions{MaxStates: 1 << 22, Reduction: verify.ReduceStrong})
			if err != nil {
				t.Fatalf("%s: %v", s.Name, err)
			}
			for _, o := range outcomes {
				if want, ok := s.Expected[o.Property.Kind]; ok && o.Holds != want {
					t.Errorf("%s / %s: reduced verdict %v, Fig. 9 says %v (checked %d of %d states)",
						s.Name, o.Property, o.Holds, want, o.ReducedStates, o.States)
				}
				if o.Property.Kind == verify.EventualOutput {
					continue
				}
				if o.ReducedStates <= 0 || o.ReducedStates > o.States {
					t.Errorf("%s / %s: quotient size %d out of range (states %d)", s.Name, o.Property, o.ReducedStates, o.States)
				}
				if !o.Holds {
					if err := verify.Replay(o); err != nil {
						t.Errorf("%s / %s: lifted witness does not replay: %v", s.Name, o.Property, err)
					}
					replayed++
				}
			}
		})
	}
	t.Logf("replayed %d lifted witnesses across the matrix", replayed)
}

// TestDining8ReductionRatio pins the headline shrink of the large rows:
// deadlock-freedom of the fixed 8-philosopher system — a PASS that
// forces the checker through the whole product — collapses its 6561
// states to a single bisimulation block (every state can always keep
// synchronising, and the formula cannot tell the synchronisations
// apart), far beyond the ≥5× bar the reduction is held to.
func TestDining8ReductionRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-sized row skipped in -short mode")
	}
	s := DiningPhilosophers(8, false)
	o, err := verify.Verify(verify.Request{Env: s.Env, Type: s.Type,
		Property: s.Props[0], Reduction: verify.ReduceStrong})
	if err != nil {
		t.Fatal(err)
	}
	if o.Property.Kind != verify.DeadlockFree || !o.Holds {
		t.Fatalf("fixture drifted: %s holds=%v", o.Property, o.Holds)
	}
	if o.States < 6561 {
		t.Fatalf("states=%d, expected the full 6561", o.States)
	}
	if ratio := float64(o.States) / float64(o.ReducedStates); ratio < 5 {
		t.Errorf("reduction ratio %.1f× (states %d → %d blocks), want ≥ 5×", ratio, o.States, o.ReducedStates)
	}
}

// TestLargeSystemsMatrix checks the beyond-Fig. 9 rows the parallel
// engine unlocks: all six properties must complete under the DEFAULT
// state bound (MaxStates 0) with verdicts consistent with the paper's
// property schemas. Skipped in -short mode — these are benchmark-sized.
func TestLargeSystemsMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("large instances skipped in -short mode")
	}
	for _, s := range LargeSystems() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			checkSystem(t, s, 0)
		})
	}
}
