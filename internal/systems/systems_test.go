package systems

import (
	"testing"

	"effpi/internal/types"
	"effpi/internal/verify"
)

// checkSystem verifies all six properties of a system against the
// expected verdicts.
func checkSystem(t *testing.T, s *System, maxStates int) {
	t.Helper()
	if err := verify.Admissible(s.Env, s.Type); err != nil {
		t.Fatalf("%s: not admissible: %v", s.Name, err)
	}
	outcomes, err := verify.VerifyAll(s.Env, s.Type, s.Props, maxStates)
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	for _, o := range outcomes {
		want, ok := s.Expected[o.Property.Kind]
		if !ok {
			continue
		}
		if o.Holds != want {
			t.Errorf("%s / %s: got %v, want %v (states=%d)", s.Name, o.Property, o.Holds, want, o.States)
			if o.Counterexample != nil && want {
				t.Logf("  counterexample prefix: %v", o.Counterexample.Prefix)
				t.Logf("  counterexample cycle:  %v", o.Counterexample.Cycle)
			}
		}
	}
}

// Small instances keep the unit-test suite fast; the full Fig. 9 sizes
// run in TestFig9Matrix (guarded by -short) and in cmd/mcbench.

func TestPaymentAuditSmall(t *testing.T) {
	checkSystem(t, PaymentAudit(2), 1<<18)
}

func TestDiningPhilosophersSmall(t *testing.T) {
	checkSystem(t, DiningPhilosophers(3, true), 1<<18)
	checkSystem(t, DiningPhilosophers(3, false), 1<<18)
}

func TestPingPongSmall(t *testing.T) {
	checkSystem(t, PingPongPairs(2, false), 1<<18)
	checkSystem(t, PingPongPairs(2, true), 1<<18)
}

func TestRingSmall(t *testing.T) {
	checkSystem(t, Ring(4, 1), 1<<18)
	checkSystem(t, Ring(5, 2), 1<<18)
}

func TestSystemsAreWellFormed(t *testing.T) {
	for _, s := range []*System{
		PaymentAudit(2), DiningPhilosophers(3, true), PingPongPairs(2, true), Ring(4, 1),
	} {
		if err := types.CheckProcType(s.Env, s.Type); err != nil {
			t.Errorf("%s: not a π-type: %v", s.Name, err)
		}
		if err := types.CheckGuarded(s.Type); err != nil {
			t.Errorf("%s: unguarded: %v", s.Name, err)
		}
		if err := types.CheckFiniteControl(s.Type); err != nil {
			t.Errorf("%s: infinite control: %v", s.Name, err)
		}
	}
}

// TestFig9Matrix reproduces the complete true/false outcome matrix of
// Fig. 9 (19 systems × 6 properties) at the paper's sizes. Run with
// -timeout suitably large; skipped in -short mode.
func TestFig9Matrix(t *testing.T) {
	if testing.Short() {
		t.Skip("Fig. 9 full matrix skipped in -short mode")
	}
	for _, s := range Fig9Systems() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			checkSystem(t, s, 1<<22)
		})
	}
}
