package systems

import (
	"reflect"
	"testing"

	"effpi/internal/verify"
)

// This file asserts the PR's acceptance criteria at the top of the stack:
// every failing property of the Fig. 9 benchmark matrix yields a
// replay-validated counterexample witness, witnesses are bit-identical
// across worker counts, and early-exit checking of a failing property
// explores strictly fewer states than the full pipeline.

// replayAllFailures verifies a system at the given parallelism and checks
// the witness contract on every outcome: LTL FAILs carry a witness that
// verify.Replay validates, PASSes and existential failures carry none.
// It returns the outcomes for cross-parallelism comparison.
func replayAllFailures(t *testing.T, s *System, maxStates, par int) []*verify.Outcome {
	t.Helper()
	outcomes, err := verify.VerifyAllWith(s.Env, s.Type, s.Props, verify.AllOptions{MaxStates: maxStates, Parallelism: par})
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	for _, o := range outcomes {
		if o.Holds {
			if o.Witness != nil {
				t.Errorf("%s / %s: PASS must not carry a witness", s.Name, o.Property)
			}
			continue
		}
		if o.Property.Kind == verify.EventualOutput {
			if o.Witness != nil {
				t.Errorf("%s / %s: existential failure must not carry a witness", s.Name, o.Property)
			}
			continue
		}
		if o.Witness == nil {
			t.Fatalf("%s / %s: FAIL without witness", s.Name, o.Property)
		}
		if err := verify.Replay(o); err != nil {
			t.Errorf("%s / %s: witness does not replay: %v", s.Name, o.Property, err)
		}
	}
	return outcomes
}

// witnessesMatch compares the raw (state/label-index) witnesses of two
// outcome slices position by position.
func witnessesMatch(t *testing.T, name string, base, got []*verify.Outcome, par int) {
	t.Helper()
	if len(base) != len(got) {
		t.Fatalf("%s: %d outcomes at par=%d vs %d serial", name, len(got), par, len(base))
	}
	for i := range base {
		if !reflect.DeepEqual(rawWitness(base[i]), rawWitness(got[i])) {
			t.Errorf("%s / %s: witness at par=%d differs from the serial engine's", name, base[i].Property, par)
		}
	}
}

// TestWitnessReplaySmallSystems always runs: the small instances of every
// Fig. 9 family, witnesses replayed and compared across worker counts.
func TestWitnessReplaySmallSystems(t *testing.T) {
	for _, s := range []*System{
		PaymentAudit(2),
		DiningPhilosophers(3, true),
		DiningPhilosophers(3, false),
		PingPongPairs(2, false),
		PingPongPairs(2, true),
		Ring(4, 1),
	} {
		base := replayAllFailures(t, s, 1<<18, 1)
		for _, par := range []int{2, 8} {
			got := replayAllFailures(t, s, 1<<18, par)
			witnessesMatch(t, s.Name, base, got, par)
		}
	}
}

// TestFig9MatrixWitnesses covers the acceptance criterion on the full
// 19×6 matrix: every failing property at the paper's sizes yields a
// witness that verify.Replay validates, identically at 1, 2 and 8
// workers. Skipped in -short mode (the matrix is benchmark-sized).
func TestFig9MatrixWitnesses(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 9 witness matrix skipped in -short mode")
	}
	for _, s := range Fig9Systems() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			base := replayAllFailures(t, s, 1<<22, 1)
			for _, par := range []int{2, 8} {
				got := replayAllFailures(t, s, 1<<22, par)
				witnessesMatch(t, s.Name, base, got, par)
			}
		})
	}
}

// TestEarlyExitPhilosophers5 is the early-exit acceptance criterion:
// checking a failing property of the 5-philosopher system on-the-fly must
// find a replay-valid witness while exploring strictly fewer states than
// the full pipeline.
func TestEarlyExitPhilosophers5(t *testing.T) {
	for _, deadlockVariant := range []bool{true, false} {
		s := DiningPhilosophers(5, deadlockVariant)
		for _, p := range s.Props {
			switch p.Kind {
			case verify.NonUsage, verify.DeadlockFree, verify.Reactive:
			default:
				continue
			}
			full, err := verify.Verify(verify.Request{Env: s.Env, Type: s.Type, Property: p, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s / %s: %v", s.Name, p, err)
			}
			early, err := verify.Verify(verify.Request{Env: s.Env, Type: s.Type, Property: p, EarlyExit: true})
			if err != nil {
				t.Fatalf("%s / %s (early): %v", s.Name, p, err)
			}
			if early.Holds != full.Holds {
				t.Fatalf("%s / %s: early verdict %v, full %v", s.Name, p, early.Holds, full.Holds)
			}
			if full.Holds {
				continue
			}
			if early.States >= full.States {
				t.Errorf("%s / %s: early exit discovered %d states, full pipeline explored %d — no early-exit win",
					s.Name, p, early.States, full.States)
			}
			if err := verify.Replay(early); err != nil {
				t.Errorf("%s / %s: early-exit witness does not replay: %v", s.Name, p, err)
			}
			t.Logf("%s / %s: early exit %d discovered (%d expanded) vs %d full",
				s.Name, p, early.States, early.Expanded, full.States)
		}
	}
}
