package systems

import (
	"fmt"
	"reflect"
	"testing"

	"effpi/internal/verify"
)

// This file extends the randomized differential suite (gen_test.go) and
// the Fig. 9 acceptance matrix (systems_test.go) to the symmetry mode:
// exploration on orbit representatives must be invisible in verdicts and
// in the concrete-equivalent States count, deterministic at every worker
// count, and every FAIL's permutation-lifted witness must replay on the
// concrete semantics.

// TestRandomDifferentialSymmetry: every seeded system is verified with
// symmetry on at parallelism 1, 2 and 8 and compared against the
// reference (symmetry off, serial). Most random systems have no
// non-trivial bundle symmetry — the mode must then be an exact no-op
// (explored == states) — while the occasional twin-component seed
// exercises real orbit collapsing. Orbit exploration can only shrink
// the state space, so a truncated reference run may succeed under
// symmetry, but never the reverse.
func TestRandomDifferentialSymmetry(t *testing.T) {
	n := genSeedCount(t)
	fails, systems := 0, 0
	for seed := 0; seed < n; seed++ {
		s := RandomSystem(int64(seed))
		base, baseErr := verify.VerifyAllWith(s.Env, s.Type, s.Props, verify.AllOptions{MaxStates: genMaxStates, Parallelism: 1})
		var symBase []*verify.Outcome
		var symBaseErr error
		for _, par := range []int{1, 2, 8} {
			sym, err := verify.VerifyAllWith(s.Env, s.Type, s.Props, verify.AllOptions{
				MaxStates: genMaxStates, Parallelism: par, Symmetry: verify.SymmetryOn})
			if par == 1 {
				symBase, symBaseErr = sym, err
			}
			if (err == nil) != (symBaseErr == nil) || (err != nil && err.Error() != symBaseErr.Error()) {
				t.Fatalf("seed %d par %d: symmetric err=%v, serial symmetric err=%v", seed, par, err, symBaseErr)
			}
			if err != nil {
				// The orbit space is a quotient of the concrete one: if even
				// it exceeds the bound, the reference run must have too.
				if baseErr == nil {
					t.Fatalf("seed %d par %d: symmetric run exceeded the bound but the concrete run did not: %v", seed, par, err)
				}
				break
			}
			for i := range sym {
				if sym[i].StatesExplored > sym[i].States {
					t.Errorf("seed %d par %d %s: explored %d orbit states, claims only %d concrete ones covered",
						seed, par, sym[i].Property, sym[i].StatesExplored, sym[i].States)
				}
				if sym[i].StatesExplored != symBase[i].StatesExplored {
					t.Errorf("seed %d par %d %s: explored %d states, serial symmetric run explored %d",
						seed, par, sym[i].Property, sym[i].StatesExplored, symBase[i].StatesExplored)
				}
				if !reflect.DeepEqual(rawWitness(sym[i]), rawWitness(symBase[i])) {
					t.Errorf("seed %d par %d %s: lifted witness differs from the serial symmetric run's", seed, par, sym[i].Property)
				}
				if baseErr != nil {
					continue // no reference verdicts to compare against
				}
				if sym[i].Holds != base[i].Holds {
					t.Errorf("seed %d par %d %s: symmetric verdict %v, reference %v", seed, par, sym[i].Property, sym[i].Holds, base[i].Holds)
				}
				if sym[i].States != base[i].States {
					t.Errorf("seed %d par %d %s: symmetric States %d, reference %d", seed, par, sym[i].Property, sym[i].States, base[i].States)
				}
			}
		}
		if symBaseErr != nil {
			continue
		}
		systems++
		for _, o := range symBase {
			if o.Holds || o.Property.Kind == verify.EventualOutput {
				continue
			}
			fails++
			if o.Witness == nil {
				t.Fatalf("seed %d %s: symmetric FAIL without witness", seed, o.Property)
			}
			if err := verify.Replay(o); err != nil {
				t.Errorf("seed %d %s: symmetric witness does not replay: %v", seed, o.Property, err)
			}
		}
	}
	if fails == 0 {
		t.Fatalf("no failing properties across %d symmetric systems — the permutation lift was never exercised", systems)
	}
	t.Logf("replayed %d symmetric witnesses across %d systems", fails, systems)
}

// TestFig9MatrixSymmetry is the acceptance gate of the symmetry mode:
// the complete 19×6 matrix re-verified on orbit representatives at 1, 2
// and 8 workers must reproduce every Fig. 9 verdict with the published
// concrete state counts, the ping-pong families (interchangeable pairs)
// must actually collapse, the asymmetric families must be exact no-ops,
// and every failing LTL property must carry a lifted witness the replay
// oracle validates.
func TestFig9MatrixSymmetry(t *testing.T) {
	if testing.Short() {
		t.Skip("symmetry sweep of the full matrix skipped in -short mode")
	}
	collapsed, replayed := 0, 0
	for _, par := range []int{1, 2, 8} {
		for _, s := range Fig9Systems() {
			s, par := s, par
			t.Run(fmt.Sprintf("par=%d/%s", par, s.Name), func(t *testing.T) {
				outcomes, err := verify.VerifyAllWith(s.Env, s.Type, s.Props,
					verify.AllOptions{MaxStates: 1 << 22, Parallelism: par, Symmetry: verify.SymmetryOn})
				if err != nil {
					t.Fatalf("%s: %v", s.Name, err)
				}
				for _, o := range outcomes {
					if want, ok := s.Expected[o.Property.Kind]; ok && o.Holds != want {
						t.Errorf("%s / %s: symmetric verdict %v, Fig. 9 says %v (explored %d of %d states)",
							s.Name, o.Property, o.Holds, want, o.StatesExplored, o.States)
					}
					if o.StatesExplored > o.States {
						t.Errorf("%s / %s: explored %d orbit states, covers only %d", s.Name, o.Property, o.StatesExplored, o.States)
					}
					if o.StatesExplored < o.States {
						collapsed++
					}
					if o.Holds || o.Property.Kind == verify.EventualOutput {
						continue
					}
					if err := verify.Replay(o); err != nil {
						t.Errorf("%s / %s: symmetric witness does not replay: %v", s.Name, o.Property, err)
					}
					replayed++
				}
			})
		}
	}
	if collapsed == 0 {
		t.Error("no Fig. 9 row explored fewer states than the concrete space — symmetry never engaged")
	}
	if replayed == 0 {
		t.Error("no failing property was replayed — the matrix exercised no witness lift")
	}
	t.Logf("collapsed %d (system, property) cells, replayed %d symmetric witnesses", collapsed, replayed)
}

// TestPingPongSymmetryRatio pins the quantitative claim behind the
// symmetry mode: the n-pair ping-pong state space is 3^n (each pair
// independently in one of three phases), and the orbit space collapses
// interchangeable pairs to phase *counts* — exactly 3·C(n+1, 2) orbit
// states with one request/reply pair pinned by the properties. For
// n = 10 that is 165 representatives covering 59 049 concrete states, a
// 357× reduction measured at the public API.
func TestPingPongSymmetryRatio(t *testing.T) {
	s := PingPongPairs(10, false)
	outcomes, err := verify.VerifyAllWith(s.Env, s.Type, s.Props,
		verify.AllOptions{MaxStates: 1 << 22, Symmetry: verify.SymmetryOn})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.States != 59049 {
			t.Errorf("%s: States = %d, want 3^10 = 59049", o.Property, o.States)
		}
		if o.StatesExplored != 165 {
			t.Errorf("%s: explored %d orbit states, want 3·C(11,2) = 165", o.Property, o.StatesExplored)
		}
	}
}

// TestDiningSymmetryRatio pins the rotational-symmetry claim on the
// fork ring. Deadlock-freedom observes no channel, so the full cyclic
// group C_n survives pinning and the quotient explores fork-ring
// necklaces: Burnside counts (1/8)·Σ_{d|8} φ(d)·3^(8/d) = 834 necklaces
// of 8 beads over 3 symbols, and the one rotation-invariant
// configuration the deadlock variant never reaches (its concrete space
// is 3^8 − 1 = 6 560) is a one-element orbit, leaving exactly 833
// representatives — a 7.9× reduction, and the FAIL's lifted witness
// must still replay concretely. Verified per property rather than via
// VerifyAll: the joint quotient of the full six-property batch pins f0
// and f1 for the other columns, which freezes the ring (a rotation
// moves every fork), so the batch stays concrete by design.
func TestDiningSymmetryRatio(t *testing.T) {
	s := DiningPhilosophers(8, true)
	var prop verify.Property
	for _, p := range s.Props {
		if p.Kind == verify.DeadlockFree {
			prop = p
		}
	}
	for _, par := range []int{1, 2, 8} {
		o, err := verify.Verify(verify.Request{Env: s.Env, Type: s.Type, Property: prop,
			Parallelism: par, Symmetry: verify.SymmetryOn})
		if err != nil {
			t.Fatal(err)
		}
		if o.Holds {
			t.Fatalf("par=%d: deadlock variant verified deadlock-free", par)
		}
		if o.States != 6560 {
			t.Errorf("par=%d: States = %d, want 3^8 − 1 = 6560", par, o.States)
		}
		if o.StatesExplored != 833 {
			t.Errorf("par=%d: explored %d orbit states, want 833 necklaces", par, o.StatesExplored)
		}
		if o.Witness == nil {
			t.Fatalf("par=%d: rotational FAIL without lifted witness", par)
		}
		if err := verify.Replay(o); err != nil {
			t.Errorf("par=%d: lifted witness does not replay: %v", par, err)
		}
	}

	// The symmetry-broken variant must stay an exact no-op: its
	// co-mention graph is the same cycle, but philosopher 0's swapped
	// fork order has no rotated twin, so detection declines.
	fixed := DiningPhilosophers(8, false)
	for _, p := range fixed.Props {
		if p.Kind == verify.DeadlockFree {
			prop = p
		}
	}
	o, err := verify.Verify(verify.Request{Env: fixed.Env, Type: fixed.Type, Property: prop,
		Symmetry: verify.SymmetryOn})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Holds {
		t.Error("fixed variant must be deadlock-free")
	}
	if o.StatesExplored != o.States || o.States != 6561 {
		t.Errorf("fixed variant: explored %d of %d states, want exact no-op on 3^8 = 6561", o.StatesExplored, o.States)
	}
}

// TestDiningTenRotational is the headline scaling row: ten philosophers
// verify their deadlock-freedom column on 5 933 necklace
// representatives in place of 59 048 concrete states (9.95×, the
// asymptotic n× of C_n), with the lifted witness replaying.
func TestDiningTenRotational(t *testing.T) {
	if testing.Short() {
		t.Skip("Dining(10) rotational row skipped in -short mode")
	}
	s := DiningPhilosophers(10, true)
	var prop verify.Property
	for _, p := range s.Props {
		if p.Kind == verify.DeadlockFree {
			prop = p
		}
	}
	o, err := verify.Verify(verify.Request{Env: s.Env, Type: s.Type, Property: prop,
		Symmetry: verify.SymmetryOn})
	if err != nil {
		t.Fatal(err)
	}
	if o.Holds {
		t.Fatal("deadlock variant verified deadlock-free")
	}
	if o.States != 59048 {
		t.Errorf("States = %d, want 3^10 − 1 = 59048", o.States)
	}
	if o.StatesExplored != 5933 {
		t.Errorf("explored %d orbit states, want 5 933 necklaces", o.StatesExplored)
	}
	if err := verify.Replay(o); err != nil {
		t.Errorf("lifted witness does not replay: %v", err)
	}
}
