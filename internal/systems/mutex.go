package systems

import (
	"fmt"

	"effpi/internal/types"
)

// This file builds the §6 examples that the paper uses to position the
// system beyond confluent session-type disciplines: processes *racing* on
// a shared channel, and lock/mutex protocols (Dijkstra's philosophers are
// the n-ary case; Mutex is the binary one with an explicit critical
// section that custom µ-calculus formulas can observe).

// Race builds the racing composition from §6:
//
//	p[ p[ o[x,y,T], o[x,z,T′] ], i[x, Π(w:cio[int]) U] ]
//
// Two senders race to transmit their channel (y or z) over x; the
// receiver's continuation uses whichever won. The type system tracks
// both outcomes: the LTS contains a communication delivering y and one
// delivering z.
func Race() *System {
	tok := types.ChanIO{Elem: types.Int{}}
	env := types.EnvOf(
		"x", types.ChanIO{Elem: tok},
		"y", tok,
		"z", tok,
	)
	sender := func(payload string) types.Type {
		return types.Out{Ch: tv("x"), Payload: tv(payload), Cont: thunk(types.Nil{})}
	}
	receiver := types.In{Ch: tv("x"),
		Cont: types.Pi{Var: "w", Dom: tok,
			Cod: types.Out{Ch: tv("w"), Payload: types.Int{}, Cont: thunk(types.Nil{})}}}
	return &System{
		Name: "Race on x (§6)",
		Env:  env,
		Type: types.ParOf(types.Par{L: sender("y"), R: sender("z")}, receiver),
	}
}

// Mutex builds n workers contending for a lock (a token channel), each
// marking its critical section by sending "enter" and "exit" on its own
// probe channel:
//
//	lock_i  = o[lock, (), i[lock, Π(u) …]]       (the token)
//	worker_i = µt. i[lock, Π(u) o[crit_i, enter, o[crit_i, exit, o[lock, (), t]]]]
//
// The mutual-exclusion property — between enter_i and exit_i no enter_j
// occurs — is *not* one of the six Fig. 7 schemas; the test suite checks
// it with a hand-written µ-calculus formula, demonstrating the paper's
// claim that the property language is extensible.
func Mutex(workers int) *System {
	env := types.NewEnv()
	env = env.MustExtend("lock", types.ChanIO{Elem: types.Unit{}})
	crits := make([]string, workers)
	for i := range crits {
		crits[i] = fmt.Sprintf("crit%d", i)
		env = env.MustExtend(crits[i], types.ChanIO{Elem: types.Union{L: types.Int{}, R: types.Str{}}})
	}

	// The lock token: offer, await return, forever.
	lock := types.Rec{Var: "t", Body: out("lock", types.Unit{},
		in("lock", "u", types.Unit{}, types.RecVar{Name: "t"}))}

	comps := []types.Type{lock}
	for i := 0; i < workers; i++ {
		crit := crits[i]
		worker := types.Rec{Var: "t", Body: in("lock", "u", types.Unit{},
			out(crit, types.Int{}, // enter: Int
				out(crit, types.Str{}, // exit: Str
					out("lock", types.Unit{}, types.RecVar{Name: "t"}))))}
		comps = append(comps, worker)
	}
	return &System{
		Name: fmt.Sprintf("Mutex (%d workers)", workers),
		Env:  env,
		Type: types.ParOf(comps...),
	}
}
